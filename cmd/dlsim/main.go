// Command dlsim runs dynamic-loop-scheduling simulations and prints
// their timing results — the smallest useful entry point into the
// library (paper Figure 2's information model maps directly onto the
// flags).
//
// Flag-driven single-point campaigns compile to a declarative
// engine.CampaignSpec, so they are content-addressable: with -cache a
// repeated invocation (same flags, same seed) is served from the result
// store without re-simulation. Whole grids run from a JSON spec file via
// -spec, and -out streams every run's metrics as CSV or JSON Lines.
//
// Ctrl-C (or SIGTERM) cancels an in-flight campaign cleanly: streaming
// output written so far is flushed and the command exits with code 130;
// usage errors exit 2 and runtime failures exit 1 (internal/cliutil).
//
// Examples:
//
//	dlsim -tech FAC2 -n 8192 -p 64                      # Hagerup defaults
//	dlsim -tech TSS -n 100000 -p 72 -dist constant -p1 110e-6
//	dlsim -tech GSS -n 10000 -p 16 -min-chunk 5 -per-run 10
//	dlsim -tech WF -n 4096 -p 4 -weights 1,1,2,4
//	dlsim -tech FAC2 -n 8192 -p 64 -backend msg         # full MSG model
//	dlsim -spec campaign.json -cache .dlsim-cache       # declarative grid
//	dlsim -tech FAC -per-run 1000 -out runs.csv         # raw per-run data
//	dlsim -spec campaign.json -server http://host:8080  # execute on a dlsimd daemon
//	dlsim -spec campaign.json -servers http://a:8080,http://b:8080 -shards 4
//
// With -server the campaign executes remotely through the daemon's /v1
// API (the repro/client SDK) instead of in-process; results — streamed
// -out files and the printed aggregates alike — are bit-identical to a
// local run of the same spec. With -servers the campaign is sharded
// across a fleet of daemons (campaign/distrib) and merged back
// bit-identically, with failed or straggling shards retried on
// surviving nodes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/campaign"
	"repro/internal/ascii"
	"repro/internal/cliutil"
	"repro/internal/engine"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dlsim: ")
	ctx, stop := cliutil.SignalContext(context.Background())
	err := run(ctx)
	stop()
	cliutil.Exit(err)
}

func run(ctx context.Context) error {
	var (
		tech     = flag.String("tech", "FAC2", "DLS technique: "+strings.Join(sched.Names(), ", "))
		backend  = flag.String("backend", engine.DefaultBackend, "simulation backend: "+strings.Join(engine.Names(), ", "))
		workers  = flag.Int("workers", 0, "concurrent runs (0 = all CPU cores); results are worker-count independent")
		n        = flag.Int64("n", 1024, "number of tasks")
		p        = flag.Int("p", 8, "number of PEs")
		dist     = flag.String("dist", "exponential", "workload: constant, uniform, increasing, decreasing, exponential, normal, gamma, bimodal")
		p1       = flag.Float64("p1", 1, "first workload parameter (see internal/workload.Spec)")
		p2       = flag.Float64("p2", 0, "second workload parameter")
		p3       = flag.Float64("p3", 0, "third workload parameter")
		h        = flag.Float64("h", 0.5, "scheduling overhead per operation, seconds")
		seed     = flag.Uint64("seed", 1, "random seed")
		runs     = flag.Int("per-run", 1, "number of runs (mean over runs is reported)")
		minChunk = flag.Int64("min-chunk", 0, "GSS(k): minimum chunk size")
		chunk    = flag.Int64("chunk", 0, "CSS(k): fixed chunk size")
		first    = flag.Int64("first", 0, "TSS: first chunk size")
		last     = flag.Int64("last", 0, "TSS: last chunk size")
		alpha    = flag.Float64("alpha", 0, "TAP: confidence factor")
		weights  = flag.String("weights", "", "comma-separated PE weights (WF/AWF)")
		hDyn     = flag.Bool("h-in-dynamics", false, "charge h inside the master loop (ablation A1)")
		msgCost  = flag.Float64("msg-cost", 0, "fixed network cost per scheduling op, seconds (ablation A3)")
		verbose  = flag.Bool("v", false, "print per-PE breakdown")
		traceOut = flag.String("trace", "", "write a chunk-event trace of the last run to this CSV file")
		replayIn = flag.String("replay", "", "replay per-task times extracted from this trace CSV (overrides -dist, disables -cache)")
		specFile = flag.String("spec", "", "execute the JSON campaign spec in this file (grid flags are ignored)")
		cacheDir = flag.String("cache", "", "content-addressed result cache directory; repeated campaigns are served without re-simulation")
		outFile  = flag.String("out", "", `stream per-run metrics to this file: .jsonl/.json selects JSON Lines, anything else CSV ("-" = CSV to stdout)`)
		server   = flag.String("server", "", "dlsimd base URL (e.g. http://localhost:8080); campaigns execute remotely through the /v1 API instead of in-process")
		servers  = flag.String("servers", "", "comma-separated dlsimd base URLs; the campaign is sharded across the fleet and merged bit-identically")
		shards   = flag.Int("shards", 0, "with -servers: number of shards to split the campaign into (0 = one per node)")
		shardTO  = flag.Duration("shard-timeout", 0, "with -servers: per-shard attempt deadline before the shard is retried elsewhere (0 = none)")
		hedge    = flag.Duration("hedge-after", 0, "with -servers: latency budget after which a straggling shard is speculatively re-submitted to a second node, first completion wins (0 = no hedging)")
		partial  = flag.Bool("partial", false, "with -servers: on unrecoverable node failures keep the completed prefix of results and report the missing shard ranges instead of failing the whole campaign")
		fleetMet = flag.String("fleet-metrics", "", "with -servers: write the coordinator's fault-tolerance metrics (breaker states, hedges, retries) to this file in Prometheus text format on exit")
	)
	flag.Parse()

	if *server != "" && *servers != "" {
		return cliutil.Usagef("-server and -servers are mutually exclusive")
	}
	if *server != "" || *servers != "" {
		switch {
		case *replayIn != "":
			return cliutil.Usagef("-replay needs local execution; drop -server/-servers")
		case *traceOut != "" || *verbose:
			return cliutil.Usagef("-trace and -v re-execute runs locally; drop -server/-servers")
		case *cacheDir != "":
			return cliutil.Usagef("-cache is the local result store; the server manages its own (drop -cache with -server/-servers)")
		}
	}
	if *servers == "" && (*shards != 0 || *shardTO != 0 || *hedge != 0 || *partial || *fleetMet != "") {
		return cliutil.Usagef("-shards, -shard-timeout, -hedge-after, -partial and -fleet-metrics only apply with -servers")
	}
	store, err := cliutil.OpenStore(*cacheDir)
	if err != nil {
		return err
	}
	var (
		runner      campaign.Runner
		closeRunner func()
	)
	if *servers != "" {
		runner, closeRunner, err = cliutil.NewFleetRunner(*servers, cliutil.FleetOptions{
			Shards: *shards, ShardTimeout: *shardTO,
			HedgeAfter: *hedge, Partial: *partial, MetricsFile: *fleetMet,
		})
	} else {
		runner, closeRunner, err = cliutil.NewRunner(*server, store, *workers)
	}
	if err != nil {
		return err
	}
	defer closeRunner()
	sinks, closeOut, err := cliutil.OpenOut(*outFile)
	if err != nil {
		return err
	}
	defer closeOut()

	if *specFile != "" {
		if err := cliutil.RunSpecFile(ctx, *specFile, runner, sinks); err != nil {
			return err
		}
		return closeOut()
	}

	var ws []float64
	if *weights != "" {
		for _, f := range strings.Split(*weights, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return cliutil.Usagef("bad weight %q: %v", f, err)
			}
			ws = append(ws, v)
		}
	}

	var (
		work       workload.Workload
		workSpec   workload.Spec
		declarable = true
	)
	if *replayIn != "" {
		// Replayed task times have no declarative description, so this
		// path runs the campaign directly and bypasses the result cache.
		declarable = false
		f, err := os.Open(*replayIn)
		if err != nil {
			return cliutil.Usagef("replay: %v", err)
		}
		tr, err := trace.Read(f)
		f.Close()
		if err != nil {
			return err
		}
		if err := tr.Validate(); err != nil {
			return err
		}
		if tasks := tr.Tasks(); tasks < *n {
			log.Printf("trace covers %d tasks; reducing -n from %d", tasks, *n)
			*n = tasks
		}
		explicit, err := workload.NewExplicit(tr.PerTaskTimes(*n))
		if err != nil {
			return err
		}
		work = explicit
	} else {
		workSpec = workload.Spec{Kind: *dist, P1: *p1, P2: *p2, P3: *p3}
		built := workSpec
		built.N = *n
		w, err := built.Build()
		if err != nil {
			return cliutil.Usagef("%v", err)
		}
		work = w
	}

	point := engine.RunSpec{
		Technique: *tech, N: *n, P: *p, Work: work,
		H: *h, HInDynamics: *hDyn, PerMessageCost: *msgCost,
		MinChunk: *minChunk, Chunk: *chunk, First: *first, Last: *last,
		Alpha: *alpha, Weights: ws,
	}
	lastRunState := rng.RunSeed(*seed, *runs-1)

	recorder := trace.NewRecorder()
	if *traceOut != "" {
		// Execute the final run with the recorder attached before the
		// campaign: runs are deterministic per seed, so this is the run
		// the campaign will measure — and a backend that cannot observe
		// chunks (msg) fails here, before the campaign's work is spent.
		be, err := engine.New(*backend)
		if err != nil {
			return err
		}
		spec := point
		spec.RNGState = lastRunState
		spec.Observe = recorder.Record
		if _, err := be.Run(ctx, spec); err != nil {
			return err
		}
	}

	var agg engine.Aggregate
	if declarable {
		// The flag-driven single point compiles to a declarative campaign
		// spec, which makes it hashable (therefore cacheable) and — being
		// plain data — executable by any campaign.Runner, local or remote
		// (-server).
		cspec := engine.CampaignSpec{
			Backend:    *backend,
			Techniques: []string{*tech},
			Ns:         []int64{*n},
			Ps:         []int{*p},
			Workload:   workSpec,
			H:          *h, HInDynamics: *hDyn, PerMessageCost: *msgCost,
			MinChunk: *minChunk, Chunk: *chunk, First: *first, Last: *last,
			Alpha: *alpha, Weights: ws,
			Replications: *runs,
			Seed:         *seed,
			SeedPolicy:   engine.SeedFlat,
		}
		res, err := campaign.Run(ctx, runner, cspec, sinks...)
		if err != nil {
			return err
		}
		agg = res.Aggregates[0]
	} else {
		res, err := engine.Campaign{
			Backend:      *backend,
			Points:       []engine.RunSpec{point},
			Replications: *runs,
			Workers:      *workers,
			SeedFor:      func(_, r int) uint64 { return rng.RunSeed(*seed, r) },
		}.RunWith(ctx, sinks...)
		if err != nil {
			return err
		}
		agg = res.Aggregates[0]
	}
	if err := closeOut(); err != nil {
		return err
	}
	seq := workload.Total(work, *n)

	fmt.Printf("technique        %s\n", *tech)
	fmt.Printf("backend          %s\n", *backend)
	fmt.Printf("tasks            %d\n", *n)
	fmt.Printf("PEs              %d\n", *p)
	fmt.Printf("workload         %s (mu=%.4g s, sigma=%.4g s)\n", work.Name(), work.Mean(), work.Std())
	fmt.Printf("overhead h       %.4g s\n", *h)
	fmt.Printf("runs             %d\n", *runs)
	fmt.Printf("mean makespan    %.6g s\n", agg.Makespan.Mean)
	fmt.Printf("mean sched ops   %.6g\n", agg.MeanOps)
	fmt.Printf("mean avg wasted  %.6g s\n", agg.Wasted.Mean)
	fmt.Printf("speedup          %.4g (ideal %d)\n", seq/agg.Makespan.Mean, *p)

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := trace.Write(f, recorder.Trace()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		log.Printf("wrote %d chunk events to %s", len(recorder.Trace().Events), *traceOut)
	}

	if *verbose {
		// Re-execute the campaign's last run directly: runs are
		// deterministic per (seed, run) so this reproduces exactly the
		// run the aggregate saw, without retaining every result.
		be, err := engine.New(*backend)
		if err != nil {
			return err
		}
		spec := point
		spec.RNGState = lastRunState
		lastRes, err := be.Run(ctx, spec)
		if err != nil {
			return err
		}
		fmt.Println("\nlast run, per PE:")
		var tb ascii.Table
		tb.AddRow("PE", "tasks", "ops", "compute_s", "idle_s")
		for w := 0; w < *p; w++ {
			tb.AddRowf(w, lastRes.TasksPerWorker[w], lastRes.OpsPerWorker[w],
				lastRes.Compute[w], lastRes.Makespan-lastRes.Compute[w])
		}
		os.Stdout.WriteString(tb.String())
	}
	return nil
}
