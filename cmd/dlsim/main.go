// Command dlsim runs a single dynamic-loop-scheduling simulation and
// prints its timing results — the smallest useful entry point into the
// library (paper Figure 2's information model maps directly onto the
// flags).
//
// Examples:
//
//	dlsim -tech FAC2 -n 8192 -p 64                      # Hagerup defaults
//	dlsim -tech TSS -n 100000 -p 72 -dist constant -p1 110e-6
//	dlsim -tech GSS -n 10000 -p 16 -min-chunk 5 -per-run 10
//	dlsim -tech WF -n 4096 -p 4 -weights 1,1,2,4
//	dlsim -tech FAC2 -n 8192 -p 64 -backend msg         # full MSG model
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/ascii"
	"repro/internal/engine"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dlsim: ")

	var (
		tech     = flag.String("tech", "FAC2", "DLS technique: "+strings.Join(sched.Names(), ", "))
		backend  = flag.String("backend", engine.DefaultBackend, "simulation backend: "+strings.Join(engine.Names(), ", "))
		workers  = flag.Int("workers", 0, "concurrent runs (0 = all CPU cores); results are worker-count independent")
		n        = flag.Int64("n", 1024, "number of tasks")
		p        = flag.Int("p", 8, "number of PEs")
		dist     = flag.String("dist", "exponential", "workload: constant, uniform, increasing, decreasing, exponential, normal, gamma, bimodal")
		p1       = flag.Float64("p1", 1, "first workload parameter (see internal/workload.Spec)")
		p2       = flag.Float64("p2", 0, "second workload parameter")
		p3       = flag.Float64("p3", 0, "third workload parameter")
		h        = flag.Float64("h", 0.5, "scheduling overhead per operation, seconds")
		seed     = flag.Uint64("seed", 1, "random seed")
		runs     = flag.Int("per-run", 1, "number of runs (mean over runs is reported)")
		minChunk = flag.Int64("min-chunk", 0, "GSS(k): minimum chunk size")
		chunk    = flag.Int64("chunk", 0, "CSS(k): fixed chunk size")
		first    = flag.Int64("first", 0, "TSS: first chunk size")
		last     = flag.Int64("last", 0, "TSS: last chunk size")
		alpha    = flag.Float64("alpha", 0, "TAP: confidence factor")
		weights  = flag.String("weights", "", "comma-separated PE weights (WF/AWF)")
		hDyn     = flag.Bool("h-in-dynamics", false, "charge h inside the master loop (ablation A1)")
		msgCost  = flag.Float64("msg-cost", 0, "fixed network cost per scheduling op, seconds (ablation A3)")
		verbose  = flag.Bool("v", false, "print per-PE breakdown")
		traceOut = flag.String("trace", "", "write a chunk-event trace of the last run to this CSV file")
		replayIn = flag.String("replay", "", "replay per-task times extracted from this trace CSV (overrides -dist)")
	)
	flag.Parse()

	var work workload.Workload
	if *replayIn != "" {
		f, err := os.Open(*replayIn)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := trace.Read(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.Validate(); err != nil {
			log.Fatal(err)
		}
		if tasks := tr.Tasks(); tasks < *n {
			log.Printf("trace covers %d tasks; reducing -n from %d", tasks, *n)
			*n = tasks
		}
		explicit, err := workload.NewExplicit(tr.PerTaskTimes(*n))
		if err != nil {
			log.Fatal(err)
		}
		work = explicit
	} else {
		spec := workload.Spec{Kind: *dist, P1: *p1, P2: *p2, P3: *p3, N: *n}
		w, err := spec.Build()
		if err != nil {
			log.Fatal(err)
		}
		work = w
	}

	var ws []float64
	if *weights != "" {
		for _, f := range strings.Split(*weights, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				log.Fatalf("bad weight %q: %v", f, err)
			}
			ws = append(ws, v)
		}
	}

	point := engine.RunSpec{
		Technique: *tech, N: *n, P: *p, Work: work,
		H: *h, HInDynamics: *hDyn, PerMessageCost: *msgCost,
		MinChunk: *minChunk, Chunk: *chunk, First: *first, Last: *last,
		Alpha: *alpha, Weights: ws,
	}
	seedFor := func(_, r int) uint64 { return rng.RunSeed(*seed, r) }

	recorder := trace.NewRecorder()
	if *traceOut != "" {
		// Execute the final run with the recorder attached before the
		// campaign: runs are deterministic per seed, so this is the run
		// the campaign will measure — and a backend that cannot observe
		// chunks (msg) fails here, before the campaign's work is spent.
		be, err := engine.New(*backend)
		if err != nil {
			log.Fatal(err)
		}
		spec := point
		spec.RNGState = seedFor(0, *runs-1)
		spec.Observe = recorder.Record
		if _, err := be.Run(spec); err != nil {
			log.Fatal(err)
		}
	}

	res, err := engine.Campaign{
		Backend:      *backend,
		Points:       []engine.RunSpec{point},
		Replications: *runs,
		Workers:      *workers,
		SeedFor:      seedFor,
		KeepRuns:     *verbose, // only the -v per-PE table reads per-run results
	}.Run()
	if err != nil {
		log.Fatal(err)
	}
	agg := res.Aggregates[0]
	seq := workload.Total(work, *n)

	fmt.Printf("technique        %s\n", *tech)
	fmt.Printf("backend          %s\n", *backend)
	fmt.Printf("tasks            %d\n", *n)
	fmt.Printf("PEs              %d\n", *p)
	fmt.Printf("workload         %s (mu=%.4g s, sigma=%.4g s)\n", work.Name(), work.Mean(), work.Std())
	fmt.Printf("overhead h       %.4g s\n", *h)
	fmt.Printf("runs             %d\n", *runs)
	fmt.Printf("mean makespan    %.6g s\n", agg.Makespan.Mean)
	fmt.Printf("mean sched ops   %.6g\n", agg.MeanOps)
	fmt.Printf("mean avg wasted  %.6g s\n", agg.Wasted.Mean)
	fmt.Printf("speedup          %.4g (ideal %d)\n", seq/agg.Makespan.Mean, *p)

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := trace.Write(f, recorder.Trace()); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %d chunk events to %s", len(recorder.Trace().Events), *traceOut)
	}

	if *verbose {
		lastRes := agg.Results[*runs-1]
		fmt.Println("\nlast run, per PE:")
		var tb ascii.Table
		tb.AddRow("PE", "tasks", "ops", "compute_s", "idle_s")
		for w := 0; w < *p; w++ {
			tb.AddRowf(w, lastRes.TasksPerWorker[w], lastRes.OpsPerWorker[w],
				lastRes.Compute[w], lastRes.Makespan-lastRes.Compute[w])
		}
		os.Stdout.WriteString(tb.String())
	}
}
