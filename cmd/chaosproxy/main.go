// Command chaosproxy is a fault-injecting reverse proxy for dlsimd
// fleet testing. It sits between a fleet client (dlsim -servers) and a
// real dlsimd node, and injects deterministic, seed-reproducible
// faults — connection resets, added latency, 5xx error envelopes,
// truncated or corrupted response streams, and blackholes — according
// to a JSON rules file (see internal/chaos for the rule schema).
//
// Usage:
//
//	chaosproxy -addr :19090 -target http://127.0.0.1:18080 \
//	    -seed 42 -rules faults.json
//
// A rules file is a JSON array of rule objects:
//
//	[
//	  {"name": "flaky-submit", "method": "POST", "path": "/v1/jobs",
//	   "fault": "error", "p": 0.2},
//	  {"name": "slow-stream", "path": "/results", "fault": "latency",
//	   "latency": "150ms", "first_n": 3}
//	]
//
// Every injected fault is logged to stderr with its rule name, so a CI
// run can confirm the chaos actually fired. The same seed and request
// sequence reproduce the same fault placements.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/chaos"
	"repro/internal/cliutil"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chaosproxy: ")
	cliutil.Exit(run())
}

func run() error {
	var (
		addr  = flag.String("addr", ":19090", "listen address")
		targ  = flag.String("target", "", "upstream dlsimd base URL (required)")
		seed  = flag.Uint64("seed", 1, "seed for the deterministic fault stream")
		rules = flag.String("rules", "", "JSON rules file (required; see package doc)")
		quiet = flag.Bool("quiet", false, "do not log individual fault injections")
	)
	flag.Parse()
	if *targ == "" || *rules == "" {
		return cliutil.Usagef("-target and -rules are required")
	}
	data, err := os.ReadFile(*rules)
	if err != nil {
		return cliutil.Usagef("rules: %v", err)
	}
	rs, err := chaos.ParseRules(data)
	if err != nil {
		return cliutil.Usagef("rules %s: %v", *rules, err)
	}
	eng, err := chaos.NewEngine(*seed, rs...)
	if err != nil {
		return cliutil.Usagef("rules %s: %v", *rules, err)
	}
	if !*quiet {
		eng.OnInject = func(rule string, fault chaos.Fault, method, path string) {
			log.Printf("inject %s (%s) on %s %s", rule, fault, method, path)
		}
	}
	p, err := chaos.NewProxy(*targ, eng)
	if err != nil {
		return cliutil.Usagef("target: %v", err)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           p,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := cliutil.SignalContext(context.Background())
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("proxying %s -> %s with %d rule(s), seed %d", *addr, *targ, len(rs), *seed)

	select {
	case err := <-errc:
		return fmt.Errorf("listen %s: %w", *addr, err)
	case <-ctx.Done():
	}
	// Injected faults abort connections on purpose; there is nothing
	// graceful to drain, so just close.
	_ = srv.Close()
	log.Printf("injected %d fault(s): %v", eng.Injected(), eng.Counts())
	return nil
}
