// Command benchtraj emits the repo's machine-readable performance
// trajectory: it measures campaign throughput (runs per second) and the
// per-run allocation profile through the engine's streaming pipeline
// under the configurations future PRs need to compare against — a
// multi-worker scaling sweep (these rows run the aggregate fast path:
// no per-run sink, so chunk partials bypass per-event delivery), the
// ordered per-event path for comparison, and the two cache-hit shapes:
// per-run replay (a sink consumes every stored record, decoded from the
// binary cache format) and the aggregate-only snapshot hit (stored
// aggregates served without touching per-run records). The samples are
// written as one JSON document (BENCH_PR8.json at the repo root for
// this PR, next to the earlier BENCH_PR3/5/6/7.json).
//
// With -servers the document additionally records distributed-fleet
// throughput: the same spec is sharded across the listed dlsimd nodes
// (campaign/distrib), timed cold and then re-submitted warm, so the
// derived resubmit_speedup captures how much a fleet with a shared
// result store (dlsimd -cache on a common directory) gains from
// shard-level content addressing.
//
// It complements `go test -bench` (which guards against regressions in
// relative terms on a developer's machine) by recording absolute
// throughput numbers in a stable schema that CI artifacts and later
// PRs can diff:
//
//	go run ./cmd/benchtraj -out BENCH_PR8.json
//	go run ./cmd/benchtraj -reps 50 -out /dev/stdout      # quick look
//	go run ./cmd/benchtraj -workers 1,2,4 -min-speedup 1.5 # CI scaling gate
//	go run ./cmd/benchtraj -min-cache-speedup 20           # CI replay gate
//	go run ./cmd/benchtraj -servers http://a:8080,http://b:8080 -shards 4
//
// Every measurement executes the identical declarative campaign spec,
// so the work per run is constant across configurations and PRs
// (changing the spec bumps the schema's spec_hash, making stale
// comparisons detectable). BENCH_PR8.json's spec hash matches
// BENCH_PR3/5/6/7.json's, so the documents are directly comparable.
//
// Each measurement records the host CPU count it ran on. On a
// single-CPU host the worker goroutines timeshare one core, so the
// derived parallel_speedup would measure scheduler noise, not scaling —
// the report then omits it and says so in derived.speedup_note, and the
// -min-speedup gate is skipped with a message.
//
// For drilling into where time and memory go, -cpuprofile and
// -memprofile write pprof profiles covering the live (non-cached)
// measurements:
//
//	go run ./cmd/benchtraj -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/campaign"
	"repro/internal/cache"
	"repro/internal/cliutil"
	"repro/internal/engine"
	"repro/internal/workload"
)

// measurement is one throughput sample.
type measurement struct {
	Name        string  `json:"name"`       // e.g. "campaign/workers=4"
	Workers     int     `json:"workers"`    // worker goroutines (0 = GOMAXPROCS)
	CPUs        int     `json:"cpus"`       // runtime.NumCPU() where this sample ran
	ChunkSize   int     `json:"chunk_size"` // replications per work item; 0 = auto
	Cached      bool    `json:"cached"`     // served from the result store
	Runs        int64   `json:"runs"`       // simulated runs per iteration
	Seconds     float64 `json:"seconds"`    // best iteration wall time
	RunsPerSec  float64 `json:"runs_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_run"` // heap allocations per simulated run (min across iterations)
}

// report is the trajectory document. Schema changes must bump Schema.
type report struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go_version"`
	CPUs      int    `json:"cpus"`
	SpecHash  string `json:"spec_hash"` // campaign measured, content-addressed
	Points    int    `json:"points"`
	Reps      int    `json:"replications"`
	Generated string `json:"generated_at"`
	Iters     int    `json:"iterations_per_measurement"`
	// Nodes and Shards describe the -servers fleet, when one was
	// measured: how many dlsimd nodes the campaign was sharded across
	// and into how many shards.
	Nodes   int     `json:"nodes,omitempty"`
	Shards  int     `json:"shards,omitempty"`
	Derived derived `json:"derived"`

	Measurements []measurement `json:"measurements"`
}

// scalingPoint is one step of the derived worker-scaling curve.
type scalingPoint struct {
	Workers int     `json:"workers"`
	Speedup float64 `json:"speedup"` // vs the workers=1 measurement
}

type derived struct {
	// ParallelSpeedup is the best multi-worker throughput of the sweep
	// over the workers=1 throughput. Omitted when the host has a single
	// CPU: the workers then timeshare one core and the ratio measures
	// scheduler noise, not parallel scaling (see SpeedupNote).
	ParallelSpeedup float64 `json:"parallel_speedup,omitempty"`
	// SpeedupNote explains an omitted ParallelSpeedup.
	SpeedupNote string `json:"speedup_note,omitempty"`
	// Scaling is the full speedup-vs-workers curve of the sweep.
	Scaling []scalingPoint `json:"scaling,omitempty"`
	// CacheSpeedup is the aggregate-only snapshot hit vs the fastest
	// live measurement (the field predates the replay/snapshot split and
	// keeps its name for cross-PR comparability).
	CacheSpeedup float64 `json:"cache_speedup"`
	// ReplaySpeedup is the per-run cached replay (every stored record
	// decoded and delivered to a sink) vs the fastest live measurement.
	ReplaySpeedup float64 `json:"replay_speedup"`
	// FastPathSpeedup is the aggregate fast path (chunk partials, no
	// per-run events) vs the ordered per-event path at one worker.
	FastPathSpeedup float64 `json:"fast_path_speedup"`
	// DistributedRunsPerSec is the cold sharded-fleet throughput of the
	// -servers measurement (0 when no fleet was measured).
	DistributedRunsPerSec float64 `json:"distributed_runs_per_sec,omitempty"`
	// ResubmitSpeedup is the warm re-submission of the same sharded
	// campaign vs the cold run. With a result store shared across the
	// fleet every shard replays from the cache, so this measures
	// shard-level content addressing end to end.
	ResubmitSpeedup float64 `json:"resubmit_speedup,omitempty"`
}

// discardSink consumes ordered per-run events and drops them. It has no
// ConsumePartial on purpose: attaching it forces the engine's per-event
// path, which is exactly what the ordered and replay rows must pay for.
type discardSink struct{}

func (discardSink) Consume(context.Context, engine.Event) error { return nil }
func (discardSink) Close() error                                { return nil }

// countingExec runs one campaign execution and returns its wall time and
// the heap allocations performed during it. ReadMemStats is global, so
// the count includes pipeline bookkeeping — exactly what the trajectory
// should charge per run.
func countingExec(ctx context.Context, spec engine.CampaignSpec, cfg engine.ExecConfig) (secs float64, allocs uint64, err error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	if _, err := spec.Execute(ctx, cfg); err != nil {
		return 0, 0, err
	}
	secs = time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	return secs, after.Mallocs - before.Mallocs, nil
}

// parseWorkers decodes the -workers sweep list ("1,2,4,8").
func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("-workers: %q is not a positive integer", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-workers: empty sweep")
	}
	if out[0] != 1 {
		return nil, fmt.Errorf("-workers: the sweep must start at 1 (the scaling baseline), got %v", out)
	}
	return out, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchtraj: ")
	err := run()
	cliutil.Exit(err)
}

func run() error {
	var (
		out          = flag.String("out", "BENCH_PR8.json", "output file for the trajectory document")
		reps         = flag.Int("reps", 250, "replications per campaign point")
		iters        = flag.Int("iters", 3, "iterations per measurement (best is reported)")
		workersCSV   = flag.String("workers", "1,2,4,8", "comma-separated worker counts to sweep (must start at 1)")
		chunk        = flag.Int("chunk", 0, "replications per work item (0 = auto-size; never changes results)")
		minSpeedup   = flag.Float64("min-speedup", 0, "fail unless the 4-worker speedup reaches this (0 = no gate; skipped on hosts with fewer than 4 CPUs)")
		minCacheSpup = flag.Float64("min-cache-speedup", 0, "fail unless the per-run cached replay beats the fastest live run by this factor (0 = no gate)")
		cpuprofile   = flag.String("cpuprofile", "", "write a pprof CPU profile of the live measurements to this file")
		memprofile   = flag.String("memprofile", "", "write a pprof heap profile (after the live measurements) to this file")
		serversCSV   = flag.String("servers", "", "comma-separated dlsimd base URLs; also measure the campaign sharded across this fleet (cold, then warm re-submission)")
		shards       = flag.Int("shards", 0, "with -servers: shard count for the fleet measurement (0 = one per node)")
	)
	flag.Parse()
	if *reps <= 0 || *iters <= 0 {
		return cliutil.Usagef("-reps and -iters must be positive")
	}
	sweep, err := parseWorkers(*workersCSV)
	if err != nil {
		return cliutil.Usagef("%v", err)
	}

	spec := engine.CampaignSpec{
		Techniques:   []string{"FAC2", "GSS"},
		Ns:           []int64{4096},
		Ps:           []int{8},
		Workload:     workload.Spec{Kind: "exponential", P1: 1},
		H:            0.5,
		Replications: *reps,
		Seed:         20170601,
	}
	points, err := spec.Points()
	if err != nil {
		return err
	}
	hash, err := spec.Hash()
	if err != nil {
		return err
	}
	totalRuns := int64(len(points)) * int64(*reps)
	cpus := runtime.NumCPU()
	ctx := context.Background()

	measure := func(name string, workers int, store cache.Store, cached, ordered bool) (measurement, error) {
		best := measurement{
			Name: name, Workers: workers, CPUs: cpus, ChunkSize: *chunk,
			Cached: cached, Runs: totalRuns,
		}
		var minAllocs uint64
		for i := 0; i < *iters; i++ {
			var sinks []engine.Sink
			if ordered {
				sinks = []engine.Sink{discardSink{}}
			}
			secs, allocs, err := countingExec(ctx, spec, engine.ExecConfig{
				Workers: workers, ChunkSize: *chunk, Cache: store, Sinks: sinks,
			})
			if err != nil {
				return measurement{}, fmt.Errorf("%s: %w", name, err)
			}
			if best.Seconds == 0 || secs < best.Seconds {
				best.Seconds = secs
			}
			if i == 0 || allocs < minAllocs {
				minAllocs = allocs
			}
		}
		best.RunsPerSec = float64(totalRuns) / best.Seconds
		best.AllocsPerOp = float64(minAllocs) / float64(totalRuns)
		log.Printf("%-22s %8.0f runs/s  %6.2f allocs/run  (%d runs in %.3fs)",
			name, best.RunsPerSec, best.AllocsPerOp, totalRuns, best.Seconds)
		return best, nil
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
	}
	var live []measurement
	byWorkers := make(map[int]measurement, len(sweep))
	for _, w := range sweep {
		m, err := measure(fmt.Sprintf("campaign/workers=%d", w), w, nil, false, false)
		if err != nil {
			return err
		}
		live = append(live, m)
		byWorkers[w] = m
	}
	// The ordered per-event path at one worker: same campaign with one
	// order-sensitive sink attached, which disables the partial bypass.
	orderedRow, err := measure("campaign/ordered/workers=1", 1, nil, false, true)
	if err != nil {
		return err
	}
	live = append(live, orderedRow)
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		runtime.GC() // settle live objects before the heap snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	// Cache hits: populate the store once live, then measure both hit
	// shapes — the per-run replay (a sink consumes every stored record,
	// decoded from the binary format) and the aggregate-only snapshot hit
	// (stored aggregates served without touching per-run records).
	store := cache.NewMemory()
	if _, err := spec.Execute(ctx, engine.ExecConfig{Cache: store, ChunkSize: *chunk}); err != nil {
		return err
	}
	replay, err := measure("campaign/cached-replay", 0, store, true, true)
	if err != nil {
		return err
	}
	snapshot, err := measure("campaign/cached-snapshot", 0, store, true, false)
	if err != nil {
		return err
	}

	// Distributed fleet: shard the identical spec across the -servers
	// nodes (campaign/distrib), time the cold run, then warm
	// re-submissions. When the fleet shares a result store the warm pass
	// replays every shard from the cache without re-simulation.
	var fleetRows []measurement
	var fleetCold, fleetWarm measurement
	nodes, shardsUsed := 0, 0
	if *serversCSV != "" {
		for _, u := range strings.Split(*serversCSV, ",") {
			if strings.TrimSpace(u) != "" {
				nodes++
			}
		}
		shardsUsed = *shards
		if shardsUsed == 0 {
			shardsUsed = nodes
		}
		fleet, closeFleet, err := cliutil.NewFleetRunner(*serversCSV, cliutil.FleetOptions{Shards: *shards})
		if err != nil {
			return err
		}
		defer closeFleet()
		timeFleet := func(name string, iters int, cached bool) (measurement, error) {
			m := measurement{Name: name, CPUs: cpus, Cached: cached, Runs: totalRuns}
			for i := 0; i < iters; i++ {
				start := time.Now()
				if _, err := campaign.Run(ctx, fleet, spec); err != nil {
					return measurement{}, fmt.Errorf("%s: %w", name, err)
				}
				secs := time.Since(start).Seconds()
				if m.Seconds == 0 || secs < m.Seconds {
					m.Seconds = secs
				}
			}
			m.RunsPerSec = float64(totalRuns) / m.Seconds
			log.Printf("%-22s %8.0f runs/s  (%d runs in %.3fs, %d nodes, %d shards)",
				name, m.RunsPerSec, totalRuns, m.Seconds, nodes, shardsUsed)
			return m, nil
		}
		// The cold pass is a single run on purpose: a best-of loop would
		// hit the fleet's shared cache from the second iteration on and
		// report warm numbers as cold.
		fleetCold, err = timeFleet("campaign/distributed/cold", 1, false)
		if err != nil {
			return err
		}
		fleetWarm, err = timeFleet("campaign/distributed/warm", *iters, true)
		if err != nil {
			return err
		}
		fleetRows = append(fleetRows, fleetCold, fleetWarm)
	}

	// Derive the scaling curve against the workers=1 baseline.
	base := byWorkers[1]
	bestLive := base
	var d derived
	for _, w := range sweep[1:] {
		m := byWorkers[w]
		d.Scaling = append(d.Scaling, scalingPoint{Workers: w, Speedup: m.RunsPerSec / base.RunsPerSec})
		if m.RunsPerSec > bestLive.RunsPerSec {
			bestLive = m
		}
	}
	if cpus == 1 {
		// A one-CPU sweep timeshares every worker on one core: the ratio
		// would compare scheduler overhead, not parallel scaling.
		d.SpeedupNote = "host has 1 CPU; multi-worker throughput ratios measure goroutine scheduling overhead, not parallel scaling, so parallel_speedup is omitted"
		log.Print("note: single-CPU host; omitting derived parallel_speedup")
	} else if len(sweep) > 1 {
		d.ParallelSpeedup = bestLive.RunsPerSec / base.RunsPerSec
	}
	d.CacheSpeedup = snapshot.RunsPerSec / bestLive.RunsPerSec
	d.ReplaySpeedup = replay.RunsPerSec / bestLive.RunsPerSec
	d.FastPathSpeedup = base.RunsPerSec / orderedRow.RunsPerSec
	if len(fleetRows) > 0 {
		d.DistributedRunsPerSec = fleetCold.RunsPerSec
		d.ResubmitSpeedup = fleetWarm.RunsPerSec / fleetCold.RunsPerSec
	}

	rep := report{
		Schema:       "dlsim-bench-trajectory/v4", // v4: distributed fleet rows + nodes/shards + resubmit_speedup
		GoVersion:    runtime.Version(),
		CPUs:         cpus,
		SpecHash:     hash,
		Points:       len(points),
		Reps:         *reps,
		Generated:    time.Now().UTC().Format(time.RFC3339),
		Iters:        *iters,
		Nodes:        nodes,
		Shards:       shardsUsed,
		Derived:      d,
		Measurements: append(append(live, replay, snapshot), fleetRows...),
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	if d.ParallelSpeedup > 0 {
		log.Printf("parallel speedup %.2fx (best of sweep), replay %.2fx, snapshot %.2fx, fast path %.2fx; wrote %s",
			d.ParallelSpeedup, d.ReplaySpeedup, d.CacheSpeedup, d.FastPathSpeedup, *out)
	} else {
		log.Printf("replay speedup %.2fx, snapshot %.2fx, fast path %.2fx; wrote %s",
			d.ReplaySpeedup, d.CacheSpeedup, d.FastPathSpeedup, *out)
	}
	if d.ResubmitSpeedup > 0 {
		log.Printf("distributed: %d nodes, %d shards, %.0f runs/s cold, resubmit speedup %.2fx",
			nodes, shardsUsed, d.DistributedRunsPerSec, d.ResubmitSpeedup)
	}

	// The CI scaling gate: 4 workers on a ≥4-CPU host must beat the
	// sequential baseline by the given factor.
	if *minSpeedup > 0 {
		if cpus < 4 {
			log.Printf("min-speedup gate skipped: host has %d CPUs, need at least 4 for a meaningful 4-worker measurement", cpus)
			return nil
		}
		m, ok := byWorkers[4]
		if !ok {
			return fmt.Errorf("-min-speedup needs a 4-worker measurement; add 4 to -workers (got %s)", *workersCSV)
		}
		got := m.RunsPerSec / base.RunsPerSec
		if got < *minSpeedup {
			return fmt.Errorf("scaling gate failed: 4-worker speedup %.2fx < required %.2fx", got, *minSpeedup)
		}
		log.Printf("scaling gate passed: 4-worker speedup %.2fx >= %.2fx", got, *minSpeedup)
	}

	// The CI replay gate: a per-run cache hit must beat the fastest live
	// run by the given factor. Unlike the scaling gate, this needs no CPU
	// minimum — the replay is a single-threaded feed loop and the ratio
	// only grows on hosts where the live sweep parallelizes worse.
	if *minCacheSpup > 0 {
		if d.ReplaySpeedup < *minCacheSpup {
			return fmt.Errorf("cache replay gate failed: replay speedup %.2fx < required %.2fx", d.ReplaySpeedup, *minCacheSpup)
		}
		log.Printf("cache replay gate passed: replay speedup %.2fx >= %.2fx", d.ReplaySpeedup, *minCacheSpup)
	}
	return nil
}
