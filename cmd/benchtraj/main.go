// Command benchtraj emits the repo's machine-readable performance
// trajectory: it measures campaign throughput (runs per second) and the
// per-run allocation profile through the engine's streaming pipeline
// under the configurations future PRs need to compare against —
// sequential vs parallel execution and live vs cache-replayed results —
// and writes them as one JSON document (BENCH_PR5.json at the repo root
// for this PR, next to the earlier BENCH_PR3.json).
//
// It complements `go test -bench` (which guards against regressions in
// relative terms on a developer's machine) by recording absolute
// throughput numbers in a stable schema that CI artifacts and later
// PRs can diff:
//
//	go run ./cmd/benchtraj -out BENCH_PR5.json
//	go run ./cmd/benchtraj -reps 50 -out /dev/stdout   # quick look
//
// Every measurement executes the identical declarative campaign spec,
// so the work per run is constant across configurations and PRs
// (changing the spec bumps the schema's spec_hash, making stale
// comparisons detectable). BENCH_PR5.json's spec hash matches
// BENCH_PR3.json's, so the two documents are directly comparable.
//
// For drilling into where time and memory go, -cpuprofile and
// -memprofile write pprof profiles covering the live (non-cached)
// measurements:
//
//	go run ./cmd/benchtraj -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/cache"
	"repro/internal/cliutil"
	"repro/internal/engine"
	"repro/internal/workload"
)

// measurement is one throughput sample.
type measurement struct {
	Name        string  `json:"name"`    // e.g. "campaign/parallel"
	Workers     int     `json:"workers"` // 0 = GOMAXPROCS
	Cached      bool    `json:"cached"`  // served from the result store
	Runs        int64   `json:"runs"`    // simulated runs per iteration
	Seconds     float64 `json:"seconds"` // best iteration wall time
	RunsPerSec  float64 `json:"runs_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_run"` // heap allocations per simulated run (min across iterations)
}

// report is the trajectory document. Schema changes must bump Schema.
type report struct {
	Schema    string  `json:"schema"`
	GoVersion string  `json:"go_version"`
	CPUs      int     `json:"cpus"`
	SpecHash  string  `json:"spec_hash"` // campaign measured, content-addressed
	Points    int     `json:"points"`
	Reps      int     `json:"replications"`
	Generated string  `json:"generated_at"`
	Iters     int     `json:"iterations_per_measurement"`
	Derived   derived `json:"derived"`

	Measurements []measurement `json:"measurements"`
}

type derived struct {
	ParallelSpeedup float64 `json:"parallel_speedup"` // parallel vs sequential
	CacheSpeedup    float64 `json:"cache_speedup"`    // cached vs parallel live
}

// countingExec runs one campaign execution and returns its wall time and
// the heap allocations performed during it. ReadMemStats is global, so
// the count includes pipeline bookkeeping — exactly what the trajectory
// should charge per run.
func countingExec(ctx context.Context, spec engine.CampaignSpec, cfg engine.ExecConfig) (secs float64, allocs uint64, err error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	if _, err := spec.Execute(ctx, cfg); err != nil {
		return 0, 0, err
	}
	secs = time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	return secs, after.Mallocs - before.Mallocs, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchtraj: ")
	err := run()
	cliutil.Exit(err)
}

func run() error {
	var (
		out        = flag.String("out", "BENCH_PR5.json", "output file for the trajectory document")
		reps       = flag.Int("reps", 250, "replications per campaign point")
		iters      = flag.Int("iters", 3, "iterations per measurement (best is reported)")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the live measurements to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile (after the live measurements) to this file")
	)
	flag.Parse()
	if *reps <= 0 || *iters <= 0 {
		return cliutil.Usagef("-reps and -iters must be positive")
	}

	spec := engine.CampaignSpec{
		Techniques:   []string{"FAC2", "GSS"},
		Ns:           []int64{4096},
		Ps:           []int{8},
		Workload:     workload.Spec{Kind: "exponential", P1: 1},
		H:            0.5,
		Replications: *reps,
		Seed:         20170601,
	}
	points, err := spec.Points()
	if err != nil {
		return err
	}
	hash, err := spec.Hash()
	if err != nil {
		return err
	}
	totalRuns := int64(len(points)) * int64(*reps)
	ctx := context.Background()

	measure := func(name string, workers int, store cache.Store, cached bool) (measurement, error) {
		best := measurement{Name: name, Workers: workers, Cached: cached, Runs: totalRuns}
		var minAllocs uint64
		for i := 0; i < *iters; i++ {
			secs, allocs, err := countingExec(ctx, spec, engine.ExecConfig{Workers: workers, Cache: store})
			if err != nil {
				return measurement{}, fmt.Errorf("%s: %w", name, err)
			}
			if best.Seconds == 0 || secs < best.Seconds {
				best.Seconds = secs
			}
			if i == 0 || allocs < minAllocs {
				minAllocs = allocs
			}
		}
		best.RunsPerSec = float64(totalRuns) / best.Seconds
		best.AllocsPerOp = float64(minAllocs) / float64(totalRuns)
		log.Printf("%-20s %8.0f runs/s  %6.2f allocs/run  (%d runs in %.3fs)",
			name, best.RunsPerSec, best.AllocsPerOp, totalRuns, best.Seconds)
		return best, nil
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
	}
	seq, err := measure("campaign/sequential", 1, nil, false)
	if err != nil {
		return err
	}
	par, err := measure("campaign/parallel", 0, nil, false)
	if err != nil {
		return err
	}
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		runtime.GC() // settle live objects before the heap snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	// Cached replay: populate the store once live, then measure replays.
	store := cache.NewMemory()
	if _, err := spec.Execute(ctx, engine.ExecConfig{Cache: store}); err != nil {
		return err
	}
	cached, err := measure("campaign/cached", 0, store, true)
	if err != nil {
		return err
	}

	rep := report{
		Schema:    "dlsim-bench-trajectory/v2", // v2: adds allocs_per_run
		GoVersion: runtime.Version(),
		CPUs:      runtime.NumCPU(),
		SpecHash:  hash,
		Points:    len(points),
		Reps:      *reps,
		Generated: time.Now().UTC().Format(time.RFC3339),
		Iters:     *iters,
		Derived: derived{
			ParallelSpeedup: par.RunsPerSec / seq.RunsPerSec,
			CacheSpeedup:    cached.RunsPerSec / par.RunsPerSec,
		},
		Measurements: []measurement{seq, par, cached},
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	log.Printf("parallel speedup %.2fx, cache speedup %.2fx; wrote %s",
		rep.Derived.ParallelSpeedup, rep.Derived.CacheSpeedup, *out)
	return nil
}
