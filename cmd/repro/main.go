// Command repro regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md §4 for the experiment index):
//
//	repro tss1                  Figure 3  (TSS publication, experiment 1)
//	repro tss2                  Figure 4  (TSS publication, experiment 2)
//	repro hagerup -n 1024       Figure 5  (a–d panels)
//	repro hagerup -n 8192       Figure 6
//	repro hagerup -n 65536      Figure 7
//	repro hagerup -n 524288     Figure 8
//	repro fig9                  Figure 9  (FAC per-run analysis)
//	repro tables                Tables II and III
//	repro csv -out DIR          raw data export (paper §V)
//	repro spec -spec FILE       run a declarative JSON campaign spec
//	repro all                   everything above
//
// The paper's full configuration uses 1000 runs per cell; pass -runs to
// trade precision for speed (e.g. -runs 50 completes in seconds).
//
// Grid experiments (hagerup, fig9, extension, csv, spec) accept -cache
// DIR: results are content-addressed by the canonical hash of the
// campaign spec, so a repeated invocation is served from the store
// without re-simulation. The hagerup, fig9 and spec subcommands accept
// -out FILE to stream every run's metrics as CSV (or JSON Lines with a
// .jsonl suffix) while the campaign executes; for the csv subcommand
// -out names the output directory.
//
// Grid experiments also accept -server URL: the campaigns then execute
// on a remote dlsimd daemon through the typed /v1 client SDK
// (repro/client) instead of in-process, with bit-identical results —
// the figures and tables come out the same either way.
//
// Ctrl-C (or SIGTERM) cancels the in-flight campaign cleanly through
// the engine's context plumbing: partial -out output is flushed and the
// command exits with code 130. Usage errors exit 2, runtime failures 1
// (internal/cliutil).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/campaign"
	"repro/internal/ascii"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiment"
	"repro/internal/metrics"
	"repro/internal/refdata"
	"repro/internal/sched"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("repro: ")
	ctx, stop := cliutil.SignalContext(context.Background())
	err := run(ctx)
	stop()
	cliutil.Exit(err)
}

func run(ctx context.Context) error {
	if len(os.Args) < 2 {
		usage()
		return cliutil.Usagef("missing subcommand")
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	var (
		runs     = fs.Int("runs", 1000, "runs per grid cell (paper: 1000)")
		seed     = fs.Uint64("seed", 20170601, "base seed (must differ from the reference seed)")
		n        = fs.Int64("n", 1024, "task count for the hagerup subcommand")
		out      = fs.String("out", "", `csv subcommand: output directory (default "rawdata"); hagerup/fig9/spec: stream per-run metrics to this file (.jsonl = JSON Lines, otherwise CSV)`)
		msg      = fs.Bool("msg", false, "drive TSS experiments through the full MSG simulation")
		specFile = fs.String("spec", "", "JSON campaign spec file for the spec subcommand")
		cacheDir = fs.String("cache", "", "content-addressed result cache directory; repeated campaigns are served without re-simulation")
		workers  = fs.Int("workers", 0, "concurrent runs (0 = all CPU cores); results are worker-count independent")
		backend  = fs.String("backend", engine.DefaultBackend,
			"simulation backend for grid experiments: "+strings.Join(engine.Names(), ", "))
		server = fs.String("server", "",
			"dlsimd base URL; grid campaigns (hagerup, fig9, extension, csv, spec) execute remotely through the /v1 API")
	)
	fs.Parse(os.Args[2:])

	if *seed == refdata.Seed {
		return cliutil.Usagef("seed equals the pinned reference seed; choose another (DESIGN.md §3.2)")
	}

	if *server != "" && *cacheDir != "" {
		return cliutil.Usagef("-cache is the local result store; the server manages its own (drop -cache with -server)")
	}
	store, err := cliutil.OpenStore(*cacheDir)
	if err != nil {
		return err
	}
	// The runner is where grid campaigns execute: in-process over the
	// local store by default, a remote dlsimd daemon with -server —
	// bit-identical results either way.
	runner, closeRunner, err := cliutil.NewRunner(*server, store, *workers)
	if err != nil {
		return err
	}
	defer closeRunner()

	// Subcommands streaming per-run metrics share one sink set; closeOut
	// is idempotent and deferred so a cancelled campaign still flushes
	// the partial output the pipeline delivered.
	openOut := func() ([]engine.Sink, func() error, error) { return cliutil.OpenOut(*out) }

	switch cmd {
	case "tss1":
		return runTzen(ctx, 1, *msg)
	case "tss2":
		return runTzen(ctx, 2, *msg)
	case "hagerup":
		sinks, closeOut, err := openOut()
		if err != nil {
			return err
		}
		defer closeOut()
		if _, err := runHagerup(ctx, *n, *runs, *seed, false, *backend, runner, sinks); err != nil {
			return err
		}
		return closeOut()
	case "fig9":
		sinks, closeOut, err := openOut()
		if err != nil {
			return err
		}
		defer closeOut()
		if err := runFig9(ctx, *runs, *seed, *backend, runner, sinks); err != nil {
			return err
		}
		return closeOut()
	case "tables":
		return printTables()
	case "verify":
		return runVerify(ctx, *runs, *seed)
	case "extension":
		return runExtension(ctx, *runs, *seed, *backend, runner)
	case "csv":
		dir := *out
		if dir == "" {
			dir = "rawdata"
		}
		return exportCSV(ctx, dir, *runs, *seed, *backend, runner)
	case "spec":
		if *specFile == "" {
			return cliutil.Usagef("spec: -spec FILE is required")
		}
		sinks, closeOut, err := openOut()
		if err != nil {
			return err
		}
		defer closeOut()
		if err := cliutil.RunSpecFile(ctx, *specFile, runner, sinks); err != nil {
			return err
		}
		return closeOut()
	case "all":
		if err := printTables(); err != nil {
			return err
		}
		if err := runTzen(ctx, 1, *msg); err != nil {
			return err
		}
		if err := runTzen(ctx, 2, *msg); err != nil {
			return err
		}
		for _, nn := range []int64{1024, 8192, 65536, 524288} {
			if _, err := runHagerup(ctx, nn, *runs, *seed, false, *backend, runner, nil); err != nil {
				return err
			}
		}
		return runFig9(ctx, *runs, *seed, *backend, runner, nil)
	default:
		usage()
		return cliutil.Usagef("unknown subcommand %q", cmd)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: repro {tss1|tss2|hagerup|fig9|tables|verify|extension|csv|spec|all} [flags]")
	fmt.Fprintln(os.Stderr, "run 'repro <subcommand> -h' for flags")
}

// runVerify runs the full verification-via-reproducibility pipeline
// (internal/core) and prints one verdict per artifact, as the paper's
// conclusion does: BOLD experiments reproduce, TSS experiments do not.
func runVerify(ctx context.Context, runs int, seed uint64) error {
	fmt.Println("\n=== Verification via reproducibility (paper methodology, internal/core) ===")
	fmt.Println()
	for exp := 1; exp <= 2; exp++ {
		report, err := core.VerifyTzen(ctx, exp)
		if err != nil {
			return err
		}
		fmt.Println(report.Summary())
		for _, c := range report.Checks {
			fmt.Printf("    %-12s sim %8.2f  ref %8.2f  (%+7.1f%%)  %s\n",
				c.Name, c.Simulated, c.Reference, c.Relative, c.Verdict)
		}
	}
	for _, n := range []int64{1024, 8192, 65536, 524288} {
		log.Printf("verifying Hagerup grid n=%d (%d runs per cell)...", n, runs)
		report, err := core.VerifyHagerup(ctx, n, runs, seed)
		if err != nil {
			return err
		}
		fmt.Println(report.Summary())
		for _, c := range report.Checks {
			// Per-cell lines only for the interesting (non-reproduced)
			// checks; the summary line covers the rest.
			if c.Verdict == core.Diverged || c.Verdict == core.Excluded {
				fmt.Printf("    %-14s sim %10.4g  ref %10.4g  (%+7.1f%%)  %s\n",
					c.Name, c.Simulated, c.Reference, c.Relative, c.Verdict)
			}
		}
	}
	if runs < 1000 {
		fmt.Printf("\nnote: %d runs per cell; heavy-tailed cells (GSS, FAC, BOLD at small p)\n", runs)
		fmt.Println("need the paper's 1000 runs for their means to stabilize inside the bound.")
	}
	fmt.Println("\nconclusion (as the paper's §VI): the BOLD-publication experiments")
	fmt.Println("reproduce, verifying the DLS implementation; the TSS-publication")
	fmt.Println("experiments do not (SS/GSS), for the systemic reasons given in §IV-A.")
	return nil
}

// runExtension executes the paper's §VI future work: the TAP/WF/AWF*/AF
// techniques on the Hagerup grid, plus the TSS publication's GSS(k) and
// CSS(k) parameter sweeps.
func runExtension(ctx context.Context, runs int, seed uint64, backend string, runner campaign.Runner) error {
	fmt.Println("\n=== Extension: future-work techniques (paper §VI) on the Hagerup grid ===")
	spec := experiment.FutureWorkSpec(seed)
	spec.Ns = []int64{8192}
	spec.Runs = runs
	spec.Backend = backend
	spec.Runner = runner
	log.Printf("future-work grid: n=8192, %d runs per cell...", runs)
	res, err := experiment.RunHagerup(ctx, spec)
	if err != nil {
		return err
	}
	var tb ascii.Table
	header := []string{"technique"}
	for _, p := range spec.Ps {
		header = append(header, fmt.Sprintf("p=%d", p))
	}
	tb.AddRow(header...)
	for _, tech := range spec.Techniques {
		row := []any{tech}
		for _, p := range spec.Ps {
			c, err := res.Cell(tech, 8192, p)
			if err != nil {
				return err
			}
			row = append(row, c.Wasted.Mean)
		}
		tb.AddRowf(row...)
	}
	os.Stdout.WriteString(tb.String())

	fmt.Println("\n=== Extension: GSS(k) sweep (TSS publication: k = 1, 2, 5, 10, 20, n/p) ===")
	gss, err := experiment.GSSSweep(ctx, 8192, 8, runs, 1, 0.5, seed)
	if err != nil {
		return err
	}
	var tb2 ascii.Table
	tb2.AddRow("k", "mean wasted [s]", "mean sched ops")
	for i, k := range gss.Ks {
		tb2.AddRowf(k, gss.Wasted[i], gss.Ops[i])
	}
	os.Stdout.WriteString(tb2.String())

	fmt.Println("\n=== Extension: CSS(k) chunk-size study (TSS publication, 100000 tasks, 72 PEs) ===")
	css, err := experiment.CSSSweep(ctx, 100000, 72, 110e-6, 5e-6, 200e-6)
	if err != nil {
		return err
	}
	var tb3 ascii.Table
	tb3.AddRow("k", "speedup (ideal 72)")
	for i, k := range css.Ks {
		tb3.AddRowf(k, css.Speedups[i])
	}
	os.Stdout.WriteString(tb3.String())
	fmt.Println("\nthe publication reports speedup 69.2 at k = n/p = 1388")
	return nil
}

// runTzen reproduces Figure 3 or 4: the reference curves (panel a) and
// the simulated curves (panel b).
func runTzen(ctx context.Context, exp int, useMSG bool) error {
	spec := experiment.TzenExperiment1()
	figure := 3
	if exp == 2 {
		spec = experiment.TzenExperiment2()
		figure = 4
	}
	spec.UseMSG = useMSG
	res, err := experiment.RunTzen(ctx, spec)
	if err != nil {
		return err
	}

	fmt.Printf("\n=== Figure %da: values from the original publication [12] (%s) ===\n\n", figure, spec.Name)
	var refSeries []ascii.Series
	for _, label := range refdata.TzenLabels(exp) {
		ys, _ := refdata.TzenSpeedup(exp, label)
		xs := make([]float64, len(refdata.TzenPs))
		for i, p := range refdata.TzenPs {
			xs[i] = float64(p)
		}
		refSeries = append(refSeries, ascii.Series{Label: label, X: xs, Y: ys})
	}
	fmt.Println(ascii.Plot(ascii.PlotConfig{XLabel: "number PEs", YLabel: "Speedup"}, refSeries...))

	fmt.Printf("\n=== Figure %db: values from the present simulation ===\n\n", figure)
	var simSeries []ascii.Series
	var tb ascii.Table
	header := []string{"p"}
	for _, c := range spec.Curves {
		header = append(header, c.Label)
	}
	tb.AddRow(header...)
	for i, p := range spec.Ps {
		row := []any{p}
		for _, c := range spec.Curves {
			row = append(row, res.Curves[c.Label][i].Speedup)
		}
		tb.AddRowf(row...)
	}
	for _, c := range spec.Curves {
		var xs, ys []float64
		for _, pt := range res.Curves[c.Label] {
			xs = append(xs, float64(pt.P))
			ys = append(ys, pt.Speedup)
		}
		simSeries = append(simSeries, ascii.Series{Label: c.Label, X: xs, Y: ys})
	}
	fmt.Println(ascii.Plot(ascii.PlotConfig{XLabel: "number PEs", YLabel: "Speedup"}, simSeries...))
	fmt.Println(tb.String())
	fmt.Println(tzenVerdict(exp, res))
	return nil
}

// tzenVerdict states the paper's §IV-A conclusion for the experiment:
// CSS/TSS reproduce, SS/GSS diverge.
func tzenVerdict(exp int, res *experiment.TzenResult) string {
	last := len(refdata.TzenPs) - 1
	verdict := "reproducibility per technique (at p=80, vs. digitized reference):\n"
	for _, label := range refdata.TzenLabels(exp) {
		ref, _ := refdata.TzenSpeedup(exp, label)
		simV := res.Curves[label][last].Speedup
		rd := metrics.RelativeDiscrepancy(simV, ref[last])
		status := "MATCHES"
		if rd > 25 || rd < -25 {
			status = "DIVERGES (as in the paper for SS/GSS)"
		}
		verdict += fmt.Sprintf("  %-8s sim %6.1f vs ref %6.1f  (%+6.1f%%)  %s\n", label, simV, ref[last], rd, status)
	}
	return verdict
}

// runHagerup reproduces one of Figures 5–8: panels (a) reference values,
// (b) simulation values, (c) discrepancy, (d) relative discrepancy.
func runHagerup(ctx context.Context, n int64, runs int, seed uint64, keepPerRun bool, backend string, runner campaign.Runner, sinks []engine.Sink) (*experiment.HagerupResult, error) {
	figure := map[int64]int{1024: 5, 8192: 6, 65536: 7, 524288: 8}[n]
	if figure == 0 {
		return nil, cliutil.Usagef("hagerup: n must be one of 1024, 8192, 65536, 524288 (Table III); got %d", n)
	}
	spec := experiment.HagerupGrid(seed)
	spec.Ns = []int64{n}
	spec.Runs = runs
	spec.KeepPerRun = keepPerRun
	spec.Backend = backend
	spec.Runner = runner
	spec.Sinks = sinks
	log.Printf("Figure %d: %d tasks, %d runs per cell...", figure, n, runs)
	res, err := experiment.RunHagerup(ctx, spec)
	if err != nil {
		return nil, err
	}

	ps := spec.Ps
	fmt.Printf("\n=== Figure %da: %d tasks — values from original publication [14] (pinned reference) ===\n\n", figure, n)
	printWastedTable(ps, func(tech string, p int) float64 {
		v, _ := refdata.Wasted(tech, n, p)
		return v
	})
	fmt.Printf("\n=== Figure %db: %d tasks — values from the present simulation ===\n\n", figure, n)
	printWastedTable(ps, func(tech string, p int) float64 {
		c, _ := res.Cell(tech, n, p)
		return c.Wasted.Mean
	})

	var plotSeries []ascii.Series
	for _, tech := range spec.Techniques {
		_, means, _ := res.Series(tech, n)
		xs := make([]float64, len(ps))
		for i, p := range ps {
			xs[i] = float64(p)
		}
		plotSeries = append(plotSeries, ascii.Series{Label: tech, X: xs, Y: means})
	}
	fmt.Println(ascii.Plot(ascii.PlotConfig{
		XLabel: "number of PEs",
		YLabel: "avg of avg wasted time over runs [s], log scale",
		LogY:   true,
	}, plotSeries...))

	fmt.Printf("\n=== Figure %dc: discrepancy simulation - publication [s] ===\n\n", figure)
	printWastedTable(ps, func(tech string, p int) float64 {
		c, _ := res.Cell(tech, n, p)
		ref, _ := refdata.Wasted(tech, n, p)
		return metrics.Discrepancy(c.Wasted.Mean, ref)
	})
	fmt.Printf("\n=== Figure %dd: relative discrepancy [%%] ===\n\n", figure)
	var maxRel float64
	printWastedTable(ps, func(tech string, p int) float64 {
		c, _ := res.Cell(tech, n, p)
		ref, _ := refdata.Wasted(tech, n, p)
		rd := metrics.RelativeDiscrepancy(c.Wasted.Mean, ref)
		// Track the maximum excluding the FAC/2-PE outlier, as §IV-B4.
		if !(tech == "FAC" && p == 2) {
			if rd < 0 {
				if -rd > maxRel {
					maxRel = -rd
				}
			} else if rd > maxRel {
				maxRel = rd
			}
		}
		return rd
	})
	fmt.Printf("max |relative discrepancy| excluding FAC/2-PE outlier: %.2f%%\n", maxRel)
	return res, nil
}

func printWastedTable(ps []int, value func(tech string, p int) float64) {
	var tb ascii.Table
	header := []string{"technique"}
	for _, p := range ps {
		header = append(header, fmt.Sprintf("p=%d", p))
	}
	tb.AddRow(header...)
	for _, tech := range sched.VerifiedNames() {
		row := []any{tech}
		for _, p := range ps {
			row = append(row, value(tech, p))
		}
		tb.AddRowf(row...)
	}
	os.Stdout.WriteString(tb.String())
}

// runFig9 reproduces Figure 9: the average wasted time of each run of
// FAC with 2 workers and 524,288 tasks, plus the outlier analysis of
// §IV-B4.
func runFig9(ctx context.Context, runs int, seed uint64, backend string, runner campaign.Runner, sinks []engine.Sink) error {
	log.Printf("Figure 9: FAC, 2 PEs, 524288 tasks, %d runs...", runs)
	spec := experiment.HagerupGrid(seed)
	spec.Techniques = []string{"FAC"}
	spec.Ns = []int64{524288}
	spec.Ps = []int{2}
	spec.Runs = runs
	spec.KeepPerRun = true
	spec.Backend = backend
	spec.Runner = runner
	spec.Sinks = sinks
	res, err := experiment.RunHagerup(ctx, spec)
	if err != nil {
		return err
	}
	c, _ := res.Cell("FAC", 524288, 2)

	fmt.Printf("\n=== Figure 9: average wasted time for each of the %d runs of FAC (2 workers, 524288 tasks) ===\n\n", runs)
	var xs, ys []float64
	for i, v := range c.PerRun {
		xs = append(xs, float64(i))
		ys = append(ys, v)
	}
	fmt.Println(ascii.Plot(ascii.PlotConfig{
		XLabel: "number run", YLabel: "average wasted time [s]",
	}, ascii.Series{Label: "FAC", X: xs, Y: ys}))
	fmt.Println("distribution of per-run values:")
	fmt.Println(ascii.Histogram(c.PerRun, 12, 50))

	kept, excluded := metrics.TrimAbove(c.PerRun, 400)
	fmt.Printf("mean over all runs:           %.4g s\n", c.Wasted.Mean)
	fmt.Printf("runs above 400 s:             %d (%.2f%% of all runs; paper: 15 = 1.5%%)\n",
		excluded, 100*float64(excluded)/float64(len(c.PerRun)))
	fmt.Printf("mean excluding those runs:    %.4g s (paper: 25.82 s)\n", metrics.Mean(kept))
	return nil
}

// printTables reproduces Tables II (required parameters) and III
// (experiment overview).
func printTables() error {
	fmt.Println("\n=== Table II: required parameters for the DLS techniques ===")
	fmt.Println()
	params := []sched.Param{sched.ParamP, sched.ParamN, sched.ParamR, sched.ParamH,
		sched.ParamMu, sched.ParamSigma, sched.ParamF, sched.ParamL, sched.ParamM}
	var tb ascii.Table
	header := []string{"DLS"}
	for _, p := range params {
		header = append(header, string(p))
	}
	tb.AddRow(header...)
	for _, tech := range []string{"STAT", "SS", "FSC", "GSS", "TSS", "FAC", "FAC2", "BOLD"} {
		req, err := sched.Requirements(tech)
		if err != nil {
			return err
		}
		set := map[sched.Param]bool{}
		for _, r := range req {
			set[r] = true
		}
		row := []string{tech}
		for _, p := range params {
			mark := ""
			if set[p] {
				mark = "X"
			}
			row = append(row, mark)
		}
		tb.AddRow(row...)
	}
	os.Stdout.WriteString(tb.String())

	fmt.Println("\n=== Table III: overview of reproducibility experiments ===")
	fmt.Println()
	grid := experiment.HagerupGrid(0)
	var tb2 ascii.Table
	tb2.AddRow("number of tasks", "number of PEs", "figure")
	for i, n := range grid.Ns {
		tb2.AddRowf(n, fmt.Sprintf("%v", grid.Ps), fmt.Sprintf("Figure %d", 5+i))
	}
	os.Stdout.WriteString(tb2.String())
	fmt.Printf("\nper cell: %d runs, exponential task times (mu=%g s, sigma=%g s), h=%g s\n",
		grid.Runs, grid.Mu, grid.Mu, grid.H)
	return nil
}

// exportCSV writes the raw data of all experiments (paper §V).
func exportCSV(ctx context.Context, dir string, runs int, seed uint64, backend string, runner campaign.Runner) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, fn func(f *os.File) error) error {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := fn(f); err != nil {
			return err
		}
		log.Printf("wrote %s", path)
		return nil
	}

	spec := experiment.HagerupGrid(seed)
	spec.Runs = runs
	spec.Backend = backend
	spec.Runner = runner
	res, err := experiment.RunHagerup(ctx, spec)
	if err != nil {
		return err
	}
	if err := write("hagerup_grid.csv", func(f *os.File) error {
		return experiment.WriteHagerupCSV(f, res)
	}); err != nil {
		return err
	}

	f9 := experiment.HagerupGrid(seed)
	f9.Techniques = []string{"FAC"}
	f9.Ns = []int64{524288}
	f9.Ps = []int{2}
	f9.Runs = runs
	f9.KeepPerRun = true
	f9.Backend = backend
	f9.Runner = runner
	r9, err := experiment.RunHagerup(ctx, f9)
	if err != nil {
		return err
	}
	c9, _ := r9.Cell("FAC", 524288, 2)
	if err := write("fig9_fac_per_run.csv", func(f *os.File) error {
		return experiment.WritePerRunCSV(f, c9)
	}); err != nil {
		return err
	}

	for i, spec := range []experiment.TzenSpec{experiment.TzenExperiment1(), experiment.TzenExperiment2()} {
		tres, err := experiment.RunTzen(ctx, spec)
		if err != nil {
			return err
		}
		if err := write(fmt.Sprintf("tzen_experiment%d.csv", i+1), func(f *os.File) error {
			return experiment.WriteTzenCSV(f, tres)
		}); err != nil {
			return err
		}
	}
	return nil
}
