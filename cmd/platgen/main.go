// Command platgen emits SimGrid-flavoured platform and deployment XML
// files for the simulated systems of the reproduction: homogeneous star
// clusters (the BBN GP-1000 / taurus stand-ins) and heterogeneous
// clusters for the weighted techniques.
//
// Examples:
//
//	platgen -workers 96 -speed 1e6 > bbn.xml
//	platgen -het 1e6,2e6,4e6 -deployment deploy.xml > het.xml
//	platgen -workers 8 -free-network > free.xml
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/platform"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("platgen: ")

	var (
		workers   = flag.Int("workers", 8, "number of worker hosts")
		prefix    = flag.String("prefix", "node", "host name prefix")
		speed     = flag.Float64("speed", 1e9, "host speed, flops/s")
		bandwidth = flag.Float64("bandwidth", 1.25e8, "link bandwidth, bytes/s")
		latency   = flag.Float64("latency", 50e-6, "link latency, seconds")
		het       = flag.String("het", "", "comma-separated worker speeds (overrides -workers/-speed)")
		free      = flag.Bool("free-network", false, "use the paper's free-network parameters (§III-B)")
		deploy    = flag.String("deployment", "", "also write a master-worker deployment file to this path")
		nTasks    = flag.Int64("n", 1024, "task count argument in the generated deployment")
		tech      = flag.String("tech", "FAC2", "technique argument in the generated deployment")
	)
	flag.Parse()

	bw, lat := *bandwidth, *latency
	if *free {
		bw, lat = platform.FreeNetwork()
	}

	var pl *platform.Platform
	var err error
	var count int
	if *het != "" {
		var speeds []float64
		for _, f := range strings.Split(*het, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				log.Fatalf("bad speed %q: %v", f, err)
			}
			speeds = append(speeds, v)
		}
		pl, err = platform.Heterogeneous(*prefix, speeds, bw, lat)
		count = len(speeds)
	} else {
		pl, err = platform.Cluster(*prefix, *workers, *speed, bw, lat)
		count = *workers
	}
	if err != nil {
		log.Fatal(err)
	}
	if err := platform.WritePlatform(os.Stdout, pl); err != nil {
		log.Fatal(err)
	}

	if *deploy != "" {
		d := &platform.Deployment{}
		d.Processes = append(d.Processes, platform.DeployedProcess{
			Host:     fmt.Sprintf("%s-0", *prefix),
			Function: "master",
			Arguments: []string{
				strconv.FormatInt(*nTasks, 10), *tech,
			},
		})
		for i := 1; i <= count; i++ {
			d.Processes = append(d.Processes, platform.DeployedProcess{
				Host:     fmt.Sprintf("%s-%d", *prefix, i),
				Function: "worker",
			})
		}
		f, err := os.Create(*deploy)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := platform.WriteDeployment(f, d); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote deployment for %d workers to %s", count, *deploy)
	}
}
