// Command metricscheck validates a Prometheus text exposition — CI's
// guard that the dlsimd /metrics endpoint keeps emitting well-formed
// output that real scrapers can ingest.
//
// The exposition is read from a URL argument (anything starting with
// http:// or https://) or a file path, or from stdin when no argument
// is given. Validation is the strict parser shared with the telemetry
// package's tests: framing, HELP/TYPE consistency, label escaping and
// sample syntax all checked. -require lists metric names (comma
// separated) that must be present.
//
//	dlsimd -metrics -addr 127.0.0.1:9090 &
//	metricscheck -require dlsimd_jobs,dlsimd_http_requests_total http://127.0.0.1:9090/metrics
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"repro/internal/telemetry"
)

func main() {
	require := flag.String("require", "", "comma-separated metric names that must be present")
	flag.Parse()
	if err := run(flag.Arg(0), *require); err != nil {
		fmt.Fprintf(os.Stderr, "metricscheck: %v\n", err)
		os.Exit(1)
	}
}

func run(src, require string) error {
	data, err := read(src)
	if err != nil {
		return err
	}
	exp, err := telemetry.Parse(data)
	if err != nil {
		return err
	}
	var missing []string
	for _, name := range strings.Split(require, ",") {
		if name = strings.TrimSpace(name); name == "" {
			continue
		}
		if !exp.Has(name) {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("missing required metrics: %s", strings.Join(missing, ", "))
	}
	fmt.Printf("ok: %d samples across %d families\n", len(exp.Samples), len(exp.Types))
	return nil
}

func read(src string) ([]byte, error) {
	switch {
	case src == "":
		return io.ReadAll(os.Stdin)
	case strings.HasPrefix(src, "http://"), strings.HasPrefix(src, "https://"):
		resp, err := http.Get(src)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET %s: %s", src, resp.Status)
		}
		return io.ReadAll(resp.Body)
	default:
		return os.ReadFile(src)
	}
}
