package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestMain doubles as the daemon entry point: the test re-executes its
// own binary with DLSIMD_RUN_MAIN=1 to get a real dlsimd process it can
// SIGKILL — an in-process daemon would take the test down with it.
func TestMain(m *testing.M) {
	if os.Getenv("DLSIMD_RUN_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// daemon is one spawned dlsimd process.
type daemon struct {
	cmd  *exec.Cmd
	base string // http://host:port

	mu  sync.Mutex
	log bytes.Buffer
}

// startDaemon launches the daemon on an ephemeral port and waits for
// its "listening on" log line to learn the address. Extra env entries
// exercise the DLSIMD_* fallbacks.
func startDaemon(t *testing.T, env []string, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(os.Args[0], append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	cmd.Env = append(append(os.Environ(), "DLSIMD_RUN_MAIN=1"), env...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd}
	addr := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			d.mu.Lock()
			fmt.Fprintln(&d.log, line)
			d.mu.Unlock()
			if _, a, ok := strings.Cut(line, "listening on "); ok {
				select {
				case addr <- a:
				default:
				}
			}
		}
	}()
	select {
	case a := <-addr:
		d.base = "http://" + a
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("daemon never reported its address; log:\n%s", d.logText())
	}
	return d
}

func (d *daemon) logText() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.log.String()
}

// kill SIGKILLs the daemon — the crash under test.
func (d *daemon) kill(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	d.cmd.Wait()
}

// shutdown stops the daemon gracefully via SIGTERM.
func (d *daemon) shutdown(t *testing.T) {
	t.Helper()
	d.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { d.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		d.cmd.Process.Kill()
		t.Fatalf("daemon ignored SIGTERM; log:\n%s", d.logText())
	}
}

func (d *daemon) do(t *testing.T, method, path string, body []byte) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, d.base+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v; daemon log:\n%s", method, path, err, d.logText())
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func (d *daemon) submit(t *testing.T, spec string) string {
	t.Helper()
	code, body := d.do(t, http.MethodPost, "/v1/jobs", []byte(spec))
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", code, body)
	}
	var resp struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	return resp.ID
}

func (d *daemon) state(t *testing.T, id string) string {
	t.Helper()
	code, body := d.do(t, http.MethodGet, "/v1/jobs/"+id, nil)
	if code != http.StatusOK {
		t.Fatalf("status %s = %d: %s", id, code, body)
	}
	var snap struct {
		State string `json:"state"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	return snap.State
}

func (d *daemon) waitDone(t *testing.T, id string) {
	t.Helper()
	code, body := d.do(t, http.MethodGet, "/v1/jobs/"+id+"?wait=1", nil)
	if code != http.StatusOK || !strings.Contains(string(body), `"state": "done"`) {
		t.Fatalf("wait %s = %d: %s", id, code, body)
	}
}

func (d *daemon) metrics(t *testing.T) *telemetry.Exposition {
	t.Helper()
	code, body := d.do(t, http.MethodGet, "/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("metrics = %d: %s", code, body)
	}
	exp, err := telemetry.Parse(body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, body)
	}
	return exp
}

const (
	// fastSpec completes in tens of milliseconds.
	fastSpec = `{"backend":"sim","techniques":["FAC2","SS"],"ns":[4096],"ps":[2],"workload":{"kind":"exponential","p1":1},"h":0.5,"replications":10,"seed":41}`
	// slowSpec keeps one worker busy for seconds — the crash window.
	slowSpec = `{"backend":"sim","techniques":["FAC2","SS"],"ns":[262144],"ps":[2],"workload":{"kind":"exponential","p1":1},"h":0.5,"replications":150,"seed":42}`
)

// TestCrashRecovery is the hardening acceptance test: a daemon with a
// journal is SIGKILLed with one job running and one queued; the
// restarted daemon restores the finished job's snapshot, re-enqueues
// and completes the interrupted ones, and serves the re-enqueued cached
// spec from the result store with zero backend executions — proven by
// the /metrics cache counters (no miss, no put beyond the interrupted
// job's own).
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real daemons and multi-second campaigns")
	}
	dir := t.TempDir()
	jdir, cdir := filepath.Join(dir, "journal"), filepath.Join(dir, "cache")

	d1 := startDaemon(t, nil, "-journal", jdir, "-cache", cdir, "-jobs", "1", "-metrics")
	fastID := d1.submit(t, fastSpec)
	d1.waitDone(t, fastID)

	slowID := d1.submit(t, slowSpec)
	deadline := time.Now().Add(30 * time.Second)
	for d1.state(t, slowID) != "running" {
		if time.Now().After(deadline) {
			t.Fatalf("job %s never started; log:\n%s", slowID, d1.logText())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Same spec as the finished job: queued behind the slow one (one
	// executor), and its results are already in the store.
	cachedID := d1.submit(t, fastSpec)
	if cachedID == fastID {
		t.Fatalf("resubmission joined terminal job %s", fastID)
	}
	if s := d1.state(t, cachedID); s != "queued" {
		t.Fatalf("job %s is %q at crash time, want queued (slow spec too fast?)", cachedID, s)
	}
	d1.kill(t)

	// Journal and cache directories survive; the env-fallback spellings
	// of -journal and -metrics configure the restarted daemon.
	d2 := startDaemon(t, []string{"DLSIMD_JOURNAL=" + jdir, "DLSIMD_METRICS=1"},
		"-cache", cdir, "-jobs", "1")
	defer d2.shutdown(t)

	// The finished job is back as a terminal snapshot immediately.
	if s := d2.state(t, fastID); s != "done" {
		t.Fatalf("restored job %s is %q, want done", fastID, s)
	}
	// The interrupted and queued jobs re-ran to completion.
	d2.waitDone(t, cachedID)
	d2.waitDone(t, slowID)

	// The re-enqueued cached spec replayed from the store: exactly one
	// miss+put (the interrupted slow job re-executing) and at least one
	// hit (the cached spec) since restart.
	exp := d2.metrics(t)
	if v, ok := exp.Value("dlsimd_cache_ops", map[string]string{"kind": "put"}); !ok || v != 1 {
		t.Errorf("cache puts after restart = %v, want exactly 1 (the re-run slow job)", v)
	}
	if v, ok := exp.Value("dlsimd_cache_ops", map[string]string{"kind": "miss"}); !ok || v != 1 {
		t.Errorf("cache misses after restart = %v, want exactly 1", v)
	}
	if v, ok := exp.Value("dlsimd_cache_ops", map[string]string{"kind": "hit"}); !ok || v < 1 {
		t.Errorf("cache hits after restart = %v, want >= 1", v)
	}

	// Determinism across the crash: the restored job and its re-enqueued
	// twin stream byte-identical results.
	c1, body1 := d2.do(t, http.MethodGet, "/v1/jobs/"+fastID+"/results?format=jsonl", nil)
	c2, body2 := d2.do(t, http.MethodGet, "/v1/jobs/"+cachedID+"/results?format=jsonl", nil)
	if c1 != http.StatusOK || c2 != http.StatusOK {
		t.Fatalf("results = %d / %d", c1, c2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("restored job and re-enqueued twin streamed different results")
	}
}
