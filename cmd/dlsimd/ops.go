// Production wiring for the daemon: environment-overridable settings,
// the durable job journal, lifecycle observers, the metrics registry,
// and journal-backed recovery of jobs and recurring schedules. main.go
// owns flag parsing and the HTTP plumbing; this file owns the glue
// between the hardening subsystems (internal/journal, internal/mw,
// internal/telemetry, internal/recur) and the job manager.
package main

import (
	"log"
	"net/http"
	"os"
	"strconv"
	"time"

	"repro/internal/cache"
	"repro/internal/engine"
	"repro/internal/jobs"
	"repro/internal/journal"
	"repro/internal/recur"
	"repro/internal/telemetry"
)

// envStr reads a string default from the environment; the flag wins.
func envStr(name, fallback string) string {
	if v, ok := os.LookupEnv(name); ok {
		return v
	}
	return fallback
}

// envFloat reads a float default from the environment; the flag wins.
func envFloat(name string, fallback float64) float64 {
	v, ok := os.LookupEnv(name)
	if !ok {
		return fallback
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		log.Printf("ignoring %s=%q: %v", name, v, err)
		return fallback
	}
	return f
}

// envDur reads a duration default from the environment; the flag wins.
func envDur(name string, fallback time.Duration) time.Duration {
	v, ok := os.LookupEnv(name)
	if !ok {
		return fallback
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		log.Printf("ignoring %s=%q: %v", name, v, err)
		return fallback
	}
	return d
}

// envBool reads a boolean default from the environment; the flag wins.
func envBool(name string, fallback bool) bool {
	v, ok := os.LookupEnv(name)
	if !ok {
		return fallback
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		log.Printf("ignoring %s=%q: %v", name, v, err)
		return fallback
	}
	return b
}

// daemonMetrics owns the telemetry registry and the series fed by the
// HTTP middleware and the job lifecycle observer. The jobs-by-state and
// cache gauges are sampled at scrape time via bind, so creation can
// precede the manager they report on.
type daemonMetrics struct {
	reg *telemetry.Registry

	httpRequests  *telemetry.CounterVec   // route, status
	httpLatency   *telemetry.HistogramVec // route
	jobDuration   *telemetry.Histogram
	authRejected  *telemetry.Counter
	rateLimited   *telemetry.Counter
	quotaDenied   *telemetry.Counter
	journalErrors *telemetry.Counter
}

func newDaemonMetrics() *daemonMetrics {
	reg := telemetry.NewRegistry()
	return &daemonMetrics{
		reg: reg,
		httpRequests: reg.CounterVec("dlsimd_http_requests_total",
			"HTTP requests served, by route pattern and status code.", "route", "status"),
		httpLatency: reg.HistogramVec("dlsimd_http_request_seconds",
			"HTTP request latency in seconds, by route pattern.",
			telemetry.DefDurationBuckets, "route"),
		jobDuration: reg.Histogram("dlsimd_job_duration_seconds",
			"Wall-clock duration of jobs reaching a terminal state.",
			telemetry.DefDurationBuckets),
		authRejected: reg.Counter("dlsimd_auth_rejections_total",
			"Requests rejected for a missing or unknown API key."),
		rateLimited: reg.Counter("dlsimd_rate_limited_total",
			"Requests rejected by the per-tenant rate limiter."),
		quotaDenied: reg.Counter("dlsimd_quota_rejections_total",
			"Submissions rejected by a per-tenant quota."),
		journalErrors: reg.Counter("dlsimd_journal_errors_total",
			"Journal append or sync failures; non-zero means degraded durability."),
	}
}

// bind registers the scrape-time gauges that sample live daemon state.
func (m *daemonMetrics) bind(mgr *jobs.Manager, counted *cache.Counting) {
	m.reg.GaugeSetFunc("dlsimd_jobs", "Jobs known to the manager, by state.",
		[]string{"state"}, func() []telemetry.Sample {
			s := mgr.Stats()
			return []telemetry.Sample{
				{Values: []string{"cancelled"}, V: float64(s.Cancelled)},
				{Values: []string{"done"}, V: float64(s.Done)},
				{Values: []string{"failed"}, V: float64(s.Failed)},
				{Values: []string{"queued"}, V: float64(s.Queued)},
				{Values: []string{"running"}, V: float64(s.Running)},
			}
		})
	m.reg.GaugeFunc("dlsimd_queue_depth", "Jobs waiting to run.",
		func() float64 { return float64(mgr.Stats().Queued) })
	m.reg.GaugeFunc("dlsimd_runs_delivered", "Simulation runs delivered to job progress, including cached replays.",
		func() float64 { return float64(mgr.Stats().RunsDelivered) })
	m.reg.GaugeSetFunc("dlsimd_cache_ops", "Result store operations since start, by kind.",
		[]string{"kind"}, func() []telemetry.Sample {
			hits, misses, puts := counted.Stats()
			return []telemetry.Sample{
				{Values: []string{"hit"}, V: float64(hits)},
				{Values: []string{"miss"}, V: float64(misses)},
				{Values: []string{"put"}, V: float64(puts)},
			}
		})
}

// observe is the mw.Instrument callback. Every quota rejection is a
// 403 and nothing else on the API surface produces one, so the status
// doubles as the quota counter's trigger.
func (m *daemonMetrics) observe(route string, status int, elapsed time.Duration) {
	m.httpRequests.With(route, strconv.Itoa(status)).Inc()
	m.httpLatency.With(route).Observe(elapsed.Seconds())
	if status == http.StatusForbidden {
		m.quotaDenied.Inc()
	}
}

// daemonMetrics is a jobs.Observer: terminal transitions feed the job
// duration histogram.
func (m *daemonMetrics) JobSubmitted(engine.CampaignSpec, jobs.Snapshot) {}

func (m *daemonMetrics) JobTransition(snap jobs.Snapshot) {
	if snap.State.Terminal() && snap.StartedAt != nil && snap.FinishedAt != nil {
		m.jobDuration.Observe(snap.FinishedAt.Sub(*snap.StartedAt).Seconds())
	}
}

// journalObserver journals job lifecycle events. An append failure —
// including a failed fsync, which internal/journal surfaces rather
// than swallows — never blocks the job path (a sick disk degrades
// durability, not availability), but it is not dropped silently
// either: every failure is logged and reported through onErr, which
// the daemon wires to the journal-error counter and the /v1/health
// "degraded" journal state.
type journalObserver struct {
	jn    *journal.Journal
	onErr func(error)
}

func (o journalObserver) JobSubmitted(spec engine.CampaignSpec, snap jobs.Snapshot) {
	o.append(journal.Record{
		Kind: journal.KindJob, Time: snap.CreatedAt, ID: snap.ID,
		Tenant: snap.Tenant, Hash: snap.Hash, Spec: &spec,
	})
}

func (o journalObserver) JobTransition(snap jobs.Snapshot) {
	rec := journal.Record{
		Kind: journal.KindState, Time: time.Now(), ID: snap.ID,
		State: string(snap.State), Error: snap.Error,
	}
	switch {
	case snap.State == jobs.StateRunning && snap.StartedAt != nil:
		rec.Time = *snap.StartedAt
	case snap.State.Terminal() && snap.FinishedAt != nil:
		rec.Time = *snap.FinishedAt
	}
	o.append(rec)
}

func (o journalObserver) append(rec journal.Record) {
	if err := o.jn.Append(rec); err != nil {
		log.Printf("journal: %v", err)
		if o.onErr != nil {
			o.onErr(err)
		}
	}
}

// scheduleJournal returns the recur.Scheduler OnChange hook persisting
// schedule adds and deletes.
func scheduleJournal(jn *journal.Journal) func(recur.Op, recur.Schedule) {
	return func(op recur.Op, s recur.Schedule) {
		rec := journal.Record{Kind: journal.KindScheduleDelete, Time: time.Now(), ID: s.ID}
		if op == recur.OpAdd {
			spec := s.Spec
			rec = journal.Record{
				Kind: journal.KindSchedule, Time: s.CreatedAt, ID: s.ID,
				Tenant: s.Tenant, Hash: s.Hash, Spec: &spec,
				Interval: time.Duration(s.Interval), Jitter: time.Duration(s.Jitter),
			}
		}
		if err := jn.Append(rec); err != nil {
			log.Printf("journal: %v", err)
		}
	}
}

// restoreFromJournal replays a recovered record sequence: terminal jobs
// come back as browsable snapshots (results re-materialize from the
// content-addressed store on demand), jobs that were queued or running
// at crash time are re-enqueued (zero backend runs when their spec is
// cached), and live schedules re-register under their original IDs.
func restoreFromJournal(recs []journal.Record, mgr *jobs.Manager, sched *recur.Scheduler) {
	views, schedViews := journal.Fold(recs)
	terminal, requeued := 0, 0
	for _, v := range views {
		snap := jobs.Snapshot{
			ID: v.ID, Tenant: v.Tenant, Hash: v.Hash,
			State: jobs.State(v.State), Error: v.Error, CreatedAt: v.Created,
		}
		if !v.Started.IsZero() {
			t := v.Started
			snap.StartedAt = &t
		}
		if !v.Finished.IsZero() {
			t := v.Finished
			snap.FinishedAt = &t
		}
		if _, err := mgr.Restore(v.Spec, snap); err != nil {
			log.Printf("journal: skipping job %s: %v", v.ID, err)
			continue
		}
		if v.Terminal() {
			terminal++
		} else {
			requeued++
		}
	}
	restored := 0
	for _, s := range schedViews {
		err := sched.Restore(recur.Schedule{
			ID: s.ID, Tenant: s.Tenant, Hash: s.Hash, Spec: s.Spec,
			Interval: recur.Duration(s.Interval), Jitter: recur.Duration(s.Jitter),
			CreatedAt: s.Created,
		})
		if err != nil {
			log.Printf("journal: skipping schedule %s: %v", s.ID, err)
			continue
		}
		restored++
	}
	log.Printf("journal: recovered %d terminal jobs, re-enqueued %d, restored %d schedules",
		terminal, requeued, restored)
}
