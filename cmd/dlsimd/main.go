// Command dlsimd is the campaign service daemon: a long-running HTTP
// server that accepts declarative campaign specs, executes them through
// the engine's context-aware pipeline, and streams results back as JSON
// Lines or CSV.
//
// Concurrent identical submissions are deduplicated (singleflight on
// the canonical spec hash) so any number of clients asking the same
// question share one execution; completed campaigns live in the
// content-addressed result store, so re-submitting a spec is served
// with zero backend runs. SIGINT/SIGTERM shut the daemon down
// gracefully: the listener stops, in-flight jobs are cancelled through
// their contexts, and the worker pools drain. With -drain-jobs the
// daemon drains first: readiness (GET /v1/health) flips to 503 with
// draining=true, the queue stops accepting submissions, and active
// jobs get a bounded window to finish before anything is cancelled.
//
// Production hardening is opt-in per subsystem: -journal DIR keeps a
// durable, checksummed lifecycle journal (terminal jobs and recurring
// schedules survive a crash; interrupted jobs are re-enqueued and
// replay from the result cache with zero backend runs), -auth FILE
// enables multi-tenant API keys, -rate/-quota-queued/-quota-running
// bound each tenant's request rate and job footprint, and -metrics
// exposes a Prometheus endpoint. Every flag has a DLSIMD_* environment
// fallback so deployments can be configured without editing unit
// files.
//
// Quickstart:
//
//	dlsimd -addr :8080 -cache .dlsim-cache &
//	curl -s -X POST localhost:8080/v1/jobs -d @campaign.json
//	curl -s localhost:8080/v1/jobs/j1
//	curl -s localhost:8080/v1/jobs/j1/results          # JSON Lines
//	curl -s 'localhost:8080/v1/jobs/j1/results?format=csv'
//	curl -s -X DELETE localhost:8080/v1/jobs/j1        # cancel
//
// Production:
//
//	dlsimd -addr :8080 -cache /var/lib/dlsim/cache \
//	       -journal /var/lib/dlsim/journal -auth /etc/dlsim/keys \
//	       -rate 20 -quota-queued 16 -quota-running 2 -metrics
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"repro/campaign"
	"repro/internal/cache"
	"repro/internal/cliutil"
	"repro/internal/engine"
	"repro/internal/jobs"
	"repro/internal/journal"
	"repro/internal/mw"
	"repro/internal/recur"
	"repro/internal/service"
)

// envInt reads an integer default from the environment so deployments
// can size the daemon without editing unit files; the flag still wins.
func envInt(name string, fallback int) int {
	v := os.Getenv(name)
	if v == "" {
		return fallback
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		log.Printf("ignoring %s=%q: %v", name, v, err)
		return fallback
	}
	return n
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("dlsimd: ")
	ctx, stop := cliutil.SignalContext(context.Background())
	err := run(ctx)
	stop()
	cliutil.Exit(err)
}

func run(ctx context.Context) error {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		cacheDir  = flag.String("cache", "", "content-addressed result store directory (default: in-memory only)")
		queue     = flag.Int("queue", 64, "bounded submission queue depth")
		jobsN     = flag.Int("jobs", 1, "campaigns executing concurrently")
		workers   = flag.Int("workers", envInt("DLSIMD_WORKERS", 0), "concurrent runs per campaign (0 = all CPU cores; env DLSIMD_WORKERS)")
		chunk     = flag.Int("chunk", envInt("DLSIMD_CHUNK", 0), "replications per work item (0 = auto-size; env DLSIMD_CHUNK; never changes results)")
		drain     = flag.Duration("drain", 5*time.Second, "graceful shutdown window for in-flight HTTP requests")
		drainJobs = flag.Duration("drain-jobs", envDur("DLSIMD_DRAIN_JOBS", 0),
			"on SIGTERM/SIGINT, stop accepting submissions (health reports draining, /v1/health goes 503) and let running jobs finish for up to this long before cancelling them; 0 cancels immediately (env DLSIMD_DRAIN_JOBS)")
		pprofOn = flag.Bool("pprof", false, "expose net/http/pprof profiling handlers under /debug/pprof/")

		journalDir = flag.String("journal", envStr("DLSIMD_JOURNAL", ""), "durable job journal directory; enables crash recovery (env DLSIMD_JOURNAL)")
		authFile   = flag.String("auth", envStr("DLSIMD_AUTH", ""), "API key file of tenant:key lines; enables multi-tenant auth (env DLSIMD_AUTH)")
		rate       = flag.Float64("rate", envFloat("DLSIMD_RATE", 0), "per-tenant API requests per second, 0 = unlimited (env DLSIMD_RATE)")
		quotaQ     = flag.Int("quota-queued", envInt("DLSIMD_QUOTA_QUEUED", 0), "max jobs one tenant may have queued, 0 = unlimited (env DLSIMD_QUOTA_QUEUED)")
		quotaR     = flag.Int("quota-running", envInt("DLSIMD_QUOTA_RUNNING", 0), "max jobs one tenant may have running, 0 = unlimited (env DLSIMD_QUOTA_RUNNING)")
		metricsOn  = flag.Bool("metrics", envBool("DLSIMD_METRICS", false), "expose Prometheus metrics at /metrics (env DLSIMD_METRICS)")
	)
	flag.Parse()

	// A memory tier always fronts the store so repeated submissions are
	// served without JSON decode + disk reads; -cache adds durability
	// across daemon restarts.
	var store cache.Store = cache.NewMemory()
	if *cacheDir != "" {
		disk, err := cache.NewDisk(*cacheDir)
		if err != nil {
			return err
		}
		store = cache.NewTiered(store, disk)
		log.Printf("result store: memory over disk at %s", disk.Dir())
	} else {
		log.Print("result store: in-memory (pass -cache DIR for durability)")
	}
	// The counting wrapper feeds the cache hit/miss/put gauges; it is
	// pass-through when metrics are off, so always wrapping keeps one
	// code path.
	counted := cache.NewCounting(store)

	// Journal first: the manager's lifecycle observer appends to it, and
	// recovery replays its records once the manager exists.
	var jn *journal.Journal
	var recovered []journal.Record
	if *journalDir != "" {
		var err error
		jn, recovered, err = journal.Open(*journalDir)
		if err != nil {
			return err
		}
		defer jn.Close()
		log.Printf("journal: %s (%d records recovered)", *journalDir, len(recovered))
	}

	var m *daemonMetrics
	if *metricsOn {
		m = newDaemonMetrics()
	}
	// journalDegraded turns sticky-true on the first append/sync failure
	// and is reported by /v1/health: the daemon stays available, but
	// operators can see that crash durability is no longer guaranteed.
	var journalDegraded atomic.Bool
	var observers []jobs.Observer
	if jn != nil {
		observers = append(observers, journalObserver{jn: jn, onErr: func(error) {
			journalDegraded.Store(true)
			if m != nil {
				m.journalErrors.Inc()
			}
		}})
	}
	if m != nil {
		observers = append(observers, m)
	}
	var observer jobs.Observer
	if len(observers) > 0 {
		observer = jobs.MultiObserver(observers...)
	}

	mgr := jobs.NewManager(jobs.Config{
		Store:        counted,
		QueueDepth:   *queue,
		Concurrency:  *jobsN,
		Workers:      *workers,
		ChunkSize:    *chunk,
		QuotaQueued:  *quotaQ,
		QuotaRunning: *quotaR,
		Observer:     observer,
	})
	defer mgr.Close()
	if m != nil {
		m.bind(mgr, counted)
	}
	if *quotaQ > 0 || *quotaR > 0 {
		log.Printf("quotas: %d queued, %d running per tenant (0=unlimited)", *quotaQ, *quotaR)
	}

	// Recurring campaigns resubmit through the same quota-checked path
	// as the API; an unchanged spec is a pure cache hit every tick.
	schedCfg := recur.Config{
		Submit: func(tenant string, spec engine.CampaignSpec) (string, error) {
			job, _, err := mgr.SubmitAs(tenant, spec)
			if err != nil {
				return "", err
			}
			return job.ID(), nil
		},
	}
	if jn != nil {
		schedCfg.OnChange = scheduleJournal(jn)
	}
	sched := recur.New(schedCfg)
	defer sched.Stop()

	if jn != nil {
		restoreFromJournal(recovered, mgr, sched)
		// Startup compaction trims terminal history accumulated by prior
		// runs so the journal does not grow without bound across restarts.
		if err := jn.Compact(512); err != nil {
			log.Printf("journal: startup compaction: %v", err)
		}
	}
	sched.Start()

	effWorkers := *workers
	if effWorkers <= 0 {
		effWorkers = runtime.GOMAXPROCS(0)
	}
	effJobs := *jobsN
	if effJobs <= 0 {
		effJobs = 1
	}
	log.Printf("execution: %d cpus, %d workers/campaign, chunk=%d (0=auto), %d concurrent campaigns",
		runtime.NumCPU(), effWorkers, *chunk, effJobs)

	svc := service.New(mgr)
	svc.SetExecution(campaign.Execution{
		CPUs:        runtime.NumCPU(),
		Workers:     effWorkers,
		ChunkSize:   *chunk,
		Concurrency: effJobs,
	})
	svc.SetScheduler(sched)
	hasJournal, hasAuth := jn != nil, *authFile != ""
	svc.SetHealthHook(func(h *campaign.Health) {
		if hasJournal {
			h.Journal = "ok"
			if journalDegraded.Load() {
				h.Journal = "degraded"
			}
		}
		h.Auth = hasAuth
	})
	api := svc.Handler()

	// Middleware chain over the /v1 surface, outermost first: metrics
	// instrumentation sees every request (including rejected ones), auth
	// establishes the tenant, the rate limiter consumes its budget.
	// /healthz and /metrics stay outside the chain — probes and scrapers
	// carry no API keys.
	var chain []func(http.Handler) http.Handler
	if m != nil {
		chain = append(chain, mw.Instrument(m.observe))
	}
	if *authFile != "" {
		keys, err := mw.LoadKeyfile(*authFile)
		if err != nil {
			return err
		}
		var onDenied func()
		if m != nil {
			onDenied = m.authRejected.Inc
		}
		chain = append(chain, mw.Auth(keys, onDenied))
		log.Printf("auth: API keys loaded from %s", *authFile)
	}
	if *rate > 0 {
		burst := int(2 * *rate)
		if burst < 1 {
			burst = 1
		}
		var onLimited func()
		if m != nil {
			onLimited = m.rateLimited.Inc
		}
		chain = append(chain, mw.RateLimit(mw.NewLimiter(*rate, burst), onLimited))
		log.Printf("rate limit: %g req/s per tenant (burst %d)", *rate, burst)
	}
	v1 := mw.Chain(api, chain...)

	root := http.NewServeMux()
	root.Handle("/v1", v1)
	root.Handle("/v1/", v1)
	root.Handle("/healthz", api)
	if m != nil {
		root.Handle("/metrics", m.reg.Handler())
		log.Print("metrics: Prometheus exposition at /metrics")
	}
	handler := http.Handler(root)
	if *pprofOn {
		// Off by default: the profiling surface is for operators, not the
		// public v1 API, and it exposes stacks and heap contents. The
		// handlers are registered on the daemon's own mux (never the
		// package-global http.DefaultServeMux), so the flag is the only
		// way they become reachable.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Print("pprof: profiling handlers enabled under /debug/pprof/")
	}

	srv := &http.Server{
		Handler:     handler,
		BaseContext: func(net.Listener) context.Context { return ctx },
	}

	// Explicit listen so ":0" deployments (tests, parallel daemons) can
	// learn the bound port from the log line.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", ln.Addr())
		errc <- srv.Serve(ln)
	}()

	select {
	case err := <-errc:
		// Listener failed before any signal (bad address, port in use).
		return err
	case <-ctx.Done():
	}

	if *drainJobs > 0 {
		// Drain before teardown: readiness flips (GET /v1/health turns
		// 503 with draining=true, steering pools and load balancers
		// away), the queue refuses new submissions, and running plus
		// already-queued jobs get up to the window to finish — during
		// which the HTTP server still serves status reads and result
		// streams. Jobs still live when the window closes fall through
		// to the usual cancellation below.
		log.Printf("draining: refusing new submissions, waiting up to %v for active jobs", *drainJobs)
		svc.SetDraining(true)
		mgr.Drain()
		wctx, wcancel := context.WithTimeout(context.Background(), *drainJobs)
		if err := mgr.WaitIdle(wctx); err != nil {
			log.Print("drain window expired; cancelling remaining jobs")
		} else {
			log.Print("drained: all jobs terminal")
		}
		wcancel()
	}

	log.Print("shutting down: draining HTTP, cancelling in-flight jobs")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	// mgr.Close (deferred) cancels queued and running jobs and waits for
	// the campaign workers to drain; a signal-driven shutdown is a clean
	// exit, not a failure.
	return nil
}
