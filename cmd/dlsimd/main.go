// Command dlsimd is the campaign service daemon: a long-running HTTP
// server that accepts declarative campaign specs, executes them through
// the engine's context-aware pipeline, and streams results back as JSON
// Lines or CSV.
//
// Concurrent identical submissions are deduplicated (singleflight on
// the canonical spec hash) so any number of clients asking the same
// question share one execution; completed campaigns live in the
// content-addressed result store, so re-submitting a spec is served
// with zero backend runs. SIGINT/SIGTERM shut the daemon down
// gracefully: the listener stops, in-flight jobs are cancelled through
// their contexts, and the worker pools drain.
//
// Quickstart:
//
//	dlsimd -addr :8080 -cache .dlsim-cache &
//	curl -s -X POST localhost:8080/v1/jobs -d @campaign.json
//	curl -s localhost:8080/v1/jobs/j1
//	curl -s localhost:8080/v1/jobs/j1/results          # JSON Lines
//	curl -s 'localhost:8080/v1/jobs/j1/results?format=csv'
//	curl -s -X DELETE localhost:8080/v1/jobs/j1        # cancel
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"strconv"
	"time"

	"repro/campaign"
	"repro/internal/cache"
	"repro/internal/cliutil"
	"repro/internal/jobs"
	"repro/internal/service"
)

// envInt reads an integer default from the environment so deployments
// can size the daemon without editing unit files; the flag still wins.
func envInt(name string, fallback int) int {
	v := os.Getenv(name)
	if v == "" {
		return fallback
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		log.Printf("ignoring %s=%q: %v", name, v, err)
		return fallback
	}
	return n
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("dlsimd: ")
	ctx, stop := cliutil.SignalContext(context.Background())
	err := run(ctx)
	stop()
	cliutil.Exit(err)
}

func run(ctx context.Context) error {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		cacheDir = flag.String("cache", "", "content-addressed result store directory (default: in-memory only)")
		queue    = flag.Int("queue", 64, "bounded submission queue depth")
		jobsN    = flag.Int("jobs", 1, "campaigns executing concurrently")
		workers  = flag.Int("workers", envInt("DLSIMD_WORKERS", 0), "concurrent runs per campaign (0 = all CPU cores; env DLSIMD_WORKERS)")
		chunk    = flag.Int("chunk", envInt("DLSIMD_CHUNK", 0), "replications per work item (0 = auto-size; env DLSIMD_CHUNK; never changes results)")
		drain    = flag.Duration("drain", 5*time.Second, "graceful shutdown window for in-flight HTTP requests")
		pprofOn  = flag.Bool("pprof", false, "expose net/http/pprof profiling handlers under /debug/pprof/")
	)
	flag.Parse()

	// A memory tier always fronts the store so repeated submissions are
	// served without JSON decode + disk reads; -cache adds durability
	// across daemon restarts.
	var store cache.Store = cache.NewMemory()
	if *cacheDir != "" {
		disk, err := cache.NewDisk(*cacheDir)
		if err != nil {
			return err
		}
		store = cache.NewTiered(store, disk)
		log.Printf("result store: memory over disk at %s", disk.Dir())
	} else {
		log.Print("result store: in-memory (pass -cache DIR for durability)")
	}

	mgr := jobs.NewManager(jobs.Config{
		Store:       store,
		QueueDepth:  *queue,
		Concurrency: *jobsN,
		Workers:     *workers,
		ChunkSize:   *chunk,
	})
	defer mgr.Close()

	effWorkers := *workers
	if effWorkers <= 0 {
		effWorkers = runtime.GOMAXPROCS(0)
	}
	effJobs := *jobsN
	if effJobs <= 0 {
		effJobs = 1
	}
	log.Printf("execution: %d cpus, %d workers/campaign, chunk=%d (0=auto), %d concurrent campaigns",
		runtime.NumCPU(), effWorkers, *chunk, effJobs)

	svc := service.New(mgr)
	svc.SetExecution(campaign.Execution{
		CPUs:        runtime.NumCPU(),
		Workers:     effWorkers,
		ChunkSize:   *chunk,
		Concurrency: effJobs,
	})
	handler := svc.Handler()
	if *pprofOn {
		// Off by default: the profiling surface is for operators, not the
		// public v1 API, and it exposes stacks and heap contents. The
		// handlers are registered on the daemon's own mux (never the
		// package-global http.DefaultServeMux), so the flag is the only
		// way they become reachable.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Print("pprof: profiling handlers enabled under /debug/pprof/")
	}

	srv := &http.Server{
		Addr:        *addr,
		Handler:     handler,
		BaseContext: func(net.Listener) context.Context { return ctx },
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		// Listener failed before any signal (bad address, port in use).
		return err
	case <-ctx.Done():
	}

	log.Print("shutting down: draining HTTP, cancelling in-flight jobs")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	// mgr.Close (deferred) cancels queued and running jobs and waits for
	// the campaign workers to drain; a signal-driven shutdown is a clean
	// exit, not a failure.
	return nil
}
