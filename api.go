package repro

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"

	"repro/campaign"
	"repro/internal/cache"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Config collects the simulation options the facade accepts. Zero values
// select the Hagerup defaults (exponential µ = 1 s, h = 0.5 s, seed 1,
// the fast "sim" backend).
type Config struct {
	work       workload.Workload
	workSpec   workload.Spec // declarative form of work, when expressible
	declarable bool          // workSpec mirrors work (false for WithWorkload)
	h          float64
	hSet       bool
	seed       uint64
	speeds     []float64
	startTimes []float64
	minChunk   int64
	chunk      int64
	first      int64
	last       int64
	alpha      float64
	weights    []float64
	hDynamics  bool
	msgCost    float64
	backend    string
	workers    int
	cacheDir   string
}

// Option customizes a simulation.
type Option func(*Config)

// WithExponential selects i.i.d. exponential task times with mean mu
// (the BOLD publication's workload).
func WithExponential(mu float64) Option {
	return func(c *Config) {
		c.work = workload.NewExponential(mu)
		c.workSpec = workload.Spec{Kind: "exponential", P1: mu}
		c.declarable = true
	}
}

// WithConstant selects constant task times of c seconds (the TSS
// publication's workload).
func WithConstant(taskTime float64) Option {
	return func(c *Config) {
		c.work = workload.NewConstant(taskTime)
		c.workSpec = workload.Spec{Kind: "constant", P1: taskTime}
		c.declarable = true
	}
}

// WithUniform selects i.i.d. uniform task times in [lo, hi).
func WithUniform(lo, hi float64) Option {
	return func(c *Config) {
		c.work = workload.NewUniformRandom(lo, hi)
		c.workSpec = workload.Spec{Kind: "uniform", P1: lo, P2: hi}
		c.declarable = true
	}
}

// WithIncreasing selects task times rising linearly from first to last
// over the n tasks of the simulation.
func WithIncreasing(first, last float64, n int64) Option {
	return func(c *Config) {
		c.work = workload.NewIncreasing(first, last, n)
		c.workSpec = workload.Spec{Kind: "increasing", P1: first, P2: last, N: n}
		c.declarable = true
	}
}

// WithWorkload installs any workload implementation directly. Workloads
// installed this way have no declarative description, so multi-run entry
// points fall back to direct execution and skip the result cache.
func WithWorkload(w workload.Workload) Option {
	return func(c *Config) {
		c.work = w
		c.declarable = false
	}
}

// WithOverhead sets the scheduling overhead h charged per scheduling
// operation in the wasted-time metric (paper §III-B).
func WithOverhead(h float64) Option {
	return func(c *Config) { c.h = h; c.hSet = true }
}

// WithOverheadInDynamics additionally charges h inside the master's
// service loop (ablation A1), serializing concurrent requests.
func WithOverheadInDynamics() Option {
	return func(c *Config) { c.hDynamics = true }
}

// WithMessageCost adds a fixed network cost per scheduling operation
// (ablation A3).
func WithMessageCost(seconds float64) Option {
	return func(c *Config) { c.msgCost = seconds }
}

// WithSeed selects the rand48 stream; equal seeds reproduce runs exactly.
func WithSeed(seed uint64) Option {
	return func(c *Config) { c.seed = seed }
}

// WithBackend selects the simulation backend executing the runs by
// registry name: "sim" (the fast chunk-granularity simulator, default),
// "des" (the process-oriented variant on the discrete-event kernel) or
// "msg" (the full SimGrid-MSG model with explicit messages). Backends()
// lists the registered names.
func WithBackend(name string) Option {
	return func(c *Config) { c.backend = name }
}

// WithRunWorkers bounds the number of concurrently executing replications
// in MeanWastedTime and Compare. The default (0) uses all CPU cores;
// results are identical for any worker count.
func WithRunWorkers(workers int) Option {
	return func(c *Config) { c.workers = workers }
}

// WithCache serves repeated multi-run campaigns (MeanWastedTime,
// Compare) from an on-disk content-addressed result store rooted at dir,
// keyed by the canonical hash of the campaign description. Because
// campaigns are bit-deterministic in their spec, a hit returns the exact
// result of the original execution without re-simulation. Configurations
// with no declarative description (WithWorkload) bypass the cache.
func WithCache(dir string) Option {
	return func(c *Config) { c.cacheDir = dir }
}

// WithSpeeds sets relative PE speeds (heterogeneous systems).
func WithSpeeds(speeds []float64) Option {
	return func(c *Config) { c.speeds = speeds }
}

// WithStartTimes sets uneven PE start times (the scenario GSS and TSS
// were designed for).
func WithStartTimes(starts []float64) Option {
	return func(c *Config) { c.startTimes = starts }
}

// WithMinChunk sets GSS(k)'s minimum chunk size k.
func WithMinChunk(k int64) Option {
	return func(c *Config) { c.minChunk = k }
}

// WithChunk sets CSS(k)'s fixed chunk size k.
func WithChunk(k int64) Option {
	return func(c *Config) { c.chunk = k }
}

// WithTSSBounds sets TSS's first and last chunk sizes.
func WithTSSBounds(first, last int64) Option {
	return func(c *Config) { c.first = first; c.last = last }
}

// WithAlpha sets TAP's confidence factor α.
func WithAlpha(alpha float64) Option {
	return func(c *Config) { c.alpha = alpha }
}

// WithWeights sets the fixed PE weights of WF (and the initial weights of
// the AWF family).
func WithWeights(weights []float64) Option {
	return func(c *Config) { c.weights = weights }
}

// Result reports one simulated loop execution.
type Result struct {
	Makespan   float64   // parallel completion time, seconds
	AvgWasted  float64   // average wasted time (paper §III-B)
	Speedup    float64   // sequential time over makespan
	SchedOps   int64     // number of scheduling operations
	Compute    []float64 // per-PE computing time
	Wasted     []float64 // per-PE wasted time
	TasksPerPE []int64
}

// Techniques returns the names accepted by the technique parameter of
// this package's functions.
func Techniques() []string { return sched.Names() }

// Backends returns the names accepted by WithBackend.
func Backends() []string { return engine.Names() }

func buildConfig(n int64, p int, opts []Option) (Config, error) {
	if n <= 0 {
		return Config{}, fmt.Errorf("repro: task count n must be positive, got %d", n)
	}
	if p <= 0 {
		return Config{}, fmt.Errorf("repro: PE count p must be positive, got %d", p)
	}
	c := Config{seed: 1}
	for _, o := range opts {
		o(&c)
	}
	if c.work == nil {
		c.work = workload.NewExponential(1)
		c.workSpec = workload.Spec{Kind: "exponential", P1: 1}
		c.declarable = true
	}
	if !c.hSet {
		c.h = 0.5
	}
	return c, nil
}

// campaignSpec lifts the facade configuration into the engine's
// declarative campaign description, when it is expressible as one.
func (c Config) campaignSpec(techniques []string, n int64, p int, runs int, policy string) (engine.CampaignSpec, bool) {
	if !c.declarable {
		return engine.CampaignSpec{}, false
	}
	// The facade constructors accept some degenerate parameter sets the
	// declarative workload parser rejects (e.g. uniform with hi == lo).
	// Those keep running through the direct path, exactly as they did
	// before campaign specs existed, and simply bypass the result cache.
	if _, err := c.workSpec.Build(); err != nil {
		return engine.CampaignSpec{}, false
	}
	return engine.CampaignSpec{
		Backend:        c.backend,
		Techniques:     techniques,
		Ns:             []int64{n},
		Ps:             []int{p},
		Workload:       c.workSpec,
		H:              c.h,
		HInDynamics:    c.hDynamics,
		PerMessageCost: c.msgCost,
		Speeds:         c.speeds,
		StartTimes:     c.startTimes,
		MinChunk:       c.minChunk,
		Chunk:          c.chunk,
		First:          c.first,
		Last:           c.last,
		Alpha:          c.alpha,
		Weights:        c.weights,
		Replications:   runs,
		Seed:           c.seed,
		SeedPolicy:     policy,
	}, true
}

// procTiers holds one process-lifetime memory tier per cache directory,
// so repeated campaigns within one process skip the disk and JSON reads
// entirely. Tiers are scoped per directory (not shared) so that a
// campaign run against a second directory still populates that
// directory's on-disk store; each holds the campaign's per-run metrics
// blobs. The map is LRU-bounded at procTierCap directories so a process
// cycling through many cache directories cannot grow it without bound —
// an evicted directory only loses its memory layer, the on-disk store
// stays authoritative.
const procTierCap = 16

var (
	procMu    sync.Mutex
	procTiers = make(map[string]*cache.Memory)
	procOrder []string // LRU order: least recently used first
)

func memTierFor(dir string) *cache.Memory {
	if abs, err := filepath.Abs(dir); err == nil {
		dir = abs
	}
	procMu.Lock()
	defer procMu.Unlock()
	if m, ok := procTiers[dir]; ok {
		for i, d := range procOrder {
			if d == dir {
				procOrder = append(append(procOrder[:i:i], procOrder[i+1:]...), dir)
				break
			}
		}
		return m
	}
	if len(procTiers) >= procTierCap {
		evict := procOrder[0]
		procOrder = procOrder[1:]
		delete(procTiers, evict)
	}
	m := cache.NewMemory()
	procTiers[dir] = m
	procOrder = append(procOrder, dir)
	return m
}

// resultCache opens the configured content-addressed store, if any: the
// directory's in-process memory layer over its on-disk store.
func (c Config) resultCache() (cache.Store, error) {
	if c.cacheDir == "" {
		return nil, nil
	}
	disk, err := cache.NewDisk(c.cacheDir)
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	return cache.NewTiered(memTierFor(c.cacheDir), disk), nil
}

// runCampaign executes a declarative campaign through a LocalRunner
// configured from the facade options — the facade is a thin convenience
// layer over the unified Runner API, so the same spec run here, through
// campaign.NewLocal directly, or through a remote client.Client yields
// bit-identical results.
func (c Config) runCampaign(ctx context.Context, spec campaign.Spec) (*campaign.Result, error) {
	store, err := c.resultCache()
	if err != nil {
		return nil, err
	}
	local := campaign.NewLocal(campaign.LocalConfig{Store: store, Workers: c.workers})
	defer local.Close()
	return campaign.Execute(ctx, local, spec, campaign.ExecOptions{})
}

// spec maps the facade configuration onto the engine's backend-neutral
// run description. The RNG state is the mixed seed, as the facade has
// always derived it.
func (c Config) spec(technique string, n int64, p int) engine.RunSpec {
	return engine.RunSpec{
		Technique:      technique,
		N:              n,
		P:              p,
		Work:           c.work,
		RNGState:       rng.Mix64(c.seed),
		Speeds:         c.speeds,
		StartTimes:     c.startTimes,
		H:              c.h,
		HInDynamics:    c.hDynamics,
		PerMessageCost: c.msgCost,
		MinChunk:       c.minChunk,
		Chunk:          c.chunk,
		First:          c.first,
		Last:           c.last,
		Alpha:          c.alpha,
		Weights:        c.weights,
	}
}

// result converts an engine result into the facade's Result.
func (c Config) result(n int64, res *engine.RunResult) *Result {
	out := &Result{
		Makespan:   res.Makespan,
		AvgWasted:  metrics.AverageWasted(res.Makespan, res.Compute, res.SchedOps, c.h),
		SchedOps:   res.SchedOps,
		Compute:    res.Compute,
		Wasted:     metrics.PerWorkerWasted(res.Makespan, res.Compute, res.OpsPerWorker, c.h),
		TasksPerPE: res.TasksPerWorker,
	}
	if res.Makespan > 0 {
		out.Speedup = workload.Total(c.work, n) / res.Makespan
	}
	return out
}

// Simulate executes one master–worker loop execution of n tasks on p PEs
// under the named DLS technique and returns its timing results.
func Simulate(technique string, n int64, p int, opts ...Option) (*Result, error) {
	return SimulateContext(context.Background(), technique, n, p, opts...)
}

// SimulateContext is Simulate with a cancellation context: a cancelled
// ctx aborts before the run starts (the built-in simulators complete an
// already-started run) and returns an error wrapping ctx.Err().
func SimulateContext(ctx context.Context, technique string, n int64, p int, opts ...Option) (*Result, error) {
	c, err := buildConfig(n, p, opts)
	if err != nil {
		return nil, err
	}
	be, err := engine.New(c.backend)
	if err != nil {
		return nil, err
	}
	res, err := be.Run(ctx, c.spec(technique, n, p))
	if err != nil {
		return nil, err
	}
	return c.result(n, res), nil
}

// WastedTime returns the average wasted time of a single simulated run —
// the quantity of the paper's Figures 5–8.
func WastedTime(technique string, n int64, p int, opts ...Option) (float64, error) {
	res, err := Simulate(technique, n, p, opts...)
	if err != nil {
		return 0, err
	}
	return res.AvgWasted, nil
}

// MeanWastedTime averages the wasted time over the given number of
// independent runs (the paper uses 1000), deriving one rand48 stream per
// run from the configured seed. Replications execute concurrently on the
// configured backend through the engine's streaming campaign pipeline;
// the result is identical to running them serially, and with WithCache a
// repeated call is served from the content-addressed result store.
func MeanWastedTime(technique string, n int64, p int, runs int, opts ...Option) (float64, error) {
	return MeanWastedTimeContext(context.Background(), technique, n, p, runs, opts...)
}

// MeanWastedTimeContext is MeanWastedTime with a cancellation context:
// cancelling ctx stops scheduling new replications, drains the worker
// pool and returns an error wrapping ctx.Err().
func MeanWastedTimeContext(ctx context.Context, technique string, n int64, p int, runs int, opts ...Option) (float64, error) {
	if runs <= 0 {
		return 0, fmt.Errorf("repro: runs must be positive, got %d", runs)
	}
	c, err := buildConfig(n, p, opts)
	if err != nil {
		return 0, err
	}
	if spec, ok := c.campaignSpec([]string{technique}, n, p, runs, engine.SeedFacade); ok {
		res, err := c.runCampaign(ctx, spec)
		if err != nil {
			return 0, err
		}
		return res.Aggregates[0].Wasted.Mean, nil
	}
	// Workloads without a declarative description run directly.
	res, err := engine.Campaign{
		Backend:      c.backend,
		Points:       []engine.RunSpec{c.spec(technique, n, p)},
		Replications: runs,
		Workers:      c.workers,
		// Each run seeds its stream exactly as a serial
		// Simulate(WithSeed(rng.RunSeed(base, r))) loop would.
		SeedFor: func(_, r int) uint64 { return rng.Mix64(rng.RunSeed(c.seed, r)) },
	}.Run(ctx)
	if err != nil {
		return 0, err
	}
	return res.Aggregates[0].Wasted.Mean, nil
}

// Compare runs every named technique once under identical options and
// returns technique → average wasted time. Techniques execute
// concurrently; WithBackend targets any registered backend and WithCache
// serves repeated comparisons from the result store.
func Compare(techniques []string, n int64, p int, opts ...Option) (map[string]float64, error) {
	return CompareContext(context.Background(), techniques, n, p, opts...)
}

// CompareContext is Compare with a cancellation context, aborting the
// technique fan-out when ctx is cancelled.
func CompareContext(ctx context.Context, techniques []string, n int64, p int, opts ...Option) (map[string]float64, error) {
	if len(techniques) == 0 {
		return nil, fmt.Errorf("repro: Compare needs at least one technique")
	}
	// A duplicate name would silently collapse into one key of the
	// returned map; reject it on every path (the declarative spec
	// validation repeats this check for spec-level callers).
	seen := make(map[string]struct{}, len(techniques))
	for _, t := range techniques {
		if _, dup := seen[t]; dup {
			return nil, fmt.Errorf("repro: Compare: duplicate technique %q (each technique may appear once)", t)
		}
		seen[t] = struct{}{}
	}
	c, err := buildConfig(n, p, opts)
	if err != nil {
		return nil, err
	}
	var res *campaign.Result
	if spec, ok := c.campaignSpec(techniques, n, p, 1, engine.SeedShared); ok {
		res, err = c.runCampaign(ctx, spec)
		if err != nil {
			return nil, err
		}
	} else {
		points := make([]engine.RunSpec, len(techniques))
		for i, t := range techniques {
			points[i] = c.spec(t, n, p)
		}
		res, err = engine.Campaign{
			Backend:      c.backend,
			Points:       points,
			Replications: 1,
			Workers:      c.workers,
			// One run per technique under the facade's single-run seed,
			// as the serial WastedTime loop derived it.
			SeedFor: func(_, _ int) uint64 { return rng.Mix64(c.seed) },
		}.Run(ctx)
		if err != nil {
			return nil, err
		}
	}
	out := make(map[string]float64, len(techniques))
	for i, t := range techniques {
		out[t] = res.Aggregates[i].Wasted.Mean
	}
	return out, nil
}
