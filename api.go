package repro

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Config collects the simulation options the facade accepts. Zero values
// select the Hagerup defaults (exponential µ = 1 s, h = 0.5 s, seed 1).
type Config struct {
	work       workload.Workload
	h          float64
	hSet       bool
	seed       uint64
	speeds     []float64
	startTimes []float64
	minChunk   int64
	chunk      int64
	first      int64
	last       int64
	alpha      float64
	weights    []float64
	hDynamics  bool
	msgCost    float64
}

// Option customizes a simulation.
type Option func(*Config)

// WithExponential selects i.i.d. exponential task times with mean mu
// (the BOLD publication's workload).
func WithExponential(mu float64) Option {
	return func(c *Config) { c.work = workload.NewExponential(mu) }
}

// WithConstant selects constant task times of c seconds (the TSS
// publication's workload).
func WithConstant(taskTime float64) Option {
	return func(c *Config) { c.work = workload.NewConstant(taskTime) }
}

// WithUniform selects i.i.d. uniform task times in [lo, hi).
func WithUniform(lo, hi float64) Option {
	return func(c *Config) { c.work = workload.NewUniformRandom(lo, hi) }
}

// WithIncreasing selects task times rising linearly from first to last
// over the n tasks of the simulation.
func WithIncreasing(first, last float64, n int64) Option {
	return func(c *Config) { c.work = workload.NewIncreasing(first, last, n) }
}

// WithWorkload installs any workload implementation directly.
func WithWorkload(w workload.Workload) Option {
	return func(c *Config) { c.work = w }
}

// WithOverhead sets the scheduling overhead h charged per scheduling
// operation in the wasted-time metric (paper §III-B).
func WithOverhead(h float64) Option {
	return func(c *Config) { c.h = h; c.hSet = true }
}

// WithOverheadInDynamics additionally charges h inside the master's
// service loop (ablation A1), serializing concurrent requests.
func WithOverheadInDynamics() Option {
	return func(c *Config) { c.hDynamics = true }
}

// WithMessageCost adds a fixed network cost per scheduling operation
// (ablation A3).
func WithMessageCost(seconds float64) Option {
	return func(c *Config) { c.msgCost = seconds }
}

// WithSeed selects the rand48 stream; equal seeds reproduce runs exactly.
func WithSeed(seed uint64) Option {
	return func(c *Config) { c.seed = seed }
}

// WithSpeeds sets relative PE speeds (heterogeneous systems).
func WithSpeeds(speeds []float64) Option {
	return func(c *Config) { c.speeds = speeds }
}

// WithStartTimes sets uneven PE start times (the scenario GSS and TSS
// were designed for).
func WithStartTimes(starts []float64) Option {
	return func(c *Config) { c.startTimes = starts }
}

// WithMinChunk sets GSS(k)'s minimum chunk size k.
func WithMinChunk(k int64) Option {
	return func(c *Config) { c.minChunk = k }
}

// WithChunk sets CSS(k)'s fixed chunk size k.
func WithChunk(k int64) Option {
	return func(c *Config) { c.chunk = k }
}

// WithTSSBounds sets TSS's first and last chunk sizes.
func WithTSSBounds(first, last int64) Option {
	return func(c *Config) { c.first = first; c.last = last }
}

// WithAlpha sets TAP's confidence factor α.
func WithAlpha(alpha float64) Option {
	return func(c *Config) { c.alpha = alpha }
}

// WithWeights sets the fixed PE weights of WF (and the initial weights of
// the AWF family).
func WithWeights(weights []float64) Option {
	return func(c *Config) { c.weights = weights }
}

// Result reports one simulated loop execution.
type Result struct {
	Makespan   float64   // parallel completion time, seconds
	AvgWasted  float64   // average wasted time (paper §III-B)
	Speedup    float64   // sequential time over makespan
	SchedOps   int64     // number of scheduling operations
	Compute    []float64 // per-PE computing time
	Wasted     []float64 // per-PE wasted time
	TasksPerPE []int64
}

// Techniques returns the names accepted by the technique parameter of
// this package's functions.
func Techniques() []string { return sched.Names() }

func buildConfig(n int64, opts []Option) Config {
	c := Config{seed: 1}
	for _, o := range opts {
		o(&c)
	}
	if c.work == nil {
		c.work = workload.NewExponential(1)
	}
	if !c.hSet {
		c.h = 0.5
	}
	_ = n
	return c
}

// Simulate executes one master–worker loop execution of n tasks on p PEs
// under the named DLS technique and returns its timing results.
func Simulate(technique string, n int64, p int, opts ...Option) (*Result, error) {
	c := buildConfig(n, opts)
	s, err := sched.New(technique, sched.Params{
		N: n, P: p,
		H: c.h, Mu: c.work.Mean(), Sigma: c.work.Std(),
		MinChunk: c.minChunk, Chunk: c.chunk,
		First: c.first, Last: c.last,
		Alpha: c.alpha, Weights: c.weights,
	})
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(sim.Config{
		P:              p,
		Sched:          s,
		Work:           c.work,
		RNG:            rng.FromState(rng.Mix64(c.seed)),
		Speeds:         c.speeds,
		StartTimes:     c.startTimes,
		H:              c.h,
		HInDynamics:    c.hDynamics,
		PerMessageCost: c.msgCost,
	})
	if err != nil {
		return nil, err
	}
	seq := workload.Total(c.work, n)
	out := &Result{
		Makespan:   res.Makespan,
		AvgWasted:  metrics.AverageWasted(res.Makespan, res.Compute, res.SchedOps, c.h),
		SchedOps:   res.SchedOps,
		Compute:    res.Compute,
		Wasted:     metrics.PerWorkerWasted(res.Makespan, res.Compute, res.OpsPerWorker, c.h),
		TasksPerPE: res.TasksPerWorker,
	}
	if res.Makespan > 0 {
		out.Speedup = seq / res.Makespan
	}
	return out, nil
}

// WastedTime returns the average wasted time of a single simulated run —
// the quantity of the paper's Figures 5–8.
func WastedTime(technique string, n int64, p int, opts ...Option) (float64, error) {
	res, err := Simulate(technique, n, p, opts...)
	if err != nil {
		return 0, err
	}
	return res.AvgWasted, nil
}

// MeanWastedTime averages the wasted time over the given number of
// independent runs (the paper uses 1000), deriving one rand48 stream per
// run from the configured seed.
func MeanWastedTime(technique string, n int64, p int, runs int, opts ...Option) (float64, error) {
	if runs <= 0 {
		return 0, fmt.Errorf("repro: runs must be positive, got %d", runs)
	}
	c := buildConfig(n, opts)
	var sum float64
	for r := 0; r < runs; r++ {
		perRun := append([]Option(nil), opts...)
		perRun = append(perRun, WithSeed(rng.RunSeed(c.seed, r)))
		v, err := WastedTime(technique, n, p, perRun...)
		if err != nil {
			return 0, err
		}
		sum += v
	}
	return sum / float64(runs), nil
}

// Compare runs every named technique once under identical options and
// returns technique → average wasted time.
func Compare(techniques []string, n int64, p int, opts ...Option) (map[string]float64, error) {
	out := make(map[string]float64, len(techniques))
	for _, t := range techniques {
		v, err := WastedTime(t, n, p, opts...)
		if err != nil {
			return nil, err
		}
		out[t] = v
	}
	return out, nil
}
