package rng

import (
	"math"
)

// This file implements the probability distributions used by the workload
// generators. Every sampler draws exclusively from a *Rand48 stream so the
// whole simulation depends on a single, documented source of randomness.

// Exponential returns a sample from the exponential distribution with the
// given mean (mean = 1/rate). The BOLD publication experiment uses
// exponential task execution times with mean 1 s.
func Exponential(r *Rand48, mean float64) float64 {
	// 1-u is in (0,1]; log of it is finite. u itself could be 0.
	return -mean * math.Log(1-r.Erand48())
}

// Uniform returns a sample uniformly distributed in [lo, hi).
func Uniform(r *Rand48, lo, hi float64) float64 {
	return lo + (hi-lo)*r.Erand48()
}

// Normal returns a sample from the normal distribution N(mu, sigma^2)
// using the Marsaglia polar method. Two uniforms are consumed per
// accepted pair; the spare deviate is intentionally discarded so that the
// consumption pattern stays independent of call history (simpler
// reproducibility reasoning at negligible cost).
func Normal(r *Rand48, mu, sigma float64) float64 {
	for {
		u := 2*r.Erand48() - 1
		v := 2*r.Erand48() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		return mu + sigma*u*f
	}
}

// Gamma returns a sample from the gamma distribution with the given shape
// and scale (mean = shape*scale). It implements the Marsaglia–Tsang
// squeeze method for shape >= 1 and the Ahrens–Dieter boost for
// shape < 1. Gamma(k, theta) with integer k is exactly the distribution of
// the sum of k independent exponentials of mean theta, which is what makes
// the O(1) chunk-time fast path in package workload distribution-exact.
func Gamma(r *Rand48, shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("rng: Gamma requires positive shape and scale")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := r.Erand48()
		for u == 0 {
			u = r.Erand48()
		}
		return Gamma(r, shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = Normal(r, 0, 1)
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.Erand48()
		if u < 1-0.0331*x*x*x*x {
			return scale * d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return scale * d * v
		}
	}
}

// Lognormal returns a sample whose logarithm is N(mu, sigma^2).
func Lognormal(r *Rand48, mu, sigma float64) float64 {
	return math.Exp(Normal(r, mu, sigma))
}

// Weibull returns a sample from the Weibull distribution with the given
// shape k and scale lambda.
func Weibull(r *Rand48, shape, scale float64) float64 {
	u := 1 - r.Erand48() // in (0,1]
	return scale * math.Pow(-math.Log(u), 1/shape)
}

// ErlangSum returns the sum of k independent exponential samples of the
// given mean, drawn one by one. It is the exact (slow) counterpart of
// Gamma(k, mean) and exists for cross-validation of the fast path.
func ErlangSum(r *Rand48, k int64, mean float64) float64 {
	var s float64
	for i := int64(0); i < k; i++ {
		s += Exponential(r, mean)
	}
	return s
}
