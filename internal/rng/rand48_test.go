package rng

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

// bigModel is an independent implementation of the rand48 recurrence using
// arbitrary-precision arithmetic. The production code must agree with it
// bit for bit.
type bigModel struct {
	x *big.Int
}

func newBigModel(seed int64) *bigModel {
	x := new(big.Int).SetUint64(uint64(uint32(seed)))
	x.Lsh(x, 16)
	x.Or(x, big.NewInt(seedLow))
	return &bigModel{x: x}
}

func (m *bigModel) next() uint64 {
	a := new(big.Int).SetUint64(mult48)
	c := big.NewInt(add48)
	mod := new(big.Int).Lsh(big.NewInt(1), 48)
	m.x.Mul(m.x, a)
	m.x.Add(m.x, c)
	m.x.Mod(m.x, mod)
	return m.x.Uint64()
}

func TestRand48MatchesBigIntModel(t *testing.T) {
	seeds := []int64{0, 1, 42, 123456789, -1, 1 << 31}
	for _, seed := range seeds {
		r := New(seed)
		m := newBigModel(seed)
		for i := 0; i < 1000; i++ {
			want := m.next()
			r.next()
			if got := r.State(); got != want {
				t.Fatalf("seed %d step %d: state = %#x, want %#x", seed, i, got, want)
			}
		}
	}
}

func TestSrand48InitialState(t *testing.T) {
	r := New(1)
	if got, want := r.State(), uint64(1)<<16|seedLow; got != want {
		t.Fatalf("initial state = %#x, want %#x", got, want)
	}
}

// TestErand48KnownValues pins the first outputs of the seed-1 stream. The
// expected values were computed by hand from the LCG recurrence:
//
//	X0 = 0x1330E
//	X1 = (0x5DEECE66D*0x1330E + 0xB) mod 2^48 = 0x2FDC04B39745
func TestErand48KnownValues(t *testing.T) {
	r := New(1)
	x1 := (uint64(0x1330E)*mult48 + add48) & mask48
	want := float64(x1) / (1 << 48)
	if got := r.Erand48(); got != want {
		t.Fatalf("first erand48 = %v, want %v", got, want)
	}
	// nrand48 of the *next* step must be the high 31 bits.
	x2 := (x1*mult48 + add48) & mask48
	if got, want := r.Nrand48(), int32(x2>>17); got != want {
		t.Fatalf("second nrand48 = %d, want %d", got, want)
	}
}

func TestErand48Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		v := r.Erand48()
		if v < 0 || v >= 1 {
			t.Fatalf("erand48 out of [0,1): %v", v)
		}
	}
}

func TestNrand48NonNegative(t *testing.T) {
	r := New(99)
	for i := 0; i < 100000; i++ {
		if v := r.Nrand48(); v < 0 {
			t.Fatalf("nrand48 negative: %d", v)
		}
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	a, b := New(2024), New(2024)
	for i := 0; i < 10000; i++ {
		if a.Erand48() != b.Erand48() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSetStateRoundTrip(t *testing.T) {
	r := New(5)
	for i := 0; i < 17; i++ {
		r.Erand48()
	}
	s := r.State()
	next := r.Erand48()
	r2 := FromState(s)
	if got := r2.Erand48(); got != next {
		t.Fatalf("state restore: got %v, want %v", got, next)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestMix64Bijectivity(t *testing.T) {
	// Mix64 must not collide on a sample of distinct inputs; collisions
	// would correlate run seeds.
	seen := make(map[uint64]uint64, 4096)
	for i := uint64(0); i < 4096; i++ {
		h := Mix64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("Mix64 collision: %d and %d -> %#x", prev, i, h)
		}
		seen[h] = i
	}
}

func TestRunSeedDistinctness(t *testing.T) {
	base := uint64(0xDEADBEEF)
	seen := make(map[uint64]int, 2048)
	for run := 0; run < 2048; run++ {
		s := RunSeed(base, run)
		if s > mask48 {
			t.Fatalf("RunSeed exceeds 48 bits: %#x", s)
		}
		if prev, ok := seen[s]; ok {
			t.Fatalf("RunSeed collision between runs %d and %d", prev, run)
		}
		seen[s] = run
	}
}

func TestStreamForIndependence(t *testing.T) {
	// First outputs of sibling streams should not be equal (astronomically
	// unlikely under correct derivation).
	a := StreamFor(1, 0).Erand48()
	b := StreamFor(1, 1).Erand48()
	c := StreamFor(2, 0).Erand48()
	if a == b || a == c || b == c {
		t.Fatalf("derived streams coincide: %v %v %v", a, b, c)
	}
}

func TestSplitAdvancesParent(t *testing.T) {
	a, b := New(11), New(11)
	_ = a.Split()
	b.next()
	if a.State() != b.State() {
		t.Fatal("Split must advance the parent stream exactly one step")
	}
}

func TestQuickStateMasked(t *testing.T) {
	f := func(s uint64) bool {
		r := FromState(s)
		r.next()
		return r.State() <= mask48
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickErand48InUnitInterval(t *testing.T) {
	f := func(s uint64) bool {
		r := FromState(s)
		v := r.Erand48()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestErand48ChiSquareUniformity bins 200k erand48 draws into 100 equal
// cells and applies a chi-square goodness-of-fit test. For 99 degrees of
// freedom the 99.9th percentile is ~148.2; exceeding it would indicate a
// broken generator, not bad luck.
func TestErand48ChiSquareUniformity(t *testing.T) {
	const bins = 100
	const samples = 200000
	r := New(424242)
	counts := make([]int, bins)
	for i := 0; i < samples; i++ {
		b := int(r.Erand48() * bins)
		if b == bins {
			b = bins - 1
		}
		counts[b]++
	}
	expected := float64(samples) / bins
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 148.2 {
		t.Fatalf("chi-square statistic %.1f exceeds the 99.9%% critical value 148.2", chi2)
	}
}

// TestErand48SerialCorrelation checks the lag-1 serial correlation of the
// stream is near zero (LCGs have structure in high dimensions, but the
// lag-1 correlation of the full 48-bit state is tiny).
func TestErand48SerialCorrelation(t *testing.T) {
	const samples = 200000
	r := New(7)
	prev := r.Erand48()
	var sumXY, sumX, sumY, sumX2, sumY2 float64
	for i := 0; i < samples; i++ {
		cur := r.Erand48()
		sumXY += prev * cur
		sumX += prev
		sumY += cur
		sumX2 += prev * prev
		sumY2 += cur * cur
		prev = cur
	}
	n := float64(samples)
	num := n*sumXY - sumX*sumY
	den := math.Sqrt((n*sumX2 - sumX*sumX) * (n*sumY2 - sumY*sumY))
	if corr := num / den; math.Abs(corr) > 0.01 {
		t.Fatalf("lag-1 serial correlation %.4f, want ~0", corr)
	}
}
