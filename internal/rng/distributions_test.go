package rng

import (
	"math"
	"testing"
)

// moments draws n samples and returns their sample mean and variance.
func moments(n int, draw func() float64) (mean, variance float64) {
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := draw()
		sum += v
		sum2 += v * v
	}
	mean = sum / float64(n)
	variance = sum2/float64(n) - mean*mean
	return mean, variance
}

func TestExponentialMoments(t *testing.T) {
	r := New(101)
	const mu = 1.0
	mean, variance := moments(200000, func() float64 { return Exponential(r, mu) })
	if math.Abs(mean-mu) > 0.02 {
		t.Errorf("exponential mean = %v, want ~%v", mean, mu)
	}
	if math.Abs(variance-mu*mu) > 0.05 {
		t.Errorf("exponential variance = %v, want ~%v", variance, mu*mu)
	}
}

func TestExponentialPositive(t *testing.T) {
	r := New(55)
	for i := 0; i < 100000; i++ {
		if v := Exponential(r, 2.5); v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("bad exponential sample: %v", v)
		}
	}
}

func TestUniformMoments(t *testing.T) {
	r := New(7)
	lo, hi := 3.0, 9.0
	mean, variance := moments(200000, func() float64 { return Uniform(r, lo, hi) })
	if math.Abs(mean-6.0) > 0.02 {
		t.Errorf("uniform mean = %v, want ~6", mean)
	}
	wantVar := (hi - lo) * (hi - lo) / 12
	if math.Abs(variance-wantVar) > 0.06 {
		t.Errorf("uniform variance = %v, want ~%v", variance, wantVar)
	}
}

func TestUniformRange(t *testing.T) {
	r := New(8)
	for i := 0; i < 100000; i++ {
		v := Uniform(r, -2, 5)
		if v < -2 || v >= 5 {
			t.Fatalf("uniform out of range: %v", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(9)
	mean, variance := moments(200000, func() float64 { return Normal(r, 10, 3) })
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("normal mean = %v, want ~10", mean)
	}
	if math.Abs(variance-9) > 0.2 {
		t.Errorf("normal variance = %v, want ~9", variance)
	}
}

func TestGammaMoments(t *testing.T) {
	r := New(10)
	cases := []struct{ shape, scale float64 }{
		{1, 1}, {2, 0.5}, {7.5, 2}, {0.5, 1}, {100, 1},
	}
	for _, c := range cases {
		wantMean := c.shape * c.scale
		wantVar := c.shape * c.scale * c.scale
		mean, variance := moments(200000, func() float64 { return Gamma(r, c.shape, c.scale) })
		if math.Abs(mean-wantMean) > 0.05*wantMean+0.02 {
			t.Errorf("gamma(%v,%v) mean = %v, want ~%v", c.shape, c.scale, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > 0.12*wantVar+0.05 {
			t.Errorf("gamma(%v,%v) variance = %v, want ~%v", c.shape, c.scale, variance, wantVar)
		}
	}
}

func TestGammaPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Gamma(-1, 1) did not panic")
		}
	}()
	Gamma(New(1), -1, 1)
}

// TestGammaMatchesErlangSum verifies the core fast-path claim: Gamma(k, mu)
// and the sum of k exponentials of mean mu agree in distribution. We
// compare means and variances of the two samplers.
func TestGammaMatchesErlangSum(t *testing.T) {
	const k, mu = 64, 1.0
	r1, r2 := New(1234), New(5678)
	gMean, gVar := moments(50000, func() float64 { return Gamma(r1, k, mu) })
	eMean, eVar := moments(50000, func() float64 { return ErlangSum(r2, k, mu) })
	if math.Abs(gMean-eMean) > 0.01*eMean {
		t.Errorf("gamma mean %v vs erlang mean %v", gMean, eMean)
	}
	if math.Abs(gVar-eVar) > 0.1*eVar {
		t.Errorf("gamma variance %v vs erlang variance %v", gVar, eVar)
	}
	if math.Abs(eMean-k*mu) > 0.05*k*mu {
		t.Errorf("erlang mean %v, want ~%v", eMean, k*mu)
	}
}

func TestLognormalMoments(t *testing.T) {
	r := New(12)
	mu, sigma := 0.0, 0.25
	wantMean := math.Exp(mu + sigma*sigma/2)
	mean, _ := moments(200000, func() float64 { return Lognormal(r, mu, sigma) })
	if math.Abs(mean-wantMean) > 0.02 {
		t.Errorf("lognormal mean = %v, want ~%v", mean, wantMean)
	}
}

func TestWeibullMoments(t *testing.T) {
	r := New(13)
	shape, scale := 2.0, 1.0
	wantMean := scale * math.Gamma(1+1/shape)
	mean, _ := moments(200000, func() float64 { return Weibull(r, shape, scale) })
	if math.Abs(mean-wantMean) > 0.02 {
		t.Errorf("weibull mean = %v, want ~%v", mean, wantMean)
	}
}

func TestErlangSumZeroTasks(t *testing.T) {
	if v := ErlangSum(New(1), 0, 1); v != 0 {
		t.Fatalf("ErlangSum(0) = %v, want 0", v)
	}
}

func BenchmarkErand48(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Erand48()
	}
}

func BenchmarkExponential(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = Exponential(r, 1)
	}
}

func BenchmarkGammaLargeShape(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = Gamma(r, 512, 1)
	}
}
