package rng

import "testing"

// TestSplitMix64ReferenceVector pins the generator to the published
// splitmix64 reference implementation (Steele, Lea & Flood; the same
// vector java.util.SplittableRandom and xoshiro's seeder use): the first
// outputs for seed 0.
func TestSplitMix64ReferenceVector(t *testing.T) {
	want := []uint64{
		0xE220A8397B1DCDAF,
		0x6E789E6AA1B965F4,
		0x06C45D188009454F,
		0xF88BB8A8724C81EC,
		0x1B39896A51A8749B,
	}
	g := NewSplitMix64(0)
	for i, w := range want {
		if got := g.Next(); got != w {
			t.Fatalf("output %d = %#016x, want %#016x", i, got, w)
		}
	}
}

func TestSplitMix64Deterministic(t *testing.T) {
	a, b := NewSplitMix64(12345), NewSplitMix64(12345)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("sequences diverge at step %d", i)
		}
	}
	c := NewSplitMix64(12346)
	if NewSplitMix64(12345).Next() == c.Next() {
		t.Fatal("adjacent seeds produce equal first outputs")
	}
}

func TestMix64ZeroFixedPoint(t *testing.T) {
	// 0 is the finalizer's only well-known fixed point; seed derivations
	// must therefore never feed a raw 0 into Mix64 alone (RunSeed and
	// CellSeed both add offsets first).
	if Mix64(0) != 0 {
		t.Fatalf("Mix64(0) = %#x", Mix64(0))
	}
	if RunSeed(0, 0) == 0 {
		t.Fatal("RunSeed(0, 0) collapsed to the zero state")
	}
	if CellSeed(0, "SS", 0, 0) == 0 {
		t.Fatal("CellSeed with zero inputs collapsed to the zero state")
	}
}

// TestRunSeedFitsRand48State: derived run seeds are full 48-bit rand48
// states, never wider.
func TestRunSeedFitsRand48State(t *testing.T) {
	for base := uint64(0); base < 8; base++ {
		for run := 0; run < 64; run++ {
			s := RunSeed(base*0x1234567, run)
			if s&^uint64(mask48) != 0 {
				t.Fatalf("RunSeed(%d, %d) = %#x exceeds 48 bits", base, run, s)
			}
		}
	}
}

// TestRunSeedNoCollisionsAcrossRunsAndBases: the (base, run) → state map
// must be collision-free over realistic campaign shapes, or replications
// would silently share random streams.
func TestRunSeedNoCollisionsAcrossRunsAndBases(t *testing.T) {
	seen := make(map[uint64]string, 50*1000)
	for b := 0; b < 50; b++ {
		base := CellSeed(20170601, "FAC", int64(b), b)
		for run := 0; run < 1000; run++ {
			s := RunSeed(base, run)
			if prev, dup := seen[s]; dup {
				t.Fatalf("state collision: base=%d run=%d vs %s", b, run, prev)
			}
			seen[s] = ""
		}
	}
}

func TestCellSeedSensitivity(t *testing.T) {
	base := CellSeed(1, "FAC", 1024, 8)
	mutants := map[string]uint64{
		"seed":      CellSeed(2, "FAC", 1024, 8),
		"technique": CellSeed(1, "FAC2", 1024, 8),
		"n":         CellSeed(1, "FAC", 1025, 8),
		"p":         CellSeed(1, "FAC", 1024, 9),
	}
	for name, got := range mutants {
		if got == base {
			t.Errorf("changing %s did not change the cell seed", name)
		}
	}
	if CellSeed(1, "FAC", 1024, 8) != base {
		t.Error("CellSeed not deterministic")
	}
}

// TestCellSeedOrderIndependence: the (n, p) pair must be injected so that
// transposed values cannot collide (p is shifted into the high half).
func TestCellSeedTransposition(t *testing.T) {
	if CellSeed(1, "SS", 8, 64) == CellSeed(1, "SS", 64, 8) {
		t.Fatal("transposed (n, p) collide")
	}
}

func TestStreamForMatchesRunSeed(t *testing.T) {
	const base, run = 42, 17
	if got, want := StreamFor(base, run).State(), RunSeed(base, run); got != want {
		t.Fatalf("StreamFor state %#x != RunSeed %#x", got, want)
	}
	// And the stream draws exactly as a generator built from that state.
	a, b := StreamFor(base, run), FromState(RunSeed(base, run))
	for i := 0; i < 10; i++ {
		if a.Erand48() != b.Erand48() {
			t.Fatalf("draw %d differs", i)
		}
	}
}
