package rng

// SplitMix64 is a tiny, high-quality 64-bit generator used only to derive
// per-run seeds for the rand48 streams of an experiment. Deriving run
// seeds by hashing (baseSeed, runIndex) keeps results bit-reproducible no
// matter how many runs execute concurrently or in what order.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 generator with the given state.
func NewSplitMix64(seed uint64) *SplitMix64 { return &SplitMix64{state: seed} }

// Next returns the next 64-bit value of the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	return Mix64(s.state)
}

// Mix64 applies the SplitMix64 finalizer to x. It is a bijective avalanche
// mix: every input bit affects roughly half the output bits.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// RunSeed derives the 48-bit rand48 state for run index run of an
// experiment with the given base seed. Distinct (base, run) pairs map to
// well-separated states.
func RunSeed(base uint64, run int) uint64 {
	return Mix64(base^Mix64(uint64(run)+0x632BE59BD9B4E019)) & mask48
}

// StreamFor returns a ready-to-use generator for run index run under base.
func StreamFor(base uint64, run int) *Rand48 {
	return FromState(RunSeed(base, run))
}

// CellSeed derives the base seed of one (technique, n, p) grid cell.
// Distinct cells get decorrelated streams even if the user seed is
// small; the per-run state of the cell then comes from RunSeed.
func CellSeed(seed uint64, tech string, n int64, p int) uint64 {
	h := Mix64(seed)
	for _, c := range []byte(tech) {
		h = Mix64(h ^ uint64(c))
	}
	h = Mix64(h ^ uint64(n))
	h = Mix64(h ^ uint64(p)<<32)
	return h
}
