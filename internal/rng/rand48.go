// Package rng implements the POSIX rand48 family of pseudo-random number
// generators and the distributions required by the dynamic loop scheduling
// experiments reproduced in this repository.
//
// The BOLD publication (Hagerup, JPDC 47(2), 1997) generates task execution
// times "with the aid of the random number generators erand48 and nrand48"
// (paper §III-B). To stay faithful to that experimental setup, this package
// provides a bit-exact implementation of the 48-bit linear congruential
// generator those functions share:
//
//	X(k+1) = (a*X(k) + c) mod 2^48,  a = 0x5DEECE66D, c = 0xB
//
// All state is explicit (the *48 variants of the C API), so independent
// streams are cheap and the simulation remains deterministic under
// parallel execution.
package rng

const (
	mult48 = 0x5DEECE66D // multiplier a of the rand48 LCG
	add48  = 0xB         // increment c of the rand48 LCG
	mask48 = 1<<48 - 1   // 48-bit modulus mask

	// seedLow is the constant low word POSIX srand48 installs: the
	// initial state is (seed << 16) | 0x330E.
	seedLow = 0x330E
)

// Rand48 is a deterministic 48-bit linear congruential generator with the
// POSIX rand48 parameters. The zero value is a valid generator seeded with
// state 0; use New or Seed for reproducible, documented seeding.
type Rand48 struct {
	state uint64 // only the low 48 bits are significant
}

// New returns a generator seeded as POSIX srand48 would seed it: the high
// 32 bits of the state are the low 32 bits of seed and the low 16 bits are
// 0x330E.
func New(seed int64) *Rand48 {
	r := &Rand48{}
	r.Seed(seed)
	return r
}

// FromState returns a generator whose full 48-bit state is state&mask48,
// equivalent to the C seed48 interface. Use this to derive independent
// streams from a SplitMix64 hash.
func FromState(state uint64) *Rand48 {
	return &Rand48{state: state & mask48}
}

// Seed resets the generator exactly like srand48: state = seed<<16 | 0x330E.
func (r *Rand48) Seed(seed int64) {
	r.state = (uint64(uint32(seed))<<16 | seedLow) & mask48
}

// State returns the current 48-bit state (seed48 semantics).
func (r *Rand48) State() uint64 { return r.state }

// SetState installs a full 48-bit state (seed48 semantics).
func (r *Rand48) SetState(s uint64) { r.state = s & mask48 }

// next advances the LCG one step and returns the new 48-bit state.
func (r *Rand48) next() uint64 {
	r.state = (r.state*mult48 + add48) & mask48
	return r.state
}

// Erand48 returns the next value as a float64 uniformly distributed in
// [0, 1), matching the C library erand48: the 48 state bits become the
// mantissa of a double scaled by 2^-48.
func (r *Rand48) Erand48() float64 {
	return float64(r.next()) / (1 << 48)
}

// Nrand48 returns the next value as a non-negative 31-bit integer,
// matching the C library nrand48 (the high 31 of the 48 state bits).
func (r *Rand48) Nrand48() int32 {
	return int32(r.next() >> 17)
}

// Mrand48 returns the next value as a signed 32-bit integer, matching the
// C library mrand48/jrand48 (the high 32 of the 48 state bits,
// reinterpreted as signed).
func (r *Rand48) Mrand48() int32 {
	return int32(uint32(r.next() >> 16))
}

// Uint64 returns 64 pseudo-random bits assembled from two LCG steps
// (32 high-quality high bits from each). It exists so the generator can
// drive generic algorithms expecting a 64-bit source.
func (r *Rand48) Uint64() uint64 {
	hi := uint64(uint32(r.next() >> 16))
	lo := uint64(uint32(r.next() >> 16))
	return hi<<32 | lo
}

// Float64 is an alias for Erand48, satisfying the naming convention used
// throughout the simulator code.
func (r *Rand48) Float64() float64 { return r.Erand48() }

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0. The slight modulo bias of a plain remainder is avoided by
// rejection sampling on the 31-bit nrand48 output.
func (r *Rand48) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	if n > 1<<30 {
		// Fall back to 63-bit rejection for very large ranges.
		for {
			v := int64(r.Uint64() >> 1)
			if lim := (1<<63 - 1) - (1<<63-1)%int64(n); v < lim {
				return int(v % int64(n))
			}
		}
	}
	max := int32((1 << 31) - 1)
	lim := max - max%int32(n)
	for {
		if v := r.Nrand48(); v < lim {
			return int(v % int32(n))
		}
	}
}

// Split derives an independent child generator from the current stream
// using a SplitMix64 finalizer over the next raw state. The parent stream
// advances by one step. Children of distinct draws are statistically
// independent for simulation purposes.
func (r *Rand48) Split() *Rand48 {
	return FromState(Mix64(r.next()))
}
