package cache

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

const key = "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"

// ctx is the background context every store call in these tests uses;
// cancellation behavior has its own test below.
var ctx = context.Background()

func TestMemoryPutGet(t *testing.T) {
	s := NewMemory()
	if _, ok, err := s.Get(ctx, key); err != nil || ok {
		t.Fatalf("empty store Get = ok=%v err=%v", ok, err)
	}
	if err := s.Put(ctx, key, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	data, ok, err := s.Get(ctx, key)
	if err != nil || !ok || string(data) != "hello" {
		t.Fatalf("Get = %q ok=%v err=%v", data, ok, err)
	}
	if err := s.Put(ctx, key, []byte("world")); err != nil {
		t.Fatal(err)
	}
	if data, _, _ := s.Get(ctx, key); string(data) != "world" {
		t.Fatalf("overwrite lost: %q", data)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

// TestMemoryIsolatesCallers: blobs must be copied on both Put and Get so
// neither side can mutate stored state.
func TestMemoryIsolatesCallers(t *testing.T) {
	s := NewMemory()
	in := []byte("abc")
	if err := s.Put(ctx, key, in); err != nil {
		t.Fatal(err)
	}
	in[0] = 'X'
	out, _, _ := s.Get(ctx, key)
	if string(out) != "abc" {
		t.Fatalf("Put did not copy: %q", out)
	}
	out[0] = 'Y'
	again, _, _ := s.Get(ctx, key)
	if string(again) != "abc" {
		t.Fatalf("Get did not copy: %q", again)
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	stores := map[string]Store{"memory": NewMemory(), "tiered": NewTiered(NewMemory())}
	disk, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	stores["disk"] = disk
	for name, s := range stores {
		for _, bad := range []string{"", "xyz", "../escape", "a/b", "ABC-DEF"} {
			if err := s.Put(ctx, bad, []byte("x")); err == nil {
				t.Errorf("%s: Put accepted key %q", name, bad)
			}
			if _, _, err := s.Get(ctx, bad); err == nil {
				t.Errorf("%s: Get accepted key %q", name, bad)
			}
		}
	}
}

func TestDiskPersistsAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(ctx, key, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	s2, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	data, ok, err := s2.Get(ctx, key)
	if err != nil || !ok || string(data) != "durable" {
		t.Fatalf("reopened Get = %q ok=%v err=%v", data, ok, err)
	}
	if s2.Dir() != dir {
		t.Fatalf("Dir = %q", s2.Dir())
	}
}

// TestDiskLeavesNoTempFiles: the write-then-rename protocol must not
// leave temporaries behind on success.
func TestDiskLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put(ctx, key, bytes.Repeat([]byte{'a'}, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != key+".json" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory contents: %v", names)
	}
}

// TestDiskIgnoresPartialForeignFiles: a missing blob is a miss, and an
// unrelated file in the directory does not disturb the store.
func TestDiskMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("not a blob"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(ctx, key); err != nil || ok {
		t.Fatalf("miss = ok=%v err=%v", ok, err)
	}
}

func TestDiskConcurrentSameKey(t *testing.T) {
	s, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := s.Put(ctx, key, []byte(strings.Repeat("v", 100))); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	data, ok, err := s.Get(ctx, key)
	if err != nil || !ok || len(data) != 100 {
		t.Fatalf("Get after concurrent Put = %d bytes ok=%v err=%v", len(data), ok, err)
	}
}

func TestTieredBackfill(t *testing.T) {
	fast, slow := NewMemory(), NewMemory()
	tiered := NewTiered(fast, slow)

	if err := slow.Put(ctx, key, []byte("cold")); err != nil {
		t.Fatal(err)
	}
	if fast.Len() != 0 {
		t.Fatal("fast layer pre-populated")
	}
	data, ok, err := tiered.Get(ctx, key)
	if err != nil || !ok || string(data) != "cold" {
		t.Fatalf("tiered Get = %q ok=%v err=%v", data, ok, err)
	}
	// The hit must have back-filled the fast layer.
	if got, ok, _ := fast.Get(ctx, key); !ok || string(got) != "cold" {
		t.Fatalf("fast layer not back-filled: %q ok=%v", got, ok)
	}
}

func TestTieredPutWritesThrough(t *testing.T) {
	fast, slow := NewMemory(), NewMemory()
	if err := NewTiered(fast, slow).Put(ctx, key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	for name, layer := range map[string]*Memory{"fast": fast, "slow": slow} {
		if _, ok, _ := layer.Get(ctx, key); !ok {
			t.Errorf("%s layer missing after write-through Put", name)
		}
	}
}

// failingStore errors on every operation — the corrupt-fast-layer case.
type failingStore struct{}

func (failingStore) Get(context.Context, string) ([]byte, bool, error) {
	return nil, false, fmt.Errorf("broken")
}
func (failingStore) Put(context.Context, string, []byte) error { return fmt.Errorf("broken") }

func TestTieredFailingLayerIsMiss(t *testing.T) {
	healthy := NewMemory()
	if err := healthy.Put(ctx, key, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	tiered := NewTiered(failingStore{}, healthy)
	data, ok, err := tiered.Get(ctx, key)
	if err != nil || !ok || string(data) != "ok" {
		t.Fatalf("Get through broken layer = %q ok=%v err=%v", data, ok, err)
	}
	// Put reports the layer error but still writes the healthy layers.
	other := "fedcba9876543210fedcba9876543210fedcba9876543210fedcba9876543210"
	if err := tiered.Put(ctx, other, []byte("x")); err == nil {
		t.Fatal("failing layer error not reported")
	}
	if _, ok, _ := healthy.Get(ctx, other); !ok {
		t.Fatal("healthy layer skipped after failing layer")
	}
}

func TestTieredEmptyIsAlwaysMiss(t *testing.T) {
	if _, ok, err := NewTiered().Get(ctx, key); err != nil || ok {
		t.Fatalf("empty tiered Get = ok=%v err=%v", ok, err)
	}
}

func TestCountingStats(t *testing.T) {
	counted := NewCounting(NewMemory())
	if _, ok, err := counted.Get(ctx, key); ok || err != nil {
		t.Fatalf("Get on empty store = ok=%v err=%v", ok, err)
	}
	if err := counted.Put(ctx, key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if data, ok, err := counted.Get(ctx, key); !ok || err != nil || string(data) != "v" {
			t.Fatalf("Get after Put = %q ok=%v err=%v", data, ok, err)
		}
	}
	// An erroring layer counts as a miss, never a hit.
	broken := NewCounting(failingStore{})
	if _, _, err := broken.Get(ctx, key); err == nil {
		t.Fatal("failing store error swallowed")
	}
	if hits, misses, _ := broken.Stats(); hits != 0 || misses != 1 {
		t.Fatalf("failing Get counted hits=%d misses=%d, want 0/1", hits, misses)
	}
	hits, misses, puts := counted.Stats()
	if hits != 3 || misses != 1 || puts != 1 {
		t.Fatalf("Stats = %d/%d/%d, want hits=3 misses=1 puts=1", hits, misses, puts)
	}
}
