// Package cache implements the content-addressed result store behind
// repeated campaigns. Keys are canonical hashes of a declarative
// campaign spec (engine.CampaignSpec.Hash); because campaign results are
// bit-deterministic for a given spec, equal keys imply equal results and
// a hit can be served without re-simulation.
//
// Two layers are provided — a process-local Memory store and an on-disk
// Disk store with atomic writes — plus a Tiered combinator that
// read-through-fills faster layers from slower ones. All stores are safe
// for concurrent use.
package cache

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Store is a content-addressed blob store. Get reports a miss with
// ok == false and no error; errors are reserved for real failures
// (I/O, invalid keys, cancelled contexts). All methods take a context
// so remote or slow stores can be abandoned mid-operation; the built-in
// stores check it once before touching their medium.
type Store interface {
	// Get returns the blob stored under key, if any.
	Get(ctx context.Context, key string) (data []byte, ok bool, err error)
	// Put stores the blob under key, overwriting any previous value.
	Put(ctx context.Context, key string, data []byte) error
}

// validKey reports whether key is usable as a content address across all
// layers: non-empty hex-like names that cannot escape a directory.
func validKey(key string) error {
	if key == "" {
		return fmt.Errorf("cache: empty key")
	}
	for _, c := range key {
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'f', c >= 'A' && c <= 'F':
		default:
			return fmt.Errorf("cache: key %q is not a hex digest", key)
		}
	}
	return nil
}

// Memory is an in-process store.
type Memory struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewMemory returns an empty in-memory store.
func NewMemory() *Memory { return &Memory{m: make(map[string][]byte)} }

// Get implements Store.
func (s *Memory) Get(ctx context.Context, key string) ([]byte, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, fmt.Errorf("cache: %w", err)
	}
	if err := validKey(key); err != nil {
		return nil, false, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.m[key]
	if !ok {
		return nil, false, nil
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, true, nil
}

// Put implements Store. The blob is copied; callers may reuse data.
func (s *Memory) Put(ctx context.Context, key string, data []byte) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if err := validKey(key); err != nil {
		return err
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	s.m[key] = cp
	s.mu.Unlock()
	return nil
}

// Len returns the number of stored blobs.
func (s *Memory) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// Disk is an on-disk store: one file per key under a root directory.
// Writes go through a temporary file and rename, so readers never
// observe partial blobs and concurrent writers of the same key are safe.
type Disk struct {
	dir string
}

// NewDisk returns a disk store rooted at dir, creating it if needed.
func NewDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	return &Disk{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Disk) Dir() string { return s.dir }

func (s *Disk) path(key string) string { return filepath.Join(s.dir, key+".json") }

// Get implements Store.
func (s *Disk) Get(ctx context.Context, key string) ([]byte, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, fmt.Errorf("cache: %w", err)
	}
	if err := validKey(key); err != nil {
		return nil, false, err
	}
	data, err := os.ReadFile(s.path(key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("cache: %w", err)
	}
	return data, true, nil
}

// Put implements Store.
func (s *Disk) Put(ctx context.Context, key string, data []byte) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if err := validKey(key); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, key+".tmp*")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	return nil
}

// Counting wraps a Store and counts hits, misses and puts — cheap
// observability for cache-sensitive paths (a warm-store shard
// resubmission should be all hits and zero backend runs, and the
// counters are how benchmarks and tests prove it). Safe for concurrent
// use; errors count as misses.
type Counting struct {
	inner Store

	hits   atomic.Int64
	misses atomic.Int64
	puts   atomic.Int64
}

// NewCounting wraps inner with hit/miss/put counters.
func NewCounting(inner Store) *Counting { return &Counting{inner: inner} }

// Get implements Store.
func (s *Counting) Get(ctx context.Context, key string) ([]byte, bool, error) {
	data, ok, err := s.inner.Get(ctx, key)
	if ok && err == nil {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	return data, ok, err
}

// Put implements Store.
func (s *Counting) Put(ctx context.Context, key string, data []byte) error {
	s.puts.Add(1)
	return s.inner.Put(ctx, key, data)
}

// Stats returns the counters' current values.
func (s *Counting) Stats() (hits, misses, puts int64) {
	return s.hits.Load(), s.misses.Load(), s.puts.Load()
}

// Tiered layers stores fastest-first: Get consults each layer in order
// and back-fills every faster layer on a hit; Put writes through to all
// layers. Layer errors on Get are treated as misses for that layer so a
// corrupt fast layer cannot mask a healthy slow one.
type Tiered struct {
	layers []Store
}

// NewTiered combines the given layers, fastest first.
func NewTiered(layers ...Store) *Tiered { return &Tiered{layers: layers} }

// Get implements Store. A cancelled context stops the layer walk.
func (s *Tiered) Get(ctx context.Context, key string) ([]byte, bool, error) {
	if err := validKey(key); err != nil {
		return nil, false, err
	}
	for i, layer := range s.layers {
		if err := ctx.Err(); err != nil {
			return nil, false, fmt.Errorf("cache: %w", err)
		}
		data, ok, err := layer.Get(ctx, key)
		if err != nil || !ok {
			continue
		}
		for j := 0; j < i; j++ {
			// Best effort: a failed back-fill only costs future speed.
			_ = s.layers[j].Put(ctx, key, data)
		}
		return data, true, nil
	}
	return nil, false, nil
}

// Put implements Store. The first layer error is returned, but all
// layers are attempted.
func (s *Tiered) Put(ctx context.Context, key string, data []byte) error {
	var firstErr error
	for _, layer := range s.layers {
		if err := layer.Put(ctx, key, data); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
