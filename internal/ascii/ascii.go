// Package ascii renders the paper's figures as terminal line charts and
// tables: linear or logarithmic y-axes, one plot mark per series, and
// column-aligned numeric tables. cmd/repro uses it to print every figure
// of the evaluation section.
package ascii

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one plotted line.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// PlotConfig controls chart rendering.
type PlotConfig struct {
	Title  string
	XLabel string
	YLabel string
	Width  int  // plot area columns (default 64)
	Height int  // plot area rows (default 20)
	LogY   bool // logarithmic y-axis (the Hagerup figures use one)
}

// marks are assigned to series in order, as the paper's figures assign
// one symbol per technique.
var marks = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&', '$', '~'}

// Plot renders the series as a text chart.
func Plot(cfg PlotConfig, series ...Series) string {
	w := cfg.Width
	if w <= 0 {
		w = 64
	}
	h := cfg.Height
	if h <= 0 {
		h = 20
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			y := s.Y[i]
			if cfg.LogY && y <= 0 {
				continue // log axis cannot show non-positive values
			}
			if s.X[i] < xmin {
				xmin = s.X[i]
			}
			if s.X[i] > xmax {
				xmax = s.X[i]
			}
			if y < ymin {
				ymin = y
			}
			if y > ymax {
				ymax = y
			}
		}
	}
	if math.IsInf(xmin, 1) {
		return cfg.Title + "\n(no data)\n"
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	yT := func(y float64) float64 { return y }
	if cfg.LogY {
		yT = math.Log10
	}
	tmin, tmax := yT(ymin), yT(ymax)
	if tmax == tmin {
		tmax = tmin + 1
	}

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range series {
		mark := marks[si%len(marks)]
		for i := range s.X {
			y := s.Y[i]
			if cfg.LogY && y <= 0 {
				continue
			}
			col := int(math.Round((s.X[i] - xmin) / (xmax - xmin) * float64(w-1)))
			row := int(math.Round((yT(y) - tmin) / (tmax - tmin) * float64(h-1)))
			r := h - 1 - row
			if r >= 0 && r < h && col >= 0 && col < w {
				grid[r][col] = mark
			}
		}
	}

	var b strings.Builder
	if cfg.Title != "" {
		fmt.Fprintf(&b, "%s\n", cfg.Title)
	}
	if cfg.YLabel != "" {
		fmt.Fprintf(&b, "%s\n", cfg.YLabel)
	}
	axisW := 11
	for r := 0; r < h; r++ {
		frac := float64(h-1-r) / float64(h-1)
		t := tmin + frac*(tmax-tmin)
		v := t
		if cfg.LogY {
			v = math.Pow(10, t)
		}
		label := ""
		// Label every fourth row and the extremes.
		if r == 0 || r == h-1 || r%4 == 0 {
			label = fmt.Sprintf("%10.3g", v)
		}
		fmt.Fprintf(&b, "%*s |%s\n", axisW-1, label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", axisW-1), strings.Repeat("-", w))
	fmt.Fprintf(&b, "%*s%-*.4g%*.4g\n", axisW+1, "", w/2, xmin, w/2, xmax)
	if cfg.XLabel != "" {
		fmt.Fprintf(&b, "%*s%s\n", axisW+1+(w-len(cfg.XLabel))/2, "", cfg.XLabel)
	}
	b.WriteString(legend(series))
	return b.String()
}

func legend(series []Series) string {
	var b strings.Builder
	b.WriteString("  legend: ")
	for i, s := range series {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%c=%s", marks[i%len(marks)], s.Label)
	}
	b.WriteString("\n")
	return b.String()
}

// Table renders rows with right-aligned, column-width-normalized cells.
// The first row is treated as the header and underlined.
type Table struct {
	rows [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// AddRowf appends a row formatting each value with %v (floats as %.4g).
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	if len(t.rows) == 0 {
		return ""
	}
	cols := 0
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for ri, r := range t.rows {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			fmt.Fprintf(&b, "%*s", widths[i]+2, c)
		}
		b.WriteString("\n")
		if ri == 0 {
			for i := 0; i < cols; i++ {
				fmt.Fprintf(&b, "%*s", widths[i]+2, strings.Repeat("-", widths[i]))
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// Histogram renders a horizontal-bar frequency view of vals with the
// given number of bins (used for the Figure 9 per-run scatter summary).
func Histogram(vals []float64, bins int, width int) string {
	if len(vals) == 0 || bins <= 0 {
		return "(no data)\n"
	}
	if width <= 0 {
		width = 50
	}
	sorted := make([]float64, len(vals))
	copy(sorted, vals)
	sort.Float64s(sorted)
	lo, hi := sorted[0], sorted[len(sorted)-1]
	if hi == lo {
		hi = lo + 1
	}
	counts := make([]int, bins)
	for _, v := range vals {
		b := int((v - lo) / (hi - lo) * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	for i, c := range counts {
		binLo := lo + (hi-lo)*float64(i)/float64(bins)
		binHi := lo + (hi-lo)*float64(i+1)/float64(bins)
		bar := ""
		if max > 0 {
			bar = strings.Repeat("#", c*width/max)
		}
		fmt.Fprintf(&b, "%10.4g-%-10.4g |%-*s %d\n", binLo, binHi, width, bar, c)
	}
	return b.String()
}
