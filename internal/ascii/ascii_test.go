package ascii

import (
	"strings"
	"testing"
)

func TestPlotBasic(t *testing.T) {
	out := Plot(PlotConfig{Title: "speedup", XLabel: "number PEs", YLabel: "Speedup"},
		Series{Label: "TSS", X: []float64{2, 8, 80}, Y: []float64{1.9, 7.6, 75.7}},
		Series{Label: "SS", X: []float64{2, 8, 80}, Y: []float64{1.9, 5.5, 9.0}},
	)
	for _, want := range []string{"speedup", "number PEs", "Speedup", "*=TSS", "+=SS", "*", "+"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
}

func TestPlotLogY(t *testing.T) {
	out := Plot(PlotConfig{LogY: true, Height: 10, Width: 40},
		Series{Label: "a", X: []float64{1, 2, 3}, Y: []float64{1, 100, 10000}},
	)
	if !strings.Contains(out, "1e+04") && !strings.Contains(out, "10000") {
		t.Errorf("log plot missing top label:\n%s", out)
	}
}

func TestPlotLogYIgnoresNonPositive(t *testing.T) {
	out := Plot(PlotConfig{LogY: true},
		Series{Label: "a", X: []float64{1, 2}, Y: []float64{0, 10}},
	)
	if strings.Contains(out, "NaN") || strings.Contains(out, "-Inf") {
		t.Errorf("log plot leaked non-finite labels:\n%s", out)
	}
}

func TestPlotEmpty(t *testing.T) {
	out := Plot(PlotConfig{Title: "empty"})
	if !strings.Contains(out, "no data") {
		t.Errorf("empty plot = %q", out)
	}
}

func TestPlotConstantSeries(t *testing.T) {
	// Degenerate ranges (all x equal, all y equal) must not divide by 0.
	out := Plot(PlotConfig{},
		Series{Label: "c", X: []float64{5, 5}, Y: []float64{3, 3}},
	)
	if strings.Contains(out, "NaN") {
		t.Errorf("constant series produced NaN:\n%s", out)
	}
}

func TestTable(t *testing.T) {
	var tb Table
	tb.AddRow("technique", "p=2", "p=8")
	tb.AddRowf("STAT", 26.13, 14.5)
	tb.AddRowf("SS", 256, 64.01)
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "technique") || !strings.Contains(lines[1], "---") {
		t.Errorf("header/underline wrong:\n%s", out)
	}
	if !strings.Contains(lines[2], "26.13") {
		t.Errorf("missing value:\n%s", out)
	}
}

func TestTableEmpty(t *testing.T) {
	var tb Table
	if tb.String() != "" {
		t.Error("empty table should render empty")
	}
}

func TestTableRaggedRows(t *testing.T) {
	var tb Table
	tb.AddRow("a", "b", "c")
	tb.AddRow("x")
	out := tb.String()
	if !strings.Contains(out, "x") {
		t.Errorf("ragged row lost:\n%s", out)
	}
}

func TestHistogram(t *testing.T) {
	vals := []float64{1, 1, 1, 2, 2, 10}
	out := Histogram(vals, 3, 20)
	if !strings.Contains(out, "#") {
		t.Errorf("histogram has no bars:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("histogram lines = %d", len(lines))
	}
}

func TestHistogramDegenerate(t *testing.T) {
	if out := Histogram(nil, 3, 10); !strings.Contains(out, "no data") {
		t.Errorf("nil histogram = %q", out)
	}
	out := Histogram([]float64{5, 5, 5}, 2, 10)
	if strings.Contains(out, "NaN") {
		t.Errorf("constant histogram produced NaN:\n%s", out)
	}
}
