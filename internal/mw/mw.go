// Package mw holds the composable HTTP middleware in front of the
// dlsimd /v1 API: API-key authentication with tenant resolution,
// per-tenant token-bucket rate limiting, and request instrumentation.
// Each middleware is an independent func(http.Handler) http.Handler, so
// the daemon stacks exactly the ones its flags enable; rejections use
// the same structured error envelope (campaign.ErrorEnvelope, stable
// codes) as the API proper, so typed clients branch on middleware
// failures exactly like on handler failures.
//
// None of this ever touches campaign execution: middleware decides only
// whether a request reaches the handler, never what a simulation
// computes — determinism of results is structurally out of its reach.
package mw

import (
	"bufio"
	"context"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/campaign"
)

// Anonymous is the tenant attributed to requests when authentication is
// disabled (no key file configured).
const Anonymous = "anonymous"

type tenantKey struct{}

// TenantFrom returns the tenant the Auth middleware resolved for this
// request, or Anonymous when no middleware ran.
func TenantFrom(ctx context.Context) string {
	if t, ok := ctx.Value(tenantKey{}).(string); ok {
		return t
	}
	return Anonymous
}

// WithTenant returns a context carrying the tenant name — exported for
// tests and for handlers that bypass the middleware stack.
func WithTenant(ctx context.Context, tenant string) context.Context {
	return context.WithValue(ctx, tenantKey{}, tenant)
}

// Keyring maps API keys to tenant names, loaded from a key file of
// "tenant:key" lines. Lookups compare SHA-256 digests in constant time,
// so neither key length nor a near-miss leaks through timing.
type Keyring struct {
	entries []keyEntry
}

type keyEntry struct {
	tenant string
	digest [sha256.Size]byte
}

// NewKeyring builds a keyring from an in-memory key→tenant assignment
// (keys of the map are tenants, values their API keys) — the
// programmatic twin of LoadKeyfile, mostly for tests and embedding.
func NewKeyring(tenantKeys map[string]string) *Keyring {
	kr := &Keyring{}
	for tenant, key := range tenantKeys {
		kr.entries = append(kr.entries, keyEntry{tenant: tenant, digest: sha256.Sum256([]byte(key))})
	}
	return kr
}

// LoadKeyfile parses a key file: one "tenant:key" per line, blank lines
// and #-comments ignored. Tenant names must be non-empty and contain no
// colon; keys must be non-empty.
func LoadKeyfile(path string) (*Keyring, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	kr := &Keyring{}
	sc := bufio.NewScanner(f)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		tenant, key, ok := strings.Cut(line, ":")
		if !ok || tenant == "" || key == "" {
			return nil, fmt.Errorf("mw: %s:%d: want \"tenant:key\"", path, lineno)
		}
		kr.entries = append(kr.entries, keyEntry{tenant: tenant, digest: sha256.Sum256([]byte(key))})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(kr.entries) == 0 {
		return nil, fmt.Errorf("mw: %s: key file has no entries", path)
	}
	return kr, nil
}

// Lookup resolves an API key to its tenant. Every registered digest is
// compared regardless of early matches, keeping the scan time
// independent of which (if any) entry matched.
func (k *Keyring) Lookup(key string) (tenant string, ok bool) {
	d := sha256.Sum256([]byte(key))
	for _, e := range k.entries {
		if subtle.ConstantTimeCompare(d[:], e.digest[:]) == 1 && !ok {
			tenant, ok = e.tenant, true
		}
	}
	return tenant, ok
}

// apiKey extracts the presented key: "Authorization: Bearer <key>"
// wins, then the X-API-Key header.
func apiKey(r *http.Request) string {
	if h := r.Header.Get("Authorization"); h != "" {
		if key, ok := strings.CutPrefix(h, "Bearer "); ok {
			return key
		}
	}
	return r.Header.Get("X-API-Key")
}

// Auth returns middleware resolving the request's tenant. With a nil
// keyring authentication is off: every request proceeds as Anonymous.
// With a keyring, a missing or unknown key is rejected with 401 and
// code "unauthorized"; denied (optional) is called per rejection — the
// metrics hook.
func Auth(keys *Keyring, denied func()) func(http.Handler) http.Handler {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			tenant := Anonymous
			if keys != nil {
				key := apiKey(r)
				if key == "" {
					if denied != nil {
						denied()
					}
					writeEnvelope(w, http.StatusUnauthorized, campaign.CodeUnauthorized,
						"missing API key: send \"Authorization: Bearer <key>\" or X-API-Key")
					return
				}
				t, ok := keys.Lookup(key)
				if !ok {
					if denied != nil {
						denied()
					}
					writeEnvelope(w, http.StatusUnauthorized, campaign.CodeUnauthorized, "unknown API key")
					return
				}
				tenant = t
			}
			next.ServeHTTP(w, r.WithContext(WithTenant(r.Context(), tenant)))
		})
	}
}

// Limiter is a per-tenant token bucket: each tenant accrues rate tokens
// per second up to burst, and each request spends one.
type Limiter struct {
	rate  float64
	burst float64
	now   func() time.Time // injectable clock for tests

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewLimiter returns a limiter granting rate requests per second with
// the given burst capacity (values < 1 are raised to 1).
func NewLimiter(rate float64, burst int) *Limiter {
	if burst < 1 {
		burst = 1
	}
	return &Limiter{rate: rate, burst: float64(burst), now: time.Now, buckets: make(map[string]*bucket)}
}

// Allow spends one token from tenant's bucket. When the bucket is
// empty, ok is false and retryAfter is the wait until a token accrues.
func (l *Limiter) Allow(tenant string) (ok bool, retryAfter time.Duration) {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, exists := l.buckets[tenant]
	if !exists {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
}

// RateLimit returns middleware rejecting over-budget tenants with 429,
// code "rate_limited" and a Retry-After header (whole seconds, rounded
// up, minimum 1). rejected (optional) is called per rejection.
func RateLimit(l *Limiter, rejected func()) func(http.Handler) http.Handler {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ok, retryAfter := l.Allow(TenantFrom(r.Context()))
			if !ok {
				if rejected != nil {
					rejected()
				}
				secs := int(retryAfter/time.Second) + 1
				w.Header().Set("Retry-After", strconv.Itoa(secs))
				writeEnvelope(w, http.StatusTooManyRequests, campaign.CodeRateLimited,
					"rate limit exceeded; retry after %ds", secs)
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}

// Route normalizes a request path to its route pattern for metric
// labels, collapsing IDs so cardinality stays bounded. Unknown paths
// all map to "other".
func Route(path string) string {
	switch path {
	case "/v1", "/v1/techniques", "/v1/backends", "/v1/jobs", "/v1/schedules", "/v1/health", "/healthz", "/metrics":
		return path
	}
	if rest, ok := strings.CutPrefix(path, "/v1/jobs/"); ok {
		if strings.HasSuffix(rest, "/results") && strings.Count(rest, "/") == 1 {
			return "/v1/jobs/{id}/results"
		}
		if !strings.Contains(rest, "/") {
			return "/v1/jobs/{id}"
		}
	}
	if rest, ok := strings.CutPrefix(path, "/v1/schedules/"); ok && !strings.Contains(rest, "/") {
		return "/v1/schedules/{id}"
	}
	return "other"
}

// statusWriter captures the response status for instrumentation.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// Flush forwards to the wrapped writer so streaming handlers (results)
// keep flushing through the middleware stack.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Instrument returns middleware observing every request: observe is
// called with the normalized route, the response status and the
// handling duration. The telemetry wiring lives in the daemon; the
// middleware only measures.
func Instrument(observe func(route string, status int, elapsed time.Duration)) func(http.Handler) http.Handler {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := &statusWriter{ResponseWriter: w}
			start := time.Now()
			next.ServeHTTP(sw, r)
			if sw.status == 0 {
				sw.status = http.StatusOK
			}
			observe(Route(r.URL.Path), sw.status, time.Since(start))
		})
	}
}

// Chain composes middleware outermost-first: Chain(h, a, b) serves
// a(b(h)).
func Chain(h http.Handler, mws ...func(http.Handler) http.Handler) http.Handler {
	for i := len(mws) - 1; i >= 0; i-- {
		h = mws[i](h)
	}
	return h
}

// writeEnvelope emits the structured /v1 error envelope — the same
// document internal/service produces, so middleware rejections are
// indistinguishable in shape from handler rejections.
func writeEnvelope(w http.ResponseWriter, status int, code string, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(campaign.ErrorEnvelope{Error: campaign.ErrorBody{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}
