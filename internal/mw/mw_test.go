package mw

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"repro/campaign"
)

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(TenantFrom(r.Context())))
	})
}

func decodeEnvelope(t *testing.T, rec *httptest.ResponseRecorder) campaign.ErrorEnvelope {
	t.Helper()
	var env campaign.ErrorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("rejection body is not an envelope: %v: %s", err, rec.Body.Bytes())
	}
	return env
}

func writeKeyfile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "keys")
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLoadKeyfile: format acceptance and rejection.
func TestLoadKeyfile(t *testing.T) {
	kr, err := LoadKeyfile(writeKeyfile(t, "# comment\n\nalice:s3cret\nbob:hunter2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tenant, ok := kr.Lookup("s3cret"); !ok || tenant != "alice" {
		t.Fatalf("Lookup(s3cret) = %q, %v", tenant, ok)
	}
	if tenant, ok := kr.Lookup("hunter2"); !ok || tenant != "bob" {
		t.Fatalf("Lookup(hunter2) = %q, %v", tenant, ok)
	}
	if _, ok := kr.Lookup("wrong"); ok {
		t.Fatal("unknown key resolved")
	}
	for _, bad := range []string{"nocolon\n", ":keyonly\n", "tenantonly:\n", ""} {
		if _, err := LoadKeyfile(writeKeyfile(t, bad)); err == nil {
			t.Errorf("key file %q accepted", bad)
		}
	}
}

// TestAuth: header extraction, tenant propagation, 401 envelope, and
// anonymous passthrough when auth is off.
func TestAuth(t *testing.T) {
	kr, err := LoadKeyfile(writeKeyfile(t, "alice:s3cret\n"))
	if err != nil {
		t.Fatal(err)
	}
	denials := 0
	h := Auth(kr, func() { denials++ })(okHandler())

	cases := []struct {
		name, header, value string
		status              int
		body                string
	}{
		{"bearer", "Authorization", "Bearer s3cret", 200, "alice"},
		{"x-api-key", "X-API-Key", "s3cret", 200, "alice"},
		{"wrong key", "X-API-Key", "nope", 401, ""},
		{"no key", "", "", 401, ""},
		{"malformed auth header", "Authorization", "Basic s3cret", 401, ""},
	}
	for _, c := range cases {
		req := httptest.NewRequest("GET", "/v1/jobs", nil)
		if c.header != "" {
			req.Header.Set(c.header, c.value)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != c.status {
			t.Fatalf("%s: status %d, want %d", c.name, rec.Code, c.status)
		}
		if c.status == 200 && rec.Body.String() != c.body {
			t.Fatalf("%s: tenant %q, want %q", c.name, rec.Body.String(), c.body)
		}
		if c.status == 401 {
			if env := decodeEnvelope(t, rec); env.Error.Code != campaign.CodeUnauthorized {
				t.Fatalf("%s: code %q, want unauthorized", c.name, env.Error.Code)
			}
		}
	}
	if denials != 3 {
		t.Fatalf("denied hook ran %d times, want 3", denials)
	}

	// Auth off: anonymous tenant, no rejection possible.
	rec := httptest.NewRecorder()
	Auth(nil, nil)(okHandler()).ServeHTTP(rec, httptest.NewRequest("GET", "/v1", nil))
	if rec.Code != 200 || rec.Body.String() != Anonymous {
		t.Fatalf("auth-off request = %d %q", rec.Code, rec.Body.String())
	}
}

// TestLimiter: bucket drains, refills on a fake clock, and isolates
// tenants.
func TestLimiter(t *testing.T) {
	now := time.Unix(1000, 0)
	l := NewLimiter(2, 3) // 2 tokens/s, burst 3
	l.now = func() time.Time { return now }

	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("alice"); !ok {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	ok, retry := l.Allow("alice")
	if ok {
		t.Fatal("4th immediate request allowed past burst")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retryAfter = %v, want (0, 1s] at 2 tokens/s", retry)
	}
	// Other tenants have their own bucket.
	if ok, _ := l.Allow("bob"); !ok {
		t.Fatal("bob rejected by alice's empty bucket")
	}
	// Half a second refills one token at rate 2.
	now = now.Add(500 * time.Millisecond)
	if ok, _ := l.Allow("alice"); !ok {
		t.Fatal("refilled token rejected")
	}
	if ok, _ := l.Allow("alice"); ok {
		t.Fatal("empty bucket allowed")
	}
}

// TestRateLimitMiddleware: 429 envelope with Retry-After.
func TestRateLimitMiddleware(t *testing.T) {
	l := NewLimiter(1, 1)
	rejected := 0
	h := Chain(okHandler(), Auth(nil, nil), RateLimit(l, func() { rejected++ }))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/jobs", nil))
	if rec.Code != 200 {
		t.Fatalf("first request = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/jobs", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second request = %d, want 429", rec.Code)
	}
	if env := decodeEnvelope(t, rec); env.Error.Code != campaign.CodeRateLimited {
		t.Fatalf("code %q, want rate_limited", env.Error.Code)
	}
	if secs, err := strconv.Atoi(rec.Header().Get("Retry-After")); err != nil || secs < 1 {
		t.Fatalf("Retry-After %q, want integer ≥ 1", rec.Header().Get("Retry-After"))
	}
	if rejected != 1 {
		t.Fatalf("rejected hook ran %d times, want 1", rejected)
	}
}

// TestRoute: ID-bearing paths collapse, unknown paths stay bounded.
func TestRoute(t *testing.T) {
	cases := map[string]string{
		"/v1":                  "/v1",
		"/v1/jobs":             "/v1/jobs",
		"/v1/jobs/j42":         "/v1/jobs/{id}",
		"/v1/jobs/j42/results": "/v1/jobs/{id}/results",
		"/v1/jobs/j42/weird":   "other",
		"/v1/schedules":        "/v1/schedules",
		"/v1/schedules/s1":     "/v1/schedules/{id}",
		"/healthz":             "/healthz",
		"/metrics":             "/metrics",
		"/debug/pprof/":        "other",
	}
	for path, want := range cases {
		if got := Route(path); got != want {
			t.Errorf("Route(%q) = %q, want %q", path, got, want)
		}
	}
}

// TestInstrument: the observe hook sees the normalized route, the real
// status and a plausible duration, for both explicit and implicit 200s.
func TestInstrument(t *testing.T) {
	var gotRoute string
	var gotStatus int
	mw := Instrument(func(route string, status int, elapsed time.Duration) {
		gotRoute, gotStatus = route, status
		if elapsed < 0 {
			t.Errorf("negative elapsed %v", elapsed)
		}
	})

	h := mw(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/jobs/j9", nil))
	if gotRoute != "/v1/jobs/{id}" || gotStatus != 404 {
		t.Fatalf("observed %q %d, want /v1/jobs/{id} 404", gotRoute, gotStatus)
	}

	h = mw(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("implicit 200"))
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/healthz", nil))
	if gotRoute != "/healthz" || gotStatus != 200 {
		t.Fatalf("observed %q %d, want /healthz 200", gotRoute, gotStatus)
	}
}
