package platform

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file reads and writes the SimGrid-flavoured XML subset used by the
// experiments: a platform file describing hosts, links and routes, and a
// deployment file mapping processes to hosts — the two inputs paper §II
// describes ("the application information is given in the SimGrid-MSG
// deployment file ... In the SimGrid-MSG platform file, the system
// information is specified").
//
// Supported platform grammar (SimGrid DTD v4 subset):
//
//	<platform version="4.1">
//	  <zone id="z" routing="Full">
//	    <host id="h0" speed="1Gf" core="1"/>
//	    <link id="l0" bandwidth="125MBps" latency="50us"/>
//	    <route src="h0" dst="h1"><link_ctn id="l0"/></route>
//	  </zone>
//	</platform>
//
// Units: speeds accept f/Kf/Mf/Gf suffixes, bandwidths Bps/KBps/MBps/GBps,
// latencies s/ms/us/ns; bare numbers are base units.

type xmlPlatform struct {
	XMLName xml.Name `xml:"platform"`
	Version string   `xml:"version,attr"`
	Zone    xmlZone  `xml:"zone"`
}

type xmlZone struct {
	ID      string     `xml:"id,attr"`
	Routing string     `xml:"routing,attr"`
	Hosts   []xmlHost  `xml:"host"`
	Links   []xmlLink  `xml:"link"`
	Routes  []xmlRoute `xml:"route"`
}

type xmlHost struct {
	ID    string `xml:"id,attr"`
	Speed string `xml:"speed,attr"`
	Core  string `xml:"core,attr,omitempty"`
}

type xmlLink struct {
	ID        string `xml:"id,attr"`
	Bandwidth string `xml:"bandwidth,attr"`
	Latency   string `xml:"latency,attr"`
}

type xmlRoute struct {
	Src   string       `xml:"src,attr"`
	Dst   string       `xml:"dst,attr"`
	Links []xmlLinkCtn `xml:"link_ctn"`
}

type xmlLinkCtn struct {
	ID string `xml:"id,attr"`
}

// unitTable maps suffixes to multipliers per quantity class.
var (
	speedUnits = map[string]float64{"f": 1, "Kf": 1e3, "Mf": 1e6, "Gf": 1e9, "Tf": 1e12}
	bwUnits    = map[string]float64{"Bps": 1, "KBps": 1e3, "MBps": 1e6, "GBps": 1e9, "kBps": 1e3}
	timeUnits  = map[string]float64{"s": 1, "ms": 1e-3, "us": 1e-6, "ns": 1e-9, "ps": 1e-12}
)

// parseQuantity parses "100MBps"-style values with the given unit table.
func parseQuantity(s string, units map[string]float64) (float64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("platform: empty quantity")
	}
	cut := len(s)
	for cut > 0 {
		c := s[cut-1]
		if c >= '0' && c <= '9' || c == '.' || c == 'e' || c == '+' || c == '-' {
			break
		}
		cut--
	}
	num, suffix := s[:cut], s[cut:]
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("platform: bad quantity %q: %v", s, err)
	}
	if suffix == "" {
		return v, nil
	}
	m, ok := units[suffix]
	if !ok {
		return 0, fmt.Errorf("platform: unknown unit %q in %q", suffix, s)
	}
	return v * m, nil
}

// formatQuantity renders v with the largest unit that keeps it >= 1.
func formatQuantity(v float64, order []string, units map[string]float64) string {
	best := ""
	bestM := 1.0
	for _, u := range order {
		m := units[u]
		if v >= m && m >= bestM {
			best, bestM = u, m
		}
	}
	if best == "" {
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
	return strconv.FormatFloat(v/bestM, 'g', -1, 64) + best
}

// ParsePlatform reads a platform XML document.
func ParsePlatform(r io.Reader) (*Platform, error) {
	var doc xmlPlatform
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("platform: parse: %w", err)
	}
	pl := New()
	for _, h := range doc.Zone.Hosts {
		speed, err := parseQuantity(h.Speed, speedUnits)
		if err != nil {
			return nil, fmt.Errorf("platform: host %q: %w", h.ID, err)
		}
		cores := 1
		if h.Core != "" {
			cores, err = strconv.Atoi(h.Core)
			if err != nil {
				return nil, fmt.Errorf("platform: host %q core: %v", h.ID, err)
			}
		}
		if _, err := pl.AddHost(h.ID, speed, cores); err != nil {
			return nil, err
		}
	}
	for _, l := range doc.Zone.Links {
		bw, err := parseQuantity(l.Bandwidth, bwUnits)
		if err != nil {
			return nil, fmt.Errorf("platform: link %q: %w", l.ID, err)
		}
		lat, err := parseQuantity(l.Latency, timeUnits)
		if err != nil {
			return nil, fmt.Errorf("platform: link %q: %w", l.ID, err)
		}
		if _, err := pl.AddLink(l.ID, bw, lat); err != nil {
			return nil, err
		}
	}
	for _, rt := range doc.Zone.Routes {
		names := make([]string, len(rt.Links))
		for i, lc := range rt.Links {
			names[i] = lc.ID
		}
		if err := pl.AddRoute(rt.Src, rt.Dst, names...); err != nil {
			return nil, err
		}
	}
	return pl, nil
}

// WritePlatform emits the platform as SimGrid-flavoured XML. Routes are
// written in deterministic (sorted) order so output is reproducible.
func WritePlatform(w io.Writer, pl *Platform) error {
	doc := xmlPlatform{
		Version: "4.1",
		Zone:    xmlZone{ID: "zone0", Routing: "Full"},
	}
	for _, h := range pl.Hosts() {
		doc.Zone.Hosts = append(doc.Zone.Hosts, xmlHost{
			ID:    h.Name,
			Speed: formatQuantity(h.Speed, []string{"f", "Kf", "Mf", "Gf", "Tf"}, speedUnits),
			Core:  strconv.Itoa(h.Cores),
		})
	}
	for _, l := range pl.Links() {
		doc.Zone.Links = append(doc.Zone.Links, xmlLink{
			ID:        l.Name,
			Bandwidth: formatQuantity(l.Bandwidth, []string{"Bps", "KBps", "MBps", "GBps"}, bwUnits),
			Latency:   strconv.FormatFloat(l.Latency, 'g', -1, 64) + "s",
		})
	}
	keys := make([][2]string, 0, len(pl.routes))
	for k := range pl.routes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		rt := pl.routes[k]
		xr := xmlRoute{Src: k[0], Dst: k[1]}
		for _, l := range rt.Links {
			xr.Links = append(xr.Links, xmlLinkCtn{ID: l.Name})
		}
		doc.Zone.Routes = append(doc.Zone.Routes, xr)
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("platform: encode: %w", err)
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// Deployment maps process functions to hosts, mirroring the SimGrid-MSG
// deployment file ("Application Information" of paper Figure 2).
type Deployment struct {
	Processes []DeployedProcess
}

// DeployedProcess is one <process> entry.
type DeployedProcess struct {
	Host      string
	Function  string
	Arguments []string
	StartTime float64
}

type xmlDeployment struct {
	XMLName   xml.Name     `xml:"platform"`
	Version   string       `xml:"version,attr"`
	Processes []xmlProcess `xml:"process"`
}

type xmlProcess struct {
	Host      string   `xml:"host,attr"`
	Function  string   `xml:"function,attr"`
	StartTime string   `xml:"start_time,attr,omitempty"`
	Arguments []xmlArg `xml:"argument"`
}

type xmlArg struct {
	Value string `xml:"value,attr"`
}

// ParseDeployment reads a deployment XML document.
func ParseDeployment(r io.Reader) (*Deployment, error) {
	var doc xmlDeployment
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("platform: deployment parse: %w", err)
	}
	d := &Deployment{}
	for _, p := range doc.Processes {
		dp := DeployedProcess{Host: p.Host, Function: p.Function}
		for _, a := range p.Arguments {
			dp.Arguments = append(dp.Arguments, a.Value)
		}
		if p.StartTime != "" {
			t, err := strconv.ParseFloat(p.StartTime, 64)
			if err != nil {
				return nil, fmt.Errorf("platform: deployment start_time %q: %v", p.StartTime, err)
			}
			dp.StartTime = t
		}
		d.Processes = append(d.Processes, dp)
	}
	return d, nil
}

// WriteDeployment emits the deployment as XML.
func WriteDeployment(w io.Writer, d *Deployment) error {
	doc := xmlDeployment{Version: "4.1"}
	for _, p := range d.Processes {
		xp := xmlProcess{Host: p.Host, Function: p.Function}
		if p.StartTime != 0 {
			xp.StartTime = strconv.FormatFloat(p.StartTime, 'g', -1, 64)
		}
		for _, a := range p.Arguments {
			xp.Arguments = append(xp.Arguments, xmlArg{Value: a})
		}
		doc.Processes = append(doc.Processes, xp)
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("platform: deployment encode: %w", err)
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// Validate checks a deployment against a platform: every process host
// must exist.
func (d *Deployment) Validate(pl *Platform) error {
	for i, p := range d.Processes {
		if _, err := pl.Host(p.Host); err != nil {
			return fmt.Errorf("platform: deployment process %d (%s): %w", i, p.Function, err)
		}
		if p.Function == "" {
			return fmt.Errorf("platform: deployment process %d on %q has no function", i, p.Host)
		}
	}
	return nil
}
