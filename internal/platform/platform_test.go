package platform

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

func TestAddHostValidation(t *testing.T) {
	pl := New()
	if _, err := pl.AddHost("", 1, 1); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := pl.AddHost("h", 0, 1); err == nil {
		t.Error("zero speed accepted")
	}
	if _, err := pl.AddHost("h", math.Inf(1), 1); err == nil {
		t.Error("infinite speed accepted")
	}
	if _, err := pl.AddHost("h", 1e9, 0); err != nil {
		t.Fatalf("valid host rejected: %v", err)
	}
	if h, _ := pl.Host("h"); h.Cores != 1 {
		t.Errorf("cores defaulted to %d, want 1", h.Cores)
	}
	if _, err := pl.AddHost("h", 1e9, 1); err == nil {
		t.Error("duplicate host accepted")
	}
}

func TestAddLinkValidation(t *testing.T) {
	pl := New()
	if _, err := pl.AddLink("l", -1, 0); err == nil {
		t.Error("negative bandwidth accepted")
	}
	if _, err := pl.AddLink("l", 1e6, -1); err == nil {
		t.Error("negative latency accepted")
	}
	if _, err := pl.AddLink("l", 1e6, 1e-6); err != nil {
		t.Fatalf("valid link rejected: %v", err)
	}
	if _, err := pl.AddLink("l", 1e6, 1e-6); err == nil {
		t.Error("duplicate link accepted")
	}
}

func TestRouteTransferTime(t *testing.T) {
	pl := New()
	pl.AddHost("a", 1e9, 1)
	pl.AddHost("b", 1e9, 1)
	pl.AddLink("l1", 1e6, 1e-3) // 1 MB/s, 1 ms
	pl.AddLink("l2", 2e6, 2e-3) // 2 MB/s, 2 ms
	if err := pl.AddRoute("a", "b", "l1", "l2"); err != nil {
		t.Fatal(err)
	}
	r, err := pl.Route("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	// Latency 3 ms, bottleneck 1 MB/s → 1 MB transfer = 3e-3 + 1 s.
	if got := r.TransferTime(1e6); math.Abs(got-1.003) > 1e-12 {
		t.Fatalf("TransferTime = %v, want 1.003", got)
	}
	// Zero bytes costs only latency.
	if got := r.TransferTime(0); math.Abs(got-3e-3) > 1e-15 {
		t.Fatalf("latency-only = %v, want 0.003", got)
	}
}

func TestRouteSymmetric(t *testing.T) {
	pl := New()
	pl.AddHost("a", 1e9, 1)
	pl.AddHost("b", 1e9, 1)
	pl.AddLink("l", 1e6, 1e-3)
	pl.AddRoute("a", "b", "l")
	if _, err := pl.Route("b", "a"); err != nil {
		t.Fatalf("reverse route missing: %v", err)
	}
}

func TestLoopbackRouteFree(t *testing.T) {
	pl := New()
	pl.AddHost("a", 1e9, 1)
	r, err := pl.Route("a", "a")
	if err != nil {
		t.Fatal(err)
	}
	if got := r.TransferTime(1e9); got != 0 {
		t.Fatalf("loopback transfer = %v, want 0", got)
	}
}

func TestMissingRoute(t *testing.T) {
	pl := New()
	pl.AddHost("a", 1e9, 1)
	pl.AddHost("b", 1e9, 1)
	if _, err := pl.Route("a", "b"); err == nil {
		t.Error("missing route did not error")
	}
}

func TestRouteErrors(t *testing.T) {
	pl := New()
	pl.AddHost("a", 1e9, 1)
	if err := pl.AddRoute("a", "nope"); err == nil {
		t.Error("route to unknown host accepted")
	}
	if err := pl.AddRoute("nope", "a"); err == nil {
		t.Error("route from unknown host accepted")
	}
	pl.AddHost("b", 1e9, 1)
	if err := pl.AddRoute("a", "b", "ghost-link"); err == nil {
		t.Error("route over unknown link accepted")
	}
}

func TestCluster(t *testing.T) {
	pl, err := Cluster("node", 96, 1e6, 1e8, 50e-6)
	if err != nil {
		t.Fatal(err)
	}
	if pl.NumHosts() != 97 {
		t.Fatalf("hosts = %d, want 97", pl.NumHosts())
	}
	// Every worker is reachable from the master.
	for i := 1; i <= 96; i++ {
		r, err := pl.Route("node-0", "node-"+strconv.Itoa(i))
		if err != nil {
			t.Fatalf("route to worker %d: %v", i, err)
		}
		if got := r.Latency(); math.Abs(got-100e-6) > 1e-12 {
			t.Fatalf("worker %d latency = %v, want 100us (backbone+link)", i, got)
		}
	}
}

func TestClusterSmall(t *testing.T) {
	if _, err := Cluster("c", 0, 1, 1, 0); err == nil {
		t.Error("0-worker cluster accepted")
	}
}

func TestHeterogeneous(t *testing.T) {
	pl, err := Heterogeneous("h", []float64{1e6, 2e6, 4e6}, 1e8, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := pl.Host("h-0")
	if m.Speed != 4e6 {
		t.Fatalf("master speed = %v, want max worker speed", m.Speed)
	}
	w2, _ := pl.Host("h-2")
	if w2.Speed != 2e6 {
		t.Fatalf("worker 2 speed = %v", w2.Speed)
	}
	if _, err := Heterogeneous("h", nil, 1, 0); err == nil {
		t.Error("empty speeds accepted")
	}
}

func TestFreeNetworkIsCheap(t *testing.T) {
	bw, lat := FreeNetwork()
	pl := New()
	pl.AddHost("m", 1e9, 1)
	pl.AddHost("w", 1e9, 1)
	pl.AddLink("l", bw, lat)
	pl.AddRoute("m", "w", "l")
	r, _ := pl.Route("m", "w")
	// A 1 KB message must cost well under a microsecond.
	if got := r.TransferTime(1024); got > 1e-6 {
		t.Fatalf("free-network transfer = %v", got)
	}
}

func TestHostsSorted(t *testing.T) {
	pl := New()
	pl.AddHost("b", 1, 1)
	pl.AddHost("a", 1, 1)
	pl.AddHost("c", 1, 1)
	hosts := pl.Hosts()
	if hosts[0].Name != "a" || hosts[1].Name != "b" || hosts[2].Name != "c" {
		t.Fatalf("hosts not sorted: %v", []string{hosts[0].Name, hosts[1].Name, hosts[2].Name})
	}
}

func TestEmptyRouteBandwidthInfinite(t *testing.T) {
	var r Route
	if !math.IsInf(r.Bandwidth(), 1) {
		t.Fatal("empty route bandwidth not infinite")
	}
}

func TestUnknownLookups(t *testing.T) {
	pl := New()
	if _, err := pl.Host("x"); err == nil || !strings.Contains(err.Error(), "x") {
		t.Error("unknown host lookup")
	}
	if _, err := pl.Link("x"); err == nil {
		t.Error("unknown link lookup")
	}
}
