package platform

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParsePlatform checks the XML parser never panics and that any
// successfully parsed platform re-serializes and re-parses to the same
// host/link counts (weak round-trip invariant).
func FuzzParsePlatform(f *testing.F) {
	f.Add(samplePlatform)
	f.Add(`<platform version="4.1"><zone id="z" routing="Full"></zone></platform>`)
	f.Add(`<platform><zone><host id="h" speed="1Gf"/></zone></platform>`)
	f.Add(`<platform version="4.1"><zone id="z" routing="Full"><host id="a" speed="2Mf"/><host id="b" speed="3Kf" core="4"/><link id="l" bandwidth="1MBps" latency="1us"/><route src="a" dst="b"><link_ctn id="l"/></route></zone></platform>`)
	f.Add(``)
	f.Add(`<<<>>>`)
	f.Fuzz(func(t *testing.T, doc string) {
		pl, err := ParsePlatform(strings.NewReader(doc))
		if err != nil {
			return // malformed input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := WritePlatform(&buf, pl); err != nil {
			t.Fatalf("write of parsed platform failed: %v", err)
		}
		again, err := ParsePlatform(&buf)
		if err != nil {
			t.Fatalf("re-parse of written platform failed: %v\n%s", err, buf.String())
		}
		if again.NumHosts() != pl.NumHosts() {
			t.Fatalf("host count changed: %d -> %d", pl.NumHosts(), again.NumHosts())
		}
		if len(again.Links()) != len(pl.Links()) {
			t.Fatalf("link count changed: %d -> %d", len(pl.Links()), len(again.Links()))
		}
	})
}

// FuzzParseDeployment checks the deployment parser never panics.
func FuzzParseDeployment(f *testing.F) {
	f.Add(sampleDeployment)
	f.Add(`<platform version="4.1"><process host="h" function="f"/></platform>`)
	f.Add(`nonsense`)
	f.Fuzz(func(t *testing.T, doc string) {
		d, err := ParseDeployment(strings.NewReader(doc))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteDeployment(&buf, d); err != nil {
			t.Fatalf("write of parsed deployment failed: %v", err)
		}
	})
}
