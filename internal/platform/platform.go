// Package platform describes the simulated computing systems: hosts with
// speeds and core counts, network links with latency and bandwidth, and
// routes between hosts — the information the paper's Figure 2 groups
// under "System Information" (hosts: speed, number of cores; network:
// topology, bandwidth, latency).
//
// Platforms can be built programmatically (Cluster, Heterogeneous) or
// loaded from a SimGrid-flavoured XML subset (see xml.go), mirroring the
// SimGrid platform files the original experiments used.
package platform

import (
	"fmt"
	"math"
	"sort"
)

// Host is a processing element container. Speed is in floating-point
// operations per second; a task of x flops executes in x/Speed seconds.
// Throughout the paper a PE is a single computing core (§II), so the
// master–worker model places one worker process per core.
type Host struct {
	Name  string
	Speed float64 // flops per second
	Cores int
}

// Link is a network link with Latency (seconds) and Bandwidth (bytes per
// second).
type Link struct {
	Name      string
	Latency   float64
	Bandwidth float64
}

// Route is an ordered sequence of links connecting two hosts. Transfer
// time of b bytes is the sum of link latencies plus b divided by the
// bottleneck (minimum) bandwidth, the standard SimGrid approximation.
type Route struct {
	Links []*Link
}

// Latency returns the end-to-end latency of the route.
func (r Route) Latency() float64 {
	var l float64
	for _, ln := range r.Links {
		l += ln.Latency
	}
	return l
}

// Bandwidth returns the bottleneck bandwidth of the route, or +Inf for an
// empty (loopback) route.
func (r Route) Bandwidth() float64 {
	bw := math.Inf(1)
	for _, ln := range r.Links {
		if ln.Bandwidth < bw {
			bw = ln.Bandwidth
		}
	}
	return bw
}

// TransferTime returns the time to move bytes over the route.
func (r Route) TransferTime(bytes float64) float64 {
	if bytes <= 0 {
		return r.Latency()
	}
	bw := r.Bandwidth()
	if math.IsInf(bw, 1) {
		return r.Latency()
	}
	return r.Latency() + bytes/bw
}

// Platform is a collection of hosts, links and routes.
type Platform struct {
	hosts  map[string]*Host
	links  map[string]*Link
	routes map[[2]string]Route
}

// New returns an empty platform.
func New() *Platform {
	return &Platform{
		hosts:  make(map[string]*Host),
		links:  make(map[string]*Link),
		routes: make(map[[2]string]Route),
	}
}

// AddHost registers a host. Speed must be positive; Cores defaults to 1.
func (pl *Platform) AddHost(name string, speed float64, cores int) (*Host, error) {
	if name == "" {
		return nil, fmt.Errorf("platform: host name must not be empty")
	}
	if _, dup := pl.hosts[name]; dup {
		return nil, fmt.Errorf("platform: duplicate host %q", name)
	}
	if speed <= 0 || math.IsNaN(speed) || math.IsInf(speed, 0) {
		return nil, fmt.Errorf("platform: host %q speed must be positive and finite, got %v", name, speed)
	}
	if cores <= 0 {
		cores = 1
	}
	h := &Host{Name: name, Speed: speed, Cores: cores}
	pl.hosts[name] = h
	return h, nil
}

// AddLink registers a network link.
func (pl *Platform) AddLink(name string, bandwidth, latency float64) (*Link, error) {
	if name == "" {
		return nil, fmt.Errorf("platform: link name must not be empty")
	}
	if _, dup := pl.links[name]; dup {
		return nil, fmt.Errorf("platform: duplicate link %q", name)
	}
	if bandwidth <= 0 {
		return nil, fmt.Errorf("platform: link %q bandwidth must be positive, got %v", name, bandwidth)
	}
	if latency < 0 {
		return nil, fmt.Errorf("platform: link %q latency must be non-negative, got %v", name, latency)
	}
	l := &Link{Name: name, Bandwidth: bandwidth, Latency: latency}
	pl.links[name] = l
	return l, nil
}

// AddRoute registers the route between two hosts (symmetric: it also
// serves dst→src traffic).
func (pl *Platform) AddRoute(src, dst string, linkNames ...string) error {
	if _, ok := pl.hosts[src]; !ok {
		return fmt.Errorf("platform: route source %q is not a host", src)
	}
	if _, ok := pl.hosts[dst]; !ok {
		return fmt.Errorf("platform: route destination %q is not a host", dst)
	}
	links := make([]*Link, 0, len(linkNames))
	for _, ln := range linkNames {
		l, ok := pl.links[ln]
		if !ok {
			return fmt.Errorf("platform: route %s->%s references unknown link %q", src, dst, ln)
		}
		links = append(links, l)
	}
	pl.routes[routeKey(src, dst)] = Route{Links: links}
	return nil
}

func routeKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// Host returns the named host, or an error.
func (pl *Platform) Host(name string) (*Host, error) {
	h, ok := pl.hosts[name]
	if !ok {
		return nil, fmt.Errorf("platform: unknown host %q", name)
	}
	return h, nil
}

// Link returns the named link, or an error.
func (pl *Platform) Link(name string) (*Link, error) {
	l, ok := pl.links[name]
	if !ok {
		return nil, fmt.Errorf("platform: unknown link %q", name)
	}
	return l, nil
}

// Route returns the route between two hosts. Loopback (src == dst) is an
// implicit empty route with zero cost. A missing route is an error: the
// master–worker model requires master↔worker connectivity.
func (pl *Platform) Route(src, dst string) (Route, error) {
	if src == dst {
		return Route{}, nil
	}
	r, ok := pl.routes[routeKey(src, dst)]
	if !ok {
		return Route{}, fmt.Errorf("platform: no route between %q and %q", src, dst)
	}
	return r, nil
}

// Hosts returns all hosts sorted by name for deterministic iteration.
func (pl *Platform) Hosts() []*Host {
	out := make([]*Host, 0, len(pl.hosts))
	for _, h := range pl.hosts {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Links returns all links sorted by name.
func (pl *Platform) Links() []*Link {
	out := make([]*Link, 0, len(pl.links))
	for _, l := range pl.links {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// NumHosts returns the number of hosts.
func (pl *Platform) NumHosts() int { return len(pl.hosts) }

// Cluster builds a homogeneous star cluster: n+1 hosts named
// prefix-0 … prefix-n (prefix-0 is conventionally the master), each with
// the given speed, connected through per-host links of the given
// bandwidth/latency and a shared backbone. Only master↔worker routes are
// installed — the paper notes (§III-A) that communication happens only
// between the master and the workers, so a full network transformation is
// unnecessary. This stands in for both the 96-node BBN GP-1000 of the TSS
// publication and the taurus cluster of §V.
func Cluster(prefix string, n int, speed, bandwidth, latency float64) (*Platform, error) {
	if n < 1 {
		return nil, fmt.Errorf("platform: cluster needs at least 1 worker, got %d", n)
	}
	pl := New()
	backbone, err := pl.AddLink(prefix+"-backbone", bandwidth, latency)
	if err != nil {
		return nil, err
	}
	_ = backbone
	master := fmt.Sprintf("%s-0", prefix)
	if _, err := pl.AddHost(master, speed, 1); err != nil {
		return nil, err
	}
	for i := 1; i <= n; i++ {
		name := fmt.Sprintf("%s-%d", prefix, i)
		if _, err := pl.AddHost(name, speed, 1); err != nil {
			return nil, err
		}
		linkName := fmt.Sprintf("%s-link-%d", prefix, i)
		if _, err := pl.AddLink(linkName, bandwidth, latency); err != nil {
			return nil, err
		}
		if err := pl.AddRoute(master, name, prefix+"-backbone", linkName); err != nil {
			return nil, err
		}
	}
	return pl, nil
}

// Heterogeneous builds a star cluster whose worker speeds are given
// explicitly (host i+1 gets speeds[i]); the master runs at the maximum
// speed. Used by the weighted-factoring examples.
func Heterogeneous(prefix string, speeds []float64, bandwidth, latency float64) (*Platform, error) {
	if len(speeds) == 0 {
		return nil, fmt.Errorf("platform: need at least one worker speed")
	}
	max := speeds[0]
	for _, s := range speeds {
		if s > max {
			max = s
		}
	}
	pl := New()
	master := fmt.Sprintf("%s-0", prefix)
	if _, err := pl.AddHost(master, max, 1); err != nil {
		return nil, err
	}
	if _, err := pl.AddLink(prefix+"-backbone", bandwidth, latency); err != nil {
		return nil, err
	}
	for i, s := range speeds {
		name := fmt.Sprintf("%s-%d", prefix, i+1)
		if _, err := pl.AddHost(name, s, 1); err != nil {
			return nil, err
		}
		linkName := fmt.Sprintf("%s-link-%d", prefix, i+1)
		if _, err := pl.AddLink(linkName, bandwidth, latency); err != nil {
			return nil, err
		}
		if err := pl.AddRoute(master, name, prefix+"-backbone", linkName); err != nil {
			return nil, err
		}
	}
	return pl, nil
}

// FreeNetwork returns the bandwidth/latency pair the paper uses to make
// communication costless when replicating the BOLD publication's
// simulator (§III-B): "setting the network parameters bandwidth to a very
// high value and the latency to a very low value".
func FreeNetwork() (bandwidth, latency float64) {
	return 1e15, 1e-12
}
