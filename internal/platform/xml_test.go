package platform

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

const samplePlatform = `<?xml version="1.0"?>
<platform version="4.1">
  <zone id="zone0" routing="Full">
    <host id="master" speed="1Gf" core="1"/>
    <host id="worker-1" speed="500Mf" core="2"/>
    <link id="lan" bandwidth="125MBps" latency="50us"/>
    <route src="master" dst="worker-1"><link_ctn id="lan"/></route>
  </zone>
</platform>`

func TestParsePlatform(t *testing.T) {
	pl, err := ParsePlatform(strings.NewReader(samplePlatform))
	if err != nil {
		t.Fatal(err)
	}
	m, err := pl.Host("master")
	if err != nil {
		t.Fatal(err)
	}
	if m.Speed != 1e9 {
		t.Fatalf("master speed = %v, want 1e9", m.Speed)
	}
	w, _ := pl.Host("worker-1")
	if w.Speed != 500e6 || w.Cores != 2 {
		t.Fatalf("worker = %+v", w)
	}
	l, _ := pl.Link("lan")
	if l.Bandwidth != 125e6 || math.Abs(l.Latency-50e-6) > 1e-15 {
		t.Fatalf("link = %+v", l)
	}
	r, err := pl.Route("master", "worker-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Links) != 1 || r.Links[0].Name != "lan" {
		t.Fatalf("route links = %v", r.Links)
	}
}

func TestPlatformRoundTrip(t *testing.T) {
	orig, err := Cluster("c", 4, 2e9, 1e8, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePlatform(&buf, orig); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParsePlatform(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	if parsed.NumHosts() != orig.NumHosts() {
		t.Fatalf("hosts %d != %d", parsed.NumHosts(), orig.NumHosts())
	}
	for _, h := range orig.Hosts() {
		ph, err := parsed.Host(h.Name)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ph.Speed-h.Speed) > 1e-6*h.Speed {
			t.Fatalf("host %s speed %v != %v", h.Name, ph.Speed, h.Speed)
		}
	}
	for _, l := range orig.Links() {
		ol, err := parsed.Link(l.Name)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ol.Latency-l.Latency) > 1e-12 {
			t.Fatalf("link %s latency %v != %v", l.Name, ol.Latency, l.Latency)
		}
		if math.Abs(ol.Bandwidth-l.Bandwidth) > 1e-6*l.Bandwidth {
			t.Fatalf("link %s bandwidth %v != %v", l.Name, ol.Bandwidth, l.Bandwidth)
		}
	}
	// Route structure preserved.
	r, err := parsed.Route("c-0", "c-3")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Links) != 2 {
		t.Fatalf("route has %d links, want 2", len(r.Links))
	}
}

func TestParseQuantity(t *testing.T) {
	cases := []struct {
		in    string
		units map[string]float64
		want  float64
	}{
		{"1Gf", speedUnits, 1e9},
		{"2.5Mf", speedUnits, 2.5e6},
		{"42", speedUnits, 42},
		{"125MBps", bwUnits, 125e6},
		{"50us", timeUnits, 50e-6},
		{"1e-3s", timeUnits, 1e-3},
		{"3ms", timeUnits, 3e-3},
	}
	for _, c := range cases {
		got, err := parseQuantity(c.in, c.units)
		if err != nil {
			t.Errorf("parseQuantity(%q): %v", c.in, err)
			continue
		}
		if math.Abs(got-c.want) > 1e-9*math.Abs(c.want) {
			t.Errorf("parseQuantity(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "fast", "1XBps", "abcf"} {
		if _, err := parseQuantity(bad, bwUnits); err == nil {
			t.Errorf("parseQuantity(%q) succeeded", bad)
		}
	}
}

func TestParsePlatformErrors(t *testing.T) {
	bad := []string{
		`not xml at all`,
		`<platform version="4.1"><zone id="z" routing="Full"><host id="h" speed="oops"/></zone></platform>`,
		`<platform version="4.1"><zone id="z" routing="Full"><host id="h" speed="1Gf" core="x"/></zone></platform>`,
		`<platform version="4.1"><zone id="z" routing="Full"><host id="h" speed="1Gf"/><route src="h" dst="ghost"/></zone></platform>`,
	}
	for i, doc := range bad {
		if _, err := ParsePlatform(strings.NewReader(doc)); err == nil {
			t.Errorf("bad document %d accepted", i)
		}
	}
}

const sampleDeployment = `<?xml version="1.0"?>
<platform version="4.1">
  <process host="master" function="master">
    <argument value="1024"/>
    <argument value="FAC2"/>
  </process>
  <process host="worker-1" function="worker" start_time="2.5"/>
</platform>`

func TestParseDeployment(t *testing.T) {
	d, err := ParseDeployment(strings.NewReader(sampleDeployment))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Processes) != 2 {
		t.Fatalf("processes = %d", len(d.Processes))
	}
	m := d.Processes[0]
	if m.Function != "master" || len(m.Arguments) != 2 || m.Arguments[1] != "FAC2" {
		t.Fatalf("master = %+v", m)
	}
	if d.Processes[1].StartTime != 2.5 {
		t.Fatalf("start_time = %v", d.Processes[1].StartTime)
	}
}

func TestDeploymentRoundTrip(t *testing.T) {
	orig := &Deployment{Processes: []DeployedProcess{
		{Host: "a", Function: "master", Arguments: []string{"x", "y"}},
		{Host: "b", Function: "worker", StartTime: 1.25},
	}}
	var buf bytes.Buffer
	if err := WriteDeployment(&buf, orig); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseDeployment(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Processes) != 2 {
		t.Fatalf("processes = %d", len(parsed.Processes))
	}
	if parsed.Processes[0].Arguments[1] != "y" || parsed.Processes[1].StartTime != 1.25 {
		t.Fatalf("round trip = %+v", parsed.Processes)
	}
}

func TestDeploymentValidate(t *testing.T) {
	pl := New()
	pl.AddHost("a", 1e9, 1)
	good := &Deployment{Processes: []DeployedProcess{{Host: "a", Function: "master"}}}
	if err := good.Validate(pl); err != nil {
		t.Fatalf("valid deployment rejected: %v", err)
	}
	badHost := &Deployment{Processes: []DeployedProcess{{Host: "ghost", Function: "master"}}}
	if err := badHost.Validate(pl); err == nil {
		t.Error("unknown host accepted")
	}
	noFn := &Deployment{Processes: []DeployedProcess{{Host: "a"}}}
	if err := noFn.Validate(pl); err == nil {
		t.Error("empty function accepted")
	}
}

func TestParseDeploymentBadStartTime(t *testing.T) {
	doc := `<platform version="4.1"><process host="a" function="f" start_time="soon"/></platform>`
	if _, err := ParseDeployment(strings.NewReader(doc)); err == nil {
		t.Error("bad start_time accepted")
	}
}
