// Package chaos injects faults into the dlsimd HTTP surface — the
// harness that turns the fleet's failure handling from dead code into
// tested behavior. It operates at two levels:
//
//   - Proxy is a fault-injecting reverse proxy that fronts a real
//     daemon (or wraps the service mux in-process): connection resets,
//     added latency, 5xx error envelopes, truncated or corrupted result
//     streams, and blackholes, injected per the engine's rules.
//   - Injector implements the client SDK's Doer seam, synthesizing the
//     same fault vocabulary below the retry policy without any sockets
//     — the unit-test entry point.
//
// Both share Engine: a deterministic, seedable rule engine. Each rule
// matches requests by method and path substring and fires either on the
// first N matches ("fail first N", exactly reproducible) or with a
// fixed probability drawn from a seeded SplitMix64 stream. Given the
// same seed and the same sequence of matching requests, the engine
// makes the same decisions — a chaos profile is a reproducible
// experiment, which is the whole point in a repository about
// reproducibility under perturbation.
//
// Determinism caveat: the probability stream is consumed in request
// arrival order, so concurrent clients racing each other can permute
// which request draws which number. The injected fault *set* stays
// seed-stable in distribution; tests needing exact placement use
// FirstN rules or serialized traffic. Simulation results are unaffected
// either way — faults only ever perturb scheduling, and the campaign
// layer's retries and integrity checks are what is under test.
package chaos

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/rng"
)

// Fault names one injectable failure mode.
type Fault string

// The fault vocabulary. Reset and Blackhole exercise transport-level
// failures, Error5xx the structured error path, Truncate and Corrupt
// the result-stream integrity checks, Latency the straggler handling
// (shard timeouts, hedging).
const (
	// FaultReset severs the connection before a response is written —
	// the client sees a connection reset / unexpected EOF.
	FaultReset Fault = "reset"
	// FaultLatency delays the request by Latency, then proceeds
	// normally. The only fault that composes with a real response.
	FaultLatency Fault = "latency"
	// FaultError5xx answers 503 with a well-formed error envelope
	// (code "internal") without reaching the backend.
	FaultError5xx Fault = "error"
	// FaultTruncate forwards the real response but cuts the body after
	// After bytes, simulating a node dying mid-stream.
	FaultTruncate Fault = "truncate"
	// FaultCorrupt forwards the real response but overwrites the byte
	// at offset After with 0x00 — invalid anywhere in JSON, so decoders
	// detect the damage instead of silently accepting changed values.
	FaultCorrupt Fault = "corrupt"
	// FaultBlackhole holds the request open without answering until
	// the client gives up (context cancellation or timeout).
	FaultBlackhole Fault = "blackhole"
)

// Duration is a time.Duration that marshals as a "150ms"-style string
// and unmarshals from strings or numeric seconds — the JSON form used
// in chaos profile files.
type Duration time.Duration

// MarshalJSON renders the duration as a string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "150ms"-style strings and numeric seconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("chaos: bad duration %q: %v", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var secs float64
	if err := json.Unmarshal(b, &secs); err != nil {
		return err
	}
	*d = Duration(time.Duration(secs * float64(time.Second)))
	return nil
}

// Rule is one fault-injection rule. A request matches when its method
// equals Method (empty matches all) and its URL path contains Path
// (empty matches all). A matching request is injected when fewer than
// FirstN matches have been seen so far, or else with probability P.
type Rule struct {
	// Name labels the rule in counters and logs; defaults to the fault
	// name.
	Name string `json:"name,omitempty"`
	// Method restricts the rule to one HTTP method ("" = any).
	Method string `json:"method,omitempty"`
	// Path is a substring the URL path must contain ("" = any).
	Path string `json:"path,omitempty"`
	// Fault is the failure mode to inject.
	Fault Fault `json:"fault"`
	// P is the per-request injection probability in [0, 1], applied
	// after FirstN is exhausted.
	P float64 `json:"p,omitempty"`
	// FirstN injects deterministically on the first N matching
	// requests.
	FirstN int `json:"first_n,omitempty"`
	// Latency is the added delay for FaultLatency.
	Latency Duration `json:"latency,omitempty"`
	// After is the number of body bytes forwarded before FaultTruncate
	// cuts or FaultCorrupt damages the stream. 0 means 256.
	After int64 `json:"after,omitempty"`
}

func (r Rule) label() string {
	if r.Name != "" {
		return r.Name
	}
	return string(r.Fault)
}

// Validate rejects malformed rules before they arm an engine.
func (r Rule) Validate() error {
	switch r.Fault {
	case FaultReset, FaultLatency, FaultError5xx, FaultTruncate, FaultCorrupt, FaultBlackhole:
	default:
		return fmt.Errorf("chaos: unknown fault %q", r.Fault)
	}
	if r.P < 0 || r.P > 1 {
		return fmt.Errorf("chaos: rule %s: probability %v outside [0, 1]", r.label(), r.P)
	}
	if r.P == 0 && r.FirstN <= 0 {
		return fmt.Errorf("chaos: rule %s: needs p > 0 or first_n > 0 to ever fire", r.label())
	}
	if r.Fault == FaultLatency && r.Latency <= 0 {
		return fmt.Errorf("chaos: rule %s: latency fault needs a positive latency", r.label())
	}
	if r.After < 0 {
		return fmt.Errorf("chaos: rule %s: negative after", r.label())
	}
	return nil
}

// ruleState is a rule plus its per-engine counters.
type ruleState struct {
	Rule
	seen     int64 // matching requests observed
	injected int64 // faults actually fired
}

// Engine decides, per request, which fault (if any) to inject. Safe
// for concurrent use; decisions serialize on an internal mutex so the
// seeded probability stream is consumed one draw per matching request.
type Engine struct {
	// OnInject, when non-nil, observes every fired fault — the hook
	// cmd/chaosproxy uses to log injections. Called under the engine
	// lock; keep it fast.
	OnInject func(rule string, fault Fault, method, path string)

	mu    sync.Mutex
	sm    *rng.SplitMix64
	rules []*ruleState
}

// NewEngine arms the given rules over a seeded decision stream. Invalid
// rules are rejected.
func NewEngine(seed uint64, rules ...Rule) (*Engine, error) {
	e := &Engine{sm: rng.NewSplitMix64(rng.Mix64(seed ^ 0xC5A05))}
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			return nil, err
		}
		if r.After == 0 {
			r.After = 256
		}
		e.rules = append(e.rules, &ruleState{Rule: r})
	}
	return e, nil
}

// Decide returns the rule to inject for one request, or ok=false to
// pass it through untouched. At most one rule fires per request: the
// first armed rule (in registration order) that matches and draws an
// injection wins.
func (e *Engine) Decide(method, path string) (Rule, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, rs := range e.rules {
		if rs.Method != "" && rs.Method != method {
			continue
		}
		if rs.Path != "" && !strings.Contains(path, rs.Path) {
			continue
		}
		rs.seen++
		fire := rs.seen <= int64(rs.FirstN)
		if !fire && rs.P > 0 {
			// 53 uniform bits → [0, 1), the float64 idiom.
			u := float64(e.sm.Next()>>11) / (1 << 53)
			fire = u < rs.P
		}
		if fire {
			rs.injected++
			if e.OnInject != nil {
				e.OnInject(rs.label(), rs.Fault, method, path)
			}
			return rs.Rule, true
		}
	}
	return Rule{}, false
}

// Counts reports per-rule injection counts keyed by rule label — the
// assertion surface for tests ("the profile actually fired").
func (e *Engine) Counts() map[string]int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]int64, len(e.rules))
	for _, rs := range e.rules {
		out[rs.label()] += rs.injected
	}
	return out
}

// Injected reports the total number of faults fired across all rules.
func (e *Engine) Injected() int64 {
	var n int64
	for _, v := range e.Counts() {
		n += v
	}
	return n
}

// ParseRules decodes a JSON array of rules — the chaos profile file
// format cmd/chaosproxy loads.
func ParseRules(data []byte) ([]Rule, error) {
	var rules []Rule
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rules); err != nil {
		return nil, fmt.Errorf("chaos: parse rules: %w", err)
	}
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			return nil, err
		}
	}
	return rules, nil
}
