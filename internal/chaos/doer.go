// Doer-level fault injection: the sockets-free entry point. Injector
// sits between the client SDK and its HTTP transport (via
// client.WithDoer), synthesizing the same failure modes the proxy
// produces on the wire — so unit tests exercise retry, dedup, and
// stream-integrity handling without binding a single port.

package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"syscall"
	"time"

	"repro/campaign"
)

// Doer is the request-executing seam, shape-compatible with
// *http.Client and with client.Doer (declared locally to keep this
// package independent of the SDK).
type Doer interface {
	Do(*http.Request) (*http.Response, error)
}

// Injector is a Doer that injects faults per its Engine before (or
// into) the responses of the wrapped Doer. Plug it into the client SDK
// with client.WithDoer.
type Injector struct {
	// Next executes requests that the engine lets through (typically
	// an *http.Client).
	Next Doer
	// Engine decides which requests to damage and how.
	Engine *Engine
}

// Do applies at most one fault to the request. Transport-level faults
// (reset, blackhole) return errors without reaching Next; error faults
// synthesize a 503 envelope; stream faults forward the request and
// damage the response body on the way back.
func (in *Injector) Do(req *http.Request) (*http.Response, error) {
	rule, inject := in.Engine.Decide(req.Method, req.URL.Path)
	if !inject {
		return in.Next.Do(req)
	}
	switch rule.Fault {
	case FaultReset:
		closeBody(req)
		return nil, fmt.Errorf("chaos: injected reset: %s %s: %w", req.Method, req.URL.Path, syscall.ECONNRESET)
	case FaultBlackhole:
		closeBody(req)
		<-req.Context().Done()
		return nil, fmt.Errorf("chaos: blackholed: %s %s: %w", req.Method, req.URL.Path, req.Context().Err())
	case FaultError5xx:
		closeBody(req)
		return syntheticError(req), nil
	case FaultLatency:
		t := time.NewTimer(time.Duration(rule.Latency))
		defer t.Stop()
		select {
		case <-t.C:
		case <-req.Context().Done():
			closeBody(req)
			return nil, fmt.Errorf("chaos: latency fault: %s %s: %w", req.Method, req.URL.Path, req.Context().Err())
		}
		return in.Next.Do(req)
	case FaultTruncate, FaultCorrupt:
		resp, err := in.Next.Do(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &faultReader{rc: resp.Body, fault: rule.Fault, after: rule.After}
		resp.ContentLength = -1
		resp.Header.Del("Content-Length")
		return resp, nil
	default:
		return in.Next.Do(req)
	}
}

// faultReader damages a response body in flight: truncate ends the
// stream with io.ErrUnexpectedEOF after `after` bytes (what a consumer
// of a half-dead connection sees); corrupt zeroes the byte at offset
// `after` and lets the rest through, leaving decoders to trip over the
// NUL.
type faultReader struct {
	rc      io.ReadCloser
	fault   Fault
	after   int64
	read    int64
	damaged bool
}

func (fr *faultReader) Read(p []byte) (int, error) {
	if fr.fault == FaultTruncate {
		remain := fr.after - fr.read
		if remain <= 0 {
			return 0, io.ErrUnexpectedEOF
		}
		if int64(len(p)) > remain {
			p = p[:remain]
		}
	}
	n, err := fr.rc.Read(p)
	if fr.fault == FaultCorrupt && !fr.damaged && fr.read+int64(n) > fr.after {
		p[fr.after-fr.read] = 0x00
		fr.damaged = true
	}
	fr.read += int64(n)
	return n, err
}

func (fr *faultReader) Close() error { return fr.rc.Close() }

// syntheticError fabricates the 503-with-envelope response the proxy
// would have written, attributed to the request for error reporting.
func syntheticError(req *http.Request) *http.Response {
	body, _ := json.Marshal(campaign.ErrorEnvelope{Error: campaign.ErrorBody{
		Code:    campaign.CodeInternal,
		Message: "chaos: injected server error",
	}})
	return &http.Response{
		Status:        http.StatusText(http.StatusServiceUnavailable),
		StatusCode:    http.StatusServiceUnavailable,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"application/json"}},
		Body:          io.NopCloser(bytes.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

func closeBody(req *http.Request) {
	if req.Body != nil {
		_ = req.Body.Close()
	}
}
