package chaos

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/campaign"
)

func TestEngineDeterministicAcrossSeeds(t *testing.T) {
	mk := func(seed uint64) []bool {
		e, err := NewEngine(seed, Rule{Fault: FaultReset, P: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 200)
		for i := range out {
			_, out[i] = e.Decide(http.MethodGet, "/v1/jobs/x/results")
		}
		return out
	}
	a, b := mk(42), mk(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d", i)
		}
	}
	c := mk(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 200-draw decision streams")
	}
}

func TestEngineFirstNAndMatching(t *testing.T) {
	e, err := NewEngine(1,
		Rule{Name: "submit-reset", Method: http.MethodPost, Path: "/v1/jobs", Fault: FaultReset, FirstN: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Non-matching method and path never fire.
	if _, ok := e.Decide(http.MethodGet, "/v1/jobs"); ok {
		t.Fatal("GET matched a POST-only rule")
	}
	if _, ok := e.Decide(http.MethodPost, "/v1/health"); ok {
		t.Fatal("path without substring matched")
	}
	for i := 0; i < 2; i++ {
		if _, ok := e.Decide(http.MethodPost, "/v1/jobs"); !ok {
			t.Fatalf("first_n request %d did not fire", i)
		}
	}
	if _, ok := e.Decide(http.MethodPost, "/v1/jobs"); ok {
		t.Fatal("fired beyond first_n with p=0")
	}
	if got := e.Counts()["submit-reset"]; got != 2 {
		t.Fatalf("counts = %d, want 2", got)
	}
	if got := e.Injected(); got != 2 {
		t.Fatalf("Injected() = %d, want 2", got)
	}
}

func TestRuleValidation(t *testing.T) {
	bad := []Rule{
		{Fault: "explode", P: 1},
		{Fault: FaultReset, P: 1.5},
		{Fault: FaultReset},         // can never fire
		{Fault: FaultLatency, P: 1}, // latency without duration
		{Fault: FaultTruncate, FirstN: 1, After: -1},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("rule %d validated but should not have", i)
		}
	}
	if err := (Rule{Fault: FaultLatency, P: 0.5, Latency: Duration(time.Millisecond)}).Validate(); err != nil {
		t.Errorf("good rule rejected: %v", err)
	}
}

func TestDurationJSONAndParseRules(t *testing.T) {
	var r Rule
	if err := json.Unmarshal([]byte(`{"fault":"latency","p":1,"latency":"150ms"}`), &r); err != nil {
		t.Fatal(err)
	}
	if time.Duration(r.Latency) != 150*time.Millisecond {
		t.Fatalf("latency = %v", time.Duration(r.Latency))
	}
	if err := json.Unmarshal([]byte(`{"fault":"latency","p":1,"latency":2}`), &r); err != nil {
		t.Fatal(err)
	}
	if time.Duration(r.Latency) != 2*time.Second {
		t.Fatalf("numeric latency = %v", time.Duration(r.Latency))
	}
	out, err := json.Marshal(Duration(time.Second + 500*time.Millisecond))
	if err != nil || string(out) != `"1.5s"` {
		t.Fatalf("marshal = %s, %v", out, err)
	}

	rules, err := ParseRules([]byte(`[{"fault":"reset","p":0.1},{"fault":"error","first_n":3,"path":"/results"}]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 || rules[1].FirstN != 3 {
		t.Fatalf("rules = %+v", rules)
	}
	if _, err := ParseRules([]byte(`[{"fault":"reset","p":0.1,"nope":true}]`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ParseRules([]byte(`[{"fault":"warp","p":1}]`)); err == nil {
		t.Fatal("unknown fault accepted")
	}
}

// doerFunc adapts a function to the Doer seam.
type doerFunc func(*http.Request) (*http.Response, error)

func (f doerFunc) Do(r *http.Request) (*http.Response, error) { return f(r) }

func okJSON(body string) doerFunc {
	return func(r *http.Request) (*http.Response, error) {
		return &http.Response{
			StatusCode: http.StatusOK,
			Header:     http.Header{"Content-Type": []string{"application/json"}},
			Body:       io.NopCloser(strings.NewReader(body)),
			Request:    r,
		}, nil
	}
}

func TestInjectorFaults(t *testing.T) {
	req := func() *http.Request {
		return httptest.NewRequest(http.MethodGet, "http://node/v1/jobs/x/results", nil)
	}

	t.Run("reset", func(t *testing.T) {
		e, _ := NewEngine(1, Rule{Fault: FaultReset, FirstN: 1})
		in := &Injector{Next: okJSON("{}"), Engine: e}
		if _, err := in.Do(req()); err == nil {
			t.Fatal("reset fault returned a response")
		}
	})

	t.Run("error", func(t *testing.T) {
		e, _ := NewEngine(1, Rule{Fault: FaultError5xx, FirstN: 1})
		in := &Injector{Next: okJSON("{}"), Engine: e}
		resp, err := in.Do(req())
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		var env campaign.ErrorEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
		if env.Error.Code != campaign.CodeInternal {
			t.Fatalf("code = %q", env.Error.Code)
		}
	})

	t.Run("truncate", func(t *testing.T) {
		payload := strings.Repeat("x", 64)
		e, _ := NewEngine(1, Rule{Fault: FaultTruncate, FirstN: 1, After: 10})
		in := &Injector{Next: okJSON(payload), Engine: e}
		resp, err := in.Do(req())
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		got, err := io.ReadAll(resp.Body)
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("read err = %v, want unexpected EOF", err)
		}
		if len(got) != 10 {
			t.Fatalf("read %d bytes before truncation, want 10", len(got))
		}
	})

	t.Run("corrupt", func(t *testing.T) {
		payload := strings.Repeat("x", 64)
		e, _ := NewEngine(1, Rule{Fault: FaultCorrupt, FirstN: 1, After: 10})
		in := &Injector{Next: okJSON(payload), Engine: e}
		resp, err := in.Do(req())
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		got, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(payload) {
			t.Fatalf("corrupt changed length: %d != %d", len(got), len(payload))
		}
		if got[10] != 0x00 {
			t.Fatalf("byte 10 = %#x, want 0x00", got[10])
		}
		for i, b := range got {
			if i != 10 && b != 'x' {
				t.Fatalf("byte %d damaged unexpectedly: %#x", i, b)
			}
		}
	})

	t.Run("latency", func(t *testing.T) {
		e, _ := NewEngine(1, Rule{Fault: FaultLatency, FirstN: 1, Latency: Duration(10 * time.Millisecond)})
		in := &Injector{Next: okJSON("{}"), Engine: e}
		start := time.Now()
		resp, err := in.Do(req())
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
			t.Fatalf("latency fault returned after %v", elapsed)
		}
	})

	t.Run("passthrough", func(t *testing.T) {
		e, _ := NewEngine(1, Rule{Fault: FaultReset, FirstN: 1, Path: "/never-matched"})
		in := &Injector{Next: okJSON(`{"ok":true}`), Engine: e}
		resp, err := in.Do(req())
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if string(body) != `{"ok":true}` {
			t.Fatalf("body = %q", body)
		}
	})
}

func TestWrapHandlerFaults(t *testing.T) {
	payload := strings.Repeat("y", 512)
	backend := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		_, _ = io.WriteString(w, payload)
	})

	t.Run("error-envelope", func(t *testing.T) {
		e, _ := NewEngine(1, Rule{Fault: FaultError5xx, FirstN: 1})
		srv := httptest.NewServer(WrapHandler(backend, e))
		defer srv.Close()
		resp, err := http.Get(srv.URL + "/anything")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		// Second request passes through untouched.
		resp2, err := http.Get(srv.URL + "/anything")
		if err != nil {
			t.Fatal(err)
		}
		defer resp2.Body.Close()
		body, _ := io.ReadAll(resp2.Body)
		if string(body) != payload {
			t.Fatal("pass-through request damaged")
		}
	})

	t.Run("reset", func(t *testing.T) {
		e, _ := NewEngine(1, Rule{Fault: FaultReset, FirstN: 1})
		srv := httptest.NewServer(WrapHandler(backend, e))
		defer srv.Close()
		resp, err := http.Get(srv.URL + "/anything")
		if err == nil {
			resp.Body.Close()
			t.Fatal("reset fault produced a clean response")
		}
	})

	t.Run("truncate", func(t *testing.T) {
		e, _ := NewEngine(1, Rule{Fault: FaultTruncate, FirstN: 1, After: 100})
		srv := httptest.NewServer(WrapHandler(backend, e))
		defer srv.Close()
		resp, err := http.Get(srv.URL + "/anything")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err == nil && len(body) == len(payload) {
			t.Fatal("truncate fault delivered the full body cleanly")
		}
		if len(body) > 100 {
			t.Fatalf("delivered %d bytes, want <= 100", len(body))
		}
	})

	t.Run("corrupt", func(t *testing.T) {
		e, _ := NewEngine(1, Rule{Fault: FaultCorrupt, FirstN: 1, After: 100})
		srv := httptest.NewServer(WrapHandler(backend, e))
		defer srv.Close()
		resp, err := http.Get(srv.URL + "/anything")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if len(body) != len(payload) || body[100] != 0x00 {
			t.Fatalf("corrupt: len=%d byte100=%#x", len(body), body[100])
		}
	})
}

func TestProxyForwardsAndInjects(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = io.WriteString(w, `{"path":"`+r.URL.Path+`"}`)
	}))
	defer backend.Close()

	e, err := NewEngine(7, Rule{Fault: FaultError5xx, FirstN: 1, Path: "/v1/jobs"})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProxy(backend.URL, e)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(p)
	defer front.Close()

	// First /v1/jobs request eats the injected 503.
	resp, err := http.Get(front.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	// Subsequent requests forward transparently.
	resp2, err := http.Get(front.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body, _ := io.ReadAll(resp2.Body)
	if string(body) != `{"path":"/v1/jobs"}` {
		t.Fatalf("forwarded body = %q", body)
	}
	if resp2.Header.Get("Content-Type") != "application/json" {
		t.Fatal("upstream headers not forwarded")
	}

	if _, err := NewProxy("not a url at all\x7f", e); err == nil {
		t.Fatal("bad target accepted")
	}
	if _, err := NewProxy("/just/a/path", e); err == nil {
		t.Fatal("target without host accepted")
	}
}
