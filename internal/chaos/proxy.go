// Fault injection at the HTTP boundary: a reverse proxy for fronting a
// real daemon over TCP, and a handler wrapper for in-process tests.
// Both consult the same Engine and speak the same fault vocabulary, so
// a chaos profile behaves identically whether the fleet under test is
// three OS processes or three httptest servers.

package chaos

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/campaign"
)

// Proxy is a fault-injecting reverse proxy in front of one dlsimd. The
// proxy is deliberately hand-rolled rather than httputil-based: faults
// like truncation need byte-level control over the response copy, and
// resets need to abort the connection mid-body, which the stock proxy
// does not expose.
type Proxy struct {
	target *url.URL
	engine *Engine
	rt     http.RoundTripper
}

// NewProxy builds a proxy forwarding to target (e.g.
// "http://127.0.0.1:8080") with faults decided by engine.
func NewProxy(target string, engine *Engine) (*Proxy, error) {
	u, err := url.Parse(target)
	if err != nil {
		return nil, fmt.Errorf("chaos: bad target %q: %w", target, err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("chaos: target %q needs scheme and host", target)
	}
	return &Proxy{target: u, engine: engine, rt: http.DefaultTransport}, nil
}

// ServeHTTP applies at most one fault to the request, then forwards it
// upstream, streaming the response back (possibly damaged, for
// truncate/corrupt faults).
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rule, inject := p.engine.Decide(r.Method, r.URL.Path)
	if inject {
		switch rule.Fault {
		case FaultReset:
			// Abort the connection without writing a response: the
			// client observes a reset / unexpected EOF, the
			// transport-error retry path.
			panic(http.ErrAbortHandler)
		case FaultBlackhole:
			// Hold the request open until the client gives up.
			<-r.Context().Done()
			panic(http.ErrAbortHandler)
		case FaultError5xx:
			writeInjectedError(w)
			return
		case FaultLatency:
			if !sleepCtx(r, time.Duration(rule.Latency)) {
				panic(http.ErrAbortHandler)
			}
			// fall through to a normal forward
		}
	}

	out := r.Clone(r.Context())
	out.URL.Scheme = p.target.Scheme
	out.URL.Host = p.target.Host
	out.URL.Path = singleJoin(p.target.Path, r.URL.Path)
	out.Host = p.target.Host
	out.RequestURI = "" // client requests must not set it
	resp, err := p.rt.RoundTrip(out)
	if err != nil {
		// Upstream genuinely unreachable — not an injected fault, but
		// surface it in the shape clients already handle.
		writeBadGateway(w, err)
		return
	}
	defer resp.Body.Close()

	copyHeader(w.Header(), resp.Header)
	var dst io.Writer = w
	if inject && (rule.Fault == FaultTruncate || rule.Fault == FaultCorrupt) {
		// Damaging the stream invalidates the advertised length.
		w.Header().Del("Content-Length")
		dst = &faultWriter{w: w, fault: rule.Fault, after: rule.After}
	}
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(dst, resp.Body); err != nil {
		// Either the injected truncation or a real copy failure; both
		// end the same way — a non-clean connection abort, with the
		// delivered prefix flushed first so the client sees it.
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	}
}

// WrapHandler interposes the same fault behavior in front of an
// in-process handler (e.g. the service mux under httptest) — no
// sockets between proxy and backend, but the client-visible failure
// modes are identical.
func WrapHandler(h http.Handler, engine *Engine) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rule, inject := engine.Decide(r.Method, r.URL.Path)
		if inject {
			switch rule.Fault {
			case FaultReset:
				panic(http.ErrAbortHandler)
			case FaultBlackhole:
				<-r.Context().Done()
				panic(http.ErrAbortHandler)
			case FaultError5xx:
				writeInjectedError(w)
				return
			case FaultLatency:
				if !sleepCtx(r, time.Duration(rule.Latency)) {
					panic(http.ErrAbortHandler)
				}
			case FaultTruncate, FaultCorrupt:
				fw := &faultWriter{w: w, fault: rule.Fault, after: rule.After}
				h.ServeHTTP(&faultResponseWriter{ResponseWriter: w, dst: fw}, r)
				return
			}
		}
		h.ServeHTTP(w, r)
	})
}

// faultWriter forwards bytes until `after` have passed, then either
// aborts (truncate) or damages exactly one byte and continues
// (corrupt). The corrupting byte is 0x00 — NUL is invalid anywhere in
// JSON (strings, numbers, whitespace), so downstream decoders are
// guaranteed to notice rather than silently accept a changed value.
type faultWriter struct {
	w       io.Writer
	fault   Fault
	after   int64
	written int64
	damaged bool
}

func (fw *faultWriter) Write(p []byte) (int, error) {
	switch fw.fault {
	case FaultTruncate:
		remain := fw.after - fw.written
		if remain <= 0 {
			return 0, fmt.Errorf("chaos: stream truncated after %d bytes", fw.after)
		}
		if int64(len(p)) > remain {
			n, err := fw.w.Write(p[:remain])
			fw.written += int64(n)
			if err != nil {
				return n, err
			}
			return n, fmt.Errorf("chaos: stream truncated after %d bytes", fw.after)
		}
	case FaultCorrupt:
		if !fw.damaged && fw.written+int64(len(p)) > fw.after {
			i := fw.after - fw.written
			q := make([]byte, len(p))
			copy(q, p)
			q[i] = 0x00
			fw.damaged = true
			p = q
		}
	}
	n, err := fw.w.Write(p)
	fw.written += int64(n)
	return n, err
}

// faultResponseWriter routes body writes through a faultWriter while
// leaving headers and status with the real ResponseWriter. Flush is
// forwarded so streaming handlers behave; a truncation error from the
// fault writer escalates to a connection abort, matching what a client
// of a dying node would observe.
type faultResponseWriter struct {
	http.ResponseWriter
	dst *faultWriter
}

func (w *faultResponseWriter) Write(p []byte) (int, error) {
	n, err := w.dst.Write(p)
	if err != nil {
		// Push the delivered prefix onto the wire before aborting, so
		// the client observes bytes-then-death, not a silent no-show.
		w.Flush()
		panic(http.ErrAbortHandler)
	}
	return n, err
}

func (w *faultResponseWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// writeInjectedError answers 503 with a well-formed error envelope, the
// same document a failing daemon would produce. Code "internal" keeps
// it on the client's retryable path.
func writeInjectedError(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	_ = json.NewEncoder(w).Encode(campaign.ErrorEnvelope{Error: campaign.ErrorBody{
		Code:    campaign.CodeInternal,
		Message: "chaos: injected server error",
	}})
}

func writeBadGateway(w http.ResponseWriter, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusBadGateway)
	_ = json.NewEncoder(w).Encode(campaign.ErrorEnvelope{Error: campaign.ErrorBody{
		Code:    campaign.CodeInternal,
		Message: fmt.Sprintf("chaos: upstream unreachable: %v", err),
	}})
}

// sleepCtx sleeps for d or until the request dies, reporting whether
// the full delay elapsed.
func sleepCtx(r *http.Request, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-r.Context().Done():
		return false
	}
}

func singleJoin(a, b string) string {
	switch {
	case a == "" || a == "/":
		if b == "" {
			return "/"
		}
		return b
	case strings.HasSuffix(a, "/") && strings.HasPrefix(b, "/"):
		return a + b[1:]
	case !strings.HasSuffix(a, "/") && !strings.HasPrefix(b, "/") && b != "":
		return a + "/" + b
	default:
		return a + b
	}
}

func copyHeader(dst, src http.Header) {
	for k, vv := range src {
		for _, v := range vv {
			dst.Add(k, v)
		}
	}
}
