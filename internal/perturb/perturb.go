// Package perturb models systemic variability: fluctuating PE speeds,
// uneven start times and transient slowdowns. The paper's earlier-work
// context investigated the robustness [2] and resilience [3] of DLS
// techniques under exactly these perturbations; here they feed the
// ablation benchmarks (DESIGN.md) through sim.Config.Perturb and
// sim.Config.StartTimes.
//
// All models are deterministic functions of their inputs (plus an
// explicit rand48 stream where randomness is wanted), keeping perturbed
// experiments as reproducible as unperturbed ones.
package perturb

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
)

// Model yields a speed multiplier for worker w at time t. A multiplier of
// 1 means nominal speed; 0.5 means the PE is running at half speed.
type Model func(w int, t float64) float64

// None returns the identity model.
func None() Model {
	return func(int, float64) float64 { return 1 }
}

// Sinusoidal models periodic interference (e.g. co-scheduled daemons):
// worker w's speed oscillates around 1 with the given amplitude and
// period; each worker gets a deterministic phase shift so the fleet does
// not oscillate in lockstep. Amplitude must be in [0, 1).
func Sinusoidal(amplitude, period float64) (Model, error) {
	if amplitude < 0 || amplitude >= 1 {
		return nil, fmt.Errorf("perturb: amplitude must be in [0,1), got %v", amplitude)
	}
	if period <= 0 {
		return nil, fmt.Errorf("perturb: period must be positive, got %v", period)
	}
	return func(w int, t float64) float64 {
		phase := float64(w) * math.Phi
		return 1 + amplitude*math.Sin(2*math.Pi*t/period+phase)
	}, nil
}

// Slowdown models a step perturbation: the listed workers run at factor
// speed inside [from, to).
type Slowdown struct {
	Workers  map[int]bool
	Factor   float64
	From, To float64
}

// Steps composes step slowdowns into a model. Overlapping slowdowns on
// the same worker multiply.
func Steps(steps ...Slowdown) (Model, error) {
	for i, s := range steps {
		if s.Factor <= 0 {
			return nil, fmt.Errorf("perturb: step %d factor must be positive, got %v", i, s.Factor)
		}
		if s.To <= s.From {
			return nil, fmt.Errorf("perturb: step %d has empty interval [%v,%v)", i, s.From, s.To)
		}
	}
	return func(w int, t float64) float64 {
		f := 1.0
		for _, s := range steps {
			if t >= s.From && t < s.To && (s.Workers == nil || s.Workers[w]) {
				f *= s.Factor
			}
		}
		return f
	}, nil
}

// RandomDegradation draws, per worker, a permanent speed factor from
// [1-severity, 1]: a population of slightly mismatched PEs, the
// "heterogeneous computing systems" setting of the weighted techniques.
// The returned slice can be used directly as sim.Config.Speeds.
func RandomDegradation(r *rng.Rand48, p int, severity float64) ([]float64, error) {
	if severity < 0 || severity >= 1 {
		return nil, fmt.Errorf("perturb: severity must be in [0,1), got %v", severity)
	}
	if p <= 0 {
		return nil, fmt.Errorf("perturb: p must be positive, got %d", p)
	}
	speeds := make([]float64, p)
	for i := range speeds {
		speeds[i] = 1 - severity*r.Erand48()
	}
	return speeds, nil
}

// UniformStartSkew draws per-worker start times uniformly from
// [0, maxSkew) — the uneven PE starting times GSS and TSS were designed
// for (paper §II). The result feeds sim.Config.StartTimes.
func UniformStartSkew(r *rng.Rand48, p int, maxSkew float64) ([]float64, error) {
	if maxSkew < 0 {
		return nil, fmt.Errorf("perturb: maxSkew must be non-negative, got %v", maxSkew)
	}
	if p <= 0 {
		return nil, fmt.Errorf("perturb: p must be positive, got %d", p)
	}
	starts := make([]float64, p)
	for i := range starts {
		starts[i] = maxSkew * r.Erand48()
	}
	return starts, nil
}

// Trace is a piecewise-constant availability trace for one worker,
// mirroring SimGrid's host availability files: Factors[i] applies from
// Times[i] (until Times[i+1], the last factor applying forever).
type Trace struct {
	Times   []float64
	Factors []float64
}

// NewTrace validates and returns a trace. Times must be strictly
// increasing and start at 0; factors must be positive.
func NewTrace(times, factors []float64) (*Trace, error) {
	if len(times) == 0 || len(times) != len(factors) {
		return nil, fmt.Errorf("perturb: trace needs equal-length non-empty times/factors")
	}
	if times[0] != 0 {
		return nil, fmt.Errorf("perturb: trace must start at time 0, got %v", times[0])
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			return nil, fmt.Errorf("perturb: trace times not increasing at %d", i)
		}
	}
	for i, f := range factors {
		if f <= 0 {
			return nil, fmt.Errorf("perturb: trace factor %d must be positive, got %v", i, f)
		}
	}
	return &Trace{Times: times, Factors: factors}, nil
}

// At returns the factor in effect at time t.
func (tr *Trace) At(t float64) float64 {
	// First index with Times[i] > t; the segment before it applies.
	i := sort.SearchFloat64s(tr.Times, t)
	if i < len(tr.Times) && tr.Times[i] == t {
		return tr.Factors[i]
	}
	if i == 0 {
		return tr.Factors[0]
	}
	return tr.Factors[i-1]
}

// FromTraces builds a model from per-worker traces; workers beyond the
// slice run at nominal speed.
func FromTraces(traces []*Trace) Model {
	return func(w int, t float64) float64 {
		if w < 0 || w >= len(traces) || traces[w] == nil {
			return 1
		}
		return traces[w].At(t)
	}
}
