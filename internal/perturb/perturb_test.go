package perturb

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestNone(t *testing.T) {
	m := None()
	if m(0, 0) != 1 || m(99, 1e9) != 1 {
		t.Fatal("None is not identity")
	}
}

func TestSinusoidalBounds(t *testing.T) {
	m, err := Sinusoidal(0.3, 10)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 4; w++ {
		for ti := 0; ti < 1000; ti++ {
			f := m(w, float64(ti)*0.1)
			if f < 0.7-1e-9 || f > 1.3+1e-9 {
				t.Fatalf("factor %v outside [0.7,1.3]", f)
			}
		}
	}
	// Workers must not be in phase.
	if m(0, 2.5) == m(1, 2.5) {
		t.Fatal("workers oscillate in lockstep")
	}
}

func TestSinusoidalValidation(t *testing.T) {
	if _, err := Sinusoidal(1.0, 10); err == nil {
		t.Error("amplitude 1 accepted")
	}
	if _, err := Sinusoidal(0.5, 0); err == nil {
		t.Error("zero period accepted")
	}
}

func TestSteps(t *testing.T) {
	m, err := Steps(
		Slowdown{Workers: map[int]bool{0: true}, Factor: 0.5, From: 10, To: 20},
		Slowdown{Factor: 0.8, From: 15, To: 25}, // all workers
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := m(0, 5); got != 1 {
		t.Fatalf("before window = %v", got)
	}
	if got := m(0, 12); got != 0.5 {
		t.Fatalf("worker 0 in first window = %v", got)
	}
	if got := m(0, 17); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("overlap = %v, want 0.4", got)
	}
	if got := m(1, 17); got != 0.8 {
		t.Fatalf("worker 1 = %v, want 0.8", got)
	}
	if got := m(0, 20); got != 0.8 {
		t.Fatalf("boundary (To exclusive) = %v, want 0.8", got)
	}
}

func TestStepsValidation(t *testing.T) {
	if _, err := Steps(Slowdown{Factor: 0, From: 0, To: 1}); err == nil {
		t.Error("zero factor accepted")
	}
	if _, err := Steps(Slowdown{Factor: 1, From: 5, To: 5}); err == nil {
		t.Error("empty interval accepted")
	}
}

func TestRandomDegradation(t *testing.T) {
	r := rng.New(1)
	speeds, err := RandomDegradation(r, 100, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(speeds) != 100 {
		t.Fatalf("len = %d", len(speeds))
	}
	for _, s := range speeds {
		if s < 0.6 || s > 1 {
			t.Fatalf("speed %v outside [0.6,1]", s)
		}
	}
	if _, err := RandomDegradation(r, 0, 0.1); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := RandomDegradation(r, 4, 1.0); err == nil {
		t.Error("severity 1 accepted")
	}
}

func TestUniformStartSkew(t *testing.T) {
	r := rng.New(2)
	starts, err := UniformStartSkew(r, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range starts {
		if s < 0 || s >= 3 {
			t.Fatalf("start %v outside [0,3)", s)
		}
	}
	if _, err := UniformStartSkew(r, 2, -1); err == nil {
		t.Error("negative skew accepted")
	}
}

func TestTraceAt(t *testing.T) {
	tr, err := NewTrace([]float64{0, 10, 20}, []float64{1, 0.5, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ t, want float64 }{
		{0, 1}, {5, 1}, {10, 0.5}, {15, 0.5}, {20, 0.25}, {1e9, 0.25},
	}
	for _, c := range cases {
		if got := tr.At(c.t); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestTraceValidation(t *testing.T) {
	if _, err := NewTrace(nil, nil); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := NewTrace([]float64{1, 2}, []float64{1, 1}); err == nil {
		t.Error("trace not starting at 0 accepted")
	}
	if _, err := NewTrace([]float64{0, 0}, []float64{1, 1}); err == nil {
		t.Error("non-increasing times accepted")
	}
	if _, err := NewTrace([]float64{0, 1}, []float64{1, 0}); err == nil {
		t.Error("zero factor accepted")
	}
	if _, err := NewTrace([]float64{0}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestFromTraces(t *testing.T) {
	tr, _ := NewTrace([]float64{0, 1}, []float64{1, 0.5})
	m := FromTraces([]*Trace{tr, nil})
	if m(0, 2) != 0.5 {
		t.Fatal("trace not applied")
	}
	if m(1, 2) != 1 || m(7, 2) != 1 {
		t.Fatal("missing traces must default to 1")
	}
}

// TestDLSRecoversFromPerturbation is the robustness story of the earlier
// work [2]: under a mid-run slowdown of one PE, dynamic techniques (SS)
// lose far less than static chunking.
func TestDLSRecoversFromPerturbation(t *testing.T) {
	const n, p = 4000, 4
	slow, err := Steps(Slowdown{Workers: map[int]bool{0: true}, Factor: 0.25, From: 0, To: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	run := func(tech string) float64 {
		s, err := sched.New(tech, sched.Params{N: n, P: p, Mu: 0.01, Sigma: 0})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(sim.Config{
			P: p, Sched: s, Work: workload.NewConstant(0.01), Perturb: slow,
		})
		if err != nil {
			t.Fatal(err)
		}
		return metrics.AverageWasted(res.Makespan, res.Compute, res.SchedOps, 0)
	}
	static := run("STAT")
	dynamic := run("SS")
	if dynamic >= static/2 {
		t.Fatalf("SS wasted %v not clearly better than STAT %v under slowdown", dynamic, static)
	}
}
