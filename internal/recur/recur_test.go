package recur

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/workload"
)

func testSpec(seed uint64) engine.CampaignSpec {
	return engine.CampaignSpec{
		Techniques:   []string{"FAC2"},
		Ns:           []int64{64},
		Ps:           []int{2},
		Workload:     workload.Spec{Kind: "constant", P1: 1},
		H:            0.5,
		Replications: 2,
		Seed:         seed,
	}
}

// countingSubmit returns a SubmitFunc tallying calls per tenant.
func countingSubmit() (SubmitFunc, *atomic.Int64) {
	var n atomic.Int64
	return func(tenant string, spec engine.CampaignSpec) (string, error) {
		return fmt.Sprintf("j%d", n.Add(1)), nil
	}, &n
}

// TestAddTickRemove: a started scheduler ticks a schedule repeatedly,
// Remove stops it, and the schedule's runtime stats track submissions.
func TestAddTickRemove(t *testing.T) {
	submit, count := countingSubmit()
	s := New(Config{Submit: submit, MinInterval: time.Millisecond})
	defer s.Stop()
	s.Start()

	sched, err := s.Add("alice", testSpec(1), 5*time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sched.ID == "" || sched.Hash == "" {
		t.Fatalf("schedule missing identity: %+v", sched)
	}

	deadline := time.Now().Add(5 * time.Second)
	for count.Load() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d submissions before deadline", count.Load())
		}
		time.Sleep(time.Millisecond)
	}
	got, err := s.Get(sched.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Submissions < 3 || got.LastJob == "" {
		t.Fatalf("schedule stats not tracking: %+v", got)
	}

	if err := s.Remove(sched.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(sched.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after Remove = %v, want ErrNotFound", err)
	}
	at := count.Load()
	time.Sleep(30 * time.Millisecond)
	if count.Load() != at {
		t.Fatalf("removed schedule kept ticking: %d -> %d", at, count.Load())
	}
	if err := s.Remove(sched.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double Remove = %v, want ErrNotFound", err)
	}
}

// TestStartStopLifecycle: Stop halts ticking, is idempotent, and
// rejects later registrations; Add before Start defers ticking until
// Start.
func TestStartStopLifecycle(t *testing.T) {
	submit, count := countingSubmit()
	s := New(Config{Submit: submit, MinInterval: time.Millisecond})

	if _, err := s.Add("", testSpec(2), 3*time.Millisecond, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if count.Load() != 0 {
		t.Fatalf("schedule ticked %d times before Start", count.Load())
	}

	s.Start()
	s.Start() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for count.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("no tick after Start")
		}
		time.Sleep(time.Millisecond)
	}

	s.Stop()
	at := count.Load()
	time.Sleep(20 * time.Millisecond)
	if count.Load() != at {
		t.Fatalf("scheduler ticked after Stop: %d -> %d", at, count.Load())
	}
	s.Stop() // idempotent
	if _, err := s.Add("", testSpec(3), time.Second, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Add after Stop = %v, want ErrClosed", err)
	}
	if err := s.Restore(Schedule{ID: "s9", Spec: testSpec(3), Interval: Duration(time.Second)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Restore after Stop = %v, want ErrClosed", err)
	}
}

// TestValidation: interval floor, bad specs and negative jitter are
// rejected at registration.
func TestValidation(t *testing.T) {
	submit, _ := countingSubmit()
	s := New(Config{Submit: submit}) // default 1s floor
	defer s.Stop()

	if _, err := s.Add("", testSpec(4), 10*time.Millisecond, 0); err == nil {
		t.Fatal("interval below the floor accepted")
	}
	if _, err := s.Add("", testSpec(4), time.Second, -time.Second); err == nil {
		t.Fatal("negative jitter accepted")
	}
	bad := testSpec(4)
	bad.Replications = 0
	if _, err := s.Add("", bad, time.Second, 0); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

// TestRestoreAndOnChange: Restore keeps the original ID, advances the
// sequence, and never fires OnChange; Add/Remove fire it exactly once
// each.
func TestRestoreAndOnChange(t *testing.T) {
	submit, _ := countingSubmit()
	var mu sync.Mutex
	var events []string
	s := New(Config{
		Submit:      submit,
		MinInterval: time.Millisecond,
		OnChange: func(op Op, sched Schedule) {
			mu.Lock()
			events = append(events, string(op)+":"+sched.ID)
			mu.Unlock()
		},
	})
	defer s.Stop()

	if err := s.Restore(Schedule{ID: "s5", Tenant: "bob", Spec: testSpec(5), Interval: Duration(time.Hour)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Restore(Schedule{ID: "s5", Spec: testSpec(5), Interval: Duration(time.Hour)}); err == nil {
		t.Fatal("duplicate restore accepted")
	}
	added, err := s.Add("alice", testSpec(6), time.Hour, 0)
	if err != nil {
		t.Fatal(err)
	}
	if added.ID != "s6" {
		t.Fatalf("Add after Restore(s5) allocated %s, want s6", added.ID)
	}
	if err := s.Remove("s5"); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	want := []string{"add:s6", "delete:s5"}
	if len(events) != 2 || events[0] != want[0] || events[1] != want[1] {
		t.Fatalf("OnChange events %v, want %v", events, want)
	}

	if lst := s.ListTenant("alice"); len(lst) != 1 || lst[0].ID != "s6" {
		t.Fatalf("ListTenant(alice) = %+v", lst)
	}
	if lst := s.ListTenant("bob"); len(lst) != 0 {
		t.Fatalf("ListTenant(bob) after Remove = %+v", lst)
	}
}

// TestSubmitErrorRecorded: a failing submission lands in LastError and
// is cleared by the next success.
func TestSubmitErrorRecorded(t *testing.T) {
	var fail atomic.Bool
	fail.Store(true)
	var n atomic.Int64
	s := New(Config{
		Submit: func(tenant string, spec engine.CampaignSpec) (string, error) {
			if fail.Load() {
				return "", errors.New("queue full")
			}
			return fmt.Sprintf("j%d", n.Add(1)), nil
		},
		MinInterval: time.Millisecond,
	})
	defer s.Stop()
	s.Start()
	sched, err := s.Add("", testSpec(7), 3*time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}

	waitFor := func(pred func(Schedule) bool, what string) Schedule {
		deadline := time.Now().Add(5 * time.Second)
		for {
			got, err := s.Get(sched.ID)
			if err != nil {
				t.Fatal(err)
			}
			if pred(got) {
				return got
			}
			if time.Now().After(deadline) {
				t.Fatalf("timeout waiting for %s: %+v", what, got)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitFor(func(g Schedule) bool { return g.LastError != "" }, "a recorded error")
	fail.Store(false)
	got := waitFor(func(g Schedule) bool { return g.Submissions > 0 }, "a success")
	if got.LastError != "" {
		t.Fatalf("success did not clear LastError: %+v", got)
	}
}

// TestDurationJSON: the wire form round-trips strings and accepts
// numeric seconds.
func TestDurationJSON(t *testing.T) {
	b, err := json.Marshal(Duration(90 * time.Second))
	if err != nil || string(b) != `"1m30s"` {
		t.Fatalf("Marshal = %s, %v", b, err)
	}
	var d Duration
	if err := json.Unmarshal([]byte(`"250ms"`), &d); err != nil || time.Duration(d) != 250*time.Millisecond {
		t.Fatalf("Unmarshal string = %v, %v", d, err)
	}
	if err := json.Unmarshal([]byte(`2.5`), &d); err != nil || time.Duration(d) != 2500*time.Millisecond {
		t.Fatalf("Unmarshal number = %v, %v", d, err)
	}
	if err := json.Unmarshal([]byte(`"soon"`), &d); err == nil {
		t.Fatal("bad duration string accepted")
	}
}
