// Package recur schedules recurring campaign submissions: a registered
// spec is resubmitted to the job manager on a fixed interval with
// optional jitter. The scheduler never executes anything itself — each
// tick is an ordinary submission, so deduplication, quotas and the
// content-addressed store apply unchanged. In particular an unchanged
// recurring spec hashes to the same key every tick, making every
// resubmission after the first a pure cache hit with zero backend runs:
// recurrence is a liveness property ("this result stays fresh and
// auditable"), never a source of new bytes.
//
// Lifecycle mirrors the daemon's: Start launches one goroutine per
// schedule, Stop cancels them all and waits. Persistence is delegated
// through the OnChange hook (the daemon journals add/delete records)
// and Restore (journal replay re-registers surviving schedules under
// their original IDs).
package recur

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/engine"
)

// Errors reported by the scheduler.
var (
	// ErrNotFound reports an unknown schedule ID.
	ErrNotFound = errors.New("recur: no such schedule")
	// ErrClosed rejects registrations after Stop.
	ErrClosed = errors.New("recur: scheduler stopped")
)

// Duration marshals as a Go duration string ("90s", "1h30m") and
// unmarshals from either that form or a bare number of seconds — the
// wire type of the /v1/schedules interval fields.
type Duration time.Duration

// MarshalJSON renders the duration as a string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "30s"-style strings and numeric seconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("recur: bad duration %q: %v", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var secs float64
	if err := json.Unmarshal(b, &secs); err != nil {
		return err
	}
	*d = Duration(time.Duration(secs * float64(time.Second)))
	return nil
}

// Schedule is one recurring registration, shaped for the /v1/schedules
// wire (the Spec is echoed back so a GET round-trips the registration).
type Schedule struct {
	ID       string              `json:"id"`
	Tenant   string              `json:"tenant,omitempty"`
	Hash     string              `json:"hash"`
	Spec     engine.CampaignSpec `json:"spec"`
	Interval Duration            `json:"interval"`
	Jitter   Duration            `json:"jitter,omitempty"`

	CreatedAt time.Time `json:"created_at"`
	// Submissions counts ticks that reached the job manager since this
	// process started (not persisted across restarts).
	Submissions int64 `json:"submissions"`
	// LastJob is the job ID of the most recent successful submission.
	LastJob string `json:"last_job,omitempty"`
	// LastError is the most recent submission failure, cleared by the
	// next success.
	LastError string `json:"last_error,omitempty"`
}

// Op tags an OnChange notification.
type Op string

// OnChange operations.
const (
	OpAdd    Op = "add"
	OpDelete Op = "delete"
)

// SubmitFunc submits one spec on behalf of tenant, returning the job
// ID. Every scheduler tick goes through it.
type SubmitFunc func(tenant string, spec engine.CampaignSpec) (jobID string, err error)

// Config parameterizes a Scheduler.
type Config struct {
	// Submit handles each tick's submission. Required.
	Submit SubmitFunc
	// MinInterval floors schedule intervals (registration with a
	// smaller one fails). 0 selects 1s.
	MinInterval time.Duration
	// OnChange, when non-nil, observes successful Add and Remove calls
	// — the daemon's journal hook. Called synchronously without
	// scheduler locks held; Restore never triggers it.
	OnChange func(op Op, s Schedule)
}

// Scheduler owns the schedule table and the per-schedule tick
// goroutines.
type Scheduler struct {
	cfg Config

	mu      sync.Mutex
	entries map[string]*entry
	order   []string // registration order for List
	seq     int
	started bool
	closed  bool
	wg      sync.WaitGroup
	stopAll chan struct{}
}

type entry struct {
	sched Schedule
	stop  chan struct{} // closed by Remove
}

// New returns a scheduler; call Start to begin ticking and Stop to shut
// down.
func New(cfg Config) *Scheduler {
	if cfg.Submit == nil {
		panic("recur: Config.Submit is required")
	}
	if cfg.MinInterval <= 0 {
		cfg.MinInterval = time.Second
	}
	return &Scheduler{cfg: cfg, entries: make(map[string]*entry), stopAll: make(chan struct{})}
}

// Add registers a spec for recurring submission and (when the scheduler
// is started) begins ticking it. The first submission happens one
// interval after registration, not immediately — the registering client
// typically just submitted the spec itself.
func (s *Scheduler) Add(tenant string, spec engine.CampaignSpec, interval, jitter time.Duration) (Schedule, error) {
	if err := spec.Validate(); err != nil {
		return Schedule{}, err
	}
	hash, err := spec.Hash()
	if err != nil {
		return Schedule{}, err
	}
	if interval < s.cfg.MinInterval {
		return Schedule{}, fmt.Errorf("recur: interval %s below minimum %s", interval, s.cfg.MinInterval)
	}
	if jitter < 0 {
		return Schedule{}, fmt.Errorf("recur: negative jitter")
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Schedule{}, ErrClosed
	}
	s.seq++
	e := &entry{
		sched: Schedule{
			ID: fmt.Sprintf("s%d", s.seq), Tenant: tenant, Hash: hash, Spec: spec,
			Interval: Duration(interval), Jitter: Duration(jitter), CreatedAt: time.Now(),
		},
		stop: make(chan struct{}),
	}
	s.entries[e.sched.ID] = e
	s.order = append(s.order, e.sched.ID)
	snap := e.sched
	if s.started {
		s.wg.Add(1)
		go s.loop(e)
	}
	s.mu.Unlock()
	if s.cfg.OnChange != nil {
		s.cfg.OnChange(OpAdd, snap)
	}
	return snap, nil
}

// Restore re-registers a journaled schedule under its original ID
// without notifying OnChange (the journal already has it). The ID
// sequence advances past restored IDs so new registrations never
// collide.
func (s *Scheduler) Restore(sched Schedule) error {
	if err := sched.Spec.Validate(); err != nil {
		return err
	}
	hash, err := sched.Spec.Hash()
	if err != nil {
		return err
	}
	if sched.ID == "" {
		return fmt.Errorf("recur: restore: schedule without id")
	}
	if time.Duration(sched.Interval) < s.cfg.MinInterval {
		sched.Interval = Duration(s.cfg.MinInterval)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, dup := s.entries[sched.ID]; dup {
		return fmt.Errorf("recur: restore: schedule %q already exists", sched.ID)
	}
	var n int
	if _, err := fmt.Sscanf(sched.ID, "s%d", &n); err == nil && n > s.seq {
		s.seq = n
	}
	sched.Hash = hash
	sched.Submissions, sched.LastJob, sched.LastError = 0, "", ""
	if sched.CreatedAt.IsZero() {
		sched.CreatedAt = time.Now()
	}
	e := &entry{sched: sched, stop: make(chan struct{})}
	s.entries[sched.ID] = e
	s.order = append(s.order, sched.ID)
	if s.started {
		s.wg.Add(1)
		go s.loop(e)
	}
	return nil
}

// Remove deletes a schedule and stops its ticks.
func (s *Scheduler) Remove(id string) error {
	s.mu.Lock()
	e, ok := s.entries[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	delete(s.entries, id)
	for i, oid := range s.order {
		if oid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	close(e.stop)
	snap := e.sched
	s.mu.Unlock()
	if s.cfg.OnChange != nil {
		s.cfg.OnChange(OpDelete, snap)
	}
	return nil
}

// Get returns one schedule's current state.
func (s *Scheduler) Get(id string) (Schedule, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[id]
	if !ok {
		return Schedule{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return e.sched, nil
}

// List snapshots every schedule in registration order.
func (s *Scheduler) List() []Schedule {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Schedule, 0, len(s.entries))
	for _, id := range s.order {
		out = append(out, s.entries[id].sched)
	}
	return out
}

// ListTenant snapshots one tenant's schedules in registration order.
func (s *Scheduler) ListTenant(tenant string) []Schedule {
	all := s.List()
	out := all[:0]
	for _, sched := range all {
		if sched.Tenant == tenant {
			out = append(out, sched)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CreatedAt.Before(out[j].CreatedAt) })
	return out
}

// Start launches the tick goroutines for every registered schedule.
// Idempotent; schedules added later start ticking immediately.
func (s *Scheduler) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started || s.closed {
		return
	}
	s.started = true
	for _, e := range s.entries {
		s.wg.Add(1)
		go s.loop(e)
	}
}

// Stop halts all ticking, waits for in-flight ticks to finish and
// rejects further registrations. Safe to call more than once.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	close(s.stopAll)
	s.mu.Unlock()
	s.wg.Wait()
}

// loop ticks one schedule until it is removed or the scheduler stops.
func (s *Scheduler) loop(e *entry) {
	defer s.wg.Done()
	for {
		d := time.Duration(e.sched.Interval)
		if j := time.Duration(e.sched.Jitter); j > 0 {
			d += time.Duration(rand.Int63n(int64(j) + 1))
		}
		t := time.NewTimer(d)
		select {
		case <-s.stopAll:
			t.Stop()
			return
		case <-e.stop:
			t.Stop()
			return
		case <-t.C:
		}
		jobID, err := s.cfg.Submit(e.sched.Tenant, e.sched.Spec)
		s.mu.Lock()
		if err != nil {
			e.sched.LastError = err.Error()
		} else {
			e.sched.Submissions++
			e.sched.LastJob = jobID
			e.sched.LastError = ""
		}
		s.mu.Unlock()
	}
}
