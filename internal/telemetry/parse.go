package telemetry

import (
	"fmt"
	"strconv"
	"strings"
)

// ParsedSample is one sample line from a parsed exposition.
type ParsedSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Exposition is a parsed Prometheus text scrape — the in-repo validator
// the CI smoke check and integration tests use instead of external
// tooling.
type Exposition struct {
	Samples []ParsedSample
	Types   map[string]string // family name -> counter|gauge|histogram|...
}

// Value returns the first sample with the given name whose labels are a
// superset of want (nil matches any labels).
func (e *Exposition) Value(name string, want map[string]string) (float64, bool) {
	for _, s := range e.Samples {
		if s.Name != name {
			continue
		}
		match := true
		for k, v := range want {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

// Has reports whether the metric is present: either declared as a
// family (# TYPE line — a labeled vec with no series yet still counts
// as exported) or appearing as a sample.
func (e *Exposition) Has(name string) bool {
	if _, ok := e.Types[name]; ok {
		return true
	}
	_, ok := e.Value(name, nil)
	return ok
}

// Parse validates data as Prometheus text exposition format and returns
// the samples. Any malformed line fails the whole parse — this is a
// conformance check, not a lenient scraper.
func Parse(data []byte) (*Exposition, error) {
	e := &Exposition{Types: make(map[string]string)}
	for i, line := range strings.Split(string(data), "\n") {
		lineno := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && (fields[1] == "HELP" || fields[1] == "TYPE") {
				if len(fields) < 3 || !validName(fields[2]) {
					return nil, fmt.Errorf("telemetry: line %d: malformed %s comment", lineno, fields[1])
				}
				if fields[1] == "TYPE" {
					if len(fields) != 4 {
						return nil, fmt.Errorf("telemetry: line %d: TYPE wants exactly one type", lineno)
					}
					switch fields[3] {
					case "counter", "gauge", "histogram", "summary", "untyped":
					default:
						return nil, fmt.Errorf("telemetry: line %d: unknown type %q", lineno, fields[3])
					}
					e.Types[fields[2]] = fields[3]
				}
			}
			continue // other comments are free-form
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("telemetry: line %d: %v", lineno, err)
		}
		e.Samples = append(e.Samples, s)
	}
	return e, nil
}

func parseSample(line string) (ParsedSample, error) {
	s := ParsedSample{Labels: map[string]string{}}
	rest := line
	// Metric name runs up to '{' or whitespace.
	end := strings.IndexAny(rest, "{ \t")
	if end < 0 {
		return s, fmt.Errorf("sample without value: %q", line)
	}
	s.Name = rest[:end]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[end:]
	if rest[0] == '{' {
		var err error
		rest, err = parseLabels(rest, s.Labels)
		if err != nil {
			return s, err
		}
	}
	fields := strings.Fields(rest)
	if len(fields) != 1 && len(fields) != 2 { // value [timestamp]
		return s, fmt.Errorf("expected value after series: %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("invalid sample value %q", fields[0])
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("invalid timestamp %q", fields[1])
		}
	}
	return s, nil
}

// parseLabels consumes a {name="value",...} block, returning the
// remainder of the line.
func parseLabels(rest string, out map[string]string) (string, error) {
	rest = rest[1:] // skip '{'
	for {
		rest = strings.TrimLeft(rest, " \t")
		if rest == "" {
			return "", fmt.Errorf("unterminated label block")
		}
		if rest[0] == '}' {
			return rest[1:], nil
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return "", fmt.Errorf("label without '='")
		}
		name := strings.TrimSpace(rest[:eq])
		if !validLabelName(name) {
			return "", fmt.Errorf("invalid label name %q", name)
		}
		rest = rest[eq+1:]
		if rest == "" || rest[0] != '"' {
			return "", fmt.Errorf("label value for %q not quoted", name)
		}
		rest = rest[1:]
		var val strings.Builder
		for {
			if rest == "" {
				return "", fmt.Errorf("unterminated label value for %q", name)
			}
			c := rest[0]
			if c == '"' {
				rest = rest[1:]
				break
			}
			if c == '\\' {
				if len(rest) < 2 {
					return "", fmt.Errorf("dangling escape in label %q", name)
				}
				switch rest[1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return "", fmt.Errorf("bad escape \\%c in label %q", rest[1], name)
				}
				rest = rest[2:]
				continue
			}
			val.WriteByte(c)
			rest = rest[1:]
		}
		out[name] = val.String()
		rest = strings.TrimLeft(rest, " \t")
		if rest != "" && rest[0] == ',' {
			rest = rest[1:]
		}
	}
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
