// Package telemetry is a dependency-free metrics registry speaking the
// Prometheus text exposition format (version 0.0.4). It exists because
// the module deliberately has zero external requires: the subset of the
// format dlsimd needs — counters, gauges, histograms, with labels — is
// small enough to hand-roll, and a scrape must never perturb the
// deterministic simulation results it observes.
//
// Metrics are registered once at startup and updated via atomics; a
// scrape takes a point-in-time snapshot and renders families sorted by
// name with series sorted by label values, so consecutive scrapes of an
// idle process are byte-identical. The package also ships Parse, a
// validating reader for the same format, used by the CI smoke check and
// the integration tests to assert a live daemon's /metrics output
// actually parses without external tooling.
package telemetry

import (
	"bufio"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefDurationBuckets are histogram bounds (seconds) sized for request
// and campaign latencies: 1ms to ~100s in roughly 3x steps.
var DefDurationBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100}

// Registry holds named metric families. All methods are safe for
// concurrent use; registering the same name twice panics (registration
// is startup-time wiring, not a runtime path).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // sorted lazily at scrape time
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

type family struct {
	name   string
	help   string
	typ    string // "counter" | "gauge" | "histogram"
	labels []string

	mu     sync.Mutex
	series map[string]renderer // by canonical label-value key
	order  []string            // sorted lazily at scrape time

	sample func() []Sample // for *Func families; nil otherwise
}

// renderer writes one series' sample lines.
type renderer interface {
	render(w *bufio.Writer, name, labelstr string)
}

func (r *Registry) register(name, help, typ string, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic("telemetry: duplicate metric " + name)
	}
	f := &family{name: name, help: help, typ: typ, labels: labels, series: make(map[string]renderer)}
	r.families[name] = f
	r.names = nil
	return f
}

// Counter is a monotonically increasing sample.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (must be ≥ 0 for the exposition to stay a counter).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) render(w *bufio.Writer, name, labelstr string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labelstr, c.v.Load())
}

// Counter registers an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, "counter", nil)
	c := &Counter{}
	f.series[""] = c
	return c
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, "counter", labels)}
}

// With returns (creating on first use) the counter for the given label
// values, which must match the registered label names in order.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.f.labels) {
		panic("telemetry: label count mismatch for " + v.f.name)
	}
	key := labelString(v.f.labels, values)
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if c, ok := v.f.series[key]; ok {
		return c.(*Counter)
	}
	c := &Counter{}
	v.f.series[key] = c
	v.f.order = nil
	return c
}

// Gauge is a sample that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by d (may be negative).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) render(w *bufio.Writer, name, labelstr string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labelstr, formatFloat(g.Value()))
}

// Gauge registers an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, "gauge", nil)
	g := &Gauge{}
	f.series[""] = g
	return g
}

// Sample is one series produced by a *Func family at scrape time.
type Sample struct {
	Values []string // label values, matching the registered label names
	V      float64
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, "gauge", nil)
	f.sample = func() []Sample { return []Sample{{V: fn()}} }
}

// GaugeSetFunc registers a labeled gauge family whose full series set
// is computed at scrape time — e.g. jobs-by-state sampled from the
// manager. Series render sorted by label values.
func (r *Registry) GaugeSetFunc(name, help string, labels []string, fn func() []Sample) {
	f := r.register(name, help, "gauge", labels)
	f.sample = fn
}

// Histogram counts observations into cumulative buckets.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // one per bound; +Inf is implied by count
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
		}
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

func (h *Histogram) render(w *bufio.Writer, name, labelstr string) {
	// _bucket series carry an le label appended after the series labels.
	inner := strings.TrimSuffix(strings.TrimPrefix(labelstr, "{"), "}")
	for i, b := range h.bounds {
		le := formatFloat(b)
		lbl := `{le="` + le + `"}`
		if inner != "" {
			lbl = "{" + inner + `,le="` + le + `"}`
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, lbl, h.counts[i].Load())
	}
	lbl := `{le="+Inf"}`
	if inner != "" {
		lbl = "{" + inner + `,le="+Inf"}`
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, lbl, h.count.Load())
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labelstr, formatFloat(math.Float64frombits(h.sum.Load())))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labelstr, h.count.Load())
}

// Histogram registers an unlabeled histogram with the given bucket
// upper bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, "histogram", nil)
	h := newHistogram(buckets)
	f.series[""] = h
	return h
}

// HistogramVec is a histogram family keyed by label values.
type HistogramVec struct {
	f       *family
	buckets []float64
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, "histogram", labels), buckets}
}

// With returns (creating on first use) the histogram for the given
// label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.f.labels) {
		panic("telemetry: label count mismatch for " + v.f.name)
	}
	key := labelString(v.f.labels, values)
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if h, ok := v.f.series[key]; ok {
		return h.(*Histogram)
	}
	h := newHistogram(v.buckets)
	v.f.series[key] = h
	v.f.order = nil
	return h
}

// WriteTo renders the full exposition, families sorted by name and
// series sorted by label values.
func (r *Registry) WriteTo(w *bufio.Writer) {
	r.mu.Lock()
	if r.names == nil {
		for name := range r.families {
			r.names = append(r.names, name)
		}
		sort.Strings(r.names)
	}
	names := r.names
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		if f.sample != nil {
			samples := f.sample()
			sort.Slice(samples, func(i, j int) bool {
				return labelString(f.labels, samples[i].Values) < labelString(f.labels, samples[j].Values)
			})
			for _, s := range samples {
				fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labels, s.Values), formatFloat(s.V))
			}
			continue
		}
		f.mu.Lock()
		if f.order == nil {
			for k := range f.series {
				f.order = append(f.order, k)
			}
			sort.Strings(f.order)
		}
		order := append([]string(nil), f.order...)
		series := make([]renderer, len(order))
		for i, k := range order {
			series[i] = f.series[k]
		}
		f.mu.Unlock()
		for i, s := range series {
			s.render(w, f.name, order[i])
		}
	}
}

// Handler serves the exposition over HTTP.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		bw := bufio.NewWriter(w)
		r.WriteTo(bw)
		bw.Flush()
	})
}

// labelString renders {a="x",b="y"} for the given names and values, or
// "" when there are no labels. It is the canonical series key, so equal
// label values always address the same series.
func labelString(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a sample value: integral floats without an
// exponent ("42"), everything else in Go's shortest form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
