package telemetry

import (
	"bufio"
	"bytes"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func render(r *Registry) string {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	r.WriteTo(w)
	w.Flush()
	return buf.String()
}

// TestExpositionShape: every family renders HELP+TYPE and deterministic,
// sorted series, and the output round-trips through the in-repo parser.
func TestExpositionShape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Add(3)
	cv := r.CounterVec("test_http_total", "labeled counter", "route", "code")
	cv.With("/v1/jobs", "200").Add(7)
	cv.With("/v1/jobs", "400").Inc()
	cv.With("/healthz", "200").Inc()
	g := r.Gauge("test_depth", "a gauge")
	g.Set(2.5)
	r.GaugeFunc("test_now", "sampled gauge", func() float64 { return 42 })
	r.GaugeSetFunc("test_jobs", "jobs by state", []string{"state"}, func() []Sample {
		return []Sample{{Values: []string{"running"}, V: 1}, {Values: []string{"queued"}, V: 3}}
	})
	h := r.Histogram("test_latency_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	out := render(r)
	if out != render(r) {
		t.Fatal("two idle scrapes differ")
	}

	e, err := Parse([]byte(out))
	if err != nil {
		t.Fatalf("own exposition does not parse: %v\n%s", err, out)
	}
	checks := []struct {
		name   string
		labels map[string]string
		want   float64
	}{
		{"test_total", nil, 3},
		{"test_http_total", map[string]string{"route": "/v1/jobs", "code": "200"}, 7},
		{"test_http_total", map[string]string{"route": "/healthz"}, 1},
		{"test_depth", nil, 2.5},
		{"test_now", nil, 42},
		{"test_jobs", map[string]string{"state": "queued"}, 3},
		{"test_latency_seconds_bucket", map[string]string{"le": "0.1"}, 1},
		{"test_latency_seconds_bucket", map[string]string{"le": "1"}, 2},
		{"test_latency_seconds_bucket", map[string]string{"le": "+Inf"}, 3},
		{"test_latency_seconds_count", nil, 3},
	}
	for _, c := range checks {
		got, ok := e.Value(c.name, c.labels)
		if !ok || got != c.want {
			t.Errorf("%s%v = %v (present %v), want %v", c.name, c.labels, got, ok, c.want)
		}
	}
	if sum, _ := e.Value("test_latency_seconds_sum", nil); sum < 5.54 || sum > 5.56 {
		t.Errorf("histogram sum = %v, want ≈5.55", sum)
	}
	if e.Types["test_total"] != "counter" || e.Types["test_latency_seconds"] != "histogram" {
		t.Errorf("TYPE lines missing or wrong: %v", e.Types)
	}

	// Families sorted by name; series within a vec sorted by labels.
	idx := func(s string) int { return strings.Index(out, s) }
	if !(idx("# TYPE test_depth") < idx("# TYPE test_http_total") && idx("# TYPE test_http_total") < idx("# TYPE test_total")) {
		t.Error("families not sorted by name")
	}
	if !(idx(`route="/healthz"`) < idx(`code="200",le=`) || idx(`route="/healthz"`) < idx(`route="/v1/jobs"`)) {
		t.Error("vec series not sorted by label values")
	}
}

// TestHandler: the HTTP endpoint serves the exposition with the
// canonical content type.
func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total", "x").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	if _, err := Parse(rec.Body.Bytes()); err != nil {
		t.Fatal(err)
	}
}

// TestLabelEscaping: quotes, backslashes and newlines in label values
// survive a render→parse round trip.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	ugly := `quo"te\back` + "\nnewline"
	r.CounterVec("test_escape_total", "x", "v").With(ugly).Inc()
	e, err := Parse([]byte(render(r)))
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := e.Value("test_escape_total", map[string]string{"v": ugly}); !ok || got != 1 {
		t.Fatalf("escaped label lost: %v %v", got, ok)
	}
}

// TestParseRejectsMalformed: the validator is strict.
func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"no_value_here",
		"1leading_digit 3",
		`m{l="unterminated} 1`,
		`m{l=unquoted} 1`,
		"m not_a_number",
		"# TYPE m flavor",
		`m{l="x"\q"} 1`,
	}
	for _, line := range bad {
		if _, err := Parse([]byte(line + "\n")); err == nil {
			t.Errorf("accepted malformed line %q", line)
		}
	}
	ok := "# HELP m help text\n# TYPE m counter\nm 1\nm2{a=\"b\"} 2.5 1700000000\n"
	if _, err := Parse([]byte(ok)); err != nil {
		t.Errorf("rejected valid exposition: %v", err)
	}
}

// TestConcurrentUpdates: hammer counters/gauges/histograms from many
// goroutines while scraping; totals must come out exact (run with -race).
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_c_total", "x")
	cv := r.CounterVec("test_cv_total", "x", "k")
	g := r.Gauge("test_g", "x")
	h := r.Histogram("test_h", "x", []float64{10, 100})
	var wg sync.WaitGroup
	const gor, per = 8, 1000
	for i := 0; i < gor; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; n < per; n++ {
				c.Inc()
				cv.With([]string{"a", "b"}[n%2]).Inc()
				g.Add(1)
				h.Observe(float64(n % 200))
				if n%100 == 0 {
					render(r)
				}
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != gor*per {
		t.Fatalf("counter %d, want %d", c.Value(), gor*per)
	}
	if g.Value() != gor*per {
		t.Fatalf("gauge %v, want %d", g.Value(), gor*per)
	}
	if h.Count() != gor*per {
		t.Fatalf("histogram count %d, want %d", h.Count(), gor*per)
	}
	e, err := Parse([]byte(render(r)))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := e.Value("test_cv_total", map[string]string{"k": "a"})
	b, _ := e.Value("test_cv_total", map[string]string{"k": "b"})
	if int64(a+b) != gor*per {
		t.Fatalf("vec total %v, want %d", a+b, gor*per)
	}
}
