package journal

import (
	"errors"
	"os"
	"strings"
	"testing"
	"time"
)

// A failed fsync must surface to the Append caller — the daemon's
// observer path decides what to do with it — never be swallowed as a
// successful durable append.
func TestAppendSurfacesSyncFailure(t *testing.T) {
	j, recs, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}

	boom := errors.New("disk on fire")
	orig := syncFile
	syncFile = func(*os.File) error { return boom }
	defer func() { syncFile = orig }()

	err = j.Append(Record{Kind: KindJob, Time: time.Now(), ID: "j1", Hash: "h"})
	if !errors.Is(err, boom) {
		t.Fatalf("Append err = %v, want wrapped sync failure", err)
	}
	if err == nil || !strings.Contains(err.Error(), "journal: sync") {
		t.Fatalf("Append err = %v, want journal: sync prefix", err)
	}

	// The record must not be replayable state either: a failed sync is
	// an unknown-durability append, so it stays out of the in-memory
	// sequence a compaction would rewrite as trusted.
	if got := len(j.Records()); got != 0 {
		t.Fatalf("failed append left %d in-memory records", got)
	}

	// With the disk healthy again, appends work.
	syncFile = orig
	if err := j.Append(Record{Kind: KindJob, Time: time.Now(), ID: "j2", Hash: "h"}); err != nil {
		t.Fatal(err)
	}
	if got := len(j.Records()); got != 1 {
		t.Fatalf("records after recovery = %d, want 1", got)
	}
}
