package journal

import (
	"bytes"
	"testing"
	"time"
)

// FuzzDecodeLine mirrors the cache codec's fuzzing discipline for the
// journal's line framing: arbitrary bytes must never decode into a
// record that round-trips differently, and a valid line must always
// round-trip exactly.
func FuzzDecodeLine(f *testing.F) {
	spec := testSpec(1)
	rec := Record{Kind: KindJob, Time: time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC), ID: "j1", Tenant: "t", Spec: &spec}
	if line, err := encodeLine(rec); err == nil {
		f.Add(line[:len(line)-1])
	}
	if line, err := encodeLine(Record{Kind: KindState, Time: time.Now().UTC(), ID: "j1", State: "done"}); err == nil {
		f.Add(line[:len(line)-1])
	}
	f.Add([]byte("0000000000000000 {}"))
	f.Add([]byte("not a journal line"))
	f.Fuzz(func(t *testing.T, line []byte) {
		rec, err := DecodeLine(line)
		if err != nil {
			return
		}
		// Whatever decoded must re-encode to a line that decodes to the
		// same record (identity modulo JSON field ordering, which
		// encodeLine fixes by construction).
		out, err := encodeLine(rec)
		if err != nil {
			t.Fatalf("decoded record failed to re-encode: %v", err)
		}
		rec2, err := DecodeLine(out[:len(out)-1])
		if err != nil {
			t.Fatalf("re-encoded line failed to decode: %v", err)
		}
		b1, _ := encodeLine(rec)
		b2, _ := encodeLine(rec2)
		if !bytes.Equal(b1, b2) {
			t.Fatalf("round-trip drift:\n %q\n %q", b1, b2)
		}
	})
}

// FuzzReplay feeds arbitrary bytes through the whole-file replay path:
// it must never panic, and the reported good offset must end exactly at
// a line boundary whose prefix decodes cleanly.
func FuzzReplay(f *testing.F) {
	spec := testSpec(2)
	var seedFile bytes.Buffer
	for _, r := range []Record{
		{Kind: KindJob, Time: time.Now().UTC(), ID: "j1", Spec: &spec},
		{Kind: KindState, Time: time.Now().UTC(), ID: "j1", State: "running"},
	} {
		line, _ := encodeLine(r)
		seedFile.Write(line)
	}
	f.Add(seedFile.Bytes())
	f.Add(seedFile.Bytes()[:seedFile.Len()-3])
	f.Add([]byte("garbage\nmore garbage\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, good := decodeAll(data)
		if good > len(data) {
			t.Fatalf("good offset %d beyond input length %d", good, len(data))
		}
		if good > 0 && data[good-1] != '\n' {
			t.Fatalf("good offset %d does not end at a line boundary", good)
		}
		// Re-decoding the trusted prefix must reproduce the same records.
		recs2, good2 := decodeAll(data[:good])
		if good2 != good || len(recs2) != len(recs) {
			t.Fatalf("prefix re-decode drift: %d/%d records, %d/%d offset",
				len(recs2), len(recs), good2, good)
		}
		// Folding must never panic on any decoded sequence.
		Fold(recs)
	})
}
