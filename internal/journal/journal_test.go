package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/workload"
)

func testSpec(seed uint64) engine.CampaignSpec {
	return engine.CampaignSpec{
		Backend:      "sim",
		Techniques:   []string{"FAC2"},
		Ns:           []int64{128},
		Ps:           []int{2},
		Workload:     workload.Spec{Kind: "exponential", P1: 1},
		H:            0.5,
		Replications: 4,
		Seed:         seed,
	}
}

func jobRecord(id string, seed uint64, at time.Time) Record {
	spec := testSpec(seed)
	hash, _ := spec.Hash()
	return Record{Kind: KindJob, Time: at, ID: id, Tenant: "t1", Hash: hash, Spec: &spec}
}

func mustAppend(t *testing.T, j *Journal, recs ...Record) {
	t.Helper()
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
}

// TestAppendReplayRoundTrip pins the basic durability contract: every
// appended record comes back, in order, from a fresh Open of the same
// directory.
func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, recs, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	t0 := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	want := []Record{
		jobRecord("j1", 1, t0),
		{Kind: KindState, Time: t0.Add(time.Second), ID: "j1", State: "running"},
		{Kind: KindState, Time: t0.Add(2 * time.Second), ID: "j1", State: "done"},
		jobRecord("j2", 2, t0.Add(3*time.Second)),
		{Kind: KindState, Time: t0.Add(4 * time.Second), ID: "j2", State: "failed", Error: "boom"},
	}
	mustAppend(t, j, want...)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, got, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Kind != want[i].Kind || got[i].ID != want[i].ID ||
			got[i].State != want[i].State || got[i].Error != want[i].Error ||
			!got[i].Time.Equal(want[i].Time) {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	jobs, _ := Fold(got)
	if len(jobs) != 2 {
		t.Fatalf("folded %d jobs, want 2", len(jobs))
	}
	if jobs[0].State != "done" || !jobs[0].Terminal() {
		t.Errorf("j1 folded to %q", jobs[0].State)
	}
	if jobs[1].State != "failed" || jobs[1].Error != "boom" {
		t.Errorf("j2 folded to %q/%q", jobs[1].State, jobs[1].Error)
	}
}

// TestTornTailTruncated simulates a crash mid-append: a partial final
// line is discarded on Open, the good prefix replays, and subsequent
// appends produce a well-formed file.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now().UTC()
	mustAppend(t, j, jobRecord("j1", 1, t0), jobRecord("j2", 2, t0))
	j.Close()

	path := filepath.Join(dir, FileName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the file mid-way through the last line (no terminator).
	torn := data[:len(data)-7]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, recs, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ID != "j1" {
		t.Fatalf("replay after torn tail = %+v, want just j1", recs)
	}
	mustAppend(t, j2, jobRecord("j3", 3, t0))
	j2.Close()

	_, recs, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].ID != "j1" || recs[1].ID != "j3" {
		t.Fatalf("replay after heal = %+v, want [j1 j3]", recs)
	}
}

// TestCorruptionStopsReplay flips one byte in every position of a
// journaled line in turn and asserts replay never yields a record from
// the damaged line or past it — mirroring the cache codec's
// tamper-rejection discipline.
func TestCorruptionStopsReplay(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now().UTC()
	mustAppend(t, j,
		jobRecord("j1", 1, t0),
		Record{Kind: KindState, Time: t0, ID: "j1", State: "done"},
		jobRecord("j2", 2, t0),
	)
	j.Close()
	path := filepath.Join(dir, FileName)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	firstLineEnd := bytes.IndexByte(pristine, '\n') + 1

	for off := 0; off < firstLineEnd-1; off++ {
		data := append([]byte(nil), pristine...)
		data[off] ^= 0x40
		if bytes.Equal(data, pristine) {
			continue
		}
		recs, _ := decodeAll(data)
		if len(recs) != 0 {
			// Flips inside the first line must kill it and stop replay.
			t.Fatalf("flip at %d: replayed %d records from a damaged head", off, len(recs))
		}
	}

	// Damage in the middle line keeps the first record only.
	secondLineEnd := firstLineEnd + bytes.IndexByte(pristine[firstLineEnd:], '\n') + 1
	data := append([]byte(nil), pristine...)
	data[firstLineEnd+20] ^= 0x01
	recs, good := decodeAll(data)
	if len(recs) != 1 || recs[0].ID != "j1" {
		t.Fatalf("mid-file damage: replayed %+v, want just j1's job record", recs)
	}
	if good != firstLineEnd {
		t.Fatalf("good offset %d, want %d", good, firstLineEnd)
	}
	_ = secondLineEnd
}

// TestCompactKeepsLiveAndRecentTerminal pins the compaction policy:
// live jobs and schedules always survive, terminal jobs beyond the
// keep window are dropped, and the compacted file folds identically.
func TestCompactKeepsLiveAndRecentTerminal(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	// Five terminal jobs finishing in order, one live (running) job,
	// one schedule plus one deleted schedule.
	for i := 0; i < 5; i++ {
		id := string(rune('a' + i))
		mustAppend(t, j,
			jobRecord("jt-"+id, uint64(i+1), t0.Add(time.Duration(i)*time.Minute)),
			Record{Kind: KindState, Time: t0.Add(time.Duration(i)*time.Minute + 30*time.Second), ID: "jt-" + id, State: "done"},
		)
	}
	mustAppend(t, j,
		jobRecord("jlive", 99, t0.Add(time.Hour)),
		Record{Kind: KindState, Time: t0.Add(time.Hour), ID: "jlive", State: "running"},
	)
	spec := testSpec(7)
	mustAppend(t, j,
		Record{Kind: KindSchedule, Time: t0, ID: "s1", Tenant: "t1", Spec: &spec, Interval: time.Minute},
		Record{Kind: KindSchedule, Time: t0, ID: "s2", Tenant: "t1", Spec: &spec, Interval: time.Minute},
		Record{Kind: KindScheduleDelete, Time: t0, ID: "s2"},
	)

	if err := j.Compact(2); err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, recs, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	jobs, scheds := Fold(recs)
	var ids []string
	for _, v := range jobs {
		ids = append(ids, v.ID+":"+v.State)
	}
	want := []string{"jt-d:done", "jt-e:done", "jlive:running"}
	if len(ids) != len(want) {
		t.Fatalf("compacted jobs = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("compacted jobs = %v, want %v", ids, want)
		}
	}
	if len(scheds) != 1 || scheds[0].ID != "s1" || scheds[0].Interval != time.Minute {
		t.Fatalf("compacted schedules = %+v, want live s1 only", scheds)
	}
	// Spec survives compaction intact (hash-identical).
	wantHash, _ := testSpec(99).Hash()
	if jobs[2].Hash != wantHash {
		t.Errorf("live job hash %q, want %q", jobs[2].Hash, wantHash)
	}
	gotHash, err := jobs[2].Spec.Hash()
	if err != nil || gotHash != wantHash {
		t.Errorf("live job spec re-hash %q (%v), want %q", gotHash, err, wantHash)
	}
}

// TestScheduleFold pins schedule registration/deletion folding.
func TestScheduleFold(t *testing.T) {
	spec := testSpec(1)
	t0 := time.Now().UTC()
	recs := []Record{
		{Kind: KindSchedule, Time: t0, ID: "s1", Tenant: "a", Spec: &spec, Interval: 5 * time.Second, Jitter: time.Second},
		{Kind: KindSchedule, Time: t0, ID: "s2", Tenant: "b", Spec: &spec, Interval: time.Minute},
		{Kind: KindScheduleDelete, Time: t0, ID: "s1"},
		{Kind: KindScheduleDelete, Time: t0, ID: "unknown"},
	}
	_, scheds := Fold(recs)
	if len(scheds) != 1 || scheds[0].ID != "s2" || scheds[0].Tenant != "b" {
		t.Fatalf("folded schedules = %+v, want s2 only", scheds)
	}
}

// TestRejectsMalformedRecords pins validation of the line decoder.
func TestRejectsMalformedRecords(t *testing.T) {
	for _, line := range []string{
		"",
		"short",
		"00000000000000000000", // no space at offset 16
		"zzzzzzzzzzzzzzzz {\"kind\":\"job\",\"id\":\"x\"}",
		"0000000000000000 {\"kind\":\"job\",\"id\":\"x\"}",  // wrong checksum
		"af63bd4c8601b7df {\"kind\":\"nope\",\"id\":\"x\"}", // unknown kind (checksum also wrong)
	} {
		if _, err := DecodeLine([]byte(line)); err == nil {
			t.Errorf("DecodeLine(%q) accepted malformed input", line)
		}
	}
	// A well-formed line with an unknown kind: re-frame correctly.
	rec := Record{Kind: "mystery", ID: "x"}
	if line, err := encodeLine(rec); err == nil {
		if _, err := DecodeLine(line[:len(line)-1]); err == nil {
			t.Error("DecodeLine accepted unknown record kind")
		}
	}
	// And one without an ID.
	if line, err := encodeLine(Record{Kind: KindJob}); err == nil {
		if _, err := DecodeLine(line[:len(line)-1]); err == nil {
			t.Error("DecodeLine accepted record without id")
		}
	}
}

// TestAutoCompact pins that crossing the record threshold triggers an
// automatic rewrite instead of unbounded growth.
func TestAutoCompact(t *testing.T) {
	oldAt, oldKeep := autoCompactAt, autoCompactKeep
	autoCompactAt, autoCompactKeep = 40, 4
	defer func() { autoCompactAt, autoCompactKeep = oldAt, oldKeep }()

	dir := t.TempDir()
	j, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	t0 := time.Now().UTC()
	// Enough terminal jobs to cross autoCompactAt (2 records per job).
	for i := 0; i <= autoCompactAt; i++ {
		id := "j" + time.Duration(i).String()
		mustAppend(t, j,
			jobRecord(id, uint64(i), t0.Add(time.Duration(i))),
			Record{Kind: KindState, Time: t0.Add(time.Duration(i)), ID: id, State: "done"},
		)
	}
	if n := len(j.Records()); n >= autoCompactAt {
		t.Fatalf("journal grew to %d records; auto-compaction never ran", n)
	}
	// The kept window folds to the most recent terminal jobs only.
	jobs, _ := Fold(j.Records())
	if len(jobs) > autoCompactAt {
		t.Fatalf("folded %d jobs after auto-compaction", len(jobs))
	}
}
