// Package journal persists the dlsimd daemon's job and schedule
// lifecycle as an append-only, checksummed JSON Lines file — the
// durable record that lets a restarted daemon restore terminal job
// snapshots, re-enqueue work that was queued or running at crash time,
// and re-register recurring campaign schedules.
//
// Each line is one Record framed as
//
//	<16 hex digits of FNV-1a 64 over the payload> <compact JSON payload>\n
//
// The per-line checksum plus the whole-line framing give the same
// damage discipline as the binary result cache (internal/engine's
// cache codec): any torn, truncated or bit-flipped line is detected,
// never silently replayed. A torn tail — the expected artifact of a
// crash mid-append — is truncated away on Open so subsequent appends
// produce a well-formed file; a corrupt line in the middle of the file
// stops replay at the last good record (everything before it is
// trusted, nothing after it is).
//
// Compaction rewrites the file keeping only the records that still
// matter — live (non-terminal) jobs, the most recent N terminal jobs,
// and live schedules — using the same write-to-temp-then-rename
// discipline as internal/cache, so readers and crashes never observe a
// half-compacted journal.
//
// The journal records lifecycle metadata only. Campaign results live in
// the content-addressed result store; on recovery a re-enqueued job
// whose spec is cached re-materializes its results with zero backend
// runs, which is what makes crash recovery cheap.
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/engine"
)

// Kind discriminates journal records.
type Kind string

// Record kinds. Job and state records track one job's lifecycle;
// schedule records track recurring campaign registrations.
const (
	KindJob            Kind = "job"             // a job was submitted (carries the spec)
	KindState          Kind = "state"           // a job changed state
	KindSchedule       Kind = "schedule"        // a recurring schedule was registered
	KindScheduleDelete Kind = "schedule_delete" // a recurring schedule was removed
)

// Record is one journal line. Fields are populated per Kind: job
// records carry the identity (tenant, hash, spec); state records carry
// the transition; schedule records carry the recurrence.
type Record struct {
	Kind Kind      `json:"kind"`
	Time time.Time `json:"ts"`
	ID   string    `json:"id"`

	// KindJob / KindSchedule
	Tenant string               `json:"tenant,omitempty"`
	Hash   string               `json:"hash,omitempty"`
	Spec   *engine.CampaignSpec `json:"spec,omitempty"`

	// KindState
	State string `json:"state,omitempty"`
	Error string `json:"error,omitempty"`

	// KindSchedule
	Interval time.Duration `json:"interval,omitempty"`
	Jitter   time.Duration `json:"jitter,omitempty"`
}

// FileName is the journal's file name inside its directory.
const FileName = "journal.jsonl"

// autoCompactAt triggers an automatic compaction when the in-memory
// record count crosses this threshold; autoCompactKeep is the terminal
// job history retained by that compaction. Variables so tests can
// exercise the trigger without thousands of fsynced appends.
var (
	autoCompactAt   = 8192
	autoCompactKeep = 512
)

// syncFile is the fsync behind Append's durability guarantee — a
// variable so tests can force sync failures without a sick disk.
var syncFile = func(f *os.File) error { return f.Sync() }

// Journal is an open journal file. All methods are safe for concurrent
// use.
type Journal struct {
	dir  string
	path string

	mu   sync.Mutex
	f    *os.File
	recs []Record
}

// Open opens (creating if needed) the journal in dir and replays its
// existing records. A torn final line is truncated away; a corrupt
// line earlier in the file stops the replay there — recs holds every
// record up to the first damage, and the file is truncated to that
// point so future appends extend a well-formed log.
func Open(dir string) (j *Journal, recs []Record, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	path := filepath.Join(dir, FileName)
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	recs, good := decodeAll(data)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	if err := f.Truncate(int64(good)); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: truncate damaged tail: %w", err)
	}
	if _, err := f.Seek(int64(good), 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	return &Journal{dir: dir, path: path, f: f, recs: append([]Record(nil), recs...)}, recs, nil
}

// decodeAll parses data line by line, returning the records up to the
// first damaged line and the byte offset of the end of the last good
// line.
func decodeAll(data []byte) (recs []Record, good int) {
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // torn tail: no terminator
		}
		rec, err := DecodeLine(data[off : off+nl])
		if err != nil {
			break
		}
		recs = append(recs, rec)
		off += nl + 1
		good = off
	}
	return recs, good
}

// DecodeLine parses and verifies one journal line (without its
// trailing newline).
func DecodeLine(line []byte) (Record, error) {
	if len(line) < 18 || line[16] != ' ' {
		return Record{}, fmt.Errorf("journal: malformed line framing")
	}
	var want uint64
	if _, err := fmt.Sscanf(string(line[:16]), "%016x", &want); err != nil {
		return Record{}, fmt.Errorf("journal: malformed checksum: %w", err)
	}
	payload := line[17:]
	h := fnv.New64a()
	h.Write(payload)
	if h.Sum64() != want {
		return Record{}, fmt.Errorf("journal: checksum mismatch")
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, fmt.Errorf("journal: decode record: %w", err)
	}
	switch rec.Kind {
	case KindJob, KindState, KindSchedule, KindScheduleDelete:
	default:
		return Record{}, fmt.Errorf("journal: unknown record kind %q", rec.Kind)
	}
	if rec.ID == "" {
		return Record{}, fmt.Errorf("journal: record without id")
	}
	return rec, nil
}

// encodeLine renders one record in the journal's line framing,
// including the trailing newline.
func encodeLine(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("journal: encode record: %w", err)
	}
	h := fnv.New64a()
	h.Write(payload)
	line := make([]byte, 0, 18+len(payload))
	line = append(line, fmt.Sprintf("%016x ", h.Sum64())...)
	line = append(line, payload...)
	line = append(line, '\n')
	return line, nil
}

// Append durably appends one record: the line is written and fsynced
// before Append returns, so a record the caller observed as journaled
// survives an immediate power cut. Crossing the auto-compaction
// threshold triggers a compaction keeping the default terminal
// history.
func (j *Journal) Append(rec Record) error {
	line, err := encodeLine(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("journal: closed")
	}
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if err := syncFile(j.f); err != nil {
		// A failed fsync means the record's durability is unknown: the
		// line may or may not survive a crash. Surface it — the caller
		// (the daemon's journal observer) decides whether to degrade
		// health, count it, or drop it; silently pretending the append
		// was durable is the one wrong answer.
		return fmt.Errorf("journal: sync: %w", err)
	}
	j.recs = append(j.recs, rec)
	if len(j.recs) >= autoCompactAt {
		return j.compactLocked(autoCompactKeep)
	}
	return nil
}

// Records returns a copy of the journal's current record sequence.
func (j *Journal) Records() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Record(nil), j.recs...)
}

// Close releases the journal's file handle. Safe to call more than
// once.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// JobView is one job's state folded from the journal: the submitted
// spec plus the latest observed transition.
type JobView struct {
	ID     string
	Tenant string
	Hash   string
	Spec   engine.CampaignSpec
	State  string // last journaled state; "queued" when only the job record exists
	Error  string

	Created  time.Time
	Started  time.Time
	Finished time.Time
}

// Terminal reports whether the view's last journaled state is final.
func (v JobView) Terminal() bool {
	return v.State == "done" || v.State == "failed" || v.State == "cancelled"
}

// ScheduleView is one live recurring schedule folded from the journal.
type ScheduleView struct {
	ID       string
	Tenant   string
	Hash     string
	Spec     engine.CampaignSpec
	Interval time.Duration
	Jitter   time.Duration
	Created  time.Time
}

// Fold replays a record sequence into per-job and per-schedule views:
// job records create views, state records advance them, and
// schedule_delete records drop schedules. Records referencing unknown
// IDs (their job record fell to damage or compaction) are skipped.
// Jobs are returned in first-submission order, schedules in
// registration order.
func Fold(recs []Record) ([]JobView, []ScheduleView) {
	jobs := make(map[string]*JobView)
	var jobOrder []string
	scheds := make(map[string]*ScheduleView)
	var schedOrder []string
	for _, r := range recs {
		switch r.Kind {
		case KindJob:
			if r.Spec == nil {
				continue
			}
			if _, ok := jobs[r.ID]; ok {
				continue
			}
			jobs[r.ID] = &JobView{
				ID: r.ID, Tenant: r.Tenant, Hash: r.Hash,
				Spec: *r.Spec, State: "queued", Created: r.Time,
			}
			jobOrder = append(jobOrder, r.ID)
		case KindState:
			v, ok := jobs[r.ID]
			if !ok {
				continue
			}
			v.State = r.State
			v.Error = r.Error
			switch r.State {
			case "running":
				v.Started = r.Time
			case "done", "failed", "cancelled":
				v.Finished = r.Time
			}
		case KindSchedule:
			if r.Spec == nil {
				continue
			}
			if _, ok := scheds[r.ID]; ok {
				continue
			}
			scheds[r.ID] = &ScheduleView{
				ID: r.ID, Tenant: r.Tenant, Hash: r.Hash,
				Spec: *r.Spec, Interval: r.Interval, Jitter: r.Jitter, Created: r.Time,
			}
			schedOrder = append(schedOrder, r.ID)
		case KindScheduleDelete:
			delete(scheds, r.ID)
		}
	}
	jv := make([]JobView, 0, len(jobOrder))
	for _, id := range jobOrder {
		jv = append(jv, *jobs[id])
	}
	sv := make([]ScheduleView, 0, len(schedOrder))
	for _, id := range schedOrder {
		if v, ok := scheds[id]; ok {
			sv = append(sv, *v)
		}
	}
	return jv, sv
}

// Compact rewrites the journal keeping only the records that still
// matter: every live (non-terminal) job, the keepTerminal most recently
// finished terminal jobs, and every live schedule. Each surviving job
// is re-emitted as its job record plus one state record carrying the
// folded final state, so a compacted journal folds to the same views as
// the original. The rewrite is atomic (temp file + rename); on any
// failure the previous journal remains intact.
func (j *Journal) Compact(keepTerminal int) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.compactLocked(keepTerminal)
}

func (j *Journal) compactLocked(keepTerminal int) error {
	if j.f == nil {
		return fmt.Errorf("journal: closed")
	}
	jobs, scheds := Fold(j.recs)

	// Partition and rank terminal jobs by finish time, newest first.
	var live, terminal []JobView
	for _, v := range jobs {
		if v.Terminal() {
			terminal = append(terminal, v)
		} else {
			live = append(live, v)
		}
	}
	sort.SliceStable(terminal, func(a, b int) bool {
		return terminal[a].Finished.After(terminal[b].Finished)
	})
	if keepTerminal < 0 {
		keepTerminal = 0
	}
	if len(terminal) > keepTerminal {
		terminal = terminal[:keepTerminal]
	}
	// Restore submission order across the kept set.
	kept := append(append([]JobView(nil), live...), terminal...)
	sort.SliceStable(kept, func(a, b int) bool { return kept[a].Created.Before(kept[b].Created) })

	var recs []Record
	for _, v := range kept {
		v := v
		recs = append(recs, Record{
			Kind: KindJob, Time: v.Created, ID: v.ID,
			Tenant: v.Tenant, Hash: v.Hash, Spec: &v.Spec,
		})
		if v.State != "queued" {
			// One state record carrying the folded final state; running
			// jobs re-fold as running so recovery re-enqueues them.
			t := v.Finished
			if t.IsZero() {
				t = v.Started
			}
			recs = append(recs, Record{Kind: KindState, Time: t, ID: v.ID, State: v.State, Error: v.Error})
		}
	}
	for _, s := range scheds {
		s := s
		recs = append(recs, Record{
			Kind: KindSchedule, Time: s.Created, ID: s.ID,
			Tenant: s.Tenant, Hash: s.Hash, Spec: &s.Spec,
			Interval: s.Interval, Jitter: s.Jitter,
		})
	}

	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	for _, r := range recs {
		line, err := encodeLine(r)
		if err != nil {
			return err
		}
		if _, err := w.Write(line); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}

	tmp, err := os.CreateTemp(j.dir, FileName+".tmp*")
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: compact: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: compact: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: compact: %w", err)
	}
	// Swap the append handle onto the new file.
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: reopen after compact: %w", err)
	}
	old := j.f
	j.f = f
	old.Close()
	j.recs = recs
	return nil
}
