package experiment

import (
	"bytes"
	"context"
	"encoding/csv"
	"io"
	"strconv"
	"testing"
)

// Round-trip coverage for the CSV exporters: every written value must
// parse back to the source value at the exporter's precision ('g', 8
// significant digits — see fmtF).

// reparse maps a float through the exporter's formatting, giving the
// value a reader of the CSV reconstructs.
func reparse(t *testing.T, v float64) float64 {
	t.Helper()
	back, err := strconv.ParseFloat(fmtF(v), 64)
	if err != nil {
		t.Fatalf("fmtF(%v) = %q does not parse: %v", v, fmtF(v), err)
	}
	return back
}

func parseField(t *testing.T, row []string, i int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(row[i], 64)
	if err != nil {
		t.Fatalf("field %d = %q does not parse: %v", i, row[i], err)
	}
	return v
}

func readAll(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	r := csv.NewReader(buf)
	var rows [][]string
	for {
		row, err := r.Read()
		if err == io.EOF {
			return rows
		}
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, row)
	}
}

func TestHagerupCSVRoundTrip(t *testing.T) {
	spec := smallSpec()
	res, err := RunHagerup(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteHagerupCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	rows := readAll(t, &buf)
	if len(rows) != 1+len(res.Cells) {
		t.Fatalf("read %d rows, want %d", len(rows), 1+len(res.Cells))
	}
	for i, cell := range res.Cells {
		row := rows[i+1]
		if row[0] != cell.Technique {
			t.Fatalf("row %d technique = %q, want %q", i, row[0], cell.Technique)
		}
		if n, _ := strconv.ParseInt(row[1], 10, 64); n != cell.N {
			t.Fatalf("row %d n = %s, want %d", i, row[1], cell.N)
		}
		if p, _ := strconv.Atoi(row[2]); p != cell.P {
			t.Fatalf("row %d p = %s, want %d", i, row[2], cell.P)
		}
		if runs, _ := strconv.Atoi(row[3]); runs != cell.Wasted.N {
			t.Fatalf("row %d runs = %s, want %d", i, row[3], cell.Wasted.N)
		}
		for j, want := range []float64{cell.Wasted.Mean, cell.Wasted.Std,
			cell.Wasted.Min, cell.Wasted.Median, cell.Wasted.Max, cell.MeanOps} {
			if got := parseField(t, row, 4+j); got != reparse(t, want) {
				t.Fatalf("row %d field %d = %v, want %v", i, 4+j, got, reparse(t, want))
			}
		}
	}
}

func TestPerRunCSVRoundTrip(t *testing.T) {
	spec := smallSpec()
	spec.Techniques = []string{"FAC2"}
	spec.Ns = []int64{256}
	spec.Ps = []int{2}
	spec.KeepPerRun = true
	res, err := RunHagerup(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	cell, err := res.Cell("FAC2", 256, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePerRunCSV(&buf, cell); err != nil {
		t.Fatal(err)
	}
	rows := readAll(t, &buf)
	if len(rows) != 1+len(cell.PerRun) {
		t.Fatalf("read %d rows, want %d", len(rows), 1+len(cell.PerRun))
	}
	for i, want := range cell.PerRun {
		row := rows[i+1]
		if run, _ := strconv.Atoi(row[0]); run != i {
			t.Fatalf("row %d run index = %s", i, row[0])
		}
		if got := parseField(t, row, 1); got != reparse(t, want) {
			t.Fatalf("run %d wasted = %v, want %v", i, got, reparse(t, want))
		}
	}
}

func TestPerRunCSVRequiresKeptRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerRunCSV(&buf, &Cell{Technique: "SS", N: 8, P: 2}); err == nil {
		t.Fatal("cell without per-run data accepted")
	}
}

func TestTzenCSVRoundTrip(t *testing.T) {
	res, err := RunTzen(context.Background(), TzenExperiment1())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTzenCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	rows := readAll(t, &buf)
	want := 0
	for _, curve := range res.Spec.Curves {
		want += len(res.Curves[curve.Label])
	}
	if len(rows) != 1+want {
		t.Fatalf("read %d rows, want %d", len(rows), 1+want)
	}
	i := 1
	for _, curve := range res.Spec.Curves {
		for _, pt := range res.Curves[curve.Label] {
			row := rows[i]
			i++
			if row[0] != curve.Label {
				t.Fatalf("row %d curve = %q, want %q", i, row[0], curve.Label)
			}
			if p, _ := strconv.Atoi(row[1]); p != pt.P {
				t.Fatalf("row %d p = %s, want %d", i, row[1], pt.P)
			}
			for j, v := range []float64{pt.Speedup, pt.Overhead, pt.Imbalancing} {
				if got := parseField(t, row, 2+j); got != reparse(t, v) {
					t.Fatalf("row %d field %d = %v, want %v", i, 2+j, got, reparse(t, v))
				}
			}
		}
	}
}
