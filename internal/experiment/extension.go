package experiment

import (
	"context"
	"fmt"

	"repro/internal/engine"
	"repro/internal/rng"
	"repro/internal/workload"
)

// This file implements the paper's stated future work (§VI): "Future
// work remains for verifying the TAP and the adaptive techniques (AF,
// AWF, and AWF-B/C)." It runs the future-work techniques through the
// same Hagerup harness as the verified set, plus the parameter sweeps
// the TSS publication describes (GSS(k) for k = 1, 2, 5, 10, 20, …,
// ⌊I/P⌋ and the CSS(k) chunk-size study).

// FutureWorkSpec configures the future-work grid: the extension
// techniques measured under the Hagerup parameters.
func FutureWorkSpec(seed uint64) HagerupSpec {
	s := HagerupGrid(seed)
	s.Techniques = []string{"TAP", "WF", "AWF", "AWF-B", "AWF-C", "AF"}
	return s
}

// GSSSweepResult reports the wasted time of GSS(k) for each k of the
// sweep.
type GSSSweepResult struct {
	Ks     []int64
	Wasted []float64 // mean over runs, aligned with Ks
	Ops    []float64 // mean scheduling operations
}

// GSSSweep measures GSS(k) over the k values the TSS publication tests
// (1, 2, 5, 10, 20, ⌊n/p⌋) on one Hagerup-style cell. Each k is one
// campaign point; its runs execute concurrently.
func GSSSweep(ctx context.Context, n int64, p int, runs int, mu, h float64, seed uint64) (*GSSSweepResult, error) {
	if runs <= 0 || n <= 0 || p <= 0 {
		return nil, fmt.Errorf("experiment: invalid GSS sweep (n=%d p=%d runs=%d)", n, p, runs)
	}
	ks := []int64{1, 2, 5, 10, 20, n / int64(p)}
	points := make([]engine.RunSpec, len(ks))
	for i, k := range ks {
		points[i] = engine.RunSpec{
			Technique: "GSS",
			N:         n,
			P:         p,
			Work:      workload.NewExponential(mu),
			H:         h,
			MinChunk:  k,
		}
	}
	res, err := engine.Campaign{
		Points:       points,
		Replications: runs,
		SeedFor: func(point, run int) uint64 {
			return rng.RunSeed(seed^uint64(ks[point])<<32, run)
		},
	}.Run(ctx)
	if err != nil {
		return nil, err
	}
	out := &GSSSweepResult{Ks: ks}
	for _, agg := range res.Aggregates {
		out.Wasted = append(out.Wasted, agg.Wasted.Mean)
		out.Ops = append(out.Ops, agg.MeanOps)
	}
	return out, nil
}

// CSSSweepResult reports the speedup of CSS(k) over a range of chunk
// sizes — the chunk-size study of the TSS publication ("the optimal
// choice of the chunk size k is machine and application dependent").
type CSSSweepResult struct {
	Ks       []int64
	Speedups []float64
}

// CSSSweep measures CSS(k) speedup for a geometric range of k on the
// TSS experiment-1 configuration (constant workload, fast-sim network
// model). The sweep brackets the publication's reported optimum
// k = n/p.
func CSSSweep(ctx context.Context, n int64, p int, taskTime float64, masterOverhead, rtt float64) (*CSSSweepResult, error) {
	if n <= 0 || p <= 0 || taskTime <= 0 {
		return nil, fmt.Errorf("experiment: invalid CSS sweep (n=%d p=%d task=%v)", n, p, taskTime)
	}
	res := &CSSSweepResult{}
	seq := taskTime * float64(n)
	ks := []int64{}
	for k := int64(1); k <= 4*n/int64(p); k *= 4 {
		ks = append(ks, k)
	}
	// Always include the publication's recommended k = n/p (it yields
	// exactly one chunk per PE and reported speedup 69.2 of 72).
	ks = append(ks, n/int64(p))
	be, err := engine.New(engine.DefaultBackend)
	if err != nil {
		return nil, err
	}
	for _, k := range ks {
		out, err := be.Run(ctx, engine.RunSpec{
			Technique:      "CSS",
			N:              n,
			P:              p,
			Work:           workload.NewConstant(taskTime),
			Chunk:          k,
			H:              masterOverhead,
			HInDynamics:    masterOverhead > 0,
			PerMessageCost: rtt,
		})
		if err != nil {
			return nil, err
		}
		res.Ks = append(res.Ks, k)
		res.Speedups = append(res.Speedups, seq/out.Makespan)
	}
	return res, nil
}
