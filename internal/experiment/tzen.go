package experiment

import (
	"context"
	"fmt"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// This file drives the TSS-publication experiments (paper §III-A, §IV-A,
// Figures 3 and 4): speedup of SS, CSS, GSS(k) and TSS over a varying
// number of PEs with constant per-task workloads, on a simulated BBN
// GP-1000-like system.

// TzenCurve names one plotted line: a technique plus its parameter.
type TzenCurve struct {
	Label    string // e.g. "GSS(1)"
	Tech     string // technique name for sched.New
	MinChunk int64  // GSS(k)'s k
}

// TzenSpec describes one of the two experiments.
type TzenSpec struct {
	Name     string      // "experiment 1" / "experiment 2"
	N        int64       // number of tasks
	TaskTime float64     // constant workload per task, seconds
	Ps       []int       // PE counts to sweep
	Curves   []TzenCurve // lines of the figure

	// System model for the BBN GP-1000 stand-in (DESIGN.md §3.4): message
	// latency per master↔worker link and a fixed master service time per
	// scheduling operation.
	LinkLatency    float64
	MasterOverhead float64

	// UseMSG selects the full SimGrid-MSG-style simulation (internal/msg)
	// instead of the fast chunk-granularity simulator. The full model is
	// the verification path; the fast path is shape-identical and is used
	// by the benchmarks.
	UseMSG bool
}

// TzenExperiment1 returns the paper's Figure 3 configuration:
// 100,000 tasks of 110 µs; SS, CSS, GSS(1), GSS(80), TSS.
func TzenExperiment1() TzenSpec {
	return TzenSpec{
		Name:     "experiment 1",
		N:        100000,
		TaskTime: 110e-6,
		Ps:       []int{2, 8, 16, 24, 32, 40, 48, 56, 64, 72, 80},
		Curves: []TzenCurve{
			{Label: "SS", Tech: "SS"},
			{Label: "CSS", Tech: "CSS"},
			{Label: "GSS(1)", Tech: "GSS", MinChunk: 1},
			{Label: "GSS(80)", Tech: "GSS", MinChunk: 80},
			{Label: "TSS", Tech: "TSS"},
		},
		LinkLatency:    50e-6,
		MasterOverhead: 5e-6,
	}
}

// TzenExperiment2 returns the paper's Figure 4 configuration:
// 10,000 tasks of 2 ms; GSS(80) is replaced by GSS(5) as in the paper.
func TzenExperiment2() TzenSpec {
	s := TzenExperiment1()
	s.Name = "experiment 2"
	s.N = 10000
	s.TaskTime = 2e-3
	s.Curves[3] = TzenCurve{Label: "GSS(5)", Tech: "GSS", MinChunk: 5}
	return s
}

// TzenPoint is one measured point of a curve.
type TzenPoint struct {
	P int
	metrics.TzenNi
}

// TzenResult holds all curves of one experiment.
type TzenResult struct {
	Spec   TzenSpec
	Curves map[string][]TzenPoint // label -> points, ordered as Spec.Ps
}

// RunTzen sweeps PE counts for every curve of the spec. Cancelling ctx
// aborts the sweep between points.
func RunTzen(ctx context.Context, spec TzenSpec) (*TzenResult, error) {
	if spec.N <= 0 || spec.TaskTime <= 0 || len(spec.Ps) == 0 || len(spec.Curves) == 0 {
		return nil, fmt.Errorf("experiment: invalid Tzen spec %+v", spec)
	}
	res := &TzenResult{Spec: spec, Curves: make(map[string][]TzenPoint)}
	for _, curve := range spec.Curves {
		for _, p := range spec.Ps {
			point, err := runTzenPoint(ctx, spec, curve, p)
			if err != nil {
				return nil, fmt.Errorf("experiment: %s %s p=%d: %w", spec.Name, curve.Label, p, err)
			}
			res.Curves[curve.Label] = append(res.Curves[curve.Label], *point)
		}
	}
	return res, nil
}

func runTzenPoint(ctx context.Context, spec TzenSpec, curve TzenCurve, p int) (*TzenPoint, error) {
	// Fast path and MSG path are the same run description on different
	// engine backends: the request/reply round trip of 2 hops over 2
	// links each (worker link + backbone) is a per-operation cost of
	// 4·latency, and the master's service time is charged per operation
	// inside the dynamics.
	backend := engine.DefaultBackend
	if spec.UseMSG {
		backend = "msg"
	}
	be, err := engine.New(backend)
	if err != nil {
		return nil, err
	}
	work := workload.NewConstant(spec.TaskTime)
	seq := workload.Total(work, spec.N)
	res, err := be.Run(ctx, engine.RunSpec{
		Technique:      curve.Tech,
		N:              spec.N,
		P:              p,
		Work:           work,
		MinChunk:       curve.MinChunk,
		H:              spec.MasterOverhead,
		HInDynamics:    spec.MasterOverhead > 0,
		PerMessageCost: 4 * spec.LinkLatency,
	})
	if err != nil {
		return nil, err
	}
	var computeTotal float64
	for _, c := range res.Compute {
		computeTotal += c
	}
	schedTotal := res.CommTime + res.MasterBusy
	return &TzenPoint{P: p, TzenNi: metrics.TzenNiMetrics(seq, res.Makespan, computeTotal, schedTotal, p)}, nil
}
