package experiment

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestFutureWorkSpec(t *testing.T) {
	s := FutureWorkSpec(1)
	if err := s.Validate(); err != nil {
		t.Fatalf("future-work spec invalid: %v", err)
	}
	if len(s.Techniques) != 6 {
		t.Fatalf("techniques = %v", s.Techniques)
	}
	for _, tech := range []string{"TAP", "AF", "AWF-C"} {
		found := false
		for _, have := range s.Techniques {
			if have == tech {
				found = true
			}
		}
		if !found {
			t.Errorf("future-work spec missing %s", tech)
		}
	}
}

// TestFutureWorkGridRuns exercises the §VI extension end to end on a
// reduced grid: every adaptive technique completes and lands in a sane
// wasted-time range (better than SS's overhead floor would be).
func TestFutureWorkGridRuns(t *testing.T) {
	s := FutureWorkSpec(11)
	s.Ns = []int64{1024}
	s.Ps = []int{2, 8}
	s.Runs = 20
	res, err := RunHagerup(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	for _, tech := range s.Techniques {
		for _, p := range s.Ps {
			c, err := res.Cell(tech, 1024, p)
			if err != nil {
				t.Fatal(err)
			}
			ssFloor := 0.5 * 1024 / float64(p)
			if c.Wasted.Mean <= 0 || c.Wasted.Mean >= ssFloor {
				t.Errorf("%s p=%d wasted %.3g outside (0, %g)", tech, p, c.Wasted.Mean, ssFloor)
			}
		}
	}
}

func TestGSSSweep(t *testing.T) {
	res, err := GSSSweep(context.Background(), 8192, 8, 10, 1, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ks) != 6 || res.Ks[5] != 1024 {
		t.Fatalf("Ks = %v", res.Ks)
	}
	// Larger k means at most as many scheduling operations.
	for i := 1; i < len(res.Ops); i++ {
		if res.Ops[i] > res.Ops[i-1]+1 {
			t.Errorf("ops grew with k: %v", res.Ops)
		}
	}
	// k = n/p degenerates GSS to static-like scheduling: higher wasted
	// time than small k under exponential variance.
	if res.Wasted[5] <= res.Wasted[0] {
		t.Errorf("GSS(n/p) wasted %.3g <= GSS(1) %.3g; variance should punish huge min chunks",
			res.Wasted[5], res.Wasted[0])
	}
	if _, err := GSSSweep(context.Background(), 0, 8, 10, 1, 0.5, 3); err == nil {
		t.Error("invalid sweep accepted")
	}
}

// TestCSSSweepOptimumNearNOverP reproduces the TSS publication's
// chunk-size study: with uniform workloads, speedup peaks near k = n/p
// ("k = I/P = 1389, we can achieve a speedup of 69.2" on 72 PEs).
func TestCSSSweepOptimumNearNOverP(t *testing.T) {
	const n, p = 100000, 72
	res, err := CSSSweep(context.Background(), n, p, 110e-6, 5e-6, 200e-6)
	if err != nil {
		t.Fatal(err)
	}
	// The sweep must include the publication's recommended k = n/p.
	nOverP := int64(n / p)
	idxNP := -1
	for i, k := range res.Ks {
		if k == nOverP {
			idxNP = i
		}
	}
	if idxNP < 0 {
		t.Fatalf("sweep %v does not include n/p = %d", res.Ks, nOverP)
	}
	// The publication's quantitative claim: k = n/p achieves near-ideal
	// speedup (69.2 of 72 ≈ 96%) under uniform workloads.
	if got := res.Speedups[idxNP]; got < 0.9*p {
		t.Errorf("CSS(n/p) speedup %.1f below 90%% of ideal %d", got, p)
	}
	// Tiny chunks must be visibly worse (scheduling-bound).
	if res.Speedups[0] > 0.8*res.Speedups[idxNP] {
		t.Errorf("CSS(1) speedup %.1f suspiciously close to CSS(n/p) %.1f",
			res.Speedups[0], res.Speedups[idxNP])
	}
	if _, err := CSSSweep(context.Background(), 0, 1, 1, 0, 0); err == nil {
		t.Error("invalid sweep accepted")
	}
}

// TestFutureWorkCSVExport: the future-work grid exports through the same
// raw-data path as the verified grid (paper §V applies to extensions
// too).
func TestFutureWorkCSVExport(t *testing.T) {
	s := FutureWorkSpec(5)
	s.Ns = []int64{512}
	s.Ps = []int{4}
	s.Runs = 5
	res, err := RunHagerup(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteHagerupCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+6 {
		t.Fatalf("CSV lines = %d, want 7", len(lines))
	}
	for _, tech := range s.Techniques {
		if !strings.Contains(buf.String(), tech+",512,4,") {
			t.Errorf("CSV missing row for %s", tech)
		}
	}
}
