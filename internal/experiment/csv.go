package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// This file exports experiment results as CSV — the repository's
// equivalent of the paper's §V promise that "the raw data of the
// experiments is freely available online".

// WriteHagerupCSV writes one row per grid cell with the aggregate
// statistics.
func WriteHagerupCSV(w io.Writer, r *HagerupResult) error {
	cw := csv.NewWriter(w)
	header := []string{"technique", "n", "p", "runs", "mean_wasted_s", "std_wasted_s",
		"min_wasted_s", "median_wasted_s", "max_wasted_s", "mean_sched_ops"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, c := range r.Cells {
		row := []string{
			c.Technique,
			strconv.FormatInt(c.N, 10),
			strconv.Itoa(c.P),
			strconv.Itoa(c.Wasted.N),
			fmtF(c.Wasted.Mean), fmtF(c.Wasted.Std),
			fmtF(c.Wasted.Min), fmtF(c.Wasted.Median), fmtF(c.Wasted.Max),
			fmtF(c.MeanOps),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WritePerRunCSV writes the per-run wasted times of one cell (the raw
// data behind paper Figure 9).
func WritePerRunCSV(w io.Writer, c *Cell) error {
	if c.PerRun == nil {
		return fmt.Errorf("experiment: cell %s n=%d p=%d has no per-run data (set KeepPerRun)",
			c.Technique, c.N, c.P)
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"run", "avg_wasted_s"}); err != nil {
		return err
	}
	for i, v := range c.PerRun {
		if err := cw.Write([]string{strconv.Itoa(i), fmtF(v)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTzenCSV writes one row per (curve, p) point with the three
// Tzen–Ni metrics.
func WriteTzenCSV(w io.Writer, r *TzenResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"curve", "p", "speedup", "overhead_degree", "imbalance_degree"}); err != nil {
		return err
	}
	for _, curve := range r.Spec.Curves {
		for _, pt := range r.Curves[curve.Label] {
			row := []string{curve.Label, strconv.Itoa(pt.P),
				fmtF(pt.Speedup), fmtF(pt.Overhead), fmtF(pt.Imbalancing)}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
