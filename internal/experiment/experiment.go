// Package experiment orchestrates the reproducibility experiments of the
// paper's evaluation (§IV): the Hagerup wasted-time grid (Figures 5–8,
// Table III), the per-run FAC analysis (Figure 9) and the Tzen–Ni speedup
// curves (Figures 3–4).
//
// The paper ran its measurements "in parallel on the HPC cluster taurus"
// (§V); this package parallelizes the independent runs of an experiment
// over local CPU cores instead. Results are bit-reproducible for a given
// seed regardless of the degree of parallelism, because every run draws
// from an independently derived rand48 stream (DESIGN.md §6).
package experiment

import (
	"context"
	"fmt"
	"sort"

	"repro/campaign"
	"repro/internal/cache"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/workload"
)

// HagerupSpec describes a grid of wasted-time experiments following the
// BOLD publication's experiment 1 (paper §III-B, Table III). It is a
// thin experiment-level view over the engine's declarative CampaignSpec
// (see CampaignSpec); RunHagerup compiles to one and executes it through
// the streaming results pipeline.
type HagerupSpec struct {
	Techniques []string // DLS techniques to measure
	Ns         []int64  // task counts
	Ps         []int    // PE counts
	Runs       int      // runs per cell (paper: 1000)
	Mu         float64  // exponential mean task time (paper: 1 s)
	H          float64  // scheduling overhead per operation (paper: 0.5 s)
	Seed       uint64   // base seed; all run streams derive from it
	Workers    int      // concurrent runs; 0 selects GOMAXPROCS
	KeepPerRun bool     // retain per-run wasted times (needed for Figure 9)
	Backend    string   // engine backend executing the runs; "" = "sim"

	// Cache, when non-nil, serves repeated grids content-addressed by
	// the campaign spec hash without re-simulation.
	Cache cache.Store

	// Sinks additionally observe every run's metrics as a deterministic
	// stream (e.g. engine.NewCSVSink for raw-data export).
	Sinks []engine.Sink

	// Runner, when non-nil, executes the grid through the unified
	// campaign Runner API instead of calling the engine directly — e.g.
	// a client.Client running the experiment on a remote dlsimd (the
	// repro CLI's -server flag). Cache and Workers then only apply to
	// local runners, which carry their own; results are bit-identical
	// either way.
	Runner campaign.Runner
}

// Validate checks the spec for usability.
func (s HagerupSpec) Validate() error {
	if len(s.Techniques) == 0 || len(s.Ns) == 0 || len(s.Ps) == 0 {
		return fmt.Errorf("experiment: empty technique/N/P lists")
	}
	if s.Runs <= 0 {
		return fmt.Errorf("experiment: Runs must be positive, got %d", s.Runs)
	}
	if s.Mu <= 0 {
		return fmt.Errorf("experiment: Mu must be positive, got %v", s.Mu)
	}
	if s.H < 0 {
		return fmt.Errorf("experiment: H must be non-negative, got %v", s.H)
	}
	for _, tech := range s.Techniques {
		if _, err := sched.New(tech, sched.Params{N: 16, P: 2, H: s.H, Mu: s.Mu, Sigma: s.Mu}); err != nil {
			return fmt.Errorf("experiment: %w", err)
		}
	}
	if _, err := engine.New(s.Backend); err != nil {
		return fmt.Errorf("experiment: %w", err)
	}
	return nil
}

// HagerupGrid returns the paper's Table III specification: eight
// techniques, n ∈ {1024; 8192; 65536; 524288}, p ∈ {2; 8; 64; 256; 1024},
// 1000 runs, exponential µ = 1 s, h = 0.5 s.
func HagerupGrid(seed uint64) HagerupSpec {
	return HagerupSpec{
		Techniques: sched.VerifiedNames(),
		Ns:         []int64{1024, 8192, 65536, 524288},
		Ps:         []int{2, 8, 64, 256, 1024},
		Runs:       1000,
		Mu:         1,
		H:          0.5,
		Seed:       seed,
	}
}

// Cell is the aggregated measurement of one (technique, n, p) grid cell.
type Cell struct {
	Technique string
	N         int64
	P         int

	Wasted  metrics.Summary // average wasted time over the runs
	MeanOps float64         // mean scheduling operations per run
	PerRun  []float64       // per-run wasted times (only when KeepPerRun)
}

// HagerupResult holds all cells of a grid, indexable by (tech, n, p).
type HagerupResult struct {
	Spec  HagerupSpec
	Cells []Cell
	index map[string]int
}

// Cell returns the cell for (technique, n, p), or an error.
func (r *HagerupResult) Cell(tech string, n int64, p int) (*Cell, error) {
	i, ok := r.index[cellKey(tech, n, p)]
	if !ok {
		return nil, fmt.Errorf("experiment: no cell %s n=%d p=%d", tech, n, p)
	}
	return &r.Cells[i], nil
}

func cellKey(tech string, n int64, p int) string {
	return fmt.Sprintf("%s/%d/%d", tech, n, p)
}

// OneHagerupRun executes a single run of one cell on the default backend
// and returns its average wasted time and the number of scheduling
// operations.
func OneHagerupRun(ctx context.Context, tech string, n int64, p int, mu, h float64, stream *rng.Rand48) (wasted float64, ops int64, err error) {
	be, err := engine.New(engine.DefaultBackend)
	if err != nil {
		return 0, 0, err
	}
	res, err := be.Run(ctx, hagerupSpec(tech, n, p, mu, h, stream.State()))
	if err != nil {
		return 0, 0, err
	}
	return metrics.AverageWasted(res.Makespan, res.Compute, res.SchedOps, h), res.SchedOps, nil
}

// hagerupSpec maps one grid cell onto the engine's run description. H is
// charged post hoc in the metrics, as the paper's faithful mode does, so
// the spec carries it without enabling HInDynamics.
func hagerupSpec(tech string, n int64, p int, mu, h float64, state uint64) engine.RunSpec {
	return engine.RunSpec{
		Technique: tech,
		N:         n,
		P:         p,
		Work:      workload.NewExponential(mu),
		H:         h,
		RNGState:  state,
	}
}

// CampaignSpec returns the declarative engine campaign describing the
// whole grid: every (n, p, technique) cell as one campaign point under
// the per-cell seed policy, which reproduces exactly the per-cell stream
// derivation this package has always used. The spec is plain data — its
// canonical hash is the grid's content address in the result cache.
func (s HagerupSpec) CampaignSpec() engine.CampaignSpec {
	return engine.CampaignSpec{
		Backend:      s.Backend,
		Techniques:   s.Techniques,
		Ns:           s.Ns,
		Ps:           s.Ps,
		Workload:     workload.Spec{Kind: "exponential", P1: s.Mu},
		H:            s.H,
		Replications: s.Runs,
		Seed:         s.Seed,
		SeedPolicy:   engine.SeedPerCell,
	}
}

// RunHagerup executes the full grid as one engine campaign, streaming
// the independent runs through the results pipeline (and, when
// configured, the content-addressed cache). Cancelling ctx aborts the
// grid with an error wrapping ctx.Err().
func RunHagerup(ctx context.Context, spec HagerupSpec) (*HagerupResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	var (
		res *engine.CampaignResult
		err error
	)
	if spec.Runner != nil {
		res, err = campaign.Execute(ctx, spec.Runner, spec.CampaignSpec(), campaign.ExecOptions{
			KeepPerRun: spec.KeepPerRun,
			Sinks:      spec.Sinks,
		})
	} else {
		res, err = spec.CampaignSpec().Execute(ctx, engine.ExecConfig{
			Workers:    spec.Workers,
			KeepPerRun: spec.KeepPerRun,
			Cache:      spec.Cache,
			Sinks:      spec.Sinks,
		})
	}
	if err != nil {
		return nil, err
	}
	result := &HagerupResult{Spec: spec, index: make(map[string]int)}
	// Aggregates expand in the same n-major, p, technique order as the
	// grid cells.
	i := 0
	for _, n := range spec.Ns {
		for _, p := range spec.Ps {
			for _, tech := range spec.Techniques {
				agg := res.Aggregates[i]
				i++
				cell := Cell{Technique: tech, N: n, P: p, Wasted: agg.Wasted, MeanOps: agg.MeanOps}
				if spec.KeepPerRun {
					cell.PerRun = make([]float64, len(agg.PerRun))
					for j, m := range agg.PerRun {
						cell.PerRun[j] = m.Wasted
					}
				}
				result.index[cellKey(tech, n, p)] = len(result.Cells)
				result.Cells = append(result.Cells, cell)
			}
		}
	}
	return result, nil
}

// Series extracts, for one technique and task count, the mean wasted time
// per PE count — one line of the paper's Figures 5a–8a style plots.
func (r *HagerupResult) Series(tech string, n int64) (ps []int, means []float64, err error) {
	ps = append(ps, r.Spec.Ps...)
	sort.Ints(ps)
	for _, p := range ps {
		c, err := r.Cell(tech, n, p)
		if err != nil {
			return nil, nil, err
		}
		means = append(means, c.Wasted.Mean)
	}
	return ps, means, nil
}
