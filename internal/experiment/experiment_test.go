package experiment

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/rng"
)

// smallSpec returns a fast-to-run grid for tests.
func smallSpec() HagerupSpec {
	return HagerupSpec{
		Techniques: []string{"STAT", "SS", "FAC2", "BOLD"},
		Ns:         []int64{256, 1024},
		Ps:         []int{2, 8},
		Runs:       25,
		Mu:         1,
		H:          0.5,
		Seed:       7,
	}
}

func TestValidate(t *testing.T) {
	good := smallSpec()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := good
	bad.Runs = 0
	if err := bad.Validate(); err == nil {
		t.Error("Runs=0 accepted")
	}
	bad = good
	bad.Techniques = []string{"NOPE"}
	if err := bad.Validate(); err == nil {
		t.Error("unknown technique accepted")
	}
	bad = good
	bad.Mu = 0
	if err := bad.Validate(); err == nil {
		t.Error("Mu=0 accepted")
	}
	bad = good
	bad.Ns = nil
	if err := bad.Validate(); err == nil {
		t.Error("empty Ns accepted")
	}
}

func TestHagerupGridMatchesTableIII(t *testing.T) {
	g := HagerupGrid(1)
	if len(g.Ns) != 4 || g.Ns[0] != 1024 || g.Ns[3] != 524288 {
		t.Fatalf("Ns = %v", g.Ns)
	}
	if len(g.Ps) != 5 || g.Ps[0] != 2 || g.Ps[4] != 1024 {
		t.Fatalf("Ps = %v", g.Ps)
	}
	if g.Runs != 1000 || g.Mu != 1 || g.H != 0.5 {
		t.Fatalf("grid params = %+v", g)
	}
	if len(g.Techniques) != 8 {
		t.Fatalf("techniques = %v", g.Techniques)
	}
}

func TestRunHagerupSmall(t *testing.T) {
	res, err := RunHagerup(context.Background(), smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4*2*2 {
		t.Fatalf("cells = %d, want 16", len(res.Cells))
	}
	c, err := res.Cell("SS", 1024, 8)
	if err != nil {
		t.Fatal(err)
	}
	// SS wasted time must be at least the overhead term h·n/p = 64.
	if c.Wasted.Mean < 64 {
		t.Fatalf("SS mean wasted = %v, want >= 64", c.Wasted.Mean)
	}
	if c.MeanOps != 1024 {
		t.Fatalf("SS mean ops = %v, want 1024", c.MeanOps)
	}
	if _, err := res.Cell("GSS", 1024, 8); err == nil {
		t.Error("missing cell lookup succeeded")
	}
}

// TestDeterministicAcrossParallelism: the same spec must produce
// identical means whether runs execute on 1 or many workers.
func TestDeterministicAcrossParallelism(t *testing.T) {
	s1 := smallSpec()
	s1.Workers = 1
	sN := smallSpec()
	sN.Workers = 8
	r1, err := RunHagerup(context.Background(), s1)
	if err != nil {
		t.Fatal(err)
	}
	rN, err := RunHagerup(context.Background(), sN)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Cells {
		a, b := r1.Cells[i], rN.Cells[i]
		if a.Wasted.Mean != b.Wasted.Mean || a.Wasted.Max != b.Wasted.Max {
			t.Fatalf("cell %s/%d/%d differs across parallelism: %v vs %v",
				a.Technique, a.N, a.P, a.Wasted.Mean, b.Wasted.Mean)
		}
	}
}

func TestSeedChangesResults(t *testing.T) {
	a := smallSpec()
	b := smallSpec()
	b.Seed = 8
	ra, _ := RunHagerup(context.Background(), a)
	rb, _ := RunHagerup(context.Background(), b)
	same := true
	for i := range ra.Cells {
		if ra.Cells[i].Wasted.Mean != rb.Cells[i].Wasted.Mean {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical grids")
	}
}

func TestKeepPerRun(t *testing.T) {
	s := smallSpec()
	s.KeepPerRun = true
	res, err := RunHagerup(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := res.Cell("FAC2", 256, 2)
	if len(c.PerRun) != s.Runs {
		t.Fatalf("PerRun has %d entries, want %d", len(c.PerRun), s.Runs)
	}
	// Aggregates must match the retained raw values.
	var sum float64
	for _, v := range c.PerRun {
		sum += v
	}
	if math.Abs(sum/float64(s.Runs)-c.Wasted.Mean) > 1e-9 {
		t.Fatal("PerRun mean != summary mean")
	}
}

func TestSeries(t *testing.T) {
	res, err := RunHagerup(context.Background(), smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	ps, means, err := res.Series("STAT", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 || ps[0] != 2 || ps[1] != 8 {
		t.Fatalf("ps = %v", ps)
	}
	if len(means) != 2 || means[0] <= 0 {
		t.Fatalf("means = %v", means)
	}
	if _, _, err := res.Series("STAT", 999); err == nil {
		t.Error("bogus n accepted")
	}
}

func TestOneHagerupRunErrors(t *testing.T) {
	if _, _, err := OneHagerupRun(context.Background(), "NOPE", 10, 2, 1, 0.5, rng.New(1)); err == nil {
		t.Error("unknown technique accepted")
	}
}

func TestWriteHagerupCSV(t *testing.T) {
	res, err := RunHagerup(context.Background(), smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteHagerupCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+16 {
		t.Fatalf("CSV has %d lines, want 17", len(lines))
	}
	if !strings.HasPrefix(lines[0], "technique,n,p,runs,mean_wasted_s") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "STAT,256,2,25,") {
		t.Fatalf("first row = %q", lines[1])
	}
}

func TestWritePerRunCSV(t *testing.T) {
	s := smallSpec()
	s.KeepPerRun = true
	res, _ := RunHagerup(context.Background(), s)
	c, _ := res.Cell("BOLD", 256, 2)
	var buf bytes.Buffer
	if err := WritePerRunCSV(&buf, c); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+25 {
		t.Fatalf("per-run CSV has %d lines", len(lines))
	}
	// Without per-run data the export must fail loudly.
	res2, _ := RunHagerup(context.Background(), smallSpec())
	c2, _ := res2.Cell("BOLD", 256, 2)
	if err := WritePerRunCSV(&buf, c2); err == nil {
		t.Error("missing per-run data accepted")
	}
}

func TestTzenSpecs(t *testing.T) {
	e1 := TzenExperiment1()
	if e1.N != 100000 || e1.TaskTime != 110e-6 || len(e1.Curves) != 5 {
		t.Fatalf("experiment 1 = %+v", e1)
	}
	e2 := TzenExperiment2()
	if e2.N != 10000 || e2.TaskTime != 2e-3 {
		t.Fatalf("experiment 2 = %+v", e2)
	}
	if e2.Curves[3].Label != "GSS(5)" {
		t.Fatalf("experiment 2 curve 3 = %+v", e2.Curves[3])
	}
	// Experiment 1 must keep GSS(80) (specs must not share slices).
	if e1.Curves[3].Label != "GSS(80)" {
		t.Fatalf("experiment 1 curve 3 mutated: %+v", e1.Curves[3])
	}
}

func TestRunTzenFastPath(t *testing.T) {
	spec := TzenExperiment2()
	spec.Ps = []int{2, 8, 32}
	res, err := RunTzen(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, curve := range spec.Curves {
		pts := res.Curves[curve.Label]
		if len(pts) != 3 {
			t.Fatalf("%s has %d points", curve.Label, len(pts))
		}
		for _, pt := range pts {
			if pt.Speedup <= 0 || pt.Speedup > float64(pt.P) {
				t.Errorf("%s p=%d speedup = %v out of (0,p]", curve.Label, pt.P, pt.Speedup)
			}
		}
	}
	// TSS with 2 ms tasks should be near-linear at p=32.
	tss := res.Curves["TSS"][2]
	if tss.Speedup < 25 {
		t.Errorf("TSS speedup at p=32 = %v, want near-linear", tss.Speedup)
	}
}

func TestRunTzenMSGMatchesFast(t *testing.T) {
	fast := TzenExperiment2()
	fast.Ps = []int{8}
	full := TzenExperiment2()
	full.Ps = []int{8}
	full.UseMSG = true
	fr, err := RunTzen(context.Background(), fast)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := RunTzen(context.Background(), full)
	if err != nil {
		t.Fatal(err)
	}
	// The two backends model the master and message costs slightly
	// differently (A5); speedups must agree within 15%.
	for _, label := range []string{"TSS", "CSS", "GSS(1)"} {
		f := fr.Curves[label][0].Speedup
		m := mr.Curves[label][0].Speedup
		if math.Abs(f-m) > 0.15*math.Max(f, m) {
			t.Errorf("%s: fast %v vs msg %v", label, f, m)
		}
	}
}

func TestRunTzenValidation(t *testing.T) {
	if _, err := RunTzen(context.Background(), TzenSpec{}); err == nil {
		t.Error("empty spec accepted")
	}
}

func TestWriteTzenCSV(t *testing.T) {
	spec := TzenExperiment2()
	spec.Ps = []int{2}
	res, err := RunTzen(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTzenCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+5 {
		t.Fatalf("tzen CSV lines = %d", len(lines))
	}
}
