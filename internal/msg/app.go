package msg

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/workload"
)

// This file implements the paper's Figure 1 on the MSG layer: a master
// process owning the DLS chunk calculator and one worker process per PE.
//
//	"When starting the simulation, all workers are in idle state, and
//	 send work request messages to the master. When the master receives
//	 a work request message, it computes the chunk size for the chosen
//	 DLS technique and sends the computed number of tasks to the
//	 requesting worker. The worker simulates executing the tasks, and
//	 when it finishes, it sends again a work request message to the
//	 master. On completion of all tasks, the master sends finalization
//	 messages to the workers, and the simulation ends."
//
// As in the paper, application data is assumed replicated: messages carry
// only control information (§II), whose size is configurable.

// AppConfig describes one master–worker DLS execution.
type AppConfig struct {
	MasterHost  string
	WorkerHosts []string

	Sched sched.Scheduler
	Work  workload.Workload
	RNG   *rng.Rand48 // required for random workloads

	// RequestBytes and ReplyBytes are the control message sizes. The
	// defaults (64 B) model the small work-request/assignment messages of
	// the paper's master–worker protocol.
	RequestBytes float64
	ReplyBytes   float64

	// ReferenceSpeed converts workload seconds into flops: a chunk whose
	// workload time is t seconds costs t·ReferenceSpeed flops, so it runs
	// in t seconds on a host of that speed. 0 selects the master host's
	// speed (exact on homogeneous platforms).
	ReferenceSpeed float64

	// MasterOverhead, when positive, makes the master compute for this
	// many seconds per scheduling operation (h inside the dynamics,
	// ablation A1). The paper's faithful mode leaves this at 0 and adds
	// h per operation post hoc in the metrics.
	MasterOverhead float64
}

// AppResult reports one master–worker execution.
type AppResult struct {
	Makespan       float64   // virtual time when the last worker finalized
	Compute        []float64 // per-worker total computing time
	CommWait       []float64 // per-worker time spent in Send + blocked in Recv
	SchedOps       int64
	OpsPerWorker   []int64
	TasksPerWorker []int64
}

// request is the payload of a work-request message.
type request struct {
	worker      int
	lastChunk   int64   // 0 on the first request
	lastElapsed float64 // execution time of the previous chunk
}

// reply is the payload of a work-assignment message.
type reply struct {
	chunk int64   // 0 means finalize
	flops float64 // total computation of the chunk
}

const defaultCtrlBytes = 64

// RunApp executes the Figure 1 protocol and returns its timing results.
// The engine must be fresh (time 0) and is run to completion.
func RunApp(e *Engine, cfg AppConfig) (*AppResult, error) {
	p := len(cfg.WorkerHosts)
	if p == 0 {
		return nil, fmt.Errorf("msg: no worker hosts")
	}
	if cfg.Sched == nil || cfg.Work == nil {
		return nil, fmt.Errorf("msg: AppConfig requires Sched and Work")
	}
	if !cfg.Work.Deterministic() && cfg.RNG == nil {
		return nil, fmt.Errorf("msg: random workload %q requires RNG", cfg.Work.Name())
	}
	reqBytes := cfg.RequestBytes
	if reqBytes <= 0 {
		reqBytes = defaultCtrlBytes
	}
	repBytes := cfg.ReplyBytes
	if repBytes <= 0 {
		repBytes = defaultCtrlBytes
	}
	refSpeed := cfg.ReferenceSpeed
	if refSpeed <= 0 {
		mh, err := e.Platform().Host(cfg.MasterHost)
		if err != nil {
			return nil, err
		}
		refSpeed = mh.Speed
	}

	res := &AppResult{
		Compute:        make([]float64, p),
		CommWait:       make([]float64, p),
		OpsPerWorker:   make([]int64, p),
		TasksPerWorker: make([]int64, p),
	}

	const masterMailbox = "master"
	if err := e.DeclareMailbox(masterMailbox, cfg.MasterHost); err != nil {
		return nil, err
	}
	workerMailbox := func(w int) string { return fmt.Sprintf("worker-%d", w) }
	for w := range cfg.WorkerHosts {
		if err := e.DeclareMailbox(workerMailbox(w), cfg.WorkerHosts[w]); err != nil {
			return nil, err
		}
	}

	var nextTask int64
	var appErr error
	fail := func(err error) {
		if appErr == nil {
			appErr = err
		}
	}

	// Master: Figure 1 left side.
	err := e.Spawn(cfg.MasterHost, "master", func(mp *Process) {
		finalized := 0
		for finalized < p {
			t, err := mp.Recv(masterMailbox)
			if err != nil {
				fail(err)
				return
			}
			req, ok := t.Payload.(request)
			if !ok {
				fail(fmt.Errorf("msg: master received %T, want request", t.Payload))
				return
			}
			if req.lastChunk > 0 {
				cfg.Sched.Report(req.worker, req.lastChunk, req.lastElapsed, mp.Now())
			}
			if cfg.MasterOverhead > 0 {
				mp.Sleep(cfg.MasterOverhead)
			}
			chunk := cfg.Sched.Next(req.worker, mp.Now())
			rep := reply{chunk: chunk}
			if chunk > 0 {
				seconds := cfg.Work.ChunkTime(nextTask, chunk, cfg.RNG)
				nextTask += chunk
				rep.flops = seconds * refSpeed
				res.SchedOps++
				res.OpsPerWorker[req.worker]++
				res.TasksPerWorker[req.worker] += chunk
			} else {
				finalized++
			}
			if err := mp.Send(workerMailbox(req.worker), &Task{
				Name:    "assignment",
				Bytes:   repBytes,
				Payload: rep,
			}); err != nil {
				fail(err)
				return
			}
		}
		if t := mp.Now(); t > res.Makespan {
			res.Makespan = t
		}
	})
	if err != nil {
		return nil, err
	}

	// Workers: Figure 1 right side.
	for w := range cfg.WorkerHosts {
		w := w
		err := e.Spawn(cfg.WorkerHosts[w], fmt.Sprintf("worker-%d", w), func(wp *Process) {
			var lastChunk int64
			var lastElapsed float64
			for {
				sendStart := wp.Now()
				err := wp.Send(masterMailbox, &Task{
					Name:    "work-request",
					Bytes:   reqBytes,
					Payload: request{worker: w, lastChunk: lastChunk, lastElapsed: lastElapsed},
				})
				if err != nil {
					fail(err)
					return
				}
				t, err := wp.Recv(workerMailbox(w))
				if err != nil {
					fail(err)
					return
				}
				res.CommWait[w] += wp.Now() - sendStart
				rep, ok := t.Payload.(reply)
				if !ok {
					fail(fmt.Errorf("msg: worker %d received %T, want reply", w, t.Payload))
					return
				}
				if rep.chunk == 0 {
					if t := wp.Now(); t > res.Makespan {
						res.Makespan = t
					}
					return
				}
				start := wp.Now()
				wp.Execute(rep.flops)
				lastElapsed = wp.Now() - start
				lastChunk = rep.chunk
				res.Compute[w] += lastElapsed
			}
		})
		if err != nil {
			return nil, err
		}
	}

	if err := e.Run(); err != nil {
		return nil, err
	}
	if appErr != nil {
		return nil, appErr
	}
	return res, nil
}
