package msg

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/platform"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// freeCluster builds a p-worker homogeneous cluster with the paper's
// free-network settings (§III-B) and unit host speed.
func freeCluster(t testing.TB, p int) (*platform.Platform, string, []string) {
	t.Helper()
	bw, lat := platform.FreeNetwork()
	pl, err := platform.Cluster("c", p, 1.0, bw, lat)
	if err != nil {
		t.Fatal(err)
	}
	workers := make([]string, p)
	for i := range workers {
		workers[i] = fmt.Sprintf("c-%d", i+1)
	}
	return pl, "c-0", workers
}

func newSched(t testing.TB, name string, n int64, p int) sched.Scheduler {
	t.Helper()
	s, err := sched.New(name, sched.Params{N: n, P: p, H: 0.5, Mu: 1, Sigma: 1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAppValidation(t *testing.T) {
	pl, master, workers := freeCluster(t, 2)
	if _, err := RunApp(NewEngine(pl), AppConfig{MasterHost: master}); err == nil {
		t.Error("missing workers accepted")
	}
	if _, err := RunApp(NewEngine(pl), AppConfig{MasterHost: master, WorkerHosts: workers}); err == nil {
		t.Error("missing sched/work accepted")
	}
	if _, err := RunApp(NewEngine(pl), AppConfig{
		MasterHost: master, WorkerHosts: workers,
		Sched: newSched(t, "SS", 10, 2), Work: workload.NewExponential(1),
	}); err == nil {
		t.Error("random workload without RNG accepted")
	}
}

// TestAppSTATExactMakespan: constant workload, free network — the MSG
// simulation must match the closed form (25 tasks × 2 s) to within the
// negligible network epsilon.
func TestAppSTATExactMakespan(t *testing.T) {
	pl, master, workers := freeCluster(t, 4)
	res, err := RunApp(NewEngine(pl), AppConfig{
		MasterHost:  master,
		WorkerHosts: workers,
		Sched:       newSched(t, "STAT", 100, 4),
		Work:        workload.NewConstant(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-50) > 1e-3 {
		t.Fatalf("makespan = %v, want ≈50", res.Makespan)
	}
	var tasks int64
	for _, k := range res.TasksPerWorker {
		tasks += k
	}
	if tasks != 100 {
		t.Fatalf("tasks = %d, want 100", tasks)
	}
	if res.SchedOps != 4 {
		t.Fatalf("ops = %d, want 4", res.SchedOps)
	}
}

// TestAppMatchesFastSim cross-validates the MSG protocol against the
// Hagerup-replica simulator (internal/sim) on deterministic workloads,
// where both must produce the same makespans up to network epsilon —
// ablation A5's correctness backbone.
func TestAppMatchesFastSim(t *testing.T) {
	const n, p = 2000, 8
	for _, tech := range []string{"STAT", "SS", "GSS", "TSS", "FAC2", "CSS", "FSC"} {
		work := workload.NewConstant(0.01)

		msgSched := newSched(t, tech, n, p)
		pl, master, workers := freeCluster(t, p)
		msgRes, err := RunApp(NewEngine(pl), AppConfig{
			MasterHost: master, WorkerHosts: workers,
			Sched: msgSched, Work: work,
		})
		if err != nil {
			t.Fatalf("%s: msg: %v", tech, err)
		}

		simSched := newSched(t, tech, n, p)
		simRes, err := sim.Run(sim.Config{P: p, Sched: simSched, Work: work})
		if err != nil {
			t.Fatalf("%s: sim: %v", tech, err)
		}

		if math.Abs(msgRes.Makespan-simRes.Makespan) > 1e-3*simRes.Makespan+1e-6 {
			t.Errorf("%s: msg makespan %v != sim makespan %v", tech, msgRes.Makespan, simRes.Makespan)
		}
		if msgRes.SchedOps != simRes.SchedOps {
			t.Errorf("%s: msg ops %d != sim ops %d", tech, msgRes.SchedOps, simRes.SchedOps)
		}
	}
}

// TestAppIncreasingWorkload drives the TSS publication's increasing
// workload through the MSG stack and checks task conservation and
// positive compute on every worker.
func TestAppIncreasingWorkload(t *testing.T) {
	const n, p = 1000, 4
	pl, master, workers := freeCluster(t, p)
	res, err := RunApp(NewEngine(pl), AppConfig{
		MasterHost: master, WorkerHosts: workers,
		Sched: newSched(t, "TSS", n, p),
		Work:  workload.NewIncreasing(0.001, 0.01, n),
	})
	if err != nil {
		t.Fatal(err)
	}
	var tasks int64
	for w, k := range res.TasksPerWorker {
		tasks += k
		if res.Compute[w] <= 0 {
			t.Errorf("worker %d computed nothing", w)
		}
	}
	if tasks != n {
		t.Fatalf("tasks = %d", tasks)
	}
}

// TestAppHeterogeneousSpeeds: with SS on a 2-speed platform, the fast
// worker should process about twice the tasks.
func TestAppHeterogeneousSpeeds(t *testing.T) {
	bw, lat := platform.FreeNetwork()
	pl, err := platform.Heterogeneous("h", []float64{2, 1}, bw, lat)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunApp(NewEngine(pl), AppConfig{
		MasterHost:  "h-0",
		WorkerHosts: []string{"h-1", "h-2"},
		Sched:       newSched(t, "SS", 20000, 2),
		Work:        workload.NewConstant(0.001),
		// Reference speed 1: a 0.001 s task is 0.001 flops, so the
		// speed-2 worker runs it in 0.0005 s.
		ReferenceSpeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(res.TasksPerWorker[0]) / float64(res.TasksPerWorker[1])
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("task ratio = %v, want ≈2", ratio)
	}
}

// TestAppMasterOverheadSerializes: charging h at the master must push the
// makespan above n·h for SS.
func TestAppMasterOverheadSerializes(t *testing.T) {
	const n, p = 200, 4
	pl, master, workers := freeCluster(t, p)
	res, err := RunApp(NewEngine(pl), AppConfig{
		MasterHost: master, WorkerHosts: workers,
		Sched:          newSched(t, "SS", n, p),
		Work:           workload.NewConstant(0.001),
		MasterOverhead: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan < n*0.01 {
		t.Fatalf("makespan %v below master floor %v", res.Makespan, n*0.01)
	}
}

// TestAppAdaptiveFeedback: AWF-C over the MSG stack must adapt its
// weights using the worker-reported chunk timings.
func TestAppAdaptiveFeedback(t *testing.T) {
	bw, lat := platform.FreeNetwork()
	pl, err := platform.Heterogeneous("h", []float64{4, 1}, bw, lat)
	if err != nil {
		t.Fatal(err)
	}
	awfc, err := sched.NewAWFC(sched.Params{N: 50000, P: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunApp(NewEngine(pl), AppConfig{
		MasterHost:     "h-0",
		WorkerHosts:    []string{"h-1", "h-2"},
		Sched:          awfc,
		Work:           workload.NewConstant(0.001),
		ReferenceSpeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := awfc.UpdatedWeights()
	if w[0] < 1.2 || w[1] > 0.8 {
		t.Fatalf("AWF-C weights = %v, want skewed toward fast PE", w)
	}
	if res.TasksPerWorker[0] <= res.TasksPerWorker[1] {
		t.Fatalf("fast PE got %d tasks, slow got %d", res.TasksPerWorker[0], res.TasksPerWorker[1])
	}
}

// TestAppExponentialWorkload: the Hagerup workload through the MSG stack;
// statistical sanity only (tasks conserved, wasted time positive).
func TestAppExponentialWorkload(t *testing.T) {
	const n, p = 1024, 8
	pl, master, workers := freeCluster(t, p)
	res, err := RunApp(NewEngine(pl), AppConfig{
		MasterHost: master, WorkerHosts: workers,
		Sched: newSched(t, "FAC", n, p),
		Work:  workload.NewExponential(1),
		RNG:   rng.FromState(12345),
	})
	if err != nil {
		t.Fatal(err)
	}
	var tasks int64
	for _, k := range res.TasksPerWorker {
		tasks += k
	}
	if tasks != n {
		t.Fatalf("tasks = %d", tasks)
	}
	if res.Makespan < float64(n)/float64(p)*0.5 {
		t.Fatalf("makespan %v implausibly small", res.Makespan)
	}
}

func BenchmarkAppSS2000x8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pl, master, workers := freeCluster(b, 8)
		s, _ := sched.New("SS", sched.Params{N: 2000, P: 8})
		_, err := RunApp(NewEngine(pl), AppConfig{
			MasterHost: master, WorkerHosts: workers,
			Sched: s, Work: workload.NewConstant(0.001),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
