package msg

import (
	"fmt"
	"sort"

	"repro/internal/sched"
	"repro/internal/workload"
)

// This file extends the Figure 1 master–worker protocol with failure
// detection and chunk reassignment — the resilience property of DLS
// techniques the paper's earlier-work context investigated ([3]:
// "Investigating the resilience of dynamic loop scheduling in
// heterogeneous computing systems"). A worker that crashes mid-chunk
// simply goes silent; the master notices the missed deadline through a
// receive watchdog and requeues the lost task range for the surviving
// workers.
//
// Limitations (documented): reassigned chunks of *random* workloads are
// re-drawn (a different but identically distributed sample), so the
// resilient app requires deterministic workloads for bit-reproducible
// task times; a slow-but-alive worker that misses its deadline leads to
// duplicated execution, which the result reports.

// Failure describes one injected crash: the worker dies while executing
// its AfterChunks-th chunk (1-based).
type Failure struct {
	Worker      int
	AfterChunks int
}

// ResilientConfig extends AppConfig with failure handling parameters.
type ResilientConfig struct {
	AppConfig

	// Failures to inject.
	Failures []Failure

	// DeadlineFactor scales the expected chunk execution time into the
	// master's per-assignment deadline (default 3: a chunk is presumed
	// lost when it takes 3× its expectation).
	DeadlineFactor float64

	// Watchdog is the master's receive timeout (default: one mean task
	// time; the master re-checks deadlines at least this often).
	Watchdog float64
}

// ResilientResult reports a fault-tolerant execution.
type ResilientResult struct {
	Makespan        float64
	TasksCompleted  int64
	FailuresSeen    int   // failures detected by the master
	TasksReassigned int64 // tasks requeued from dead workers
	TasksDuplicated int64 // tasks executed twice (false-positive detection)
	DeadWorkers     []int // workers the master declared dead
	Compute         []float64
	TasksPerWorker  []int64
}

// assignment tracks one in-flight chunk at the master.
type assignment struct {
	start    int64
	count    int64
	deadline float64
}

// taskRange is a requeued span of tasks.
type taskRange struct {
	start, count int64
}

// RunResilientApp executes the master–worker protocol with failure
// injection and recovery.
func RunResilientApp(e *Engine, cfg ResilientConfig) (*ResilientResult, error) {
	p := len(cfg.WorkerHosts)
	if p == 0 {
		return nil, fmt.Errorf("msg: no worker hosts")
	}
	if cfg.Sched == nil || cfg.Work == nil {
		return nil, fmt.Errorf("msg: ResilientConfig requires Sched and Work")
	}
	if !cfg.Work.Deterministic() {
		return nil, fmt.Errorf("msg: resilient app requires a deterministic workload (got %q)", cfg.Work.Name())
	}
	for _, f := range cfg.Failures {
		if f.Worker < 0 || f.Worker >= p {
			return nil, fmt.Errorf("msg: failure worker %d out of range [0,%d)", f.Worker, p)
		}
		if f.AfterChunks < 1 {
			return nil, fmt.Errorf("msg: failure AfterChunks must be >= 1, got %d", f.AfterChunks)
		}
	}
	if len(cfg.Failures) >= p {
		return nil, fmt.Errorf("msg: cannot kill all %d workers", p)
	}
	deadlineFactor := cfg.DeadlineFactor
	if deadlineFactor <= 0 {
		deadlineFactor = 3
	}
	watchdog := cfg.Watchdog
	if watchdog <= 0 {
		watchdog = cfg.Work.Mean()
		if watchdog <= 0 {
			watchdog = 1
		}
	}
	refSpeed := cfg.ReferenceSpeed
	if refSpeed <= 0 {
		mh, err := e.Platform().Host(cfg.MasterHost)
		if err != nil {
			return nil, err
		}
		refSpeed = mh.Speed
	}

	failAt := map[int]int{}
	for _, f := range cfg.Failures {
		failAt[f.Worker] = f.AfterChunks
	}

	res := &ResilientResult{
		Compute:        make([]float64, p),
		TasksPerWorker: make([]int64, p),
	}

	const masterMailbox = "master"
	if err := e.DeclareMailbox(masterMailbox, cfg.MasterHost); err != nil {
		return nil, err
	}
	workerMailbox := func(w int) string { return fmt.Sprintf("worker-%d", w) }
	for w := range cfg.WorkerHosts {
		if err := e.DeclareMailbox(workerMailbox(w), cfg.WorkerHosts[w]); err != nil {
			return nil, err
		}
	}

	var total int64 = cfg.Sched.Remaining()
	var nextTask int64
	var appErr error
	fail := func(err error) {
		if appErr == nil {
			appErr = err
		}
	}

	err := e.Spawn(cfg.MasterHost, "master", func(mp *Process) {
		inflight := map[int]assignment{}
		dead := map[int]bool{}
		var requeue []taskRange
		var idle []int // workers waiting for work while none is available
		var completed int64
		finalized := 0

		// nextRange returns the next span to assign: requeued work
		// first, then fresh tasks from the chunk calculator.
		nextRange := func(w int, now float64) (taskRange, bool) {
			if len(requeue) > 0 {
				r := requeue[0]
				requeue = requeue[1:]
				return r, true
			}
			chunk := cfg.Sched.Next(w, now)
			if chunk == 0 {
				return taskRange{}, false
			}
			r := taskRange{start: nextTask, count: chunk}
			nextTask += chunk
			return r, true
		}

		dispatch := func(w int, r taskRange) {
			seconds := cfg.Work.ChunkTime(r.start, r.count, cfg.RNG)
			inflight[w] = assignment{
				start:    r.start,
				count:    r.count,
				deadline: mp.Now() + seconds*deadlineFactor + watchdog,
			}
			err := mp.Send(workerMailbox(w), &Task{
				Name:  "assignment",
				Bytes: defaultCtrlBytes,
				Payload: reply{
					chunk: r.count,
					flops: seconds * refSpeed,
				},
			})
			if err != nil {
				fail(err)
			}
		}

		finalize := func(w int) {
			err := mp.Send(workerMailbox(w), &Task{
				Name: "finalize", Bytes: defaultCtrlBytes, Payload: reply{chunk: 0},
			})
			if err != nil {
				fail(err)
			}
			finalized++
		}

		checkDeadlines := func(now float64) {
			for w, a := range inflight {
				if dead[w] || a.deadline > now {
					continue
				}
				// Worker w is presumed dead: requeue its chunk.
				dead[w] = true
				delete(inflight, w)
				requeue = append(requeue, taskRange{start: a.start, count: a.count})
				res.FailuresSeen++
				res.TasksReassigned += a.count
				res.DeadWorkers = append(res.DeadWorkers, w)
				// Serve idle workers now that work exists.
				for len(idle) > 0 && len(requeue) > 0 {
					iw := idle[0]
					idle = idle[1:]
					r := requeue[0]
					requeue = requeue[1:]
					dispatch(iw, r)
				}
			}
		}

		aliveWorkers := func() int {
			return p - len(dead) - finalized
		}

		for completed < total && aliveWorkers() > 0 {
			t, ok, err := mp.RecvTimeout(masterMailbox, watchdog)
			if err != nil {
				fail(err)
				return
			}
			now := mp.Now()
			if !ok {
				checkDeadlines(now)
				continue
			}
			req, okReq := t.Payload.(request)
			if !okReq {
				fail(fmt.Errorf("msg: master received %T, want request", t.Payload))
				return
			}
			w := req.worker
			if req.lastChunk > 0 {
				a, had := inflight[w]
				if had {
					completed += a.count
					delete(inflight, w)
					cfg.Sched.Report(w, req.lastChunk, req.lastElapsed, now)
				} else {
					// The master had already written this worker off and
					// requeued its chunk: the work is (being) duplicated.
					res.TasksDuplicated += req.lastChunk
					delete(dead, w)
					res.FailuresSeen--
				}
			}
			checkDeadlines(now)
			if completed >= total {
				finalize(w)
				break
			}
			if r, have := nextRange(w, now); have {
				dispatch(w, r)
			} else if len(inflight) > 0 {
				// Work may still come back as requeues; park the worker.
				idle = append(idle, w)
			} else {
				finalize(w)
			}
		}
		// Finalize everyone still parked or yet to report in.
		for _, w := range idle {
			finalize(w)
		}
		res.TasksCompleted = completed
		if t := mp.Now(); t > res.Makespan {
			res.Makespan = t
		}
		sort.Ints(res.DeadWorkers)
	})
	if err != nil {
		return nil, err
	}

	for w := range cfg.WorkerHosts {
		w := w
		err := e.Spawn(cfg.WorkerHosts[w], fmt.Sprintf("worker-%d", w), func(wp *Process) {
			var lastChunk int64
			var lastElapsed float64
			chunksDone := 0
			for {
				err := wp.Send(masterMailbox, &Task{
					Name:    "work-request",
					Bytes:   defaultCtrlBytes,
					Payload: request{worker: w, lastChunk: lastChunk, lastElapsed: lastElapsed},
				})
				if err != nil {
					fail(err)
					return
				}
				t, err := wp.Recv(workerMailbox(w))
				if err != nil {
					fail(err)
					return
				}
				rep, okRep := t.Payload.(reply)
				if !okRep {
					fail(fmt.Errorf("msg: worker %d received %T, want reply", w, t.Payload))
					return
				}
				if rep.chunk == 0 {
					if t := wp.Now(); t > res.Makespan {
						res.Makespan = t
					}
					return
				}
				chunksDone++
				if limit, dies := failAt[w]; dies && chunksDone >= limit {
					// Crash mid-chunk: consume half the execution time,
					// then go silent forever.
					wp.Execute(rep.flops / 2)
					return
				}
				start := wp.Now()
				wp.Execute(rep.flops)
				lastElapsed = wp.Now() - start
				lastChunk = rep.chunk
				res.Compute[w] += lastElapsed
				res.TasksPerWorker[w] += rep.chunk
			}
		})
		if err != nil {
			return nil, err
		}
	}

	if err := e.Run(); err != nil {
		return nil, err
	}
	if appErr != nil {
		return nil, appErr
	}
	return res, nil
}

// buildResilientSched is a convenience used by tests: a scheduler plus
// workload matching the resilient app's requirements.
func buildResilientSched(tech string, n int64, p int, taskTime float64) (sched.Scheduler, workload.Workload, error) {
	s, err := sched.New(tech, sched.Params{N: n, P: p, Mu: taskTime, Sigma: 0})
	if err != nil {
		return nil, nil, err
	}
	return s, workload.NewConstant(taskTime), nil
}
