// Package msg implements a SimGrid-MSG-style interface on top of the
// discrete-event kernel (internal/des) and the platform model
// (internal/platform): processes pinned to hosts exchange tasks through
// named mailboxes, computation costs flops divided by host speed, and
// message transfers cost route latency plus bytes over bottleneck
// bandwidth.
//
// This is the heavyweight, verification-grade counterpart of the
// chunk-granularity simulator in internal/sim; app.go builds the paper's
// Figure 1 master–worker execution model on top of it, and integration
// tests cross-validate the two.
package msg

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/platform"
)

// Engine couples a simulator with a platform.
type Engine struct {
	sim       *des.Simulator
	plat      *platform.Platform
	mailboxes map[string]*Mailbox
	functions map[string]Function
}

// Function is a process body deployable from a deployment file.
type Function func(p *Process, args []string)

// NewEngine returns an engine simulating on the given platform.
func NewEngine(plat *platform.Platform) *Engine {
	return &Engine{
		sim:       des.New(),
		plat:      plat,
		mailboxes: make(map[string]*Mailbox),
		functions: make(map[string]Function),
	}
}

// Sim exposes the underlying kernel (for tests and advanced scheduling).
func (e *Engine) Sim() *des.Simulator { return e.sim }

// Platform returns the platform the engine simulates on.
func (e *Engine) Platform() *platform.Platform { return e.plat }

// Now returns the current virtual time.
func (e *Engine) Now() float64 { return e.sim.Now() }

// Run executes the simulation to completion.
func (e *Engine) Run() error { return e.sim.Run() }

// Task is the unit of exchanged work, mirroring MSG tasks: an amount of
// computation (flops), a message size (bytes) and an arbitrary payload.
type Task struct {
	Name    string
	Flops   float64
	Bytes   float64
	Payload any
	Source  string // sending host name, set on Send
}

// Mailbox is a named rendezvous point. Like SimGrid mailboxes it is
// location-transparent for senders, but each mailbox is pinned to an
// owner host so transfer costs are well defined before the receiver is
// known (a documented simplification; the master–worker protocol always
// receives on the declaring host anyway).
type Mailbox struct {
	name    string
	owner   *platform.Host
	queue   []*Task
	waiters []*Process // FIFO receivers blocked on empty queue
}

// DeclareMailbox creates mailbox name owned by (received on) host.
func (e *Engine) DeclareMailbox(name, host string) error {
	if _, dup := e.mailboxes[name]; dup {
		return fmt.Errorf("msg: duplicate mailbox %q", name)
	}
	h, err := e.plat.Host(host)
	if err != nil {
		return fmt.Errorf("msg: mailbox %q: %w", name, err)
	}
	e.mailboxes[name] = &Mailbox{name: name, owner: h}
	return nil
}

func (e *Engine) mailbox(name string) (*Mailbox, error) {
	mb, ok := e.mailboxes[name]
	if !ok {
		return nil, fmt.Errorf("msg: unknown mailbox %q", name)
	}
	return mb, nil
}

// Process is a thread of control pinned to a host.
type Process struct {
	dp   *des.Process
	eng  *Engine
	host *platform.Host
}

// Host returns the host the process runs on.
func (p *Process) Host() *platform.Host { return p.host }

// Name returns the process name.
func (p *Process) Name() string { return p.dp.Name() }

// Now returns the current virtual time.
func (p *Process) Now() float64 { return p.dp.Now() }

// Spawn starts a process named name running body on the given host.
func (e *Engine) Spawn(host, name string, body func(*Process)) error {
	return e.SpawnAt(0, host, name, body)
}

// SpawnAt is Spawn with a start delay (deployment start_time).
func (e *Engine) SpawnAt(delay float64, host, name string, body func(*Process)) error {
	h, err := e.plat.Host(host)
	if err != nil {
		return fmt.Errorf("msg: spawn %q: %w", name, err)
	}
	e.sim.SpawnAt(delay, name, func(dp *des.Process) {
		body(&Process{dp: dp, eng: e, host: h})
	})
	return nil
}

// Execute simulates flops of computation on the process's host: the
// process is busy for flops/speed seconds.
func (p *Process) Execute(flops float64) {
	if flops <= 0 {
		return
	}
	p.dp.Hold(flops / p.host.Speed)
}

// Sleep blocks the process for d seconds of virtual time.
func (p *Process) Sleep(d float64) { p.dp.Hold(d) }

// Send transmits t to the named mailbox. The sender blocks for the
// transfer time from its host to the mailbox's owner host (MSG_task_send
// semantics); on return the task is delivered and any waiting receiver
// has been woken.
func (p *Process) Send(mailbox string, t *Task) error {
	mb, err := p.eng.mailbox(mailbox)
	if err != nil {
		return err
	}
	route, err := p.eng.plat.Route(p.host.Name, mb.owner.Name)
	if err != nil {
		return fmt.Errorf("msg: send to %q: %w", mailbox, err)
	}
	t.Source = p.host.Name
	p.dp.Hold(route.TransferTime(t.Bytes))
	mb.queue = append(mb.queue, t)
	if len(mb.waiters) > 0 {
		w := mb.waiters[0]
		mb.waiters = mb.waiters[1:]
		p.eng.sim.Wake(w.dp)
	}
	return nil
}

// RecvTimeout is Recv with a deadline: it returns (task, true, nil) when
// a task arrived, or (nil, false, nil) after d seconds without one. The
// resilient master uses it as its failure-detection watchdog.
func (p *Process) RecvTimeout(mailbox string, d float64) (*Task, bool, error) {
	mb, err := p.eng.mailbox(mailbox)
	if err != nil {
		return nil, false, err
	}
	for len(mb.queue) == 0 {
		mb.waiters = append(mb.waiters, p)
		if p.dp.SuspendTimeout(d) {
			// Timed out: withdraw from the waiter list so a later send
			// does not try to hand work to a process that moved on.
			for i, w := range mb.waiters {
				if w == p {
					mb.waiters = append(mb.waiters[:i], mb.waiters[i+1:]...)
					break
				}
			}
			return nil, false, nil
		}
	}
	t := mb.queue[0]
	mb.queue = mb.queue[1:]
	if len(mb.queue) > 0 && len(mb.waiters) > 0 {
		w := mb.waiters[0]
		mb.waiters = mb.waiters[1:]
		p.eng.sim.Wake(w.dp)
	}
	return t, true, nil
}

// Recv blocks until a task is available in the named mailbox and returns
// it. Receivers are served in FIFO order.
func (p *Process) Recv(mailbox string) (*Task, error) {
	mb, err := p.eng.mailbox(mailbox)
	if err != nil {
		return nil, err
	}
	for len(mb.queue) == 0 {
		mb.waiters = append(mb.waiters, p)
		p.dp.Suspend()
	}
	t := mb.queue[0]
	mb.queue = mb.queue[1:]
	// If tasks remain and more receivers wait, chain the wake-up so no
	// delivery is lost when several sends precede the receives.
	if len(mb.queue) > 0 && len(mb.waiters) > 0 {
		w := mb.waiters[0]
		mb.waiters = mb.waiters[1:]
		p.eng.sim.Wake(w.dp)
	}
	return t, nil
}

// RegisterFunction names a process body so deployment files can refer to
// it, mirroring MSG_function_register.
func (e *Engine) RegisterFunction(name string, fn Function) error {
	if _, dup := e.functions[name]; dup {
		return fmt.Errorf("msg: duplicate function %q", name)
	}
	if fn == nil {
		return fmt.Errorf("msg: nil function %q", name)
	}
	e.functions[name] = fn
	return nil
}

// Deploy spawns every process of a deployment, resolving function names
// through the registry (MSG_launch_application).
func (e *Engine) Deploy(d *platform.Deployment) error {
	if err := d.Validate(e.plat); err != nil {
		return err
	}
	for i, dp := range d.Processes {
		fn, ok := e.functions[dp.Function]
		if !ok {
			return fmt.Errorf("msg: deployment process %d: unregistered function %q", i, dp.Function)
		}
		args := dp.Arguments
		name := fmt.Sprintf("%s-%d", dp.Function, i)
		err := e.SpawnAt(dp.StartTime, dp.Host, name, func(p *Process) { fn(p, args) })
		if err != nil {
			return err
		}
	}
	return nil
}
