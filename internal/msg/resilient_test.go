package msg

import (
	"testing"

	"repro/internal/workload"
)

// resilientSetup builds a free-network cluster plus scheduler/workload.
func resilientSetup(t *testing.T, tech string, n int64, p int) (*Engine, ResilientConfig) {
	t.Helper()
	pl, master, workers := freeCluster(t, p)
	s, w, err := buildResilientSched(tech, n, p, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(pl), ResilientConfig{
		AppConfig: AppConfig{
			MasterHost:     master,
			WorkerHosts:    workers,
			Sched:          s,
			Work:           w,
			ReferenceSpeed: 1,
		},
	}
}

func TestResilientNoFailuresMatchesPlain(t *testing.T) {
	const n, p = 2000, 4
	e, cfg := resilientSetup(t, "FAC2", n, p)
	res, err := RunResilientApp(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksCompleted != n {
		t.Fatalf("completed %d, want %d", res.TasksCompleted, n)
	}
	if res.FailuresSeen != 0 || res.TasksReassigned != 0 || res.TasksDuplicated != 0 {
		t.Fatalf("phantom failures: %+v", res)
	}
	// Sanity: roughly the ideal makespan (n/p tasks × 0.01 s).
	ideal := float64(n) / float64(p) * 0.01
	if res.Makespan < ideal || res.Makespan > 1.5*ideal {
		t.Fatalf("makespan %v, ideal %v", res.Makespan, ideal)
	}
}

func TestResilientSingleFailureRecovers(t *testing.T) {
	const n, p = 2000, 4
	e, cfg := resilientSetup(t, "FAC2", n, p)
	cfg.Failures = []Failure{{Worker: 1, AfterChunks: 2}}
	res, err := RunResilientApp(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksCompleted != n {
		t.Fatalf("completed %d of %d despite recovery", res.TasksCompleted, n)
	}
	if res.FailuresSeen != 1 {
		t.Fatalf("FailuresSeen = %d, want 1", res.FailuresSeen)
	}
	if res.TasksReassigned == 0 {
		t.Fatal("no tasks reassigned")
	}
	if len(res.DeadWorkers) != 1 || res.DeadWorkers[0] != 1 {
		t.Fatalf("DeadWorkers = %v", res.DeadWorkers)
	}
	// The dead worker's recorded work stops after one completed chunk.
	if res.TasksPerWorker[1] == 0 {
		t.Fatal("worker 1 completed nothing before dying (should finish chunk 1)")
	}
}

func TestResilientMultipleFailures(t *testing.T) {
	const n, p = 3000, 6
	e, cfg := resilientSetup(t, "GSS", n, p)
	cfg.Failures = []Failure{
		{Worker: 0, AfterChunks: 1},
		{Worker: 3, AfterChunks: 2},
		{Worker: 5, AfterChunks: 1},
	}
	res, err := RunResilientApp(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksCompleted != n {
		t.Fatalf("completed %d of %d", res.TasksCompleted, n)
	}
	if res.FailuresSeen != 3 {
		t.Fatalf("FailuresSeen = %d, want 3", res.FailuresSeen)
	}
	if len(res.DeadWorkers) != 3 {
		t.Fatalf("DeadWorkers = %v", res.DeadWorkers)
	}
}

func TestResilientFailedWorkIsRedone(t *testing.T) {
	// With STAT, each worker gets exactly one huge chunk; killing worker 0
	// during it forces the whole chunk to be redone elsewhere.
	const n, p = 400, 4
	e, cfg := resilientSetup(t, "STAT", n, p)
	cfg.Failures = []Failure{{Worker: 0, AfterChunks: 1}}
	res, err := RunResilientApp(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksCompleted != n {
		t.Fatalf("completed %d of %d", res.TasksCompleted, n)
	}
	if res.TasksReassigned != 100 {
		t.Fatalf("reassigned %d, want the dead worker's whole 100-task chunk", res.TasksReassigned)
	}
	if res.TasksPerWorker[0] != 0 {
		t.Fatalf("dead worker completed %d tasks, want 0", res.TasksPerWorker[0])
	}
}

func TestResilientValidation(t *testing.T) {
	const n, p = 100, 2
	e, cfg := resilientSetup(t, "FAC2", n, p)
	cfg.Failures = []Failure{{Worker: 9, AfterChunks: 1}}
	if _, err := RunResilientApp(e, cfg); err == nil {
		t.Error("out-of-range worker accepted")
	}
	e2, cfg2 := resilientSetup(t, "FAC2", n, p)
	cfg2.Failures = []Failure{{Worker: 0, AfterChunks: 0}}
	if _, err := RunResilientApp(e2, cfg2); err == nil {
		t.Error("AfterChunks=0 accepted")
	}
	e3, cfg3 := resilientSetup(t, "FAC2", n, p)
	cfg3.Failures = []Failure{{Worker: 0, AfterChunks: 1}, {Worker: 1, AfterChunks: 1}}
	if _, err := RunResilientApp(e3, cfg3); err == nil {
		t.Error("killing all workers accepted")
	}
}

func TestResilientRejectsRandomWorkload(t *testing.T) {
	pl, master, workers := freeCluster(t, 2)
	s, _, err := buildResilientSched("FAC2", 100, 2, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ResilientConfig{AppConfig: AppConfig{
		MasterHost: master, WorkerHosts: workers,
		Sched: s, Work: workload.NewExponential(1),
	}}
	if _, err := RunResilientApp(NewEngine(pl), cfg); err == nil {
		t.Error("random workload accepted")
	}
}
