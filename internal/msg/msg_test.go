package msg

import (
	"math"
	"strings"
	"testing"

	"repro/internal/platform"
)

// testPlatform builds a 2-host platform with a known link: 1 MB/s,
// 1 ms latency.
func testPlatform(t *testing.T) *platform.Platform {
	t.Helper()
	pl := platform.New()
	if _, err := pl.AddHost("m", 1e6, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := pl.AddHost("w", 1e6, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := pl.AddLink("l", 1e6, 1e-3); err != nil {
		t.Fatal(err)
	}
	if err := pl.AddRoute("m", "w", "l"); err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestSendRecvTransferTime(t *testing.T) {
	e := NewEngine(testPlatform(t))
	if err := e.DeclareMailbox("mb", "w"); err != nil {
		t.Fatal(err)
	}
	var recvTime, sendDone float64
	e.Spawn("m", "sender", func(p *Process) {
		// 1 MB over 1 MB/s + 1 ms = 1.001 s.
		if err := p.Send("mb", &Task{Name: "data", Bytes: 1e6}); err != nil {
			t.Error(err)
		}
		sendDone = p.Now()
	})
	e.Spawn("w", "receiver", func(p *Process) {
		task, err := p.Recv("mb")
		if err != nil {
			t.Error(err)
			return
		}
		if task.Source != "m" {
			t.Errorf("source = %q", task.Source)
		}
		recvTime = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(recvTime-1.001) > 1e-9 {
		t.Fatalf("received at %v, want 1.001", recvTime)
	}
	if math.Abs(sendDone-1.001) > 1e-9 {
		t.Fatalf("send completed at %v, want 1.001 (blocking send)", sendDone)
	}
}

func TestExecuteUsesHostSpeed(t *testing.T) {
	e := NewEngine(testPlatform(t))
	var elapsed float64
	e.Spawn("m", "computer", func(p *Process) {
		start := p.Now()
		p.Execute(2e6) // 2 Mflop on 1 Mflop/s host = 2 s
		elapsed = p.Now() - start
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(elapsed-2) > 1e-12 {
		t.Fatalf("Execute took %v, want 2", elapsed)
	}
}

func TestExecuteZeroIsFree(t *testing.T) {
	e := NewEngine(testPlatform(t))
	var elapsed float64
	e.Spawn("m", "noop", func(p *Process) {
		p.Execute(0)
		p.Execute(-5)
		elapsed = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed != 0 {
		t.Fatalf("zero execute advanced time to %v", elapsed)
	}
}

func TestMultipleQueuedSends(t *testing.T) {
	// Three sends before any receive: all must be delivered, in order.
	e := NewEngine(testPlatform(t))
	e.DeclareMailbox("mb", "w")
	e.Spawn("m", "sender", func(p *Process) {
		for i := 0; i < 3; i++ {
			p.Send("mb", &Task{Name: string(rune('a' + i)), Bytes: 10})
		}
	})
	var got []string
	e.Spawn("w", "receiver", func(p *Process) {
		p.Sleep(1) // let all sends land first
		for i := 0; i < 3; i++ {
			task, err := p.Recv("mb")
			if err != nil {
				t.Error(err)
				return
			}
			got = append(got, task.Name)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if strings.Join(got, "") != "abc" {
		t.Fatalf("order = %v", got)
	}
}

func TestTwoWaitingReceivers(t *testing.T) {
	// Two receivers blocked, two sends: both must be served (chained
	// wake-ups must not lose a delivery).
	pl := testPlatform(t)
	pl.AddHost("w2", 1e6, 1)
	pl.AddLink("l2", 1e6, 1e-3)
	pl.AddRoute("m", "w2", "l2")
	e := NewEngine(pl)
	e.DeclareMailbox("mb", "m")
	served := 0
	for _, host := range []string{"w", "w2"} {
		e.Spawn(host, "recv-"+host, func(p *Process) {
			if _, err := p.Recv("mb"); err != nil {
				t.Error(err)
				return
			}
			served++
		})
	}
	e.Spawn("m", "sender", func(p *Process) {
		p.Sleep(0.5)
		p.Send("mb", &Task{Bytes: 1})
		p.Send("mb", &Task{Bytes: 1})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if served != 2 {
		t.Fatalf("served = %d, want 2", served)
	}
}

func TestUnknownMailbox(t *testing.T) {
	e := NewEngine(testPlatform(t))
	var sendErr, recvErr error
	e.Spawn("m", "p", func(p *Process) {
		sendErr = p.Send("ghost", &Task{})
		_, recvErr = p.Recv("ghost")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sendErr == nil || recvErr == nil {
		t.Fatal("unknown mailbox accepted")
	}
}

func TestDeclareMailboxErrors(t *testing.T) {
	e := NewEngine(testPlatform(t))
	if err := e.DeclareMailbox("mb", "ghost-host"); err == nil {
		t.Error("mailbox on unknown host accepted")
	}
	if err := e.DeclareMailbox("mb", "m"); err != nil {
		t.Fatal(err)
	}
	if err := e.DeclareMailbox("mb", "w"); err == nil {
		t.Error("duplicate mailbox accepted")
	}
}

func TestSpawnOnUnknownHost(t *testing.T) {
	e := NewEngine(testPlatform(t))
	if err := e.Spawn("ghost", "p", func(*Process) {}); err == nil {
		t.Error("spawn on unknown host accepted")
	}
}

func TestRecvDeadlockDetected(t *testing.T) {
	e := NewEngine(testPlatform(t))
	e.DeclareMailbox("mb", "m")
	e.Spawn("m", "starved", func(p *Process) {
		p.Recv("mb") // nobody ever sends
	})
	if err := e.Run(); err == nil {
		t.Fatal("deadlock not reported")
	}
}

func TestDeploymentDrivenRun(t *testing.T) {
	e := NewEngine(testPlatform(t))
	e.DeclareMailbox("mb", "w")
	var gotArgs []string
	var pingAt float64
	if err := e.RegisterFunction("pinger", func(p *Process, args []string) {
		gotArgs = args
		p.Send("mb", &Task{Name: "ping", Bytes: 100})
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterFunction("ponger", func(p *Process, args []string) {
		task, err := p.Recv("mb")
		if err != nil || task.Name != "ping" {
			t.Errorf("recv: %v %v", task, err)
		}
		pingAt = p.Now()
	}); err != nil {
		t.Fatal(err)
	}
	d := &platform.Deployment{Processes: []platform.DeployedProcess{
		{Host: "m", Function: "pinger", Arguments: []string{"42", "FAC2"}, StartTime: 1},
		{Host: "w", Function: "ponger"},
	}}
	if err := e.Deploy(d); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(gotArgs) != 2 || gotArgs[1] != "FAC2" {
		t.Fatalf("args = %v", gotArgs)
	}
	if pingAt < 1 {
		t.Fatalf("ping at %v, want >= 1 (start_time)", pingAt)
	}
}

func TestDeployErrors(t *testing.T) {
	e := NewEngine(testPlatform(t))
	if err := e.RegisterFunction("f", nil); err == nil {
		t.Error("nil function accepted")
	}
	e.RegisterFunction("f", func(*Process, []string) {})
	if err := e.RegisterFunction("f", func(*Process, []string) {}); err == nil {
		t.Error("duplicate function accepted")
	}
	bad := &platform.Deployment{Processes: []platform.DeployedProcess{{Host: "m", Function: "nope"}}}
	if err := e.Deploy(bad); err == nil {
		t.Error("unregistered function accepted")
	}
}
