package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/campaign"
	"repro/internal/engine"
	"repro/internal/jobs"
	"repro/internal/mw"
	"repro/internal/recur"
	"repro/internal/testutil"
)

var gateQuota = testutil.NewGateBackend("svc-gate-quota")

func init() {
	engine.Register(gateQuota)
}

// authedDo issues a request with an API key attached.
func authedDo(t *testing.T, base, key, method, path string, body []byte) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, base+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func envelopeCode(t *testing.T, body []byte) string {
	t.Helper()
	var env campaign.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("decode envelope %q: %v", body, err)
	}
	return env.Error.Code
}

// TestScheduleRoutes drives the /v1/schedules surface end to end behind
// the auth middleware: registration, tenant-scoped listing, cross-tenant
// invisibility, validation failures, and delete-returns-the-entry.
func TestScheduleRoutes(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	mgr := jobs.NewManager(jobs.Config{QueueDepth: 8, Concurrency: 1})
	defer mgr.Close()
	sched := recur.New(recur.Config{
		Submit: func(tenant string, spec engine.CampaignSpec) (string, error) {
			job, _, err := mgr.SubmitAs(tenant, spec)
			if err != nil {
				return "", err
			}
			return job.ID(), nil
		},
	})
	defer sched.Stop()

	keys := mw.NewKeyring(map[string]string{"alice": "a-key", "bob": "b-key"})
	svc := New(mgr)
	svc.SetScheduler(sched)
	srv := httptest.NewServer(mw.Chain(svc.Handler(), mw.Auth(keys, nil)))
	defer srv.Close()

	body := func(interval string, reps int) []byte {
		return []byte(fmt.Sprintf(`{"spec": %s, "interval": %q}`,
			specJSON(t, "svc-gate-quota", 1, reps), interval))
	}

	// Register as alice.
	code, resp := authedDo(t, srv.URL, "a-key", http.MethodPost, "/v1/schedules", body("1h", 3))
	if code != http.StatusCreated {
		t.Fatalf("schedule add = %d: %s", code, resp)
	}
	var created recur.Schedule
	if err := json.Unmarshal(resp, &created); err != nil {
		t.Fatal(err)
	}
	if created.ID == "" || created.Tenant != "alice" || created.Hash == "" {
		t.Fatalf("created schedule = %+v", created)
	}

	// Interval below the scheduler floor and an invalid spec are
	// distinguishable failures.
	if code, resp := authedDo(t, srv.URL, "a-key", http.MethodPost, "/v1/schedules", body("10ms", 3)); code != http.StatusBadRequest || envelopeCode(t, resp) != campaign.CodeInvalidArgument {
		t.Fatalf("tiny interval = %d %s", code, resp)
	}
	if code, resp := authedDo(t, srv.URL, "a-key", http.MethodPost, "/v1/schedules", body("1h", 0)); code != http.StatusBadRequest || envelopeCode(t, resp) != campaign.CodeInvalidSpec {
		t.Fatalf("invalid spec = %d %s", code, resp)
	}

	// Listing is tenant-scoped; bob sees nothing.
	var listed struct {
		Schedules []recur.Schedule `json:"schedules"`
	}
	code, resp = authedDo(t, srv.URL, "a-key", http.MethodGet, "/v1/schedules", nil)
	if err := json.Unmarshal(resp, &listed); err != nil || code != http.StatusOK {
		t.Fatalf("list = %d: %s (%v)", code, resp, err)
	}
	if len(listed.Schedules) != 1 || listed.Schedules[0].ID != created.ID {
		t.Fatalf("alice's list = %+v", listed.Schedules)
	}
	code, resp = authedDo(t, srv.URL, "b-key", http.MethodGet, "/v1/schedules", nil)
	if err := json.Unmarshal(resp, &listed); err != nil || code != http.StatusOK {
		t.Fatalf("bob list = %d: %s (%v)", code, resp, err)
	}
	if len(listed.Schedules) != 0 {
		t.Fatalf("bob sees alice's schedules: %+v", listed.Schedules)
	}

	// Foreign and unknown IDs are both opaque 404s.
	if code, resp := authedDo(t, srv.URL, "b-key", http.MethodGet, "/v1/schedules/"+created.ID, nil); code != http.StatusNotFound || envelopeCode(t, resp) != campaign.CodeNotFound {
		t.Fatalf("cross-tenant get = %d %s", code, resp)
	}
	if code, _ := authedDo(t, srv.URL, "b-key", http.MethodDelete, "/v1/schedules/"+created.ID, nil); code != http.StatusNotFound {
		t.Fatalf("cross-tenant delete = %d", code)
	}
	if code, _ := authedDo(t, srv.URL, "a-key", http.MethodGet, "/v1/schedules/zzz", nil); code != http.StatusNotFound {
		t.Fatalf("unknown id = %d", code)
	}

	// The owner's delete returns the removed entry.
	code, resp = authedDo(t, srv.URL, "a-key", http.MethodDelete, "/v1/schedules/"+created.ID, nil)
	var removed recur.Schedule
	if err := json.Unmarshal(resp, &removed); err != nil || code != http.StatusOK || removed.ID != created.ID {
		t.Fatalf("delete = %d: %s (%v)", code, resp, err)
	}
	if code, _ := authedDo(t, srv.URL, "a-key", http.MethodGet, "/v1/schedules/"+created.ID, nil); code != http.StatusNotFound {
		t.Fatalf("deleted schedule still visible: %d", code)
	}
}

// TestScheduleRoutesAbsentWithoutScheduler: a server without
// SetScheduler answers 404 on the whole /v1/schedules surface.
func TestScheduleRoutesAbsentWithoutScheduler(t *testing.T) {
	mgr := jobs.NewManager(jobs.Config{QueueDepth: 2, Concurrency: 1})
	defer mgr.Close()
	srv := httptest.NewServer(New(mgr).Handler())
	defer srv.Close()
	for _, probe := range []struct{ method, path string }{
		{http.MethodPost, "/v1/schedules"},
		{http.MethodGet, "/v1/schedules"},
		{http.MethodGet, "/v1/schedules/s1"},
		{http.MethodDelete, "/v1/schedules/s1"},
	} {
		if code, _ := authedDo(t, srv.URL, "", probe.method, probe.path, nil); code != http.StatusNotFound {
			t.Fatalf("%s %s without scheduler = %d, want 404", probe.method, probe.path, code)
		}
	}
}

// TestSubmitQuotaAndAuthMapping: over-quota submissions surface as 403
// quota_exceeded envelopes, bad keys as 401 unauthorized, and the
// rate limiter as 429 with a Retry-After header — the full middleware
// chain over the real service handler.
func TestSubmitQuotaAndAuthMapping(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	gateQuota.Reset()
	mgr := jobs.NewManager(jobs.Config{QueueDepth: 8, Concurrency: 1, QuotaQueued: 1})
	keys := mw.NewKeyring(map[string]string{"alice": "a-key"})
	// Burst of exactly 3 with negligible refill: alice's three submits
	// pass the limiter (the third reaching the quota check), then the
	// bucket is dry.
	lim := mw.NewLimiter(0.01, 3)
	srv := httptest.NewServer(mw.Chain(New(mgr).Handler(),
		mw.Auth(keys, nil), mw.RateLimit(lim, nil)))
	defer func() {
		srv.Close()
		gateQuota.Release()
		mgr.Close()
	}()

	// No key → 401 before the handler runs.
	if code, resp := authedDo(t, srv.URL, "", http.MethodPost, "/v1/jobs", specJSON(t, "svc-gate-quota", 1, 1)); code != http.StatusUnauthorized || envelopeCode(t, resp) != campaign.CodeUnauthorized {
		t.Fatalf("anonymous submit = %d %s", code, resp)
	}

	// First job occupies the single worker (gated backend), second
	// fills alice's queued quota of one, third is rejected 403.
	if code, resp := authedDo(t, srv.URL, "a-key", http.MethodPost, "/v1/jobs", specJSON(t, "svc-gate-quota", 1, 1)); code != http.StatusAccepted {
		t.Fatalf("first submit = %d %s", code, resp)
	}
	waitRunning := time.Now().Add(5 * time.Second)
	for gateQuota.Started.Load() == 0 {
		if time.Now().After(waitRunning) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if code, resp := authedDo(t, srv.URL, "a-key", http.MethodPost, "/v1/jobs", specJSON(t, "svc-gate-quota", 2, 1)); code != http.StatusAccepted {
		t.Fatalf("second submit = %d %s", code, resp)
	}
	code, resp := authedDo(t, srv.URL, "a-key", http.MethodPost, "/v1/jobs", specJSON(t, "svc-gate-quota", 3, 1))
	if code != http.StatusForbidden || envelopeCode(t, resp) != campaign.CodeQuotaExceeded {
		t.Fatalf("over-quota submit = %d %s", code, resp)
	}

	// The burst is spent; the next request rate-limits with a
	// Retry-After hint.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/jobs", nil)
	req.Header.Set("Authorization", "Bearer a-key")
	last, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer last.Body.Close()
	body, _ := io.ReadAll(last.Body)
	if last.StatusCode != http.StatusTooManyRequests || envelopeCode(t, body) != campaign.CodeRateLimited {
		t.Fatalf("dry bucket = %d %s", last.StatusCode, body)
	}
	if last.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
}
