// Package service exposes the campaign job manager (internal/jobs) over
// HTTP — the dlsimd daemon's API. The surface is deliberately small and
// streaming-first:
//
//	POST   /v1/jobs               submit a CampaignSpec (JSON body)
//	GET    /v1/jobs               list all jobs
//	GET    /v1/jobs/{id}          one job's status and progress
//	GET    /v1/jobs/{id}/results  stream results as JSON Lines or CSV
//	DELETE /v1/jobs/{id}          cancel a queued or running job
//	GET    /healthz               liveness probe
//
// Results are streamed through the engine's deterministic sink
// pipeline: any number of clients fetching the same job receive
// byte-identical output, whether the campaign ran live or was replayed
// from the content-addressed store. A client disconnect cancels the
// replay through the request context.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/engine"
	"repro/internal/jobs"
)

// Server routes HTTP requests to a job manager.
type Server struct {
	mgr *jobs.Manager
}

// New returns a server fronting the given manager.
func New(mgr *jobs.Manager) *Server { return &Server{mgr: mgr} }

// Handler builds the service's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.health)
	mux.HandleFunc("POST /v1/jobs", s.submit)
	mux.HandleFunc("GET /v1/jobs", s.list)
	mux.HandleFunc("GET /v1/jobs/{id}", s.status)
	mux.HandleFunc("GET /v1/jobs/{id}/results", s.results)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancel)
	return mux
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) health(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// submitResponse extends the job snapshot with the dedup verdict for
// this particular submission.
type submitResponse struct {
	jobs.Snapshot
	Deduped bool `json:"deduped"`
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	// 1 MiB is far beyond any realistic grid description.
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var spec engine.CampaignSpec
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decode campaign spec: %v", err)
		return
	}
	job, deduped, err := s.mgr.Submit(spec)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case errors.Is(err, jobs.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, submitResponse{Snapshot: job.Snapshot(), Deduped: deduped})
}

func (s *Server) list(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.mgr.List()})
}

func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	job, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, job.Snapshot())
}

func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.mgr.Cancel(id); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	job, err := s.mgr.Get(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, job.Snapshot())
}

// results streams the job's per-run metrics. Query parameters:
//
//	format=jsonl|csv  output encoding (default jsonl)
//	wait=0            fail with 409 instead of waiting for completion
//
// By default the handler waits for the job to finish (bounded by the
// request context), then streams the deterministic event sequence; a
// failed or cancelled job yields 409 with the job's error.
func (s *Server) results(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, err := s.mgr.Get(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	wait := true
	if v := r.URL.Query().Get("wait"); v != "" {
		wait, err = strconv.ParseBool(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad wait parameter: %v", err)
			return
		}
	}
	snap := job.Snapshot()
	if !snap.State.Terminal() {
		if !wait {
			writeError(w, http.StatusConflict, "job %s is %s", id, snap.State)
			return
		}
		if snap, err = s.mgr.Wait(r.Context(), id); err != nil {
			// Client went away (or shutdown); nothing sensible to write.
			writeError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
	}
	if snap.State != jobs.StateDone {
		writeError(w, http.StatusConflict, "job %s is %s: %s", id, snap.State, snap.Error)
		return
	}

	var sink engine.Sink
	switch format := r.URL.Query().Get("format"); format {
	case "", "jsonl":
		w.Header().Set("Content-Type", "application/jsonl")
		sink = engine.NewJSONLSink(w)
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		sink = engine.NewCSVSink(w)
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (want jsonl or csv)", format)
		return
	}
	w.Header().Set("X-Campaign-Hash", snap.Hash)
	w.WriteHeader(http.StatusOK)
	// Errors past this point cannot change the status code; a client
	// disconnect cancels the replay via the request context and simply
	// truncates the stream.
	_ = s.mgr.Results(r.Context(), id, sink)
}
