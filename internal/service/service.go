// Package service exposes the campaign job manager (internal/jobs) over
// HTTP — the dlsimd daemon's versioned /v1 API. The surface is
// deliberately small and streaming-first:
//
//	GET    /v1                    service description (version, techniques, backends, seed policies)
//	GET    /v1/techniques         DLS technique discovery
//	GET    /v1/backends           simulation backend discovery
//	POST   /v1/jobs               submit a campaign spec (JSON body)
//	GET    /v1/jobs               list jobs; pagination via ?limit= and ?after=
//	GET    /v1/jobs/{id}          one job's status; ?wait=1 blocks until terminal
//	GET    /v1/jobs/{id}/results  stream results as JSON Lines or CSV
//	DELETE /v1/jobs/{id}          cancel a queued or running job
//	POST   /v1/schedules          register a recurring campaign (spec + interval + jitter)
//	GET    /v1/schedules          list the caller's schedules
//	GET    /v1/schedules/{id}     one schedule's status and tick statistics
//	DELETE /v1/schedules/{id}     remove a schedule (returns the removed entry)
//	GET    /v1/health             readiness document (queue depth, drain flag, journal/auth state)
//	GET    /healthz               liveness probe
//
// The /v1/schedules routes exist only when a recurring-campaign
// scheduler is attached via SetScheduler (the daemon's -schedules
// mode); otherwise they answer 404. Schedules are tenant-scoped: a
// caller only ever sees and deletes its own.
//
// Every error response is a structured JSON envelope
//
//	{"error": {"code": "...", "message": "...", "details": {...}}}
//
// with a stable code from the campaign package's Code* set, so typed
// clients (repro/client) can branch on failures without parsing
// messages. Result streams honor content negotiation: ?format=jsonl|csv
// wins, otherwise the Accept header chooses, defaulting to JSON Lines.
//
// Results are streamed through the engine's deterministic sink
// pipeline: any number of clients fetching the same job receive
// byte-identical output, whether the campaign ran live or was replayed
// from the content-addressed store. A client disconnect cancels the
// replay through the request context. API.md at the repository root
// documents the full contract.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/campaign"
	"repro/internal/engine"
	"repro/internal/jobs"
	"repro/internal/mw"
	"repro/internal/recur"
)

// Server routes HTTP requests to a job manager.
type Server struct {
	mgr   *jobs.Manager
	exec  *campaign.Execution
	sched *recur.Scheduler

	draining   atomic.Bool
	healthHook atomic.Pointer[func(*campaign.Health)]
}

// New returns a server fronting the given manager.
func New(mgr *jobs.Manager) *Server { return &Server{mgr: mgr} }

// SetExecution attaches the daemon's effective execution configuration
// (CPU count, worker pool, chunk size) to the GET /v1 description.
// Informational only; call before Handler is served.
func (s *Server) SetExecution(e campaign.Execution) { s.exec = &e }

// SetScheduler enables the /v1/schedules routes backed by the given
// recurring-campaign scheduler. Call before Handler is served; without
// it the routes answer 404.
func (s *Server) SetScheduler(sc *recur.Scheduler) { s.sched = sc }

// SetDraining flips the /v1/health readiness bit. Safe to call while
// serving — the daemon sets it when graceful shutdown begins, before
// the listener stops, so probes and coordinators see the node stop
// being a placement target while running jobs finish.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// SetHealthHook installs a function that decorates the /v1/health
// document with daemon-level state the service layer cannot see
// (journal health, auth configuration). Safe to call while serving.
func (s *Server) SetHealthHook(fn func(*campaign.Health)) { s.healthHook.Store(&fn) }

// Handler builds the service's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.health)
	mux.HandleFunc("GET /v1/health", s.healthV1)
	mux.HandleFunc("GET /v1", s.describe)
	mux.HandleFunc("GET /v1/{$}", s.describe)
	mux.HandleFunc("GET /v1/techniques", s.techniques)
	mux.HandleFunc("GET /v1/backends", s.backends)
	mux.HandleFunc("POST /v1/jobs", s.submit)
	mux.HandleFunc("GET /v1/jobs", s.list)
	mux.HandleFunc("GET /v1/jobs/{id}", s.status)
	mux.HandleFunc("GET /v1/jobs/{id}/results", s.results)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancel)
	if s.sched != nil {
		mux.HandleFunc("POST /v1/schedules", s.scheduleAdd)
		mux.HandleFunc("GET /v1/schedules", s.scheduleList)
		mux.HandleFunc("GET /v1/schedules/{id}", s.scheduleGet)
		mux.HandleFunc("DELETE /v1/schedules/{id}", s.scheduleDelete)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError emits the structured envelope (campaign.ErrorEnvelope —
// the shared wire definition the client SDK decodes). details may be
// nil.
func writeError(w http.ResponseWriter, status int, code string, details map[string]any, format string, args ...any) {
	writeJSON(w, status, campaign.ErrorEnvelope{Error: campaign.ErrorBody{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
		Details: details,
	}})
}

func (s *Server) health(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// healthV1 serves the readiness document. Liveness stays /healthz; this
// endpoint answers the richer placement question — accepting? draining?
// how loaded? — for probes and the fleet coordinator's node pool. A
// draining node answers 503 (so status-code probes flip immediately)
// but still carries the full JSON document in the body; clients decode
// it either way.
func (s *Server) healthV1(w http.ResponseWriter, _ *http.Request) {
	stats := s.mgr.Stats()
	h := campaign.Health{
		Ok:         true,
		Ready:      true,
		Service:    "dlsimd",
		QueueDepth: stats.Queued,
		Running:    stats.Running,
	}
	if s.draining.Load() || s.mgr.Draining() {
		h.Ready = false
		h.Draining = true
	}
	if fn := s.healthHook.Load(); fn != nil && *fn != nil {
		(*fn)(&h)
	}
	code := http.StatusOK
	if !h.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

func (s *Server) describe(w http.ResponseWriter, _ *http.Request) {
	d := campaign.LocalDescription()
	d.Service = "dlsimd"
	d.Execution = s.exec
	writeJSON(w, http.StatusOK, d)
}

func (s *Server) techniques(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"techniques": campaign.LocalDescription().Techniques})
}

func (s *Server) backends(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"backends": engine.Names()})
}

// submitResponse extends the job snapshot with the dedup verdict for
// this particular submission.
type submitResponse struct {
	jobs.Snapshot
	Deduped bool `json:"deduped"`
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	// 1 MiB is far beyond any realistic grid description.
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var spec engine.CampaignSpec
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, campaign.CodeInvalidArgument, nil,
			"decode campaign spec: %v", err)
		return
	}
	job, deduped, err := s.mgr.SubmitAs(tenantOf(r), spec)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		writeError(w, http.StatusServiceUnavailable, campaign.CodeQueueFull, nil, "%v", err)
		return
	case errors.Is(err, jobs.ErrQuotaExceeded):
		writeError(w, http.StatusForbidden, campaign.CodeQuotaExceeded, nil, "%v", err)
		return
	case errors.Is(err, jobs.ErrClosed), errors.Is(err, jobs.ErrDraining):
		writeError(w, http.StatusServiceUnavailable, campaign.CodeShuttingDown, nil, "%v", err)
		return
	case err != nil:
		// Submit's only other failure mode is spec validation.
		writeError(w, http.StatusBadRequest, campaign.CodeInvalidSpec, nil, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, submitResponse{Snapshot: job.Snapshot(), Deduped: deduped})
}

// tenantOf resolves the request's tenant as the auth middleware
// established it; "" (untagged) when the request arrived as anonymous,
// so quota bookkeeping matches direct Manager.Submit calls.
func tenantOf(r *http.Request) string {
	if t := mw.TenantFrom(r.Context()); t != mw.Anonymous {
		return t
	}
	return ""
}

// listResponse is one page of jobs. NextAfter, when set, is the cursor
// of the following page.
type listResponse struct {
	Jobs      []jobs.Snapshot `json:"jobs"`
	NextAfter string          `json:"next_after,omitempty"`
}

func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, campaign.CodeInvalidArgument,
				map[string]any{"limit": v}, "bad limit parameter %q: want a non-negative integer", v)
			return
		}
		limit = n
	}
	after := q.Get("after")
	page, next, err := s.mgr.ListPage(after, limit)
	if err != nil {
		writeError(w, http.StatusNotFound, campaign.CodeNotFound,
			map[string]any{"after": after}, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, listResponse{Jobs: page, NextAfter: next})
}

func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, err := s.mgr.Get(id)
	if err != nil {
		writeError(w, http.StatusNotFound, campaign.CodeNotFound,
			map[string]any{"id": id}, "%v", err)
		return
	}
	if v := r.URL.Query().Get("wait"); v != "" {
		wait, err := strconv.ParseBool(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, campaign.CodeInvalidArgument,
				map[string]any{"wait": v}, "bad wait parameter: %v", err)
			return
		}
		if wait {
			// Block (bounded by the request context) until terminal; a
			// client disconnect just abandons the wait.
			snap, err := s.mgr.Wait(r.Context(), id)
			if err != nil {
				writeError(w, http.StatusServiceUnavailable, campaign.CodeShuttingDown, nil, "%v", err)
				return
			}
			writeJSON(w, http.StatusOK, snap)
			return
		}
	}
	writeJSON(w, http.StatusOK, job.Snapshot())
}

func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.mgr.Cancel(id); err != nil {
		writeError(w, http.StatusNotFound, campaign.CodeNotFound,
			map[string]any{"id": id}, "%v", err)
		return
	}
	job, err := s.mgr.Get(id)
	if err != nil {
		writeError(w, http.StatusNotFound, campaign.CodeNotFound,
			map[string]any{"id": id}, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, job.Snapshot())
}

// negotiateFormat picks the result encoding: an explicit ?format= wins,
// then the Accept header (media ranges with q-values; highest quality
// wins, JSON Lines on ties or no preference), then JSON Lines. A
// non-zero errStatus reports a failed negotiation: 400 for an
// unsupported explicit format, 406 when the Accept header mentions the
// encodings this route serves but assigns every one q=0.
func negotiateFormat(r *http.Request) (format string, errStatus int) {
	switch format := r.URL.Query().Get("format"); format {
	case "jsonl", "csv":
		return format, 0
	case "":
	default:
		return "", http.StatusBadRequest
	}
	// Accumulate the best quality offered for each encoding we serve
	// (-1 = not mentioned). application/jsonl and application/x-ndjson
	// are the JSONL types; */* and absent or unrecognized headers
	// default to JSONL — lenient, since many clients send Accept values
	// they do not mean strictly.
	qJSONL, qCSV := -1.0, -1.0
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		fields := strings.Split(part, ";")
		mediaType := strings.ToLower(strings.TrimSpace(fields[0]))
		q := 1.0
		for _, p := range fields[1:] {
			if v, ok := strings.CutPrefix(strings.TrimSpace(p), "q="); ok {
				if parsed, err := strconv.ParseFloat(v, 64); err == nil {
					q = parsed
				}
			}
		}
		switch mediaType {
		case "text/csv":
			qCSV = max(qCSV, q)
		case "application/jsonl", "application/x-ndjson", "application/json":
			qJSONL = max(qJSONL, q)
		case "text/*":
			qCSV = max(qCSV, q)
		case "application/*", "*/*":
			qJSONL = max(qJSONL, q)
		}
	}
	switch {
	case qCSV > 0 && qCSV > qJSONL:
		return "csv", 0
	case qJSONL > 0 || (qJSONL < 0 && qCSV < 0):
		return "jsonl", 0
	default:
		// Our encodings were mentioned and every one was refused (q=0).
		return "", http.StatusNotAcceptable
	}
}

// scheduleRequest is the POST /v1/schedules body.
type scheduleRequest struct {
	Spec     engine.CampaignSpec `json:"spec"`
	Interval recur.Duration      `json:"interval"`
	Jitter   recur.Duration      `json:"jitter,omitempty"`
}

func (s *Server) scheduleAdd(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req scheduleRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, campaign.CodeInvalidArgument, nil,
			"decode schedule request: %v", err)
		return
	}
	// Validate the spec before Add so a bad grid reports invalid_spec
	// (matching POST /v1/jobs) while interval/jitter problems report
	// invalid_argument below.
	if err := req.Spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, campaign.CodeInvalidSpec, nil, "%v", err)
		return
	}
	sched, err := s.sched.Add(tenantOf(r), req.Spec,
		time.Duration(req.Interval), time.Duration(req.Jitter))
	switch {
	case errors.Is(err, recur.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, campaign.CodeShuttingDown, nil, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, campaign.CodeInvalidArgument, nil, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, sched)
}

// scheduleListResponse wraps the schedule list for forward-compatible
// extension.
type scheduleListResponse struct {
	Schedules []recur.Schedule `json:"schedules"`
}

func (s *Server) scheduleList(w http.ResponseWriter, r *http.Request) {
	list := s.sched.ListTenant(tenantOf(r))
	if list == nil {
		list = []recur.Schedule{}
	}
	writeJSON(w, http.StatusOK, scheduleListResponse{Schedules: list})
}

// scheduleFor fetches a schedule the caller owns; foreign and unknown
// IDs are indistinguishable (both 404) so tenants cannot probe each
// other's schedule namespace.
func (s *Server) scheduleFor(w http.ResponseWriter, r *http.Request) (recur.Schedule, bool) {
	id := r.PathValue("id")
	sched, err := s.sched.Get(id)
	if err != nil || sched.Tenant != tenantOf(r) {
		writeError(w, http.StatusNotFound, campaign.CodeNotFound,
			map[string]any{"id": id}, "%s: %q", recur.ErrNotFound, id)
		return recur.Schedule{}, false
	}
	return sched, true
}

func (s *Server) scheduleGet(w http.ResponseWriter, r *http.Request) {
	sched, ok := s.scheduleFor(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, sched)
}

func (s *Server) scheduleDelete(w http.ResponseWriter, r *http.Request) {
	sched, ok := s.scheduleFor(w, r)
	if !ok {
		return
	}
	if err := s.sched.Remove(sched.ID); err != nil {
		// Lost a race with a concurrent delete.
		writeError(w, http.StatusNotFound, campaign.CodeNotFound,
			map[string]any{"id": sched.ID}, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, sched)
}

// results streams the job's per-run metrics. Query parameters:
//
//	format=jsonl|csv  output encoding (default: content negotiation on
//	                  the Accept header, falling back to jsonl)
//	wait=0            fail with 409 job_not_done instead of waiting
//
// By default the handler waits for the job to finish (bounded by the
// request context), then streams the deterministic event sequence; a
// failed or cancelled job yields 409 with code job_failed or
// job_cancelled.
func (s *Server) results(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, err := s.mgr.Get(id)
	if err != nil {
		writeError(w, http.StatusNotFound, campaign.CodeNotFound,
			map[string]any{"id": id}, "%v", err)
		return
	}
	wait := true
	if v := r.URL.Query().Get("wait"); v != "" {
		wait, err = strconv.ParseBool(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, campaign.CodeInvalidArgument,
				map[string]any{"wait": v}, "bad wait parameter: %v", err)
			return
		}
	}
	format, errStatus := negotiateFormat(r)
	switch errStatus {
	case 0:
	case http.StatusNotAcceptable:
		writeError(w, errStatus, campaign.CodeNotAcceptable,
			map[string]any{"accept": r.Header.Get("Accept")},
			"no acceptable encoding: this route serves jsonl and csv")
		return
	default:
		writeError(w, errStatus, campaign.CodeInvalidArgument,
			map[string]any{"format": r.URL.Query().Get("format")},
			"unknown format %q (want jsonl or csv)", r.URL.Query().Get("format"))
		return
	}
	snap := job.Snapshot()
	if !snap.State.Terminal() {
		if !wait {
			writeError(w, http.StatusConflict, campaign.CodeNotDone,
				map[string]any{"id": id, "state": snap.State}, "job %s is %s", id, snap.State)
			return
		}
		if snap, err = s.mgr.Wait(r.Context(), id); err != nil {
			// Client went away (or shutdown); nothing sensible to write.
			writeError(w, http.StatusServiceUnavailable, campaign.CodeShuttingDown, nil, "%v", err)
			return
		}
	}
	if snap.State != jobs.StateDone {
		code := campaign.CodeJobFailed
		if snap.State == jobs.StateCancelled {
			code = campaign.CodeJobCancelled
		}
		writeError(w, http.StatusConflict, code,
			map[string]any{"id": id, "state": snap.State, "job_error": snap.Error},
			"job %s is %s: %s", id, snap.State, snap.Error)
		return
	}

	var sink engine.Sink
	switch format {
	case "jsonl":
		w.Header().Set("Content-Type", "application/jsonl")
		sink = engine.NewJSONLSink(w)
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		sink = engine.NewCSVSink(w)
	}
	w.Header().Set("X-Campaign-Hash", snap.Hash)
	w.WriteHeader(http.StatusOK)
	// Errors past this point cannot change the status code; a client
	// disconnect cancels the replay via the request context and simply
	// truncates the stream.
	_ = s.mgr.Results(r.Context(), id, sink)
}
