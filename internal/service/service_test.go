package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/campaign"
	"repro/internal/engine"
	"repro/internal/jobs"
	"repro/internal/testutil"
	"repro/internal/workload"
)

var (
	gateFlight = testutil.NewGateBackend("svc-gate-flight")
	gateCancel = testutil.NewGateBackend("svc-gate-cancel")
)

func init() {
	engine.Register(gateFlight)
	engine.Register(gateCancel)
}

func specJSON(t *testing.T, backend string, seed uint64, reps int) []byte {
	t.Helper()
	data, err := json.Marshal(engine.CampaignSpec{
		Backend:      backend,
		Techniques:   []string{"FAC2", "SS"},
		Ns:           []int64{128},
		Ps:           []int{2},
		Workload:     workload.Spec{Kind: "exponential", P1: 1},
		H:            0.5,
		Replications: reps,
		Seed:         seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// client is a minimal typed wrapper over the test server.
type client struct {
	t    *testing.T
	base string
}

func (c *client) do(method, path string, body []byte) (int, []byte) {
	c.t.Helper()
	req, err := http.NewRequest(method, c.base+path, bytes.NewReader(body))
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	return resp.StatusCode, out
}

func (c *client) submit(spec []byte) (id string, deduped bool) {
	c.t.Helper()
	code, body := c.do(http.MethodPost, "/v1/jobs", spec)
	if code != http.StatusAccepted {
		c.t.Fatalf("submit = %d: %s", code, body)
	}
	var resp struct {
		ID      string `json:"id"`
		Deduped bool   `json:"deduped"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		c.t.Fatal(err)
	}
	return resp.ID, resp.Deduped
}

func (c *client) waitState(id string, want jobs.State) {
	c.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body := c.do(http.MethodGet, "/v1/jobs/"+id, nil)
		if code != http.StatusOK {
			c.t.Fatalf("status %s = %d: %s", id, code, body)
		}
		var snap jobs.Snapshot
		if err := json.Unmarshal(body, &snap); err != nil {
			c.t.Fatal(err)
		}
		if snap.State == want {
			return
		}
		if time.Now().After(deadline) {
			c.t.Fatalf("job %s stuck in %s, want %s", id, snap.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServiceSingleflightStreamingAndCancel is the PR's integration
// acceptance test: the daemon's handler on an ephemeral port accepts
// two concurrent identical submissions, executes the campaign exactly
// once (singleflight + content-addressed cache), streams byte-identical
// JSON Lines to both clients, and cancels a third long-running job
// mid-flight — all without leaking goroutines.
func TestServiceSingleflightStreamingAndCancel(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	gateFlight.Reset()
	gateCancel.Reset()
	baseRuns := gateFlight.Runs.Load()

	mgr := jobs.NewManager(jobs.Config{QueueDepth: 8, Concurrency: 2})
	// httptest.NewServer binds 127.0.0.1 on an ephemeral port, exactly
	// like dlsimd with -addr 127.0.0.1:0.
	srv := httptest.NewServer(New(mgr).Handler())
	defer func() {
		srv.Close()
		mgr.Close()
	}()
	c := &client{t: t, base: srv.URL}

	// --- Singleflight: two concurrent identical submissions, one run.
	const reps = 5
	spec := specJSON(t, "svc-gate-flight", 42, reps)
	firstID, deduped := c.submit(spec)
	if deduped {
		t.Fatal("first submission reported deduped")
	}
	c.waitState(firstID, jobs.StateRunning)
	secondID, deduped := c.submit(spec)
	if secondID != firstID || !deduped {
		t.Fatalf("concurrent identical submission got job %s (deduped %v); want shared %s", secondID, deduped, firstID)
	}

	// Both clients ask for results while the job is still gated; the
	// handler waits for completion, then streams.
	var wg sync.WaitGroup
	bodies := make([]string, 2)
	codes := make([]int, 2)
	for i := range bodies {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/v1/jobs/" + firstID + "/results?format=jsonl")
			if err != nil {
				t.Errorf("results %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			out, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Errorf("results %d: %v", i, err)
				return
			}
			codes[i] = resp.StatusCode
			bodies[i] = string(out)
		}(i)
	}
	// Give both requests time to reach the wait, then open the gate.
	time.Sleep(20 * time.Millisecond)
	gateFlight.Release()
	wg.Wait()

	totalRuns := int64(2 * reps) // 2 techniques × 1 n × 1 p × reps
	if got := gateFlight.Runs.Load() - baseRuns; got != totalRuns {
		t.Fatalf("backend executed %d runs for 2 submissions, want exactly %d", got, totalRuns)
	}
	for i := range bodies {
		if codes[i] != http.StatusOK {
			t.Fatalf("results %d = %d: %s", i, codes[i], bodies[i])
		}
	}
	if bodies[0] != bodies[1] {
		t.Fatal("the two clients received different result streams")
	}
	if got := strings.Count(bodies[0], "\n"); got != int(totalRuns) {
		t.Fatalf("results stream has %d lines, want %d", got, totalRuns)
	}
	for _, line := range strings.Split(strings.TrimRight(bodies[0], "\n"), "\n") {
		if !strings.HasPrefix(line, `{"point":`) {
			t.Fatalf("unexpected JSONL line: %s", line)
		}
	}

	// CSV rendering of the same job shares the replay path.
	code, csvBody := c.do(http.MethodGet, "/v1/jobs/"+firstID+"/results?format=csv", nil)
	if code != http.StatusOK || !strings.HasPrefix(string(csvBody), "point,technique,") {
		t.Fatalf("csv results = %d: %.60s", code, csvBody)
	}

	// --- Cancel a long-running job mid-flight.
	cancelID, _ := c.submit(specJSON(t, "svc-gate-cancel", 43, 50))
	c.waitState(cancelID, jobs.StateRunning)
	code, body := c.do(http.MethodDelete, "/v1/jobs/"+cancelID, nil)
	if code != http.StatusOK {
		t.Fatalf("cancel = %d: %s", code, body)
	}
	c.waitState(cancelID, jobs.StateCancelled)
	if code, body := c.do(http.MethodGet, "/v1/jobs/"+cancelID+"/results", nil); code != http.StatusConflict {
		t.Fatalf("results of cancelled job = %d: %s", code, body)
	}
	if gateCancel.Runs.Load() != 0 {
		t.Fatalf("cancelled job completed %d backend runs", gateCancel.Runs.Load())
	}

	// --- List shows all three submissions-worth of jobs.
	code, body = c.do(http.MethodGet, "/v1/jobs", nil)
	if code != http.StatusOK {
		t.Fatalf("list = %d", code)
	}
	var list struct {
		Jobs []jobs.Snapshot `json:"jobs"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 2 {
		t.Fatalf("list has %d jobs, want 2 (dedup shares the first)", len(list.Jobs))
	}
	// The goroutine-leak check in the deferred CheckGoroutines runs
	// after srv.Close + mgr.Close — the graceful-shutdown path.
}

// TestServiceErrorsAndHealth covers the non-happy-path HTTP surface.
func TestServiceErrorsAndHealth(t *testing.T) {
	mgr := jobs.NewManager(jobs.Config{})
	srv := httptest.NewServer(New(mgr).Handler())
	defer func() {
		srv.Close()
		mgr.Close()
	}()
	c := &client{t: t, base: srv.URL}

	if code, body := c.do(http.MethodGet, "/healthz", nil); code != http.StatusOK || !strings.Contains(string(body), "true") {
		t.Fatalf("healthz = %d: %s", code, body)
	}
	if code, _ := c.do(http.MethodPost, "/v1/jobs", []byte("{not json")); code != http.StatusBadRequest {
		t.Fatalf("malformed spec = %d, want 400", code)
	}
	if code, _ := c.do(http.MethodPost, "/v1/jobs", []byte(`{"techniques":["FAC2"],"ns":[16],"ps":[2],"workload":{"kind":"constant","p1":1},"replications":0,"seed":1}`)); code != http.StatusBadRequest {
		t.Fatalf("invalid spec = %d, want 400", code)
	}
	if code, _ := c.do(http.MethodGet, "/v1/jobs/j999", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", code)
	}
	if code, _ := c.do(http.MethodDelete, "/v1/jobs/j999", nil); code != http.StatusNotFound {
		t.Fatalf("cancel unknown = %d, want 404", code)
	}

	// A completed job with an unknown format parameter is a 400; with
	// wait=0 on a fresh (queued/running) job, a 409.
	id, _ := c.submit(specJSON(t, "", 77, 2))
	if _, err := mgr.Wait(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	if code, _ := c.do(http.MethodGet, "/v1/jobs/"+id+"/results?format=xml", nil); code != http.StatusBadRequest {
		t.Fatalf("unknown format = %d, want 400", code)
	}
}

// TestServiceDiscoveryAndEnvelope covers the v1 discovery endpoints and
// the structured error envelope's wire shape.
func TestServiceDiscoveryAndEnvelope(t *testing.T) {
	mgr := jobs.NewManager(jobs.Config{})
	srv := httptest.NewServer(New(mgr).Handler())
	defer func() {
		srv.Close()
		mgr.Close()
	}()
	c := &client{t: t, base: srv.URL}

	var desc campaign.Description
	code, body := c.do(http.MethodGet, "/v1", nil)
	if err := json.Unmarshal(body, &desc); err != nil || code != http.StatusOK {
		t.Fatalf("GET /v1 = %d (%v): %s", code, err, body)
	}
	if desc.Service != "dlsimd" || desc.APIVersion != campaign.APIVersion ||
		len(desc.Techniques) == 0 || len(desc.Backends) == 0 || len(desc.SeedPolicies) != 4 {
		t.Fatalf("description = %+v", desc)
	}
	if desc.Execution != nil {
		t.Fatalf("execution should be omitted until SetExecution, got %+v", desc.Execution)
	}

	// SetExecution surfaces the daemon's effective configuration in the
	// discovery document.
	execSrv := New(mgr)
	execSrv.SetExecution(campaign.Execution{CPUs: 8, Workers: 4, ChunkSize: 16, Concurrency: 2})
	srv2 := httptest.NewServer(execSrv.Handler())
	defer srv2.Close()
	var desc2 campaign.Description
	code, body = (&client{t: t, base: srv2.URL}).do(http.MethodGet, "/v1", nil)
	if err := json.Unmarshal(body, &desc2); err != nil || code != http.StatusOK {
		t.Fatalf("GET /v1 with execution = %d (%v): %s", code, err, body)
	}
	if desc2.Execution == nil ||
		*desc2.Execution != (campaign.Execution{CPUs: 8, Workers: 4, ChunkSize: 16, Concurrency: 2}) {
		t.Fatalf("execution block = %+v", desc2.Execution)
	}
	code, body = c.do(http.MethodGet, "/v1/techniques", nil)
	if code != http.StatusOK || !strings.Contains(string(body), "FAC2") {
		t.Fatalf("GET /v1/techniques = %d: %s", code, body)
	}
	code, body = c.do(http.MethodGet, "/v1/backends", nil)
	if code != http.StatusOK || !strings.Contains(string(body), "sim") {
		t.Fatalf("GET /v1/backends = %d: %s", code, body)
	}

	// Every failure is the structured envelope with a stable code.
	code, body = c.do(http.MethodGet, "/v1/jobs/j999", nil)
	var envelope struct {
		Error struct {
			Code    string         `json:"code"`
			Message string         `json:"message"`
			Details map[string]any `json:"details"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &envelope); err != nil || code != http.StatusNotFound {
		t.Fatalf("GET unknown job = %d (%v): %s", code, err, body)
	}
	if envelope.Error.Code != campaign.CodeNotFound || envelope.Error.Message == "" ||
		envelope.Error.Details["id"] != "j999" {
		t.Fatalf("envelope = %+v", envelope.Error)
	}

	// Pagination parameters are validated and reported in the envelope.
	if code, body := c.do(http.MethodGet, "/v1/jobs?limit=banana", nil); code != http.StatusBadRequest ||
		!strings.Contains(string(body), campaign.CodeInvalidArgument) {
		t.Fatalf("bad limit = %d: %s", code, body)
	}
	if code, body := c.do(http.MethodGet, "/v1/jobs?after=j999", nil); code != http.StatusNotFound ||
		!strings.Contains(string(body), campaign.CodeNotFound) {
		t.Fatalf("bad cursor = %d: %s", code, body)
	}

	// status ?wait=1 blocks until the job is terminal, so one round trip
	// observes the done state with no polling.
	id, _ := c.submit(specJSON(t, "", 99, 2))
	code, body = c.do(http.MethodGet, "/v1/jobs/"+id+"?wait=1", nil)
	var snap jobs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil || code != http.StatusOK {
		t.Fatalf("wait=1 = %d (%v): %s", code, err, body)
	}
	if snap.State != jobs.StateDone {
		t.Fatalf("wait=1 returned state %s, want done", snap.State)
	}
}

// TestNegotiateFormat pins the Accept-header negotiation, including
// q-values: a client that explicitly refuses an encoding never gets it.
func TestNegotiateFormat(t *testing.T) {
	cases := []struct {
		query, accept, want string
		status              int
	}{
		{"", "", "jsonl", 0},
		{"format=csv", "application/jsonl", "csv", 0}, // explicit format wins
		{"format=xml", "", "", http.StatusBadRequest}, // unsupported explicit format
		{"", "text/csv", "csv", 0},
		{"", "application/jsonl", "jsonl", 0},
		{"", "application/x-ndjson", "jsonl", 0},
		{"", "*/*", "jsonl", 0},
		{"", "application/jsonl, text/csv;q=0", "jsonl", 0}, // CSV refused
		{"", "text/csv;q=0.1, application/jsonl;q=0.9", "jsonl", 0},
		{"", "application/jsonl;q=0.2, text/csv;q=0.8", "csv", 0},
		{"", "text/*", "csv", 0},
		{"", "text/html", "jsonl", 0}, // nothing we serve: lenient default
		// Everything we serve explicitly refused: 406, never a refused
		// encoding.
		{"", "application/json;q=0", "", http.StatusNotAcceptable},
		{"", "application/jsonl;q=0, text/csv;q=0", "", http.StatusNotAcceptable},
	}
	for _, tc := range cases {
		req := httptest.NewRequest(http.MethodGet, "/v1/jobs/j1/results?"+tc.query, nil)
		if tc.accept != "" {
			req.Header.Set("Accept", tc.accept)
		}
		got, status := negotiateFormat(req)
		if got != tc.want || status != tc.status {
			t.Errorf("negotiateFormat(query=%q, accept=%q) = (%q, %d), want (%q, %d)",
				tc.query, tc.accept, got, status, tc.want, tc.status)
		}
	}
}
