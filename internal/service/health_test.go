package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/campaign"
	"repro/internal/jobs"
)

// TestHealthV1ReadinessAndDrain pins the /v1/health contract: 200 with
// a full document while accepting, 503 — still carrying the document —
// once draining, and hook-decorated fields either way. Liveness
// (/healthz) never flips.
func TestHealthV1ReadinessAndDrain(t *testing.T) {
	mgr := jobs.NewManager(jobs.Config{})
	svc := New(mgr)
	svc.SetHealthHook(func(h *campaign.Health) {
		h.Journal = "ok"
		h.Auth = true
	})
	srv := httptest.NewServer(svc.Handler())
	defer func() {
		srv.Close()
		mgr.Close()
	}()
	c := &client{t: t, base: srv.URL}

	getHealth := func() (int, campaign.Health) {
		t.Helper()
		code, body := c.do(http.MethodGet, "/v1/health", nil)
		var h campaign.Health
		if err := json.Unmarshal(body, &h); err != nil {
			t.Fatalf("health body %q: %v", body, err)
		}
		return code, h
	}

	code, h := getHealth()
	if code != http.StatusOK {
		t.Fatalf("accepting health = %d, want 200", code)
	}
	if !h.Ok || !h.Ready || h.Draining || h.Service != "dlsimd" {
		t.Fatalf("accepting document = %+v", h)
	}
	if h.Journal != "ok" || !h.Auth {
		t.Fatalf("health hook fields missing: %+v", h)
	}

	// Drain via the server switch: the status code flips for probes, the
	// document stays decodable, and the hook still runs.
	svc.SetDraining(true)
	code, h = getHealth()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining health = %d, want 503", code)
	}
	if !h.Ok || h.Ready || !h.Draining || h.Journal != "ok" {
		t.Fatalf("draining document = %+v", h)
	}
	// Liveness is a different question and must not flip.
	if code, _ := c.do(http.MethodGet, "/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz during drain = %d, want 200", code)
	}

	// The manager's own drain (jobs.Drain) must surface identically.
	svc.SetDraining(false)
	if code, _ = getHealth(); code != http.StatusOK {
		t.Fatalf("undrained health = %d, want 200", code)
	}
	mgr.Drain()
	code, h = getHealth()
	if code != http.StatusServiceUnavailable || !h.Draining {
		t.Fatalf("manager-drain health = %d %+v, want 503 draining", code, h)
	}
}
