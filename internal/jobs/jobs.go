// Package jobs is the in-process campaign job manager behind the
// dlsimd service: a bounded submission queue in front of the engine's
// context-aware execution pipeline, with per-job lifecycle states,
// streaming progress counters, and singleflight deduplication.
//
// Deduplication is keyed on the campaign spec's canonical hash
// (engine.CampaignSpec.Hash): submitting a spec whose hash matches a
// queued or running job returns that job instead of enqueuing a second
// execution, so any number of concurrent identical submissions share
// exactly one backend execution. Completed results are written to the
// manager's content-addressed store, so a later submission of the same
// spec is a fresh job that the engine serves entirely from the cache —
// zero backend runs either way.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/engine"
)

// State is a job's lifecycle phase.
type State string

// Job lifecycle states. Terminal states are StateDone, StateFailed and
// StateCancelled.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether a job in this state will never change again.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Errors reported by the manager.
var (
	// ErrQueueFull rejects a submission when the bounded queue is at
	// capacity — the service's backpressure signal.
	ErrQueueFull = errors.New("jobs: submission queue full")
	// ErrNotFound reports an unknown job ID.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrNotDone rejects a results request for a job that has not
	// completed successfully.
	ErrNotDone = errors.New("jobs: job has not completed")
	// ErrClosed rejects submissions after Close.
	ErrClosed = errors.New("jobs: manager closed")
	// ErrQuotaExceeded rejects a submission when the submitting tenant
	// is at its queued-job quota — per-tenant backpressure, as opposed
	// to ErrQueueFull's whole-service backpressure.
	ErrQuotaExceeded = errors.New("jobs: tenant quota exceeded")
	// ErrDraining rejects submissions after Drain: the manager is
	// shutting down gracefully, finishing queued and running work but
	// accepting nothing new. Distinct from ErrClosed — draining jobs
	// still complete and their results remain streamable.
	ErrDraining = errors.New("jobs: draining, not accepting new submissions")
)

// Observer receives job lifecycle notifications — the hook the durable
// journal (and metrics) attach through. JobSubmitted fires once per
// new job, before any transition; JobTransition fires on every state
// change, including the terminal one. Callbacks run synchronously on
// the manager's goroutines and must not call back into the Manager.
type Observer interface {
	JobSubmitted(spec engine.CampaignSpec, snap Snapshot)
	JobTransition(snap Snapshot)
}

// MultiObserver fans lifecycle notifications out to several observers
// in order.
func MultiObserver(obs ...Observer) Observer { return multiObserver(obs) }

type multiObserver []Observer

func (m multiObserver) JobSubmitted(spec engine.CampaignSpec, snap Snapshot) {
	for _, o := range m {
		o.JobSubmitted(spec, snap)
	}
}

func (m multiObserver) JobTransition(snap Snapshot) {
	for _, o := range m {
		o.JobTransition(snap)
	}
}

// Config parameterizes a Manager.
type Config struct {
	// Store holds completed campaign results content-addressed by spec
	// hash; results streaming replays from it. Nil selects a fresh
	// in-memory store.
	Store cache.Store

	// QueueDepth bounds the number of jobs waiting to run; submissions
	// beyond it fail with ErrQueueFull. 0 selects 64.
	QueueDepth int

	// Concurrency is the number of campaigns executing at once. Each
	// campaign additionally fans its runs over Workers goroutines.
	// 0 selects 1 (campaigns already saturate the cores via Workers).
	Concurrency int

	// Workers bounds the per-campaign run concurrency; 0 selects
	// GOMAXPROCS (see engine.ExecConfig.Workers).
	Workers int

	// ChunkSize is the number of consecutive replications executed per
	// work item inside a campaign; 0 auto-sizes (see
	// engine.ExecConfig.ChunkSize). Never changes results.
	ChunkSize int

	// QuotaQueued bounds the jobs one tenant may have queued at once;
	// submissions beyond it fail with ErrQuotaExceeded. 0 disables the
	// quota. Joining an existing job via hash dedup never counts.
	QuotaQueued int

	// QuotaRunning bounds the jobs one tenant may have running at once:
	// a runner skips over queued jobs whose tenant is at the bound and
	// executes the next eligible one instead. 0 disables the quota.
	QuotaRunning int

	// Observer, when non-nil, receives job lifecycle notifications.
	Observer Observer
}

// Job is one submitted campaign. All exported methods are safe for
// concurrent use.
type Job struct {
	id     string
	hash   string
	tenant string
	spec   engine.CampaignSpec
	total  int64 // points × replications

	completed atomic.Int64 // runs delivered by the progress sink

	mu          sync.Mutex
	state       State
	err         error
	submissions int // submissions sharing this execution (≥ 1)
	created     time.Time
	started     time.Time
	finished    time.Time

	execCtx context.Context // execution context, derived from the manager's
	cancel  context.CancelFunc
	done    chan struct{} // closed on entering a terminal state
}

// Snapshot is a point-in-time copy of a job's externally visible state,
// shaped for JSON status endpoints.
type Snapshot struct {
	ID   string `json:"id"`
	Hash string `json:"hash"`
	// Tenant is the submitting tenant's name; empty for jobs submitted
	// without tenancy (direct Submit, auth disabled daemons).
	Tenant      string `json:"tenant,omitempty"`
	State       State  `json:"state"`
	Total       int64  `json:"total"`     // runs in the campaign grid
	Completed   int64  `json:"completed"` // runs finished so far
	Submissions int    `json:"submissions"`
	// RepOffset is the spec's replication-window offset. Non-zero only
	// for shard jobs submitted by a distributed coordinator
	// (campaign/distrib) — surfaced so an operator listing a node's jobs
	// can tell which window of a parent grid a job computes.
	RepOffset int    `json:"rep_offset,omitempty"`
	Error     string `json:"error,omitempty"`

	CreatedAt  time.Time  `json:"created_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Hash returns the canonical spec hash the job deduplicates on.
func (j *Job) Hash() string { return j.hash }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Snapshot copies the job's current state.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Snapshot{
		ID:          j.id,
		Hash:        j.hash,
		Tenant:      j.tenant,
		State:       j.state,
		Total:       j.total,
		Completed:   j.completed.Load(),
		Submissions: j.submissions,
		RepOffset:   j.spec.RepOffset,
		CreatedAt:   j.created,
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		t := j.started
		s.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.FinishedAt = &t
	}
	return s
}

// progressSink feeds the job's completion counter from the campaign's
// ordered event stream — O(1) state, no buffering. It also accepts
// chunk-granular partials, so attaching it never disqualifies a job
// from the engine's aggregate fast path (one counter bump per chunk
// instead of per run).
type progressSink struct {
	j    *Job
	runs *atomic.Int64 // manager-wide delivered-run counter (metrics)
}

func (s progressSink) Consume(context.Context, engine.Event) error {
	s.j.completed.Add(1)
	s.runs.Add(1)
	return nil
}

func (s progressSink) ConsumePartial(_ context.Context, p engine.MetricsPartial) error {
	s.j.completed.Add(int64(p.Len()))
	s.runs.Add(int64(p.Len()))
	return nil
}

func (s progressSink) Close() error { return nil }

// Manager owns the job table, the dedup index and the bounded queue.
// The queue is a mutex-guarded FIFO (not a channel) so that cancelling
// a queued job frees its slot immediately instead of occupying channel
// capacity until a runner drains it.
type Manager struct {
	store       cache.Store
	workers     int
	chunk       int // replications per work item; 0 = auto
	depth       int // max queued (not yet running) jobs
	quotaQueued int // per-tenant queued bound; 0 = unlimited
	quotaRun    int // per-tenant running bound; 0 = unlimited
	observer    Observer

	ctx    context.Context // base context; Close cancels it
	stop   context.CancelFunc
	runner sync.WaitGroup

	runs atomic.Int64 // runs delivered across all jobs (incl. cached replays)

	mu       sync.Mutex
	ready    *sync.Cond // signaled on enqueue, quota headroom and Close
	pending  []*Job     // FIFO of queued jobs awaiting a runner
	closed   bool
	draining bool
	seq      int
	jobs     map[string]*Job            // by job ID
	order    []string                   // insertion order for List
	active   map[string]*Job            // by spec hash, queued or running only
	tenants  map[string]*tenantCounters // per-tenant quota accounting
}

// tenantCounters tracks one tenant's live jobs for quota enforcement.
type tenantCounters struct{ queued, running int }

// tenant returns (allocating if needed) the counters for name. Callers
// hold m.mu.
func (m *Manager) tenant(name string) *tenantCounters {
	c, ok := m.tenants[name]
	if !ok {
		c = &tenantCounters{}
		m.tenants[name] = c
	}
	return c
}

// notify delivers a transition snapshot to the observer, if any.
// Callers must not hold j.mu (Snapshot takes it).
func (m *Manager) notify(j *Job) {
	if m.observer != nil {
		m.observer.JobTransition(j.Snapshot())
	}
}

// NewManager starts a manager with cfg's queue depth and concurrency.
// Call Close to cancel in-flight jobs and reclaim the runner
// goroutines.
func NewManager(cfg Config) *Manager {
	if cfg.Store == nil {
		cfg.Store = cache.NewMemory()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 1
	}
	ctx, stop := context.WithCancel(context.Background())
	m := &Manager{
		store:       cfg.Store,
		workers:     cfg.Workers,
		chunk:       cfg.ChunkSize,
		depth:       cfg.QueueDepth,
		quotaQueued: cfg.QuotaQueued,
		quotaRun:    cfg.QuotaRunning,
		observer:    cfg.Observer,
		ctx:         ctx,
		stop:        stop,
		jobs:        make(map[string]*Job),
		active:      make(map[string]*Job),
		tenants:     make(map[string]*tenantCounters),
	}
	m.ready = sync.NewCond(&m.mu)
	for i := 0; i < cfg.Concurrency; i++ {
		m.runner.Add(1)
		go m.run()
	}
	return m
}

// Submit validates the spec and enqueues it as a job with no tenant
// tag. See SubmitAs.
func (m *Manager) Submit(spec engine.CampaignSpec) (job *Job, deduped bool, err error) {
	return m.SubmitAs("", spec)
}

// SubmitAs validates the spec and enqueues it as a job owned by
// tenant. If a job with the same canonical spec hash is already queued
// or running, that job is returned with deduped == true and no new
// execution happens: the submissions share one campaign (the job keeps
// its original tenant, and the join never counts against any quota). A
// full queue fails with ErrQueueFull; a tenant at its queued-job quota
// fails with ErrQuotaExceeded.
func (m *Manager) SubmitAs(tenant string, spec engine.CampaignSpec) (job *Job, deduped bool, err error) {
	// Expanding the grid both validates the spec and sizes the progress
	// denominator before anything is enqueued.
	points, err := spec.Points()
	if err != nil {
		return nil, false, err
	}
	hash, err := spec.Hash()
	if err != nil {
		return nil, false, err
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, false, ErrClosed
	}
	if m.draining {
		return nil, false, ErrDraining
	}
	if j, ok := m.active[hash]; ok {
		j.mu.Lock()
		j.submissions++
		j.mu.Unlock()
		return j, true, nil
	}
	if len(m.pending) >= m.depth {
		return nil, false, ErrQueueFull
	}
	tc := m.tenant(tenant)
	if m.quotaQueued > 0 && tc.queued >= m.quotaQueued {
		return nil, false, fmt.Errorf("%w: tenant %q has %d jobs queued (max %d)",
			ErrQuotaExceeded, tenant, tc.queued, m.quotaQueued)
	}
	m.seq++
	jctx, cancel := context.WithCancel(m.ctx)
	j := &Job{
		id:          fmt.Sprintf("j%d", m.seq),
		hash:        hash,
		tenant:      tenant,
		spec:        spec,
		total:       int64(len(points)) * int64(spec.Replications),
		state:       StateQueued,
		submissions: 1,
		created:     time.Now(),
		execCtx:     jctx,
		cancel:      cancel,
		done:        make(chan struct{}),
	}
	m.pending = append(m.pending, j)
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.active[hash] = j
	tc.queued++
	if m.observer != nil {
		// Under m.mu: the job cannot be claimed by a runner (claiming
		// needs the lock), so the submit notification always precedes
		// the job's first transition.
		m.observer.JobSubmitted(spec, j.Snapshot())
	}
	m.ready.Signal()
	return j, false, nil
}

// Restore re-inserts a journaled job without notifying the observer —
// the crash-recovery replay path. A terminal snapshot is restored
// as-is (results re-materialize from the content-addressed store on
// demand); a queued or running snapshot is re-enqueued from scratch
// and executes again, which for cached specs costs zero backend runs.
// The job keeps its original ID, tenant and creation time, and the
// manager's ID sequence is advanced past it.
func (m *Manager) Restore(spec engine.CampaignSpec, snap Snapshot) (*Job, error) {
	points, err := spec.Points()
	if err != nil {
		return nil, err
	}
	hash, err := spec.Hash()
	if err != nil {
		return nil, err
	}
	if snap.ID == "" {
		return nil, fmt.Errorf("jobs: restore: snapshot without id")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if _, ok := m.jobs[snap.ID]; ok {
		return nil, fmt.Errorf("jobs: restore: job %q already exists", snap.ID)
	}
	var n int
	if _, err := fmt.Sscanf(snap.ID, "j%d", &n); err == nil && n > m.seq {
		m.seq = n
	}
	jctx, cancel := context.WithCancel(m.ctx)
	j := &Job{
		id:          snap.ID,
		hash:        hash,
		tenant:      snap.Tenant,
		spec:        spec,
		total:       int64(len(points)) * int64(spec.Replications),
		submissions: 1,
		created:     snap.CreatedAt,
		execCtx:     jctx,
		cancel:      cancel,
		done:        make(chan struct{}),
	}
	if j.created.IsZero() {
		j.created = time.Now()
	}
	if snap.State.Terminal() {
		j.state = snap.State
		j.completed.Store(snap.Completed)
		if snap.Error != "" {
			j.err = errors.New(snap.Error)
		}
		if snap.StartedAt != nil {
			j.started = *snap.StartedAt
		}
		if snap.FinishedAt != nil {
			j.finished = *snap.FinishedAt
		}
		close(j.done)
		cancel()
	} else {
		j.state = StateQueued
		m.pending = append(m.pending, j)
		if _, ok := m.active[hash]; !ok {
			m.active[hash] = j
		}
		m.tenant(j.tenant).queued++
		m.ready.Signal()
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	return j, nil
}

// Stats is a point-in-time census of the manager's jobs, shaped for
// the /metrics endpoint.
type Stats struct {
	Queued, Running, Done, Failed, Cancelled int
	// RunsDelivered counts runs delivered to job progress across all
	// jobs, including cached replays.
	RunsDelivered int64
}

// Stats counts jobs by state.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	s := Stats{RunsDelivered: m.runs.Load()}
	for _, j := range jobs {
		j.mu.Lock()
		st := j.state
		j.mu.Unlock()
		switch st {
		case StateQueued:
			s.Queued++
		case StateRunning:
			s.Running++
		case StateDone:
			s.Done++
		case StateFailed:
			s.Failed++
		case StateCancelled:
			s.Cancelled++
		}
	}
	return s
}

// Get returns the job with the given ID.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return j, nil
}

// List snapshots every job in submission order.
func (m *Manager) List() []Snapshot {
	out, _, _ := m.ListPage("", 0)
	return out
}

// ListPage snapshots jobs in submission order, starting after the job
// with ID after ("" starts at the beginning) and returning at most limit
// jobs (0 means no bound). When jobs remain beyond the returned page,
// next is the last returned job's ID — pass it as the next call's after
// to continue; next is "" on the final page. An unknown after fails with
// ErrNotFound, so a paginating client can distinguish "end of list" from
// "bad cursor".
func (m *Manager) ListPage(after string, limit int) (page []Snapshot, next string, err error) {
	m.mu.Lock()
	start := 0
	if after != "" {
		if _, ok := m.jobs[after]; !ok {
			m.mu.Unlock()
			return nil, "", fmt.Errorf("%w: cursor %q", ErrNotFound, after)
		}
		for i, id := range m.order {
			if id == after {
				start = i + 1
				break
			}
		}
	}
	ids := m.order[start:]
	more := false
	if limit > 0 && len(ids) > limit {
		ids = ids[:limit]
		more = true
	}
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()
	page = make([]Snapshot, len(jobs))
	for i, j := range jobs {
		page[i] = j.Snapshot()
	}
	if more {
		next = page[len(page)-1].ID
	}
	return page, next, nil
}

// Cancel transitions the job out of the queue (if still queued) or
// cancels its execution context (if running). Either way the job's
// hash leaves the dedup index immediately, so a subsequent identical
// submission starts fresh instead of joining a doomed job. Cancelling
// a terminal job is a no-op. Running jobs reach StateCancelled
// asynchronously — wait on Done for the terminal state.
func (m *Manager) Cancel(id string) error {
	j, err := m.Get(id)
	if err != nil {
		return err
	}
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.err = context.Canceled
		j.finished = time.Now()
		close(j.done)
		j.mu.Unlock()
		j.cancel()
		m.retire(j)
		m.dequeue(j) // free the queue slot for new submissions
		m.notify(j)
		return nil
	case StateRunning:
		j.mu.Unlock()
		m.retire(j)
		j.cancel() // runner observes the cancellation and finalizes
		return nil
	default:
		j.mu.Unlock()
		return nil
	}
}

// dequeue removes a (cancelled) job from the pending FIFO, if present,
// releasing its tenant's queued-quota slot. A job absent from the FIFO
// was already claimed by a runner, which released the slot itself.
func (m *Manager) dequeue(j *Job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, p := range m.pending {
		if p == j {
			m.pending = append(m.pending[:i], m.pending[i+1:]...)
			m.tenant(j.tenant).queued--
			m.ready.Broadcast() // a quota slot freed; re-scan the FIFO
			return
		}
	}
}

// Wait blocks until the job reaches a terminal state or ctx is
// cancelled, returning the job's final snapshot.
func (m *Manager) Wait(ctx context.Context, id string) (Snapshot, error) {
	j, err := m.Get(id)
	if err != nil {
		return Snapshot{}, err
	}
	select {
	case <-j.done:
		return j.Snapshot(), nil
	case <-ctx.Done():
		return Snapshot{}, ctx.Err()
	}
}

// Results streams the completed job's per-run events into the given
// sinks in deterministic (point, replication) order by replaying the
// cached campaign through the engine — zero backend runs on the replay
// path. Concurrent Results calls are independent: every caller gets the
// identical byte stream. The job must be in StateDone.
func (m *Manager) Results(ctx context.Context, id string, sinks ...engine.Sink) error {
	j, err := m.Get(id)
	if err != nil {
		return err
	}
	j.mu.Lock()
	state := j.state
	j.mu.Unlock()
	if state != StateDone {
		return fmt.Errorf("%w: %s is %s", ErrNotDone, id, state)
	}
	// The entry was written when the job completed; Execute replays it.
	// If the store lost it (e.g. an evicting implementation), the engine
	// transparently re-runs the campaign — determinism makes the bytes
	// identical either way.
	_, err = j.spec.Execute(ctx, engine.ExecConfig{
		Workers:   m.workers,
		ChunkSize: m.chunk,
		Cache:     m.store,
		Sinks:     sinks,
	})
	return err
}

// Drain flips the manager into graceful-shutdown mode: new submissions
// fail with ErrDraining while queued and running jobs keep executing to
// completion. Status, wait and result streaming stay fully available,
// so clients of in-flight work are never cut off. Irreversible; safe to
// call more than once.
func (m *Manager) Drain() {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()
}

// Draining reports whether Drain has been called.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// WaitIdle blocks until no job is queued or running (or ctx is done) —
// the "running jobs finish" half of a drain. It does not prevent new
// submissions; call Drain first so the job population only shrinks.
func (m *Manager) WaitIdle(ctx context.Context) error {
	for {
		var live *Job
		m.mu.Lock()
		for _, j := range m.jobs {
			j.mu.Lock()
			terminal := j.state.Terminal()
			j.mu.Unlock()
			if !terminal {
				live = j
				break
			}
		}
		m.mu.Unlock()
		if live == nil {
			return nil
		}
		select {
		case <-live.Done():
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Close stops accepting submissions, cancels queued and running jobs,
// and waits for the runners to drain. Safe to call more than once.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.runner.Wait()
		return
	}
	m.closed = true
	m.ready.Broadcast() // wake runners blocked on an empty queue
	m.mu.Unlock()
	m.stop() // cancels every job context derived from m.ctx
	m.runner.Wait()
	// Finalize jobs still queued at shutdown so waiters unblock.
	m.mu.Lock()
	pending := m.pending
	m.pending = nil
	m.mu.Unlock()
	for _, j := range pending {
		j.mu.Lock()
		finalized := false
		if j.state == StateQueued {
			j.state = StateCancelled
			j.err = context.Canceled
			j.finished = time.Now()
			close(j.done)
			finalized = true
		}
		j.mu.Unlock()
		if finalized {
			m.notify(j)
		}
	}
}

// retire removes a job from the dedup index once it can no longer be
// joined (terminal or about to be).
func (m *Manager) retire(j *Job) {
	m.mu.Lock()
	if m.active[j.hash] == j {
		delete(m.active, j.hash)
	}
	m.mu.Unlock()
}

// claimableLocked returns the index of the first pending job whose
// tenant has running-quota headroom, or -1. Callers hold m.mu.
func (m *Manager) claimableLocked() int {
	for i, j := range m.pending {
		if m.quotaRun <= 0 || m.tenant(j.tenant).running < m.quotaRun {
			return i
		}
	}
	return -1
}

// run is one runner goroutine: it claims eligible jobs off the pending
// FIFO and executes them, sleeping on the condition variable while no
// job is claimable (empty queue, or every queued tenant at its running
// quota). Close broadcasts after setting closed, so runners never
// sleep through shutdown.
func (m *Manager) run() {
	defer m.runner.Done()
	for {
		m.mu.Lock()
		var j *Job
		for j == nil {
			if m.closed {
				m.mu.Unlock()
				return
			}
			idx := m.claimableLocked()
			if idx < 0 {
				m.ready.Wait()
				continue
			}
			cand := m.pending[idx]
			m.pending = append(m.pending[:idx], m.pending[idx+1:]...)
			tc := m.tenant(cand.tenant)
			tc.queued--
			cand.mu.Lock()
			if cand.state != StateQueued {
				// Cancelled between leaving StateQueued and its removal
				// from the FIFO; its slot is already freed.
				cand.mu.Unlock()
				continue
			}
			cand.state = StateRunning
			cand.started = time.Now()
			cand.mu.Unlock()
			tc.running++
			j = cand
		}
		m.mu.Unlock()

		m.notify(j)
		m.runJob(j)

		m.mu.Lock()
		m.tenant(j.tenant).running--
		// Quota headroom may unblock a runner waiting on another job.
		m.ready.Broadcast()
		m.mu.Unlock()
	}
}

// runJob executes one already-claimed (StateRunning) job through the
// engine and finalizes its state.
func (m *Manager) runJob(j *Job) {
	_, err := j.spec.Execute(j.execCtx, engine.ExecConfig{
		Workers:   m.workers,
		ChunkSize: m.chunk,
		Cache:     m.store,
		Sinks:     []engine.Sink{progressSink{j, &m.runs}},
	})

	m.retire(j)
	j.mu.Lock()
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = StateDone
	case errors.Is(err, context.Canceled):
		j.state = StateCancelled
		j.err = err
	default:
		j.state = StateFailed
		j.err = err
	}
	close(j.done)
	j.mu.Unlock()
	j.cancel() // release the context's resources
	m.notify(j)
}
