package jobs

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/testutil"
	"repro/internal/workload"
)

// Gated backends shared by this package's tests; each test that blocks
// runs gets its own gate so release order cannot leak across tests.
var (
	gateFlight = testutil.NewGateBackend("jobs-gate-flight")
	gateCancel = testutil.NewGateBackend("jobs-gate-cancel")
	gateQueue  = testutil.NewGateBackend("jobs-gate-queue")
	gateClose  = testutil.NewGateBackend("jobs-gate-close")
)

func init() {
	engine.Register(gateFlight)
	engine.Register(gateCancel)
	engine.Register(gateQueue)
	engine.Register(gateClose)
}

func gatedSpec(backend string, seed uint64) engine.CampaignSpec {
	return engine.CampaignSpec{
		Backend:      backend,
		Techniques:   []string{"FAC2"},
		Ns:           []int64{128},
		Ps:           []int{2},
		Workload:     workload.Spec{Kind: "exponential", P1: 1},
		H:            0.5,
		Replications: 4,
		Seed:         seed,
	}
}

func waitState(t *testing.T, m *Manager, id string, want State) Snapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		j, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		snap := j.Snapshot()
		if snap.State == want {
			return snap
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, snap.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSingleflightDedup is the dedup acceptance criterion: N concurrent
// identical submissions share exactly one campaign execution — one job
// ID, one set of backend runs — and every submitter observes the same
// completed job.
func TestSingleflightDedup(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	gateFlight.Reset() // re-arm for -count>1 reruns
	baseRuns := gateFlight.Runs.Load()
	m := NewManager(Config{})
	defer m.Close()

	spec := gatedSpec("jobs-gate-flight", 7)
	first, deduped, err := m.Submit(spec)
	if err != nil || deduped {
		t.Fatalf("first Submit = deduped %v, err %v", deduped, err)
	}
	waitState(t, m, first.ID(), StateRunning)

	const clients = 8
	var wg sync.WaitGroup
	ids := make([]string, clients)
	dedups := make([]bool, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, d, err := m.Submit(spec)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			ids[i], dedups[i] = j.ID(), d
		}(i)
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		if ids[i] != first.ID() || !dedups[i] {
			t.Fatalf("submission %d got job %s (deduped %v); want shared job %s", i, ids[i], dedups[i], first.ID())
		}
	}
	if snap := first.Snapshot(); snap.Submissions != clients+1 {
		t.Fatalf("job records %d submissions, want %d", snap.Submissions, clients+1)
	}

	gateFlight.Release()
	snap := waitState(t, m, first.ID(), StateDone)
	total := int64(spec.Replications) // 1 technique × 1 n × 1 p
	if got := gateFlight.Runs.Load() - baseRuns; got != total {
		t.Fatalf("backend executed %d runs for %d submissions, want exactly %d (one execution)",
			got, clients+1, total)
	}
	if snap.Completed != total || snap.Total != total {
		t.Fatalf("progress %d/%d, want %d/%d", snap.Completed, snap.Total, total, total)
	}

	// A later submission of the same spec is a fresh job served from
	// the result store: done with zero additional backend runs.
	later, deduped, err := m.Submit(spec)
	if err != nil || deduped {
		t.Fatalf("post-completion Submit = deduped %v, err %v", deduped, err)
	}
	if later.ID() == first.ID() {
		t.Fatal("terminal job joined instead of re-submitted")
	}
	if _, err := m.Wait(context.Background(), later.ID()); err != nil {
		t.Fatal(err)
	}
	if got := gateFlight.Runs.Load() - baseRuns; got != total {
		t.Fatalf("cache-served resubmission performed %d extra backend runs", got-total)
	}
}

// TestResultsReplayIdentical: every Results call streams byte-identical
// JSONL, replayed from the content-addressed store.
func TestResultsReplayIdentical(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()

	spec := gatedSpec("", 11) // default sim backend, no gate
	j, _, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(context.Background(), j.ID()); err != nil {
		t.Fatal(err)
	}

	render := func() string {
		var buf bytes.Buffer
		if err := m.Results(context.Background(), j.ID(), engine.NewJSONLSink(&buf)); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatal("two Results streams differ")
	}
	if got := strings.Count(a, "\n"); got != spec.Replications {
		t.Fatalf("results have %d lines, want %d", got, spec.Replications)
	}
}

// TestCancelRunningJob: cancelling a running job drives it to
// StateCancelled, reclaims every goroutine and leaves the store clean
// for unrelated jobs.
func TestCancelRunningJob(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	gateCancel.Reset()
	m := NewManager(Config{})
	defer m.Close()

	j, _, err := m.Submit(gatedSpec("jobs-gate-cancel", 13))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j.ID(), StateRunning)
	if err := m.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	// The hash leaves the dedup index at cancel time: an identical
	// submission during the cancellation drain must start a fresh job,
	// not join the doomed one.
	fresh, deduped, err := m.Submit(gatedSpec("jobs-gate-cancel", 13))
	if err != nil {
		t.Fatal(err)
	}
	if deduped || fresh.ID() == j.ID() {
		t.Fatalf("submission after Cancel joined the cancelled job %s (deduped %v)", j.ID(), deduped)
	}
	if err := m.Cancel(fresh.ID()); err != nil {
		t.Fatal(err)
	}
	snap := waitState(t, m, j.ID(), StateCancelled)
	if !strings.Contains(snap.Error, "canceled") {
		t.Fatalf("cancelled job error = %q", snap.Error)
	}
	if gateCancel.Runs.Load() != 0 {
		t.Fatalf("cancelled job completed %d backend runs", gateCancel.Runs.Load())
	}
	if err := m.Results(context.Background(), j.ID()); !errors.Is(err, ErrNotDone) {
		t.Fatalf("Results on cancelled job = %v, want ErrNotDone", err)
	}
	// Cancel is idempotent on terminal jobs.
	if err := m.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
}

// TestQueueBackpressureAndQueuedCancel: the bounded queue rejects
// overflow with ErrQueueFull, and a queued job can be cancelled without
// ever executing.
func TestQueueBackpressureAndQueuedCancel(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	gateQueue.Reset()
	baseStarted := gateQueue.Started.Load()
	m := NewManager(Config{QueueDepth: 1, Concurrency: 1})
	defer m.Close()

	running, _, err := m.Submit(gatedSpec("jobs-gate-queue", 1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, running.ID(), StateRunning)

	queued, _, err := m.Submit(gatedSpec("jobs-gate-queue", 2))
	if err != nil {
		t.Fatal(err)
	}
	if snap := queued.Snapshot(); snap.State != StateQueued {
		t.Fatalf("second job is %s, want queued", snap.State)
	}

	if _, _, err := m.Submit(gatedSpec("jobs-gate-queue", 3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third Submit = %v, want ErrQueueFull", err)
	}

	// Cancelling the queued job is immediate, keeps it from running and
	// frees its queue slot for new submissions.
	if err := m.Cancel(queued.ID()); err != nil {
		t.Fatal(err)
	}
	waitState(t, m, queued.ID(), StateCancelled)
	refill, _, err := m.Submit(gatedSpec("jobs-gate-queue", 4))
	if err != nil {
		t.Fatalf("submit after cancelling the queued job = %v; cancellation must free the slot", err)
	}
	if err := m.Cancel(refill.ID()); err != nil {
		t.Fatal(err)
	}

	gateQueue.Release()
	waitState(t, m, running.ID(), StateDone)
	// Only the first job's grid (4 replications) ever entered the
	// backend; the cancelled queued job was skipped when the runner
	// drained it.
	time.Sleep(10 * time.Millisecond)
	if got, want := gateQueue.Started.Load()-baseStarted, int64(4); got != want {
		t.Fatalf("%d backend runs started, want %d (cancelled queued job must not run)", got, want)
	}
}

// TestManagerCloseCancelsInFlight: Close drives queued and running jobs
// to a terminal state and rejects later submissions.
func TestManagerCloseCancelsInFlight(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	gateClose.Reset()
	m := NewManager(Config{QueueDepth: 4, Concurrency: 1})

	running, _, err := m.Submit(gatedSpec("jobs-gate-close", 21))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, running.ID(), StateRunning)
	queued, _, err := m.Submit(gatedSpec("jobs-gate-close", 22))
	if err != nil {
		t.Fatal(err)
	}

	m.Close()
	for _, id := range []string{running.ID(), queued.ID()} {
		j, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if snap := j.Snapshot(); !snap.State.Terminal() {
			t.Fatalf("job %s left in %s after Close", id, snap.State)
		}
	}
	if _, _, err := m.Submit(gatedSpec("jobs-gate-close", 23)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
}

// TestSubmitValidation: malformed specs are rejected before touching
// the queue.
func TestSubmitValidation(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()
	bad := gatedSpec("", 1)
	bad.Replications = 0
	if _, _, err := m.Submit(bad); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if _, err := m.Get("j999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get unknown = %v, want ErrNotFound", err)
	}
	if err := m.Cancel("j999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Cancel unknown = %v, want ErrNotFound", err)
	}
}

// TestListPage pins the pagination contract: submission order, limit
// truncation with a resumable cursor, and a loud error for an unknown
// cursor (so clients can tell "end of list" from "bad cursor").
func TestListPage(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()

	var ids []string
	for seed := uint64(1); seed <= 5; seed++ {
		j, _, err := m.Submit(gatedSpec("", seed))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID())
	}

	var walked []string
	after := ""
	for pages := 0; ; pages++ {
		if pages > 5 {
			t.Fatal("pagination does not terminate")
		}
		page, next, err := m.ListPage(after, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range page {
			walked = append(walked, s.ID)
		}
		if next == "" {
			if len(page) == 0 && len(walked) < len(ids) {
				t.Fatal("empty page before the list was exhausted")
			}
			break
		}
		if next != page[len(page)-1].ID {
			t.Fatalf("cursor %s is not the last returned ID %s", next, page[len(page)-1].ID)
		}
		after = next
	}
	if strings.Join(walked, ",") != strings.Join(ids, ",") {
		t.Fatalf("paged walk %v != submission order %v", walked, ids)
	}

	all, next, err := m.ListPage("", 0)
	if err != nil || next != "" || len(all) != 5 {
		t.Fatalf("unbounded page = %d jobs, next %q, err %v", len(all), next, err)
	}
	if last, next, err := m.ListPage(ids[4], 2); err != nil || next != "" || len(last) != 0 {
		t.Fatalf("page after the final job = %d jobs, next %q, err %v", len(last), next, err)
	}
	if _, _, err := m.ListPage("j999", 2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown cursor = %v, want ErrNotFound", err)
	}
	if got := len(m.List()); got != 5 {
		t.Fatalf("List() = %d jobs, want 5", got)
	}
}
