package jobs

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/testutil"
)

var (
	gateQuotaQ  = testutil.NewGateBackend("jobs-gate-quota-queued")
	gateQuotaR  = testutil.NewGateBackend("jobs-gate-quota-running")
	gateObserve = testutil.NewGateBackend("jobs-gate-observe")
	gateHammer  = testutil.NewGateBackend("jobs-gate-hammer")
)

func init() {
	engine.Register(gateQuotaQ)
	engine.Register(gateQuotaR)
	engine.Register(gateObserve)
	engine.Register(gateHammer)
}

// TestQueuedQuota: the per-tenant queued bound rejects only the
// offending tenant, dedup joins never count against it, and cancelling
// a queued job frees the slot.
func TestQueuedQuota(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	gateQuotaQ.Reset()
	m := NewManager(Config{QueueDepth: 16, Concurrency: 1, QuotaQueued: 2})
	defer m.Close()

	// Occupy the single runner so later submissions stay queued.
	running, _, err := m.SubmitAs("alice", gatedSpec("jobs-gate-quota-queued", 1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, running.ID(), StateRunning)

	q1, _, err := m.SubmitAs("alice", gatedSpec("jobs-gate-quota-queued", 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.SubmitAs("alice", gatedSpec("jobs-gate-quota-queued", 3)); err != nil {
		t.Fatal(err)
	}
	// Two queued jobs: alice is at her quota.
	if _, _, err := m.SubmitAs("alice", gatedSpec("jobs-gate-quota-queued", 4)); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("third queued submit = %v, want ErrQuotaExceeded", err)
	}
	// Joining an existing job via dedup is free even at the quota.
	if _, deduped, err := m.SubmitAs("alice", gatedSpec("jobs-gate-quota-queued", 2)); err != nil || !deduped {
		t.Fatalf("dedup join at quota = deduped %v, err %v", deduped, err)
	}
	// Another tenant is unaffected.
	if _, _, err := m.SubmitAs("bob", gatedSpec("jobs-gate-quota-queued", 5)); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
	// Cancelling one of alice's queued jobs frees her slot.
	if err := m.Cancel(q1.ID()); err != nil {
		t.Fatal(err)
	}
	waitState(t, m, q1.ID(), StateCancelled)
	if _, _, err := m.SubmitAs("alice", gatedSpec("jobs-gate-quota-queued", 6)); err != nil {
		t.Fatalf("submit after cancelling a queued job = %v; cancel must free the quota slot", err)
	}

	gateQuotaQ.Release()
}

// TestRunningQuota: with two runners but a running quota of one, a
// tenant's second job waits while another tenant's job is claimed past
// it, and starts once the first finishes.
func TestRunningQuota(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	gateQuotaR.Reset()
	m := NewManager(Config{QueueDepth: 16, Concurrency: 2, QuotaRunning: 1})
	defer m.Close()

	a1, _, err := m.SubmitAs("alice", gatedSpec("jobs-gate-quota-running", 1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, a1.ID(), StateRunning)
	a2, _, err := m.SubmitAs("alice", gatedSpec("jobs-gate-quota-running", 2))
	if err != nil {
		t.Fatal(err)
	}
	b1, _, err := m.SubmitAs("bob", gatedSpec("jobs-gate-quota-running", 3))
	if err != nil {
		t.Fatal(err)
	}
	// Bob's job overtakes alice's quota-blocked one for the idle runner.
	waitState(t, m, b1.ID(), StateRunning)
	// Alice's second job must still be queued: her quota is 1.
	if snap := a2.Snapshot(); snap.State != StateQueued {
		t.Fatalf("second alice job is %s while the first runs, want queued", snap.State)
	}

	gateQuotaR.Release()
	waitState(t, m, a1.ID(), StateDone)
	// With the first done, the blocked job gets claimed and completes.
	waitState(t, m, a2.ID(), StateDone)
	waitState(t, m, b1.ID(), StateDone)
}

// recordingObserver captures lifecycle notifications for assertions.
type recordingObserver struct {
	mu        sync.Mutex
	submitted []Snapshot
	moves     []Snapshot
}

func (r *recordingObserver) JobSubmitted(_ engine.CampaignSpec, snap Snapshot) {
	r.mu.Lock()
	r.submitted = append(r.submitted, snap)
	r.mu.Unlock()
}

func (r *recordingObserver) JobTransition(snap Snapshot) {
	r.mu.Lock()
	r.moves = append(r.moves, snap)
	r.mu.Unlock()
}

// TestObserverLifecycle: the observer sees exactly one submit (in state
// queued) before any transition, then running, then the terminal state,
// for every path to termination (done, cancelled-queued, closed).
func TestObserverLifecycle(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	gateObserve.Reset()
	rec := &recordingObserver{}
	m := NewManager(Config{Concurrency: 1, Observer: rec})
	defer m.Close()

	j, _, err := m.SubmitAs("alice", gatedSpec("jobs-gate-observe", 1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j.ID(), StateRunning)
	queued, _, err := m.SubmitAs("alice", gatedSpec("jobs-gate-observe", 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(queued.ID()); err != nil {
		t.Fatal(err)
	}
	gateObserve.Release()
	waitState(t, m, j.ID(), StateDone)

	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.submitted) != 2 {
		t.Fatalf("observer saw %d submissions, want 2", len(rec.submitted))
	}
	for _, s := range rec.submitted {
		if s.State != StateQueued || s.Tenant != "alice" {
			t.Fatalf("submit notification = state %s tenant %q, want queued/alice", s.State, s.Tenant)
		}
	}
	perJob := map[string][]State{}
	for _, s := range rec.moves {
		perJob[s.ID] = append(perJob[s.ID], s.State)
	}
	if got := perJob[j.ID()]; len(got) != 2 || got[0] != StateRunning || got[1] != StateDone {
		t.Fatalf("completed job transitions = %v, want [running done]", got)
	}
	if got := perJob[queued.ID()]; len(got) != 1 || got[0] != StateCancelled {
		t.Fatalf("queued-cancelled job transitions = %v, want [cancelled]", got)
	}
}

// TestRestore: terminal snapshots come back as-is without executing,
// live snapshots re-enqueue and run again, and the ID sequence advances
// past restored IDs so new jobs never collide.
func TestRestore(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	m := NewManager(Config{Concurrency: 1})
	defer m.Close()

	spec := gatedSpec("", 31) // ungated sim backend
	started := time.Date(2026, 8, 1, 10, 0, 0, 0, time.UTC)
	finished := started.Add(time.Minute)
	term := Snapshot{
		ID: "j7", Tenant: "alice", State: StateFailed, Completed: 2,
		Error: "backend exploded", CreatedAt: started,
		StartedAt: &started, FinishedAt: &finished,
	}
	j, err := m.Restore(spec, term)
	if err != nil {
		t.Fatal(err)
	}
	snap := j.Snapshot()
	if snap.State != StateFailed || snap.Error != "backend exploded" || snap.Tenant != "alice" {
		t.Fatalf("restored terminal snapshot = %+v", snap)
	}
	select {
	case <-j.Done():
	default:
		t.Fatal("restored terminal job's Done channel is open")
	}
	if _, err := m.Restore(spec, term); err == nil {
		t.Fatal("duplicate restore accepted")
	}
	if _, err := m.Restore(spec, Snapshot{State: StateQueued}); err == nil {
		t.Fatal("restore without an ID accepted")
	}

	// A live (queued-at-crash) snapshot re-runs to completion.
	live := Snapshot{ID: "j9", Tenant: "bob", State: StateRunning, CreatedAt: started}
	spec2 := gatedSpec("", 32)
	j2, err := m.Restore(spec2, live)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j2.ID(), StateDone)
	if got := j2.Snapshot(); got.Tenant != "bob" || !got.CreatedAt.Equal(started) {
		t.Fatalf("re-enqueued job lost identity: %+v", got)
	}

	// New submissions allocate past the highest restored ID.
	fresh, _, err := m.Submit(gatedSpec("", 33))
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ID() == "j7" || fresh.ID() == "j9" {
		t.Fatalf("fresh job reused a restored ID %s", fresh.ID())
	}
	waitState(t, m, fresh.ID(), StateDone)
	if s := m.Stats(); s.Done != 2 || s.Failed != 1 {
		t.Fatalf("stats after restore = %+v, want 2 done / 1 failed", s)
	}
}

// TestSubmitCancelCloseRace hammers Submit/SubmitAs/Cancel concurrently
// with Close: every Submit must either succeed or return a specific
// sentinel (never a torn state), and after Close every accepted job is
// terminal. Run with -race this covers the Close-vs-Submit surface.
func TestSubmitCancelCloseRace(t *testing.T) {
	gateHammer.Reset()
	gateHammer.Release() // runs complete instantly; churn comes from the callers
	m := NewManager(Config{QueueDepth: 8, Concurrency: 2, QuotaQueued: 4})

	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		ids []string
	)
	tenants := []string{"", "alice", "bob"}
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				spec := gatedSpec("jobs-gate-hammer", uint64(g*1000+i))
				j, _, err := m.SubmitAs(tenants[(g+i)%len(tenants)], spec)
				switch {
				case err == nil:
					mu.Lock()
					ids = append(ids, j.ID())
					mu.Unlock()
					if i%3 == 0 {
						_ = m.Cancel(j.ID())
					}
				case errors.Is(err, ErrClosed),
					errors.Is(err, ErrQueueFull),
					errors.Is(err, ErrQuotaExceeded):
					// expected under churn
				default:
					t.Errorf("Submit returned unexpected error: %v", err)
				}
			}
		}(g)
	}
	// Close concurrently with the submitters.
	time.Sleep(5 * time.Millisecond)
	closed := make(chan struct{})
	go func() {
		m.Close()
		close(closed)
	}()
	wg.Wait()
	<-closed
	m.Close() // idempotent

	if _, _, err := m.Submit(gatedSpec("jobs-gate-hammer", 999999)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, id := range ids {
		j, err := m.Get(id)
		if err != nil {
			t.Fatalf("accepted job %s vanished: %v", id, err)
		}
		if snap := j.Snapshot(); !snap.State.Terminal() {
			t.Fatalf("job %s left in %s after Close", id, snap.State)
		}
	}
}
