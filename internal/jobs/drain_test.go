package jobs

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/testutil"
)

var gateDrain = testutil.NewGateBackend("jobs-gate-drain")

func init() { engine.Register(gateDrain) }

// TestDrainRefusesAndWaitIdleFinishes covers the graceful-shutdown
// halves: after Drain, new submissions fail with ErrDraining while the
// running job keeps executing and stays fully observable; WaitIdle
// blocks until that job lands and honors its context while blocked.
func TestDrainRefusesAndWaitIdleFinishes(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()

	j, _, err := m.Submit(gatedSpec(gateDrain.Name(), 1))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j.Snapshot().ID, StateRunning)

	if m.Draining() {
		t.Fatal("fresh manager reports draining")
	}
	m.Drain()
	m.Drain() // idempotent
	if !m.Draining() {
		t.Fatal("Drain did not latch")
	}
	if _, _, err := m.Submit(gatedSpec(gateDrain.Name(), 2)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining = %v, want ErrDraining", err)
	}

	// WaitIdle must respect its context while the gated job holds on.
	short, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	err = m.WaitIdle(short)
	cancel()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitIdle with a live job = %v, want deadline exceeded", err)
	}

	// The running job is untouched by the drain: release the gate and
	// both the job and WaitIdle complete.
	gateDrain.Release()
	idle, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.WaitIdle(idle); err != nil {
		t.Fatalf("WaitIdle after release: %v", err)
	}
	snap := waitState(t, m, j.Snapshot().ID, StateDone)
	if snap.Error != "" {
		t.Fatalf("drained job finished with error %q", snap.Error)
	}
}
