package sched

import (
	"math"
	"testing"
	"testing/quick"
)

// drain runs a scheduler to exhaustion in round-robin worker order,
// reporting each chunk as taking chunk*mu seconds, and returns the chunk
// sequence.
func drain(t *testing.T, s Scheduler, p int, mu float64) []int64 {
	t.Helper()
	var chunks []int64
	now := 0.0
	for i := 0; ; i++ {
		w := i % p
		c := s.Next(w, now)
		if c == 0 {
			break
		}
		if c < 0 {
			t.Fatalf("%s: negative chunk %d", s.Name(), c)
		}
		elapsed := float64(c) * mu
		now += elapsed
		s.Report(w, c, elapsed, now)
		chunks = append(chunks, c)
		if len(chunks) > 1<<22 {
			t.Fatalf("%s: runaway scheduler, >4M chunks", s.Name())
		}
	}
	return chunks
}

// hagerupParams returns the parameter set of the Hagerup experiment for
// arbitrary n and p: exponential task times µ = σ = 1 s, h = 0.5 s.
func hagerupParams(n int64, p int) Params {
	return Params{N: n, P: p, H: 0.5, Mu: 1, Sigma: 1}
}

func sum(chunks []int64) int64 {
	var s int64
	for _, c := range chunks {
		s += c
	}
	return s
}

// TestInvariantsAllTechniques checks, for every registered technique over
// a grid of (n, p), that chunks are positive, sum to n, Next returns 0
// after exhaustion, and Chunks() counts scheduling operations.
func TestInvariantsAllTechniques(t *testing.T) {
	ns := []int64{1, 2, 7, 64, 1000, 1024, 8192}
	ps := []int{1, 2, 3, 8, 64, 256}
	for _, name := range Names() {
		for _, n := range ns {
			for _, p := range ps {
				s, err := New(name, hagerupParams(n, p))
				if err != nil {
					t.Fatalf("New(%s, n=%d, p=%d): %v", name, n, p, err)
				}
				chunks := drain(t, s, p, 1)
				if got := sum(chunks); got != n {
					t.Errorf("%s n=%d p=%d: chunks sum to %d", name, n, p, got)
				}
				if s.Remaining() != 0 {
					t.Errorf("%s n=%d p=%d: remaining %d after drain", name, n, p, s.Remaining())
				}
				if got := s.Chunks(); got != int64(len(chunks)) {
					t.Errorf("%s n=%d p=%d: Chunks() = %d, want %d", name, n, p, got, len(chunks))
				}
				for round := 0; round < 3; round++ {
					if c := s.Next(round%p, 1e9); c != 0 {
						t.Errorf("%s n=%d p=%d: Next after exhaustion = %d", name, n, p, c)
					}
				}
			}
		}
	}
}

// TestInvariantsQuick drives every technique with randomized parameters
// via testing/quick.
func TestInvariantsQuick(t *testing.T) {
	for _, name := range Names() {
		name := name
		f := func(nRaw uint16, pRaw uint8, muRaw, sigmaRaw uint8) bool {
			n := int64(nRaw)%5000 + 1
			p := int(pRaw)%32 + 1
			mu := float64(muRaw)/16 + 0.05
			sigma := float64(sigmaRaw) / 32
			s, err := New(name, Params{N: n, P: p, H: 0.25, Mu: mu, Sigma: sigma})
			if err != nil {
				return false
			}
			var total int64
			now := 0.0
			for i := 0; ; i++ {
				c := s.Next(i%p, now)
				if c == 0 {
					break
				}
				if c < 1 || c > n {
					return false
				}
				total += c
				now += float64(c) * mu
				s.Report(i%p, c, float64(c)*mu, now)
				if total > n {
					return false
				}
			}
			return total == n && s.Remaining() == 0
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestDecreasingChunkTechniques: GSS, TSS, FAC2, BOLD and TAP must issue
// non-increasing chunk sizes (within tolerance of 1 task for rounding).
func TestDecreasingChunkTechniques(t *testing.T) {
	for _, name := range []string{"GSS", "TSS", "FAC2", "TAP"} {
		s, err := New(name, hagerupParams(8192, 8))
		if err != nil {
			t.Fatal(err)
		}
		chunks := drain(t, s, 8, 1)
		for i := 1; i < len(chunks); i++ {
			if chunks[i] > chunks[i-1]+1 {
				t.Errorf("%s: chunk %d grew: %d -> %d", name, i, chunks[i-1], chunks[i])
				break
			}
		}
	}
}

// TestSchedulingOperationCounts pins the closed-form operation counts the
// wasted-time accounting depends on: STAT issues exactly min(p, n) ops,
// SS exactly n ops.
func TestSchedulingOperationCounts(t *testing.T) {
	cases := []struct {
		n int64
		p int
	}{{1024, 2}, {1024, 8}, {1024, 1024}, {8192, 64}, {100, 7}}
	for _, c := range cases {
		stat, _ := New("STAT", hagerupParams(c.n, c.p))
		chunks := drain(t, stat, c.p, 1)
		wantOps := int64(c.p)
		if int64(c.p) > c.n {
			wantOps = c.n
		}
		if int64(len(chunks)) != wantOps {
			t.Errorf("STAT n=%d p=%d: %d ops, want %d", c.n, c.p, len(chunks), wantOps)
		}
		ss, _ := New("SS", hagerupParams(c.n, c.p))
		if got := int64(len(drain(t, ss, c.p, 1))); got != c.n {
			t.Errorf("SS n=%d p=%d: %d ops, want %d", c.n, c.p, got, c.n)
		}
	}
}

// TestOperationOrdering verifies the qualitative ordering the Hagerup
// experiment exhibits: for a large loop, BOLD and the factoring family
// issue far fewer scheduling operations than SS, and BOLD issues no more
// than twice FAC's (boldness means fewer or comparable, never wildly
// more).
func TestOperationOrdering(t *testing.T) {
	const n, p = 65536, 64
	ops := map[string]int64{}
	for _, name := range []string{"SS", "GSS", "FAC", "FAC2", "BOLD", "TSS"} {
		s, err := New(name, hagerupParams(n, p))
		if err != nil {
			t.Fatal(err)
		}
		ops[name] = int64(len(drain(t, s, p, 1)))
	}
	for _, name := range []string{"GSS", "FAC", "FAC2", "BOLD", "TSS"} {
		if ops[name]*10 > ops["SS"] {
			t.Errorf("%s used %d ops, expected <10%% of SS's %d", name, ops[name], ops["SS"])
		}
	}
	if ops["BOLD"] > 2*ops["FAC"] {
		t.Errorf("BOLD used %d ops vs FAC %d; expected bolder (fewer or comparable)", ops["BOLD"], ops["FAC"])
	}
}

func TestNewRejectsBadParams(t *testing.T) {
	if _, err := New("GSS", Params{N: 0, P: 4}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := New("GSS", Params{N: 10, P: 0}); err == nil {
		t.Error("P=0 accepted")
	}
	if _, err := New("nope", Params{N: 10, P: 1}); err == nil {
		t.Error("unknown name accepted")
	}
	if _, err := New("FAC", Params{N: 10, P: 2, Mu: 0, Sigma: 1}); err == nil {
		t.Error("FAC with mu=0 accepted")
	}
	if _, err := New("TSS", Params{N: 10, P: 2, First: 1, Last: 5}); err == nil {
		t.Error("TSS with last>first accepted")
	}
	if _, err := New("WF", Params{N: 10, P: 2, Mu: 1, Weights: []float64{1, -1}}); err == nil {
		t.Error("WF with negative weight accepted")
	}
	if _, err := New("WF", Params{N: 10, P: 2, Mu: 1, Weights: []float64{1, 1, 1}}); err == nil {
		t.Error("WF with wrong weight count accepted")
	}
}

// TestRequirementsTableII reproduces paper Table II.
func TestRequirementsTableII(t *testing.T) {
	want := map[string][]Param{
		"STAT": {ParamN, ParamP},
		"SS":   {},
		"FSC":  {ParamH, ParamN, ParamP, ParamSigma},
		"GSS":  {ParamP, ParamR},
		"TSS":  {ParamF, ParamL, ParamN, ParamP},
		"FAC":  {ParamMu, ParamP, ParamR, ParamSigma},
		"FAC2": {ParamP, ParamR},
		"BOLD": {ParamH, ParamM, ParamMu, ParamP, ParamR, ParamSigma},
	}
	for name, wantParams := range want {
		got, err := Requirements(name)
		if err != nil {
			t.Fatalf("Requirements(%s): %v", name, err)
		}
		if len(got) != len(wantParams) {
			t.Errorf("Requirements(%s) = %v, want %v", name, got, wantParams)
			continue
		}
		for i := range got {
			if got[i] != wantParams[i] {
				t.Errorf("Requirements(%s) = %v, want %v", name, got, wantParams)
				break
			}
		}
	}
	if _, err := Requirements("bogus"); err == nil {
		t.Error("Requirements(bogus) succeeded")
	}
}

func TestNamesStable(t *testing.T) {
	n := Names()
	if len(n) != 15 {
		t.Fatalf("Names() has %d entries, want 15", len(n))
	}
	if n[0] != "STAT" || n[8] != "BOLD" {
		t.Fatalf("Names() order changed: %v", n)
	}
	v := VerifiedNames()
	if len(v) != 8 || v[0] != "STAT" || v[7] != "BOLD" {
		t.Fatalf("VerifiedNames() = %v", v)
	}
	for _, name := range n {
		if _, err := New(name, hagerupParams(100, 4)); err != nil {
			t.Errorf("registered name %s fails to construct: %v", name, err)
		}
	}
}

// TestNormWeights checks normalization of PE weights.
func TestNormWeights(t *testing.T) {
	w, err := normWeights([]float64{1, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w[0]-0.5) > 1e-12 || math.Abs(w[1]-1.5) > 1e-12 {
		t.Fatalf("normWeights = %v", w)
	}
	if w, _ := normWeights(nil, 3); w[0] != 1 || w[1] != 1 || w[2] != 1 {
		t.Fatalf("nil weights = %v", w)
	}
}
