package sched

import "fmt"

// GSS is guided self scheduling (Polychronopoulos & Kuck, 1987). Each
// requesting PE receives ⌈r/p⌉ of the r remaining tasks, so chunk sizes
// decay geometrically: large early chunks amortize overhead, small late
// chunks smooth out uneven PE finishing times (the technique was designed
// for uneven PE starting times, paper §II).
//
// GSS(k) bounds the chunk from below by k, the variant the TSS
// publication measures with k = 1, 2, 5, 10, 20, 80.
type GSS struct {
	base
	min int64
}

// NewGSS returns a guided-self-scheduling scheduler. Params.MinChunk
// selects k (0 selects 1).
func NewGSS(p Params) (*GSS, error) {
	b, err := newBase("GSS", p)
	if err != nil {
		return nil, err
	}
	k := p.MinChunk
	if k < 0 {
		return nil, fmt.Errorf("sched: GSS requires MinChunk >= 0, got %d", k)
	}
	if k == 0 {
		k = 1
	}
	return &GSS{base: b, min: k}, nil
}

// Next assigns max(k, ⌈remaining/p⌉).
func (s *GSS) Next(_ int, _ float64) int64 {
	want := ceilDiv(s.remaining, int64(s.p))
	if want < s.min {
		want = s.min
	}
	return s.take(want)
}
