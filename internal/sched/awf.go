package sched

import (
	"fmt"
	"math"
)

// This file implements adaptive weighted factoring and its batch/chunk
// variants (paper §II, listed as future verification work in §VI):
//
//   - AWF (Banicescu, Velusamy & Devaprasad, Cluster Computing 6(3),
//     2003) was developed for time-stepping applications: weights are
//     measured during one time step and applied during the next.
//   - AWF-B and AWF-C (Cariño & Banicescu, 2008) adapt within a single
//     loop execution, re-estimating the weights after each batch (B) or
//     after each chunk (C).
//
// All three use the practical factoring batch rule (FAC2, x = 2), so —
// like FAC2 — they need no prior knowledge of µ and σ; adaptivity comes
// entirely from the measured execution rates fed back through Report.

// perfTracker accumulates measured execution rates per PE.
type perfTracker struct {
	time  []float64 // cumulative chunk execution time per PE
	tasks []int64   // cumulative tasks completed per PE
}

func newPerfTracker(p int) perfTracker {
	return perfTracker{time: make([]float64, p), tasks: make([]int64, p)}
}

// reset clears all accumulated measurements in place.
func (t *perfTracker) reset() {
	for i := range t.time {
		t.time[i] = 0
		t.tasks[i] = 0
	}
}

func (t *perfTracker) record(w int, chunk int64, elapsed float64) {
	if w < 0 || w >= len(t.time) {
		return
	}
	t.time[w] += elapsed
	t.tasks[w] += chunk
}

// covered reports whether every PE has completed at least one chunk, the
// precondition for computing measured weights.
func (t *perfTracker) covered() bool {
	for _, n := range t.tasks {
		if n == 0 {
			return false
		}
	}
	return true
}

// weights returns measured weights w_i ∝ tasks_i/time_i normalized to
// Σw = p, or nil until every PE has reported at least one chunk.
func (t *perfTracker) weights() []float64 {
	if !t.covered() {
		return nil
	}
	p := len(t.time)
	w := make([]float64, p)
	var sum float64
	for i := range w {
		if t.time[i] <= 0 {
			// Infinitely fast PE measurement; treat as rate 1 to stay
			// finite — the next real measurement corrects it.
			w[i] = 1
		} else {
			w[i] = float64(t.tasks[i]) / t.time[i]
		}
		sum += w[i]
	}
	for i := range w {
		w[i] *= float64(p) / sum
	}
	return w
}

// awfCore is the machinery shared by the three AWF variants.
type awfCore struct {
	base
	tracker     perfTracker
	weights     []float64
	initWeights []float64 // construction weights, restored by Reset
	batchBase   float64
	batchLeft   int
	adaptBatch  bool // recompute weights at batch boundaries (AWF-B)
	adaptChunk  bool // recompute weights at every request (AWF-C)
}

func newAWFCore(name string, p Params, adaptBatch, adaptChunk bool) (*awfCore, error) {
	b, err := newBase(name, p)
	if err != nil {
		return nil, err
	}
	w, err := normWeights(p.Weights, p.P)
	if err != nil {
		return nil, err
	}
	init := make([]float64, len(w))
	copy(init, w)
	return &awfCore{
		base:        b,
		tracker:     newPerfTracker(p.P),
		weights:     w,
		initWeights: init,
		adaptBatch:  adaptBatch,
		adaptChunk:  adaptChunk,
	}, nil
}

// Reset restores the scheduler to its post-construction state: the
// construction weights come back and all measured rates are dropped.
func (s *awfCore) Reset() {
	s.base.Reset()
	s.tracker.reset()
	// No code path writes weight elements in place (refreshWeights swaps
	// in whole slices), so restoring by aliasing is safe.
	s.weights = s.initWeights
	s.batchBase = 0
	s.batchLeft = 0
}

// Next hands worker w its weighted share of the current FAC2-style batch.
func (s *awfCore) Next(w int, _ float64) int64 {
	if s.remaining <= 0 {
		return 0
	}
	if w < 0 || w >= s.p {
		panic(fmt.Sprintf("sched: %s worker index %d out of range [0,%d)", s.name, w, s.p))
	}
	if s.batchLeft == 0 {
		if s.adaptBatch {
			s.refreshWeights()
		}
		s.batchBase = float64(ceilDiv(s.remaining, 2*int64(s.p)))
		s.batchLeft = s.p
	}
	if s.adaptChunk {
		s.refreshWeights()
	}
	s.batchLeft--
	return s.take(int64(math.Ceil(s.weights[w] * s.batchBase)))
}

func (s *awfCore) refreshWeights() {
	if w := s.tracker.weights(); w != nil {
		s.weights = w
	}
}

// Report feeds measured chunk execution back into the weight estimates.
func (s *awfCore) Report(w int, chunk int64, elapsed, _ float64) {
	s.tracker.record(w, chunk, elapsed)
}

// UpdatedWeights returns the weights measured during this execution,
// normalized to Σ = p. For AWF proper this is what a time-stepping
// application passes as Params.Weights of the next time step. Returns the
// construction weights if some PE never completed a chunk.
func (s *awfCore) UpdatedWeights() []float64 {
	if w := s.tracker.weights(); w != nil {
		return w
	}
	out := make([]float64, len(s.weights))
	copy(out, s.weights)
	return out
}

// AWF adapts weights between time steps: within one loop execution the
// weights are fixed (supplied from the previous step's measurements via
// Params.Weights); UpdatedWeights exposes this step's measurements.
type AWF struct{ awfCore }

// NewAWF returns a time-step-adaptive weighted factoring scheduler.
func NewAWF(p Params) (*AWF, error) {
	c, err := newAWFCore("AWF", p, false, false)
	if err != nil {
		return nil, err
	}
	return &AWF{awfCore: *c}, nil
}

// AWFB adapts the weights after every scheduling batch.
type AWFB struct{ awfCore }

// NewAWFB returns a batch-adaptive weighted factoring scheduler.
func NewAWFB(p Params) (*AWFB, error) {
	c, err := newAWFCore("AWF-B", p, true, false)
	if err != nil {
		return nil, err
	}
	return &AWFB{awfCore: *c}, nil
}

// AWFC adapts the weights at every chunk request.
type AWFC struct{ awfCore }

// NewAWFC returns a chunk-adaptive weighted factoring scheduler.
func NewAWFC(p Params) (*AWFC, error) {
	c, err := newAWFCore("AWF-C", p, false, true)
	if err != nil {
		return nil, err
	}
	return &AWFC{awfCore: *c}, nil
}
