package sched

// FAC2 is the practical variant of factoring the FAC publication
// recommends when µ and σ are unknown in advance (paper §II): each batch
// simply allocates half of the remaining work, evenly split into p
// chunks:
//
//	K_j = ⌈ r_j / (2p) ⌉
//
// so the chunk-size sequence is n/2p, n/4p, n/8p, … This requires no
// statistical knowledge at all yet "works well in practice".
type FAC2 struct {
	base
	batchChunk int64
	batchLeft  int
}

// NewFAC2 returns a fixed-factor (x = 2) factoring scheduler.
func NewFAC2(p Params) (*FAC2, error) {
	b, err := newBase("FAC2", p)
	if err != nil {
		return nil, err
	}
	return &FAC2{base: b}, nil
}

// Reset restores the scheduler to its post-construction state.
func (s *FAC2) Reset() {
	s.base.Reset()
	s.batchChunk = 0
	s.batchLeft = 0
}

// Next hands out ⌈r/(2p)⌉-sized chunks in batches of p.
func (s *FAC2) Next(_ int, _ float64) int64 {
	if s.remaining <= 0 {
		return 0
	}
	if s.batchLeft == 0 {
		s.batchChunk = ceilDiv(s.remaining, 2*int64(s.p))
		s.batchLeft = s.p
	}
	s.batchLeft--
	return s.take(s.batchChunk)
}
