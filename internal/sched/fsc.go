package sched

import (
	"fmt"
	"math"
)

// FSC is fixed size chunking (Kruskal & Weiss, 1985), the first DLS
// technique (paper §II). It chooses one chunk size for the whole loop by
// balancing the scheduling overhead h against the expected load imbalance
// caused by the task-time variance:
//
//	K_FSC = ( (√2 · n · h) / (σ · p · √(ln p)) )^(2/3)
//
// The formula assumes p ≥ 2 and σ > 0; the degenerate cases fall back to
// static chunking (no variance or a single PE means overhead is the only
// cost, so the fewest possible operations win).
type FSC struct {
	base
	chunk int64
}

// NewFSC returns a fixed-size-chunking scheduler. It requires h and σ
// (paper Table II); µ is accepted for symmetry but unused by the formula.
func NewFSC(p Params) (*FSC, error) {
	b, err := newBase("FSC", p)
	if err != nil {
		return nil, err
	}
	if p.H < 0 {
		return nil, fmt.Errorf("sched: FSC requires h >= 0, got %v", p.H)
	}
	if p.Sigma < 0 {
		return nil, fmt.Errorf("sched: FSC requires sigma >= 0, got %v", p.Sigma)
	}
	return &FSC{base: b, chunk: fscChunk(p)}, nil
}

func fscChunk(p Params) int64 {
	n := float64(p.N)
	pe := float64(p.P)
	if p.P < 2 || p.Sigma == 0 || p.H == 0 {
		// No variance to balance against (or no overhead to amortize):
		// the optimum degenerates. With σ=0 any chunking is balanced, so
		// minimize operations; with h=0 operations are free, so chunk
		// size 1 would also be optimal, but static keeps the comparison
		// with the paper's experiments meaningful (Hagerup sets h>0).
		return ceilDiv(p.N, int64(p.P))
	}
	k := math.Pow(math.Sqrt2*n*p.H/(p.Sigma*pe*math.Sqrt(math.Log(pe))), 2.0/3.0)
	c := int64(math.Ceil(k))
	if c < 1 {
		c = 1
	}
	if max := ceilDiv(p.N, int64(p.P)); c > max {
		c = max
	}
	return c
}

// Next assigns the precomputed fixed chunk.
func (s *FSC) Next(_ int, _ float64) int64 { return s.take(s.chunk) }

// ChunkSize exposes the computed K_FSC for tests and documentation.
func (s *FSC) ChunkSize() int64 { return s.chunk }
