package sched

// SS is self scheduling, the very fine grained naive approach of paper
// §II: each of the n tasks is dynamically assigned one at a time to the
// next available PE. Load balancing is near-perfect but every task costs
// one scheduling operation, so the overhead term h·n dominates for cheap
// tasks — the effect both reproduced experiments exhibit.
type SS struct {
	base
}

// NewSS returns a self-scheduling scheduler. SS needs no parameters
// beyond the task count (paper Table II lists none).
func NewSS(p Params) (*SS, error) {
	b, err := newBase("SS", p)
	if err != nil {
		return nil, err
	}
	return &SS{base: b}, nil
}

// Next assigns exactly one task.
func (s *SS) Next(_ int, _ float64) int64 { return s.take(1) }
