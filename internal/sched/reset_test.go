package sched

import (
	"testing"
)

// driveTrace runs a scheduler to exhaustion under a deterministic
// synthetic master loop — round-robin workers, pseudo-random elapsed
// times fed back through Report so adaptive techniques accumulate state —
// and returns the full (worker, chunk) sequence.
func driveTrace(s Scheduler, p int) []int64 {
	var trace []int64
	now := 0.0
	// Small LCG for reproducible per-chunk execution-time jitter; the
	// values only need to vary, not be statistically sound.
	lcg := uint64(12345)
	jitter := func() float64 {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		return 0.5 + float64(lcg>>40)/float64(1<<25)
	}
	for i := 0; ; i++ {
		w := i % p
		chunk := s.Next(w, now)
		trace = append(trace, int64(w), chunk)
		if s.Remaining() == 0 && chunk == 0 {
			// Drain the finalization requests of the other workers too,
			// then stop; the invariants tests cover exhaustion behaviour.
			break
		}
		if chunk == 0 {
			continue
		}
		elapsed := float64(chunk) * jitter()
		now += elapsed / float64(p)
		s.Report(w, chunk, elapsed, now)
	}
	return trace
}

// TestResetReproducesFreshScheduler: for every technique, Reset must
// restore the exact post-construction state — the chunk trace after a
// Reset equals both the first trace and a freshly constructed
// scheduler's trace. This is what lets the engine's run arenas reuse one
// scheduler across thousands of replications without changing a bit of
// output.
func TestResetReproducesFreshScheduler(t *testing.T) {
	params := Params{
		N: 4096, P: 4,
		H: 0.3, Mu: 1.0, Sigma: 0.5,
		Weights: []float64{1, 2, 3, 4},
	}
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			s, err := New(name, params)
			if err != nil {
				t.Fatal(err)
			}
			r, ok := s.(Resetter)
			if !ok {
				t.Fatalf("%s does not implement sched.Resetter", name)
			}
			first := driveTrace(s, params.P)

			r.Reset()
			if got, want := s.Remaining(), params.N; got != want {
				t.Fatalf("after Reset: Remaining() = %d, want %d", got, want)
			}
			if got := s.Chunks(); got != 0 {
				t.Fatalf("after Reset: Chunks() = %d, want 0", got)
			}
			again := driveTrace(s, params.P)

			fresh, err := New(name, params)
			if err != nil {
				t.Fatal(err)
			}
			ref := driveTrace(fresh, params.P)

			if len(first) != len(ref) {
				t.Fatalf("first trace length %d != fresh trace length %d", len(first), len(ref))
			}
			for i := range ref {
				if first[i] != ref[i] {
					t.Fatalf("first run diverges from fresh scheduler at step %d: %d != %d", i/2, first[i], ref[i])
				}
				if again[i] != ref[i] {
					t.Fatalf("post-Reset run diverges from fresh scheduler at step %d: %d != %d", i/2, again[i], ref[i])
				}
			}
		})
	}
}

// TestResetMidRun: resetting a partially executed scheduler (state mid
// batch, outstanding chunks in flight) still restores the initial state.
func TestResetMidRun(t *testing.T) {
	params := Params{N: 1000, P: 3, H: 0.2, Mu: 1, Sigma: 1}
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			s, err := New(name, params)
			if err != nil {
				t.Fatal(err)
			}
			ref := driveTrace(s, params.P)

			s.(Resetter).Reset()
			// Execute a few operations without reporting some of them,
			// leaving batch counters and outstanding-task state dirty.
			for i := 0; i < 5; i++ {
				if c := s.Next(i%params.P, float64(i)); c > 0 && i%2 == 0 {
					s.Report(i%params.P, c, float64(c)*1.5, float64(i)+1)
				}
			}
			s.(Resetter).Reset()
			if got := driveTrace(s, params.P); len(got) != len(ref) {
				t.Fatalf("trace length after dirty Reset: %d, want %d", len(got), len(ref))
			} else {
				for i := range ref {
					if got[i] != ref[i] {
						t.Fatalf("dirty Reset diverges at step %d", i/2)
					}
				}
			}
		})
	}
}
