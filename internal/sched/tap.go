package sched

import (
	"fmt"
	"math"
)

// TAP is the taper strategy (Lucco, PLDI 1992), a refinement of guided
// self scheduling that subtracts a variance-dependent safety margin from
// the guided chunk so that the probability of one chunk overshooting the
// remaining fair share stays bounded:
//
//	T_i = r_i / p                  (guided fair share)
//	v_α = α · σ/µ                  (confidence scaling)
//	K_i = T_i + v_α²/2 − v_α·√(2·T_i + v_α²/4)
//
// α is the number of standard deviations of safety; Lucco suggests
// α ≈ 1.3 (roughly a 90 % one-sided confidence level), which is the
// default here. The paper lists TAP as future verification work (§VI);
// it is included as an extension.
type TAP struct {
	base
	v float64 // v_α = α·σ/µ
}

// NewTAP returns a taper scheduler. Params.Alpha selects α (0 selects
// 1.3); µ > 0 is required, σ = 0 degenerates to GSS(1).
func NewTAP(p Params) (*TAP, error) {
	b, err := newBase("TAP", p)
	if err != nil {
		return nil, err
	}
	if p.Mu <= 0 {
		return nil, fmt.Errorf("sched: TAP requires mu > 0, got %v", p.Mu)
	}
	if p.Sigma < 0 {
		return nil, fmt.Errorf("sched: TAP requires sigma >= 0, got %v", p.Sigma)
	}
	alpha := p.Alpha
	if alpha == 0 {
		alpha = 1.3
	}
	if alpha < 0 {
		return nil, fmt.Errorf("sched: TAP requires alpha >= 0, got %v", p.Alpha)
	}
	return &TAP{base: b, v: alpha * p.Sigma / p.Mu}, nil
}

// Next assigns the tapered guided chunk.
func (s *TAP) Next(_ int, _ float64) int64 {
	if s.remaining <= 0 {
		return 0
	}
	t := float64(s.remaining) / float64(s.p)
	k := t + s.v*s.v/2 - s.v*math.Sqrt(2*t+s.v*s.v/4)
	return s.take(int64(math.Ceil(k)))
}
