package sched

import (
	"fmt"
	"math"
)

// BOLD is the bold strategy (Hagerup, JPDC 47(2), 1997). Its design goal
// is to minimize the expected wasted time E[idle] + h·(#operations)/p by
// being "bolder" than factoring: it allocates larger chunks early to cut
// the number of scheduling operations and lets an overhead-aware floor
// stop the chunk decay before per-operation overhead dominates.
//
// Reconstruction note (DESIGN.md §3.1): Hagerup's original pseudocode is
// not reproduced in the paper under reproduction, so this implementation
// reconstructs BOLD from its published design objective using three
// documented ingredients:
//
//  1. Unbatched first-batch factoring. Every allocation applies the FAC
//     first-batch rule to the current remainder,
//     b = pσ/(2µ√r), x = 1 + b² + b√(b²+4), K = r/(x·p),
//     which is strictly bolder (larger chunks, fewer operations) than
//     batched FAC, whose later batches use the 2+… factor.
//  2. An overhead floor: the Kruskal–Weiss overhead/imbalance optimum
//     re-solved on the remaining work,
//     K_min(r) = ((√2·r·h)/(σ·p·√(ln p)))^(2/3),
//     so chunks never shrink into the regime where the h-term dominates.
//     This is where h enters BOLD (paper Table II lists h for BOLD only,
//     among the dynamic techniques).
//  3. An end-game guard using m (remaining plus in-execution tasks, paper
//     Table I): once fewer unassigned tasks than PEs remain, chunks drop
//     to single tasks so stragglers determine the makespan as little as
//     possible.
//
// These preserve the properties the reproduced evaluation depends on:
// BOLD issues the fewest scheduling operations of the variance-aware
// techniques and achieves lowest-or-near-lowest wasted time across the
// Hagerup grid.
type BOLD struct {
	base
	h, mu, sigma float64
	floorC       float64 // K_min(r) = floorC · r^(2/3); 0 disables the floor
	outstanding  int64   // tasks assigned but not yet reported finished
}

// NewBOLD returns a bold scheduler. It requires h, µ and σ (paper
// Table II).
func NewBOLD(p Params) (*BOLD, error) {
	b, err := newBase("BOLD", p)
	if err != nil {
		return nil, err
	}
	if p.Mu <= 0 {
		return nil, fmt.Errorf("sched: BOLD requires mu > 0, got %v", p.Mu)
	}
	if p.Sigma < 0 {
		return nil, fmt.Errorf("sched: BOLD requires sigma >= 0, got %v", p.Sigma)
	}
	if p.H < 0 {
		return nil, fmt.Errorf("sched: BOLD requires h >= 0, got %v", p.H)
	}
	s := &BOLD{base: b, h: p.H, mu: p.Mu, sigma: p.Sigma}
	if p.P >= 2 && p.Sigma > 0 && p.H > 0 {
		s.floorC = math.Pow(
			math.Sqrt2*p.H/(p.Sigma*float64(p.P)*math.Sqrt(math.Log(float64(p.P)))),
			2.0/3.0)
	}
	return s, nil
}

// Reset restores the scheduler to its post-construction state.
func (s *BOLD) Reset() {
	s.base.Reset()
	s.outstanding = 0
}

// Next computes the bold chunk for the current remainder.
func (s *BOLD) Next(_ int, _ float64) int64 {
	r := s.remaining
	if r <= 0 {
		return 0
	}
	if r <= int64(s.p) {
		// End game: spread the stragglers one task at a time.
		return s.grant(1)
	}
	rf := float64(r)
	b := float64(s.p) / (2 * math.Sqrt(rf)) * (s.sigma / s.mu)
	x := 1 + b*b + b*math.Sqrt(b*b+4)
	k := rf / (x * float64(s.p))
	if s.floorC > 0 {
		if floor := s.floorC * math.Pow(rf, 2.0/3.0); k < floor {
			k = floor
		}
	}
	if cap := math.Ceil(rf / float64(s.p)); k > cap {
		k = cap
	}
	return s.grant(int64(math.Ceil(k)))
}

// grant is take plus outstanding-task accounting (the m of Table I).
func (s *BOLD) grant(want int64) int64 {
	got := s.take(want)
	s.outstanding += got
	return got
}

// Report retires finished tasks from the outstanding count.
func (s *BOLD) Report(_ int, chunk int64, _, _ float64) {
	s.outstanding -= chunk
	if s.outstanding < 0 {
		s.outstanding = 0
	}
}

// InFlight returns m − r: tasks assigned but not yet reported finished.
func (s *BOLD) InFlight() int64 { return s.outstanding }
