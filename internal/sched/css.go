package sched

// CSS is chunk self scheduling: the chunk size k is fixed and chosen by
// the programmer (paper §III-A). The TSS publication's experiments use
// k = n/p, which it reports as near-optimal for uniformly distributed
// loops (speedup 69.2 of ideal 72 in the original measurement); with that
// choice CSS degenerates to static chunking served dynamically.
type CSS struct {
	base
	chunk int64
}

// NewCSS returns a chunk-self-scheduling scheduler. Params.Chunk selects
// k; 0 selects the TSS publication's default k = ⌈n/p⌉.
func NewCSS(p Params) (*CSS, error) {
	b, err := newBase("CSS", p)
	if err != nil {
		return nil, err
	}
	k := p.Chunk
	if k <= 0 {
		k = ceilDiv(p.N, int64(p.P))
	}
	return &CSS{base: b, chunk: k}, nil
}

// Next assigns the fixed chunk k (the final chunk may be smaller).
func (s *CSS) Next(_ int, _ float64) int64 { return s.take(s.chunk) }
