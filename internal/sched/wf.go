package sched

import (
	"fmt"
	"math"
)

// WF is weighted factoring (Hummel, Schmidt, Uma & Wein, SPAA 1996),
// developed for load-balanced execution on heterogeneous systems (paper
// §II). Batches are formed exactly as in factoring, but within a batch
// PE i receives a chunk proportional to its fixed relative weight w_i
// (Σw_i = p):
//
//	K_{j,i} = ⌈ w_i · r_j / (x_j · p) ⌉
//
// Weights are supplied at construction (e.g. relative processor speeds)
// and never change during execution — that is what AWF relaxes.
type WF struct {
	base
	mu, sigma float64
	weights   []float64

	batchBase  float64 // unweighted chunk K_j of the current batch
	batchLeft  int
	batchIndex int64
}

// NewWF returns a weighted-factoring scheduler. Params.Weights supplies
// the PE weights (nil means equal weights, making WF identical to FAC);
// µ > 0 is required, σ = 0 degenerates the batch rule to FAC2's.
func NewWF(p Params) (*WF, error) {
	b, err := newBase("WF", p)
	if err != nil {
		return nil, err
	}
	if p.Mu <= 0 {
		return nil, fmt.Errorf("sched: WF requires mu > 0, got %v", p.Mu)
	}
	if p.Sigma < 0 {
		return nil, fmt.Errorf("sched: WF requires sigma >= 0, got %v", p.Sigma)
	}
	w, err := normWeights(p.Weights, p.P)
	if err != nil {
		return nil, err
	}
	return &WF{base: b, mu: p.Mu, sigma: p.Sigma, weights: w}, nil
}

// Reset restores the scheduler to its post-construction state. The
// normalized weights are construction-time constants, so only the batch
// bookkeeping resets.
func (s *WF) Reset() {
	s.base.Reset()
	s.batchBase = 0
	s.batchLeft = 0
	s.batchIndex = 0
}

// Next hands worker w its weighted share of the current batch.
func (s *WF) Next(w int, _ float64) int64 {
	if s.remaining <= 0 {
		return 0
	}
	if w < 0 || w >= s.p {
		panic(fmt.Sprintf("sched: WF worker index %d out of range [0,%d)", w, s.p))
	}
	if s.batchLeft == 0 {
		s.batchBase = float64(facBatchChunk(s.remaining, s.p, s.mu, s.sigma, s.batchIndex == 0))
		s.batchLeft = s.p
		s.batchIndex++
	}
	s.batchLeft--
	return s.take(int64(math.Ceil(s.weights[w] * s.batchBase)))
}

// Weights returns the normalized weights in use (Σ = p).
func (s *WF) Weights() []float64 {
	out := make([]float64, len(s.weights))
	copy(out, s.weights)
	return out
}
