package sched

import (
	"math"
	"testing"
)

func mustNew(t *testing.T, name string, p Params) Scheduler {
	t.Helper()
	s, err := New(name, p)
	if err != nil {
		t.Fatalf("New(%s): %v", name, err)
	}
	return s
}

func TestSTATChunkSizes(t *testing.T) {
	s := mustNew(t, "STAT", Params{N: 100, P: 8})
	chunks := drain(t, s, 8, 1)
	// ⌈100/8⌉ = 13 → 7 chunks of 13 and one of 9.
	if len(chunks) != 8 {
		t.Fatalf("STAT issued %d chunks, want 8", len(chunks))
	}
	for i := 0; i < 7; i++ {
		if chunks[i] != 13 {
			t.Errorf("chunk %d = %d, want 13", i, chunks[i])
		}
	}
	if chunks[7] != 9 {
		t.Errorf("last chunk = %d, want 9", chunks[7])
	}
}

func TestSTATFewerTasksThanPEs(t *testing.T) {
	s := mustNew(t, "STAT", Params{N: 3, P: 8})
	chunks := drain(t, s, 8, 1)
	if len(chunks) != 3 {
		t.Fatalf("chunks = %v", chunks)
	}
}

func TestSSAlwaysOne(t *testing.T) {
	s := mustNew(t, "SS", Params{N: 50, P: 4})
	for _, c := range drain(t, s, 4, 1) {
		if c != 1 {
			t.Fatalf("SS chunk = %d", c)
		}
	}
}

func TestCSSDefaultIsNOverP(t *testing.T) {
	s := mustNew(t, "CSS", Params{N: 100000, P: 72})
	// Tzen & Ni: k = n/p = 1389 (⌈100000/72⌉ = 1389).
	chunks := drain(t, s, 72, 1)
	if chunks[0] != 1389 {
		t.Fatalf("CSS default chunk = %d, want 1389", chunks[0])
	}
}

func TestCSSExplicitChunk(t *testing.T) {
	s := mustNew(t, "CSS", Params{N: 100, P: 4, Chunk: 7})
	chunks := drain(t, s, 4, 1)
	if chunks[0] != 7 || len(chunks) != 15 { // 14×7 + 2
		t.Fatalf("CSS chunks = %v", chunks)
	}
	if chunks[14] != 2 {
		t.Fatalf("final partial chunk = %d, want 2", chunks[14])
	}
}

// TestFSCFormula pins the Kruskal–Weiss chunk against a hand-computed
// value: n=8192, p=8, h=0.5, σ=1 →
// K = (√2·8192·0.5 / (1·8·√ln8))^(2/3) = (5792.6/11.53)^(2/3) ≈ 63.2 → 64.
func TestFSCFormula(t *testing.T) {
	s, err := NewFSC(Params{N: 8192, P: 8, H: 0.5, Sigma: 1, Mu: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(math.Sqrt2*8192*0.5/(1*8*math.Sqrt(math.Log(8))), 2.0/3.0)
	if got := s.ChunkSize(); got != int64(math.Ceil(want)) {
		t.Fatalf("FSC chunk = %d, want %d (%.2f)", got, int64(math.Ceil(want)), want)
	}
}

func TestFSCDegeneratesToStatic(t *testing.T) {
	// σ = 0: no variance → static chunking.
	s, err := NewFSC(Params{N: 100, P: 4, H: 0.5, Sigma: 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ChunkSize(); got != 25 {
		t.Fatalf("FSC σ=0 chunk = %d, want 25", got)
	}
	// p = 1: single PE → whole loop.
	s, err = NewFSC(Params{N: 100, P: 1, H: 0.5, Sigma: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ChunkSize(); got != 100 {
		t.Fatalf("FSC p=1 chunk = %d, want 100", got)
	}
}

func TestGSSSequence(t *testing.T) {
	s := mustNew(t, "GSS", Params{N: 100, P: 4})
	chunks := drain(t, s, 4, 1)
	// ⌈100/4⌉=25, ⌈75/4⌉=19, ⌈56/4⌉=14, ⌈42/4⌉=11, ⌈31/4⌉=8, ⌈23/4⌉=6,
	// ⌈17/4⌉=5, ⌈12/4⌉=3, ⌈9/4⌉=3, ⌈6/4⌉=2, ⌈4/4⌉=1,1,1,1.
	want := []int64{25, 19, 14, 11, 8, 6, 5, 3, 3, 2, 1, 1, 1, 1}
	if len(chunks) != len(want) {
		t.Fatalf("GSS chunks = %v, want %v", chunks, want)
	}
	for i := range want {
		if chunks[i] != want[i] {
			t.Fatalf("GSS chunks = %v, want %v", chunks, want)
		}
	}
}

func TestGSSMinChunk(t *testing.T) {
	s := mustNew(t, "GSS", Params{N: 100, P: 4, MinChunk: 10})
	for i, c := range drain(t, s, 4, 1) {
		// Every chunk is ≥10 except possibly the final remainder chunk.
		if c < 10 && s.Remaining() != 0 {
			t.Fatalf("GSS(10) chunk %d = %d", i, c)
		}
	}
}

func TestTSSDefaults(t *testing.T) {
	s, err := NewTSS(Params{N: 1000, P: 4})
	if err != nil {
		t.Fatal(err)
	}
	chunks := drain(t, s, 4, 1)
	// f = ⌈1000/8⌉ = 125, l = 1, N = ⌈2000/126⌉ = 16, δ = 124/15 ≈ 8.27.
	if chunks[0] != 125 {
		t.Fatalf("TSS first chunk = %d, want 125", chunks[0])
	}
	for i := 1; i < len(chunks); i++ {
		if chunks[i] > chunks[i-1] {
			t.Fatalf("TSS chunk grew at %d: %v", i, chunks)
		}
	}
	// Linear decrement: second chunk = 125 − ⌊δ⌋ = 117.
	if chunks[1] != 117 {
		t.Fatalf("TSS second chunk = %d, want 117", chunks[1])
	}
}

func TestTSSExplicitFirstLast(t *testing.T) {
	s, err := NewTSS(Params{N: 100, P: 2, First: 20, Last: 5})
	if err != nil {
		t.Fatal(err)
	}
	chunks := drain(t, s, 2, 1)
	if chunks[0] != 20 {
		t.Fatalf("first chunk = %d, want 20", chunks[0])
	}
	last := chunks[len(chunks)-1]
	if last > 20 {
		t.Fatalf("last chunk = %d", last)
	}
}

func TestFACFirstBatchFactor(t *testing.T) {
	// Hagerup parameters, n=1024, p=2: b0 = 2/(2·32) = 0.03125,
	// x0 = 1 + b² + b√(b²+4) ≈ 1.0635, K0 = ⌈1024/(1.0635·2)⌉ = 482.
	s := mustNew(t, "FAC", hagerupParams(1024, 2))
	chunks := drain(t, s, 2, 1)
	b := 2.0 / (2 * math.Sqrt(1024))
	x0 := 1 + b*b + b*math.Sqrt(b*b+4)
	want := int64(math.Ceil(1024 / (x0 * 2)))
	if chunks[0] != want {
		t.Fatalf("FAC first chunk = %d, want %d", chunks[0], want)
	}
	// Both chunks of the first batch must be equal.
	if chunks[1] != chunks[0] {
		t.Fatalf("FAC batch not uniform: %v", chunks[:2])
	}
}

func TestFACBatchesOfP(t *testing.T) {
	s := mustNew(t, "FAC", hagerupParams(10000, 5))
	chunks := drain(t, s, 5, 1)
	// Within each batch of 5 requests the chunk is constant (until the
	// final truncated batch).
	for i := 0; i+5 <= len(chunks)-5; i += 5 {
		for j := 1; j < 5; j++ {
			if chunks[i+j] != chunks[i] {
				t.Fatalf("batch at %d not uniform: %v", i, chunks[i:i+5])
			}
		}
	}
}

func TestFAC2Halving(t *testing.T) {
	s := mustNew(t, "FAC2", Params{N: 1024, P: 2})
	chunks := drain(t, s, 2, 1)
	want := []int64{256, 256, 128, 128, 64, 64, 32, 32, 16, 16, 8, 8, 4, 4, 2, 2, 1, 1, 1, 1}
	if len(chunks) != len(want) {
		t.Fatalf("FAC2 chunks = %v", chunks)
	}
	for i := range want {
		if chunks[i] != want[i] {
			t.Fatalf("FAC2 chunks = %v, want %v", chunks, want)
		}
	}
}

func TestTAPBelowGuided(t *testing.T) {
	// TAP's chunk must not exceed the guided fair share when σ > 0.
	tap := mustNew(t, "TAP", hagerupParams(10000, 8))
	gss := mustNew(t, "GSS", hagerupParams(10000, 8))
	tc := tap.Next(0, 0)
	gc := gss.Next(0, 0)
	if tc > gc {
		t.Fatalf("TAP chunk %d exceeds GSS chunk %d", tc, gc)
	}
	if tc < gc/2 {
		t.Fatalf("TAP chunk %d implausibly small vs GSS %d", tc, gc)
	}
}

func TestTAPZeroSigmaIsGuided(t *testing.T) {
	tap := mustNew(t, "TAP", Params{N: 1000, P: 4, Mu: 1, Sigma: 0})
	gss := mustNew(t, "GSS", Params{N: 1000, P: 4})
	for i := 0; ; i++ {
		tc, gc := tap.Next(i%4, 0), gss.Next(i%4, 0)
		if tc != gc {
			t.Fatalf("step %d: TAP %d != GSS %d", i, tc, gc)
		}
		if tc == 0 {
			break
		}
	}
}

func TestBOLDBolderThanFAC(t *testing.T) {
	bold := mustNew(t, "BOLD", hagerupParams(65536, 64))
	fac := mustNew(t, "FAC", hagerupParams(65536, 64))
	bFirst := bold.Next(0, 0)
	fFirst := fac.Next(0, 0)
	if bFirst < fFirst {
		t.Fatalf("BOLD first chunk %d < FAC first chunk %d", bFirst, fFirst)
	}
}

func TestBOLDEndGame(t *testing.T) {
	s, err := NewBOLD(hagerupParams(100, 64))
	if err != nil {
		t.Fatal(err)
	}
	// Fewer tasks than PEs remain quickly; chunks must drop to 1.
	for i := 0; ; i++ {
		c := s.Next(i%64, 0)
		if c == 0 {
			break
		}
		if s.Remaining() < 64 && c != 1 && s.Remaining() > 0 {
			// Once below p remaining, everything is single tasks.
			next := s.Next(0, 0)
			if next > 1 {
				t.Fatalf("end-game chunk = %d", next)
			}
		}
	}
}

func TestBOLDInFlightAccounting(t *testing.T) {
	s, err := NewBOLD(hagerupParams(1024, 4))
	if err != nil {
		t.Fatal(err)
	}
	c1 := s.Next(0, 0)
	c2 := s.Next(1, 0)
	if got := s.InFlight(); got != c1+c2 {
		t.Fatalf("InFlight = %d, want %d", got, c1+c2)
	}
	s.Report(0, c1, float64(c1), float64(c1))
	if got := s.InFlight(); got != c2 {
		t.Fatalf("InFlight after report = %d, want %d", got, c2)
	}
}

func TestWFProportionalToWeights(t *testing.T) {
	p := Params{N: 10000, P: 2, Mu: 1, Sigma: 0, Weights: []float64{1, 3}}
	s, err := NewWF(p)
	if err != nil {
		t.Fatal(err)
	}
	c0 := s.Next(0, 0)
	c1 := s.Next(1, 0)
	ratio := float64(c1) / float64(c0)
	if math.Abs(ratio-3) > 0.1 {
		t.Fatalf("WF chunks %d:%d, want ratio 3", c0, c1)
	}
}

func TestWFEqualWeightsMatchesFAC(t *testing.T) {
	wf := mustNew(t, "WF", hagerupParams(4096, 4))
	fac := mustNew(t, "FAC", hagerupParams(4096, 4))
	for i := 0; ; i++ {
		wc, fc := wf.Next(i%4, 0), fac.Next(i%4, 0)
		if wc != fc {
			t.Fatalf("step %d: WF %d != FAC %d", i, wc, fc)
		}
		if wc == 0 {
			break
		}
	}
}

// TestAWFCAdaptsToSlowPE drives AWF-C with one PE reporting 4× slower
// execution and checks the measured weights shift work away from it.
func TestAWFCAdaptsToSlowPE(t *testing.T) {
	s, err := NewAWFC(Params{N: 100000, P: 2})
	if err != nil {
		t.Fatal(err)
	}
	now := 0.0
	for i := 0; ; i++ {
		w := i % 2
		c := s.Next(w, now)
		if c == 0 {
			break
		}
		speed := 1.0
		if w == 1 {
			speed = 0.25 // PE 1 is 4× slower
		}
		elapsed := float64(c) / speed
		now += elapsed
		s.Report(w, c, elapsed, now)
	}
	ws := s.UpdatedWeights()
	if ws[0] < 1.4 || ws[1] > 0.6 {
		t.Fatalf("AWF-C weights = %v, want ≈ [1.6, 0.4]", ws)
	}
}

// TestAWFFixedWithinStep: plain AWF must not change behaviour mid-loop
// even when reports arrive; it matches WF... with the FAC2 batch rule.
func TestAWFFixedWithinStep(t *testing.T) {
	awf, err := NewAWF(Params{N: 4096, P: 4})
	if err != nil {
		t.Fatal(err)
	}
	fac2 := mustNew(t, "FAC2", Params{N: 4096, P: 4})
	now := 0.0
	for i := 0; ; i++ {
		w := i % 4
		ac, fc := awf.Next(w, now), fac2.Next(w, now)
		if ac != fc {
			t.Fatalf("step %d: AWF %d != FAC2 %d", i, ac, fc)
		}
		if ac == 0 {
			break
		}
		// Report wildly skewed timings; AWF must ignore them this step.
		elapsed := float64(ac) * float64(w+1)
		now += elapsed
		awf.Report(w, ac, elapsed, now)
	}
}

// TestAWFUpdatedWeightsRoundTrip simulates two time steps: weights
// measured in step one, applied in step two.
func TestAWFUpdatedWeightsRoundTrip(t *testing.T) {
	step1, err := NewAWF(Params{N: 10000, P: 2})
	if err != nil {
		t.Fatal(err)
	}
	now := 0.0
	for i := 0; ; i++ {
		w := i % 2
		c := step1.Next(w, now)
		if c == 0 {
			break
		}
		speed := 1.0
		if w == 1 {
			speed = 0.5
		}
		now += float64(c) / speed
		step1.Report(w, c, float64(c)/speed, now)
	}
	ws := step1.UpdatedWeights()
	if ws[0] <= ws[1] {
		t.Fatalf("weights = %v, PE0 should outweigh PE1", ws)
	}
	step2, err := NewAWF(Params{N: 10000, P: 2, Weights: ws})
	if err != nil {
		t.Fatal(err)
	}
	c0 := step2.Next(0, 0)
	c1 := step2.Next(1, 0)
	if c0 <= c1 {
		t.Fatalf("step2 chunks %d,%d: faster PE should get more", c0, c1)
	}
}

// TestAFConvergesToRateShares drives AF on a 2-PE system with PE1 twice
// as slow and deterministic times, dispatching to whichever PE is free
// first (the real master–worker dynamics). AF should give the fast PE
// clearly larger chunks, hand it the larger share of tasks, and its µ
// estimates should converge to the true per-task times.
func TestAFConvergesToRateShares(t *testing.T) {
	s, err := NewAF(Params{N: 200000, P: 2})
	if err != nil {
		t.Fatal(err)
	}
	free := [2]float64{0, 0}
	perTask := [2]float64{0.001, 0.002}
	var tasks [2]int64
	for {
		w := 0
		if free[1] < free[0] {
			w = 1
		}
		c := s.Next(w, free[w])
		if c == 0 {
			break
		}
		elapsed := float64(c) * perTask[w]
		free[w] += elapsed
		s.Report(w, c, elapsed, free[w])
		tasks[w] += c
	}
	share := float64(tasks[0]) / float64(tasks[0]+tasks[1])
	if share < 0.55 || share > 0.78 {
		t.Fatalf("fast PE processed share %.2f of tasks, want ≈2/3", share)
	}
	// Both PEs should finish near-simultaneously (balanced finishing is
	// AF's goal): within 10%% of the makespan.
	makespan := math.Max(free[0], free[1])
	if diff := math.Abs(free[0] - free[1]); diff > 0.1*makespan {
		t.Fatalf("finish skew %.3f of makespan %.3f", diff, makespan)
	}
	mu, _ := s.Estimates()
	if math.Abs(mu[0]-0.001) > 2e-4 || math.Abs(mu[1]-0.002) > 4e-4 {
		t.Fatalf("AF µ estimates = %v, want ≈[0.001 0.002]", mu)
	}
}

// TestAFZeroVarianceChunkIsFairShare: with deterministic equal PEs, the
// converged AF chunk approaches r/(p) scaled by the formula with D = 0:
// K = T/µ = r/(E·µ) = r/p.
func TestAFZeroVarianceChunkIsFairShare(t *testing.T) {
	s, err := NewAF(Params{N: 100000, P: 4})
	if err != nil {
		t.Fatal(err)
	}
	now := 0.0
	// Warm up with 2 chunks per PE.
	for i := 0; i < 8; i++ {
		w := i % 4
		c := s.Next(w, now)
		elapsed := float64(c) * 0.01
		now += elapsed
		s.Report(w, c, elapsed, now)
	}
	r := s.Remaining()
	c := s.Next(0, now)
	want := float64(r) / 4
	if math.Abs(float64(c)-want) > want*0.05+2 {
		t.Fatalf("AF σ=0 chunk = %d, want ≈%.0f (r=%d)", c, want, r)
	}
}

// TestBOLDFloorBinds: in the late stage (small remaining), BOLD's chunks
// must respect the overhead floor K_min(r) = floorC·r^(2/3) while more
// than p tasks remain — that is where h enters the technique.
func TestBOLDFloorBinds(t *testing.T) {
	p := hagerupParams(524288, 1024)
	s, err := NewBOLD(p)
	if err != nil {
		t.Fatal(err)
	}
	floorC := math.Pow(
		math.Sqrt2*p.H/(p.Sigma*float64(p.P)*math.Sqrt(math.Log(float64(p.P)))),
		2.0/3.0)
	for i := 0; ; i++ {
		r := s.Remaining()
		c := s.Next(i%p.P, 0)
		if c == 0 {
			break
		}
		if r > int64(p.P) {
			floor := int64(floorC * math.Pow(float64(r), 2.0/3.0))
			if c < floor {
				t.Fatalf("chunk %d below floor %d at remaining %d", c, floor, r)
			}
		}
	}
}

// TestFACTruncatedFinalBatch: when fewer tasks remain than a full batch
// would hand out, FAC must truncate cleanly and still sum to n.
func TestFACTruncatedFinalBatch(t *testing.T) {
	// n = 10 on p = 4: first batch chunk = ceil(10/(x0·4)) with tiny b,
	// so the last chunks truncate.
	s := mustNew(t, "FAC", Params{N: 10, P: 4, Mu: 1, Sigma: 1})
	chunks := drain(t, s, 4, 1)
	if got := sum(chunks); got != 10 {
		t.Fatalf("chunks %v sum to %d", chunks, got)
	}
	for _, c := range chunks {
		if c < 1 {
			t.Fatalf("chunk %d < 1 in %v", c, chunks)
		}
	}
}

// TestAWFBWeightsChangeAtBatchBoundary: within the first batch all chunks
// are equal (equal initial weights); after skewed timing reports, the
// second batch's chunks differ across PEs.
func TestAWFBWeightsChangeAtBatchBoundary(t *testing.T) {
	const p = 4
	s, err := NewAWFB(Params{N: 100000, P: p})
	if err != nil {
		t.Fatal(err)
	}
	var first []int64
	now := 0.0
	for w := 0; w < p; w++ {
		c := s.Next(w, now)
		first = append(first, c)
		// PE 0 is fast (rate 4), the others slow (rate 1).
		rate := 1.0
		if w == 0 {
			rate = 4
		}
		elapsed := float64(c) / rate
		now += elapsed
		s.Report(w, c, elapsed, now)
	}
	for _, c := range first[1:] {
		if c != first[0] {
			t.Fatalf("first batch not uniform: %v", first)
		}
	}
	var second []int64
	for w := 0; w < p; w++ {
		second = append(second, s.Next(w, now))
	}
	if second[0] <= second[1] {
		t.Fatalf("second batch ignores measured rates: %v", second)
	}
}

// TestTAPAlphaMonotonicity: a larger confidence factor α means a larger
// safety margin, hence smaller (more conservative) chunks.
func TestTAPAlphaMonotonicity(t *testing.T) {
	base := hagerupParams(10000, 8)
	small, err := NewTAP(Params{N: base.N, P: base.P, Mu: 1, Sigma: 1, Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	large, err := NewTAP(Params{N: base.N, P: base.P, Mu: 1, Sigma: 1, Alpha: 3})
	if err != nil {
		t.Fatal(err)
	}
	if cs, cl := small.Next(0, 0), large.Next(0, 0); cl >= cs {
		t.Fatalf("alpha=3 chunk %d >= alpha=0.5 chunk %d", cl, cs)
	}
}

// TestFSCMoreOverheadMeansBiggerChunks: raising h must not shrink the
// FSC chunk (overhead amortization).
func TestFSCMoreOverheadMeansBiggerChunks(t *testing.T) {
	lo, err := NewFSC(Params{N: 100000, P: 16, H: 0.01, Sigma: 1, Mu: 1})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := NewFSC(Params{N: 100000, P: 16, H: 1, Sigma: 1, Mu: 1})
	if err != nil {
		t.Fatal(err)
	}
	if hi.ChunkSize() <= lo.ChunkSize() {
		t.Fatalf("h=1 chunk %d <= h=0.01 chunk %d", hi.ChunkSize(), lo.ChunkSize())
	}
}
