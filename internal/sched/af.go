package sched

import (
	"math"
)

// AF is adaptive factoring (Banicescu & Liu, HPC Symposium 2000), the
// most general technique the paper discusses (§II): it adapts at
// execution time to both algorithmic and systemic variance by estimating,
// for each PE individually, the mean µ_i and variance σ_i² of the task
// execution times from the chunks that PE has completed. The chunk for a
// requesting PE i is
//
//	E = Σ_j 1/µ_j          (aggregate execution rate)
//	T = r / E              (balanced remaining time)
//	D = Σ_j σ_j²/µ_j
//	K_i = (D + 2T − √(D² + 4·D·T)) / (2·µ_i)
//
// With σ_j → 0 this reduces to K_i = T/µ_i, the rate-proportional fair
// share; with homogeneous estimates it recovers factoring.
//
// Estimation note: the simulators in this repository measure chunks, not
// individual tasks, so σ_i² is estimated from the spread of per-task
// chunk means m_c = T_c/K_c via Var(m_c) ≈ σ_i²/K_c, i.e. each chunk
// contributes a sample (m_c − µ_i)²·K_c. This is the standard
// chunk-granularity estimator and is documented in DESIGN.md.
type AF struct {
	base
	// Per-PE estimate state.
	timeSum []float64 // Σ chunk times
	taskSum []int64   // Σ chunk sizes
	nChunks []int64   // completed chunks
	varSum  []float64 // Σ (m_c − mean-so-far)²·K_c, running variance numerator
}

// NewAF returns an adaptive factoring scheduler. No statistical
// parameters are needed up front; everything is estimated online.
func NewAF(p Params) (*AF, error) {
	b, err := newBase("AF", p)
	if err != nil {
		return nil, err
	}
	return &AF{
		base:    b,
		timeSum: make([]float64, p.P),
		taskSum: make([]int64, p.P),
		nChunks: make([]int64, p.P),
		varSum:  make([]float64, p.P),
	}, nil
}

// Reset restores the scheduler to its post-construction state, dropping
// every per-PE estimate.
func (s *AF) Reset() {
	s.base.Reset()
	for w := 0; w < s.p; w++ {
		s.timeSum[w] = 0
		s.taskSum[w] = 0
		s.nChunks[w] = 0
		s.varSum[w] = 0
	}
}

// ready reports whether PE w has enough completed chunks (two) for stable
// estimates.
func (s *AF) ready(w int) bool { return s.nChunks[w] >= 2 }

// allReady reports whether every PE has estimates.
func (s *AF) allReady() bool {
	for w := 0; w < s.p; w++ {
		if !s.ready(w) {
			return false
		}
	}
	return true
}

func (s *AF) mu(w int) float64 {
	if s.taskSum[w] == 0 || s.timeSum[w] <= 0 {
		return 0
	}
	return s.timeSum[w] / float64(s.taskSum[w])
}

func (s *AF) sigma2(w int) float64 {
	if s.nChunks[w] < 2 {
		return 0
	}
	return s.varSum[w] / float64(s.nChunks[w]-1)
}

// Next computes the adaptive chunk for worker w, bootstrapping with half
// the fair share (the AF literature's startup rule) until per-PE
// estimates exist.
func (s *AF) Next(w int, _ float64) int64 {
	if s.remaining <= 0 {
		return 0
	}
	if w < 0 || w >= s.p || !s.allReady() {
		return s.take(ceilDiv(s.remaining, 2*int64(s.p)))
	}
	var d, e float64
	for j := 0; j < s.p; j++ {
		mj := s.mu(j)
		if mj <= 0 {
			return s.take(ceilDiv(s.remaining, 2*int64(s.p)))
		}
		e += 1 / mj
		d += s.sigma2(j) / mj
	}
	t := float64(s.remaining) / e
	mi := s.mu(w)
	k := (d + 2*t - math.Sqrt(d*d+4*d*t)) / (2 * mi)
	if cap := math.Ceil(float64(s.remaining) / float64(s.p)); k > cap {
		k = cap
	}
	return s.take(int64(math.Ceil(k)))
}

// Report updates PE w's running µ and σ² estimates with a completed
// chunk.
func (s *AF) Report(w int, chunk int64, elapsed, _ float64) {
	if w < 0 || w >= s.p || chunk <= 0 {
		return
	}
	m := elapsed / float64(chunk)
	oldMu := s.mu(w)
	s.timeSum[w] += elapsed
	s.taskSum[w] += chunk
	s.nChunks[w]++
	if s.nChunks[w] > 1 {
		newMu := s.mu(w)
		// Chunk-granularity Welford update: weight the squared deviation
		// by the chunk size to undo the 1/K variance reduction of the
		// chunk mean.
		s.varSum[w] += (m - oldMu) * (m - newMu) * float64(chunk)
		if s.varSum[w] < 0 {
			s.varSum[w] = 0
		}
	}
}

// Estimates exposes the current per-PE (µ_i, σ_i) estimates for tests
// and diagnostics.
func (s *AF) Estimates() (mu, sigma []float64) {
	mu = make([]float64, s.p)
	sigma = make([]float64, s.p)
	for w := 0; w < s.p; w++ {
		mu[w] = s.mu(w)
		sigma[w] = math.Sqrt(s.sigma2(w))
	}
	return mu, sigma
}
