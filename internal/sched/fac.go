package sched

import (
	"fmt"
	"math"
)

// FAC is factoring (Hummel, Schonberg & Flynn, CACM 35(8), 1992). Tasks
// are scheduled in batches of p equal chunks; the fraction of the
// remaining work allocated per batch adapts to the coefficient of
// variation of the task times, addressing both algorithmic and systemic
// variance (paper §II):
//
//	b_j = (p / (2√r_j)) · (σ/µ)
//	x_0 = 1 + b_0² + b_0·√(b_0² + 4)        (first batch)
//	x_j = 2 + b_j² + b_j·√(b_j² + 4)        (later batches)
//	K_j = ⌈ r_j / (x_j · p) ⌉
//
// as tabulated in Banicescu & Cariño, ETNA 21, 2005. With σ → 0 the rule
// approaches allocating half (1/x, x→2) of the remaining work per batch,
// which is exactly FAC2.
type FAC struct {
	base
	mu, sigma float64

	batchChunk int64 // chunk size of the current batch
	batchLeft  int   // chunks still to hand out in the current batch
	batchIndex int64 // 0 for the first batch
}

// NewFAC returns a factoring scheduler. It requires µ and σ (paper
// Table II); σ = 0 is permitted and degenerates towards FAC2 behaviour.
func NewFAC(p Params) (*FAC, error) {
	b, err := newBase("FAC", p)
	if err != nil {
		return nil, err
	}
	if p.Mu <= 0 {
		return nil, fmt.Errorf("sched: FAC requires mu > 0, got %v", p.Mu)
	}
	if p.Sigma < 0 {
		return nil, fmt.Errorf("sched: FAC requires sigma >= 0, got %v", p.Sigma)
	}
	return &FAC{base: b, mu: p.Mu, sigma: p.Sigma}, nil
}

// Reset restores the scheduler to its post-construction state.
func (s *FAC) Reset() {
	s.base.Reset()
	s.batchChunk = 0
	s.batchLeft = 0
	s.batchIndex = 0
}

// Next hands out the current batch chunk, computing a new batch factor
// whenever the previous batch's p chunks are exhausted.
func (s *FAC) Next(_ int, _ float64) int64 {
	if s.remaining <= 0 {
		return 0
	}
	if s.batchLeft == 0 {
		s.batchChunk = facBatchChunk(s.remaining, s.p, s.mu, s.sigma, s.batchIndex == 0)
		s.batchLeft = s.p
		s.batchIndex++
	}
	s.batchLeft--
	return s.take(s.batchChunk)
}

// facBatchChunk computes K_j for a batch starting with r remaining tasks.
func facBatchChunk(r int64, p int, mu, sigma float64, first bool) int64 {
	b := float64(p) / (2 * math.Sqrt(float64(r))) * (sigma / mu)
	x := 2 + b*b + b*math.Sqrt(b*b+4)
	if first {
		x = 1 + b*b + b*math.Sqrt(b*b+4)
	}
	k := int64(math.Ceil(float64(r) / (x * float64(p))))
	if k < 1 {
		k = 1
	}
	return k
}
