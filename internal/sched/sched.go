// Package sched implements the dynamic loop scheduling (DLS) techniques
// whose SimGrid-MSG implementation the paper verifies via reproducibility,
// plus the techniques the paper lists as future verification work.
//
// Verified set (paper §IV): STAT, SS, FSC, GSS, TSS, FAC, FAC2, BOLD, and
// CSS (used by the TSS publication's experiments).
// Future-work set (paper §VI): TAP, WF, AWF, AWF-B, AWF-C, AF.
//
// A Scheduler hands out chunks of consecutive loop iterations to
// requesting processing elements (PEs). Scheduling is centralized — the
// master of the master–worker model in paper Figure 1 owns the Scheduler —
// so implementations need no internal locking; the simulators serialize
// calls by construction.
//
// Invariants every implementation must satisfy (enforced by the
// property-based tests in invariants_test.go):
//
//  1. While tasks remain, Next returns a chunk in [1, remaining].
//  2. The chunk sizes over a full execution sum to exactly N.
//  3. After exhaustion, Next returns 0 forever.
//  4. Chunks() equals the number of successful Next calls (the number of
//     scheduling operations, which Hagerup charges h seconds each).
package sched

import (
	"fmt"
	"math"
	"sort"
)

// Params collects every quantity the techniques may need, following the
// notation of paper Table I. Unused fields are ignored by techniques that
// do not require them (paper Table II).
type Params struct {
	N int64 // number of tasks (loop iterations)
	P int   // number of PEs

	H     float64 // scheduling overhead per operation, seconds (FSC, BOLD)
	Mu    float64 // mean task execution time µ, seconds (FSC, FAC, TAP, BOLD)
	Sigma float64 // standard deviation σ of task times, seconds (FSC, FAC, TAP, BOLD)

	First int64 // first chunk size f (TSS); 0 selects ⌈n/(2p)⌉
	Last  int64 // last chunk size l (TSS); 0 selects 1

	MinChunk int64 // smallest chunk k (GSS(k)); 0 selects 1
	Chunk    int64 // fixed chunk size k (CSS); 0 selects ⌈n/p⌉

	Alpha float64 // confidence factor α (TAP); 0 selects 1.3

	Weights []float64 // relative PE weights, Σ = P (WF, AWF*); nil = equal
}

// Scheduler is the contract between the chunk calculators and the two
// simulators (internal/sim and internal/msg).
type Scheduler interface {
	// Name returns the canonical technique name (e.g. "FAC2", "GSS").
	Name() string
	// Next returns the size of the chunk assigned to worker w (0-based)
	// requesting work at simulated time now, or 0 if no tasks remain.
	Next(w int, now float64) int64
	// Report informs the scheduler that worker w finished a chunk of the
	// given size in elapsed seconds, completing at simulated time now.
	// Non-adaptive techniques ignore it.
	Report(w int, chunk int64, elapsed, now float64)
	// Remaining returns the number of unassigned tasks.
	Remaining() int64
	// Chunks returns the number of scheduling operations performed so far.
	Chunks() int64
}

// Resetter is the optional reuse extension of Scheduler: Reset restores
// the scheduler to the state it had immediately after construction, so
// one value can serve many runs of the same parameters without
// reallocating. Every technique in this package implements it — the
// engine's campaign runners rely on Reset to keep the per-run hot path
// allocation-free (falling back to reconstruction for schedulers that do
// not). A Reset scheduler must produce exactly the chunk sequence a
// freshly constructed one would, given the same Next/Report calls
// (verified per technique by reset_test.go).
type Resetter interface {
	Reset()
}

// base carries the bookkeeping shared by all techniques.
type base struct {
	name      string
	n         int64 // total tasks
	p         int   // PEs
	remaining int64
	chunks    int64
}

func (b *base) Name() string                        { return b.name }
func (b *base) Remaining() int64                    { return b.remaining }
func (b *base) Chunks() int64                       { return b.chunks }
func (b *base) Report(int, int64, float64, float64) {}

// Reset restores the shared bookkeeping to its post-construction state.
// Techniques with extra mutable state shadow this with their own Reset
// that calls it first.
func (b *base) Reset() {
	b.remaining = b.n
	b.chunks = 0
}

// take clamps want to [1, remaining], updates the counters and returns
// the granted chunk. It returns 0 when nothing remains.
func (b *base) take(want int64) int64 {
	if b.remaining <= 0 {
		return 0
	}
	if want < 1 {
		want = 1
	}
	if want > b.remaining {
		want = b.remaining
	}
	b.remaining -= want
	b.chunks++
	return want
}

func (b *base) validate(p Params) error {
	if p.N <= 0 {
		return fmt.Errorf("sched: %s requires N > 0, got %d", b.name, p.N)
	}
	if p.P <= 0 {
		return fmt.Errorf("sched: %s requires P > 0, got %d", b.name, p.P)
	}
	return nil
}

func newBase(name string, p Params) (base, error) {
	b := base{name: name, n: p.N, p: p.P, remaining: p.N}
	if err := b.validate(p); err != nil {
		return base{}, err
	}
	return b, nil
}

// ceilDiv returns ⌈a/b⌉ for positive a, b.
func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// Names lists the registered technique names in a stable order:
// the paper's verified set first, then the future-work extensions.
func Names() []string {
	verified := []string{"STAT", "SS", "CSS", "FSC", "GSS", "TSS", "FAC", "FAC2", "BOLD"}
	future := []string{"TAP", "WF", "AWF", "AWF-B", "AWF-C", "AF"}
	return append(verified, future...)
}

// VerifiedNames lists the eight techniques of the Hagerup experiment in
// the order the paper's figures use.
func VerifiedNames() []string {
	return []string{"STAT", "SS", "FSC", "GSS", "TSS", "FAC", "FAC2", "BOLD"}
}

// New constructs the named technique. Name matching is exact (canonical
// upper-case names as in the paper).
func New(name string, p Params) (Scheduler, error) {
	switch name {
	case "STAT":
		return NewSTAT(p)
	case "SS":
		return NewSS(p)
	case "CSS":
		return NewCSS(p)
	case "FSC":
		return NewFSC(p)
	case "GSS":
		return NewGSS(p)
	case "TSS":
		return NewTSS(p)
	case "FAC":
		return NewFAC(p)
	case "FAC2":
		return NewFAC2(p)
	case "BOLD":
		return NewBOLD(p)
	case "TAP":
		return NewTAP(p)
	case "WF":
		return NewWF(p)
	case "AWF":
		return NewAWF(p)
	case "AWF-B":
		return NewAWFB(p)
	case "AWF-C":
		return NewAWFC(p)
	case "AF":
		return NewAF(p)
	default:
		return nil, fmt.Errorf("sched: unknown technique %q (known: %v)", name, Names())
	}
}

// Param identifies one of the quantities of paper Table I.
type Param string

// Parameters of paper Table I that appear in Table II's requirement matrix.
const (
	ParamP     Param = "p"     // number of PEs
	ParamN     Param = "n"     // number of tasks
	ParamR     Param = "r"     // number of remaining tasks
	ParamH     Param = "h"     // scheduling overhead
	ParamMu    Param = "mu"    // mean of task execution times
	ParamSigma Param = "sigma" // variance/std of task execution times
	ParamF     Param = "f"     // first chunk size
	ParamL     Param = "l"     // last chunk size
	ParamM     Param = "m"     // remaining and under-execution tasks
)

// Requirements reproduces paper Table II: the parameters each DLS
// technique needs to compute its chunk sizes. SS requires none (its chunk
// is the constant 1). Techniques outside Table II follow the defining
// publications.
func Requirements(name string) ([]Param, error) {
	table := map[string][]Param{
		"STAT":  {ParamP, ParamN},
		"SS":    {},
		"CSS":   {ParamP, ParamN},
		"FSC":   {ParamP, ParamN, ParamH, ParamSigma},
		"GSS":   {ParamP, ParamR},
		"TSS":   {ParamP, ParamN, ParamF, ParamL},
		"FAC":   {ParamP, ParamR, ParamMu, ParamSigma},
		"FAC2":  {ParamP, ParamR},
		"BOLD":  {ParamP, ParamR, ParamH, ParamMu, ParamSigma, ParamM},
		"TAP":   {ParamP, ParamR, ParamMu, ParamSigma},
		"WF":    {ParamP, ParamR, ParamMu, ParamSigma},
		"AWF":   {ParamP, ParamR},
		"AWF-B": {ParamP, ParamR},
		"AWF-C": {ParamP, ParamR},
		"AF":    {ParamP, ParamR, ParamM},
	}
	req, ok := table[name]
	if !ok {
		return nil, fmt.Errorf("sched: unknown technique %q", name)
	}
	out := make([]Param, len(req))
	copy(out, req)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// normWeights validates and normalizes PE weights so that Σw = p. A nil
// slice yields equal weights.
func normWeights(weights []float64, p int) ([]float64, error) {
	w := make([]float64, p)
	if weights == nil {
		for i := range w {
			w[i] = 1
		}
		return w, nil
	}
	if len(weights) != p {
		return nil, fmt.Errorf("sched: got %d weights for %d PEs", len(weights), p)
	}
	var sum float64
	for i, v := range weights {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("sched: weight %d is %v, must be positive and finite", i, v)
		}
		sum += v
	}
	for i, v := range weights {
		w[i] = v * float64(p) / sum
	}
	return w, nil
}
