package sched

import "fmt"

// TSS is trapezoid self scheduling (Tzen & Ni, 1993). Chunk sizes
// decrease linearly from a first size f to a last size l:
//
//	N = ⌈2n/(f+l)⌉   (number of chunks)
//	δ = (f−l)/(N−1)  (decrement per scheduling step)
//	K_i = f − ⌊i·δ⌋
//
// The linear decay is a compromise between GSS's aggressive geometric
// decay (whose first chunks can be too large under variance) and the
// overhead of many small chunks. The defaults are the publication's
// conservative choice f = ⌈n/(2p)⌉, l = 1.
type TSS struct {
	base
	first, last int64
	delta       float64
	step        int64
}

// NewTSS returns a trapezoid-self-scheduling scheduler. Params.First and
// Params.Last select f and l; zero values select ⌈n/(2p)⌉ and 1.
func NewTSS(p Params) (*TSS, error) {
	b, err := newBase("TSS", p)
	if err != nil {
		return nil, err
	}
	f := p.First
	if f <= 0 {
		f = ceilDiv(p.N, 2*int64(p.P))
	}
	l := p.Last
	if l <= 0 {
		l = 1
	}
	if l > f {
		return nil, fmt.Errorf("sched: TSS requires last <= first, got f=%d l=%d", f, l)
	}
	steps := ceilDiv(2*p.N, f+l)
	var delta float64
	if steps > 1 {
		delta = float64(f-l) / float64(steps-1)
	}
	return &TSS{base: b, first: f, last: l, delta: delta}, nil
}

// Reset restores the scheduler to its post-construction state.
func (s *TSS) Reset() {
	s.base.Reset()
	s.step = 0
}

// Next assigns the next trapezoid chunk f − ⌊i·δ⌋, clamped at l.
func (s *TSS) Next(_ int, _ float64) int64 {
	want := s.first - int64(float64(s.step)*s.delta)
	if want < s.last {
		want = s.last
	}
	s.step++
	return s.take(want)
}
