package sched

// STAT is static chunking: ⌈n/p⌉ tasks are assigned to each PE in a
// single scheduling operation before computation starts (paper §II). It
// has negligible scheduling overhead but no ability to correct load
// imbalance: with high-variance task times its wasted time grows with the
// chunk size, which is what the Hagerup experiment exposes.
type STAT struct {
	base
	chunk int64
}

// NewSTAT returns a static-chunking scheduler for the given parameters.
func NewSTAT(p Params) (*STAT, error) {
	b, err := newBase("STAT", p)
	if err != nil {
		return nil, err
	}
	return &STAT{base: b, chunk: ceilDiv(p.N, int64(p.P))}, nil
}

// Next assigns the precomputed static chunk. The last PE may receive a
// smaller remainder chunk so that exactly n tasks are scheduled.
func (s *STAT) Next(_ int, _ float64) int64 { return s.take(s.chunk) }
