package sim

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/workload"
)

// arenaConfig builds a hot-path run configuration: exponential workload
// (the Hagerup campaign's), a resettable scheduler and a reusable RNG.
func arenaConfig(t testing.TB, technique string, n int64, p int) (Config, sched.Resetter, *rng.Rand48) {
	t.Helper()
	s, err := sched.New(technique, sched.Params{N: n, P: p, H: 0.5, Mu: 1, Sigma: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.FromState(0x2A5F3C)
	return Config{P: p, Sched: s, Work: workload.NewExponential(1), RNG: r, H: 0.5}, s.(sched.Resetter), r
}

// TestRunIntoAllocationFree pins the arena hot path at zero steady-state
// allocations per run. This is the CI allocation gate for sim.Run: any
// regression (a boxed heap element, an escaping closure, a fresh slice
// per run) fails here before it can show up as a throughput loss. The
// Exponential workload draws chunk sums via the Gamma/Erlang samplers,
// so the RNG path is exercised too.
func TestRunIntoAllocationFree(t *testing.T) {
	for _, technique := range []string{"SS", "GSS", "FAC", "FAC2", "BOLD"} {
		t.Run(technique, func(t *testing.T) {
			cfg, reset, r := arenaConfig(t, technique, 2048, 8)
			arena := new(Arena)
			run := func() {
				reset.Reset()
				r.SetState(0x2A5F3C)
				if _, err := RunInto(cfg, arena); err != nil {
					t.Fatal(err)
				}
			}
			run() // warm the arena buffers
			// The ceiling is exactly 0: the whole point of the arena path.
			if avg := testing.AllocsPerRun(50, run); avg > 0 {
				t.Fatalf("RunInto allocates %.1f times per steady-state run, want 0", avg)
			}
		})
	}
}

// TestRunIntoMatchesRun: the arena path must be bit-identical to the
// allocating path for every field of the result.
func TestRunIntoMatchesRun(t *testing.T) {
	for _, technique := range []string{"SS", "GSS", "TSS", "FAC", "FAC2", "BOLD", "AWF-C", "AF"} {
		t.Run(technique, func(t *testing.T) {
			cfg1, _, _ := arenaConfig(t, technique, 1024, 6)
			want, err := Run(cfg1)
			if err != nil {
				t.Fatal(err)
			}
			cfg2, reset, r := arenaConfig(t, technique, 1024, 6)
			arena := new(Arena)
			// Dirty the arena with a different run first, then reset the
			// scheduler and RNG and replay the reference configuration.
			if _, err := RunInto(cfg2, arena); err != nil {
				t.Fatal(err)
			}
			reset.Reset()
			r.SetState(0x2A5F3C)
			got, err := RunInto(cfg2, arena)
			if err != nil {
				t.Fatal(err)
			}
			if got.Makespan != want.Makespan || got.SchedOps != want.SchedOps ||
				got.CommTime != want.CommTime || got.MasterBusy != want.MasterBusy {
				t.Fatalf("arena result differs: got %+v, want %+v", got, want)
			}
			for w := 0; w < 6; w++ {
				if got.Compute[w] != want.Compute[w] || got.Finish[w] != want.Finish[w] ||
					got.OpsPerWorker[w] != want.OpsPerWorker[w] || got.TasksPerWorker[w] != want.TasksPerWorker[w] {
					t.Fatalf("arena per-worker state differs for worker %d", w)
				}
			}
		})
	}
}

// BenchmarkRun measures the one-shot path (fresh scheduler, fresh result
// per run) — the baseline the arena path is compared against.
func BenchmarkRun(b *testing.B) {
	for _, technique := range []string{"SS", "GSS", "FAC", "BOLD"} {
		b.Run(technique, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, err := sched.New(technique, sched.Params{N: 2048, P: 8, H: 0.5, Mu: 1, Sigma: 1})
				if err != nil {
					b.Fatal(err)
				}
				cfg := Config{P: 8, Sched: s, Work: workload.NewExponential(1), RNG: rng.FromState(0x2A5F3C), H: 0.5}
				if _, err := Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRunInto measures the arena path: scheduler Reset + RNG
// SetState + buffer reuse. allocs/op must report 0.
func BenchmarkRunInto(b *testing.B) {
	for _, technique := range []string{"SS", "GSS", "FAC", "BOLD"} {
		b.Run(technique, func(b *testing.B) {
			cfg, reset, r := arenaConfig(b, technique, 2048, 8)
			arena := new(Arena)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				reset.Reset()
				r.SetState(0x2A5F3C)
				if _, err := RunInto(cfg, arena); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
