package sim

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/workload"
)

func TestFastLoopEligibility(t *testing.T) {
	base := Config{P: 4, StartTimes: []float64{0, 1, 2, 3}, H: 0.5}
	if !fastLoopEligible(base) {
		t.Error("paper-faithful config (uneven starts, h post hoc) not eligible")
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"speeds", func(c *Config) { c.Speeds = []float64{1, 1, 1, 1} }},
		{"perturb", func(c *Config) { c.Perturb = func(int, float64) float64 { return 1 } }},
		{"observe", func(c *Config) { c.Observe = func(int, int64, int64, float64, float64) {} }},
		{"h-in-dynamics", func(c *Config) { c.HInDynamics = true }},
		{"per-message-cost", func(c *Config) { c.PerMessageCost = 0.001 }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		if fastLoopEligible(cfg) {
			t.Errorf("%s: config with optional dynamics eligible for fast loop", tc.name)
		}
	}
}

// sameResult requires bitwise equality of every field — the fast loop's
// contract is bit-identical output, not approximate agreement.
func sameResult(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.Makespan != b.Makespan || a.SchedOps != b.SchedOps ||
		a.CommTime != b.CommTime || a.MasterBusy != b.MasterBusy {
		t.Fatalf("%s: scalars diverged: %+v vs %+v", label, a, b)
	}
	for w := range a.Compute {
		if a.Compute[w] != b.Compute[w] || a.Finish[w] != b.Finish[w] ||
			a.OpsPerWorker[w] != b.OpsPerWorker[w] || a.TasksPerWorker[w] != b.TasksPerWorker[w] {
			t.Fatalf("%s: worker %d diverged", label, w)
		}
	}
}

// TestFastLoopMatchesGenericLoop drives the same simulation through the
// specialized and the generic inner loop and requires bit-identical
// results. The generic loop is forced two ways that are mathematical
// identities: unit Speeds (exec/1.0 is bit-exact) and a no-op Observe.
func TestFastLoopMatchesGenericLoop(t *testing.T) {
	const n, p = 4096, 8
	unit := make([]float64, p)
	for i := range unit {
		unit[i] = 1
	}
	starts := []float64{0, 0.5, 0, 1.25, 0, 0, 2, 0}

	for _, tech := range sched.Names() {
		for _, withStarts := range []bool{false, true} {
			for seed := uint64(1); seed <= 3; seed++ {
				run := func(mut func(*Config)) *Result {
					cfg := Config{
						P:     p,
						Sched: mustSched(t, tech, sched.Params{N: n, P: p, H: 0.5, Mu: 1, Sigma: 1}),
						Work:  workload.NewExponential(1),
						RNG:   rng.FromState(rng.RunSeed(seed, 0)),
						H:     0.5,
					}
					if withStarts {
						cfg.StartTimes = starts
					}
					if mut != nil {
						mut(&cfg)
					}
					if !fastLoopEligible(cfg) == (mut == nil) {
						t.Fatalf("%s: eligibility flipped", tech)
					}
					res, err := Run(cfg)
					if err != nil {
						t.Fatalf("Run(%s): %v", tech, err)
					}
					return res
				}
				fast := run(nil)
				viaSpeeds := run(func(c *Config) { c.Speeds = unit })
				viaObserve := run(func(c *Config) {
					c.Observe = func(int, int64, int64, float64, float64) {}
				})
				sameResult(t, tech+"/unit-speeds", fast, viaSpeeds)
				sameResult(t, tech+"/observe", fast, viaObserve)
			}
		}
	}
}
