package sim

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/workload"
)

func mustSched(t testing.TB, name string, p sched.Params) sched.Scheduler {
	t.Helper()
	s, err := sched.New(name, p)
	if err != nil {
		t.Fatalf("sched.New(%s): %v", name, err)
	}
	return s
}

// runOne builds and runs one Hagerup-style simulation.
func runOne(t testing.TB, tech string, n int64, p int, seed uint64) *Result {
	t.Helper()
	s := mustSched(t, tech, sched.Params{N: n, P: p, H: 0.5, Mu: 1, Sigma: 1})
	res, err := Run(Config{
		P:     p,
		Sched: s,
		Work:  workload.NewExponential(1),
		RNG:   rng.FromState(seed),
	})
	if err != nil {
		t.Fatalf("Run(%s): %v", tech, err)
	}
	return res
}

func TestRunValidation(t *testing.T) {
	s := mustSched(t, "SS", sched.Params{N: 10, P: 2})
	w := workload.NewConstant(1)
	if _, err := Run(Config{P: 0, Sched: s, Work: w}); err == nil {
		t.Error("P=0 accepted")
	}
	if _, err := Run(Config{P: 2, Work: w}); err == nil {
		t.Error("nil scheduler accepted")
	}
	if _, err := Run(Config{P: 2, Sched: s}); err == nil {
		t.Error("nil workload accepted")
	}
	if _, err := Run(Config{P: 2, Sched: s, Work: w, Speeds: []float64{1}}); err == nil {
		t.Error("wrong speeds length accepted")
	}
	if _, err := Run(Config{P: 2, Sched: s, Work: w, StartTimes: []float64{0}}); err == nil {
		t.Error("wrong start times length accepted")
	}
	if _, err := Run(Config{P: 2, Sched: s, Work: workload.NewExponential(1)}); err == nil {
		t.Error("random workload without RNG accepted")
	}
}

// TestConstantWorkloadExactMakespan: with constant tasks and STAT, the
// makespan is exactly chunk*taskTime and all tasks are executed.
func TestConstantWorkloadExactMakespan(t *testing.T) {
	const n, p = 100, 4
	s := mustSched(t, "STAT", sched.Params{N: n, P: p})
	res, err := Run(Config{P: p, Sched: s, Work: workload.NewConstant(2)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-50) > 1e-9 { // ⌈100/4⌉ = 25 tasks × 2 s
		t.Fatalf("makespan = %v, want 50", res.Makespan)
	}
	var total int64
	for _, k := range res.TasksPerWorker {
		total += k
	}
	if total != n {
		t.Fatalf("executed %d tasks, want %d", total, n)
	}
	if res.SchedOps != p {
		t.Fatalf("SchedOps = %d, want %d", res.SchedOps, p)
	}
}

// TestSSPerfectBalanceConstant: SS with constant tasks and p dividing n
// keeps all workers busy to the same finish time (free scheduling).
func TestSSPerfectBalanceConstant(t *testing.T) {
	s := mustSched(t, "SS", sched.Params{N: 100, P: 4})
	res, err := Run(Config{P: 4, Sched: s, Work: workload.NewConstant(1)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-25) > 1e-9 {
		t.Fatalf("makespan = %v, want 25", res.Makespan)
	}
	for w, c := range res.Compute {
		if math.Abs(c-25) > 1e-9 {
			t.Fatalf("worker %d compute = %v, want 25", w, c)
		}
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	a := runOne(t, "FAC2", 8192, 8, 42)
	b := runOne(t, "FAC2", 8192, 8, 42)
	if a.Makespan != b.Makespan || a.SchedOps != b.SchedOps {
		t.Fatalf("same seed diverged: %v/%v vs %v/%v", a.Makespan, a.SchedOps, b.Makespan, b.SchedOps)
	}
	for w := range a.Compute {
		if a.Compute[w] != b.Compute[w] {
			t.Fatalf("worker %d compute diverged", w)
		}
	}
	c := runOne(t, "FAC2", 8192, 8, 43)
	if a.Makespan == c.Makespan {
		t.Fatal("different seeds produced identical makespans")
	}
}

// TestAllTechniquesCompleteAllTasks runs every technique through the
// simulator on the Hagerup workload and checks conservation of tasks and
// basic sanity of the timing outputs.
func TestAllTechniquesCompleteAllTasks(t *testing.T) {
	const n, p = 1024, 8
	for _, tech := range sched.Names() {
		res := runOne(t, tech, n, p, 7)
		var total int64
		for _, k := range res.TasksPerWorker {
			total += k
		}
		if total != n {
			t.Errorf("%s executed %d tasks, want %d", tech, total, n)
		}
		if res.Makespan <= 0 {
			t.Errorf("%s makespan = %v", tech, res.Makespan)
		}
		var ops int64
		for _, o := range res.OpsPerWorker {
			ops += o
		}
		if ops != res.SchedOps {
			t.Errorf("%s per-worker ops %d != total %d", tech, ops, res.SchedOps)
		}
		for w, c := range res.Compute {
			if c < 0 || c > res.Makespan+1e-9 {
				t.Errorf("%s worker %d compute %v outside [0, makespan=%v]", tech, w, c, res.Makespan)
			}
			if res.Finish[w] > res.Makespan+1e-9 {
				t.Errorf("%s worker %d finish %v > makespan %v", tech, w, res.Finish[w], res.Makespan)
			}
		}
	}
}

// TestMakespanLowerBound: the makespan can never be smaller than the
// total work divided by p (with unit speeds).
func TestMakespanLowerBound(t *testing.T) {
	for _, tech := range []string{"STAT", "SS", "GSS", "TSS", "FAC", "FAC2", "BOLD", "FSC"} {
		res := runOne(t, tech, 2048, 16, 11)
		var work float64
		for _, c := range res.Compute {
			work += c
		}
		if res.Makespan < work/16-1e-9 {
			t.Errorf("%s: makespan %v < work/p %v", tech, res.Makespan, work/16)
		}
	}
}

// TestHeterogeneousSpeeds: a twice-as-fast worker should execute roughly
// twice the tasks under SS (perfect dynamic balancing).
func TestHeterogeneousSpeeds(t *testing.T) {
	s := mustSched(t, "SS", sched.Params{N: 30000, P: 2})
	res, err := Run(Config{
		P:      2,
		Sched:  s,
		Work:   workload.NewConstant(0.001),
		Speeds: []float64{2, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(res.TasksPerWorker[0]) / float64(res.TasksPerWorker[1])
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("task ratio = %v, want ≈2", ratio)
	}
}

// TestUnevenStartTimes: GSS was designed for uneven starts; a late worker
// must still participate and the makespan must not precede its start.
func TestUnevenStartTimes(t *testing.T) {
	s := mustSched(t, "GSS", sched.Params{N: 10000, P: 4})
	res, err := Run(Config{
		P:          4,
		Sched:      s,
		Work:       workload.NewConstant(0.01),
		StartTimes: []float64{0, 0, 0, 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksPerWorker[3] == 0 {
		t.Fatal("late worker got no tasks")
	}
	if res.Makespan < 20 {
		t.Fatalf("makespan %v before last start", res.Makespan)
	}
	// Early workers should carry more load than the late one.
	if res.TasksPerWorker[3] >= res.TasksPerWorker[0] {
		t.Fatalf("late worker %d tasks >= early worker %d", res.TasksPerWorker[3], res.TasksPerWorker[0])
	}
}

// TestHInDynamicsSerializesMaster: with h charged in the dynamics, SS on
// p workers cannot finish faster than n·h (the master is a bottleneck).
func TestHInDynamicsSerializesMaster(t *testing.T) {
	const n = 1000
	s := mustSched(t, "SS", sched.Params{N: n, P: 8})
	res, err := Run(Config{
		P:           8,
		Sched:       s,
		Work:        workload.NewConstant(0.001),
		H:           0.01,
		HInDynamics: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan < n*0.01 {
		t.Fatalf("makespan %v < master floor %v", res.Makespan, n*0.01)
	}
	// The master services n chunk requests plus 8 finalization requests.
	if want := (n + 8) * 0.01; math.Abs(res.MasterBusy-want) > 1e-9 {
		t.Fatalf("MasterBusy = %v, want %v", res.MasterBusy, want)
	}
}

// TestPerMessageCost: network cost per operation is added on the worker
// path and accumulated.
func TestPerMessageCost(t *testing.T) {
	s := mustSched(t, "SS", sched.Params{N: 100, P: 1})
	res, err := Run(Config{
		P:              1,
		Sched:          s,
		Work:           workload.NewConstant(0.01),
		PerMessageCost: 0.005,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 100*0.01 + 100*0.005
	if math.Abs(res.Makespan-want) > 1e-9 {
		t.Fatalf("makespan = %v, want %v", res.Makespan, want)
	}
	if math.Abs(res.CommTime-0.5) > 1e-9 {
		t.Fatalf("CommTime = %v, want 0.5", res.CommTime)
	}
}

// TestPerturbationSlowdown: halving a worker's speed through the Perturb
// hook must increase the makespan of a static schedule.
func TestPerturbationSlowdown(t *testing.T) {
	base := func(perturb func(int, float64) float64) float64 {
		s := mustSched(t, "STAT", sched.Params{N: 1000, P: 4})
		res, err := Run(Config{
			P:       4,
			Sched:   s,
			Work:    workload.NewConstant(0.01),
			Perturb: perturb,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	normal := base(nil)
	slowed := base(func(w int, _ float64) float64 {
		if w == 0 {
			return 0.5
		}
		return 1
	})
	if slowed <= normal {
		t.Fatalf("perturbed makespan %v <= unperturbed %v", slowed, normal)
	}
}

func TestPerturbationRejectsZeroSpeed(t *testing.T) {
	s := mustSched(t, "STAT", sched.Params{N: 10, P: 2})
	_, err := Run(Config{
		P:       2,
		Sched:   s,
		Work:    workload.NewConstant(1),
		Perturb: func(int, float64) float64 { return 0 },
	})
	if err == nil {
		t.Fatal("zero perturbed speed accepted")
	}
}

// TestHagerupShapeSmall is a statistical smoke test of the headline
// result shape on a small grid: averaged over runs, SS's wasted time is
// dominated by h·n/p, and BOLD beats STAT under high variance.
func TestHagerupShapeSmall(t *testing.T) {
	const n, p, runs = 1024, 8, 40
	avgWasted := func(tech string) float64 {
		var sum float64
		for r := 0; r < runs; r++ {
			res := runOne(t, tech, n, p, rng.RunSeed(99, r))
			sum += metrics.AverageWasted(res.Makespan, res.Compute, res.SchedOps, 0.5)
		}
		return sum / runs
	}
	ss := avgWasted("SS")
	stat := avgWasted("STAT")
	bold := avgWasted("BOLD")
	fac2 := avgWasted("FAC2")

	if ssFloor := 0.5 * float64(n) / float64(p); ss < ssFloor {
		t.Errorf("SS wasted %v below overhead floor %v", ss, ssFloor)
	}
	if bold >= stat {
		t.Errorf("BOLD wasted %v >= STAT %v; variance-aware technique should win", bold, stat)
	}
	if bold >= ss {
		t.Errorf("BOLD wasted %v >= SS %v", bold, ss)
	}
	if fac2 >= ss {
		t.Errorf("FAC2 wasted %v >= SS %v", fac2, ss)
	}
}

func BenchmarkRunFAC2Hagerup8192x64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, _ := sched.New("FAC2", sched.Params{N: 8192, P: 64, H: 0.5, Mu: 1, Sigma: 1})
		_, err := Run(Config{P: 64, Sched: s, Work: workload.NewExponential(1), RNG: rng.FromState(rng.RunSeed(1, i))})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunSSHagerup8192x64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, _ := sched.New("SS", sched.Params{N: 8192, P: 64, H: 0.5, Mu: 1, Sigma: 1})
		_, err := Run(Config{P: 64, Sched: s, Work: workload.NewExponential(1), RNG: rng.FromState(rng.RunSeed(1, i))})
		if err != nil {
			b.Fatal(err)
		}
	}
}
