// Package sim implements the chunk-granularity master–worker simulator
// that replicates the simulator of the BOLD publication's authors, as the
// paper itself did (§III-B):
//
//	"Therefore, the implemented simulator of the authors of [14] was
//	 replicated. Their simulator did not measure the network traffic
//	 needed for every scheduling operation. It was assumed that every
//	 scheduling operation takes a fixed amount of time (parameter h)."
//
// The simulator advances a virtual clock over scheduling events only:
// a worker becomes available, the master hands it a chunk, the worker is
// busy for the chunk's execution time, repeat. Communication is free by
// default (the paper models this in SimGrid by setting bandwidth very
// high and latency very low) and the scheduling overhead h is accounted
// per operation in the wasted-time metric (package metrics). Two
// ablation switches depart from the paper's setup on request:
//
//   - HInDynamics charges h inside the master loop, serializing
//     concurrent requests the way a real master would (DESIGN.md A1).
//   - PerMessageCost adds a fixed network round-trip per scheduling
//     operation (DESIGN.md A3), which is how the TSS-publication
//     experiments are driven without the full MSG stack.
//
// The heavyweight alternative — the process-oriented SimGrid-MSG model
// with explicit messages — lives in internal/msg and is cross-validated
// against this package by integration tests.
package sim

import (
	"container/heap"
	"fmt"

	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Config describes one simulated loop execution.
type Config struct {
	P     int               // number of worker PEs
	Sched sched.Scheduler   // chunk calculator (owned by the master)
	Work  workload.Workload // per-task execution times
	RNG   *rng.Rand48       // randomness source; may be nil for deterministic workloads

	Speeds     []float64 // relative PE speeds; nil means all 1.0
	StartTimes []float64 // per-PE start times (uneven starts); nil means all 0

	// H is the scheduling overhead per operation. It is consumed by the
	// dynamics only when HInDynamics is set; in the paper's faithful mode
	// the caller adds h per operation post hoc via metrics.AverageWasted.
	H float64
	// HInDynamics charges h inside the master's service loop, serializing
	// concurrent requests. Every request is serviced, including the final
	// "no work left" request each worker makes, so the master is busy for
	// (ops + p)·h in total.
	HInDynamics bool

	PerMessageCost float64 // fixed request+reply network cost per scheduling operation

	// Perturb, when non-nil, returns a speed multiplier for worker w
	// starting a chunk at time now. It models systemic variability
	// (earlier-work context; see internal/perturb).
	Perturb func(w int, now float64) float64

	// Observe, when non-nil, is called once per scheduling operation with
	// the worker, the assigned task range [start, start+count), the
	// assignment time and the completion time. internal/trace.Recorder
	// has exactly this shape.
	Observe func(worker int, start, count int64, assigned, done float64)
}

// Result reports one simulated execution.
type Result struct {
	Makespan float64   // completion time of the last task
	Compute  []float64 // per-worker total computation time
	Finish   []float64 // per-worker completion time of its last chunk

	SchedOps       int64   // total scheduling operations (chunks)
	OpsPerWorker   []int64 // scheduling operations per worker
	TasksPerWorker []int64 // tasks executed per worker

	CommTime   float64 // total time spent in per-message network costs
	MasterBusy float64 // total master service time (HInDynamics mode)
}

// workerEvent is a pending "worker w requests work at time t" event.
type workerEvent struct {
	t float64
	w int
}

// eventQueue is a binary min-heap of worker events ordered by
// (time, worker id) — the worker id tie-break keeps runs deterministic
// when several workers request simultaneously (e.g. at start).
type eventQueue []workerEvent

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].w < q[j].w
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(workerEvent)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	*q = old[:n-1]
	return ev
}

// Run executes the master–worker loop to completion and returns the
// timing results.
func Run(cfg Config) (*Result, error) {
	if cfg.P <= 0 {
		return nil, fmt.Errorf("sim: P must be positive, got %d", cfg.P)
	}
	if cfg.Sched == nil {
		return nil, fmt.Errorf("sim: Config.Sched is nil")
	}
	if cfg.Work == nil {
		return nil, fmt.Errorf("sim: Config.Work is nil")
	}
	if cfg.Speeds != nil && len(cfg.Speeds) != cfg.P {
		return nil, fmt.Errorf("sim: got %d speeds for %d workers", len(cfg.Speeds), cfg.P)
	}
	if cfg.StartTimes != nil && len(cfg.StartTimes) != cfg.P {
		return nil, fmt.Errorf("sim: got %d start times for %d workers", len(cfg.StartTimes), cfg.P)
	}
	if !cfg.Work.Deterministic() && cfg.RNG == nil {
		return nil, fmt.Errorf("sim: random workload %q requires Config.RNG", cfg.Work.Name())
	}

	res := &Result{
		Compute:        make([]float64, cfg.P),
		Finish:         make([]float64, cfg.P),
		OpsPerWorker:   make([]int64, cfg.P),
		TasksPerWorker: make([]int64, cfg.P),
	}

	q := make(eventQueue, 0, cfg.P)
	for w := 0; w < cfg.P; w++ {
		start := 0.0
		if cfg.StartTimes != nil {
			start = cfg.StartTimes[w]
		}
		q = append(q, workerEvent{t: start, w: w})
	}
	heap.Init(&q)

	speed := func(w int) float64 {
		if cfg.Speeds == nil {
			return 1
		}
		return cfg.Speeds[w]
	}

	var nextTask int64 // global index of the next unassigned task
	var masterFree float64

	for q.Len() > 0 {
		ev := heap.Pop(&q).(workerEvent)
		t := ev.t

		serviceEnd := t
		if cfg.HInDynamics {
			start := t
			if masterFree > start {
				start = masterFree
			}
			serviceEnd = start + cfg.H
			masterFree = serviceEnd
			res.MasterBusy += cfg.H
		}

		chunk := cfg.Sched.Next(ev.w, t)
		if chunk == 0 {
			// Finalization: the worker leaves the computation.
			if t > res.Finish[ev.w] {
				res.Finish[ev.w] = t
			}
			continue
		}

		chunkStart := nextTask
		exec := cfg.Work.ChunkTime(nextTask, chunk, cfg.RNG)
		nextTask += chunk
		s := speed(ev.w)
		if cfg.Perturb != nil {
			s *= cfg.Perturb(ev.w, serviceEnd)
		}
		if s <= 0 {
			return nil, fmt.Errorf("sim: non-positive speed %v for worker %d", s, ev.w)
		}
		exec /= s

		done := serviceEnd + cfg.PerMessageCost + exec
		res.CommTime += cfg.PerMessageCost
		res.Compute[ev.w] += exec
		res.Finish[ev.w] = done
		res.OpsPerWorker[ev.w]++
		res.TasksPerWorker[ev.w] += chunk
		res.SchedOps++
		cfg.Sched.Report(ev.w, chunk, exec, done)
		if cfg.Observe != nil {
			cfg.Observe(ev.w, chunkStart, chunk, serviceEnd, done)
		}
		if done > res.Makespan {
			res.Makespan = done
		}
		heap.Push(&q, workerEvent{t: done, w: ev.w})
	}

	return res, nil
}
