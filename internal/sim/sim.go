// Package sim implements the chunk-granularity master–worker simulator
// that replicates the simulator of the BOLD publication's authors, as the
// paper itself did (§III-B):
//
//	"Therefore, the implemented simulator of the authors of [14] was
//	 replicated. Their simulator did not measure the network traffic
//	 needed for every scheduling operation. It was assumed that every
//	 scheduling operation takes a fixed amount of time (parameter h)."
//
// The simulator advances a virtual clock over scheduling events only:
// a worker becomes available, the master hands it a chunk, the worker is
// busy for the chunk's execution time, repeat. Communication is free by
// default (the paper models this in SimGrid by setting bandwidth very
// high and latency very low) and the scheduling overhead h is accounted
// per operation in the wasted-time metric (package metrics). Two
// ablation switches depart from the paper's setup on request:
//
//   - HInDynamics charges h inside the master loop, serializing
//     concurrent requests the way a real master would (DESIGN.md A1).
//   - PerMessageCost adds a fixed network round-trip per scheduling
//     operation (DESIGN.md A3), which is how the TSS-publication
//     experiments are driven without the full MSG stack.
//
// The heavyweight alternative — the process-oriented SimGrid-MSG model
// with explicit messages — lives in internal/msg and is cross-validated
// against this package by integration tests.
package sim

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Config describes one simulated loop execution.
type Config struct {
	P     int               // number of worker PEs
	Sched sched.Scheduler   // chunk calculator (owned by the master)
	Work  workload.Workload // per-task execution times
	RNG   *rng.Rand48       // randomness source; may be nil for deterministic workloads

	Speeds     []float64 // relative PE speeds; nil means all 1.0
	StartTimes []float64 // per-PE start times (uneven starts); nil means all 0

	// H is the scheduling overhead per operation. It is consumed by the
	// dynamics only when HInDynamics is set; in the paper's faithful mode
	// the caller adds h per operation post hoc via metrics.AverageWasted.
	H float64
	// HInDynamics charges h inside the master's service loop, serializing
	// concurrent requests. Every request is serviced, including the final
	// "no work left" request each worker makes, so the master is busy for
	// (ops + p)·h in total.
	HInDynamics bool

	PerMessageCost float64 // fixed request+reply network cost per scheduling operation

	// Perturb, when non-nil, returns a speed multiplier for worker w
	// starting a chunk at time now. It models systemic variability
	// (earlier-work context; see internal/perturb).
	Perturb func(w int, now float64) float64

	// Observe, when non-nil, is called once per scheduling operation with
	// the worker, the assigned task range [start, start+count), the
	// assignment time and the completion time. internal/trace.Recorder
	// has exactly this shape.
	Observe func(worker int, start, count int64, assigned, done float64)
}

// Result reports one simulated execution.
type Result struct {
	Makespan float64   // completion time of the last task
	Compute  []float64 // per-worker total computation time
	Finish   []float64 // per-worker completion time of its last chunk

	SchedOps       int64   // total scheduling operations (chunks)
	OpsPerWorker   []int64 // scheduling operations per worker
	TasksPerWorker []int64 // tasks executed per worker

	CommTime   float64 // total time spent in per-message network costs
	MasterBusy float64 // total master service time (HInDynamics mode)
}

// workerEvent is a pending "worker w requests work at time t" event.
type workerEvent struct {
	t float64
	w int
}

// eventQueue is a binary min-heap of worker events ordered by
// (time, worker id) — the worker id tie-break keeps runs deterministic
// when several workers request simultaneously (e.g. at start).
//
// The heap is hand-rolled rather than built on container/heap: the
// standard library interface passes elements as `any`, which boxes one
// workerEvent per Push — one heap allocation per scheduling operation,
// millions per campaign for fine-grained techniques like SS. The inline
// sift operations below allocate nothing. Every event in the queue
// belongs to a distinct worker, so the (time, worker) key is strictly
// totally ordered and any correct heap pops the exact same sequence —
// the replacement cannot change simulation output.
type eventQueue []workerEvent

func (q eventQueue) less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].w < q[j].w
}

// push adds ev and restores the heap property by sifting up.
func (q *eventQueue) push(ev workerEvent) {
	*q = append(*q, ev)
	h := *q
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// pop removes and returns the minimum event, sifting down to restore the
// heap property. It must not be called on an empty queue.
func (q *eventQueue) pop() workerEvent {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	*q = h
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		least := l
		if r := l + 1; r < n && h.less(r, l) {
			least = r
		}
		if !h.less(least, i) {
			break
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
	return top
}

// Arena holds the reusable buffers of a simulation run: the result
// slices and the event queue's backing array. One arena serves many
// sequential runs from a single goroutine — RunInto recycles its memory,
// so steady-state runs allocate nothing. The zero value is ready to use.
type Arena struct {
	res   Result
	queue eventQueue
}

// prepare sizes the arena for p workers and returns the zeroed result.
func (a *Arena) prepare(p int) *Result {
	if cap(a.res.Compute) < p {
		a.res.Compute = make([]float64, p)
		a.res.Finish = make([]float64, p)
		a.res.OpsPerWorker = make([]int64, p)
		a.res.TasksPerWorker = make([]int64, p)
		a.queue = make(eventQueue, 0, p+1)
	}
	a.res.Compute = a.res.Compute[:p]
	a.res.Finish = a.res.Finish[:p]
	a.res.OpsPerWorker = a.res.OpsPerWorker[:p]
	a.res.TasksPerWorker = a.res.TasksPerWorker[:p]
	for i := 0; i < p; i++ {
		a.res.Compute[i] = 0
		a.res.Finish[i] = 0
		a.res.OpsPerWorker[i] = 0
		a.res.TasksPerWorker[i] = 0
	}
	a.res.Makespan = 0
	a.res.SchedOps = 0
	a.res.CommTime = 0
	a.res.MasterBusy = 0
	a.queue = a.queue[:0]
	return &a.res
}

// Run executes the master–worker loop to completion and returns the
// timing results. Each call allocates a fresh Result; callers executing
// many runs should reuse an Arena via RunInto instead.
func Run(cfg Config) (*Result, error) {
	res, err := RunInto(cfg, new(Arena))
	if err != nil {
		return nil, err
	}
	// Detach the result from the throwaway arena so it has ordinary
	// value semantics for the caller.
	out := *res
	return &out, nil
}

// RunInto executes the master–worker loop to completion using the
// arena's buffers. The returned Result (and its slices) aliases the
// arena and is valid only until the arena's next RunInto call; callers
// that retain results across runs must copy them. Reusing one arena
// across runs makes the steady-state hot path allocation-free.
func RunInto(cfg Config, a *Arena) (*Result, error) {
	if cfg.P <= 0 {
		return nil, fmt.Errorf("sim: P must be positive, got %d", cfg.P)
	}
	if cfg.Sched == nil {
		return nil, fmt.Errorf("sim: Config.Sched is nil")
	}
	if cfg.Work == nil {
		return nil, fmt.Errorf("sim: Config.Work is nil")
	}
	if cfg.Speeds != nil && len(cfg.Speeds) != cfg.P {
		return nil, fmt.Errorf("sim: got %d speeds for %d workers", len(cfg.Speeds), cfg.P)
	}
	if cfg.StartTimes != nil && len(cfg.StartTimes) != cfg.P {
		return nil, fmt.Errorf("sim: got %d start times for %d workers", len(cfg.StartTimes), cfg.P)
	}
	if !cfg.Work.Deterministic() && cfg.RNG == nil {
		return nil, fmt.Errorf("sim: random workload %q requires Config.RNG", cfg.Work.Name())
	}

	res := a.prepare(cfg.P)
	q := &a.queue
	for w := 0; w < cfg.P; w++ {
		start := 0.0
		if cfg.StartTimes != nil {
			start = cfg.StartTimes[w]
		}
		q.push(workerEvent{t: start, w: w})
	}

	if fastLoopEligible(cfg) {
		runLoopFast(cfg, res, q)
		return res, nil
	}
	if err := runLoopGeneric(cfg, res, q); err != nil {
		return nil, err
	}
	return res, nil
}

// fastLoopEligible reports whether the configuration exercises none of
// the optional dynamics, so the specialized inner loop applies. Uneven
// StartTimes are fine: they only shape the initial events, not the loop.
func fastLoopEligible(cfg Config) bool {
	return cfg.Speeds == nil && cfg.Perturb == nil && cfg.Observe == nil &&
		!cfg.HInDynamics && cfg.PerMessageCost == 0
}

// runLoopFast is the inner loop specialized for the paper-faithful
// configuration (no per-PE speeds, no perturbation, no observer, h
// outside the dynamics, free communication). With every optional feature
// known absent, the per-operation work collapses to: pop, ask the
// scheduler, charge the chunk, push — no speed division (division by the
// implicit 1.0 is a bit-exact identity, so skipping it cannot change
// output), no master serialization, no comm-cost accounting and none of
// the five per-op branches the generic loop re-tests millions of times
// per campaign. The golden tests prove it bit-identical to the generic
// loop on the shared configuration subspace.
func runLoopFast(cfg Config, res *Result, q *eventQueue) {
	var nextTask int64 // global index of the next unassigned task

	for len(*q) > 0 {
		ev := q.pop()
		t := ev.t

		chunk := cfg.Sched.Next(ev.w, t)
		if chunk == 0 {
			// Finalization: the worker leaves the computation.
			if t > res.Finish[ev.w] {
				res.Finish[ev.w] = t
			}
			continue
		}

		exec := cfg.Work.ChunkTime(nextTask, chunk, cfg.RNG)
		nextTask += chunk

		done := t + exec
		res.Compute[ev.w] += exec
		res.Finish[ev.w] = done
		res.OpsPerWorker[ev.w]++
		res.TasksPerWorker[ev.w] += chunk
		res.SchedOps++
		cfg.Sched.Report(ev.w, chunk, exec, done)
		if done > res.Makespan {
			res.Makespan = done
		}
		q.push(workerEvent{t: done, w: ev.w})
	}
}

// runLoopGeneric is the fully featured inner loop, handling every
// optional dynamic. The only error it can produce is a non-positive
// effective speed (a Perturb contract violation); the arena's result is
// partially filled in that case and must be discarded.
func runLoopGeneric(cfg Config, res *Result, q *eventQueue) error {
	var nextTask int64 // global index of the next unassigned task
	var masterFree float64

	for len(*q) > 0 {
		ev := q.pop()
		t := ev.t

		serviceEnd := t
		if cfg.HInDynamics {
			start := t
			if masterFree > start {
				start = masterFree
			}
			serviceEnd = start + cfg.H
			masterFree = serviceEnd
			res.MasterBusy += cfg.H
		}

		chunk := cfg.Sched.Next(ev.w, t)
		if chunk == 0 {
			// Finalization: the worker leaves the computation.
			if t > res.Finish[ev.w] {
				res.Finish[ev.w] = t
			}
			continue
		}

		chunkStart := nextTask
		exec := cfg.Work.ChunkTime(nextTask, chunk, cfg.RNG)
		nextTask += chunk
		s := 1.0
		if cfg.Speeds != nil {
			s = cfg.Speeds[ev.w]
		}
		if cfg.Perturb != nil {
			s *= cfg.Perturb(ev.w, serviceEnd)
		}
		if s <= 0 {
			return fmt.Errorf("sim: non-positive speed %v for worker %d", s, ev.w)
		}
		exec /= s

		done := serviceEnd + cfg.PerMessageCost + exec
		res.CommTime += cfg.PerMessageCost
		res.Compute[ev.w] += exec
		res.Finish[ev.w] = done
		res.OpsPerWorker[ev.w]++
		res.TasksPerWorker[ev.w] += chunk
		res.SchedOps++
		cfg.Sched.Report(ev.w, chunk, exec, done)
		if cfg.Observe != nil {
			cfg.Observe(ev.w, chunkStart, chunk, serviceEnd, done)
		}
		if done > res.Makespan {
			res.Makespan = done
		}
		q.push(workerEvent{t: done, w: ev.w})
	}

	return nil
}
