// Package testutil holds the shared instrumentation behind the
// engine/jobs/service cancellation and singleflight tests: a gated
// counting backend whose runs block until released (or until their
// context is cancelled), and a goroutine-leak check.
package testutil

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
)

// GateBackend is an engine backend whose runs block on a gate: every
// Run announces itself via Started, then waits until Release is called
// or its context is cancelled. Completed runs delegate to the fast sim
// backend, so released campaigns produce real, deterministic results.
//
// Register it once per process under a unique name:
//
//	var gate = testutil.NewGateBackend("mytest-gate")
//	func init() { engine.Register(gate) }
type GateBackend struct {
	name    string
	Started atomic.Int64 // runs that entered the gate
	Runs    atomic.Int64 // runs that completed after release

	mu       sync.Mutex
	release  chan struct{}
	released bool
}

// NewGateBackend returns an unreleased gate backend with the given
// registry name. The caller must engine.Register it.
func NewGateBackend(name string) *GateBackend {
	return &GateBackend{name: name, release: make(chan struct{})}
}

// Name implements engine.Backend.
func (b *GateBackend) Name() string { return b.name }

// Run implements engine.Backend: block until released or cancelled.
func (b *GateBackend) Run(ctx context.Context, spec engine.RunSpec) (*engine.RunResult, error) {
	b.Started.Add(1)
	b.mu.Lock()
	ch := b.release
	b.mu.Unlock()
	select {
	case <-ch:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	be, err := engine.New("sim")
	if err != nil {
		return nil, err
	}
	res, err := be.Run(ctx, spec)
	if err == nil {
		b.Runs.Add(1)
	}
	return res, err
}

// Release opens the gate for all current and future runs. Idempotent.
func (b *GateBackend) Release() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.released {
		b.released = true
		close(b.release)
	}
}

// Reset re-arms the gate for the next test section. It must not race
// with in-flight runs.
func (b *GateBackend) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.release = make(chan struct{})
	b.released = false
}

// CheckGoroutines captures the current goroutine count and returns a
// function that fails the test if the count has not settled back to the
// baseline (within slack 2, polling up to 2 s — background runtime
// goroutines come and go). Use as:
//
//	defer testutil.CheckGoroutines(t)()
func CheckGoroutines(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		var now int
		for {
			now = runtime.NumGoroutine()
			if now <= before+2 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d before, %d after", before, now)
	}
}
