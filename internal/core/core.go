// Package core implements the paper's primary contribution: the
// verification-via-reproducibility methodology. "Reproducibility is a
// form of verification" (§I): an implementation is verified by
// re-running experiments from earlier literature and comparing the
// measured values against the published ones.
//
// The methodology, as the paper applies it:
//
//  1. Extract the experiment description from the earlier publication
//     (paper Figure 2's information model — captured here by the specs
//     in internal/experiment).
//  2. Run the experiment on the implementation under verification.
//  3. Compute the discrepancy and relative discrepancy of every measured
//     value against the published value (Figures 5c–8d).
//  4. Judge each artifact: reproduced when the relative discrepancies
//     stay within a stated bound (documented outliers excluded),
//     diverged otherwise. Both outcomes are results — the paper reports
//     the TSS experiments as *unsuccessful* and the BOLD experiments as
//     successful.
//
// Package core exposes this pipeline programmatically; cmd/repro renders
// the same information as the paper's figure panels.
package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/experiment"
	"repro/internal/metrics"
	"repro/internal/refdata"
)

// Verdict is the outcome of one reproducibility check.
type Verdict int

// Verdict values.
const (
	Reproduced Verdict = iota // within tolerance
	Diverged                  // outside tolerance
	Excluded                  // documented outlier, not judged
)

// String renders the verdict as the paper would phrase it.
func (v Verdict) String() string {
	switch v {
	case Reproduced:
		return "reproduced"
	case Diverged:
		return "diverged"
	case Excluded:
		return "excluded (documented outlier)"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Check is one compared value.
type Check struct {
	Name        string // e.g. "FAC2 n=8192 p=64" or "TSS p=80"
	Simulated   float64
	Reference   float64
	Discrepancy float64 // simulated − reference
	Relative    float64 // percent of reference
	Verdict     Verdict
}

// Report aggregates the checks of one artifact (one figure).
type Report struct {
	Artifact     string  // e.g. "Figure 5 (1024 tasks)"
	TolerancePct float64 // the bound applied
	Checks       []Check
	MaxRelative  float64 // max |relative| over judged checks
	Verdict      Verdict // Reproduced iff every judged check is
}

// judge finalizes a report's aggregate fields.
func (r *Report) judge() {
	r.Verdict = Reproduced
	for _, c := range r.Checks {
		if c.Verdict == Excluded {
			continue
		}
		if abs := math.Abs(c.Relative); abs > r.MaxRelative {
			r.MaxRelative = abs
		}
		if c.Verdict == Diverged {
			r.Verdict = Diverged
		}
	}
}

// Summary returns a one-line verdict for logs.
func (r *Report) Summary() string {
	return fmt.Sprintf("%s: %s (max |rel| %.2f%%, tolerance %.0f%%, %d checks)",
		r.Artifact, r.Verdict, r.MaxRelative, r.TolerancePct, len(r.Checks))
}

// HagerupTolerancePct is the acceptance bound the paper applies to its
// Hagerup reproductions: §IV-B1 calls ≤15 % "an acceptable
// reproducibility result".
const HagerupTolerancePct = 15

// ExcludeFACOutlier marks the paper's documented outlier (§IV-B4): FAC
// with 2 PEs, whose heavy-tailed per-run distribution makes two finite
// samples disagree arbitrarily.
func ExcludeFACOutlier(tech string, p int) bool {
	return tech == "FAC" && p == 2
}

// VerifyHagerup runs one task-count slice of the Hagerup grid and judges
// it against the pinned reference dataset. runs and seed parameterize
// the fresh simulation (the reference was generated under refdata.Seed).
// Cancelling ctx aborts the verification mid-grid.
func VerifyHagerup(ctx context.Context, n int64, runs int, seed uint64) (*Report, error) {
	if seed == refdata.Seed {
		return nil, fmt.Errorf("core: seed %#x equals the reference seed; verification requires an independent sample", seed)
	}
	spec := experiment.HagerupGrid(seed)
	spec.Ns = []int64{n}
	spec.Runs = runs
	res, err := experiment.RunHagerup(ctx, spec)
	if err != nil {
		return nil, err
	}
	figure := map[int64]string{
		1024: "Figure 5 (1024 tasks)", 8192: "Figure 6 (8192 tasks)",
		65536: "Figure 7 (65536 tasks)", 524288: "Figure 8 (524288 tasks)",
	}[n]
	if figure == "" {
		figure = fmt.Sprintf("Hagerup grid (%d tasks)", n)
	}
	report := &Report{Artifact: figure, TolerancePct: HagerupTolerancePct}
	for _, tech := range spec.Techniques {
		for _, p := range spec.Ps {
			cell, err := res.Cell(tech, n, p)
			if err != nil {
				return nil, err
			}
			ref, ok := refdata.Wasted(tech, n, p)
			if !ok {
				return nil, fmt.Errorf("core: no reference value for %s n=%d p=%d", tech, n, p)
			}
			c := Check{
				Name:        fmt.Sprintf("%s p=%d", tech, p),
				Simulated:   cell.Wasted.Mean,
				Reference:   ref,
				Discrepancy: metrics.Discrepancy(cell.Wasted.Mean, ref),
				Relative:    metrics.RelativeDiscrepancy(cell.Wasted.Mean, ref),
			}
			switch {
			case ExcludeFACOutlier(tech, p):
				c.Verdict = Excluded
			case math.Abs(c.Relative) <= HagerupTolerancePct:
				c.Verdict = Reproduced
			default:
				c.Verdict = Diverged
			}
			report.Checks = append(report.Checks, c)
		}
	}
	report.judge()
	return report, nil
}

// TzenTolerancePct is the matching bound for the TSS speedup curves:
// within 25 % of the digitized published curve counts as "very similar
// performance" (§IV-A's language for CSS and TSS).
const TzenTolerancePct = 25

// VerifyTzen runs TSS-publication experiment 1 or 2 and judges each
// curve at the largest PE count against the digitized reference. The
// paper's own result — SS (and GSS in the original) diverging — is an
// expected Diverged verdict, not an error.
func VerifyTzen(ctx context.Context, exp int) (*Report, error) {
	var spec experiment.TzenSpec
	switch exp {
	case 1:
		spec = experiment.TzenExperiment1()
	case 2:
		spec = experiment.TzenExperiment2()
	default:
		return nil, fmt.Errorf("core: Tzen experiment must be 1 or 2, got %d", exp)
	}
	res, err := experiment.RunTzen(ctx, spec)
	if err != nil {
		return nil, err
	}
	report := &Report{
		Artifact:     fmt.Sprintf("Figure %d (TSS %s)", exp+2, spec.Name),
		TolerancePct: TzenTolerancePct,
	}
	last := len(spec.Ps) - 1
	labels := refdata.TzenLabels(exp)
	sort.Strings(labels)
	for _, label := range labels {
		refCurve, ok := refdata.TzenSpeedup(exp, label)
		if !ok {
			return nil, fmt.Errorf("core: no reference curve %d/%s", exp, label)
		}
		pts, ok := res.Curves[label]
		if !ok {
			return nil, fmt.Errorf("core: experiment produced no curve %q", label)
		}
		simV := pts[last].Speedup
		refV := refCurve[len(refCurve)-1]
		c := Check{
			Name:        fmt.Sprintf("%s p=%d", label, spec.Ps[last]),
			Simulated:   simV,
			Reference:   refV,
			Discrepancy: metrics.Discrepancy(simV, refV),
			Relative:    metrics.RelativeDiscrepancy(simV, refV),
		}
		if math.Abs(c.Relative) <= TzenTolerancePct {
			c.Verdict = Reproduced
		} else {
			c.Verdict = Diverged
		}
		report.Checks = append(report.Checks, c)
	}
	report.judge()
	return report, nil
}
