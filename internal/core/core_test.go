package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/refdata"
)

func TestVerdictString(t *testing.T) {
	if Reproduced.String() != "reproduced" || Diverged.String() != "diverged" {
		t.Fatal("verdict strings changed")
	}
	if !strings.Contains(Excluded.String(), "outlier") {
		t.Fatalf("Excluded = %q", Excluded)
	}
	if !strings.Contains(Verdict(9).String(), "9") {
		t.Fatal("unknown verdict unprintable")
	}
}

// TestVerifyHagerupReproduces runs the methodology end to end on the
// 1024-task slice and expects the paper's successful verdict.
func TestVerifyHagerupReproduces(t *testing.T) {
	report, err := VerifyHagerup(context.Background(), 1024, 150, 777)
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != Reproduced {
		t.Fatalf("verdict = %v; %s", report.Verdict, report.Summary())
	}
	if report.MaxRelative > HagerupTolerancePct {
		t.Fatalf("max relative %.2f%% exceeds bound", report.MaxRelative)
	}
	// 8 techniques × 5 PE counts.
	if len(report.Checks) != 40 {
		t.Fatalf("checks = %d, want 40", len(report.Checks))
	}
	// The FAC/2-PE outlier must be excluded, not judged.
	found := false
	for _, c := range report.Checks {
		if c.Name == "FAC p=2" {
			found = true
			if c.Verdict != Excluded {
				t.Errorf("FAC p=2 verdict = %v, want Excluded", c.Verdict)
			}
		}
	}
	if !found {
		t.Fatal("FAC p=2 check missing")
	}
	if !strings.Contains(report.Summary(), "Figure 5") {
		t.Fatalf("summary = %q", report.Summary())
	}
}

func TestVerifyHagerupRejectsReferenceSeed(t *testing.T) {
	if _, err := VerifyHagerup(context.Background(), 1024, 10, refdata.Seed); err == nil {
		t.Fatal("verification against its own reference seed accepted")
	}
}

func TestVerifyHagerupUnknownN(t *testing.T) {
	if _, err := VerifyHagerup(context.Background(), 999, 5, 1); err == nil {
		t.Fatal("n without reference data accepted")
	}
}

// TestVerifyTzenVerdicts reproduces the paper's §IV-A outcome via the
// methodology API: experiment 1 as a whole DIVERGES (because of SS),
// while CSS and TSS individually reproduce.
func TestVerifyTzenVerdicts(t *testing.T) {
	report, err := VerifyTzen(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != Diverged {
		t.Fatalf("experiment 1 verdict = %v, want Diverged (the paper's negative result)", report.Verdict)
	}
	byName := map[string]Check{}
	for _, c := range report.Checks {
		byName[strings.Fields(c.Name)[0]] = c
	}
	if byName["SS"].Verdict != Diverged {
		t.Errorf("SS = %v, want Diverged", byName["SS"].Verdict)
	}
	for _, tech := range []string{"CSS", "TSS"} {
		if byName[tech].Verdict != Reproduced {
			t.Errorf("%s = %v, want Reproduced", tech, byName[tech].Verdict)
		}
	}
}

func TestVerifyTzenBadExperiment(t *testing.T) {
	if _, err := VerifyTzen(context.Background(), 3); err == nil {
		t.Fatal("experiment 3 accepted")
	}
}

func TestExcludeFACOutlier(t *testing.T) {
	if !ExcludeFACOutlier("FAC", 2) {
		t.Fatal("FAC/2 not excluded")
	}
	if ExcludeFACOutlier("FAC", 8) || ExcludeFACOutlier("FAC2", 2) {
		t.Fatal("over-exclusion")
	}
}
