package refdata

import (
	"testing"

	"repro/internal/sched"
)

func TestWastedCoverage(t *testing.T) {
	// Every cell of paper Table III must be present.
	for _, tech := range sched.VerifiedNames() {
		for _, n := range []int64{1024, 8192, 65536, 524288} {
			for _, p := range []int{2, 8, 64, 256, 1024} {
				v, ok := Wasted(tech, n, p)
				if !ok {
					t.Fatalf("missing reference cell %s n=%d p=%d", tech, n, p)
				}
				if v <= 0 {
					t.Fatalf("non-positive reference %s n=%d p=%d: %v", tech, n, p, v)
				}
			}
		}
	}
}

func TestWastedMissing(t *testing.T) {
	if _, ok := Wasted("STAT", 999, 2); ok {
		t.Error("bogus n found")
	}
	if _, ok := Wasted("NOPE", 1024, 2); ok {
		t.Error("bogus technique found")
	}
}

// TestReferenceShape pins the qualitative claims of the Hagerup
// experiment that the paper's Figures 5a–8a exhibit.
func TestReferenceShape(t *testing.T) {
	get := func(tech string, n int64, p int) float64 {
		v, ok := Wasted(tech, n, p)
		if !ok {
			t.Fatalf("missing %s/%d/%d", tech, n, p)
		}
		return v
	}
	// 1. SS is dominated by h·n/p for small p.
	for _, n := range []int64{1024, 8192, 65536, 524288} {
		floor := 0.5 * float64(n) / 2
		if ss := get("SS", n, 2); ss < floor || ss > floor*1.1 {
			t.Errorf("SS n=%d p=2 = %v, want ≈%v", n, ss, floor)
		}
	}
	// 2. The paper quotes 1.3e5 s for the 524288-task experiment.
	if ss := get("SS", 524288, 2); ss < 1.29e5 || ss > 1.32e5 {
		t.Errorf("SS 524288/2 = %v, want ≈1.3e5", ss)
	}
	// 3. BOLD is lowest or near-lowest (within 2.5× of the best) in every
	// cell — its design goal.
	for _, n := range []int64{1024, 8192, 65536, 524288} {
		for _, p := range []int{2, 8, 64, 256, 1024} {
			best := get("STAT", n, p)
			for _, tech := range sched.VerifiedNames() {
				if v := get(tech, n, p); v < best {
					best = v
				}
			}
			if bold := get("BOLD", n, p); bold > 2.5*best {
				t.Errorf("BOLD n=%d p=%d = %v, best = %v", n, p, bold, best)
			}
		}
	}
	// 4. STAT's wasted time grows with n at fixed small p (imbalance
	// scales with chunk size under exponential variance).
	if !(get("STAT", 1024, 2) < get("STAT", 65536, 2) && get("STAT", 65536, 2) < get("STAT", 524288, 2)) {
		t.Error("STAT wasted time not increasing with n at p=2")
	}
}

func TestTzenCurves(t *testing.T) {
	for _, exp := range []int{1, 2} {
		labels := TzenLabels(exp)
		if len(labels) != 5 {
			t.Fatalf("experiment %d labels = %v", exp, labels)
		}
		for _, l := range labels {
			v, ok := TzenSpeedup(exp, l)
			if !ok {
				t.Fatalf("missing curve %d/%s", exp, l)
			}
			if len(v) != len(TzenPs) {
				t.Fatalf("curve %d/%s has %d points, want %d", exp, l, len(v), len(TzenPs))
			}
			for i, s := range v {
				if s <= 0 || s > float64(TzenPs[i]) {
					t.Errorf("curve %d/%s point %d: speedup %v vs p=%d", exp, l, i, s, TzenPs[i])
				}
			}
		}
	}
	if _, ok := TzenSpeedup(3, "SS"); ok {
		t.Error("bogus experiment found")
	}
	if TzenLabels(9) != nil {
		t.Error("bogus experiment labels")
	}
	// The documented qualitative contrast: SS saturates in experiment 1,
	// CSS stays near-linear.
	ss, _ := TzenSpeedup(1, "SS")
	css, _ := TzenSpeedup(1, "CSS")
	if ss[len(ss)-1] > 12 {
		t.Errorf("SS should saturate low, got %v", ss[len(ss)-1])
	}
	if css[len(css)-1] < 70 {
		t.Errorf("CSS should be near-linear, got %v", css[len(css)-1])
	}
}
