// Package refdata ships the reference values the reproducibility harness
// compares against, standing in for the numbers the paper took from the
// original publications.
//
// Hagerup reference (Figures 5a–8a): the paper compares against exact
// values from Table I of the BOLD publication, which this repository does
// not possess. Instead, hagerup_data.go contains a pinned dataset
// generated once by this repository's own Hagerup-replica simulator under
// the documented seed below (see DESIGN.md §3.2 and cmd/genref). The
// discrepancy methodology of the paper (Figures 5c–8d) runs unchanged
// against it.
//
// Tzen–Ni reference (Figures 3a/4a): approximate digitizations of the
// published speedup curves, encoded point by point in tzen.go with the
// qualitative features §IV-A discusses (CSS/TSS near-linear, SS
// saturating at the task-time/scheduling-cost ratio, GSS close to
// linear).
package refdata

// Seed is the base seed under which the pinned Hagerup reference dataset
// was generated (cmd/genref). Experiments comparing against the reference
// must use a different seed, as the paper's simulations necessarily did
// against the original publication's unknown RNG seed.
const Seed uint64 = 0x486167657275 // "Hageru" bytes

// Runs is the number of runs behind each reference value (as the paper:
// 1000).
const Runs = 1000

// Wasted returns the reference average wasted time for (technique, n, p)
// of the Hagerup grid, and whether the cell exists.
func Wasted(tech string, n int64, p int) (float64, bool) {
	v, ok := hagerupWasted[hagerupKey{tech, n, p}]
	return v, ok
}

// hagerupKey indexes the pinned dataset.
type hagerupKey struct {
	tech string
	n    int64
	p    int
}
