package refdata

// Approximate digitizations of the speedup curves in the TSS publication
// (Tzen & Ni 1993, Figs. 7 and 8; reproduced as Figures 3a and 4a of the
// paper). Exact pixel values are unavailable; the curves below encode the
// published qualitative behaviour the paper's §IV-A analysis relies on:
//
//   - Experiment 1 (100,000 × 110 µs): CSS and TSS near-linear (CSS
//     reaches the quoted 69.2 at p = 72), GSS slightly below, SS
//     saturating around 9 (task time over per-task scheduling cost on
//     the BBN GP-1000).
//   - Experiment 2 (10,000 × 2 ms): coarser tasks lift SS but memory
//     contention bends it over; the chunked techniques stay near-linear.
//
// One point per PE count in TzenPs order.

// TzenPs lists the PE counts of the digitized curves.
var TzenPs = []int{2, 8, 16, 24, 32, 40, 48, 56, 64, 72, 80}

var tzenExp1 = map[string][]float64{
	"SS":      {1.9, 5.5, 7.5, 8.3, 8.7, 8.9, 9.0, 9.0, 9.0, 9.0, 9.0},
	"CSS":     {1.9, 7.7, 15.4, 23.0, 30.7, 38.3, 46.0, 53.5, 61.0, 69.2, 76.0},
	"GSS(1)":  {1.8, 7.2, 14.4, 21.5, 28.7, 35.8, 43.0, 50.0, 57.4, 64.5, 71.5},
	"GSS(80)": {1.9, 7.4, 14.9, 22.3, 29.7, 37.1, 44.5, 51.8, 59.2, 66.5, 73.8},
	"TSS":     {1.9, 7.6, 15.2, 22.8, 30.4, 38.0, 45.6, 53.1, 60.7, 68.2, 75.7},
}

var tzenExp2 = map[string][]float64{
	"SS":     {1.95, 7.6, 14.6, 20.5, 25.5, 29.5, 32.5, 35.0, 37.0, 38.5, 40.0},
	"CSS":    {1.9, 7.6, 15.2, 22.8, 30.4, 38.0, 45.6, 53.1, 60.7, 68.2, 75.7},
	"GSS(1)": {1.8, 7.2, 14.4, 21.5, 28.7, 35.8, 43.0, 50.0, 57.4, 64.5, 71.5},
	"GSS(5)": {1.9, 7.4, 14.9, 22.3, 29.7, 37.1, 44.5, 51.8, 59.2, 66.5, 73.8},
	"TSS":    {1.9, 7.6, 15.2, 22.8, 30.4, 38.0, 45.6, 53.1, 60.7, 68.2, 75.7},
}

// TzenSpeedup returns the digitized reference speedups for the given
// experiment (1 or 2) and curve label, aligned with TzenPs.
func TzenSpeedup(experiment int, label string) ([]float64, bool) {
	switch experiment {
	case 1:
		v, ok := tzenExp1[label]
		return v, ok
	case 2:
		v, ok := tzenExp2[label]
		return v, ok
	default:
		return nil, false
	}
}

// TzenLabels returns the curve labels of the given experiment in plotting
// order.
func TzenLabels(experiment int) []string {
	switch experiment {
	case 1:
		return []string{"SS", "CSS", "GSS(1)", "GSS(80)", "TSS"}
	case 2:
		return []string{"SS", "CSS", "GSS(1)", "GSS(5)", "TSS"}
	default:
		return nil
	}
}
