package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead checks the trace CSV parser never panics and that valid
// traces round-trip through Write.
func FuzzRead(f *testing.F) {
	f.Add("worker,start,count,assigned_s,done_s\n0,0,5,0,5\n1,5,3,0,4\n")
	f.Add("worker,start,count,assigned_s,done_s\n")
	f.Add("garbage")
	f.Add("")
	f.Fuzz(func(t *testing.T, doc string) {
		tr, err := Read(strings.NewReader(doc))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			t.Fatalf("write of parsed trace failed: %v", err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(again.Events) != len(tr.Events) {
			t.Fatalf("event count changed: %d -> %d", len(tr.Events), len(again.Events))
		}
	})
}
