package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// record runs one simulation with a recorder attached.
func record(t *testing.T, tech string, n int64, p int) (*Trace, *sim.Result) {
	t.Helper()
	s, err := sched.New(tech, sched.Params{N: n, P: p, H: 0.5, Mu: 1, Sigma: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder()
	res, err := sim.Run(sim.Config{
		P:       p,
		Sched:   s,
		Work:    workload.NewExponential(1),
		RNG:     rng.New(5),
		Observe: rec.Record,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec.Trace(), res
}

func TestRecorderCapturesAllOps(t *testing.T) {
	tr, res := record(t, "FAC2", 2048, 8)
	if int64(len(tr.Events)) != res.SchedOps {
		t.Fatalf("recorded %d events, simulator reports %d ops", len(tr.Events), res.SchedOps)
	}
	if tr.Tasks() != 2048 {
		t.Fatalf("trace covers %d tasks, want 2048", tr.Tasks())
	}
	if tr.Workers() != 8 {
		t.Fatalf("trace has %d workers, want 8", tr.Workers())
	}
	if math.Abs(tr.Makespan()-res.Makespan) > 1e-9 {
		t.Fatalf("trace makespan %v != simulator %v", tr.Makespan(), res.Makespan)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("recorded trace invalid: %v", err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	good := &Trace{Events: []Event{
		{Worker: 0, Start: 0, Count: 5, Assigned: 0, Done: 5},
		{Worker: 1, Start: 5, Count: 5, Assigned: 0, Done: 4},
	}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	bad := []*Trace{
		{Events: []Event{{Worker: 0, Start: 0, Count: 0, Done: 1}}},              // zero count
		{Events: []Event{{Worker: -1, Start: 0, Count: 1, Done: 1}}},             // negative worker
		{Events: []Event{{Worker: 0, Start: 0, Count: 1, Assigned: 2, Done: 1}}}, // done < assigned
		{Events: []Event{ // overlapping ranges
			{Worker: 0, Start: 0, Count: 5, Done: 1},
			{Worker: 1, Start: 3, Count: 5, Done: 1},
		}},
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("bad trace %d accepted", i)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr, _ := record(t, "GSS", 1000, 4)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(tr.Events) {
		t.Fatalf("round trip lost events: %d vs %d", len(got.Events), len(tr.Events))
	}
	for i := range tr.Events {
		a, b := tr.Events[i], got.Events[i]
		if a.Worker != b.Worker || a.Start != b.Start || a.Count != b.Count {
			t.Fatalf("event %d differs: %+v vs %+v", i, a, b)
		}
		if a.Assigned != b.Assigned || a.Done != b.Done {
			t.Fatalf("event %d times differ: %+v vs %+v", i, a, b)
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",
		"not,a,trace,header,x\n",
		"worker,start,count,assigned_s,done_s\nbad,0,1,0,1\n",
		"worker,start,count,assigned_s,done_s\n0,bad,1,0,1\n",
		"worker,start,count,assigned_s,done_s\n0,0,bad,0,1\n",
		"worker,start,count,assigned_s,done_s\n0,0,1,bad,1\n",
		"worker,start,count,assigned_s,done_s\n0,0,1,0,bad\n",
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("bad CSV %d accepted", i)
		}
	}
}

// TestReplayThroughExplicitWorkload closes the paper's §III loop:
// extract per-task times from a recorded trace, replay them through an
// Explicit workload, and verify the replayed loop conserves total work.
func TestReplayThroughExplicitWorkload(t *testing.T) {
	const n, p = 2048, 8
	tr, res := record(t, "FAC2", n, p)

	times := tr.PerTaskTimes(n)
	replay, err := workload.NewExplicit(times)
	if err != nil {
		t.Fatal(err)
	}
	// Total replayed work equals total simulated compute.
	var origCompute float64
	for _, c := range res.Compute {
		origCompute += c
	}
	if got := replay.ChunkTime(0, n, nil); math.Abs(got-origCompute) > 1e-6*origCompute {
		t.Fatalf("replayed total %v != original compute %v", got, origCompute)
	}

	// Re-run the loop under a different technique on the replayed times.
	s, err := sched.New("GSS", sched.Params{N: n, P: p})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := sim.Run(sim.Config{P: p, Sched: s, Work: replay})
	if err != nil {
		t.Fatal(err)
	}
	var replayCompute float64
	for _, c := range res2.Compute {
		replayCompute += c
	}
	if math.Abs(replayCompute-origCompute) > 1e-6*origCompute {
		t.Fatalf("replay under GSS computed %v, want %v", replayCompute, origCompute)
	}
}

func TestPerTaskTimesBounds(t *testing.T) {
	tr := &Trace{Events: []Event{
		{Worker: 0, Start: 0, Count: 2, Assigned: 0, Done: 4},   // 2 s per task
		{Worker: 1, Start: 100, Count: 1, Assigned: 0, Done: 1}, // out of range
	}}
	times := tr.PerTaskTimes(3)
	if times[0] != 2 || times[1] != 2 {
		t.Fatalf("times = %v", times)
	}
	if times[2] != 0 {
		t.Fatalf("uncovered task time = %v, want 0", times[2])
	}
}
