// Package trace records and replays scheduling executions. The paper's
// §III observes that reproducing experiments on real applications
// requires "a trace file or similar information describing the behavior
// of the measured application"; this package is that information model:
//
//   - A Recorder captures one chunk event per scheduling operation
//     (worker, task range, request and completion times).
//   - Traces round-trip through a CSV format, the repository's stand-in
//     for the raw data the paper published online (§V).
//   - Per-task execution times extracted from a trace (or measured by
//     any other means) can be replayed through workload.Explicit,
//     closing the loop Figure 2 describes ("Task Execution Times").
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Event is one scheduling operation: worker w received tasks
// [Start, Start+Count) at time Assigned and completed them at Done.
type Event struct {
	Worker   int
	Start    int64
	Count    int64
	Assigned float64
	Done     float64
}

// Trace is an ordered list of chunk events of one execution.
type Trace struct {
	Events []Event
}

// Recorder collects events; its Record method matches the shape of the
// simulators' observation hooks.
type Recorder struct {
	tr Trace
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record appends one chunk event.
func (r *Recorder) Record(worker int, start, count int64, assigned, done float64) {
	r.tr.Events = append(r.tr.Events, Event{
		Worker: worker, Start: start, Count: count, Assigned: assigned, Done: done,
	})
}

// Trace returns the recorded trace.
func (r *Recorder) Trace() *Trace { return &r.tr }

// Validate checks internal consistency: non-negative times, positive
// counts, Done >= Assigned, and that task ranges do not overlap.
func (t *Trace) Validate() error {
	type span struct{ lo, hi int64 }
	spans := make([]span, 0, len(t.Events))
	for i, e := range t.Events {
		if e.Count <= 0 {
			return fmt.Errorf("trace: event %d has count %d", i, e.Count)
		}
		if e.Start < 0 || e.Worker < 0 {
			return fmt.Errorf("trace: event %d has negative start/worker", i)
		}
		if e.Done < e.Assigned {
			return fmt.Errorf("trace: event %d completes before assignment", i)
		}
		spans = append(spans, span{e.Start, e.Start + e.Count})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
	for i := 1; i < len(spans); i++ {
		if spans[i].lo < spans[i-1].hi {
			return fmt.Errorf("trace: task ranges overlap at task %d", spans[i].lo)
		}
	}
	return nil
}

// Tasks returns the total number of tasks covered by the trace.
func (t *Trace) Tasks() int64 {
	var n int64
	for _, e := range t.Events {
		n += e.Count
	}
	return n
}

// Workers returns the number of distinct workers appearing in the trace.
func (t *Trace) Workers() int {
	seen := map[int]bool{}
	for _, e := range t.Events {
		seen[e.Worker] = true
	}
	return len(seen)
}

// Makespan returns the latest completion time.
func (t *Trace) Makespan() float64 {
	var m float64
	for _, e := range t.Events {
		if e.Done > m {
			m = e.Done
		}
	}
	return m
}

// PerTaskTimes distributes each chunk's duration uniformly over its
// tasks and returns the per-task execution times for tasks [0, n). This
// is the extraction step §III describes: chunk-granularity measurements
// are the best available evidence for per-task behaviour. Tasks not
// covered by the trace get zero.
func (t *Trace) PerTaskTimes(n int64) []float64 {
	out := make([]float64, n)
	for _, e := range t.Events {
		per := (e.Done - e.Assigned) / float64(e.Count)
		for i := int64(0); i < e.Count; i++ {
			idx := e.Start + i
			if idx >= 0 && idx < n {
				out[idx] = per
			}
		}
	}
	return out
}

// Write emits the trace as CSV: worker,start,count,assigned,done.
func Write(w io.Writer, t *Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"worker", "start", "count", "assigned_s", "done_s"}); err != nil {
		return err
	}
	for _, e := range t.Events {
		row := []string{
			strconv.Itoa(e.Worker),
			strconv.FormatInt(e.Start, 10),
			strconv.FormatInt(e.Count, 10),
			strconv.FormatFloat(e.Assigned, 'g', 17, 64),
			strconv.FormatFloat(e.Done, 'g', 17, 64),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Read parses a CSV trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty file")
	}
	if len(rows[0]) != 5 || rows[0][0] != "worker" {
		return nil, fmt.Errorf("trace: unexpected header %v", rows[0])
	}
	t := &Trace{}
	for i, row := range rows[1:] {
		if len(row) != 5 {
			return nil, fmt.Errorf("trace: row %d has %d fields", i+1, len(row))
		}
		worker, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, fmt.Errorf("trace: row %d worker: %v", i+1, err)
		}
		start, err := strconv.ParseInt(row[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d start: %v", i+1, err)
		}
		count, err := strconv.ParseInt(row[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d count: %v", i+1, err)
		}
		assigned, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d assigned: %v", i+1, err)
		}
		done, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d done: %v", i+1, err)
		}
		t.Events = append(t.Events, Event{
			Worker: worker, Start: start, Count: count, Assigned: assigned, Done: done,
		})
	}
	return t, nil
}
