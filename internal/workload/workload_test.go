package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestConstant(t *testing.T) {
	w := NewConstant(110e-6)
	if got := w.Time(42, nil); got != 110e-6 {
		t.Fatalf("Time = %v, want 110e-6", got)
	}
	if got := w.ChunkTime(0, 1000, nil); math.Abs(got-0.11) > 1e-12 {
		t.Fatalf("ChunkTime = %v, want 0.11", got)
	}
	if w.Mean() != 110e-6 || w.Std() != 0 {
		t.Fatalf("moments wrong: %v %v", w.Mean(), w.Std())
	}
}

func TestLinearIncreasing(t *testing.T) {
	w := NewIncreasing(1, 10, 10)
	if got := w.Time(0, nil); got != 1 {
		t.Fatalf("first task = %v, want 1", got)
	}
	if got := w.Time(9, nil); math.Abs(got-10) > 1e-12 {
		t.Fatalf("last task = %v, want 10", got)
	}
	// Sum 1..10 = 55.
	if got := w.ChunkTime(0, 10, nil); math.Abs(got-55) > 1e-9 {
		t.Fatalf("ChunkTime = %v, want 55", got)
	}
	if got := w.Mean(); math.Abs(got-5.5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5.5", got)
	}
}

func TestLinearDecreasing(t *testing.T) {
	w := NewDecreasing(10, 1, 10)
	if got := w.Time(0, nil); got != 10 {
		t.Fatalf("first task = %v, want 10", got)
	}
	if got := w.Time(9, nil); math.Abs(got-1) > 1e-12 {
		t.Fatalf("last task = %v, want 1", got)
	}
	if w.Name() != "decreasing" {
		t.Fatalf("Name = %q", w.Name())
	}
}

// TestLinearChunkMatchesTaskSum checks the closed-form chunk sum against
// explicit summation for arbitrary sub-ranges.
func TestLinearChunkMatchesTaskSum(t *testing.T) {
	w := NewIncreasing(0.5, 7.25, 1000)
	f := func(a, b uint16) bool {
		start := int64(a) % 900
		count := int64(b)%100 + 1
		var want float64
		for i := int64(0); i < count; i++ {
			want += w.Time(start+i, nil)
		}
		got := w.ChunkTime(start, count, nil)
		return math.Abs(got-want) < 1e-9*math.Max(1, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExponentialChunkTimeMoments(t *testing.T) {
	w := NewExponential(1)
	r := rng.New(77)
	const chunk = 100
	const samples = 20000
	var sum, sum2 float64
	for i := 0; i < samples; i++ {
		v := w.ChunkTime(0, chunk, r)
		sum += v
		sum2 += v * v
	}
	mean := sum / samples
	variance := sum2/samples - mean*mean
	if math.Abs(mean-chunk) > 0.05*chunk {
		t.Errorf("chunk mean = %v, want ~%v", mean, chunk)
	}
	if math.Abs(variance-chunk) > 0.15*chunk {
		t.Errorf("chunk variance = %v, want ~%v", variance, chunk)
	}
}

// TestExponentialSmallChunkExact checks the below-cutoff path sums
// individual exponentials (same stream consumption as Time calls).
func TestExponentialSmallChunkExact(t *testing.T) {
	w := NewExponential(2)
	a, b := rng.New(5), rng.New(5)
	got := w.ChunkTime(0, 3, a)
	want := w.Time(0, b) + w.Time(1, b) + w.Time(2, b)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("small chunk = %v, want %v", got, want)
	}
}

func TestExponentialZeroChunk(t *testing.T) {
	if v := NewExponential(1).ChunkTime(0, 0, rng.New(1)); v != 0 {
		t.Fatalf("zero chunk = %v", v)
	}
}

func TestUniformRandomMoments(t *testing.T) {
	w := NewUniformRandom(1, 3)
	if math.Abs(w.Mean()-2) > 1e-12 {
		t.Fatalf("mean = %v", w.Mean())
	}
	want := 2 / math.Sqrt(12)
	if math.Abs(w.Std()-want) > 1e-12 {
		t.Fatalf("std = %v, want %v", w.Std(), want)
	}
}

func TestNormalClamping(t *testing.T) {
	w := NewNormal(0.1, 5) // most mass below 0 -> heavy clamping
	r := rng.New(3)
	for i := 0; i < 10000; i++ {
		if v := w.Time(0, r); v < 0 {
			t.Fatalf("normal produced negative time: %v", v)
		}
	}
}

func TestGammaAdditivity(t *testing.T) {
	w := NewGamma(2, 0.5) // mean 1
	r := rng.New(11)
	const chunk = 50
	var sum float64
	const samples = 20000
	for i := 0; i < samples; i++ {
		sum += w.ChunkTime(0, chunk, r)
	}
	mean := sum / samples
	if math.Abs(mean-chunk*w.Mean()) > 0.05*chunk*w.Mean() {
		t.Errorf("gamma chunk mean = %v, want ~%v", mean, chunk*w.Mean())
	}
}

func TestBimodalMoments(t *testing.T) {
	w := NewBimodal(1, 10, 0.25)
	wantMean := 0.25*10 + 0.75*1
	if math.Abs(w.Mean()-wantMean) > 1e-12 {
		t.Fatalf("mean = %v, want %v", w.Mean(), wantMean)
	}
	r := rng.New(9)
	var sum float64
	const samples = 100000
	for i := 0; i < samples; i++ {
		sum += w.Time(0, r)
	}
	if got := sum / samples; math.Abs(got-wantMean) > 0.05 {
		t.Errorf("sampled mean = %v, want ~%v", got, wantMean)
	}
}

func TestTotal(t *testing.T) {
	if got := Total(NewConstant(2), 10); got != 20 {
		t.Fatalf("constant total = %v", got)
	}
	if got := Total(NewIncreasing(1, 10, 10), 10); math.Abs(got-55) > 1e-9 {
		t.Fatalf("linear total = %v", got)
	}
	if got := Total(NewExponential(1.5), 10); math.Abs(got-15) > 1e-12 {
		t.Fatalf("exponential total = %v", got)
	}
}

func TestSpecBuild(t *testing.T) {
	cases := []struct {
		spec Spec
		name string
	}{
		{Spec{Kind: "constant", P1: 1}, "constant"},
		{Spec{Kind: "uniform", P1: 1, P2: 2}, "uniform"},
		{Spec{Kind: "increasing", P1: 1, P2: 2, N: 10}, "increasing"},
		{Spec{Kind: "decreasing", P1: 2, P2: 1, N: 10}, "decreasing"},
		{Spec{Kind: "exponential", P1: 1}, "exponential"},
		{Spec{Kind: "normal", P1: 1, P2: 0.1}, "normal"},
		{Spec{Kind: "gamma", P1: 2, P2: 0.5}, "gamma"},
		{Spec{Kind: "bimodal", P1: 1, P2: 10, P3: 0.1}, "bimodal"},
	}
	for _, c := range cases {
		w, err := c.spec.Build()
		if err != nil {
			t.Fatalf("Build(%+v): %v", c.spec, err)
		}
		if w.Name() != c.name {
			t.Errorf("Build(%+v).Name() = %q, want %q", c.spec, w.Name(), c.name)
		}
	}
}

func TestSpecBuildErrors(t *testing.T) {
	bad := []Spec{
		{Kind: "constant", P1: 0},
		{Kind: "constant", P1: -1},
		{Kind: "uniform", P1: 2, P2: 1},
		{Kind: "increasing", P1: 1, P2: 2}, // missing N
		{Kind: "increasing", P1: 2, P2: 1, N: 5},
		{Kind: "decreasing", P1: 1, P2: 2, N: 5},
		{Kind: "exponential", P1: 0},
		{Kind: "normal", P1: -1},
		{Kind: "gamma", P1: 0, P2: 1},
		{Kind: "bimodal", P3: 1.5},
		{Kind: "zipf"},
	}
	for _, s := range bad {
		if _, err := s.Build(); err == nil {
			t.Errorf("Build(%+v) succeeded, want error", s)
		}
	}
}

// TestChunkDecompositionInvariant: for deterministic workloads, splitting
// a chunk must not change the total time.
func TestChunkDecompositionInvariant(t *testing.T) {
	w := NewIncreasing(1, 100, 1000)
	f := func(a, b, c uint16) bool {
		start := int64(a) % 500
		n1 := int64(b)%100 + 1
		n2 := int64(c)%100 + 1
		whole := w.ChunkTime(start, n1+n2, nil)
		split := w.ChunkTime(start, n1, nil) + w.ChunkTime(start+n1, n2, nil)
		return math.Abs(whole-split) < 1e-9*math.Max(1, whole)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkExponentialChunkTimeFastPath(b *testing.B) {
	w := NewExponential(1)
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		_ = w.ChunkTime(0, 512, r)
	}
}

func BenchmarkExponentialChunkTimeExact(b *testing.B) {
	w := NewExponential(1)
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		_ = rng.ErlangSum(r, 512, w.Mu)
	}
}

func TestExplicitWorkload(t *testing.T) {
	w, err := NewExplicit([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 4 {
		t.Fatalf("Len = %d", w.Len())
	}
	if got := w.Time(2, nil); got != 3 {
		t.Fatalf("Time(2) = %v", got)
	}
	if got := w.ChunkTime(1, 2, nil); got != 5 {
		t.Fatalf("ChunkTime(1,2) = %v", got)
	}
	if got := w.ChunkTime(0, 4, nil); got != 10 {
		t.Fatalf("ChunkTime(0,4) = %v", got)
	}
	if w.Mean() != 2.5 {
		t.Fatalf("Mean = %v", w.Mean())
	}
	// Population std of {1,2,3,4} = sqrt(1.25).
	if math.Abs(w.Std()-math.Sqrt(1.25)) > 1e-12 {
		t.Fatalf("Std = %v", w.Std())
	}
	if !w.Deterministic() {
		t.Fatal("explicit workload must be deterministic")
	}
}

func TestExplicitBoundsClamped(t *testing.T) {
	w, err := NewExplicit([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Time(-1, nil); got != 0 {
		t.Fatalf("Time(-1) = %v", got)
	}
	if got := w.Time(9, nil); got != 0 {
		t.Fatalf("Time(9) = %v", got)
	}
	if got := w.ChunkTime(2, 5, nil); got != 3 {
		t.Fatalf("clamped chunk = %v, want 3", got)
	}
	if got := w.ChunkTime(-2, 3, nil); got != 1 { // range [-2,1) clamps to task 0 only
		t.Fatalf("negative-start chunk = %v, want 1", got)
	}
	if got := w.ChunkTime(0, 0, nil); got != 0 {
		t.Fatalf("zero chunk = %v", got)
	}
}

func TestExplicitValidation(t *testing.T) {
	if _, err := NewExplicit(nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := NewExplicit([]float64{1, -2}); err == nil {
		t.Error("negative time accepted")
	}
	if _, err := NewExplicit([]float64{math.NaN()}); err == nil {
		t.Error("NaN accepted")
	}
	if _, err := NewExplicit([]float64{math.Inf(1)}); err == nil {
		t.Error("Inf accepted")
	}
}

func TestExplicitDoesNotAliasInput(t *testing.T) {
	times := []float64{1, 2}
	w, err := NewExplicit(times)
	if err != nil {
		t.Fatal(err)
	}
	times[0] = 99
	if got := w.Time(0, nil); got != 1 {
		t.Fatalf("explicit workload aliases caller slice: %v", got)
	}
}
