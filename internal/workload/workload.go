// Package workload generates per-task execution times for the loop
// scheduling experiments. It covers every distribution used by the two
// publications the paper reproduces — constant, random (uniform),
// decreasing and increasing workloads from the TSS publication (Tzen & Ni,
// 1993) and exponential task times from the BOLD publication (Hagerup,
// 1997) — plus the additional distributions earlier DLS work studied
// (normal, gamma, lognormal, weibull, bimodal).
//
// A Workload answers two questions:
//
//   - Time(i, r): the execution time of task i (a single loop iteration),
//     possibly consuming randomness from r.
//   - ChunkTime(start, count, r): the total execution time of the
//     contiguous chunk [start, start+count). For deterministic workloads
//     this is a closed form; for i.i.d. exponential tasks the sum is drawn
//     in O(1) as a Gamma(count, mean) variate, which is distributionally
//     identical to summing count exponentials (see DESIGN.md §6). Other
//     random workloads sum task by task unless the caller opts into the
//     Gaussian (CLT) approximation.
//
// All times are in seconds of simulated time.
package workload

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Workload yields per-task and per-chunk execution times.
type Workload interface {
	// Name identifies the workload in tables and CLI flags.
	Name() string
	// Time returns the execution time of task i in seconds. Deterministic
	// workloads ignore r; it must be non-nil for random workloads.
	Time(i int64, r *rng.Rand48) float64
	// ChunkTime returns the total execution time of tasks
	// [start, start+count).
	ChunkTime(start, count int64, r *rng.Rand48) float64
	// Mean returns the mean task execution time µ.
	Mean() float64
	// Std returns the standard deviation σ of task execution times.
	Std() float64
	// Deterministic reports whether task times are a pure function of the
	// task index (no randomness consumed). Deterministic workloads may be
	// simulated without an RNG.
	Deterministic() bool
}

// Constant is the simplest workload: every task takes exactly C seconds.
// The TSS publication's experiments 1 and 2 use constant workloads of
// 110 µs and 2 ms.
type Constant struct{ C float64 }

// NewConstant returns a constant workload of c seconds per task.
func NewConstant(c float64) Constant { return Constant{C: c} }

func (w Constant) Name() string                                    { return "constant" }
func (w Constant) Time(i int64, _ *rng.Rand48) float64             { return w.C }
func (w Constant) ChunkTime(_, count int64, _ *rng.Rand48) float64 { return w.C * float64(count) }
func (w Constant) Mean() float64                                   { return w.C }
func (w Constant) Std() float64                                    { return 0 }
func (w Constant) Deterministic() bool                             { return true }

// Linear models the TSS publication's increasing and decreasing workloads:
// task i takes A + B*i seconds (B < 0 for decreasing). Times are clamped
// at Floor to stay positive. N is the total task count, needed to report
// exact aggregate moments.
type Linear struct {
	A, B  float64
	N     int64
	Floor float64
}

// NewIncreasing returns a linear workload rising from first to last
// seconds across n tasks.
func NewIncreasing(first, last float64, n int64) Linear {
	b := 0.0
	if n > 1 {
		b = (last - first) / float64(n-1)
	}
	return Linear{A: first, B: b, N: n}
}

// NewDecreasing returns a linear workload falling from first to last
// seconds across n tasks.
func NewDecreasing(first, last float64, n int64) Linear {
	return NewIncreasing(first, last, n)
}

func (w Linear) Name() string {
	if w.B < 0 {
		return "decreasing"
	}
	if w.B > 0 {
		return "increasing"
	}
	return "constant"
}

func (w Linear) Time(i int64, _ *rng.Rand48) float64 {
	v := w.A + w.B*float64(i)
	if v < w.Floor {
		return w.Floor
	}
	return v
}

// ChunkTime sums the arithmetic series in closed form. Clamping at Floor
// is ignored in the closed form; constructors produce non-negative times
// for all i < N, so the closed form is exact on valid indices.
func (w Linear) ChunkTime(start, count int64, _ *rng.Rand48) float64 {
	if count <= 0 {
		return 0
	}
	// Sum_{i=start}^{start+count-1} (A + B*i)
	k := float64(count)
	first := float64(start)
	return w.A*k + w.B*(k*first+k*(k-1)/2)
}

func (w Linear) Mean() float64 {
	if w.N <= 0 {
		return w.A
	}
	return w.A + w.B*float64(w.N-1)/2
}

func (w Linear) Deterministic() bool { return true }

func (w Linear) Std() float64 {
	if w.N <= 1 {
		return 0
	}
	// Variance of A+B*i over i = 0..N-1 is B^2 * (N^2-1)/12.
	n := float64(w.N)
	return math.Abs(w.B) * math.Sqrt((n*n-1)/12)
}

// Exponential draws i.i.d. exponential task times with the given mean.
// This is the BOLD publication's workload (µ = 1 s, so σ = µ = 1 s).
type Exponential struct{ Mu float64 }

// NewExponential returns an exponential workload with mean mu.
func NewExponential(mu float64) Exponential { return Exponential{Mu: mu} }

func (w Exponential) Name() string { return "exponential" }

func (w Exponential) Time(_ int64, r *rng.Rand48) float64 {
	return rng.Exponential(r, w.Mu)
}

// ChunkTime draws the sum of count i.i.d. exponentials in O(1) as a
// Gamma(count, Mu) variate. For count <= gammaCutoff the exponentials are
// summed directly; tiny chunks dominate techniques like SS and the direct
// sum is both exact and faster there.
func (w Exponential) ChunkTime(_, count int64, r *rng.Rand48) float64 {
	if count <= 0 {
		return 0
	}
	if count <= gammaCutoff {
		return rng.ErlangSum(r, count, w.Mu)
	}
	return rng.Gamma(r, float64(count), w.Mu)
}

func (w Exponential) Mean() float64       { return w.Mu }
func (w Exponential) Std() float64        { return w.Mu }
func (w Exponential) Deterministic() bool { return false }

// gammaCutoff is the chunk size below which Exponential.ChunkTime sums
// individual draws instead of sampling a Gamma variate.
const gammaCutoff = 8

// UniformRandom draws i.i.d. uniform task times in [Lo, Hi) — the TSS
// publication's "random" workload.
type UniformRandom struct{ Lo, Hi float64 }

// NewUniformRandom returns a uniform workload on [lo, hi).
func NewUniformRandom(lo, hi float64) UniformRandom { return UniformRandom{Lo: lo, Hi: hi} }

func (w UniformRandom) Name() string { return "uniform" }

func (w UniformRandom) Time(_ int64, r *rng.Rand48) float64 {
	return rng.Uniform(r, w.Lo, w.Hi)
}

func (w UniformRandom) ChunkTime(start, count int64, r *rng.Rand48) float64 {
	return sumTimes(w, start, count, r)
}

func (w UniformRandom) Mean() float64       { return (w.Lo + w.Hi) / 2 }
func (w UniformRandom) Std() float64        { return (w.Hi - w.Lo) / math.Sqrt(12) }
func (w UniformRandom) Deterministic() bool { return false }

// Normal draws i.i.d. normal task times truncated below at Floor (default
// 0): negative execution times are physically meaningless, so samples
// below the floor are clamped. For the parameter ranges used in DLS
// studies (σ ≤ µ/3) the clamping probability is negligible and the
// reported moments remain the untruncated ones.
type Normal struct {
	Mu, Sigma float64
	Floor     float64
}

// NewNormal returns a normal workload N(mu, sigma²) clamped at 0.
func NewNormal(mu, sigma float64) Normal { return Normal{Mu: mu, Sigma: sigma} }

func (w Normal) Name() string { return "normal" }

func (w Normal) Time(_ int64, r *rng.Rand48) float64 {
	v := rng.Normal(r, w.Mu, w.Sigma)
	if v < w.Floor {
		return w.Floor
	}
	return v
}

func (w Normal) ChunkTime(start, count int64, r *rng.Rand48) float64 {
	return sumTimes(w, start, count, r)
}

func (w Normal) Mean() float64       { return w.Mu }
func (w Normal) Std() float64        { return w.Sigma }
func (w Normal) Deterministic() bool { return false }

// Gamma draws i.i.d. gamma task times (shape, scale). Gamma workloads
// appear throughout the DLS robustness literature as a model of
// right-skewed task times with tunable coefficient of variation.
type Gamma struct{ Shape, Scale float64 }

// NewGamma returns a gamma workload with the given shape and scale.
func NewGamma(shape, scale float64) Gamma { return Gamma{Shape: shape, Scale: scale} }

func (w Gamma) Name() string { return "gamma" }

func (w Gamma) Time(_ int64, r *rng.Rand48) float64 {
	return rng.Gamma(r, w.Shape, w.Scale)
}

// ChunkTime exploits gamma additivity: the sum of count i.i.d.
// Gamma(shape, scale) variates is Gamma(count*shape, scale).
func (w Gamma) ChunkTime(_, count int64, r *rng.Rand48) float64 {
	if count <= 0 {
		return 0
	}
	return rng.Gamma(r, float64(count)*w.Shape, w.Scale)
}

func (w Gamma) Mean() float64       { return w.Shape * w.Scale }
func (w Gamma) Std() float64        { return math.Sqrt(w.Shape) * w.Scale }
func (w Gamma) Deterministic() bool { return false }

// Bimodal mixes two constant task classes: a fraction PHeavy of tasks
// takes Heavy seconds, the rest Light seconds. It models loops whose
// iterations fall into fast/slow classes (e.g. boundary vs. interior
// cells) and is the adversarial case for static chunking.
type Bimodal struct {
	Light, Heavy float64
	PHeavy       float64
}

// NewBimodal returns a bimodal workload.
func NewBimodal(light, heavy, pHeavy float64) Bimodal {
	return Bimodal{Light: light, Heavy: heavy, PHeavy: pHeavy}
}

func (w Bimodal) Name() string { return "bimodal" }

func (w Bimodal) Time(_ int64, r *rng.Rand48) float64 {
	if r.Erand48() < w.PHeavy {
		return w.Heavy
	}
	return w.Light
}

func (w Bimodal) ChunkTime(start, count int64, r *rng.Rand48) float64 {
	return sumTimes(w, start, count, r)
}

func (w Bimodal) Mean() float64 {
	return w.PHeavy*w.Heavy + (1-w.PHeavy)*w.Light
}

func (w Bimodal) Deterministic() bool { return false }

func (w Bimodal) Std() float64 {
	m := w.Mean()
	v := w.PHeavy*(w.Heavy-m)*(w.Heavy-m) + (1-w.PHeavy)*(w.Light-m)*(w.Light-m)
	return math.Sqrt(v)
}

// sumTimes is the generic task-by-task chunk accumulator used by
// workloads without a closed-form or additive fast path.
func sumTimes(w Workload, start, count int64, r *rng.Rand48) float64 {
	var s float64
	for i := int64(0); i < count; i++ {
		s += w.Time(start+i, r)
	}
	return s
}

// Total returns the sequential execution time of all n tasks of a
// deterministic workload (its exact closed form), or n*Mean() for random
// workloads (the expectation).
func Total(w Workload, n int64) float64 {
	switch w := w.(type) {
	case Constant:
		return w.C * float64(n)
	case Linear:
		return w.ChunkTime(0, n, nil)
	default:
		return float64(n) * w.Mean()
	}
}

// Spec is a parseable description of a workload, used by CLI tools and
// experiment files. Fields mirror paper Figure 2's "Task Execution Times /
// Distribution" box.
type Spec struct {
	Kind string  `json:"kind"`         // constant, uniform, increasing, decreasing, exponential, normal, gamma, bimodal
	P1   float64 `json:"p1,omitempty"` // first parameter (see Build)
	P2   float64 `json:"p2,omitempty"` // second parameter
	P3   float64 `json:"p3,omitempty"` // third parameter (bimodal heavy probability)
	N    int64   `json:"n,omitempty"`  // task count, needed by increasing/decreasing
}

// Build constructs the workload a Spec describes.
//
//	constant:   P1 = task time
//	uniform:    [P1, P2)
//	increasing: from P1 to P2 over N tasks
//	decreasing: from P1 to P2 over N tasks
//	exponential: mean P1
//	normal:     mean P1, std P2
//	gamma:      shape P1, scale P2
//	bimodal:    light P1, heavy P2, P(heavy) = P3
func (s Spec) Build() (Workload, error) {
	switch s.Kind {
	case "constant":
		if s.P1 <= 0 {
			return nil, fmt.Errorf("workload: constant requires positive task time, got %v", s.P1)
		}
		return NewConstant(s.P1), nil
	case "uniform":
		if s.P2 <= s.P1 {
			return nil, fmt.Errorf("workload: uniform requires hi > lo, got [%v,%v)", s.P1, s.P2)
		}
		return NewUniformRandom(s.P1, s.P2), nil
	case "increasing", "decreasing":
		if s.N <= 0 {
			return nil, fmt.Errorf("workload: %s requires task count N", s.Kind)
		}
		if s.Kind == "increasing" && s.P2 < s.P1 || s.Kind == "decreasing" && s.P2 > s.P1 {
			return nil, fmt.Errorf("workload: %s endpoints out of order: %v -> %v", s.Kind, s.P1, s.P2)
		}
		return NewIncreasing(s.P1, s.P2, s.N), nil
	case "exponential":
		if s.P1 <= 0 {
			return nil, fmt.Errorf("workload: exponential requires positive mean, got %v", s.P1)
		}
		return NewExponential(s.P1), nil
	case "normal":
		if s.P1 <= 0 || s.P2 < 0 {
			return nil, fmt.Errorf("workload: normal requires positive mean and non-negative std")
		}
		return NewNormal(s.P1, s.P2), nil
	case "gamma":
		if s.P1 <= 0 || s.P2 <= 0 {
			return nil, fmt.Errorf("workload: gamma requires positive shape and scale")
		}
		return NewGamma(s.P1, s.P2), nil
	case "bimodal":
		if s.P3 < 0 || s.P3 > 1 {
			return nil, fmt.Errorf("workload: bimodal requires P(heavy) in [0,1], got %v", s.P3)
		}
		return NewBimodal(s.P1, s.P2, s.P3), nil
	default:
		return nil, fmt.Errorf("workload: unknown kind %q", s.Kind)
	}
}

// Explicit replays a concrete list of per-task execution times — the
// "trace file or similar information" of paper §III that reproducing
// measurements of real applications requires. Chunk sums are O(1) via a
// prefix-sum table.
type Explicit struct {
	times  []float64
	prefix []float64 // prefix[i] = sum of times[0:i]
	mean   float64
	std    float64
}

// NewExplicit builds an explicit workload from per-task times. All times
// must be non-negative and finite.
func NewExplicit(times []float64) (*Explicit, error) {
	if len(times) == 0 {
		return nil, fmt.Errorf("workload: explicit workload needs at least one task")
	}
	e := &Explicit{
		times:  append([]float64(nil), times...),
		prefix: make([]float64, len(times)+1),
	}
	var sum, sum2 float64
	for i, t := range times {
		if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
			return nil, fmt.Errorf("workload: task %d time %v must be non-negative and finite", i, t)
		}
		e.prefix[i+1] = e.prefix[i] + t
		sum += t
		sum2 += t * t
	}
	n := float64(len(times))
	e.mean = sum / n
	variance := sum2/n - e.mean*e.mean
	if variance < 0 {
		variance = 0
	}
	e.std = math.Sqrt(variance)
	return e, nil
}

// Len returns the number of tasks the workload describes.
func (w *Explicit) Len() int64 { return int64(len(w.times)) }

func (w *Explicit) Name() string { return "explicit" }

// Time returns task i's recorded time; out-of-range indices are zero
// (the simulators never exceed the scheduled task count).
func (w *Explicit) Time(i int64, _ *rng.Rand48) float64 {
	if i < 0 || i >= int64(len(w.times)) {
		return 0
	}
	return w.times[i]
}

// ChunkTime returns the recorded total of tasks [start, start+count) in
// O(1) using the prefix sums. Ranges are clamped to the recorded tasks.
func (w *Explicit) ChunkTime(start, count int64, _ *rng.Rand48) float64 {
	if count <= 0 {
		return 0
	}
	lo, hi := start, start+count
	if lo < 0 {
		lo = 0
	}
	if max := int64(len(w.times)); hi > max {
		hi = max
	}
	if lo >= hi {
		return 0
	}
	return w.prefix[hi] - w.prefix[lo]
}

func (w *Explicit) Mean() float64       { return w.mean }
func (w *Explicit) Std() float64        { return w.std }
func (w *Explicit) Deterministic() bool { return true }
