package engine

import (
	"context"
	"fmt"

	"repro/internal/des"
	"repro/internal/rng"
	"repro/internal/sched"
)

// desBackend runs the master–worker loop directly on the process-oriented
// discrete-event kernel (internal/des): one process per worker, the
// master folded into the (zero-cost) chunk calculation at request time.
// It models exactly the dynamics of the sim backend — free communication
// by default, optional master serialization and per-message cost — but
// exercises the kernel's cooperative scheduling instead of an event heap,
// cross-validating the two event orderings.
type desBackend struct{}

func init() { Register(desBackend{}) }

func (desBackend) Name() string { return "des" }

func (desBackend) Run(ctx context.Context, spec RunSpec) (*RunResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r, err := desBackend{}.NewRunner(spec) // validates the spec
	if err != nil {
		return nil, err
	}
	return r.Run(ctx, spec)
}

// desRunner amortizes per-run setup across replications of one point:
// the spec is validated once, worker names are formatted once, the
// scheduler is Reset instead of rebuilt, and the result slices and
// rand48 state are reused. The kernel itself is rebuilt per run — its
// goroutine processes cannot be recycled — so the des path is cheaper
// than before but not allocation-free (it never was; it exists for
// cross-validation, not throughput).
type desRunner struct {
	s     sched.Scheduler
	reset sched.Resetter
	names []string
	rng   rng.Rand48
	out   RunResult
}

// NewRunner implements RunnerBackend.
func (desBackend) NewRunner(spec RunSpec) (Runner, error) {
	r := &desRunner{}
	if err := r.Rebind(spec); err != nil {
		return nil, err
	}
	return r, nil
}

// Rebind implements Rebinder: validate the new point and rebuild the
// scheduler, growing the pooled name and result buffers only when the
// new point has more workers than any point this runner served before.
func (r *desRunner) Rebind(spec RunSpec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	s, err := spec.Scheduler()
	if err != nil {
		return err
	}
	r.s = s
	r.reset, _ = s.(sched.Resetter)
	if cap(r.names) < spec.P {
		// Fill the whole backing array so later re-slicing to a larger P
		// within capacity always exposes initialized names.
		r.names = make([]string, spec.P)
		for w := range r.names {
			r.names[w] = fmt.Sprintf("worker-%d", w)
		}
		r.out.Compute = make([]float64, spec.P)
		r.out.OpsPerWorker = make([]int64, spec.P)
		r.out.TasksPerWorker = make([]int64, spec.P)
	} else {
		r.names = r.names[:spec.P]
		r.out.Compute = r.out.Compute[:spec.P]
		r.out.OpsPerWorker = r.out.OpsPerWorker[:spec.P]
		r.out.TasksPerWorker = r.out.TasksPerWorker[:spec.P]
	}
	return nil
}

func (r *desRunner) Run(ctx context.Context, spec RunSpec) (*RunResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s := r.s
	if r.reset != nil {
		r.reset.Reset()
	} else {
		var err error
		if s, err = spec.Scheduler(); err != nil {
			return nil, err
		}
	}
	r.rng.SetState(spec.RNGState)
	res := &r.out
	res.Makespan = 0
	res.SchedOps = 0
	res.CommTime = 0
	res.MasterBusy = 0
	for w := 0; w < spec.P; w++ {
		res.Compute[w] = 0
		res.OpsPerWorker[w] = 0
		res.TasksPerWorker[w] = 0
	}

	// The kernel runs exactly one process at a time, so the shared
	// scheduler, task counter and result require no locking.
	k := des.New()
	var nextTask int64
	var masterFree float64
	var runErr error
	for w := 0; w < spec.P; w++ {
		w := w
		start := 0.0
		if spec.StartTimes != nil {
			start = spec.StartTimes[w]
		}
		speed := 1.0
		if spec.Speeds != nil {
			speed = spec.Speeds[w]
		}
		k.SpawnAt(start, r.names[w], func(p *des.Process) {
			for {
				t := p.Now()
				serviceEnd := t
				if spec.HInDynamics {
					st := t
					if masterFree > st {
						st = masterFree
					}
					serviceEnd = st + spec.H
					masterFree = serviceEnd
					res.MasterBusy += spec.H
				}
				chunk := s.Next(w, t)
				if chunk == 0 {
					return
				}
				chunkStart := nextTask
				exec := spec.Work.ChunkTime(nextTask, chunk, &r.rng)
				nextTask += chunk
				if speed <= 0 {
					if runErr == nil {
						runErr = fmt.Errorf("engine: des: non-positive speed %v for worker %d", speed, w)
					}
					return
				}
				exec /= speed
				done := serviceEnd + spec.PerMessageCost + exec
				res.CommTime += spec.PerMessageCost
				res.Compute[w] += exec
				res.OpsPerWorker[w]++
				res.TasksPerWorker[w] += chunk
				res.SchedOps++
				s.Report(w, chunk, exec, done)
				if spec.Observe != nil {
					spec.Observe(w, chunkStart, chunk, serviceEnd, done)
				}
				if done > res.Makespan {
					res.Makespan = done
				}
				p.Hold(done - t)
			}
		})
	}
	if err := k.Run(); err != nil {
		return nil, fmt.Errorf("engine: des backend: %w", err)
	}
	if runErr != nil {
		return nil, runErr
	}
	return res, nil
}
