package engine

import (
	"context"

	"repro/internal/metrics"
	"repro/internal/workload"
)

// Campaign describes a (point × replication) grid of independent runs —
// the shape of every experiment in the paper (1000 replications per grid
// cell, §IV). The runner fans the grid out over a bounded worker pool;
// results are bit-identical for a given seed regardless of Workers or
// completion order, because each run's stream is derived from its
// (point, replication) coordinates and per-run metrics are reduced in
// replication order, never in completion order.
type Campaign struct {
	// Backend names the registered simulation backend; "" selects
	// DefaultBackend.
	Backend string

	// Points are the grid's distinct configurations (technique ×
	// parameters). A point's RNGState is the point's base seed; the
	// per-replication state comes from SeedFor.
	Points []RunSpec

	// Replications is the number of independent runs per point
	// (paper: 1000).
	Replications int

	// Workers bounds the concurrently executing runs; 0 selects
	// GOMAXPROCS.
	Workers int

	// ChunkSize is the number of consecutive replications of one point
	// executed per work item. Larger chunks amortize pipeline overhead;
	// smaller chunks balance load. 0 auto-sizes from the grid and the
	// worker count. Results are bit-identical for every chunk size.
	ChunkSize int

	// SeedFor derives the rand48 state of run (point, rep). Nil selects
	// rng.RunSeed(Points[point].RNGState, rep), the derivation the
	// experiment layer has always used.
	SeedFor func(point, rep int) uint64

	// KeepRuns retains per-run metrics and full results in the
	// aggregates (needed for the paper's Figure 9 per-run analysis).
	KeepRuns bool

	// disableRunners forces the generic Backend.Run path even when the
	// backend implements RunnerBackend. Test hook: the golden
	// determinism tests prove the amortized runner path bit-identical to
	// this one.
	disableRunners bool

	// disablePartials forces per-run event delivery even when every sink
	// supports chunk-granular partials. Test hook: the golden fast-path
	// tests prove the aggregate bypass bit-identical to the ordered sink
	// path.
	disablePartials bool
}

// RunMetrics are the per-run scalars the campaigns of the paper report.
// The JSON encoding is the cache's persistent per-run format; floats
// round-trip bit-exactly (shortest-form encoding).
type RunMetrics struct {
	Wasted   float64 `json:"wasted"` // average wasted time (paper §III-B), H charged per op
	Makespan float64 `json:"makespan"`
	Speedup  float64 `json:"speedup"` // sequential time over makespan
	SchedOps int64   `json:"sched_ops"`
}

// Aggregate summarizes all replications of one campaign point.
type Aggregate struct {
	Spec RunSpec // the point, with RNGState as passed in

	Wasted   metrics.Summary
	Makespan metrics.Summary
	Speedup  metrics.Summary
	MeanOps  float64 // mean scheduling operations per run

	PerRun  []RunMetrics // per-run metrics, replication order (KeepRuns)
	Results []*RunResult // full per-run results (KeepRuns)
}

// CampaignResult holds one aggregate per campaign point, aligned with
// Campaign.Points.
type CampaignResult struct {
	Aggregates []Aggregate

	// Overall is the deterministic roll-up of the per-point wasted-time
	// accumulators, merged in point order.
	Overall metrics.Accumulator
}

// Run executes the campaign and aggregates every point. It is a buffered
// view over Stream: an aggregating sink consumes the ordered event
// stream, so the aggregates are bit-identical to what any other sink
// arrangement observes. The first run error aborts the remaining grid
// and is returned; cancelling ctx aborts it with an error wrapping
// ctx.Err().
func (c Campaign) Run(ctx context.Context) (*CampaignResult, error) {
	return c.RunWith(ctx)
}

// RunWith executes the campaign like Run while additionally streaming
// every run event to the given sinks (e.g. a CSV writer exporting raw
// per-run data alongside the aggregation).
func (c Campaign) RunWith(ctx context.Context, sinks ...Sink) (*CampaignResult, error) {
	agg := newAggregateSink(c.Points, c.Replications, c.KeepRuns, c.KeepRuns)
	if err := c.Stream(ctx, append([]Sink{agg}, sinks...)...); err != nil {
		return nil, err
	}
	return &CampaignResult{Aggregates: agg.Aggregates(), Overall: agg.Overall()}, nil
}

// pointMetrics reduces one run result to the campaign's per-run scalars.
func pointMetrics(spec RunSpec, res *RunResult) RunMetrics {
	m := RunMetrics{
		Wasted:   metrics.AverageWasted(res.Makespan, res.Compute, res.SchedOps, spec.H),
		Makespan: res.Makespan,
		SchedOps: res.SchedOps,
	}
	if res.Makespan > 0 {
		m.Speedup = workload.Total(spec.Work, spec.N) / res.Makespan
	}
	return m
}
