package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/workload"
)

// Campaign describes a (point × replication) grid of independent runs —
// the shape of every experiment in the paper (1000 replications per grid
// cell, §IV). The runner fans the grid out over a bounded worker pool;
// results are bit-identical for a given seed regardless of Workers or
// completion order, because each run's stream is derived from its
// (point, replication) coordinates and per-run metrics are reduced in
// replication order, never in completion order.
type Campaign struct {
	// Backend names the registered simulation backend; "" selects
	// DefaultBackend.
	Backend string

	// Points are the grid's distinct configurations (technique ×
	// parameters). A point's RNGState is the point's base seed; the
	// per-replication state comes from SeedFor.
	Points []RunSpec

	// Replications is the number of independent runs per point
	// (paper: 1000).
	Replications int

	// Workers bounds the concurrently executing runs; 0 selects
	// GOMAXPROCS.
	Workers int

	// SeedFor derives the rand48 state of run (point, rep). Nil selects
	// rng.RunSeed(Points[point].RNGState, rep), the derivation the
	// experiment layer has always used.
	SeedFor func(point, rep int) uint64

	// KeepRuns retains per-run metrics and full results in the
	// aggregates (needed for the paper's Figure 9 per-run analysis).
	KeepRuns bool
}

// RunMetrics are the per-run scalars the campaigns of the paper report.
type RunMetrics struct {
	Wasted   float64 // average wasted time (paper §III-B), H charged per op
	Makespan float64
	Speedup  float64 // sequential time over makespan
	SchedOps int64
}

// Aggregate summarizes all replications of one campaign point.
type Aggregate struct {
	Spec RunSpec // the point, with RNGState as passed in

	Wasted   metrics.Summary
	Makespan metrics.Summary
	Speedup  metrics.Summary
	MeanOps  float64 // mean scheduling operations per run

	PerRun  []RunMetrics // per-run metrics, replication order (KeepRuns)
	Results []*RunResult // full per-run results (KeepRuns)
}

// CampaignResult holds one aggregate per campaign point, aligned with
// Campaign.Points.
type CampaignResult struct {
	Aggregates []Aggregate
}

// Run executes the campaign. The first run error aborts the remaining
// grid and is returned.
func (c Campaign) Run() (*CampaignResult, error) {
	if len(c.Points) == 0 {
		return nil, fmt.Errorf("engine: campaign has no points")
	}
	if c.Replications <= 0 {
		return nil, fmt.Errorf("engine: Replications must be positive, got %d", c.Replications)
	}
	be, err := New(c.Backend)
	if err != nil {
		return nil, err
	}
	for i, pt := range c.Points {
		if err := pt.Validate(); err != nil {
			return nil, fmt.Errorf("engine: campaign point %d: %w", i, err)
		}
	}
	seedFor := c.SeedFor
	if seedFor == nil {
		seedFor = func(point, rep int) uint64 {
			return rng.RunSeed(c.Points[point].RNGState, rep)
		}
	}
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	reps := c.Replications
	total := len(c.Points) * reps
	if workers > total {
		workers = total
	}

	perRun := make([][]RunMetrics, len(c.Points))
	var results [][]*RunResult
	if c.KeepRuns {
		results = make([][]*RunResult, len(c.Points))
	}
	for i := range c.Points {
		perRun[i] = make([]RunMetrics, reps)
		if c.KeepRuns {
			results[i] = make([]*RunResult, reps)
		}
	}

	var (
		next     atomic.Int64
		failed   atomic.Bool
		errMu    sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		failed.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				j := next.Add(1) - 1
				if j >= int64(total) || failed.Load() {
					return
				}
				pi, rep := int(j)/reps, int(j)%reps
				spec := c.Points[pi]
				spec.RNGState = seedFor(pi, rep)
				res, err := be.Run(spec)
				if err != nil {
					fail(fmt.Errorf("engine: point %d replication %d: %w", pi, rep, err))
					return
				}
				perRun[pi][rep] = pointMetrics(spec, res)
				if c.KeepRuns {
					results[pi][rep] = res
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	out := &CampaignResult{Aggregates: make([]Aggregate, len(c.Points))}
	for pi := range c.Points {
		agg := Aggregate{Spec: c.Points[pi]}
		wasted := make([]float64, reps)
		makespans := make([]float64, reps)
		speedups := make([]float64, reps)
		var opsSum int64
		for rep, m := range perRun[pi] {
			wasted[rep] = m.Wasted
			makespans[rep] = m.Makespan
			speedups[rep] = m.Speedup
			opsSum += m.SchedOps
		}
		agg.Wasted = metrics.Summarize(wasted)
		agg.Makespan = metrics.Summarize(makespans)
		agg.Speedup = metrics.Summarize(speedups)
		agg.MeanOps = float64(opsSum) / float64(reps)
		if c.KeepRuns {
			agg.PerRun = perRun[pi]
			agg.Results = results[pi]
		}
		out.Aggregates[pi] = agg
	}
	return out, nil
}

// pointMetrics reduces one run result to the campaign's per-run scalars.
func pointMetrics(spec RunSpec, res *RunResult) RunMetrics {
	m := RunMetrics{
		Wasted:   metrics.AverageWasted(res.Makespan, res.Compute, res.SchedOps, spec.H),
		Makespan: res.Makespan,
		SchedOps: res.SchedOps,
	}
	if res.Makespan > 0 {
		m.Speedup = workload.Total(spec.Work, spec.N) / res.Makespan
	}
	return m
}
