package engine

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/rng"
	"repro/internal/workload"
)

func TestRegistry(t *testing.T) {
	names := Names()
	for _, want := range []string{"des", "msg", "sim"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("backend %q not registered (have %v)", want, names)
		}
	}
	for _, name := range names {
		b, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if b.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, b.Name())
		}
	}
	def, err := New("")
	if err != nil {
		t.Fatal(err)
	}
	if def.Name() != DefaultBackend {
		t.Errorf("empty name selected %q, want %q", def.Name(), DefaultBackend)
	}
	if _, err := New("simgrid"); err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Errorf("unknown backend error = %v", err)
	}
}

func TestRunSpecValidate(t *testing.T) {
	good := RunSpec{Technique: "FAC2", N: 64, P: 4, Work: workload.NewConstant(1)}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*RunSpec)
	}{
		{"N=0", func(s *RunSpec) { s.N = 0 }},
		{"P=0", func(s *RunSpec) { s.P = 0 }},
		{"nil work", func(s *RunSpec) { s.Work = nil }},
		{"short speeds", func(s *RunSpec) { s.Speeds = []float64{1} }},
		{"short starts", func(s *RunSpec) { s.StartTimes = []float64{0, 0} }},
	}
	for _, c := range cases {
		s := good
		c.mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

// relDiff returns |a-b| / max(|a|,|b|).
func relDiff(a, b float64) float64 {
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return 0
	}
	return math.Abs(a-b) / m
}

// TestCrossBackendEquivalence runs the identical spec (same technique,
// workload and rand48 state) on every backend and requires matching
// makespans: the backends consume randomness in chunk-assignment order,
// so a shared seed reproduces the run across simulators up to the msg
// model's residual free-network latency.
func TestCrossBackendEquivalence(t *testing.T) {
	specs := map[string]RunSpec{
		"constant/GSS": {
			Technique: "GSS", N: 2000, P: 8,
			Work: workload.NewConstant(0.01),
		},
		"exponential/FAC2": {
			Technique: "FAC2", N: 4096, P: 16,
			Work:     workload.NewExponential(1),
			RNGState: rng.RunSeed(99, 0),
		},
		"exponential/BOLD+h": {
			Technique: "BOLD", N: 1024, P: 8, H: 0.5,
			Work:     workload.NewExponential(1),
			RNGState: rng.RunSeed(7, 3),
		},
	}
	for label, spec := range specs {
		ref, err := simBackend{}.Run(context.Background(), spec)
		if err != nil {
			t.Fatalf("%s: sim: %v", label, err)
		}
		for _, name := range []string{"des", "msg"} {
			be, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := be.Run(context.Background(), spec)
			if err != nil {
				t.Fatalf("%s: %s: %v", label, name, err)
			}
			if d := relDiff(res.Makespan, ref.Makespan); d > 1e-6 {
				t.Errorf("%s: %s makespan %v vs sim %v (rel %g)", label, name, res.Makespan, ref.Makespan, d)
			}
			if res.SchedOps != ref.SchedOps {
				t.Errorf("%s: %s ops %d vs sim %d", label, name, res.SchedOps, ref.SchedOps)
			}
			var tasks int64
			for _, k := range res.TasksPerWorker {
				tasks += k
			}
			if tasks != spec.N {
				t.Errorf("%s: %s executed %d tasks, want %d", label, name, tasks, spec.N)
			}
		}
	}
}

// TestDesBackendFullSurface checks the knobs the des backend shares with
// sim: heterogeneous speeds, start skew, master serialization, message
// cost and observation all behave as in the event-heap simulator.
func TestDesBackendFullSurface(t *testing.T) {
	spec := RunSpec{
		Technique:      "SS",
		N:              500,
		P:              4,
		Work:           workload.NewConstant(0.01),
		Speeds:         []float64{3, 1, 1, 1},
		StartTimes:     []float64{0, 0, 0, 2},
		H:              0.01,
		HInDynamics:    true,
		PerMessageCost: 1e-4,
	}
	var simEvents, desEvents int
	simSpec := spec
	simSpec.Observe = func(int, int64, int64, float64, float64) { simEvents++ }
	ref, err := simBackend{}.Run(context.Background(), simSpec)
	if err != nil {
		t.Fatal(err)
	}
	desSpec := spec
	desSpec.Observe = func(int, int64, int64, float64, float64) { desEvents++ }
	res, err := desBackend{}.Run(context.Background(), desSpec)
	if err != nil {
		t.Fatal(err)
	}
	if d := relDiff(res.Makespan, ref.Makespan); d > 1e-9 {
		t.Errorf("makespan %v vs sim %v", res.Makespan, ref.Makespan)
	}
	if res.MasterBusy != ref.MasterBusy || relDiff(res.CommTime, ref.CommTime) > 1e-9 {
		t.Errorf("master/comm (%v, %v) vs sim (%v, %v)",
			res.MasterBusy, res.CommTime, ref.MasterBusy, ref.CommTime)
	}
	if simEvents == 0 || simEvents != desEvents {
		t.Errorf("observed %d sim events vs %d des events", simEvents, desEvents)
	}
	// The late-starting PE must execute fewer tasks than the on-time
	// 1x PEs (the serialized master otherwise levels the distribution).
	if res.TasksPerWorker[3] >= res.TasksPerWorker[1] {
		t.Errorf("start skew ignored: tasks = %v", res.TasksPerWorker)
	}
}

func TestMsgBackendRejectsUnsupported(t *testing.T) {
	base := RunSpec{Technique: "FAC2", N: 64, P: 2, Work: workload.NewConstant(0.01)}
	withStarts := base
	withStarts.StartTimes = []float64{0, 1}
	if _, err := (msgBackend{}).Run(context.Background(), withStarts); err == nil {
		t.Error("msg backend accepted start times")
	}
	withObserve := base
	withObserve.Observe = func(int, int64, int64, float64, float64) {}
	if _, err := (msgBackend{}).Run(context.Background(), withObserve); err == nil {
		t.Error("msg backend accepted an observer")
	}
}

func TestBackendUnknownTechnique(t *testing.T) {
	spec := RunSpec{Technique: "LIFO", N: 64, P: 2, Work: workload.NewConstant(0.01)}
	// The real simulator backends only — other tests register
	// instrumented backends (blocking, counting) that skip validation.
	for _, name := range []string{"sim", "des", "msg"} {
		be, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := be.Run(context.Background(), spec); err == nil {
			t.Errorf("%s accepted unknown technique", name)
		}
	}
}
