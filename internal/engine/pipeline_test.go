package engine

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/cache"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// countingBackend delegates to the sim backend while counting Run calls —
// the instrument behind the cache acceptance test: a repeated campaign
// served from the cache must perform zero backend runs.
type countingBackend struct {
	calls atomic.Int64
}

func (b *countingBackend) Name() string { return "counting" }

func (b *countingBackend) Run(ctx context.Context, spec RunSpec) (*RunResult, error) {
	b.calls.Add(1)
	be, err := New("sim")
	if err != nil {
		return nil, err
	}
	return be.Run(ctx, spec)
}

var counting = &countingBackend{}

func init() { Register(counting) }

func countingSpec() CampaignSpec {
	return CampaignSpec{
		Backend:      "counting",
		Techniques:   []string{"FAC2", "SS"},
		Ns:           []int64{256},
		Ps:           []int{2, 4},
		Workload:     workload.Spec{Kind: "exponential", P1: 1},
		H:            0.5,
		Replications: 4,
		Seed:         99,
	}
}

// TestStreamingBitIdenticalToBufferedPath is the pipeline's core
// guarantee: aggregates assembled from the streaming event order are
// bit-identical to buffering every per-run value and summarizing the
// slice (the pre-pipeline path), for a fixed seed and any worker count.
func TestStreamingBitIdenticalToBufferedPath(t *testing.T) {
	spec := testSpec()
	points, err := spec.Points()
	if err != nil {
		t.Fatal(err)
	}

	// Buffered reference: collect every run's metrics serially in
	// replication order, then summarize the slices.
	be, err := New("sim")
	if err != nil {
		t.Fatal(err)
	}
	seedFor := spec.seedFunc(points)
	wasted := make([][]float64, len(points))
	makespan := make([][]float64, len(points))
	for pi, pt := range points {
		for rep := 0; rep < spec.Replications; rep++ {
			run := pt
			run.RNGState = seedFor(pi, rep)
			res, err := be.Run(context.Background(), run)
			if err != nil {
				t.Fatal(err)
			}
			m := pointMetrics(run, res)
			wasted[pi] = append(wasted[pi], m.Wasted)
			makespan[pi] = append(makespan[pi], m.Makespan)
		}
	}

	for _, workers := range []int{1, 3, 8} {
		res, err := spec.Execute(context.Background(), ExecConfig{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for pi := range points {
			if got, want := res.Aggregates[pi].Wasted, metrics.Summarize(wasted[pi]); got != want {
				t.Fatalf("workers=%d point %d: streaming wasted %+v != buffered %+v", workers, pi, got, want)
			}
			if got, want := res.Aggregates[pi].Makespan, metrics.Summarize(makespan[pi]); got != want {
				t.Fatalf("workers=%d point %d: streaming makespan %+v != buffered %+v", workers, pi, got, want)
			}
		}
	}
}

// TestCacheServesRepeatWithZeroBackendRuns is the cache acceptance
// criterion: a repeated campaign with the same spec performs zero backend
// Run calls and returns bit-identical aggregates.
func TestCacheServesRepeatWithZeroBackendRuns(t *testing.T) {
	spec := countingSpec()
	store := cache.NewMemory()

	before := counting.calls.Load()
	first, err := spec.Execute(context.Background(), ExecConfig{Cache: store, KeepPerRun: true})
	if err != nil {
		t.Fatal(err)
	}
	liveRuns := counting.calls.Load() - before
	wantRuns := int64(len(spec.Techniques) * len(spec.Ps) * spec.Replications)
	if liveRuns != wantRuns {
		t.Fatalf("first execution performed %d backend runs, want %d", liveRuns, wantRuns)
	}

	before = counting.calls.Load()
	second, err := spec.Execute(context.Background(), ExecConfig{Cache: store, KeepPerRun: true})
	if err != nil {
		t.Fatal(err)
	}
	if cachedRuns := counting.calls.Load() - before; cachedRuns != 0 {
		t.Fatalf("cached execution performed %d backend runs, want 0", cachedRuns)
	}

	if len(first.Aggregates) != len(second.Aggregates) {
		t.Fatal("aggregate counts differ between live and cached execution")
	}
	for i := range first.Aggregates {
		a, b := first.Aggregates[i], second.Aggregates[i]
		if a.Wasted != b.Wasted || a.Makespan != b.Makespan || a.Speedup != b.Speedup || a.MeanOps != b.MeanOps {
			t.Fatalf("point %d: cached aggregate differs from live", i)
		}
		if len(a.PerRun) != len(b.PerRun) {
			t.Fatalf("point %d: per-run lengths differ", i)
		}
		for r := range a.PerRun {
			if a.PerRun[r] != b.PerRun[r] {
				t.Fatalf("point %d run %d: cached per-run metrics differ from live", i, r)
			}
		}
	}
	if first.Overall != second.Overall {
		t.Fatal("cached overall roll-up differs from live")
	}
}

// TestCacheReplayFeedsSinksIdentically verifies the replay path delivers
// the exact event stream a live execution does: the streamed CSV bytes of
// a cache hit equal those of the original run.
func TestCacheReplayFeedsSinksIdentically(t *testing.T) {
	spec := countingSpec()
	store := cache.NewMemory()

	var live bytes.Buffer
	if _, err := spec.Execute(context.Background(), ExecConfig{Cache: store, Sinks: []Sink{NewCSVSink(&live)}}); err != nil {
		t.Fatal(err)
	}
	var replayed bytes.Buffer
	before := counting.calls.Load()
	if _, err := spec.Execute(context.Background(), ExecConfig{Cache: store, Sinks: []Sink{NewCSVSink(&replayed)}}); err != nil {
		t.Fatal(err)
	}
	if counting.calls.Load() != before {
		t.Fatal("replay performed backend runs")
	}
	if live.String() != replayed.String() {
		t.Fatalf("replayed CSV differs from live:\nlive:\n%s\nreplayed:\n%s", live.String(), replayed.String())
	}
	if rows := strings.Count(live.String(), "\n"); rows != 1+len(spec.Techniques)*len(spec.Ps)*spec.Replications {
		t.Fatalf("CSV has %d rows", rows)
	}
}

// TestCacheCorruptEntryFallsBackToLiveRun: an undecodable or mismatched
// cache entry must demote to a miss, not fail the campaign.
func TestCacheCorruptEntryFallsBackToLiveRun(t *testing.T) {
	spec := countingSpec()
	store := cache.NewMemory()
	hash, err := spec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put(context.Background(), hash, []byte("{not json")); err != nil {
		t.Fatal(err)
	}
	before := counting.calls.Load()
	if _, err := spec.Execute(context.Background(), ExecConfig{Cache: store}); err != nil {
		t.Fatal(err)
	}
	if counting.calls.Load() == before {
		t.Fatal("corrupt cache entry was served instead of re-running")
	}
	// The live run must have overwritten the corrupt entry.
	before = counting.calls.Load()
	if _, err := spec.Execute(context.Background(), ExecConfig{Cache: store}); err != nil {
		t.Fatal(err)
	}
	if counting.calls.Load() != before {
		t.Fatal("repaired cache entry not served")
	}
}

// TestSinkOutputDeterministicAcrossWorkers: the reorder stage must make
// streamed bytes independent of worker count and completion order.
func TestSinkOutputDeterministicAcrossWorkers(t *testing.T) {
	spec := testSpec()
	render := func(workers int) string {
		var buf bytes.Buffer
		if _, err := spec.Execute(context.Background(), ExecConfig{Workers: workers, Sinks: []Sink{NewCSVSink(&buf)}}); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	ref := render(1)
	for _, workers := range []int{2, 5, 16} {
		if got := render(workers); got != ref {
			t.Fatalf("workers=%d: streamed CSV differs from serial", workers)
		}
	}
}

// errorSink fails on the nth Consume call.
type errorSink struct {
	n      int
	closed bool
}

func (s *errorSink) Consume(context.Context, Event) error {
	s.n--
	if s.n <= 0 {
		return fmt.Errorf("sink full")
	}
	return nil
}

func (s *errorSink) Close() error {
	s.closed = true
	return nil
}

func TestSinkErrorAbortsCampaign(t *testing.T) {
	sink := &errorSink{n: 3}
	err := Campaign{
		Points:       []RunSpec{testPoint(5)},
		Replications: 20,
	}.Stream(context.Background(), sink)
	if err == nil || !strings.Contains(err.Error(), "sink full") {
		t.Fatalf("sink error not propagated: %v", err)
	}
	if !sink.closed {
		t.Fatal("sink not closed after abort")
	}
}

func TestJSONLSinkShape(t *testing.T) {
	var buf bytes.Buffer
	spec := countingSpec()
	if _, err := spec.Execute(context.Background(), ExecConfig{Sinks: []Sink{NewJSONLSink(&buf)}}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if want := len(spec.Techniques) * len(spec.Ps) * spec.Replications; len(lines) != want {
		t.Fatalf("JSONL has %d lines, want %d", len(lines), want)
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, `{"point":`) || !strings.Contains(line, `"makespan_s":`) {
			t.Fatalf("unexpected JSONL line: %s", line)
		}
	}
}

// TestSinksClosedOnEarlyValidationError: the "all sinks are closed
// before Stream returns" contract must hold on every error path,
// including rejection before any run executes.
func TestSinksClosedOnEarlyValidationError(t *testing.T) {
	cases := map[string]Campaign{
		"no points":    {Replications: 2},
		"reps=0":       {Points: []RunSpec{testPoint(1)}},
		"bad backend":  {Points: []RunSpec{testPoint(1)}, Replications: 2, Backend: "nope"},
		"bad point":    {Points: []RunSpec{{Technique: "FAC2"}}, Replications: 2},
		"backend fail": {Points: []RunSpec{{Technique: "LIFO", N: 8, P: 2, Work: workload.NewConstant(1)}}, Replications: 2},
	}
	for name, c := range cases {
		sink := &errorSink{n: 1 << 30}
		if err := c.Stream(context.Background(), sink); err == nil {
			t.Errorf("%s: invalid campaign accepted", name)
		}
		if !sink.closed {
			t.Errorf("%s: sink not closed on early error", name)
		}
	}
}

// TestStreamBoundedReorderUnderSkew: wildly different run durations
// across points (SS is orders of magnitude more ops than STAT) must not
// change the delivered order or the aggregates for any worker count.
func TestStreamBoundedReorderUnderSkew(t *testing.T) {
	points := []RunSpec{
		{Technique: "SS", N: 20000, P: 2, Work: workload.NewConstant(0.001), H: 0.5},
		{Technique: "STAT", N: 64, P: 2, Work: workload.NewConstant(0.001)},
	}
	run := func(workers int) *CampaignResult {
		res, err := Campaign{Points: points, Replications: 8, Workers: workers}.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	for _, workers := range []int{2, 6} {
		got := run(workers)
		for i := range ref.Aggregates {
			if got.Aggregates[i].Wasted != ref.Aggregates[i].Wasted {
				t.Fatalf("workers=%d point %d: aggregates differ under skew", workers, i)
			}
		}
	}
}

// failingStore errors on Get — a broken cache must close sinks too.
type failingStore struct{}

func (failingStore) Get(context.Context, string) ([]byte, bool, error) {
	return nil, false, fmt.Errorf("cache broken")
}
func (failingStore) Put(context.Context, string, []byte) error { return fmt.Errorf("cache broken") }

// TestExecuteClosesSinksOnEarlyError: Execute error paths before the
// stream starts (invalid spec, failing cache) still close every sink.
func TestExecuteClosesSinksOnEarlyError(t *testing.T) {
	bad := countingSpec()
	bad.Replications = 0
	sink := &errorSink{n: 1 << 30}
	if _, err := bad.Execute(context.Background(), ExecConfig{Sinks: []Sink{sink}}); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if !sink.closed {
		t.Fatal("sink not closed on spec validation error")
	}

	sink = &errorSink{n: 1 << 30}
	if _, err := countingSpec().Execute(context.Background(), ExecConfig{Cache: failingStore{}, Sinks: []Sink{sink}}); err == nil {
		t.Fatal("failing cache Get not propagated")
	}
	if !sink.closed {
		t.Fatal("sink not closed on cache error")
	}
}
