package engine

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/metrics"
)

// randomEntry builds a (perRun, result) pair with adversarial float
// content: ordinary values mixed with -0, ±Inf and NaN payloads, all of
// which the binary codec must round-trip bit-exactly.
func randomEntry(r *rand.Rand, points, reps int) ([][]RunMetrics, *CampaignResult) {
	specials := []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.NaN(), 1e-308, -1e308}
	f := func() float64 {
		if r.Intn(4) == 0 {
			return specials[r.Intn(len(specials))]
		}
		return r.NormFloat64() * math.Pow(10, float64(r.Intn(40)-20))
	}
	perRun := make([][]RunMetrics, points)
	for pi := range perRun {
		perRun[pi] = make([]RunMetrics, reps)
		for rep := range perRun[pi] {
			perRun[pi][rep] = RunMetrics{Wasted: f(), Makespan: f(), Speedup: f(), SchedOps: r.Int63()}
		}
	}
	sum := func() metrics.Summary {
		return metrics.Summary{N: reps, Mean: f(), Std: f(), Min: f(), Max: f(), Median: f()}
	}
	res := &CampaignResult{
		Aggregates: make([]Aggregate, points),
		Overall:    metrics.Accumulator{Count: int64(points * reps), Sum: f(), MeanV: f(), M2: f(), MinV: f(), MaxV: f()},
	}
	for pi := range res.Aggregates {
		res.Aggregates[pi] = Aggregate{Wasted: sum(), Makespan: sum(), Speedup: sum(), MeanOps: f()}
	}
	return perRun, res
}

// sameBits compares float64s by bit pattern, so NaN == NaN and -0 != +0.
func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func sameMetricsBits(a, b RunMetrics) bool {
	return sameBits(a.Wasted, b.Wasted) && sameBits(a.Makespan, b.Makespan) &&
		sameBits(a.Speedup, b.Speedup) && a.SchedOps == b.SchedOps
}

// TestCacheCodecRoundTrip is the codec's property test: across many
// random grids — including degenerate shapes and adversarial float
// values — encode → decode reproduces every per-run record and every
// snapshot field bit-exactly.
func TestCacheCodecRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(20170601))
	shapes := [][2]int{{1, 1}, {1, 7}, {5, 1}, {3, 4}, {8, 16}, {2, 100}}
	for iter := 0; iter < 50; iter++ {
		shape := shapes[iter%len(shapes)]
		points, reps := shape[0], shape[1]
		perRun, res := randomEntry(r, points, reps)
		key := "spec-hash-" + string(rune('a'+iter%26))

		data := encodeCacheEntry(key, perRun, res)
		ent, ok := decodeCacheEntry(data, key, points, reps)
		if !ok {
			t.Fatalf("iter %d: freshly encoded entry does not decode", iter)
		}
		if ent.snap == nil {
			t.Fatalf("iter %d: snapshot section missing", iter)
		}

		got := ent.perRunMetrics()
		for pi := range perRun {
			for rep := range perRun[pi] {
				if !sameMetricsBits(got[pi][rep], perRun[pi][rep]) {
					t.Fatalf("iter %d: point %d rep %d: %+v != %+v", iter, pi, rep, got[pi][rep], perRun[pi][rep])
				}
			}
		}

		specs := make([]RunSpec, points)
		back := ent.snap.result(specs)
		if o, w := back.Overall, res.Overall; o.Count != w.Count || !sameBits(o.Sum, w.Sum) ||
			!sameBits(o.MeanV, w.MeanV) || !sameBits(o.M2, w.M2) ||
			!sameBits(o.MinV, w.MinV) || !sameBits(o.MaxV, w.MaxV) {
			t.Fatalf("iter %d: overall accumulator did not round-trip", iter)
		}
		for pi := range res.Aggregates {
			w, g := res.Aggregates[pi], back.Aggregates[pi]
			for _, pair := range [][2]metrics.Summary{{w.Wasted, g.Wasted}, {w.Makespan, g.Makespan}, {w.Speedup, g.Speedup}} {
				a, b := pair[0], pair[1]
				if a.N != b.N || !sameBits(a.Mean, b.Mean) || !sameBits(a.Std, b.Std) ||
					!sameBits(a.Min, b.Min) || !sameBits(a.Max, b.Max) || !sameBits(a.Median, b.Median) {
					t.Fatalf("iter %d point %d: summary did not round-trip: %+v != %+v", iter, pi, b, a)
				}
			}
			if !sameBits(w.MeanOps, g.MeanOps) {
				t.Fatalf("iter %d point %d: MeanOps did not round-trip", iter, pi)
			}
		}
	}
}

// TestCacheCodecRejectsTampering: every class of damage — wrong key,
// wrong grid shape, truncation, a single flipped bit anywhere — must
// demote the entry to a miss, never decode to plausible-but-wrong data.
func TestCacheCodecRejectsTampering(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	perRun, res := randomEntry(r, 2, 3)
	data := encodeCacheEntry("the-key", perRun, res)

	if _, ok := decodeCacheEntry(data, "other-key", 2, 3); ok {
		t.Error("entry decoded under a different spec hash")
	}
	if _, ok := decodeCacheEntry(data, "the-key", 3, 3); ok {
		t.Error("entry decoded with wrong point count")
	}
	if _, ok := decodeCacheEntry(data, "the-key", 2, 4); ok {
		t.Error("entry decoded with wrong replication count")
	}
	for _, cut := range []int{1, 7, len(data) / 2, len(data) - 1} {
		if _, ok := decodeCacheEntry(data[:cut], "the-key", 2, 3); ok {
			t.Errorf("entry truncated to %d bytes decoded", cut)
		}
	}
	// Flip one bit at a spread of offsets, including magic, header,
	// snapshot, records and the checksum itself.
	for off := 0; off < len(data); off += 11 {
		tampered := append([]byte(nil), data...)
		tampered[off] ^= 0x10
		if _, ok := decodeCacheEntry(tampered, "the-key", 2, 3); ok {
			t.Errorf("bit flip at offset %d went undetected", off)
		}
	}
}

// TestCacheCodecReadsLegacyJSON: version-1 entries written by earlier
// builds must remain readable, including their validation rules.
func TestCacheCodecReadsLegacyJSON(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	perRun, _ := randomEntry(r, 2, 3)
	// JSON cannot carry NaN/Inf; keep finite values only for this path.
	for pi := range perRun {
		for rep := range perRun[pi] {
			m := &perRun[pi][rep]
			for _, f := range []*float64{&m.Wasted, &m.Makespan, &m.Speedup} {
				if math.IsNaN(*f) || math.IsInf(*f, 0) {
					*f = 1.5
				}
			}
		}
	}
	data, err := json.Marshal(cachedCampaign{
		Version: cacheFormatVersion, Hash: "legacy", Points: 2, Replications: 3, PerRun: perRun,
	})
	if err != nil {
		t.Fatal(err)
	}
	ent, ok := decodeCacheEntry(data, "legacy", 2, 3)
	if !ok {
		t.Fatal("legacy JSON entry rejected")
	}
	if ent.snap != nil {
		t.Error("legacy entry cannot carry a snapshot")
	}
	got := ent.perRunMetrics()
	for pi := range perRun {
		for rep := range perRun[pi] {
			if !sameMetricsBits(got[pi][rep], perRun[pi][rep]) {
				t.Fatalf("point %d rep %d: legacy decode mismatch", pi, rep)
			}
		}
	}
	if _, ok := decodeCacheEntry(data, "other", 2, 3); ok {
		t.Error("legacy entry decoded under a different hash")
	}
	if _, ok := decodeCacheEntry(data, "legacy", 2, 2); ok {
		t.Error("legacy entry decoded with wrong shape")
	}
}

// TestCacheBinaryCorruptionFallsBackToLiveRun is the end-to-end recovery
// test for the binary format: a campaign facing a truncated or bit-flipped
// version-2 entry re-runs live and overwrites the damage.
func TestCacheBinaryCorruptionFallsBackToLiveRun(t *testing.T) {
	spec := countingSpec()
	hash, err := spec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	// Produce a genuine version-2 entry to damage.
	seed := cache.NewMemory()
	if _, err := spec.Execute(context.Background(), ExecConfig{Cache: seed}); err != nil {
		t.Fatal(err)
	}
	good, ok, err := seed.Get(context.Background(), hash)
	if err != nil || !ok {
		t.Fatalf("no cache entry after live run (ok=%v err=%v)", ok, err)
	}
	if [4]byte(good[:4]) != cacheMagic {
		t.Fatal("live run did not write a binary entry")
	}

	damage := map[string][]byte{
		"truncated": good[:len(good)/2],
		"bit-flip":  append([]byte(nil), good...),
	}
	damage["bit-flip"][len(good)/3] ^= 0x01

	for name, bad := range damage {
		t.Run(name, func(t *testing.T) {
			store := cache.NewMemory()
			if err := store.Put(context.Background(), hash, bad); err != nil {
				t.Fatal(err)
			}
			before := counting.calls.Load()
			res, err := spec.Execute(context.Background(), ExecConfig{Cache: store})
			if err != nil {
				t.Fatal(err)
			}
			if counting.calls.Load() == before {
				t.Fatal("damaged entry was served instead of re-running")
			}
			if len(res.Aggregates) == 0 {
				t.Fatal("live fallback returned no aggregates")
			}
			// The live run must overwrite the damaged entry with a good one.
			repaired, ok, err := store.Get(context.Background(), hash)
			if err != nil || !ok {
				t.Fatalf("no repaired entry (ok=%v err=%v)", ok, err)
			}
			if _, ok := decodeCacheEntry(repaired, hash, len(spec.Techniques)*len(spec.Ps), spec.Replications); !ok {
				t.Fatal("repaired entry does not decode")
			}
			before = counting.calls.Load()
			if _, err := spec.Execute(context.Background(), ExecConfig{Cache: store}); err != nil {
				t.Fatal(err)
			}
			if counting.calls.Load() != before {
				t.Fatal("repaired entry not served")
			}
		})
	}
}

// TestCacheSnapshotServesAggregateOnlyHitWithoutRecordDecode: an
// aggregate-only hit (no sinks, no KeepPerRun) is served from the
// snapshot section and must be bit-identical to the live result.
func TestCacheSnapshotServesAggregateOnlyHit(t *testing.T) {
	spec := countingSpec()
	store := cache.NewMemory()
	live, err := spec.Execute(context.Background(), ExecConfig{Cache: store})
	if err != nil {
		t.Fatal(err)
	}
	before := counting.calls.Load()
	hit, err := spec.Execute(context.Background(), ExecConfig{Cache: store})
	if err != nil {
		t.Fatal(err)
	}
	if counting.calls.Load() != before {
		t.Fatal("snapshot hit performed backend runs")
	}
	if !reflect.DeepEqual(hit.Aggregates, live.Aggregates) || hit.Overall != live.Overall {
		t.Fatal("snapshot-served result differs from live result")
	}
}

// FuzzDecodeCacheEntry: arbitrary bytes must never panic the decoder —
// they either decode (only for a well-formed entry) or report a miss.
func FuzzDecodeCacheEntry(f *testing.F) {
	r := rand.New(rand.NewSource(42))
	perRun, res := randomEntry(r, 2, 3)
	good := encodeCacheEntry("fuzz-key", perRun, res)
	f.Add(good, "fuzz-key", 2, 3)
	f.Add(good[:len(good)-1], "fuzz-key", 2, 3)
	f.Add([]byte("DLSB"), "fuzz-key", 1, 1)
	f.Add([]byte(`{"version":1}`), "k", 1, 1)
	f.Add([]byte{}, "", 0, 0)
	f.Fuzz(func(t *testing.T, data []byte, key string, points, reps int) {
		if points < 0 || reps < 0 || points > 1<<12 || reps > 1<<12 {
			return
		}
		ent, ok := decodeCacheEntry(data, key, points, reps)
		if !ok {
			return
		}
		// A decoded entry must be internally consistent: perRunMetrics
		// must not panic and must match the declared shape.
		got := ent.perRunMetrics()
		if len(got) != points {
			t.Fatalf("decoded %d points, want %d", len(got), points)
		}
		for _, runs := range got {
			if len(runs) != reps {
				t.Fatalf("decoded %d reps, want %d", len(runs), reps)
			}
		}
	})
}
