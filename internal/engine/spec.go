package engine

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/workload"
)

// CampaignSpec is the declarative description of a whole campaign: the
// (technique × n × p) grid, the workload, the per-run parameters, the
// replication count and the seed policy. Unlike Campaign — whose points
// carry live Workload values and callbacks — a CampaignSpec is plain
// data: it serializes to JSON, round-trips losslessly, and has a
// canonical hash. Equal hashes imply bit-identical results (campaign
// execution is deterministic in the spec), which is what makes results
// content-addressable in internal/cache.
//
// Execution parameters that cannot change results (worker count, cache,
// sinks) are deliberately not part of the spec; they live in ExecConfig.
type CampaignSpec struct {
	// Backend names the registered simulation backend; "" selects
	// DefaultBackend.
	Backend string `json:"backend,omitempty"`

	// Techniques, Ns and Ps span the grid. Points expand in n-major,
	// then p, then technique order — the order the paper's tables use.
	Techniques []string `json:"techniques"`
	Ns         []int64  `json:"ns"`
	Ps         []int    `json:"ps"`

	// Workload describes the per-task execution times. A zero N is
	// substituted with each grid point's task count; a nonzero N fixes
	// the workload's shape independent of the grid (e.g. a ramp rising
	// over exactly N tasks) and participates in the spec hash.
	Workload workload.Spec `json:"workload"`

	H              float64 `json:"h,omitempty"`
	HInDynamics    bool    `json:"h_in_dynamics,omitempty"`
	PerMessageCost float64 `json:"per_message_cost,omitempty"`

	Speeds     []float64 `json:"speeds,omitempty"`
	StartTimes []float64 `json:"start_times,omitempty"`

	MinChunk int64     `json:"min_chunk,omitempty"`
	Chunk    int64     `json:"chunk,omitempty"`
	First    int64     `json:"first,omitempty"`
	Last     int64     `json:"last,omitempty"`
	Alpha    float64   `json:"alpha,omitempty"`
	Weights  []float64 `json:"weights,omitempty"`

	// Replications is the number of independent runs per grid point
	// (paper: 1000).
	Replications int `json:"replications"`

	// Seed is the campaign's base seed; SeedPolicy chooses how per-run
	// rand48 states derive from it.
	Seed       uint64 `json:"seed"`
	SeedPolicy string `json:"seed_policy,omitempty"`

	// RepOffset shifts the replication axis of the seed derivation: run r
	// of this spec draws the rand48 state that replication RepOffset+r of
	// a spec with RepOffset 0 would draw. It exists for sharding — a
	// sub-spec covering the replication window [RepOffset,
	// RepOffset+Replications) of a parent grid executes exactly the runs
	// the parent executes over that window, so a distributed coordinator
	// can split a campaign across nodes and merge the results
	// bit-identically (campaign/distrib). Everything else — event
	// indices, stream order, aggregation — stays local to this spec;
	// only the seeds shift. 0 (the default) leaves derivations untouched
	// and, being omitted from the canonical encoding, does not alter the
	// hash of existing specs.
	RepOffset int `json:"rep_offset,omitempty"`
}

// Seed policies. Each names a pure derivation from (Seed, point, rep) to
// the run's rand48 state, matching the derivations the layers above the
// engine have always used.
const (
	// SeedPerCell decorrelates every grid cell: the cell's base seed is
	// rng.CellSeed(Seed, technique, n, p) and run r draws
	// rng.RunSeed(base, r). The experiment grids use this (default).
	SeedPerCell = "cell"
	// SeedFlat derives run r's state as rng.RunSeed(Seed, r) for every
	// point — the dlsim CLI derivation.
	SeedFlat = "flat"
	// SeedFacade derives run r's state as rng.Mix64(rng.RunSeed(Seed, r))
	// — the facade's MeanWastedTime derivation, equal to a serial loop of
	// single simulations seeded rng.RunSeed(Seed, r).
	SeedFacade = "facade"
	// SeedShared gives every run of every point the identical state
	// rng.Mix64(Seed) — the facade's Compare derivation, isolating
	// technique effects from sampling noise.
	SeedShared = "shared"
)

// specHashDomain versions the canonical encoding; bump it whenever the
// encoding or the execution semantics change incompatibly, so stale
// cache entries can never be mistaken for current results.
const specHashDomain = "dlsim-campaign-v1\n"

// Normalize returns the spec with defaults made explicit (backend, seed
// policy). Specs that normalize equal are the same campaign and hash
// equal.
func (s CampaignSpec) Normalize() CampaignSpec {
	if s.Backend == "" {
		s.Backend = DefaultBackend
	}
	if s.SeedPolicy == "" {
		s.SeedPolicy = SeedPerCell
	}
	return s
}

// Validate checks the spec for executability without running anything.
func (s CampaignSpec) Validate() error {
	if len(s.Techniques) == 0 || len(s.Ns) == 0 || len(s.Ps) == 0 {
		return fmt.Errorf("engine: campaign spec: empty technique/n/p lists")
	}
	// A duplicate technique would silently collapse into one key in every
	// by-technique view of the results (Compare's map, result tables), so
	// it is almost certainly a caller mistake; reject it loudly.
	seen := make(map[string]struct{}, len(s.Techniques))
	for _, tech := range s.Techniques {
		if _, dup := seen[tech]; dup {
			return fmt.Errorf("engine: campaign spec: duplicate technique %q (each technique may appear once)", tech)
		}
		seen[tech] = struct{}{}
	}
	if s.Replications <= 0 {
		return fmt.Errorf("engine: campaign spec: replications must be positive, got %d", s.Replications)
	}
	if s.RepOffset < 0 {
		return fmt.Errorf("engine: campaign spec: rep offset must be non-negative, got %d", s.RepOffset)
	}
	switch s.Normalize().SeedPolicy {
	case SeedPerCell, SeedFlat, SeedFacade, SeedShared:
	default:
		return fmt.Errorf("engine: campaign spec: unknown seed policy %q", s.SeedPolicy)
	}
	if _, err := New(s.Backend); err != nil {
		return err
	}
	for _, n := range s.Ns {
		if n <= 0 {
			return fmt.Errorf("engine: campaign spec: n must be positive, got %d", n)
		}
	}
	for _, p := range s.Ps {
		if p <= 0 {
			return fmt.Errorf("engine: campaign spec: p must be positive, got %d", p)
		}
	}
	for _, tech := range s.Techniques {
		// Probe with the grid's first cell; per-cell parameter errors
		// surface from the backend at run time.
		probe := sched.Params{N: s.Ns[0], P: s.Ps[0], H: s.H, Mu: 1, Sigma: 1,
			MinChunk: s.MinChunk, Chunk: s.Chunk, First: s.First, Last: s.Last,
			Alpha: s.Alpha, Weights: s.Weights}
		if _, err := sched.New(tech, probe); err != nil {
			return fmt.Errorf("engine: campaign spec: %w", err)
		}
	}
	ws := s.Workload
	if ws.N == 0 {
		ws.N = s.Ns[0]
	}
	if _, err := ws.Build(); err != nil {
		return fmt.Errorf("engine: campaign spec: %w", err)
	}
	return nil
}

// Canonical returns the canonical JSON encoding of the spec: the
// normalized spec marshaled with fixed field order. Two specs describing
// the same campaign produce identical bytes.
func (s CampaignSpec) Canonical() ([]byte, error) {
	return json.Marshal(s.Normalize())
}

// Hash returns the spec's content address: the hex SHA-256 of the
// domain-prefixed canonical encoding.
func (s CampaignSpec) Hash() (string, error) {
	c, err := s.Canonical()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write([]byte(specHashDomain))
	h.Write(c)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// ParseSpec decodes a JSON campaign spec, rejecting unknown fields, and
// validates it.
func ParseSpec(data []byte) (CampaignSpec, error) {
	var s CampaignSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return CampaignSpec{}, fmt.Errorf("engine: parse campaign spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return CampaignSpec{}, err
	}
	return s, nil
}

// Points expands the grid into concrete run specs in n-major, then p,
// then technique order, building one workload per task count.
func (s CampaignSpec) Points() ([]RunSpec, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	points := make([]RunSpec, 0, len(s.Ns)*len(s.Ps)*len(s.Techniques))
	for _, n := range s.Ns {
		ws := s.Workload
		if ws.N == 0 {
			ws.N = n
		}
		work, err := ws.Build()
		if err != nil {
			return nil, fmt.Errorf("engine: campaign spec: %w", err)
		}
		for _, p := range s.Ps {
			for _, tech := range s.Techniques {
				points = append(points, RunSpec{
					Technique:      tech,
					N:              n,
					P:              p,
					Work:           work,
					Speeds:         s.Speeds,
					StartTimes:     s.StartTimes,
					H:              s.H,
					HInDynamics:    s.HInDynamics,
					PerMessageCost: s.PerMessageCost,
					MinChunk:       s.MinChunk,
					Chunk:          s.Chunk,
					First:          s.First,
					Last:           s.Last,
					Alpha:          s.Alpha,
					Weights:        s.Weights,
				})
			}
		}
	}
	return points, nil
}

// seedFunc returns the policy's (point, rep) → rand48-state derivation
// for the given expanded points. RepOffset shifts the replication index
// fed to every derivation, so a sharded sub-spec reproduces exactly the
// seeds its replication window has in the parent grid. The per-cell
// bases derive from cell identity (technique, n, p), never from the
// point's position in the grid, which is what makes point-subset
// sharding seed-exact without any further bookkeeping.
func (s CampaignSpec) seedFunc(points []RunSpec) func(point, rep int) uint64 {
	seed, off := s.Seed, s.RepOffset
	switch s.Normalize().SeedPolicy {
	case SeedFlat:
		return func(_, rep int) uint64 { return rng.RunSeed(seed, off+rep) }
	case SeedFacade:
		return func(_, rep int) uint64 { return rng.Mix64(rng.RunSeed(seed, off+rep)) }
	case SeedShared:
		state := rng.Mix64(seed)
		return func(_, _ int) uint64 { return state }
	default: // SeedPerCell
		bases := make([]uint64, len(points))
		for i, pt := range points {
			bases[i] = rng.CellSeed(seed, pt.Technique, pt.N, pt.P)
		}
		return func(point, rep int) uint64 { return rng.RunSeed(bases[point], off+rep) }
	}
}

// Compile lowers the declarative spec into an executable Campaign with
// the given worker bound.
func (s CampaignSpec) Compile(workers int) (Campaign, error) {
	points, err := s.Points()
	if err != nil {
		return Campaign{}, err
	}
	return Campaign{
		Backend:      s.Backend,
		Points:       points,
		Replications: s.Replications,
		Workers:      workers,
		SeedFor:      s.seedFunc(points),
	}, nil
}
