package engine

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// blockingBackend blocks every run until its context is cancelled — the
// instrument behind the mid-campaign cancellation tests. It counts the
// runs that started so the "no further backend runs after cancellation"
// guarantee is observable.
type blockingBackend struct {
	started atomic.Int64
}

func (b *blockingBackend) Name() string { return "blocking" }

func (b *blockingBackend) Run(ctx context.Context, _ RunSpec) (*RunResult, error) {
	b.started.Add(1)
	<-ctx.Done()
	return nil, ctx.Err()
}

var blocking = &blockingBackend{}

func init() { Register(blocking) }

// countingSink records the events it saw and how often it was closed.
type countingSink struct {
	events []Event
	closed int
	// onEvent, when non-nil, runs after recording each event.
	onEvent func(ev Event)
}

func (s *countingSink) Consume(_ context.Context, ev Event) error {
	s.events = append(s.events, ev)
	if s.onEvent != nil {
		s.onEvent(ev)
	}
	return nil
}

func (s *countingSink) Close() error {
	s.closed++
	return nil
}

// waitGoroutines polls until the goroutine count settles back to the
// baseline (plus slack for runtime internals).
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	var now int
	for {
		now = runtime.NumGoroutine()
		if now <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutine leak after cancellation: %d before, %d after", before, now)
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStreamCancelMidCampaign is the core cancellation guarantee:
// cancelling the context mid-campaign aborts Stream with a wrapped
// context.Canceled, stops scheduling backend runs, drains the worker
// pool without leaking goroutines, and closes every sink exactly once.
func TestStreamCancelMidCampaign(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const workers = 3
	c := Campaign{
		Backend:      "blocking",
		Points:       []RunSpec{testPoint(1)},
		Replications: 100,
		Workers:      workers,
	}
	sink := &countingSink{}
	startedBefore := blocking.started.Load()
	done := make(chan error, 1)
	go func() { done <- c.Stream(ctx, sink) }()

	// Wait until the pool is actually executing backend runs.
	for blocking.started.Load()-startedBefore < workers {
		time.Sleep(time.Millisecond)
	}
	cancel()
	err := <-done
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Stream returned %v; want wrapped context.Canceled", err)
	}
	if sink.closed != 1 {
		t.Fatalf("sink closed %d times, want exactly 1", sink.closed)
	}
	if len(sink.events) != 0 {
		t.Fatalf("blocking campaign delivered %d events, want 0", len(sink.events))
	}
	// Stream has returned: the workers are gone, so the started counter
	// must be frozen — no backend run is scheduled after cancellation.
	frozen := blocking.started.Load()
	time.Sleep(20 * time.Millisecond)
	if now := blocking.started.Load(); now != frozen {
		t.Fatalf("backend runs kept starting after Stream returned: %d -> %d", frozen, now)
	}
	if got := frozen - startedBefore; got > workers {
		t.Fatalf("%d backend runs started, want at most the %d pool workers", got, workers)
	}
	waitGoroutines(t, before)
}

// TestStreamCancelDeliversDeterministicPrefix: a campaign cancelled
// from within the event stream still delivers a contiguous prefix of
// the deterministic global (point, replication) order — never a gap,
// never an out-of-order event — and returns the wrapped cancellation.
func TestStreamCancelDeliversDeterministicPrefix(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const reps = 400
	sink := &countingSink{}
	sink.onEvent = func(ev Event) {
		if ev.Rep == 2 {
			cancel()
			// Give the cancellation watcher time to trip the pipeline's
			// failure flag so the abort happens well before the grid is
			// exhausted.
			<-ctx.Done()
		}
	}
	err := Campaign{
		Points:       []RunSpec{{Technique: "FAC2", N: 64, P: 2, Work: testPoint(1).Work, H: 0.5}},
		Replications: reps,
		Workers:      4,
	}.Stream(ctx, sink)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Stream returned %v; want wrapped context.Canceled", err)
	}
	if sink.closed != 1 {
		t.Fatalf("sink closed %d times, want exactly 1", sink.closed)
	}
	if len(sink.events) < 3 || len(sink.events) >= reps {
		t.Fatalf("saw %d events; want a strict prefix covering at least the cancel point", len(sink.events))
	}
	for i, ev := range sink.events {
		if ev.Point != 0 || ev.Rep != i {
			t.Fatalf("event %d is (point %d, rep %d); prefix must be contiguous in-order", i, ev.Point, ev.Rep)
		}
	}
	waitGoroutines(t, before)
}

// TestExecutePreCancelled: an already-cancelled context performs zero
// backend runs, closes the sinks exactly once and reports the wrapped
// cancellation — on both the live and the replay path.
func TestExecutePreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	spec := countingSpec()
	sink := &countingSink{}
	beforeRuns := counting.calls.Load()
	_, err := spec.Execute(ctx, ExecConfig{Sinks: []Sink{sink}})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("Execute under cancelled ctx returned %v; want wrapped context.Canceled", err)
	}
	if sink.closed != 1 {
		t.Fatalf("sink closed %d times, want exactly 1", sink.closed)
	}
	if got := counting.calls.Load() - beforeRuns; got != 0 {
		t.Fatalf("cancelled Execute performed %d backend runs, want 0", got)
	}
}

// TestRunWrapsContextCause: Campaign.Run surfaces deadline expiry the
// same way as explicit cancellation.
func TestRunWrapsDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := Campaign{
		Points:       []RunSpec{testPoint(1)},
		Replications: 2,
	}.Run(ctx)
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired Run returned %v; want wrapped context.DeadlineExceeded", err)
	}
}
