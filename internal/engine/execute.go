package engine

import (
	"context"
	"fmt"

	"repro/internal/cache"
)

// ExecConfig carries the execution parameters of a CampaignSpec run —
// everything that may change how fast results arrive but never what
// they are. None of it participates in the spec hash.
type ExecConfig struct {
	// Workers bounds concurrently executing runs; 0 selects GOMAXPROCS.
	Workers int

	// ChunkSize is the number of consecutive replications executed per
	// work item (see Campaign.ChunkSize); 0 auto-sizes. Like Workers it
	// changes scheduling, never results.
	ChunkSize int

	// KeepPerRun retains the per-run metrics in each Aggregate (the
	// paper's Figure 9 analysis needs them).
	KeepPerRun bool

	// Cache, when non-nil, is consulted under the spec's hash before
	// simulating and filled after. A hit replays the stored per-run
	// metrics through the sinks and aggregation, performing zero backend
	// runs; by determinism the replayed aggregates are bit-identical to
	// a live execution. Cache writes are best effort: a failed Put never
	// fails the campaign.
	Cache cache.Store

	// Sinks observe the ordered per-run event stream (live or replayed).
	Sinks []Sink
}

// cachedCampaign is the legacy (version 1) persistent result format: the
// spec hash the entry was produced under plus every run's metrics in
// (point, replication) order. That is sufficient to reconstruct
// aggregates bit-identically and to replay the event stream; full
// RunResults (per-worker slices) are deliberately not persisted. New
// entries are written in the version-2 binary format (cachecodec.go),
// which additionally carries a pre-aggregated snapshot; version-1 JSON
// entries remain readable.
type cachedCampaign struct {
	Version      int            `json:"version"`
	Hash         string         `json:"hash"`
	Points       int            `json:"points"`
	Replications int            `json:"replications"`
	PerRun       [][]RunMetrics `json:"per_run"` // [point][rep]
}

// Execute runs the campaign described by the spec, streaming per-run
// events to cfg.Sinks and returning the per-point aggregates. With a
// cache configured, a repeated spec (same hash) is served entirely from
// the cache. Cancelling ctx aborts the execution (live or replayed)
// with an error wrapping ctx.Err(); no further backend runs are
// performed after cancellation is observed and every sink is closed
// exactly once.
func (s CampaignSpec) Execute(ctx context.Context, cfg ExecConfig) (*CampaignResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Returns before Stream or replay run must still close cfg.Sinks —
	// the Sink contract is one Close call on every path.
	closeSinks := func(first error) error {
		for _, sk := range cfg.Sinks {
			if err := sk.Close(); err != nil && first == nil {
				first = fmt.Errorf("engine: sink close: %w", err)
			}
		}
		return first
	}
	points, err := s.Points()
	if err != nil {
		return nil, closeSinks(err)
	}

	var key string
	if cfg.Cache != nil {
		key, err = s.Hash()
		if err != nil {
			return nil, closeSinks(err)
		}
		if data, ok, err := cfg.Cache.Get(ctx, key); err != nil {
			return nil, closeSinks(err)
		} else if ok {
			if ent, ok := decodeCacheEntry(data, key, len(points), s.Replications); ok {
				// Aggregate-only request against an entry carrying a
				// snapshot: serve the stored aggregates directly — the
				// per-run records are never touched, let alone decoded.
				if ent.snap != nil && len(cfg.Sinks) == 0 && !cfg.KeepPerRun {
					if err := ctx.Err(); err != nil {
						return nil, fmt.Errorf("engine: campaign: %w", err)
					}
					return ent.snap.result(points), nil
				}
				return s.replay(ctx, points, ent.perRunMetrics(), cfg)
			}
			// Undecodable, corrupt or mismatched entry: fall through to
			// a live run, which overwrites it.
		}
	}

	// The campaign reuses the expansion above instead of Compile, which
	// would expand and validate the grid a second time.
	c := Campaign{
		Backend:      s.Backend,
		Points:       points,
		Replications: s.Replications,
		Workers:      cfg.Workers,
		ChunkSize:    cfg.ChunkSize,
		SeedFor:      s.seedFunc(points),
	}
	// Per-run metrics are always folded by the aggregating sink; they
	// are needed for the median, the optional PerRun export and the
	// cache entry.
	agg := newAggregateSink(points, s.Replications, cfg.KeepPerRun, false)
	if err := c.Stream(ctx, append([]Sink{agg}, cfg.Sinks...)...); err != nil {
		return nil, err
	}
	res := &CampaignResult{Aggregates: agg.Aggregates(), Overall: agg.Overall()}
	if cfg.Cache != nil {
		// Version-2 binary entry: per-run records plus the snapshot of
		// the final aggregates, so a future aggregate-only hit replays
		// without decoding a single run. Best effort: a failed Put never
		// fails the campaign.
		_ = cfg.Cache.Put(ctx, key, encodeCacheEntry(key, agg.perRun, res))
	}
	return res, nil
}

// replay reconstructs the campaign result from a validated cache entry,
// feeding the stored per-run metrics through the sinks and the
// aggregation in the same (point, replication) order a live execution
// would — zero backend runs. A sink error or context cancellation
// aborts the replay and is returned, mirroring Stream.
func (s CampaignSpec) replay(ctx context.Context, points []RunSpec, perRun [][]RunMetrics, cfg ExecConfig) (*CampaignResult, error) {
	seedFor := s.seedFunc(points)
	agg := newAggregateSink(points, s.Replications, cfg.KeepPerRun, false)
	sinks := append([]Sink{agg}, cfg.Sinks...)
	var sinkErr error
feed:
	for pi := range points {
		for rep := 0; rep < s.Replications; rep++ {
			if err := ctx.Err(); err != nil {
				sinkErr = fmt.Errorf("engine: campaign: %w", err)
				break feed
			}
			spec := points[pi]
			spec.RNGState = seedFor(pi, rep)
			ev := Event{Point: pi, Rep: rep, Spec: spec, Metrics: perRun[pi][rep]}
			for _, sk := range sinks {
				if err := sk.Consume(ctx, ev); err != nil {
					sinkErr = fmt.Errorf("engine: sink: %w", err)
					break feed
				}
			}
		}
	}
	for _, sk := range sinks {
		if err := sk.Close(); err != nil && sinkErr == nil {
			sinkErr = fmt.Errorf("engine: sink close: %w", err)
		}
	}
	if sinkErr != nil {
		return nil, sinkErr
	}
	return &CampaignResult{Aggregates: agg.Aggregates(), Overall: agg.Overall()}, nil
}
