package engine

import (
	"context"
	"strings"
	"testing"

	"repro/internal/workload"
)

// shardTestSpec is a small 2×1×2 grid (4 points) exercised by every
// sub-spec test below.
func shardTestSpec() CampaignSpec {
	return CampaignSpec{
		Techniques:   []string{"FAC2", "GSS"},
		Ns:           []int64{256, 512},
		Ps:           []int{4},
		Workload:     workload.Spec{Kind: "exponential", P1: 1},
		H:            0.5,
		Replications: 7,
		Seed:         20170601,
	}
}

// TestSubSpecSeedEquivalence proves the sharding identity the
// distributed coordinator rests on: for every seed policy, run r of
// SubSpec(pi, off, k) draws exactly the rand48 state run (pi, off+r) of
// the parent draws.
func TestSubSpecSeedEquivalence(t *testing.T) {
	for _, policy := range []string{SeedPerCell, SeedFlat, SeedFacade, SeedShared} {
		spec := shardTestSpec()
		spec.SeedPolicy = policy
		points, err := spec.Points()
		if err != nil {
			t.Fatal(err)
		}
		parentSeed := spec.seedFunc(points)
		for pi := range points {
			for _, window := range [][2]int{{0, 7}, {0, 3}, {3, 4}, {6, 1}} {
				off, reps := window[0], window[1]
				sub, err := spec.SubSpec(pi, off, reps)
				if err != nil {
					t.Fatalf("%s: SubSpec(%d, %d, %d): %v", policy, pi, off, reps, err)
				}
				subPoints, err := sub.Points()
				if err != nil {
					t.Fatal(err)
				}
				if len(subPoints) != 1 {
					t.Fatalf("%s: sub-spec expanded to %d points, want 1", policy, len(subPoints))
				}
				if subPoints[0].Technique != points[pi].Technique ||
					subPoints[0].N != points[pi].N || subPoints[0].P != points[pi].P {
					t.Fatalf("%s: sub-spec point %+v does not match parent point %d %+v",
						policy, subPoints[0], pi, points[pi])
				}
				subSeed := sub.seedFunc(subPoints)
				for r := 0; r < reps; r++ {
					if got, want := subSeed(0, r), parentSeed(pi, off+r); got != want {
						t.Fatalf("%s: point %d window [%d,%d): sub run %d state %#x, parent run %d state %#x",
							policy, pi, off, off+reps, r, got, off+r, want)
					}
				}
			}
		}
	}
}

// TestSubSpecExecutionEquivalence runs a shard window for real and
// checks the metrics against the corresponding slice of the parent's
// event stream — the end-to-end version of the seed identity.
func TestSubSpecExecutionEquivalence(t *testing.T) {
	spec := shardTestSpec()
	parent, err := spec.Execute(context.Background(), ExecConfig{KeepPerRun: true})
	if err != nil {
		t.Fatal(err)
	}
	const pi, off, reps = 2, 3, 4
	sub, err := spec.SubSpec(pi, off, reps)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sub.Execute(context.Background(), ExecConfig{KeepPerRun: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Aggregates) != 1 {
		t.Fatalf("sub-spec produced %d aggregates, want 1", len(res.Aggregates))
	}
	for r := 0; r < reps; r++ {
		got := res.Aggregates[0].PerRun[r]
		want := parent.Aggregates[pi].PerRun[off+r]
		if got != want {
			t.Fatalf("sub run %d = %+v, want parent run (%d, %d) = %+v", r, got, pi, off+r, want)
		}
	}
}

// TestSubSpecHashRegression pins the sub-spec content addresses: the
// hash must be stable under JSON field reordering (the canonical
// encoding re-marshals a normalized struct, so wire order can never
// leak in), distinct from the parent's hash for every proper sub-grid
// or shifted window, and — for a window covering the whole spec —
// identical to the parent, so a degenerate 1-shard plan shares the
// parent's cache entry instead of duplicating it.
func TestSubSpecHashRegression(t *testing.T) {
	spec := shardTestSpec()
	parentHash, err := spec.Hash()
	if err != nil {
		t.Fatal(err)
	}

	// RepOffset 0 is omitted from the canonical encoding: the field's
	// introduction must not move any pre-existing hash.
	canon, err := spec.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(canon), "rep_offset") {
		t.Fatalf("canonical encoding of an unsharded spec mentions rep_offset: %s", canon)
	}

	sub, err := spec.SubSpec(1, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	subHash, err := sub.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if subHash == parentHash {
		t.Fatalf("sub-spec hash %s collides with parent", subHash)
	}

	// A different window of the same point must hash differently.
	other, err := spec.SubSpec(1, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	otherHash, err := other.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if otherHash == subHash {
		t.Fatalf("windows [3,7) and [0,4) of the same point share hash %s", subHash)
	}

	// Field order on the wire must not matter: parse the sub-spec from
	// JSON with fields deliberately reordered and compare hashes.
	reordered := []byte(`{
		"seed": 20170601,
		"replications": 4,
		"rep_offset": 3,
		"h": 0.5,
		"workload": {"kind": "exponential", "p1": 1},
		"ps": [4],
		"ns": [256],
		"techniques": ["GSS"]
	}`)
	parsed, err := ParseSpec(reordered)
	if err != nil {
		t.Fatal(err)
	}
	parsedHash, err := parsed.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if parsedHash != subHash {
		t.Fatalf("reordered JSON hashes to %s, struct-built sub-spec to %s", parsedHash, subHash)
	}

	// The degenerate full-cover window of a single-point spec IS the
	// parent: same grid, same replications, offset 0 — the hashes must
	// agree so a 1-shard plan reuses the parent's cache entry.
	single := spec
	single.Techniques = []string{"FAC2"}
	single.Ns = []int64{256}
	single.Ps = []int{4}
	singleHash, err := single.Hash()
	if err != nil {
		t.Fatal(err)
	}
	full, err := single.SubSpec(0, 0, single.Replications)
	if err != nil {
		t.Fatal(err)
	}
	fullHash, err := full.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if fullHash != singleHash {
		t.Fatalf("full-cover sub-spec hash %s differs from its parent %s", fullHash, singleHash)
	}
}

// TestSubSpecValidation rejects out-of-range windows and point indices.
func TestSubSpecValidation(t *testing.T) {
	spec := shardTestSpec()
	for _, bad := range []struct{ pi, off, reps int }{
		{-1, 0, 1}, {4, 0, 1}, {0, -1, 1}, {0, 0, 0}, {0, 0, 8}, {0, 7, 1},
	} {
		if _, err := spec.SubSpec(bad.pi, bad.off, bad.reps); err == nil {
			t.Errorf("SubSpec(%d, %d, %d) accepted an invalid window", bad.pi, bad.off, bad.reps)
		}
	}
	if err := (CampaignSpec{RepOffset: -1}).Validate(); err == nil {
		t.Error("Validate accepted a negative RepOffset")
	}
}
