package engine_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/testutil"
	"repro/internal/workload"
)

// These tests pin the batched (chunked) pipeline's cancellation
// behavior under the race detector: cancelling mid-campaign with
// workers > 1 and any chunk size must drain every worker without
// leaking goroutines, close the sinks exactly once, and deliver only a
// contiguous prefix of the deterministic event order. They live in
// package engine_test because they share testutil's gate backend with
// the jobs and service cancellation tests (testutil imports engine).

var batchGate = testutil.NewGateBackend("batch-cancel-gate")

func init() { engine.Register(batchGate) }

// orderedSink records the ordered event stream and its close count.
// Consume runs on the pipeline's single delivery goroutine and Stream
// returning happens-after Close, so the test may read the fields once
// Stream is done.
type orderedSink struct {
	mu     sync.Mutex
	events []engine.Event
	closed int
}

func (s *orderedSink) Consume(_ context.Context, ev engine.Event) error {
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
	return nil
}

func (s *orderedSink) Close() error {
	s.mu.Lock()
	s.closed++
	s.mu.Unlock()
	return nil
}

func (s *orderedSink) snapshot() ([]engine.Event, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]engine.Event(nil), s.events...), s.closed
}

func batchGatePoint() engine.RunSpec {
	return engine.RunSpec{
		Technique: "FAC2",
		N:         256,
		P:         4,
		Work:      workload.NewExponential(1),
		H:         0.25,
	}
}

// parkedWorkers is the number of workers that actually claim a chunk
// and block inside a gated run: the pipeline clamps the pool to the
// total chunk count, so an oversized chunk leaves one chunk per point.
func parkedWorkers(workers, points, reps, chunk int) int64 {
	if chunk <= 0 || chunk > reps {
		chunk = reps // oversized clamps; auto never exceeds reps either
	}
	chunks := points * ((reps + chunk - 1) / chunk)
	if chunks < workers {
		return int64(chunks)
	}
	return int64(workers)
}

// checkPrefix asserts the events form a contiguous prefix of the
// deterministic global (point, replication) order.
func checkPrefix(t *testing.T, events []engine.Event, reps int) {
	t.Helper()
	for i, ev := range events {
		if want := i / reps; ev.Point != want || ev.Rep != i%reps {
			t.Fatalf("event %d is (point %d, rep %d); want contiguous prefix order (point %d, rep %d)",
				i, ev.Point, ev.Rep, want, i%reps)
		}
	}
}

// TestBatchedStreamCancelMidCampaign: for every chunk-size shape — auto,
// single-run chunks, uneven chunks, one chunk far larger than the
// replication count — cancelling while all workers are blocked inside
// backend runs aborts Stream with the wrapped cancellation, drains the
// pool leak-free and closes the sink exactly once.
func TestBatchedStreamCancelMidCampaign(t *testing.T) {
	const (
		workers = 4
		reps    = 40
	)
	for _, chunk := range []int{0, 1, 3, 1000} {
		t.Run(chunkName(chunk), func(t *testing.T) {
			defer testutil.CheckGoroutines(t)()
			batchGate.Reset()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()

			c := engine.Campaign{
				Backend:      "batch-cancel-gate",
				Points:       []engine.RunSpec{batchGatePoint(), batchGatePoint()},
				Replications: reps,
				Workers:      workers,
				ChunkSize:    chunk,
			}
			sink := &orderedSink{}
			startedBefore := batchGate.Started.Load()
			done := make(chan error, 1)
			go func() { done <- c.Stream(ctx, sink) }()

			// Every effective worker claims a chunk and parks inside its
			// first run.
			want := parkedWorkers(workers, len(c.Points), reps, chunk)
			for batchGate.Started.Load()-startedBefore < want {
				time.Sleep(time.Millisecond)
			}
			cancel()
			err := <-done
			if err == nil || !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled Stream returned %v; want wrapped context.Canceled", err)
			}
			events, closed := sink.snapshot()
			if closed != 1 {
				t.Fatalf("sink closed %d times, want exactly 1", closed)
			}
			if len(events) != 0 {
				t.Fatalf("gated campaign delivered %d events before release, want 0", len(events))
			}
		})
	}
}

// TestBatchedStreamCancelReleaseRace races a mid-campaign cancellation
// against the gate opening: whichever wins, Stream must terminate, the
// sink closes exactly once, and the delivered events are a contiguous
// prefix (the full grid when the release wins end to end).
func TestBatchedStreamCancelReleaseRace(t *testing.T) {
	const (
		workers = 4
		reps    = 30
	)
	for _, chunk := range []int{0, 1, 3, 1000} {
		t.Run(chunkName(chunk), func(t *testing.T) {
			defer testutil.CheckGoroutines(t)()
			batchGate.Reset()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()

			c := engine.Campaign{
				Backend:      "batch-cancel-gate",
				Points:       []engine.RunSpec{batchGatePoint(), batchGatePoint()},
				Replications: reps,
				Workers:      workers,
				ChunkSize:    chunk,
			}
			sink := &orderedSink{}
			startedBefore := batchGate.Started.Load()
			done := make(chan error, 1)
			go func() { done <- c.Stream(ctx, sink) }()

			want := parkedWorkers(workers, len(c.Points), reps, chunk)
			for batchGate.Started.Load()-startedBefore < want {
				time.Sleep(time.Millisecond)
			}
			var race sync.WaitGroup
			race.Add(2)
			go func() { defer race.Done(); batchGate.Release() }()
			go func() { defer race.Done(); cancel() }()
			race.Wait()

			err := <-done
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Fatalf("raced Stream returned %v; want nil or wrapped context.Canceled", err)
			}
			events, closed := sink.snapshot()
			if closed != 1 {
				t.Fatalf("sink closed %d times, want exactly 1", closed)
			}
			checkPrefix(t, events, reps)
			if err == nil && len(events) != 2*reps {
				t.Fatalf("completed campaign delivered %d events, want %d", len(events), 2*reps)
			}
		})
	}
}

func chunkName(chunk int) string {
	switch chunk {
	case 0:
		return "chunk=auto"
	case 1:
		return "chunk=1"
	case 1000:
		return "chunk=oversized"
	default:
		return "chunk=3"
	}
}
