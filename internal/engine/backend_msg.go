package engine

import (
	"context"
	"fmt"

	"repro/internal/msg"
	"repro/internal/platform"
)

// msgBackend adapts the full SimGrid-MSG-style model (internal/msg): a
// master process owning the chunk calculator exchanges explicit
// request/assignment messages with one worker process per PE over a star
// platform. It is the verification-grade backend — orders of magnitude
// slower than "sim" but with real message dynamics.
//
// Mapping of the backend-independent knobs:
//
//   - PerMessageCost c maps to a per-link latency of c/4 (a scheduling
//     operation is one request plus one reply, each crossing the worker
//     link and the backbone), so the per-operation cost matches the sim
//     backend's. c = 0 selects the paper's free network (§III-B).
//   - HInDynamics maps to the master computing for H seconds per
//     operation (AppConfig.MasterOverhead).
//   - Speeds map to worker host speeds with ReferenceSpeed 1, so a
//     chunk of w workload-seconds executes in w/speed seconds, as in the
//     event-driven backends.
//
// StartTimes and Observe are not representable in the MSG protocol layer
// and are rejected.
type msgBackend struct{}

func init() { Register(msgBackend{}) }

func (msgBackend) Name() string { return "msg" }

func (msgBackend) Run(ctx context.Context, spec RunSpec) (*RunResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.StartTimes != nil {
		return nil, fmt.Errorf("engine: backend msg does not support per-PE start times")
	}
	if spec.Observe != nil {
		return nil, fmt.Errorf("engine: backend msg does not support chunk observation; use sim or des")
	}
	s, err := spec.Scheduler()
	if err != nil {
		return nil, err
	}

	bw, lat := platform.FreeNetwork()
	if spec.PerMessageCost > 0 {
		lat = spec.PerMessageCost / 4
	}
	var pl *platform.Platform
	if spec.Speeds != nil {
		pl, err = platform.Heterogeneous("pe", spec.Speeds, bw, lat)
	} else {
		pl, err = platform.Cluster("pe", spec.P, 1.0, bw, lat)
	}
	if err != nil {
		return nil, err
	}
	workers := make([]string, spec.P)
	for i := range workers {
		workers[i] = fmt.Sprintf("pe-%d", i+1)
	}
	var masterOverhead float64
	if spec.HInDynamics {
		masterOverhead = spec.H
	}
	res, err := msg.RunApp(msg.NewEngine(pl), msg.AppConfig{
		MasterHost:     "pe-0",
		WorkerHosts:    workers,
		Sched:          s,
		Work:           spec.Work,
		RNG:            spec.RNG(),
		ReferenceSpeed: 1,
		MasterOverhead: masterOverhead,
	})
	if err != nil {
		return nil, err
	}
	var commWait float64
	for _, c := range res.CommWait {
		commWait += c
	}
	return &RunResult{
		Makespan:       res.Makespan,
		Compute:        res.Compute,
		SchedOps:       res.SchedOps,
		OpsPerWorker:   res.OpsPerWorker,
		TasksPerWorker: res.TasksPerWorker,
		CommTime:       commWait,
	}, nil
}
