package engine

import (
	"context"
	"fmt"

	"repro/internal/msg"
	"repro/internal/platform"
	"repro/internal/rng"
	"repro/internal/sched"
)

// msgBackend adapts the full SimGrid-MSG-style model (internal/msg): a
// master process owning the chunk calculator exchanges explicit
// request/assignment messages with one worker process per PE over a star
// platform. It is the verification-grade backend — orders of magnitude
// slower than "sim" but with real message dynamics.
//
// Mapping of the backend-independent knobs:
//
//   - PerMessageCost c maps to a per-link latency of c/4 (a scheduling
//     operation is one request plus one reply, each crossing the worker
//     link and the backbone), so the per-operation cost matches the sim
//     backend's. c = 0 selects the paper's free network (§III-B).
//   - HInDynamics maps to the master computing for H seconds per
//     operation (AppConfig.MasterOverhead).
//   - Speeds map to worker host speeds with ReferenceSpeed 1, so a
//     chunk of w workload-seconds executes in w/speed seconds, as in the
//     event-driven backends.
//
// StartTimes and Observe are not representable in the MSG protocol layer
// and are rejected.
type msgBackend struct{}

func init() { Register(msgBackend{}) }

func (msgBackend) Name() string { return "msg" }

func (msgBackend) Run(ctx context.Context, spec RunSpec) (*RunResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r, err := msgBackend{}.NewRunner(spec) // validates the spec
	if err != nil {
		return nil, err
	}
	return r.Run(ctx, spec)
}

// msgRunner amortizes the per-point setup of the verification-grade
// backend: the spec is validated once, the star platform and host names
// are built once (platform data is immutable during simulation), and the
// scheduler and rand48 state are reused across runs. A fresh msg.Engine
// still spins up per run — the MSG protocol processes are goroutines and
// cannot be recycled — so this trims constant per-run cost rather than
// making the path allocation-free.
type msgRunner struct {
	app msg.AppConfig
	pl  *platform.Platform
	s   sched.Scheduler
	res sched.Resetter
	rng rng.Rand48
	out RunResult
}

// NewRunner implements RunnerBackend.
func (msgBackend) NewRunner(spec RunSpec) (Runner, error) {
	r := &msgRunner{}
	if err := r.Rebind(spec); err != nil {
		return nil, err
	}
	return r, nil
}

// Rebind implements Rebinder: validate the new point and rebuild its
// scheduler and star platform (platform data is immutable during
// simulation, so it must match the new point's speeds and P), keeping
// the runner's rand48 state slot.
func (r *msgRunner) Rebind(spec RunSpec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if spec.StartTimes != nil {
		return fmt.Errorf("engine: backend msg does not support per-PE start times")
	}
	if spec.Observe != nil {
		return fmt.Errorf("engine: backend msg does not support chunk observation; use sim or des")
	}
	s, err := spec.Scheduler()
	if err != nil {
		return err
	}

	bw, lat := platform.FreeNetwork()
	if spec.PerMessageCost > 0 {
		lat = spec.PerMessageCost / 4
	}
	var pl *platform.Platform
	if spec.Speeds != nil {
		pl, err = platform.Heterogeneous("pe", spec.Speeds, bw, lat)
	} else {
		pl, err = platform.Cluster("pe", spec.P, 1.0, bw, lat)
	}
	if err != nil {
		return err
	}
	workers := make([]string, spec.P)
	for i := range workers {
		workers[i] = fmt.Sprintf("pe-%d", i+1)
	}
	var masterOverhead float64
	if spec.HInDynamics {
		masterOverhead = spec.H
	}
	r.pl, r.s = pl, s
	r.res, _ = s.(sched.Resetter)
	r.app = msg.AppConfig{
		MasterHost:     "pe-0",
		WorkerHosts:    workers,
		Sched:          s,
		Work:           spec.Work,
		RNG:            &r.rng,
		ReferenceSpeed: 1,
		MasterOverhead: masterOverhead,
	}
	return nil
}

func (r *msgRunner) Run(ctx context.Context, spec RunSpec) (*RunResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if r.res != nil {
		r.res.Reset()
	} else {
		s, err := spec.Scheduler()
		if err != nil {
			return nil, err
		}
		r.app.Sched = s
	}
	r.rng.SetState(spec.RNGState)
	res, err := msg.RunApp(msg.NewEngine(r.pl), r.app)
	if err != nil {
		return nil, err
	}
	var commWait float64
	for _, c := range res.CommWait {
		commWait += c
	}
	r.out = RunResult{
		Makespan:       res.Makespan,
		Compute:        res.Compute,
		SchedOps:       res.SchedOps,
		OpsPerWorker:   res.OpsPerWorker,
		TasksPerWorker: res.TasksPerWorker,
		CommTime:       commWait,
	}
	return &r.out, nil
}
