package engine

import "context"

// Aggregator is the exported face of the pipeline's aggregation sink: it
// folds an ordered event stream into a CampaignResult, exactly as
// CampaignSpec.Execute does internally. Its purpose is client-side
// aggregation — a consumer of a remote result stream (per-run metrics
// decoded from JSON Lines) feeds the events through an Aggregator and
// obtains aggregates bit-identical to the ones the producing server
// computed, because both sides run this same fold over the same metrics
// in the same (point, replication) order.
//
// Close returns an error if any grid point saw fewer events than the
// spec's replication count, so a truncated stream can never silently
// yield partial aggregates.
type Aggregator struct {
	sink *aggregateSink
}

// NewAggregator returns an Aggregator for the spec's grid. With
// keepPerRun, the per-run metrics are retained in each Aggregate (the
// paper's Figure 9 analysis needs them).
func (s CampaignSpec) NewAggregator(keepPerRun bool) (*Aggregator, error) {
	points, err := s.Points()
	if err != nil {
		return nil, err
	}
	return &Aggregator{sink: newAggregateSink(points, s.Replications, keepPerRun, false)}, nil
}

// Consume implements Sink.
func (a *Aggregator) Consume(ctx context.Context, ev Event) error { return a.sink.Consume(ctx, ev) }

// ConsumePartial implements PartialSink, so an Aggregator attached to a
// live campaign engages the pipeline's aggregate fast path: chunk
// partials fold into the same per-point state the event path feeds,
// bit-identically.
func (a *Aggregator) ConsumePartial(ctx context.Context, p MetricsPartial) error {
	return a.sink.ConsumePartial(ctx, p)
}

// Close implements Sink, validating that every point saw its full
// replication count.
func (a *Aggregator) Close() error { return a.sink.Close() }

// Result assembles the campaign result from the consumed events. Call it
// after Close has succeeded.
func (a *Aggregator) Result() *CampaignResult {
	return &CampaignResult{Aggregates: a.sink.Aggregates(), Overall: a.sink.Overall()}
}
