package engine

import (
	"context"

	"repro/internal/metrics"
)

// MetricsPartial is one replication chunk's worth of folded run output —
// the payload of the pipeline's aggregate fast path. Instead of building
// one Event (with its full RunSpec) per run and pushing it through the
// reorder ring, a worker executing chunk [RepLo, RepLo+len(Runs)) of a
// point folds every completed run into this struct: the compact per-run
// scalars are appended to Runs in replication order and the chunk-local
// Welford partials (metrics.Accumulator) accumulate alongside. The
// reorder stage then delivers partials to sinks in deterministic
// (point, chunk) order, exactly like events — but one ConsumePartial
// call covers a whole chunk, and no per-run Event ever crosses a
// channel.
//
// Runs aliases a pooled buffer owned by the pipeline: it is valid only
// for the duration of the ConsumePartial call, and sinks retaining the
// per-run scalars must copy them out (an append into the sink's own
// storage does exactly that).
type MetricsPartial struct {
	Point int // index into the campaign's points
	RepLo int // first replication index covered by this chunk

	// Runs holds the per-run scalars of replications
	// [RepLo, RepLo+len(Runs)) in replication order.
	Runs []RunMetrics

	// Wasted, Makespan and Speedup are chunk-local Welford partials over
	// the corresponding Runs fields, folded worker-side (in parallel,
	// off the delivery path). Merging them across chunks in delivery
	// order via metrics.Accumulator.Merge yields deterministic streaming
	// statistics without touching the per-run records; note that merged
	// moments are numerically equivalent but not bit-identical to a
	// sequential pass (Count, Min and Max are bit-exact either way).
	Wasted   metrics.Accumulator
	Makespan metrics.Accumulator
	Speedup  metrics.Accumulator

	// Ops is the summed SchedOps over Runs.
	Ops int64
}

// Len returns the number of runs covered by the partial.
func (p MetricsPartial) Len() int { return len(p.Runs) }

// add folds one completed run into the partial.
func (p *MetricsPartial) add(m RunMetrics) {
	p.Runs = append(p.Runs, m)
	p.Wasted.Add(m.Wasted)
	p.Makespan.Add(m.Makespan)
	p.Speedup.Add(m.Speedup)
	p.Ops += m.SchedOps
}

// PartialSink is the optional Sink extension behind the pipeline's
// aggregate fast path. A sink implementing it declares that it does not
// need per-run Events — chunk-granular partials delivered in
// deterministic (point, replication) order carry everything it consumes.
// When every sink attached to a campaign is a PartialSink (and the
// campaign does not retain full results), the pipeline bypasses per-run
// event construction entirely: workers fold chunk-local partials and
// the merge stage calls ConsumePartial once per chunk instead of
// Consume once per run. Aggregates produced either way are
// bit-identical; one order-sensitive sink in the set (CSV, JSONL)
// disables the bypass for the whole campaign, and every sink then
// receives ordinary per-run events.
//
// Like Consume, ConsumePartial is invoked from a single goroutine in
// deterministic order, needs no locking, and a returned error aborts
// the campaign. Close semantics are unchanged.
type PartialSink interface {
	Sink
	ConsumePartial(ctx context.Context, p MetricsPartial) error
}

// partialSinks returns the sinks as PartialSinks when every one of them
// supports the fast path, and nil otherwise (one ordered sink disables
// the bypass for the whole campaign).
func partialSinks(sinks []Sink) []PartialSink {
	out := make([]PartialSink, len(sinks))
	for i, s := range sinks {
		ps, ok := s.(PartialSink)
		if !ok {
			return nil
		}
		out[i] = ps
	}
	return out
}
