// Package engine is the unified simulation layer between the facade (and
// the CLIs) and the concrete simulators. It answers two questions every
// entry point used to answer for itself:
//
//  1. Which simulator executes one loop run? A Backend abstracts over the
//     chunk-granularity Hagerup-replica simulator (internal/sim), the
//     process-oriented variant on the bare discrete-event kernel
//     (internal/des) and the full SimGrid-MSG model with explicit
//     messages (internal/msg). Backends are selected by name through a
//     registry mirroring sched.New, so any caller can switch simulators
//     without code changes.
//
//  2. How do many runs execute? A Campaign fans a (point × replication)
//     grid out over a bounded worker pool with deterministic per-run
//     seed derivation and aggregates per-run metrics independently of
//     completion order, so results are bit-reproducible for a given seed
//     regardless of the degree of parallelism (DESIGN.md §6; the paper
//     itself ran its 1000-replication campaigns "in parallel on the HPC
//     cluster taurus", §V).
package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/workload"
)

// RunSpec fully describes one simulated loop execution, independent of
// the backend that executes it. It is a plain value: copying it and
// overwriting RNGState is how campaigns derive per-replication runs.
type RunSpec struct {
	Technique string            // DLS technique name for sched.New
	N         int64             // number of tasks
	P         int               // number of worker PEs
	Work      workload.Workload // per-task execution times

	// RNGState is the full 48-bit rand48 state of the run's random
	// stream (rng.FromState). Callers derive it per run, e.g. via
	// rng.RunSeed; backends must consume randomness in chunk-assignment
	// order so equal states reproduce runs across backends.
	RNGState uint64

	Speeds     []float64 // relative PE speeds; nil means all 1.0
	StartTimes []float64 // per-PE start times; nil means all 0

	H              float64 // scheduling overhead per operation, seconds
	HInDynamics    bool    // charge H inside the master's service loop (ablation A1)
	PerMessageCost float64 // fixed network cost per scheduling operation (ablation A3)

	MinChunk int64     // GSS(k)
	Chunk    int64     // CSS(k)
	First    int64     // TSS first chunk
	Last     int64     // TSS last chunk
	Alpha    float64   // TAP confidence factor
	Weights  []float64 // WF/AWF* PE weights

	// Observe, when non-nil, is called once per scheduling operation
	// (internal/trace.Recorder has this shape). Only the event-driven
	// backends (sim, des) support observation; msg rejects it.
	Observe func(worker int, start, count int64, assigned, done float64)
}

// Validate checks the spec fields every backend depends on.
func (s RunSpec) Validate() error {
	if s.N <= 0 {
		return fmt.Errorf("engine: N must be positive, got %d", s.N)
	}
	if s.P <= 0 {
		return fmt.Errorf("engine: P must be positive, got %d", s.P)
	}
	if s.Work == nil {
		return fmt.Errorf("engine: RunSpec.Work is nil")
	}
	if s.Speeds != nil && len(s.Speeds) != s.P {
		return fmt.Errorf("engine: got %d speeds for %d workers", len(s.Speeds), s.P)
	}
	if s.StartTimes != nil && len(s.StartTimes) != s.P {
		return fmt.Errorf("engine: got %d start times for %d workers", len(s.StartTimes), s.P)
	}
	return nil
}

// Scheduler builds the spec's chunk calculator. Schedulers are stateful
// per run, so every backend constructs a fresh one per Run call.
func (s RunSpec) Scheduler() (sched.Scheduler, error) {
	return sched.New(s.Technique, sched.Params{
		N: s.N, P: s.P,
		H: s.H, Mu: s.Work.Mean(), Sigma: s.Work.Std(),
		MinChunk: s.MinChunk, Chunk: s.Chunk,
		First: s.First, Last: s.Last,
		Alpha: s.Alpha, Weights: s.Weights,
	})
}

// RNG returns the run's random stream.
func (s RunSpec) RNG() *rng.Rand48 { return rng.FromState(s.RNGState) }

// RunResult reports one simulated execution in backend-independent form.
type RunResult struct {
	Makespan float64   // completion time of the last task, seconds
	Compute  []float64 // per-worker total computation time

	SchedOps       int64   // total scheduling operations (chunks)
	OpsPerWorker   []int64 // scheduling operations per worker
	TasksPerWorker []int64 // tasks executed per worker

	// CommTime is the total time attributed to communication: the summed
	// per-message costs (sim, des) or the workers' send+receive wait time
	// (msg).
	CommTime float64
	// MasterBusy is the master's total service time (HInDynamics mode;
	// always 0 for the msg backend, which folds service into Makespan).
	MasterBusy float64
}

// Backend executes one loop run described by a RunSpec. Implementations
// must be safe for concurrent Run calls: the campaign runner invokes one
// backend value from many worker goroutines.
type Backend interface {
	// Name returns the registered backend name (e.g. "sim", "msg").
	Name() string
	// Run executes the spec to completion and returns its timing results.
	// Implementations must return promptly with ctx.Err() when the
	// context is cancelled before the run starts; honoring cancellation
	// mid-run is optional (the built-in simulators complete the run),
	// so campaign-level cancellation has run granularity.
	Run(ctx context.Context, spec RunSpec) (*RunResult, error)
}

// Runner executes many runs of one campaign point with per-run setup
// amortized away: the spec is validated once, the scheduler is Reset
// instead of rebuilt (sched.Resetter), and result buffers are pooled, so
// the steady-state hot path allocates nothing. A Runner is built for one
// point and must only be handed specs that differ from the construction
// spec in RNGState. It is NOT safe for concurrent use — the campaign
// pipeline keeps one per worker goroutine.
type Runner interface {
	// Run executes the spec. The returned result and its slices alias
	// the runner's internal buffers and are valid only until the next
	// Run call; callers retaining results across runs must Clone them.
	Run(ctx context.Context, spec RunSpec) (*RunResult, error)
}

// RunnerBackend is the optional Backend extension behind the engine's
// allocation-free campaign path. NewRunner validates the point spec once
// and returns a Runner amortizing all per-run setup; backends without it
// fall back to one Backend.Run (validate + rebuild) per replication. All
// three built-in backends implement it.
type RunnerBackend interface {
	Backend
	NewRunner(spec RunSpec) (Runner, error)
}

// Rebinder is the optional Runner extension behind per-core execution
// contexts: Rebind re-points an existing runner at a new campaign point
// while retaining its arenas and pooled buffers, so a long-lived
// per-worker runner survives point switches instead of being rebuilt.
// After a successful Rebind the runner must behave exactly like a fresh
// NewRunner(spec); after a failed Rebind the runner may not be used
// again. All three built-in runners implement it.
type Rebinder interface {
	Runner
	Rebind(spec RunSpec) error
}

// Clone returns a deep copy of the result, detaching it from any runner
// arena it may alias.
func (r *RunResult) Clone() *RunResult {
	out := *r
	out.Compute = append([]float64(nil), r.Compute...)
	out.OpsPerWorker = append([]int64(nil), r.OpsPerWorker...)
	out.TasksPerWorker = append([]int64(nil), r.TasksPerWorker...)
	return &out
}

var (
	registryMu sync.RWMutex
	registry   = make(map[string]Backend)
	regOrder   []string
)

// DefaultBackend is the backend used when no name is given: the fast
// chunk-granularity simulator the paper's figures are produced with.
const DefaultBackend = "sim"

// Register adds a backend under its Name. It panics on duplicates or
// empty names, mirroring database/sql.Register — registration happens in
// package init functions where an error return would be unusable.
func Register(b Backend) {
	registryMu.Lock()
	defer registryMu.Unlock()
	name := b.Name()
	if name == "" {
		panic("engine: Register with empty backend name")
	}
	if _, dup := registry[name]; dup {
		panic("engine: duplicate backend " + name)
	}
	registry[name] = b
	regOrder = append(regOrder, name)
}

// New returns the named backend; the empty name selects DefaultBackend.
func New(name string) (Backend, error) {
	if name == "" {
		name = DefaultBackend
	}
	registryMu.RLock()
	defer registryMu.RUnlock()
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("engine: unknown backend %q (known: %v)", name, namesLocked())
	}
	return b, nil
}

// Names lists the registered backend names in sorted order.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, len(regOrder))
	copy(out, regOrder)
	sort.Strings(out)
	return out
}
