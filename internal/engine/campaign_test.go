package engine

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/workload"
)

func testPoint(seed uint64) RunSpec {
	return RunSpec{
		Technique: "FAC2",
		N:         1024,
		P:         8,
		Work:      workload.NewExponential(1),
		H:         0.5,
		RNGState:  seed,
	}
}

// TestCampaignDeterminism is the parallel-runner reproducibility
// guarantee: the same seed produces byte-identical aggregates for any
// worker count and any GOMAXPROCS.
func TestCampaignDeterminism(t *testing.T) {
	run := func(workers int) *CampaignResult {
		t.Helper()
		res, err := Campaign{
			Points:       []RunSpec{testPoint(42)},
			Replications: 50,
			Workers:      workers,
			KeepRuns:     true,
		}.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	for _, workers := range []int{2, 7, 32} {
		got := run(workers)
		if !reflect.DeepEqual(got.Aggregates[0].PerRun, ref.Aggregates[0].PerRun) {
			t.Fatalf("workers=%d: per-run metrics differ from serial", workers)
		}
		if got.Aggregates[0].Wasted != ref.Aggregates[0].Wasted ||
			got.Aggregates[0].Makespan != ref.Aggregates[0].Makespan ||
			got.Aggregates[0].Speedup != ref.Aggregates[0].Speedup ||
			got.Aggregates[0].MeanOps != ref.Aggregates[0].MeanOps {
			t.Fatalf("workers=%d: aggregates differ from serial", workers)
		}
	}
	// And under a different GOMAXPROCS with the default worker count.
	old := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(old)
	got := run(0)
	if got.Aggregates[0].Wasted != ref.Aggregates[0].Wasted {
		t.Fatal("GOMAXPROCS=2 aggregate differs from serial")
	}
}

// TestCampaignMatchesSerialBackendLoop pins the aggregation semantics:
// the campaign's mean equals a plain serial loop over Backend.Run with
// the same seed derivation, bit for bit.
func TestCampaignMatchesSerialBackendLoop(t *testing.T) {
	const runs = 30
	base := uint64(7)
	point := testPoint(base)

	be, err := New("sim")
	if err != nil {
		t.Fatal(err)
	}
	wasted := make([]float64, runs)
	for r := 0; r < runs; r++ {
		spec := point
		spec.RNGState = rng.RunSeed(base, r)
		res, err := be.Run(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		wasted[r] = metrics.AverageWasted(res.Makespan, res.Compute, res.SchedOps, spec.H)
	}
	want := metrics.Summarize(wasted)

	got, err := Campaign{
		Points:       []RunSpec{point},
		Replications: runs,
	}.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got.Aggregates[0].Wasted != want {
		t.Fatalf("campaign summary %+v != serial summary %+v", got.Aggregates[0].Wasted, want)
	}
}

func TestCampaignMultiPoint(t *testing.T) {
	points := []RunSpec{
		{Technique: "STAT", N: 512, P: 4, Work: workload.NewConstant(0.01)},
		{Technique: "SS", N: 512, P: 4, Work: workload.NewConstant(0.01), H: 0.5},
	}
	res, err := Campaign{Points: points, Replications: 3}.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Aggregates) != 2 {
		t.Fatalf("aggregates = %d", len(res.Aggregates))
	}
	if res.Aggregates[0].Spec.Technique != "STAT" || res.Aggregates[1].Spec.Technique != "SS" {
		t.Fatal("aggregates misaligned with points")
	}
	// SS pays h per task; STAT pays h once per PE — SS must waste more.
	if res.Aggregates[1].Wasted.Mean <= res.Aggregates[0].Wasted.Mean {
		t.Errorf("SS wasted %v <= STAT wasted %v",
			res.Aggregates[1].Wasted.Mean, res.Aggregates[0].Wasted.Mean)
	}
	if res.Aggregates[0].PerRun != nil || res.Aggregates[0].Results != nil {
		t.Error("per-run data retained without KeepRuns")
	}
}

func TestCampaignKeepRuns(t *testing.T) {
	res, err := Campaign{
		Points:       []RunSpec{testPoint(3)},
		Replications: 5,
		KeepRuns:     true,
	}.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	agg := res.Aggregates[0]
	if len(agg.PerRun) != 5 || len(agg.Results) != 5 {
		t.Fatalf("kept %d metrics, %d results; want 5 each", len(agg.PerRun), len(agg.Results))
	}
	for i, r := range agg.Results {
		if r == nil || r.Makespan != agg.PerRun[i].Makespan {
			t.Fatalf("result %d inconsistent with metrics", i)
		}
	}
}

func TestCampaignErrors(t *testing.T) {
	good := Campaign{Points: []RunSpec{testPoint(1)}, Replications: 2}

	c := good
	c.Points = nil
	if _, err := c.Run(context.Background()); err == nil {
		t.Error("empty campaign accepted")
	}
	c = good
	c.Replications = 0
	if _, err := c.Run(context.Background()); err == nil {
		t.Error("Replications=0 accepted")
	}
	c = good
	c.Backend = "nope"
	if _, err := c.Run(context.Background()); err == nil {
		t.Error("unknown backend accepted")
	}
	c = good
	c.Points = []RunSpec{{Technique: "FAC2", N: 0, P: 2, Work: workload.NewConstant(1)}}
	if _, err := c.Run(context.Background()); err == nil {
		t.Error("invalid point accepted")
	}
	// A failing run (unknown technique surfaces from the backend) must
	// abort the campaign with its error.
	c = good
	c.Points = []RunSpec{{Technique: "LIFO", N: 16, P: 2, Work: workload.NewConstant(1)}}
	c.Replications = 100
	if _, err := c.Run(context.Background()); err == nil {
		t.Error("backend error not propagated")
	}
}
