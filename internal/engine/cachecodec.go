package engine

import (
	"encoding/binary"
	"encoding/json"
	"hash/fnv"
	"math"

	"repro/internal/metrics"
)

// This file implements the cache's binary entry codec (format version 2).
//
// Version 1 entries are JSON (cachedCampaign): simple and durable, but a
// replay pays json.Unmarshal for every stored run — the dominant cost of
// a cache hit once the simulation itself is fast. Version 2 keeps the
// same logical content in a fixed-width binary layout plus a
// pre-aggregated snapshot section:
//
//	offset  size  field
//	0       4     magic "DLSB"
//	4       2     format version (uint16, = 2)
//	6       2     flags (bit 0: snapshot section present)
//	8       4     points (uint32)
//	12      4     replications (uint32)
//	16      2     spec-hash length (uint16), then the hash bytes
//	...           snapshot section (when flagged):
//	                overall Accumulator (6 × 8 bytes)
//	                per point: Wasted, Makespan, Speedup summaries
//	                (6 × 8 bytes each) + MeanOps (8 bytes)
//	...           per-run records, (point, replication) order:
//	                Wasted, Makespan, Speedup (float64) + SchedOps
//	                (int64) — 32 bytes per run
//	end     8     FNV-1a 64 checksum of all preceding bytes
//
// All integers and float bit patterns are little-endian; floats are
// stored as their IEEE-754 bits, so every value (including -0, ±Inf and
// NaN payloads) round-trips bit-exactly — the property the replay path's
// bit-identical-aggregates guarantee rests on. The trailing checksum
// turns silent corruption (a flipped bit would otherwise decode into a
// plausible float) into a detected mismatch, which demotes the hit to a
// miss and falls back to a live run.
//
// The snapshot section stores the campaign's final aggregates exactly as
// the live run computed them, so an aggregate-only hit (no per-run
// sinks, no KeepPerRun) is served without touching the per-run records
// at all. Decoders still read version-1 JSON entries (sniffed by the
// missing magic); writers always produce version 2.

const (
	// cacheFormatVersion is the legacy JSON entry format, still decoded
	// for entries written by earlier builds.
	cacheFormatVersion = 1
	// cacheBinaryVersion is the binary entry format this build writes.
	cacheBinaryVersion = 2

	snapFlagPresent = 1 << 0

	runRecordSize   = 32                // Wasted, Makespan, Speedup, SchedOps
	accumulatorSize = 6 * 8             // Count, Sum, MeanV, M2, MinV, MaxV
	summarySize     = 6 * 8             // N, Mean, Std, Min, Max, Median
	pointSnapSize   = 3*summarySize + 8 // three summaries + MeanOps
	checksumSize    = 8
)

var cacheMagic = [4]byte{'D', 'L', 'S', 'B'}

// cachedSnapshot is the decoded snapshot section: the campaign's final
// aggregates, bit-for-bit as the producing run computed them.
type cachedSnapshot struct {
	points  []pointSnapshot
	overall metrics.Accumulator
}

type pointSnapshot struct {
	wasted, makespan, speedup metrics.Summary
	meanOps                   float64
}

// cacheEntry is a validated cache blob: envelope checked (magic/version/
// hash/grid shape/checksum), snapshot decoded, per-run records still raw
// so an aggregate-only consumer never pays for decoding them.
type cacheEntry struct {
	snap    *cachedSnapshot
	records []byte         // binary per-run records (version 2)
	json    [][]RunMetrics // decoded per-run metrics (version 1)
	points  int
	reps    int
}

// putU64/putF64 append little-endian values.
func putU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}
func putF64(b []byte, v float64) []byte {
	return putU64(b, math.Float64bits(v))
}

func putAccumulator(b []byte, a metrics.Accumulator) []byte {
	b = putU64(b, uint64(a.Count))
	b = putF64(b, a.Sum)
	b = putF64(b, a.MeanV)
	b = putF64(b, a.M2)
	b = putF64(b, a.MinV)
	return putF64(b, a.MaxV)
}

func putSummary(b []byte, s metrics.Summary) []byte {
	b = putU64(b, uint64(int64(s.N)))
	b = putF64(b, s.Mean)
	b = putF64(b, s.Std)
	b = putF64(b, s.Min)
	b = putF64(b, s.Max)
	return putF64(b, s.Median)
}

func getU64(b []byte) (uint64, []byte) {
	return binary.LittleEndian.Uint64(b), b[8:]
}
func getF64(b []byte) (float64, []byte) {
	v, rest := getU64(b)
	return math.Float64frombits(v), rest
}

func getAccumulator(b []byte) (metrics.Accumulator, []byte) {
	var a metrics.Accumulator
	var u uint64
	u, b = getU64(b)
	a.Count = int64(u)
	a.Sum, b = getF64(b)
	a.MeanV, b = getF64(b)
	a.M2, b = getF64(b)
	a.MinV, b = getF64(b)
	a.MaxV, b = getF64(b)
	return a, b
}

func getSummary(b []byte) (metrics.Summary, []byte) {
	var s metrics.Summary
	var u uint64
	u, b = getU64(b)
	s.N = int(int64(u))
	s.Mean, b = getF64(b)
	s.Std, b = getF64(b)
	s.Min, b = getF64(b)
	s.Max, b = getF64(b)
	s.Median, b = getF64(b)
	return s, b
}

// encodeCacheEntry renders the version-2 binary entry for a completed
// campaign: envelope, snapshot of the final aggregates, fixed-width
// per-run records, trailing checksum.
func encodeCacheEntry(key string, perRun [][]RunMetrics, res *CampaignResult) []byte {
	points := len(perRun)
	reps := 0
	if points > 0 {
		reps = len(perRun[0])
	}
	size := 16 + 2 + len(key) +
		accumulatorSize + points*pointSnapSize +
		points*reps*runRecordSize + checksumSize
	b := make([]byte, 0, size)

	b = append(b, cacheMagic[:]...)
	b = binary.LittleEndian.AppendUint16(b, cacheBinaryVersion)
	b = binary.LittleEndian.AppendUint16(b, snapFlagPresent)
	b = binary.LittleEndian.AppendUint32(b, uint32(points))
	b = binary.LittleEndian.AppendUint32(b, uint32(reps))
	b = binary.LittleEndian.AppendUint16(b, uint16(len(key)))
	b = append(b, key...)

	b = putAccumulator(b, res.Overall)
	for pi := range perRun {
		agg := res.Aggregates[pi]
		b = putSummary(b, agg.Wasted)
		b = putSummary(b, agg.Makespan)
		b = putSummary(b, agg.Speedup)
		b = putF64(b, agg.MeanOps)
	}
	for _, runs := range perRun {
		for _, m := range runs {
			b = putF64(b, m.Wasted)
			b = putF64(b, m.Makespan)
			b = putF64(b, m.Speedup)
			b = putU64(b, uint64(m.SchedOps))
		}
	}
	return putU64(b, checksum(b))
}

// checksum is FNV-1a 64 over the entry's bytes.
func checksum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// decodeCacheEntry validates a cache blob against the spec it is
// supposed to answer and returns its decoded envelope. Any mismatch —
// unknown format, version drift, stale hash, wrong grid shape,
// truncation, checksum failure — reports ok == false, demoting the hit
// to a miss (the caller then runs live and overwrites the entry).
func decodeCacheEntry(data []byte, key string, points, reps int) (cacheEntry, bool) {
	if len(data) >= 4 && [4]byte(data[:4]) == cacheMagic {
		return decodeBinaryEntry(data, key, points, reps)
	}
	// Legacy version-1 JSON entry.
	cc, ok := decodeCachedJSON(data, key, points, reps)
	if !ok {
		return cacheEntry{}, false
	}
	return cacheEntry{json: cc.PerRun, points: points, reps: reps}, true
}

func decodeBinaryEntry(data []byte, key string, points, reps int) (cacheEntry, bool) {
	if len(data) < 18+checksumSize {
		return cacheEntry{}, false
	}
	if got := binary.LittleEndian.Uint64(data[len(data)-checksumSize:]); got != checksum(data[:len(data)-checksumSize]) {
		return cacheEntry{}, false
	}
	body := data[:len(data)-checksumSize]
	if binary.LittleEndian.Uint16(body[4:6]) != cacheBinaryVersion {
		return cacheEntry{}, false
	}
	flags := binary.LittleEndian.Uint16(body[6:8])
	if int(binary.LittleEndian.Uint32(body[8:12])) != points ||
		int(binary.LittleEndian.Uint32(body[12:16])) != reps {
		return cacheEntry{}, false
	}
	hashLen := int(binary.LittleEndian.Uint16(body[16:18]))
	rest := body[18:]
	if len(rest) < hashLen || string(rest[:hashLen]) != key {
		return cacheEntry{}, false
	}
	rest = rest[hashLen:]

	ent := cacheEntry{points: points, reps: reps}
	if flags&snapFlagPresent != 0 {
		need := accumulatorSize + points*pointSnapSize
		if len(rest) < need {
			return cacheEntry{}, false
		}
		snap := &cachedSnapshot{points: make([]pointSnapshot, points)}
		snap.overall, rest = getAccumulator(rest)
		for pi := 0; pi < points; pi++ {
			ps := &snap.points[pi]
			ps.wasted, rest = getSummary(rest)
			ps.makespan, rest = getSummary(rest)
			ps.speedup, rest = getSummary(rest)
			ps.meanOps, rest = getF64(rest)
		}
		ent.snap = snap
	}
	if len(rest) != points*reps*runRecordSize {
		return cacheEntry{}, false
	}
	ent.records = rest
	return ent, true
}

// perRunMetrics decodes the entry's per-run records into [point][rep]
// order — one flat backing array, no per-record allocation.
func (e cacheEntry) perRunMetrics() [][]RunMetrics {
	if e.json != nil {
		return e.json
	}
	flat := make([]RunMetrics, e.points*e.reps)
	rest := e.records
	for i := range flat {
		flat[i].Wasted, rest = getF64(rest)
		flat[i].Makespan, rest = getF64(rest)
		flat[i].Speedup, rest = getF64(rest)
		var u uint64
		u, rest = getU64(rest)
		flat[i].SchedOps = int64(u)
	}
	out := make([][]RunMetrics, e.points)
	for pi := range out {
		out[pi] = flat[pi*e.reps : (pi+1)*e.reps : (pi+1)*e.reps]
	}
	return out
}

// result reconstructs the campaign result from the snapshot section:
// the stored bits are the live run's aggregates, so the rebuilt result
// is bit-identical to both the producing run and a full per-run replay.
func (s *cachedSnapshot) result(points []RunSpec) *CampaignResult {
	aggs := make([]Aggregate, len(points))
	for pi := range points {
		ps := s.points[pi]
		aggs[pi] = Aggregate{
			Spec:     points[pi],
			Wasted:   ps.wasted,
			Makespan: ps.makespan,
			Speedup:  ps.speedup,
			MeanOps:  ps.meanOps,
		}
	}
	return &CampaignResult{Aggregates: aggs, Overall: s.overall}
}

// decodeCachedJSON decodes and checks a legacy version-1 JSON entry.
func decodeCachedJSON(data []byte, key string, points, reps int) (cachedCampaign, bool) {
	var cc cachedCampaign
	if err := json.Unmarshal(data, &cc); err != nil {
		return cachedCampaign{}, false
	}
	if cc.Version != cacheFormatVersion || cc.Hash != key ||
		cc.Points != points || cc.Replications != reps || len(cc.PerRun) != points {
		return cachedCampaign{}, false
	}
	for _, runs := range cc.PerRun {
		if len(runs) != reps {
			return cachedCampaign{}, false
		}
	}
	return cc, true
}
