package engine

import (
	"context"
	"reflect"
	"sync/atomic"
	"testing"
)

// These tests are the determinism gate for the aggregate fast path: when
// every attached sink is chunk-granular (PartialSink), the pipeline skips
// per-event delivery entirely and ships chunk partials instead. That
// bypass must be invisible in the output — Aggregates byte-identical
// (reflect.DeepEqual) and Overall bit-identical (==) to the ordered event
// path — for every backend, seed policy, worker count and chunk size. A
// single differing bit means the bypass changed aggregation.

// fastPathRun executes the spec's campaign with the partial bypass either
// live or force-disabled, plus a spy that proves which path ran.
func fastPathRun(t *testing.T, spec CampaignSpec, workers, chunkSize int, ordered bool) (*CampaignResult, *pathSpy) {
	t.Helper()
	c, err := spec.Compile(workers)
	if err != nil {
		t.Fatal(err)
	}
	c.ChunkSize = chunkSize
	c.disablePartials = ordered
	spy := &pathSpy{}
	res, err := c.RunWith(context.Background(), spy)
	if err != nil {
		t.Fatal(err)
	}
	return res, spy
}

// pathSpy counts which delivery interface the pipeline used. It
// implements both, so attaching it never changes fast-path eligibility.
type pathSpy struct {
	events   atomic.Int64
	partials atomic.Int64
	runs     atomic.Int64
}

func (s *pathSpy) Consume(_ context.Context, _ Event) error {
	s.events.Add(1)
	return nil
}

func (s *pathSpy) ConsumePartial(_ context.Context, p MetricsPartial) error {
	s.partials.Add(1)
	s.runs.Add(int64(p.Len()))
	return nil
}

func (s *pathSpy) Close() error { return nil }

// TestGoldenFastPathVsOrdered: for all three backends, all four seed
// policies, several worker counts and chunk sizes — including chunk=1
// (one run per partial) and chunk=7 > Replications=6 (clamped to one
// chunk per point) — the aggregate fast path produces byte-identical
// aggregates and a bit-identical overall roll-up to the ordered event
// path.
func TestGoldenFastPathVsOrdered(t *testing.T) {
	for _, backend := range []string{"sim", "des", "msg"} {
		for _, policy := range []string{SeedPerCell, SeedFlat, SeedFacade, SeedShared} {
			t.Run(backend+"/"+policy, func(t *testing.T) {
				spec := goldenSpec(backend)
				spec.SeedPolicy = policy
				refRes, refSpy := fastPathRun(t, spec, 1, 0, true)
				if refSpy.events.Load() == 0 || refSpy.partials.Load() != 0 {
					t.Fatalf("ordered reference used wrong path: %d events, %d partials",
						refSpy.events.Load(), refSpy.partials.Load())
				}
				wantRuns := refSpy.events.Load()
				for _, workers := range []int{1, 4, 8} {
					for _, chunk := range []int{0, 1, 7} {
						gotRes, spy := fastPathRun(t, spec, workers, chunk, false)
						if spy.events.Load() != 0 {
							t.Fatalf("workers=%d chunk=%d: fast path delivered %d per-run events",
								workers, chunk, spy.events.Load())
						}
						if spy.partials.Load() == 0 || spy.runs.Load() != wantRuns {
							t.Fatalf("workers=%d chunk=%d: partials carried %d runs, want %d",
								workers, chunk, spy.runs.Load(), wantRuns)
						}
						if !reflect.DeepEqual(gotRes.Aggregates, refRes.Aggregates) {
							t.Errorf("workers=%d chunk=%d: fast-path aggregates differ from ordered path", workers, chunk)
						}
						if gotRes.Overall != refRes.Overall {
							t.Errorf("workers=%d chunk=%d: overall roll-up differs from ordered path", workers, chunk)
						}
					}
				}
			})
		}
	}
}

// orderedOnly is a Sink without ConsumePartial — one attached ordered
// consumer must disable the bypass for the whole campaign.
type orderedOnly struct {
	events []Event
}

func (s *orderedOnly) Consume(_ context.Context, ev Event) error {
	s.events = append(s.events, ev)
	return nil
}

func (s *orderedOnly) Close() error { return nil }

// TestFastPathMixedSinksDisableBypass: attaching one ordered-only sink
// alongside partial-capable ones forces every sink back onto the ordered
// event path (all-or-nothing eligibility), and the ordered sink observes
// the full deterministic (point, replication) stream.
func TestFastPathMixedSinksDisableBypass(t *testing.T) {
	spec := goldenSpec("sim")
	c, err := spec.Compile(4)
	if err != nil {
		t.Fatal(err)
	}
	spy := &pathSpy{}
	ordered := &orderedOnly{}
	res, err := c.RunWith(context.Background(), spy, ordered)
	if err != nil {
		t.Fatal(err)
	}
	if spy.partials.Load() != 0 {
		t.Fatalf("mixed sinks still received %d partials; bypass must be all-or-nothing", spy.partials.Load())
	}
	points, _ := spec.Points()
	want := len(points) * spec.Replications
	if spy.events.Load() != int64(want) || len(ordered.events) != want {
		t.Fatalf("ordered delivery saw %d/%d events, want %d", spy.events.Load(), len(ordered.events), want)
	}
	for i, ev := range ordered.events {
		if ev.Point != i/spec.Replications || ev.Rep != i%spec.Replications {
			t.Fatalf("event %d out of order: point=%d rep=%d", i, ev.Point, ev.Rep)
		}
	}
	// The ordered fallback must agree with the fast path bit for bit.
	fastRes, _ := fastPathRun(t, spec, 4, 0, false)
	if !reflect.DeepEqual(res.Aggregates, fastRes.Aggregates) || res.Overall != fastRes.Overall {
		t.Error("mixed-sink ordered run disagrees with fast-path run")
	}
}

// TestFastPathKeepRunsDisablesBypass: KeepRuns needs full RunResults,
// which only the event path carries — the bypass must stand down.
func TestFastPathKeepRunsDisablesBypass(t *testing.T) {
	spec := goldenSpec("sim")
	c, err := spec.Compile(2)
	if err != nil {
		t.Fatal(err)
	}
	c.KeepRuns = true
	spy := &pathSpy{}
	if _, err := c.RunWith(context.Background(), spy); err != nil {
		t.Fatal(err)
	}
	if spy.partials.Load() != 0 {
		t.Fatalf("KeepRuns campaign received %d partials", spy.partials.Load())
	}
	if spy.events.Load() == 0 {
		t.Fatal("KeepRuns campaign delivered no events")
	}
}
