package engine

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// This file implements the pipeline's streaming writers: sinks that
// serialize every run event as it is delivered, so arbitrarily large
// campaigns export raw per-run data in O(1) memory. Because the pipeline
// delivers events in deterministic order, the written bytes are
// reproducible for a given seed regardless of worker count.

// CSVSink streams one CSV row per run. The header is written on the
// first event.
type CSVSink struct {
	w      *csv.Writer
	header bool
}

// NewCSVSink returns a sink writing per-run CSV rows to w.
func NewCSVSink(w io.Writer) *CSVSink { return &CSVSink{w: csv.NewWriter(w)} }

// Consume writes the event's run metrics as one row.
func (s *CSVSink) Consume(_ context.Context, ev Event) error {
	if !s.header {
		s.header = true
		if err := s.w.Write([]string{"point", "technique", "n", "p", "rep",
			"makespan_s", "avg_wasted_s", "speedup", "sched_ops"}); err != nil {
			return err
		}
	}
	return s.w.Write([]string{
		strconv.Itoa(ev.Point),
		ev.Spec.Technique,
		strconv.FormatInt(ev.Spec.N, 10),
		strconv.Itoa(ev.Spec.P),
		strconv.Itoa(ev.Rep),
		formatFloat(ev.Metrics.Makespan),
		formatFloat(ev.Metrics.Wasted),
		formatFloat(ev.Metrics.Speedup),
		strconv.FormatInt(ev.Metrics.SchedOps, 10),
	})
}

// Close flushes buffered rows.
func (s *CSVSink) Close() error {
	s.w.Flush()
	return s.w.Error()
}

// formatFloat renders v with the shortest representation that round-trips
// exactly, so consumers can reconstruct the bit-exact value.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// JSONLSink streams one JSON object per run (JSON Lines).
type JSONLSink struct {
	enc *json.Encoder
}

// NewJSONLSink returns a sink writing one JSON object per line to w.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{enc: json.NewEncoder(w)} }

type jsonlRow struct {
	Point     int     `json:"point"`
	Technique string  `json:"technique"`
	N         int64   `json:"n"`
	P         int     `json:"p"`
	Rep       int     `json:"rep"`
	Makespan  float64 `json:"makespan_s"`
	Wasted    float64 `json:"avg_wasted_s"`
	Speedup   float64 `json:"speedup"`
	SchedOps  int64   `json:"sched_ops"`
}

// Consume writes the event's run metrics as one JSON line.
func (s *JSONLSink) Consume(_ context.Context, ev Event) error {
	return s.enc.Encode(jsonlRow{
		Point:     ev.Point,
		Technique: ev.Spec.Technique,
		N:         ev.Spec.N,
		P:         ev.Spec.P,
		Rep:       ev.Rep,
		Makespan:  ev.Metrics.Makespan,
		Wasted:    ev.Metrics.Wasted,
		Speedup:   ev.Metrics.Speedup,
		SchedOps:  ev.Metrics.SchedOps,
	})
}

// Close is a no-op; the encoder writes through.
func (s *JSONLSink) Close() error { return nil }

// DecodeJSONLEvent parses one line of JSONLSink output back into an
// Event. It lives next to the encoder so the two can never drift: a
// remote consumer decoding a dlsimd result stream reconstructs exactly
// the metrics the producing pipeline emitted (floats are encoded in
// shortest round-trip form, so the bits survive the trip). Unknown
// fields are ignored — the v1 contract permits additive row fields, so
// the reader must stay tolerant of producers newer than itself. The
// reconstructed Spec carries only the row's identifying coordinates
// (Technique, N, P) — the workload, seeds and parameters live in the
// campaign spec the stream was produced from.
func DecodeJSONLEvent(line []byte) (Event, error) {
	var row jsonlRow
	if err := json.Unmarshal(line, &row); err != nil {
		return Event{}, fmt.Errorf("engine: decode result line: %w", err)
	}
	return Event{
		Point: row.Point,
		Rep:   row.Rep,
		Spec:  RunSpec{Technique: row.Technique, N: row.N, P: row.P},
		Metrics: RunMetrics{
			Makespan: row.Makespan,
			Wasted:   row.Wasted,
			Speedup:  row.Speedup,
			SchedOps: row.SchedOps,
		},
	}, nil
}
