package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/rng"
)

// Event is one completed run flowing through the results pipeline.
// Events are delivered to sinks in deterministic global order — point 0
// replication 0, point 0 replication 1, … — regardless of worker count
// or completion order, so any sink output is bit-reproducible.
type Event struct {
	Point int // index into Campaign.Points
	Rep   int // replication index within the point

	// Spec is the run's spec as executed, with the derived RNGState.
	Spec RunSpec

	// Metrics are the per-run scalars every campaign reports.
	Metrics RunMetrics

	// Result is the full backend result. It is non-nil only when the
	// campaign retains results (Campaign.KeepRuns); cache replays and
	// lean streaming runs deliver metrics-only events.
	Result *RunResult
}

// Sink consumes the ordered stream of run events. The pipeline invokes
// Consume from a single goroutine, so implementations need no locking.
// A Consume error aborts the campaign; ctx is the campaign's (or the
// replaying request's) context, so sinks streaming to slow or remote
// destinations can abandon work when the consumer goes away. Close
// flushes the sink after the final event (or after an abort) and is
// called exactly once.
type Sink interface {
	Consume(ctx context.Context, ev Event) error
	Close() error
}

// Stream executes the campaign, emitting every completed run to the
// given sinks instead of materializing results. This is the primitive
// Run is built on: the worker pool completes runs in arbitrary order, a
// reorder stage restores deterministic (point, replication) order, and
// sinks observe the exact event sequence a serial execution would
// produce. All sinks are closed before Stream returns; the first run or
// sink error aborts the remaining grid and is returned.
//
// Cancelling ctx aborts the campaign: no further backend runs are
// scheduled once cancellation is observed, the worker pool drains
// without leaking goroutines, every sink is still closed exactly once,
// and the returned error wraps ctx.Err() (errors.Is(err,
// context.Canceled) holds). Events already dispatched before the
// cancellation form a prefix of the deterministic global order.
func (c Campaign) Stream(ctx context.Context, sinks ...Sink) error {
	if ctx == nil {
		ctx = context.Background()
	}
	// closeAll flushes every sink exactly once, on success and on every
	// error path alike, preserving the first error.
	closeAll := func(first error) error {
		for _, s := range sinks {
			if err := s.Close(); err != nil && first == nil {
				first = fmt.Errorf("engine: sink close: %w", err)
			}
		}
		return first
	}
	if err := ctx.Err(); err != nil {
		return closeAll(fmt.Errorf("engine: campaign: %w", err))
	}
	if len(c.Points) == 0 {
		return closeAll(fmt.Errorf("engine: campaign has no points"))
	}
	if c.Replications <= 0 {
		return closeAll(fmt.Errorf("engine: Replications must be positive, got %d", c.Replications))
	}
	be, err := New(c.Backend)
	if err != nil {
		return closeAll(err)
	}
	for i, pt := range c.Points {
		if err := pt.Validate(); err != nil {
			return closeAll(fmt.Errorf("engine: campaign point %d: %w", i, err))
		}
	}
	seedFor := c.SeedFor
	if seedFor == nil {
		seedFor = func(point, rep int) uint64 {
			return rng.RunSeed(c.Points[point].RNGState, rep)
		}
	}
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	reps := c.Replications
	total := len(c.Points) * reps
	if workers > total {
		workers = total
	}
	// Backends exposing the amortized Runner path serve each point with
	// per-worker runners: spec validated once, scheduler reset instead of
	// rebuilt, pooled result buffers. The generic Backend.Run fallback
	// (and the disableRunners test hook) revalidates and reallocates per
	// run; both paths produce bit-identical events.
	rb, _ := be.(RunnerBackend)
	if c.disableRunners {
		rb = nil
	}

	var (
		next     atomic.Int64
		failed   atomic.Bool
		errMu    sync.Mutex
		firstErr error
		wg       sync.WaitGroup

		// nextOut is the next event index the reorder stage dispatches
		// (its published value; the reorder goroutine's private counter
		// runs ahead within a batch). Workers wait before executing runs
		// more than window indices ahead of it, which bounds the reorder
		// ring under arbitrary run-duration skew (one pathologically slow
		// run cannot make the buffer absorb the whole remaining grid).
		outMu   sync.Mutex
		outCond = sync.NewCond(&outMu)
		nextOut int64
	)
	// Completed events travel in per-worker batches — one channel send
	// and at most one broadcast per eventBatch runs instead of per run —
	// and the window is sized so batching slack cannot stall the ring.
	const eventBatch = 8
	window := int64(4 * eventBatch * workers)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		failed.Store(true)
		outMu.Lock()
		outCond.Broadcast() // release workers waiting on the window
		outMu.Unlock()
	}

	// The watcher translates context cancellation into the pipeline's
	// failure protocol: failed stops workers from claiming further runs
	// and the broadcast releases any worker parked on the reorder window.
	watchDone := make(chan struct{})
	var watch sync.WaitGroup
	watch.Add(1)
	go func() {
		defer watch.Done()
		select {
		case <-ctx.Done():
			fail(fmt.Errorf("engine: campaign: %w", ctx.Err()))
		case <-watchDone:
		}
	}()

	events := make(chan []Event, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var (
				runner   Runner
				runnerPt = -1
			)
			batch := make([]Event, 0, eventBatch)
			flush := func() {
				if len(batch) > 0 {
					events <- batch
					batch = make([]Event, 0, eventBatch)
				}
			}
			defer flush() // runs before wg.Done, so before close(events)
			for {
				j := next.Add(1) - 1
				if j >= int64(total) || failed.Load() {
					return
				}
				outMu.Lock()
				if j >= nextOut+window {
					// The reorder stage may be waiting for an event in
					// this worker's pocket; hand it over before parking.
					outMu.Unlock()
					flush()
					outMu.Lock()
					for j >= nextOut+window && !failed.Load() {
						outCond.Wait()
					}
				}
				outMu.Unlock()
				if failed.Load() {
					return
				}
				pi, rep := int(j)/reps, int(j)%reps
				spec := c.Points[pi]
				spec.RNGState = seedFor(pi, rep)
				var res *RunResult
				var err error
				if rb != nil {
					if runnerPt != pi {
						if runner, err = rb.NewRunner(c.Points[pi]); err != nil {
							fail(fmt.Errorf("engine: point %d replication %d: %w", pi, rep, err))
							return
						}
						runnerPt = pi
					}
					res, err = runner.Run(ctx, spec)
				} else {
					res, err = be.Run(ctx, spec)
				}
				if err != nil {
					fail(fmt.Errorf("engine: point %d replication %d: %w", pi, rep, err))
					return
				}
				ev := Event{Point: pi, Rep: rep, Spec: spec, Metrics: pointMetrics(spec, res)}
				if c.KeepRuns {
					if rb != nil {
						// Runner results alias the runner's arena; detach
						// them before the next run overwrites the buffers.
						res = res.Clone()
					}
					ev.Result = res
				}
				batch = append(batch, ev)
				if len(batch) >= eventBatch {
					flush()
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(events)
	}()

	// Reorder completed runs into global (point, replication) order and
	// dispatch. The ring holds events completed ahead of the oldest
	// still-running run; the worker-side window bounds in-flight indices
	// to [nextOut, nextOut+window), so slot j%window is collision-free
	// and no per-event map churn occurs. nextOutLocal is the reorder
	// stage's private cursor, published to nextOut (with one broadcast)
	// once per drained batch.
	var (
		ring         = make([]Event, window)
		present      = make([]bool, window)
		nextOutLocal int64
	)
	for batch := range events {
		for _, ev := range batch {
			idx := (int64(ev.Point)*int64(reps) + int64(ev.Rep)) % window
			ring[idx] = ev
			present[idx] = true
		}
		dispatched := false
		for {
			idx := nextOutLocal % window
			if !present[idx] {
				break
			}
			out := ring[idx]
			ring[idx] = Event{} // drop the Result reference
			present[idx] = false
			nextOutLocal++
			dispatched = true
			if failed.Load() {
				continue // drain without dispatching after an abort
			}
			for _, s := range sinks {
				if err := s.Consume(ctx, out); err != nil {
					fail(fmt.Errorf("engine: sink: %w", err))
					break
				}
			}
		}
		if dispatched {
			outMu.Lock()
			nextOut = nextOutLocal
			outCond.Broadcast()
			outMu.Unlock()
		}
	}
	// All workers and the consumer loop are done; retire the watcher so
	// no fail() can run concurrently with reading firstErr.
	close(watchDone)
	watch.Wait()
	errMu.Lock()
	err = firstErr
	errMu.Unlock()
	return closeAll(err)
}

// aggregateSink folds the event stream into per-point Aggregates — the
// one aggregation implementation behind Campaign.Run, CampaignSpec
// execution and cache replay. Events arrive in replication order, so the
// per-run scalars (32 bytes per run, not full RunResults) buffer in the
// exact sequence a serial execution produces; summarizing them yields
// aggregates bit-identical to the historical buffered path. The online
// wasted-time accumulators feed the campaign's streaming Overall
// roll-up.
type aggregateSink struct {
	points      []RunSpec
	reps        int
	keepPerRun  bool // expose per-run metrics in the Aggregates
	keepResults bool // expose full results in the Aggregates

	wasted  []metrics.Accumulator
	ops     []int64
	perRun  [][]RunMetrics
	results [][]*RunResult
}

func newAggregateSink(points []RunSpec, reps int, keepPerRun, keepResults bool) *aggregateSink {
	if reps < 0 {
		reps = 0 // Stream rejects the campaign before any event flows
	}
	s := &aggregateSink{
		points:      points,
		reps:        reps,
		keepPerRun:  keepPerRun,
		keepResults: keepResults,
		wasted:      make([]metrics.Accumulator, len(points)),
		ops:         make([]int64, len(points)),
		perRun:      make([][]RunMetrics, len(points)),
	}
	for i := range points {
		s.perRun[i] = make([]RunMetrics, 0, reps)
	}
	if keepResults {
		s.results = make([][]*RunResult, len(points))
		for i := range points {
			s.results[i] = make([]*RunResult, 0, reps)
		}
	}
	return s
}

func (s *aggregateSink) Consume(_ context.Context, ev Event) error {
	pi := ev.Point
	if pi < 0 || pi >= len(s.points) {
		return fmt.Errorf("engine: aggregate sink: point %d out of range", pi)
	}
	if ev.Rep != len(s.perRun[pi]) {
		return fmt.Errorf("engine: aggregate sink: point %d got replication %d, want %d (events out of order)",
			pi, ev.Rep, len(s.perRun[pi]))
	}
	m := ev.Metrics
	s.wasted[pi].Add(m.Wasted)
	s.ops[pi] += m.SchedOps
	s.perRun[pi] = append(s.perRun[pi], m)
	if s.keepResults {
		s.results[pi] = append(s.results[pi], ev.Result)
	}
	return nil
}

func (s *aggregateSink) Close() error {
	for pi := range s.points {
		if got := len(s.perRun[pi]); got != s.reps {
			return fmt.Errorf("engine: aggregate sink: point %d saw %d of %d replications", pi, got, s.reps)
		}
	}
	return nil
}

// Aggregates assembles the final per-point aggregates by summarizing the
// retained per-run scalars in replication order — bit-identical to the
// historical buffered path for every statistic, including the two-pass
// standard deviation and the median.
func (s *aggregateSink) Aggregates() []Aggregate {
	out := make([]Aggregate, len(s.points))
	vals := make([]float64, s.reps)
	summarize := func(runs []RunMetrics, get func(RunMetrics) float64) metrics.Summary {
		for i, m := range runs {
			vals[i] = get(m)
		}
		return metrics.Summarize(vals)
	}
	for pi := range s.points {
		runs := s.perRun[pi]
		agg := Aggregate{
			Spec:     s.points[pi],
			Wasted:   summarize(runs, func(m RunMetrics) float64 { return m.Wasted }),
			Makespan: summarize(runs, func(m RunMetrics) float64 { return m.Makespan }),
			Speedup:  summarize(runs, func(m RunMetrics) float64 { return m.Speedup }),
			MeanOps:  float64(s.ops[pi]) / float64(s.reps),
		}
		if s.keepPerRun {
			agg.PerRun = runs
		}
		if s.keepResults {
			agg.Results = s.results[pi]
		}
		out[pi] = agg
	}
	return out
}

// Overall merges the per-point wasted-time accumulators in point order —
// a deterministic cross-partition roll-up of the whole campaign.
func (s *aggregateSink) Overall() metrics.Accumulator {
	var a metrics.Accumulator
	for pi := range s.points {
		a.Merge(s.wasted[pi])
	}
	return a
}
