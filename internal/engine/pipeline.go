package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/rng"
)

// Event is one completed run flowing through the results pipeline.
// Events are delivered to sinks in deterministic global order — point 0
// replication 0, point 0 replication 1, … — regardless of worker count
// or completion order, so any sink output is bit-reproducible.
type Event struct {
	Point int // index into Campaign.Points
	Rep   int // replication index within the point

	// Spec is the run's spec as executed, with the derived RNGState.
	Spec RunSpec

	// Metrics are the per-run scalars every campaign reports.
	Metrics RunMetrics

	// Result is the full backend result. It is non-nil only when the
	// campaign retains results (Campaign.KeepRuns); cache replays and
	// lean streaming runs deliver metrics-only events.
	Result *RunResult
}

// Sink consumes the ordered stream of run events. The pipeline invokes
// Consume from a single goroutine, so implementations need no locking.
// A Consume error aborts the campaign; ctx is the campaign's (or the
// replaying request's) context, so sinks streaming to slow or remote
// destinations can abandon work when the consumer goes away. Close
// flushes the sink after the final event (or after an abort) and is
// called exactly once.
type Sink interface {
	Consume(ctx context.Context, ev Event) error
	Close() error
}

// Stream executes the campaign, emitting every completed run to the
// given sinks instead of materializing results. This is the primitive
// Run is built on: the worker pool executes replication batches
// (chunks) in arbitrary completion order, a reorder stage restores
// deterministic (point, replication) order at chunk granularity, and
// sinks observe the exact event sequence a serial execution would
// produce. When every sink is a PartialSink (and KeepRuns is off), the
// partial-merge fast path replaces per-run event delivery: workers
// fold each chunk into a MetricsPartial and the reorder stage merges
// the partials in the same deterministic chunk order via
// ConsumePartial — same values, same order, no per-run Event ever
// crossing a channel. All sinks are closed before Stream returns; the
// first run or sink error aborts the remaining grid and is returned.
//
// Cancelling ctx aborts the campaign: no further backend runs are
// scheduled once cancellation is observed, the worker pool drains
// without leaking goroutines, every sink is still closed exactly once,
// and the returned error wraps ctx.Err() (errors.Is(err,
// context.Canceled) holds). Events already dispatched before the
// cancellation form a prefix of the deterministic global order.
func (c Campaign) Stream(ctx context.Context, sinks ...Sink) error {
	if ctx == nil {
		ctx = context.Background()
	}
	// closeAll flushes every sink exactly once, on success and on every
	// error path alike, preserving the first error.
	closeAll := func(first error) error {
		for _, s := range sinks {
			if err := s.Close(); err != nil && first == nil {
				first = fmt.Errorf("engine: sink close: %w", err)
			}
		}
		return first
	}
	if err := ctx.Err(); err != nil {
		return closeAll(fmt.Errorf("engine: campaign: %w", err))
	}
	if len(c.Points) == 0 {
		return closeAll(fmt.Errorf("engine: campaign has no points"))
	}
	if c.Replications <= 0 {
		return closeAll(fmt.Errorf("engine: Replications must be positive, got %d", c.Replications))
	}
	be, err := New(c.Backend)
	if err != nil {
		return closeAll(err)
	}
	for i, pt := range c.Points {
		if err := pt.Validate(); err != nil {
			return closeAll(fmt.Errorf("engine: campaign point %d: %w", i, err))
		}
	}
	seedFor := c.SeedFor
	if seedFor == nil {
		seedFor = func(point, rep int) uint64 {
			return rng.RunSeed(c.Points[point].RNGState, rep)
		}
	}
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	reps := c.Replications
	total := len(c.Points) * reps
	if workers > total {
		workers = total
	}
	// The unit of work is a chunk: a (point, replication-range) batch a
	// worker executes end to end on its private execution context. One
	// channel send and one reorder pass per chunk — not per run —
	// amortizes pipeline overhead to ~0 per run once chunks carry tens
	// of replications.
	chunkSize := c.ChunkSize
	if chunkSize <= 0 {
		chunkSize = autoChunkSize(total, reps, workers)
	}
	if chunkSize > reps {
		chunkSize = reps
	}
	chunksPerPoint := (reps + chunkSize - 1) / chunkSize
	totalChunks := int64(len(c.Points)) * int64(chunksPerPoint)
	if int64(workers) > totalChunks {
		workers = int(totalChunks)
	}
	// Backends exposing the amortized Runner path give each worker a
	// per-core execution context: spec validated once per point, the
	// scheduler Reset instead of rebuilt, result buffers pooled in the
	// worker's arena (and retained across points via Rebind). The
	// generic Backend.Run fallback (and the disableRunners test hook)
	// revalidates and reallocates per run; both paths produce
	// bit-identical events.
	rb, _ := be.(RunnerBackend)
	if c.disableRunners {
		rb = nil
	}
	// The aggregate fast path: when every sink accepts chunk-granular
	// partials and no full results are retained, workers fold each chunk
	// into a MetricsPartial (compact per-run scalars plus chunk-local
	// Welford accumulators) and the merge stage delivers one partial per
	// chunk in deterministic order — no per-run Event is ever built or
	// crosses a channel. One order-sensitive sink disables the bypass
	// for the whole campaign. Aggregates are bit-identical either way.
	var psinks []PartialSink
	if !c.KeepRuns && !c.disablePartials {
		psinks = partialSinks(sinks)
	}
	fast := psinks != nil
	// runPool recycles the per-chunk scalar buffers of the fast path:
	// the merge stage returns each buffer after dispatching its partial,
	// so the steady state allocates nothing per chunk.
	var runPool sync.Pool
	if fast {
		runPool.New = func() any {
			b := make([]RunMetrics, 0, chunkSize)
			return &b
		}
	}

	var (
		next     atomic.Int64
		failed   atomic.Bool
		errMu    sync.Mutex
		firstErr error
		wg       sync.WaitGroup

		// nextOut is the next chunk index the reorder stage dispatches
		// (its published value; the reorder goroutine's private counter
		// runs ahead while draining). Workers wait before executing
		// chunks more than window indices ahead of it, which bounds the
		// reorder ring under arbitrary run-duration skew (one
		// pathologically slow chunk cannot make the buffer absorb the
		// whole remaining grid).
		outMu   sync.Mutex
		outCond = sync.NewCond(&outMu)
		nextOut int64
	)
	// The in-flight window is in chunk units: enough slack that fast
	// workers never stall behind one slow chunk, small enough that the
	// ring buffers at most window chunks of completed events.
	window := int64(4 * workers)
	if window < 8 {
		window = 8
	}
	if window > totalChunks {
		window = totalChunks
	}
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		failed.Store(true)
		outMu.Lock()
		outCond.Broadcast() // release workers waiting on the window
		outMu.Unlock()
	}

	// The watcher translates context cancellation into the pipeline's
	// failure protocol: failed stops workers from claiming further runs
	// and the broadcast releases any worker parked on the reorder window.
	watchDone := make(chan struct{})
	var watch sync.WaitGroup
	watch.Add(1)
	go func() {
		defer watch.Done()
		select {
		case <-ctx.Done():
			fail(fmt.Errorf("engine: campaign: %w", ctx.Err()))
		case <-watchDone:
		}
	}()

	// chunkDone carries one completed (possibly incomplete, on abort)
	// chunk from a worker to the reorder stage: per-run events on the
	// ordered path, one folded MetricsPartial on the fast path.
	type chunkDone struct {
		idx     int64 // global chunk index
		events  []Event
		partial MetricsPartial
		buf     *[]RunMetrics // pooled backing buffer of partial.Runs
	}
	chunks := make(chan chunkDone, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var (
				runner   Runner
				runnerPt = -1
			)
			for {
				k := next.Add(1) - 1
				if k >= totalChunks || failed.Load() {
					return
				}
				// A worker holds no completed events while parked (chunks
				// are handed over as soon as they finish), so waiting on
				// the window can never starve the reorder stage.
				outMu.Lock()
				for k >= nextOut+window && !failed.Load() {
					outCond.Wait()
				}
				outMu.Unlock()
				if failed.Load() {
					return
				}
				pi := int(k / int64(chunksPerPoint))
				repLo := int(k%int64(chunksPerPoint)) * chunkSize
				repHi := repLo + chunkSize
				if repHi > reps {
					repHi = reps
				}
				if rb != nil && runnerPt != pi {
					var err error
					if rbn, ok := runner.(Rebinder); ok {
						// Keep the worker's execution context (arenas,
						// pooled buffers) alive across point switches.
						err = rbn.Rebind(c.Points[pi])
					} else {
						runner, err = rb.NewRunner(c.Points[pi])
					}
					if err != nil {
						fail(fmt.Errorf("engine: point %d: %w", pi, err))
						return
					}
					runnerPt = pi
				}
				var (
					batch []Event
					part  MetricsPartial
					buf   *[]RunMetrics
				)
				if fast {
					buf = runPool.Get().(*[]RunMetrics)
					part = MetricsPartial{Point: pi, RepLo: repLo, Runs: (*buf)[:0]}
				} else {
					batch = make([]Event, 0, repHi-repLo)
				}
				aborted := false
				for rep := repLo; rep < repHi; rep++ {
					if failed.Load() {
						aborted = true
						break
					}
					spec := c.Points[pi]
					spec.RNGState = seedFor(pi, rep)
					var res *RunResult
					var err error
					if rb != nil {
						res, err = runner.Run(ctx, spec)
					} else {
						res, err = be.Run(ctx, spec)
					}
					if err != nil {
						fail(fmt.Errorf("engine: point %d replication %d: %w", pi, rep, err))
						aborted = true
						break
					}
					if fast {
						// Fold the run into the chunk-local partial: a
						// 32-byte scalar append plus three Welford Adds —
						// no Event, no Spec copy, no per-run dispatch.
						part.add(pointMetrics(spec, res))
						continue
					}
					ev := Event{Point: pi, Rep: rep, Spec: spec, Metrics: pointMetrics(spec, res)}
					if c.KeepRuns {
						if rb != nil {
							// Runner results alias the runner's arena; detach
							// them before the next run overwrites the buffers.
							res = res.Clone()
						}
						ev.Result = res
					}
					batch = append(batch, ev)
				}
				// An incomplete chunk is only produced after fail(), whose
				// atomic store happens before this send — the reorder
				// stage observes failed and never dispatches it, so the
				// delivered stream stays a contiguous prefix.
				if fast {
					*buf = part.Runs // retain the grown backing array for reuse
					chunks <- chunkDone{idx: k, partial: part, buf: buf}
				} else {
					chunks <- chunkDone{idx: k, events: batch}
				}
				if aborted {
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(chunks)
	}()

	// Reorder completed chunks into global order and dispatch. Runs
	// within a chunk are already in replication order, so ordering the
	// chunks orders the whole stream. The worker-side window bounds
	// in-flight chunk indices to [nextOut, nextOut+window), so slot
	// k%window is collision-free. nextOutLocal is the reorder stage's
	// private cursor, published to nextOut (with one broadcast) once per
	// received chunk that advances it. On the fast path this stage is
	// the partial-merge stage: one ConsumePartial per chunk instead of
	// one Consume per run, with the scalar buffer recycled afterwards.
	var (
		ring         = make([]chunkDone, window)
		present      = make([]bool, window)
		nextOutLocal int64
	)
	for cd := range chunks {
		slot := cd.idx % window
		ring[slot] = cd
		present[slot] = true
		advanced := false
		for {
			slot := nextOutLocal % window
			if !present[slot] {
				break
			}
			out := ring[slot]
			ring[slot] = chunkDone{}
			present[slot] = false
			nextOutLocal++
			advanced = true
			if fast {
				if !failed.Load() {
					for _, ps := range psinks {
						if err := ps.ConsumePartial(ctx, out.partial); err != nil {
							fail(fmt.Errorf("engine: sink: %w", err))
							break
						}
					}
				}
				*out.buf = out.partial.Runs[:0]
				runPool.Put(out.buf)
				continue
			}
			evs := out.events
			for i := range evs {
				if failed.Load() {
					break // drain without dispatching after an abort
				}
				ev := evs[i]
				evs[i] = Event{} // drop the Result reference
				for _, s := range sinks {
					if err := s.Consume(ctx, ev); err != nil {
						fail(fmt.Errorf("engine: sink: %w", err))
						break
					}
				}
			}
		}
		if advanced {
			outMu.Lock()
			nextOut = nextOutLocal
			outCond.Broadcast()
			outMu.Unlock()
		}
	}
	// All workers and the consumer loop are done; retire the watcher so
	// no fail() can run concurrently with reading firstErr.
	close(watchDone)
	watch.Wait()
	errMu.Lock()
	err = firstErr
	errMu.Unlock()
	return closeAll(err)
}

// autoChunkSize picks the replication-batch size when the caller didn't:
// large enough that the per-chunk pipeline overhead (one channel send,
// one reorder pass, at most one broadcast) amortizes to ~0 per run,
// small enough to keep ~8 chunks per worker in flight for load balance.
// Chunks never span points, so the result is capped at the per-point
// replication count, and a hard ceiling bounds how many completed
// events the reorder window can buffer. Chunk size affects scheduling
// only — the delivered stream is bit-identical for every value.
func autoChunkSize(total, reps, workers int) int {
	const (
		chunksPerWorker = 8
		maxChunk        = 1024
	)
	c := total / (workers * chunksPerWorker)
	if c < 1 {
		c = 1
	}
	if c > maxChunk {
		c = maxChunk
	}
	if c > reps {
		c = reps
	}
	return c
}

// aggregateSink folds the event stream into per-point Aggregates — the
// one aggregation implementation behind Campaign.Run, CampaignSpec
// execution and cache replay. Events arrive in replication order, so the
// per-run scalars (32 bytes per run, not full RunResults) buffer in the
// exact sequence a serial execution produces; summarizing them yields
// aggregates bit-identical to the historical buffered path. The online
// wasted-time accumulators feed the campaign's streaming Overall
// roll-up.
type aggregateSink struct {
	points      []RunSpec
	reps        int
	keepPerRun  bool // expose per-run metrics in the Aggregates
	keepResults bool // expose full results in the Aggregates

	wasted  []metrics.Accumulator
	ops     []int64
	perRun  [][]RunMetrics
	results [][]*RunResult

	// streamed are the per-point merges of the fast path's chunk-local
	// Welford partials, combined in delivery (chunk) order via
	// Accumulator.Merge. They are the partial-merge stage's consistency
	// guard: Close cross-checks their counts against the buffered
	// scalars, so a partial that skipped or double-counted a run fails
	// loudly instead of silently skewing aggregates. Allocated lazily on
	// the first ConsumePartial.
	streamed []metrics.Accumulator
}

func newAggregateSink(points []RunSpec, reps int, keepPerRun, keepResults bool) *aggregateSink {
	if reps < 0 {
		reps = 0 // Stream rejects the campaign before any event flows
	}
	s := &aggregateSink{
		points:      points,
		reps:        reps,
		keepPerRun:  keepPerRun,
		keepResults: keepResults,
		wasted:      make([]metrics.Accumulator, len(points)),
		ops:         make([]int64, len(points)),
		perRun:      make([][]RunMetrics, len(points)),
	}
	for i := range points {
		s.perRun[i] = make([]RunMetrics, 0, reps)
	}
	if keepResults {
		s.results = make([][]*RunResult, len(points))
		for i := range points {
			s.results[i] = make([]*RunResult, 0, reps)
		}
	}
	return s
}

func (s *aggregateSink) Consume(_ context.Context, ev Event) error {
	pi := ev.Point
	if pi < 0 || pi >= len(s.points) {
		return fmt.Errorf("engine: aggregate sink: point %d out of range", pi)
	}
	if ev.Rep != len(s.perRun[pi]) {
		return fmt.Errorf("engine: aggregate sink: point %d got replication %d, want %d (events out of order)",
			pi, ev.Rep, len(s.perRun[pi]))
	}
	m := ev.Metrics
	s.wasted[pi].Add(m.Wasted)
	s.ops[pi] += m.SchedOps
	s.perRun[pi] = append(s.perRun[pi], m)
	if s.keepResults {
		s.results[pi] = append(s.results[pi], ev.Result)
	}
	return nil
}

// ConsumePartial implements PartialSink: one call folds a whole chunk.
// The buffered per-run scalars and the sequential wasted-time
// accumulator are fed in exactly the order the per-event path would
// feed them, so every downstream statistic — including the two-pass
// standard deviation, the median and the Overall roll-up — is
// bit-identical to the ordered sink path. The chunk's pre-folded
// Welford partials are merged in delivery order as the partial-merge
// stage's integrity cross-check.
func (s *aggregateSink) ConsumePartial(_ context.Context, p MetricsPartial) error {
	pi := p.Point
	if pi < 0 || pi >= len(s.points) {
		return fmt.Errorf("engine: aggregate sink: point %d out of range", pi)
	}
	if p.RepLo != len(s.perRun[pi]) {
		return fmt.Errorf("engine: aggregate sink: point %d got chunk at replication %d, want %d (partials out of order)",
			pi, p.RepLo, len(s.perRun[pi]))
	}
	if s.streamed == nil {
		s.streamed = make([]metrics.Accumulator, len(s.points))
	}
	s.perRun[pi] = append(s.perRun[pi], p.Runs...)
	for i := range p.Runs {
		// Sequential feed keeps the Overall roll-up bit-identical to the
		// ordered path (merging chunk partials would reassociate the
		// floating-point sums).
		s.wasted[pi].Add(p.Runs[i].Wasted)
	}
	s.ops[pi] += p.Ops
	s.streamed[pi].Merge(p.Wasted)
	return nil
}

func (s *aggregateSink) Close() error {
	for pi := range s.points {
		if got := len(s.perRun[pi]); got != s.reps {
			return fmt.Errorf("engine: aggregate sink: point %d saw %d of %d replications", pi, got, s.reps)
		}
		if s.streamed != nil && s.streamed[pi].Count != int64(s.reps) {
			return fmt.Errorf("engine: aggregate sink: point %d merged partials cover %d of %d replications",
				pi, s.streamed[pi].Count, s.reps)
		}
	}
	return nil
}

// Aggregates assembles the final per-point aggregates by summarizing the
// retained per-run scalars in replication order — bit-identical to the
// historical buffered path for every statistic, including the two-pass
// standard deviation and the median.
func (s *aggregateSink) Aggregates() []Aggregate {
	out := make([]Aggregate, len(s.points))
	vals := make([]float64, s.reps)
	summarize := func(runs []RunMetrics, get func(RunMetrics) float64) metrics.Summary {
		for i, m := range runs {
			vals[i] = get(m)
		}
		return metrics.Summarize(vals)
	}
	for pi := range s.points {
		runs := s.perRun[pi]
		agg := Aggregate{
			Spec:     s.points[pi],
			Wasted:   summarize(runs, func(m RunMetrics) float64 { return m.Wasted }),
			Makespan: summarize(runs, func(m RunMetrics) float64 { return m.Makespan }),
			Speedup:  summarize(runs, func(m RunMetrics) float64 { return m.Speedup }),
			MeanOps:  float64(s.ops[pi]) / float64(s.reps),
		}
		if s.keepPerRun {
			agg.PerRun = runs
		}
		if s.keepResults {
			agg.Results = s.results[pi]
		}
		out[pi] = agg
	}
	return out
}

// Overall merges the per-point wasted-time accumulators in point order —
// a deterministic cross-partition roll-up of the whole campaign.
func (s *aggregateSink) Overall() metrics.Accumulator {
	var a metrics.Accumulator
	for pi := range s.points {
		a.Merge(s.wasted[pi])
	}
	return a
}
