package engine

import (
	"context"

	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
)

// simBackend adapts the chunk-granularity Hagerup-replica simulator
// (internal/sim) — the fast path every figure of the paper is produced
// with. It supports the full RunSpec surface.
type simBackend struct{}

func init() { Register(simBackend{}) }

func (simBackend) Name() string { return "sim" }

func (simBackend) Run(ctx context.Context, spec RunSpec) (*RunResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r, err := simBackend{}.NewRunner(spec) // validates the spec
	if err != nil {
		return nil, err
	}
	res, err := r.Run(ctx, spec)
	if err != nil {
		return nil, err
	}
	// The runner and its arena are throwaway here, so the aliased result
	// needs no copy — no other run will ever overwrite it.
	return res, nil
}

// simRunner is the amortized execution state for one campaign point:
// spec validated once, scheduler Reset per run, rand48 re-seeded in
// place, and all result buffers pooled in a sim.Arena. Steady-state runs
// perform zero heap allocations. Rebind re-points the runner at a new
// point while keeping the arena, so one runner (and its memory) can
// serve a whole worker's share of the grid.
type simRunner struct {
	cfg   sim.Config
	reset sched.Resetter // nil: scheduler must be rebuilt per run
	rng   rng.Rand48
	arena sim.Arena
	out   RunResult
}

// NewRunner implements RunnerBackend.
func (simBackend) NewRunner(spec RunSpec) (Runner, error) {
	r := &simRunner{}
	if err := r.Rebind(spec); err != nil {
		return nil, err
	}
	return r, nil
}

// Rebind implements Rebinder: validate the new point, build its
// scheduler, and retain the arena (which re-sizes itself to the new P
// on the next run).
func (r *simRunner) Rebind(spec RunSpec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	s, err := spec.Scheduler()
	if err != nil {
		return err
	}
	r.reset, _ = s.(sched.Resetter)
	r.cfg = sim.Config{
		P:              spec.P,
		Sched:          s,
		Work:           spec.Work,
		RNG:            &r.rng,
		Speeds:         spec.Speeds,
		StartTimes:     spec.StartTimes,
		H:              spec.H,
		HInDynamics:    spec.HInDynamics,
		PerMessageCost: spec.PerMessageCost,
		Observe:        spec.Observe,
	}
	return nil
}

func (r *simRunner) Run(ctx context.Context, spec RunSpec) (*RunResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if r.reset != nil {
		r.reset.Reset()
	} else {
		s, err := spec.Scheduler()
		if err != nil {
			return nil, err
		}
		r.cfg.Sched = s
	}
	r.rng.SetState(spec.RNGState)
	res, err := sim.RunInto(r.cfg, &r.arena)
	if err != nil {
		return nil, err
	}
	r.out = RunResult{
		Makespan:       res.Makespan,
		Compute:        res.Compute,
		SchedOps:       res.SchedOps,
		OpsPerWorker:   res.OpsPerWorker,
		TasksPerWorker: res.TasksPerWorker,
		CommTime:       res.CommTime,
		MasterBusy:     res.MasterBusy,
	}
	return &r.out, nil
}
