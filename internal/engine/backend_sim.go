package engine

import (
	"context"

	"repro/internal/sim"
)

// simBackend adapts the chunk-granularity Hagerup-replica simulator
// (internal/sim) — the fast path every figure of the paper is produced
// with. It supports the full RunSpec surface.
type simBackend struct{}

func init() { Register(simBackend{}) }

func (simBackend) Name() string { return "sim" }

func (simBackend) Run(ctx context.Context, spec RunSpec) (*RunResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	s, err := spec.Scheduler()
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(sim.Config{
		P:              spec.P,
		Sched:          s,
		Work:           spec.Work,
		RNG:            spec.RNG(),
		Speeds:         spec.Speeds,
		StartTimes:     spec.StartTimes,
		H:              spec.H,
		HInDynamics:    spec.HInDynamics,
		PerMessageCost: spec.PerMessageCost,
		Observe:        spec.Observe,
	})
	if err != nil {
		return nil, err
	}
	return &RunResult{
		Makespan:       res.Makespan,
		Compute:        res.Compute,
		SchedOps:       res.SchedOps,
		OpsPerWorker:   res.OpsPerWorker,
		TasksPerWorker: res.TasksPerWorker,
		CommTime:       res.CommTime,
		MasterBusy:     res.MasterBusy,
	}, nil
}
