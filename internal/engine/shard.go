package engine

import "fmt"

// This file implements sub-spec derivation: carving a single grid
// point's replication window out of a campaign spec as a spec of its
// own. A sub-spec is an ordinary CampaignSpec — hashable, cacheable,
// executable by any campaign.Runner — whose runs draw exactly the seeds
// the parent grid assigns to that (point, replication-window) slice.
// That identity is what lets a distributed coordinator
// (campaign/distrib) split one campaign across many dlsimd nodes and
// merge the result streams bit-identically to a single-node run.

// GridPoints returns the number of grid points the spec expands to
// (len(Ns) × len(Ps) × len(Techniques)) without building workloads.
func (s CampaignSpec) GridPoints() int {
	return len(s.Ns) * len(s.Ps) * len(s.Techniques)
}

// PointCoords returns the (technique, n, p) cell of expanded point
// index pi, following the n-major, then p, then technique order Points
// uses.
func (s CampaignSpec) PointCoords(pi int) (technique string, n int64, p int, err error) {
	nt, np := len(s.Techniques), len(s.Ps)
	if nt == 0 || np == 0 || len(s.Ns) == 0 {
		return "", 0, 0, fmt.Errorf("engine: campaign spec: empty technique/n/p lists")
	}
	if pi < 0 || pi >= s.GridPoints() {
		return "", 0, 0, fmt.Errorf("engine: point index %d out of range [0, %d)", pi, s.GridPoints())
	}
	return s.Techniques[pi%nt], s.Ns[pi/(np*nt)], s.Ps[(pi/nt)%np], nil
}

// SubSpec returns the sub-spec covering replications [repOff,
// repOff+reps) of expanded grid point pi: a single-point spec whose
// seed derivation is shifted by RepOffset so that its run r draws the
// state the parent's run (pi, repOff+r) draws, under every seed policy.
// All workload and scheduler parameters are inherited; a zero
// Workload.N keeps resolving to the point's own task count, exactly as
// in the parent. The sub-spec's canonical hash is its own content
// address: two coordinators (or one coordinator retrying a shard)
// submitting the same window to nodes sharing a content-addressed
// store pay for the backend runs exactly once.
func (s CampaignSpec) SubSpec(pi, repOff, reps int) (CampaignSpec, error) {
	tech, n, p, err := s.PointCoords(pi)
	if err != nil {
		return CampaignSpec{}, err
	}
	if reps <= 0 {
		return CampaignSpec{}, fmt.Errorf("engine: sub-spec replications must be positive, got %d", reps)
	}
	if repOff < 0 || repOff+reps > s.Replications {
		return CampaignSpec{}, fmt.Errorf("engine: sub-spec window [%d, %d) outside [0, %d)",
			repOff, repOff+reps, s.Replications)
	}
	sub := s
	sub.Techniques = []string{tech}
	sub.Ns = []int64{n}
	sub.Ps = []int{p}
	sub.Replications = reps
	sub.RepOffset = s.RepOffset + repOff
	return sub, nil
}
