package engine

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/rng"
	"repro/internal/workload"
)

func testSpec() CampaignSpec {
	return CampaignSpec{
		Techniques:   []string{"FAC2", "GSS"},
		Ns:           []int64{256, 512},
		Ps:           []int{2, 4},
		Workload:     workload.Spec{Kind: "exponential", P1: 1},
		H:            0.5,
		Replications: 5,
		Seed:         42,
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	spec := testSpec()
	data, err := spec.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Normalize(), spec.Normalize()) {
		t.Fatalf("round trip changed the spec:\n got %+v\nwant %+v", back.Normalize(), spec.Normalize())
	}
	h1, err := spec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := back.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("hash changed across round trip: %s != %s", h1, h2)
	}
	if len(h1) != 64 {
		t.Fatalf("hash %q is not a hex SHA-256", h1)
	}
}

func TestSpecHashNormalization(t *testing.T) {
	base := testSpec()
	h0, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}

	// Defaults made explicit must not change the address.
	explicit := base
	explicit.Backend = DefaultBackend
	explicit.SeedPolicy = SeedPerCell
	if h, _ := explicit.Hash(); h != h0 {
		t.Errorf("explicit defaults changed the hash: %s != %s", h, h0)
	}

	// Every result-relevant field must change the address.
	mutations := map[string]func(*CampaignSpec){
		"workload n": func(s *CampaignSpec) { s.Workload.N = 9999 },
		"seed":       func(s *CampaignSpec) { s.Seed++ },
		"policy":     func(s *CampaignSpec) { s.SeedPolicy = SeedFlat },
		"backend":    func(s *CampaignSpec) { s.Backend = "des" },
		"techniques": func(s *CampaignSpec) { s.Techniques = []string{"FAC2"} },
		"ns":         func(s *CampaignSpec) { s.Ns = []int64{256} },
		"ps":         func(s *CampaignSpec) { s.Ps = []int{2} },
		"h":          func(s *CampaignSpec) { s.H = 0.25 },
		"reps":       func(s *CampaignSpec) { s.Replications = 6 },
		"workload":   func(s *CampaignSpec) { s.Workload.P1 = 2 },
	}
	for name, mut := range mutations {
		s := testSpec()
		mut(&s)
		h, err := s.Hash()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if h == h0 {
			t.Errorf("mutating %s did not change the hash", name)
		}
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	data, err := json.Marshal(testSpec().Normalize())
	if err != nil {
		t.Fatal(err)
	}
	bad := strings.Replace(string(data), `"backend"`, `"backend_typo"`, 1)
	if _, err := ParseSpec([]byte(bad)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestSpecValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*CampaignSpec)
	}{
		{"no techniques", func(s *CampaignSpec) { s.Techniques = nil }},
		{"no ns", func(s *CampaignSpec) { s.Ns = nil }},
		{"no ps", func(s *CampaignSpec) { s.Ps = nil }},
		{"reps=0", func(s *CampaignSpec) { s.Replications = 0 }},
		{"bad policy", func(s *CampaignSpec) { s.SeedPolicy = "zigzag" }},
		{"bad backend", func(s *CampaignSpec) { s.Backend = "simgrid" }},
		{"n=0", func(s *CampaignSpec) { s.Ns = []int64{0} }},
		{"p=0", func(s *CampaignSpec) { s.Ps = []int{0} }},
		{"bad technique", func(s *CampaignSpec) { s.Techniques = []string{"LIFO"} }},
		{"bad workload", func(s *CampaignSpec) { s.Workload = workload.Spec{Kind: "cauchy"} }},
		{"duplicate technique", func(s *CampaignSpec) { s.Techniques = []string{"FAC2", "SS", "FAC2"} }},
	}
	for _, tc := range cases {
		s := testSpec()
		tc.mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: invalid spec accepted", tc.name)
		}
	}
	if err := testSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

// TestSpecPointsOrder pins the grid expansion order the cache format and
// every aggregate index depend on: n-major, then p, then technique.
func TestSpecPointsOrder(t *testing.T) {
	points, err := testSpec().Points()
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		tech string
		n    int64
		p    int
	}
	var got []key
	for _, pt := range points {
		got = append(got, key{pt.Technique, pt.N, pt.P})
	}
	want := []key{
		{"FAC2", 256, 2}, {"GSS", 256, 2}, {"FAC2", 256, 4}, {"GSS", 256, 4},
		{"FAC2", 512, 2}, {"GSS", 512, 2}, {"FAC2", 512, 4}, {"GSS", 512, 4},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("expansion order:\n got %v\nwant %v", got, want)
	}
	for i, pt := range points {
		if pt.Work == nil {
			t.Fatalf("point %d has no workload", i)
		}
	}
}

// TestSpecFixedWorkloadN: a nonzero workload task count fixes the
// workload's shape across the whole grid — the grid's n must not
// override it (it parameterizes e.g. the slope of a ramp workload).
func TestSpecFixedWorkloadN(t *testing.T) {
	spec := CampaignSpec{
		Techniques:   []string{"STAT"},
		Ns:           []int64{1000},
		Ps:           []int{2},
		Workload:     workload.Spec{Kind: "increasing", P1: 0.001, P2: 0.002, N: 100},
		Replications: 1,
		Seed:         1,
	}
	points, err := spec.Points()
	if err != nil {
		t.Fatal(err)
	}
	want, err := spec.Workload.Build()
	if err != nil {
		t.Fatal(err)
	}
	// The ramp built with N=100 assigns task 99 the peak time 0.002 and
	// keeps rising beyond it; a ramp rebuilt with the grid's N=1000
	// would assign task 99 a much smaller value.
	if got := points[0].Work.Time(99, nil); got != want.Time(99, nil) {
		t.Fatalf("grid overrode the workload's N: Time(99) = %v, want %v", got, want.Time(99, nil))
	}
	// Zero N keeps the per-point substitution.
	spec.Workload = workload.Spec{Kind: "increasing", P1: 0.001, P2: 0.002}
	points, err = spec.Points()
	if err != nil {
		t.Fatal(err)
	}
	perPoint, err := workload.Spec{Kind: "increasing", P1: 0.001, P2: 0.002, N: 1000}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := points[0].Work.Time(999, nil); got != perPoint.Time(999, nil) {
		t.Fatalf("per-point substitution broken: Time(999) = %v", got)
	}
}

// TestSpecSeedPolicies pins each policy's (point, rep) → state derivation
// to the rng primitives the layers above the engine have always used.
func TestSpecSeedPolicies(t *testing.T) {
	spec := testSpec()
	points, err := spec.Points()
	if err != nil {
		t.Fatal(err)
	}
	check := func(policy string, want func(point, rep int) uint64) {
		t.Helper()
		s := spec
		s.SeedPolicy = policy
		got := s.seedFunc(points)
		for pi := range points {
			for rep := 0; rep < 3; rep++ {
				if g, w := got(pi, rep), want(pi, rep); g != w {
					t.Errorf("%s: seed(%d,%d) = %#x, want %#x", policy, pi, rep, g, w)
				}
			}
		}
	}
	check(SeedFlat, func(_, rep int) uint64 { return rng.RunSeed(spec.Seed, rep) })
	check(SeedFacade, func(_, rep int) uint64 { return rng.Mix64(rng.RunSeed(spec.Seed, rep)) })
	check(SeedShared, func(_, _ int) uint64 { return rng.Mix64(spec.Seed) })
	check(SeedPerCell, func(pi, rep int) uint64 {
		pt := points[pi]
		return rng.RunSeed(rng.CellSeed(spec.Seed, pt.Technique, pt.N, pt.P), rep)
	})
}

// TestSpecExecuteMatchesCompiledRun pins that the declarative path
// (Execute) and the imperative path (Compile + Run) produce bit-identical
// aggregates.
func TestSpecExecuteMatchesCompiledRun(t *testing.T) {
	spec := testSpec()
	viaExecute, err := spec.Execute(context.Background(), ExecConfig{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := spec.Compile(0)
	if err != nil {
		t.Fatal(err)
	}
	viaRun, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(viaExecute.Aggregates) != len(viaRun.Aggregates) {
		t.Fatalf("aggregate counts differ: %d != %d", len(viaExecute.Aggregates), len(viaRun.Aggregates))
	}
	for i := range viaExecute.Aggregates {
		a, b := viaExecute.Aggregates[i], viaRun.Aggregates[i]
		if a.Wasted != b.Wasted || a.Makespan != b.Makespan || a.Speedup != b.Speedup || a.MeanOps != b.MeanOps {
			t.Fatalf("point %d: Execute aggregate differs from compiled Run", i)
		}
	}
	if viaExecute.Overall != viaRun.Overall {
		t.Fatalf("overall roll-up differs: %+v != %+v", viaExecute.Overall, viaRun.Overall)
	}
}
