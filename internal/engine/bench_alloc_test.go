package engine

import (
	"context"
	"testing"

	"repro/internal/workload"
)

// Allocation-tracking benchmarks for the campaign pipeline. The
// trajectory tool (cmd/benchtraj) records absolute runs/sec; these guard
// the per-run allocation profile in relative terms:
//
//	go test -bench 'Alloc' -benchmem ./internal/engine/
//
// benchSpec is the same shape the trajectory document measures — two
// points, exponential workload — scaled for go test iteration counts.
func benchSpec(reps int) CampaignSpec {
	return CampaignSpec{
		Techniques:   []string{"FAC2", "GSS"},
		Ns:           []int64{4096},
		Ps:           []int{8},
		Workload:     workload.Spec{Kind: "exponential", P1: 1},
		H:            0.5,
		Replications: reps,
		Seed:         20170601,
	}
}

func benchCampaign(b *testing.B, workers int, naive bool) {
	b.Helper()
	c, err := benchSpec(50).Compile(workers)
	if err != nil {
		b.Fatal(err)
	}
	c.disableRunners = naive
	runs := len(c.Points) * c.Replications
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(runs), "runs/op")
}

// BenchmarkCampaignStreamAlloc measures the full streaming pipeline —
// runner arenas, batched delivery, ring reorder, aggregation — at one
// worker and at GOMAXPROCS. allocs/op divided by runs/op is the per-run
// allocation cost the tentpole attacks.
func BenchmarkCampaignStreamAlloc(b *testing.B) {
	b.Run("workers=1", func(b *testing.B) { benchCampaign(b, 1, false) })
	b.Run("workers=N", func(b *testing.B) { benchCampaign(b, 0, false) })
	b.Run("naive/workers=1", func(b *testing.B) { benchCampaign(b, 1, true) })
}

// BenchmarkAggregateSinkAlloc isolates the reduction stage: consuming
// one ordered event stream into per-point aggregates.
func BenchmarkAggregateSinkAlloc(b *testing.B) {
	spec := benchSpec(100)
	points, err := spec.Points()
	if err != nil {
		b.Fatal(err)
	}
	ev := Event{Spec: points[0], Metrics: RunMetrics{Wasted: 1.5, Makespan: 600, Speedup: 6, SchedOps: 40}}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := newAggregateSink(points, spec.Replications, false, false)
		for pi := range points {
			ev.Point = pi
			for rep := 0; rep < spec.Replications; rep++ {
				ev.Rep = rep
				if err := s.Consume(ctx, ev); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
		s.Aggregates()
	}
}

// TestCampaignAllocationBudget is the campaign-level allocation gate:
// a 500-run campaign on the runner path must allocate at least 5× less
// than the naive one-Backend.Run-per-replication path, and stay under a
// pinned per-run ceiling. Run sequentially so the counts are stable.
func TestCampaignAllocationBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is slow under -short")
	}
	measure := func(naive bool) float64 {
		c, err := benchSpec(250).Compile(1) // 2 points × 250 reps = 500 runs
		if err != nil {
			t.Fatal(err)
		}
		c.disableRunners = naive
		return testing.AllocsPerRun(2, func() {
			if _, err := c.Run(context.Background()); err != nil {
				t.Fatal(err)
			}
		})
	}
	fast := measure(false)
	naive := measure(true)
	t.Logf("allocs per 500-run campaign: runner path %.0f, naive path %.0f (%.1fx)", fast, naive, naive/fast)
	if fast*5 > naive {
		t.Errorf("runner path allocates %.0f per campaign, naive %.0f: want at least 5x reduction", fast, naive)
	}
	// Pinned ceiling: ~0 steady-state allocs per run plus fixed campaign
	// setup. 500 runs at <= 2 allocs/run of slack keeps regressions
	// (per-run boxing, escaping closures) loudly visible.
	if perRun := fast / 500; perRun > 2 {
		t.Errorf("runner path allocates %.2f per run, ceiling is 2", perRun)
	}
}

// TestAggregateFastPathAllocationBudget is the fast-path allocation
// gate: an aggregate-only campaign (every sink chunk-granular, so no
// per-run Event ever crosses a channel) must stay at or below 0.05
// allocations per run — effectively zero steady-state allocation, with
// the fixed campaign setup amortized over a 5000-run grid. It must also
// allocate no more than the ordered event path it bypasses.
func TestAggregateFastPathAllocationBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is slow under -short")
	}
	measure := func(ordered bool) float64 {
		c, err := benchSpec(2500).Compile(1) // 2 points × 2500 reps = 5000 runs
		if err != nil {
			t.Fatal(err)
		}
		c.disablePartials = ordered
		return testing.AllocsPerRun(2, func() {
			if _, err := c.Run(context.Background()); err != nil {
				t.Fatal(err)
			}
		})
	}
	fast := measure(false)
	ordered := measure(true)
	perRun := fast / 5000
	t.Logf("allocs per 5000-run campaign: fast path %.0f (%.4f/run), ordered path %.0f", fast, perRun, ordered)
	if perRun > 0.05 {
		t.Errorf("aggregate fast path allocates %.4f per run, budget is 0.05", perRun)
	}
	// The bypass buys per-run savings at a small fixed setup cost (the
	// chunk-buffer pool, the streamed cross-check accumulators); it must
	// never cost more than that fixed overhead relative to the event path.
	if fast > ordered+16 {
		t.Errorf("fast path allocates %.0f per campaign vs ordered %.0f: exceeds fixed-setup slack", fast, ordered)
	}
}
