package engine

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"repro/internal/workload"
)

// These tests are the H13-style determinism gate for the allocation-free
// hot path: the amortized runner path (scheduler Reset + run arenas +
// batched event delivery) must be byte-identical to the naive path (one
// Backend.Run per replication, fresh everything) — same JSONL event
// stream, same aggregates — for every backend, every seed policy and any
// worker count. A single differing byte means an optimization changed
// simulation output.

// goldenRun executes the spec's campaign and returns the JSONL stream
// bytes plus the campaign result. chunkSize 0 auto-sizes.
func goldenRun(t *testing.T, spec CampaignSpec, workers int, naive bool) ([]byte, *CampaignResult) {
	t.Helper()
	return goldenRunChunked(t, spec, workers, 0, naive)
}

func goldenRunChunked(t *testing.T, spec CampaignSpec, workers, chunkSize int, naive bool) ([]byte, *CampaignResult) {
	t.Helper()
	c, err := spec.Compile(workers)
	if err != nil {
		t.Fatal(err)
	}
	c.ChunkSize = chunkSize
	c.disableRunners = naive
	c.KeepRuns = true // exercises the arena-result Clone path too
	var buf bytes.Buffer
	res, err := c.RunWith(context.Background(), NewJSONLSink(&buf))
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res
}

func goldenSpec(backend string) CampaignSpec {
	return CampaignSpec{
		Backend:      backend,
		Techniques:   []string{"GSS", "FAC2", "BOLD"},
		Ns:           []int64{256},
		Ps:           []int{4},
		Workload:     workload.Spec{Kind: "exponential", P1: 1},
		H:            0.25,
		Replications: 6,
		Seed:         20170601,
	}
}

// TestGoldenDeterminismRunnerVsNaive: for all three backends and all
// four seed policies, the runner path at several worker counts produces
// the exact JSONL bytes and aggregates of the naive sequential path.
func TestGoldenDeterminismRunnerVsNaive(t *testing.T) {
	for _, backend := range []string{"sim", "des", "msg"} {
		for _, policy := range []string{SeedPerCell, SeedFlat, SeedFacade, SeedShared} {
			t.Run(backend+"/"+policy, func(t *testing.T) {
				spec := goldenSpec(backend)
				spec.SeedPolicy = policy
				refStream, refRes := goldenRun(t, spec, 1, true)
				if len(refStream) == 0 {
					t.Fatal("reference stream is empty")
				}
				for _, workers := range []int{1, 4} {
					gotStream, gotRes := goldenRun(t, spec, workers, false)
					if !bytes.Equal(gotStream, refStream) {
						t.Errorf("workers=%d: runner-path JSONL stream differs from naive path", workers)
					}
					if !reflect.DeepEqual(gotRes.Aggregates, refRes.Aggregates) {
						t.Errorf("workers=%d: runner-path aggregates differ from naive path", workers)
					}
					if gotRes.Overall != refRes.Overall {
						t.Errorf("workers=%d: overall roll-up differs from naive path", workers)
					}
				}
			})
		}
	}
}

// TestGoldenDeterminismRetainedResults: with KeepRuns, the cloned
// arena-backed results must equal the naive path's fresh results field
// by field — a shallow alias of a recycled buffer would diverge here.
func TestGoldenDeterminismRetainedResults(t *testing.T) {
	spec := goldenSpec("sim")
	_, naive := goldenRun(t, spec, 1, true)
	_, fast := goldenRun(t, spec, 4, false)
	for pi := range naive.Aggregates {
		nr, fr := naive.Aggregates[pi].Results, fast.Aggregates[pi].Results
		if len(nr) != spec.Replications || len(fr) != spec.Replications {
			t.Fatalf("point %d: retained %d/%d results, want %d", pi, len(nr), len(fr), spec.Replications)
		}
		for rep := range nr {
			if !reflect.DeepEqual(nr[rep], fr[rep]) {
				t.Fatalf("point %d rep %d: retained result differs between paths", pi, rep)
			}
		}
	}
	// Cloned results must be distinct allocations, not arena aliases.
	for pi := range fast.Aggregates {
		rs := fast.Aggregates[pi].Results
		for i := 1; i < len(rs); i++ {
			if &rs[i].Compute[0] == &rs[i-1].Compute[0] {
				t.Fatalf("point %d: results %d and %d share a Compute buffer", pi, i-1, i)
			}
		}
	}
}

// TestGoldenDeterminismChunkedVsPerRun pins the batched pipeline against
// the per-run reference: for every backend, every seed policy and a
// spread of worker counts and chunk sizes — including chunk=1 (one run
// per work item, the pre-batching shape) and chunk=7 > Replications=6
// (clamped to one chunk per point) — the chunked pipeline's JSONL bytes
// and aggregates must equal the naive path's. Chunking is scheduling
// only; a differing byte means batching leaked into simulation output.
func TestGoldenDeterminismChunkedVsPerRun(t *testing.T) {
	for _, backend := range []string{"sim", "des", "msg"} {
		for _, policy := range []string{SeedPerCell, SeedFlat, SeedFacade, SeedShared} {
			t.Run(backend+"/"+policy, func(t *testing.T) {
				spec := goldenSpec(backend)
				spec.SeedPolicy = policy
				refStream, refRes := goldenRun(t, spec, 1, true)
				if len(refStream) == 0 {
					t.Fatal("reference stream is empty")
				}
				for _, workers := range []int{1, 2, 4, 8} {
					for _, chunk := range []int{1, 2, 4, 7} {
						gotStream, gotRes := goldenRunChunked(t, spec, workers, chunk, false)
						if !bytes.Equal(gotStream, refStream) {
							t.Errorf("workers=%d chunk=%d: JSONL stream differs from per-run path", workers, chunk)
						}
						if !reflect.DeepEqual(gotRes.Aggregates, refRes.Aggregates) {
							t.Errorf("workers=%d chunk=%d: aggregates differ from per-run path", workers, chunk)
						}
						if gotRes.Overall != refRes.Overall {
							t.Errorf("workers=%d chunk=%d: overall roll-up differs from per-run path", workers, chunk)
						}
					}
				}
			})
		}
	}
}

// TestGoldenDeterminismAcrossBackendsStable pins the cross-backend
// equivalence on the runner path: sim and des execute identical dynamics
// and must deliver identical streams for the same spec (msg differs by
// construction: message timing enters the makespan).
func TestGoldenDeterminismAcrossBackendsStable(t *testing.T) {
	simStream, _ := goldenRun(t, goldenSpec("sim"), 3, false)
	desStream, _ := goldenRun(t, goldenSpec("des"), 3, false)
	// The streams embed no backend name, so equal dynamics mean equal
	// bytes.
	if !bytes.Equal(simStream, desStream) {
		t.Error("sim and des runner-path streams diverge on free-network dynamics")
	}
}
