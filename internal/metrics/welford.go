package metrics

import "math"

// Accumulator is an online (streaming) estimator of count, mean, variance,
// minimum and maximum using Welford's algorithm. It lets the engine's
// results pipeline aggregate arbitrarily long run streams in O(1) memory
// per metric, where the buffered path needs every sample in a slice.
//
// Determinism: Add and Merge are pure floating-point recurrences, so the
// same sequence of calls yields bit-identical state on every execution,
// and the pipeline delivers samples in replication order regardless of
// worker count or completion order. Count, Sum (hence Mean), Min and Max
// are bit-identical to a buffered Summarize over the same samples; the
// Welford variance is numerically equivalent (and stabler) but not
// bit-identical to Summarize's two-pass formula, which is why the
// engine's per-point aggregates summarize the retained per-run values
// and reserve the Accumulator for genuinely unbounded streams and
// cross-partition roll-ups.
type Accumulator struct {
	Count int64
	// Sum is the plain running sum; the reported mean is Sum/Count so
	// that streaming means are bit-identical to the historical buffered
	// mean (which summed in slice order and divided once).
	Sum float64
	// MeanV and M2 are Welford's running mean and sum of squared
	// deviations; variance is M2/(Count−1).
	MeanV, M2 float64
	MinV      float64
	MaxV      float64
}

// Add folds one sample into the accumulator.
func (a *Accumulator) Add(v float64) {
	if a.Count == 0 {
		a.MinV, a.MaxV = v, v
	} else {
		if v < a.MinV {
			a.MinV = v
		}
		if v > a.MaxV {
			a.MaxV = v
		}
	}
	a.Count++
	a.Sum += v
	d := v - a.MeanV
	a.MeanV += d / float64(a.Count)
	a.M2 += d * (v - a.MeanV)
}

// Merge folds accumulator b into a using the parallel combination of
// Chan, Golub & LeVeque. Merging is deterministic: equal operand states
// merged in equal order produce bit-identical results. Note that merging
// partitions is not bit-identical to a single sequential pass over the
// concatenated samples — pipelines that must reproduce the sequential
// bits (the engine's aggregating sink) feed one accumulator in sample
// order and reserve Merge for cross-partition roll-ups, where only the
// partition order is fixed.
func (a *Accumulator) Merge(b Accumulator) {
	if b.Count == 0 {
		return
	}
	if a.Count == 0 {
		*a = b
		return
	}
	if b.MinV < a.MinV {
		a.MinV = b.MinV
	}
	if b.MaxV > a.MaxV {
		a.MaxV = b.MaxV
	}
	n := a.Count + b.Count
	d := b.MeanV - a.MeanV
	a.M2 += b.M2 + d*d*float64(a.Count)*float64(b.Count)/float64(n)
	a.MeanV += d * float64(b.Count) / float64(n)
	a.Sum += b.Sum
	a.Count = n
}

// N returns the number of samples folded in.
func (a Accumulator) N() int64 { return a.Count }

// Mean returns the running mean (0 before any sample).
func (a Accumulator) Mean() float64 {
	if a.Count == 0 {
		return 0
	}
	return a.Sum / float64(a.Count)
}

// Var returns the sample variance (n−1 denominator; 0 for n < 2).
func (a Accumulator) Var() float64 {
	if a.Count < 2 {
		return 0
	}
	return a.M2 / float64(a.Count-1)
}

// Std returns the sample standard deviation.
func (a Accumulator) Std() float64 { return math.Sqrt(a.Var()) }

// Min returns the smallest sample (0 before any sample).
func (a Accumulator) Min() float64 { return a.MinV }

// Max returns the largest sample (0 before any sample).
func (a Accumulator) Max() float64 { return a.MaxV }
