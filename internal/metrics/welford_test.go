package metrics

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func samples(n int, seed uint64) []float64 {
	r := rng.FromState(rng.Mix64(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Exponential(r, 3.5)
	}
	return out
}

// TestAccumulatorMatchesSummarize is the streaming pipeline's equivalence
// contract: folding samples in slice order reproduces Summarize over the
// buffered slice — count, mean, min and max bit-exactly; the standard
// deviation to floating-point reassociation error (Welford M2 vs the
// buffered two-pass formula).
func TestAccumulatorMatchesSummarize(t *testing.T) {
	vals := samples(1000, 7)
	var a Accumulator
	for _, v := range vals {
		a.Add(v)
	}
	want := Summarize(vals)
	if a.Mean() != want.Mean {
		t.Errorf("Mean = %v, want %v (bit-exact)", a.Mean(), want.Mean)
	}
	if math.Abs(a.Std()-want.Std) > 1e-12*want.Std {
		t.Errorf("Std = %v, want %v", a.Std(), want.Std)
	}
	if a.Min() != want.Min || a.Max() != want.Max {
		t.Errorf("Min/Max = %v/%v, want %v/%v", a.Min(), a.Max(), want.Min, want.Max)
	}
	if int(a.N()) != want.N {
		t.Errorf("N = %d, want %d", a.N(), want.N)
	}
}

// TestAccumulatorMeanIsPlainSum pins the design decision that the
// reported mean is Sum/Count — the exact float the historical buffered
// path computed — rather than Welford's running mean.
func TestAccumulatorMeanIsPlainSum(t *testing.T) {
	vals := samples(257, 11)
	var a Accumulator
	var sum float64
	for _, v := range vals {
		a.Add(v)
		sum += v
	}
	if want := sum / float64(len(vals)); a.Mean() != want {
		t.Fatalf("Mean = %v, want plain-sum mean %v", a.Mean(), want)
	}
}

func TestAccumulatorZeroValue(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || a.Mean() != 0 || a.Var() != 0 || a.Std() != 0 {
		t.Fatalf("zero accumulator reports %+v", a)
	}
	a.Add(2)
	if a.N() != 1 || a.Mean() != 2 || a.Min() != 2 || a.Max() != 2 {
		t.Fatalf("single sample: %+v", a)
	}
	if a.Var() != 0 {
		t.Fatalf("Var of one sample = %v", a.Var())
	}
}

func TestAccumulatorVarianceAccuracy(t *testing.T) {
	// Welford must stay accurate where the naive sum-of-squares loses
	// precision: tiny variance on a huge offset.
	var a Accumulator
	base := 1e9
	for _, d := range []float64{0, 1, 2, 0, 1, 2, 0, 1, 2} {
		a.Add(base + d)
	}
	want := 0.75 // sample variance of {0,1,2}×3
	if math.Abs(a.Var()-want) > 1e-6 {
		t.Fatalf("Var = %v, want %v", a.Var(), want)
	}
}

func TestMergeMatchesWholeStream(t *testing.T) {
	vals := samples(500, 13)
	for _, split := range []int{0, 1, 123, 499, 500} {
		var left, right, whole Accumulator
		for _, v := range vals[:split] {
			left.Add(v)
		}
		for _, v := range vals[split:] {
			right.Add(v)
		}
		for _, v := range vals {
			whole.Add(v)
		}
		left.Merge(right)
		if left.N() != whole.N() {
			t.Fatalf("split %d: N = %d, want %d", split, left.N(), whole.N())
		}
		// Min and max are exact under merging; sum and the moments agree
		// to floating-point reassociation error.
		if left.Min() != whole.Min() || left.Max() != whole.Max() {
			t.Fatalf("split %d: min/max differ from whole stream", split)
		}
		if math.Abs(left.Sum-whole.Sum) > 1e-12*math.Abs(whole.Sum) {
			t.Fatalf("split %d: Sum = %v, want %v", split, left.Sum, whole.Sum)
		}
		if math.Abs(left.Mean()-whole.Mean()) > 1e-12*math.Abs(whole.Mean()) {
			t.Fatalf("split %d: Mean = %v, want %v", split, left.Mean(), whole.Mean())
		}
		if math.Abs(left.Var()-whole.Var()) > 1e-9*whole.Var() {
			t.Fatalf("split %d: Var = %v, want %v", split, left.Var(), whole.Var())
		}
	}
}

// TestMergeDeterministic: equal operand states merged in equal order are
// bit-identical — the property the campaign's Overall roll-up relies on.
func TestMergeDeterministic(t *testing.T) {
	build := func() Accumulator {
		parts := [][]float64{samples(100, 1), samples(50, 2), samples(75, 3)}
		var total Accumulator
		for _, part := range parts {
			var a Accumulator
			for _, v := range part {
				a.Add(v)
			}
			total.Merge(a)
		}
		return total
	}
	if a, b := build(), build(); a != b {
		t.Fatalf("repeated merge not bit-identical: %+v != %+v", a, b)
	}
}

func TestMergeEmptyOperands(t *testing.T) {
	var empty, filled Accumulator
	filled.Add(1)
	filled.Add(5)

	a := filled
	a.Merge(Accumulator{})
	if a != filled {
		t.Fatal("merging an empty accumulator changed state")
	}
	b := empty
	b.Merge(filled)
	if b != filled {
		t.Fatal("merging into an empty accumulator did not adopt operand state")
	}
}
