package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAverageWasted(t *testing.T) {
	// 2 workers, makespan 10, compute 8 and 6 → idle 2 and 4 → mean 3.
	// 10 scheduling ops at h=0.5 → +0.5·10/2 = 2.5. Total 5.5.
	got := AverageWasted(10, []float64{8, 6}, 10, 0.5)
	if math.Abs(got-5.5) > 1e-12 {
		t.Fatalf("AverageWasted = %v, want 5.5", got)
	}
}

func TestAverageWastedSSMagnitude(t *testing.T) {
	// The paper quotes 1.3e5 s for the n=524288, p=2 experiment (§IV-B4).
	// Under the per-worker definition that is h·n/p = 0.5·524288/2 plus
	// idle. Verify the overhead term alone reproduces that magnitude.
	got := AverageWasted(262144, []float64{262144, 262144}, 524288, 0.5)
	if math.Abs(got-131072) > 1e-6 {
		t.Fatalf("SS overhead term = %v, want 131072", got)
	}
}

func TestAverageWastedEmpty(t *testing.T) {
	if got := AverageWasted(1, nil, 5, 0.5); got != 0 {
		t.Fatalf("empty = %v", got)
	}
}

func TestPerWorkerWasted(t *testing.T) {
	got := PerWorkerWasted(10, []float64{8, 6}, []int64{4, 6}, 0.5)
	want := []float64{2 + 2, 4 + 3}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("PerWorkerWasted = %v, want %v", got, want)
		}
	}
	// Consistency: mean of per-worker wasted equals AverageWasted.
	avg := AverageWasted(10, []float64{8, 6}, 10, 0.5)
	if math.Abs((got[0]+got[1])/2-avg) > 1e-12 {
		t.Fatalf("per-worker mean %v != average %v", (got[0]+got[1])/2, avg)
	}
}

func TestTzenNiIdealCase(t *testing.T) {
	// Perfect execution: X = L, O = W = 0 → r = p, Θ = Λ = 0.
	m := TzenNiMetrics(100, 25, 100, 0, 4)
	if math.Abs(m.Speedup-4) > 1e-12 || m.Overhead != 0 || m.Imbalancing != 0 {
		t.Fatalf("ideal = %+v", m)
	}
}

func TestTzenNiIdentity(t *testing.T) {
	// r + Θ + Λ ≤ p always; equality when X = L.
	f := func(a, b, c uint8) bool {
		p := int(a)%16 + 1
		seq := float64(b) + 1
		sched := float64(c) / 10
		makespan := (seq + sched) / float64(p) * 1.3 // some inefficiency
		compute := seq                               // X = L
		m := TzenNiMetrics(seq, makespan, compute, sched, p)
		sum := m.Speedup + m.Overhead + m.Imbalancing
		return sum <= float64(p)+1e-9 && math.Abs(sum-float64(p)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTzenNiDegenerate(t *testing.T) {
	if m := TzenNiMetrics(1, 0, 1, 0, 4); m != (TzenNi{}) {
		t.Fatalf("zero makespan = %+v", m)
	}
}

func TestDiscrepancySigns(t *testing.T) {
	if d := Discrepancy(12, 10); d != 2 {
		t.Fatalf("Discrepancy = %v", d)
	}
	if d := RelativeDiscrepancy(12, 10); math.Abs(d-20) > 1e-12 {
		t.Fatalf("RelativeDiscrepancy = %v", d)
	}
	if d := RelativeDiscrepancy(8, 10); math.Abs(d+20) > 1e-12 {
		t.Fatalf("RelativeDiscrepancy = %v", d)
	}
	if !math.IsNaN(RelativeDiscrepancy(1, 0)) {
		t.Fatal("RelativeDiscrepancy(x, 0) should be NaN")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("Summary = %+v", s)
	}
	if math.Abs(s.Median-2.5) > 1e-12 {
		t.Fatalf("median = %v", s.Median)
	}
	// Sample std of {1,2,3,4} = sqrt(5/3).
	if math.Abs(s.Std-math.Sqrt(5.0/3.0)) > 1e-12 {
		t.Fatalf("std = %v", s.Std)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Std != 0 || s.Mean != 7 || s.Median != 7 {
		t.Fatalf("single = %+v", s)
	}
}

func TestSummarizePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Summarize(nil)
}

func TestQuantile(t *testing.T) {
	vals := []float64{10, 20, 30, 40, 50}
	if q := Quantile(vals, 0); q != 10 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(vals, 1); q != 50 {
		t.Fatalf("q1 = %v", q)
	}
	if q := Quantile(vals, 0.5); q != 30 {
		t.Fatalf("q0.5 = %v", q)
	}
	if q := Quantile(vals, 0.25); q != 20 {
		t.Fatalf("q0.25 = %v", q)
	}
	// Input must not be mutated.
	if vals[0] != 10 || vals[4] != 50 {
		t.Fatal("Quantile mutated input")
	}
}

func TestTrimAbove(t *testing.T) {
	// Figure 9 scenario: excluding values > 400 changes the mean.
	vals := []float64{10, 20, 500, 30, 700}
	kept, excluded := TrimAbove(vals, 400)
	if excluded != 2 || len(kept) != 3 {
		t.Fatalf("TrimAbove: kept %v excluded %d", kept, excluded)
	}
	if m := Mean(kept); m != 20 {
		t.Fatalf("trimmed mean = %v", m)
	}
}

func TestCoV(t *testing.T) {
	if c := CoV([]float64{5, 5, 5}); c != 0 {
		t.Fatalf("CoV constant = %v", c)
	}
	if c := CoV([]float64{0, 0}); c != 0 {
		t.Fatalf("CoV zero-mean = %v", c)
	}
}

func TestMaxAbs(t *testing.T) {
	if m := MaxAbs([]float64{1, -7, 3}); m != -7 {
		t.Fatalf("MaxAbs = %v", m)
	}
	if m := MaxAbs(nil); m != 0 {
		t.Fatalf("MaxAbs(nil) = %v", m)
	}
}

func TestMeanEmpty(t *testing.T) {
	if m := Mean(nil); m != 0 {
		t.Fatalf("Mean(nil) = %v", m)
	}
}

// TestWastedNonNegativeProperty: wasted time can never be negative when
// compute times are bounded by the makespan.
func TestWastedNonNegativeProperty(t *testing.T) {
	f := func(raw []uint8, ops uint8) bool {
		if len(raw) == 0 {
			return true
		}
		makespan := 0.0
		compute := make([]float64, len(raw))
		for i, r := range raw {
			compute[i] = float64(r)
			if compute[i] > makespan {
				makespan = compute[i]
			}
		}
		w := AverageWasted(makespan, compute, int64(ops), 0.5)
		return w >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
