// Package metrics implements the performance measures used by the two
// reproduced publications and the discrepancy analysis of the paper's
// evaluation (§IV).
//
// From the BOLD publication (paper §III-B): the wasted time of a single
// worker in one run is the sum of its idle time and its scheduling
// overhead; the average wasted time of a run is the sum of the wasted
// times of all workers divided by the number of workers.
//
// From the TSS publication (quoted in paper Figure 3a): speedup r, degree
// of scheduling overhead Θ, and degree of load imbalance Λ,
//
//	r = L·p/(X+O+W),  Θ = O·p/(X+O+W),  Λ = W·p/(X+O+W),
//
// where L is the sequential computation time and X, O, W the total time
// all PEs spend computing, scheduling and waiting. In the ideal case
// r + Θ + Λ = p.
//
// The paper's comparison measures (Figures 5c–8d) are the discrepancy
// (simulated − published) and the relative discrepancy in percent of the
// published value; positive discrepancy means the simulation runs slower.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// AverageWasted computes the average wasted time of one run per the BOLD
// publication: mean over workers of (makespan − compute_w) plus the
// scheduling overhead h per operation, h·ops/p.
func AverageWasted(makespan float64, compute []float64, schedOps int64, h float64) float64 {
	p := len(compute)
	if p == 0 {
		return 0
	}
	var idle float64
	for _, c := range compute {
		idle += makespan - c
	}
	return idle/float64(p) + h*float64(schedOps)/float64(p)
}

// PerWorkerWasted returns each worker's wasted time: its idle time plus
// h times its own scheduling operations.
func PerWorkerWasted(makespan float64, compute []float64, opsPerWorker []int64, h float64) []float64 {
	out := make([]float64, len(compute))
	for w := range compute {
		out[w] = makespan - compute[w] + h*float64(opsPerWorker[w])
	}
	return out
}

// TzenNi holds the three performance measures of the TSS publication.
type TzenNi struct {
	Speedup     float64 // r
	Overhead    float64 // Θ, average number of PEs wasted scheduling
	Imbalancing float64 // Λ, average number of PEs wasted waiting
}

// TzenNiMetrics computes r, Θ and Λ from one run: seq is the sequential
// computation time L, makespan the parallel completion time, computeTotal
// the summed computing time X of all PEs and schedTotal the summed
// scheduling time O. The waiting time W is inferred as p·makespan − X − O.
func TzenNiMetrics(seq, makespan, computeTotal, schedTotal float64, p int) TzenNi {
	if makespan <= 0 || p <= 0 {
		return TzenNi{}
	}
	total := float64(p) * makespan // X + O + W by definition
	wait := total - computeTotal - schedTotal
	if wait < 0 {
		wait = 0
	}
	return TzenNi{
		Speedup:     seq * float64(p) / total,
		Overhead:    schedTotal * float64(p) / total,
		Imbalancing: wait * float64(p) / total,
	}
}

// Discrepancy returns simulated − published (paper Figures 5c–8c);
// positive values mean the present simulation runs slower.
func Discrepancy(simulated, published float64) float64 {
	return simulated - published
}

// RelativeDiscrepancy returns the discrepancy as a percentage of the
// published value (paper Figures 5d–8d). It returns NaN for a zero
// published value.
func RelativeDiscrepancy(simulated, published float64) float64 {
	if published == 0 {
		return math.NaN()
	}
	return (simulated - published) / published * 100
}

// Summary holds sample statistics of a series of per-run measurements.
type Summary struct {
	N        int
	Mean     float64
	Std      float64 // sample standard deviation (n−1)
	Min, Max float64
	Median   float64
}

// Summarize computes sample statistics over vals. It panics on an empty
// slice — callers always have at least one run. A streaming Accumulator
// fed the same values in the same order reproduces N, Mean, Min and Max
// bit-exactly; Std only to floating-point reassociation error (Welford
// vs the two-pass formula below), which is why bit-reproducible paths
// summarize buffered values and reserve the Accumulator for unbounded
// streams.
func Summarize(vals []float64) Summary {
	if len(vals) == 0 {
		panic("metrics: Summarize of empty slice")
	}
	s := Summary{N: len(vals), Min: vals[0], Max: vals[0]}
	var sum float64
	for _, v := range vals {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(len(vals))
	// Two-pass sum of squared deviations: the historical buffered
	// formula, preserved bit for bit (Accumulator's online Welford M2 is
	// numerically equivalent but not bit-identical).
	var ss float64
	for _, v := range vals {
		d := v - s.Mean
		ss += d * d
	}
	if len(vals) > 1 {
		s.Std = math.Sqrt(ss / float64(len(vals)-1))
	}
	s.Median = Quantile(vals, 0.5)
	return s
}

// Mean returns the arithmetic mean of vals (0 for an empty slice).
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of vals using linear
// interpolation between order statistics. vals is not modified.
func Quantile(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		panic("metrics: Quantile of empty slice")
	}
	sorted := make([]float64, len(vals))
	copy(sorted, vals)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// TrimAbove returns the values ≤ threshold and the count of excluded
// values. The paper's Figure 9 analysis excludes the 15 runs above 400 s
// before re-computing the FAC mean.
func TrimAbove(vals []float64, threshold float64) (kept []float64, excluded int) {
	kept = make([]float64, 0, len(vals))
	for _, v := range vals {
		if v > threshold {
			excluded++
			continue
		}
		kept = append(kept, v)
	}
	return kept, excluded
}

// CoV returns the coefficient of variation (std/mean) of vals, the
// load-imbalance indicator used across the DLS literature. It returns 0
// when the mean is 0.
func CoV(vals []float64) float64 {
	s := Summarize(vals)
	if s.Mean == 0 {
		return 0
	}
	return s.Std / s.Mean
}

// MaxAbs returns the element of vals with the greatest absolute value
// (0 for an empty slice). Used for "maximum absolute discrepancy" rows.
func MaxAbs(vals []float64) float64 {
	var m float64
	for _, v := range vals {
		if math.Abs(v) > math.Abs(m) {
			m = v
		}
	}
	return m
}

// String renders a Summary compactly for logs and tables.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g med=%.4g max=%.4g",
		s.N, s.Mean, s.Std, s.Min, s.Median, s.Max)
}
