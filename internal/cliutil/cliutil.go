// Package cliutil holds the flag-handling helpers the dlsim and repro
// commands share: opening the content-addressed result cache, building
// streaming per-run sinks for -out, and executing a declarative campaign
// spec file. Functions exit through log.Fatal on error, as CLI setup
// code does; the package is for main packages only.
package cliutil

import (
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"repro/internal/ascii"
	"repro/internal/cache"
	"repro/internal/engine"
)

// OpenStore opens the on-disk result cache rooted at dir, or returns nil
// when no cache was requested.
func OpenStore(dir string) cache.Store {
	if dir == "" {
		return nil
	}
	disk, err := cache.NewDisk(dir)
	if err != nil {
		log.Fatal(err)
	}
	return disk
}

// OpenOut builds the streaming per-run sink for an -out flag: a CSV sink
// by default, JSON Lines for a .jsonl/.json suffix, stdout for "-". The
// returned close function flushes and closes the underlying file; it is
// safe to call when no sink was requested.
func OpenOut(path string) ([]engine.Sink, func()) {
	if path == "" {
		return nil, func() {}
	}
	var (
		w io.Writer = os.Stdout
		f *os.File
	)
	if path != "-" {
		var err error
		f, err = os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		w = f
	}
	var sink engine.Sink
	if strings.HasSuffix(path, ".jsonl") || strings.HasSuffix(path, ".json") {
		sink = engine.NewJSONLSink(w)
	} else {
		sink = engine.NewCSVSink(w)
	}
	return []engine.Sink{sink}, func() {
		if f == nil {
			return
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote per-run metrics to %s", path)
	}
}

// RunSpecFile executes the declarative campaign spec in the given JSON
// file and prints one aggregate row per grid point.
func RunSpecFile(path string, workers int, store cache.Store, sinks []engine.Sink) {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := engine.ParseSpec(data)
	if err != nil {
		log.Fatal(err)
	}
	hash, err := spec.Hash()
	if err != nil {
		log.Fatal(err)
	}
	res, err := spec.Execute(engine.ExecConfig{Workers: workers, Cache: store, Sinks: sinks})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign %s: %d points × %d replications (backend %s)\n\n",
		hash[:12], len(res.Aggregates), spec.Replications, spec.Normalize().Backend)
	var tb ascii.Table
	tb.AddRow("technique", "n", "p", "mean_wasted_s", "std_wasted_s", "mean_makespan_s", "mean_speedup", "mean_ops")
	for _, agg := range res.Aggregates {
		tb.AddRowf(agg.Spec.Technique, agg.Spec.N, agg.Spec.P,
			agg.Wasted.Mean, agg.Wasted.Std, agg.Makespan.Mean, agg.Speedup.Mean, agg.MeanOps)
	}
	os.Stdout.WriteString(tb.String())
	// Campaign-level roll-up from the streaming accumulator merge.
	o := res.Overall
	fmt.Printf("\noverall wasted time across %d runs: mean %.6g s, std %.6g s, range [%.6g, %.6g] s\n",
		o.N(), o.Mean(), o.Std(), o.Min(), o.Max())
}
