// Package cliutil holds the behavior the dlsim, repro and dlsimd
// commands share: process exit-code policy, signal-driven cancellation
// contexts, opening the content-addressed result cache, building
// streaming per-run sinks for -out, and executing a declarative
// campaign spec file. Helpers return errors; commands route them
// through Exit/ExitCode so every binary reports failures consistently:
// usage errors exit 2, runtime failures exit 1, and interrupted runs
// exit 130 (128 + SIGINT), with partial streaming output flushed by the
// engine's sink-closing guarantees.
package cliutil

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/campaign"
	"repro/campaign/distrib"
	"repro/client"
	"repro/internal/ascii"
	"repro/internal/cache"
	"repro/internal/engine"
	"repro/internal/telemetry"
)

// Exit codes shared by all commands.
const (
	ExitOK        = 0   // success
	ExitFailure   = 1   // runtime failure (simulation, I/O, service errors)
	ExitUsage     = 2   // bad flags, arguments or spec files
	ExitCancelled = 130 // interrupted by SIGINT/SIGTERM (128 + SIGINT)
)

// UsageError marks an error caused by how the command was invoked
// (unknown subcommand, missing required flag, malformed argument), as
// opposed to a failure while doing the requested work.
type UsageError struct{ Msg string }

func (e *UsageError) Error() string { return e.Msg }

// Usagef builds a UsageError.
func Usagef(format string, args ...any) error {
	return &UsageError{Msg: fmt.Sprintf(format, args...)}
}

// ExitCode maps an error to the command's exit code: nil → ExitOK,
// usage errors → ExitUsage, cancellation (a wrapped context.Canceled or
// DeadlineExceeded, e.g. after Ctrl-C) → ExitCancelled, anything else →
// ExitFailure.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return ExitOK
	case errors.As(err, new(*UsageError)):
		return ExitUsage
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return ExitCancelled
	default:
		return ExitFailure
	}
}

// Exit logs err (when non-nil) and terminates the process with the
// matching exit code. Call it only after all deferred cleanup has run —
// os.Exit skips defers.
func Exit(err error) {
	if err != nil {
		log.Print(err)
	}
	os.Exit(ExitCode(err))
}

// SignalContext returns a context cancelled on SIGINT or SIGTERM, so a
// Ctrl-C (or an orchestrator's termination signal) cancels in-flight
// campaigns through the engine's context plumbing instead of killing
// the process mid-write. The stop function releases the signal handler;
// a second signal while stopping falls back to the Go runtime's default
// (immediate) termination.
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}

// OpenStore opens the on-disk result cache rooted at dir, or returns a
// nil store when no cache was requested.
func OpenStore(dir string) (cache.Store, error) {
	if dir == "" {
		return nil, nil
	}
	return cache.NewDisk(dir)
}

// OpenOut builds the streaming per-run sink for an -out flag: a CSV
// sink by default, JSON Lines for a .jsonl/.json suffix, stdout for
// "-". The returned close function is idempotent and safe to defer; it
// flushes and closes the underlying file so partial output survives a
// cancelled campaign.
func OpenOut(path string) ([]engine.Sink, func() error, error) {
	if path == "" {
		return nil, func() error { return nil }, nil
	}
	var (
		w io.Writer = os.Stdout
		f *os.File
	)
	if path != "-" {
		var err error
		f, err = os.Create(path)
		if err != nil {
			return nil, nil, err
		}
		w = f
	}
	var sink engine.Sink
	if strings.HasSuffix(path, ".jsonl") || strings.HasSuffix(path, ".json") {
		sink = engine.NewJSONLSink(w)
	} else {
		sink = engine.NewCSVSink(w)
	}
	var once sync.Once
	closeOut := func() error {
		var err error
		once.Do(func() {
			if f == nil {
				return
			}
			if err = f.Close(); err != nil {
				return
			}
			log.Printf("wrote per-run metrics to %s", path)
		})
		return err
	}
	return []engine.Sink{sink}, closeOut, nil
}

// NewRunner builds the campaign runner the -server flag selects: a
// remote client.Client speaking the dlsimd /v1 API when server names a
// base URL, otherwise an in-process LocalRunner over the given store
// and worker bound. The cleanup function releases the local runner's
// resources (it is a no-op for the remote client) and is safe to defer.
// A malformed server URL is a usage error.
func NewRunner(server string, store cache.Store, workers int) (campaign.Runner, func(), error) {
	if server == "" {
		local := campaign.NewLocal(campaign.LocalConfig{Store: store, Workers: workers})
		return local, local.Close, nil
	}
	c, err := client.New(server)
	if err != nil {
		return nil, nil, Usagef("server: %v", err)
	}
	return c, func() {}, nil
}

// FleetOptions carries the flag-level tuning of a -servers fleet.
type FleetOptions struct {
	// Shards is the target shard count (0 = one per node).
	Shards int
	// ShardTimeout is the per-shard attempt deadline (0 = none).
	ShardTimeout time.Duration
	// Attempts is the placement attempts per shard (0 = distrib default).
	Attempts int
	// HedgeAfter is the straggler budget before a shard is hedged onto
	// a second node (0 = no hedging).
	HedgeAfter time.Duration
	// Partial keeps the completed prefix of results on unrecoverable
	// failure instead of failing the whole campaign (distrib
	// PartialResults).
	Partial bool
	// MetricsFile, when non-empty, receives the coordinator's
	// fault-tolerance metrics (breaker states and transitions, hedges,
	// retries) in Prometheus text format when the runner is cleaned up
	// — scrapeable offline with cmd/metricscheck.
	MetricsFile string
}

// NewFleetRunner builds the distributed coordinator the -servers flag
// selects: one SDK client per comma-separated dlsimd base URL, fanned
// out through campaign/distrib. Each client gets a retrying transport
// (client.DefaultRetry) so transient node hiccups are absorbed below
// the coordinator's own shard retry. Results are bit-identical to a
// single-node or in-process run of the same spec. A malformed URL list
// is a usage error.
func NewFleetRunner(servers string, opts FleetOptions) (campaign.Runner, func(), error) {
	var nodes []campaign.Runner
	for _, raw := range strings.Split(servers, ",") {
		u := strings.TrimSpace(raw)
		if u == "" {
			continue
		}
		c, err := client.New(u, client.WithOptions(client.Options{Retry: client.DefaultRetry}))
		if err != nil {
			return nil, nil, Usagef("servers: %v", err)
		}
		nodes = append(nodes, c)
	}
	if len(nodes) == 0 {
		return nil, nil, Usagef("servers: no base URLs in %q", servers)
	}
	var reg *telemetry.Registry
	if opts.MetricsFile != "" {
		reg = telemetry.NewRegistry()
	}
	coord, err := distrib.New(nodes, distrib.Options{
		Shards:         opts.Shards,
		ShardTimeout:   opts.ShardTimeout,
		Attempts:       opts.Attempts,
		HedgeAfter:     opts.HedgeAfter,
		PartialResults: opts.Partial,
		Registry:       reg,
	})
	if err != nil {
		return nil, nil, err
	}
	cleanup := func() {
		_ = coord.Close()
		if reg == nil {
			return
		}
		if err := writeMetricsFile(opts.MetricsFile, reg); err != nil {
			log.Printf("fleet metrics: %v", err)
		} else {
			log.Printf("wrote fleet metrics to %s", opts.MetricsFile)
		}
	}
	return coord, cleanup, nil
}

// writeMetricsFile dumps a registry's exposition to path, the offline
// twin of a /metrics scrape.
func writeMetricsFile(path string, reg *telemetry.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	reg.WriteTo(bw)
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReportIncomplete renders a degraded-mode fleet report (distrib
// PartialResults) for the terminal: what completed, which shard
// windows are missing and why, and each node's condition. Returns
// false when err carries no *distrib.Incomplete.
func ReportIncomplete(err error) bool {
	var inc *distrib.Incomplete
	if !errors.As(err, &inc) {
		return false
	}
	fmt.Fprintf(os.Stderr, "\npartial results: %d/%d runs completed; streamed output holds the completed prefix\n",
		inc.CompletedRuns, inc.TotalRuns)
	for _, m := range inc.Missing {
		fmt.Fprintf(os.Stderr, "  missing shard %d: point %d reps [%d,%d): %s\n",
			m.Shard, m.Point, m.RepOff, m.RepOff+m.Reps, m.Cause)
	}
	for _, n := range inc.Nodes {
		fmt.Fprintf(os.Stderr, "  node %d: breaker %s, healthy=%v, draining=%v", n.Node, n.Breaker, n.Healthy, n.Draining)
		if n.Cause != "" {
			fmt.Fprintf(os.Stderr, " (%s)", n.Cause)
		}
		fmt.Fprintln(os.Stderr)
	}
	return true
}

// RunSpecFile executes the declarative campaign spec in the given JSON
// file through the runner — in-process or a remote dlsimd — and prints
// one aggregate row per grid point. An unreadable or invalid spec file
// is a usage error; cancelling ctx aborts the campaign with a
// cancellation error.
func RunSpecFile(ctx context.Context, path string, r campaign.Runner, sinks []engine.Sink) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return Usagef("spec: %v", err)
	}
	spec, err := engine.ParseSpec(data)
	if err != nil {
		return Usagef("spec %s: %v", path, err)
	}
	hash, err := spec.Hash()
	if err != nil {
		return err
	}
	res, err := campaign.Run(ctx, r, spec, sinks...)
	if err != nil {
		// A degraded-mode fleet run still delivered a usable prefix —
		// say exactly what is missing before the error decides the exit
		// code.
		ReportIncomplete(err)
		return err
	}
	fmt.Printf("campaign %s: %d points × %d replications (backend %s)\n\n",
		hash[:12], len(res.Aggregates), spec.Replications, spec.Normalize().Backend)
	var tb ascii.Table
	tb.AddRow("technique", "n", "p", "mean_wasted_s", "std_wasted_s", "mean_makespan_s", "mean_speedup", "mean_ops")
	for _, agg := range res.Aggregates {
		tb.AddRowf(agg.Spec.Technique, agg.Spec.N, agg.Spec.P,
			agg.Wasted.Mean, agg.Wasted.Std, agg.Makespan.Mean, agg.Speedup.Mean, agg.MeanOps)
	}
	os.Stdout.WriteString(tb.String())
	// Campaign-level roll-up from the streaming accumulator merge.
	o := res.Overall
	fmt.Printf("\noverall wasted time across %d runs: mean %.6g s, std %.6g s, range [%.6g, %.6g] s\n",
		o.N(), o.Mean(), o.Std(), o.Min(), o.Max())
	return nil
}
