// Package des is a deterministic, process-oriented discrete-event
// simulation kernel — the core this repository's SimGrid-MSG equivalent
// (internal/msg) is built on.
//
// Simulated processes are goroutines, but exactly one of them executes at
// any moment: the kernel hands control to a process and waits until that
// process blocks on a simulation primitive (Hold, Suspend) or terminates.
// Events fire in (time, sequence) order, so two runs of the same program
// produce identical traces — a property the paper's reproducibility
// methodology depends on and which the tests verify.
//
// The kernel knows nothing about hosts, tasks or messages; those live in
// internal/platform and internal/msg.
package des

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Simulator owns the virtual clock and the event queue.
type Simulator struct {
	now    float64
	seq    uint64
	events eventHeap

	yieldCh chan struct{} // signaled when the running process blocks or ends

	live      int               // processes spawned and not yet terminated
	suspended map[*Process]bool // processes blocked without a scheduled wake
	running   bool
}

// New returns an empty simulator at virtual time 0.
func New() *Simulator {
	return &Simulator{
		yieldCh:   make(chan struct{}),
		suspended: make(map[*Process]bool),
	}
}

// Now returns the current virtual time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// event is a scheduled callback.
type event struct {
	t   float64
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// Schedule runs fn at virtual time now+delay. Negative delays are clamped
// to zero (fire "immediately", after already-queued same-time events).
func (s *Simulator) Schedule(delay float64, fn func()) {
	if delay < 0 || math.IsNaN(delay) {
		delay = 0
	}
	s.seq++
	heap.Push(&s.events, event{t: s.now + delay, seq: s.seq, fn: fn})
}

// Process is a simulated thread of control. All its methods must be
// called from within the process's own body function.
type Process struct {
	sim    *Simulator
	name   string
	resume chan struct{}
	dead   bool

	waitGen  uint64 // suspend/resume cycle counter, invalidates stale timers
	timedOut bool   // outcome of the last SuspendTimeout
}

// Name returns the process name given at spawn time.
func (p *Process) Name() string { return p.name }

// Sim returns the simulator the process belongs to.
func (p *Process) Sim() *Simulator { return p.sim }

// Now returns the current virtual time.
func (p *Process) Now() float64 { return p.sim.now }

// Spawn creates a process that starts executing body at the current
// virtual time (after already-queued events). It may be called before Run
// or from within another process.
func (s *Simulator) Spawn(name string, body func(*Process)) *Process {
	p := &Process{sim: s, name: name, resume: make(chan struct{})}
	s.live++
	go func() {
		<-p.resume // first activation comes from the kernel
		body(p)
		p.dead = true
		s.live--
		s.yieldCh <- struct{}{}
	}()
	s.Schedule(0, func() { s.activate(p) })
	return p
}

// SpawnAt is Spawn with a start delay, mirroring SimGrid deployment
// files' start_time attribute.
func (s *Simulator) SpawnAt(delay float64, name string, body func(*Process)) *Process {
	p := &Process{sim: s, name: name, resume: make(chan struct{})}
	s.live++
	go func() {
		<-p.resume
		body(p)
		p.dead = true
		s.live--
		s.yieldCh <- struct{}{}
	}()
	s.Schedule(delay, func() { s.activate(p) })
	return p
}

// activate transfers control to p and waits until it yields back.
// Called only from kernel context (inside an event function).
func (s *Simulator) activate(p *Process) {
	if p.dead {
		return
	}
	p.resume <- struct{}{}
	<-s.yieldCh
}

// yield returns control to the kernel and blocks until reactivated.
func (p *Process) yield() {
	p.sim.yieldCh <- struct{}{}
	<-p.resume
}

// Hold advances the process's virtual time by d seconds (the simulated
// equivalent of doing work or sleeping for d).
func (p *Process) Hold(d float64) {
	s := p.sim
	s.Schedule(d, func() { s.activate(p) })
	p.yield()
}

// Suspend blocks the process indefinitely; some other event must Wake it.
// Suspended processes with no pending events constitute a deadlock, which
// Run reports as an error.
func (p *Process) Suspend() {
	p.sim.suspended[p] = true
	p.yield()
	p.waitGen++
}

// SuspendTimeout blocks like Suspend but resumes by itself after d
// seconds if nothing woke the process earlier. It reports whether the
// wake-up was the timeout (true) or an explicit Wake (false). Stale
// timers from earlier suspend cycles are ignored.
func (p *Process) SuspendTimeout(d float64) (timedOut bool) {
	s := p.sim
	p.timedOut = false
	gen := p.waitGen
	s.suspended[p] = true
	s.Schedule(d, func() {
		if s.suspended[p] && p.waitGen == gen {
			delete(s.suspended, p)
			p.timedOut = true
			s.activate(p)
		}
	})
	p.yield()
	p.waitGen++
	return p.timedOut
}

// Wake schedules the suspended process to resume at the current virtual
// time. Waking a process that is not suspended is a no-op.
func (s *Simulator) Wake(p *Process) {
	if !s.suspended[p] {
		return
	}
	delete(s.suspended, p)
	s.Schedule(0, func() { s.activate(p) })
}

// Run executes events until none remain. It returns an error if processes
// are still alive afterwards (a deadlock: every remaining process is
// suspended with nobody left to wake it). Run may be called again after
// spawning more processes.
func (s *Simulator) Run() error {
	if s.running {
		return fmt.Errorf("des: Run called reentrantly")
	}
	s.running = true
	defer func() { s.running = false }()
	for s.events.Len() > 0 {
		ev := heap.Pop(&s.events).(event)
		if ev.t < s.now {
			return fmt.Errorf("des: time went backwards: %v -> %v", s.now, ev.t)
		}
		s.now = ev.t
		ev.fn()
	}
	if s.live > 0 {
		names := make([]string, 0, len(s.suspended))
		for p := range s.suspended {
			names = append(names, p.name)
		}
		sort.Strings(names)
		return fmt.Errorf("des: deadlock at t=%v: %d live processes, suspended: %v", s.now, s.live, names)
	}
	return nil
}
