package des

import (
	"fmt"
	"strings"
	"testing"
)

func TestHoldAdvancesTime(t *testing.T) {
	s := New()
	var end float64
	s.Spawn("a", func(p *Process) {
		p.Hold(1.5)
		p.Hold(2.5)
		end = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 4 {
		t.Fatalf("end time = %v, want 4", end)
	}
	if s.Now() != 4 {
		t.Fatalf("simulator time = %v, want 4", s.Now())
	}
}

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []string
	s.Schedule(3, func() { order = append(order, "c") })
	s.Schedule(1, func() { order = append(order, "a") })
	s.Schedule(2, func() { order = append(order, "b") })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ""); got != "abc" {
		t.Fatalf("order = %q, want abc", got)
	}
}

func TestSameTimeFIFO(t *testing.T) {
	// Events at the same timestamp fire in scheduling order (seq
	// tie-break) — this is what makes simulations deterministic.
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(1, func() { order = append(order, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestTwoProcessesInterleave(t *testing.T) {
	s := New()
	var trace []string
	mark := func(name string, p *Process) {
		trace = append(trace, fmt.Sprintf("%s@%v", name, p.Now()))
	}
	s.Spawn("a", func(p *Process) {
		mark("a", p)
		p.Hold(2)
		mark("a", p)
	})
	s.Spawn("b", func(p *Process) {
		mark("b", p)
		p.Hold(1)
		mark("b", p)
		p.Hold(2)
		mark("b", p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := "a@0 b@0 b@1 a@2 b@3"
	if got := strings.Join(trace, " "); got != want {
		t.Fatalf("trace = %q, want %q", got, want)
	}
}

func TestSuspendWake(t *testing.T) {
	s := New()
	var got float64
	var waiter *Process
	waiter = s.Spawn("waiter", func(p *Process) {
		p.Suspend()
		got = p.Now()
	})
	s.Spawn("waker", func(p *Process) {
		p.Hold(5)
		p.Sim().Wake(waiter)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("woken at %v, want 5", got)
	}
}

func TestDeadlockDetection(t *testing.T) {
	s := New()
	s.Spawn("stuck", func(p *Process) {
		p.Suspend()
	})
	err := s.Run()
	if err == nil {
		t.Fatal("deadlock not reported")
	}
	if !strings.Contains(err.Error(), "stuck") {
		t.Fatalf("error %q does not name the stuck process", err)
	}
}

func TestWakeNonSuspendedIsNoop(t *testing.T) {
	s := New()
	p := s.Spawn("a", func(p *Process) { p.Hold(1) })
	s.Wake(p) // not suspended; must not panic or corrupt state
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSpawnAt(t *testing.T) {
	s := New()
	var start float64
	s.SpawnAt(7, "late", func(p *Process) { start = p.Now() })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if start != 7 {
		t.Fatalf("late process started at %v, want 7", start)
	}
}

func TestSpawnFromProcess(t *testing.T) {
	s := New()
	var childTime float64
	s.Spawn("parent", func(p *Process) {
		p.Hold(3)
		p.Sim().Spawn("child", func(c *Process) {
			c.Hold(1)
			childTime = c.Now()
		})
		p.Hold(10)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if childTime != 4 {
		t.Fatalf("child finished at %v, want 4", childTime)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	s := New()
	fired := false
	s.Schedule(5, func() {
		s.Schedule(-3, func() { fired = true })
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("negative-delay event did not fire")
	}
	if s.Now() != 5 {
		t.Fatalf("time = %v, want 5 (clamped)", s.Now())
	}
}

// TestDeterminism runs the same mildly complex program twice and compares
// full traces.
func TestDeterminism(t *testing.T) {
	program := func() []string {
		s := New()
		var trace []string
		var procs []*Process
		for i := 0; i < 5; i++ {
			i := i
			p := s.Spawn(fmt.Sprintf("p%d", i), func(p *Process) {
				for j := 0; j < 3; j++ {
					p.Hold(float64(i+1) * 0.5)
					trace = append(trace, fmt.Sprintf("%s@%.1f", p.Name(), p.Now()))
				}
			})
			procs = append(procs, p)
		}
		_ = procs
		if err := s.Run(); err != nil {
			panic(err)
		}
		return trace
	}
	a := strings.Join(program(), " ")
	b := strings.Join(program(), " ")
	if a != b {
		t.Fatalf("traces differ:\n%s\n%s", a, b)
	}
}

func TestRunTwice(t *testing.T) {
	s := New()
	s.Spawn("a", func(p *Process) { p.Hold(1) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Spawn more work and run again; time continues from 1.
	var second float64
	s.Spawn("b", func(p *Process) {
		p.Hold(2)
		second = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if second != 3 {
		t.Fatalf("second phase ended at %v, want 3", second)
	}
}

func BenchmarkHoldLoop(b *testing.B) {
	s := New()
	s.Spawn("bench", func(p *Process) {
		for i := 0; i < b.N; i++ {
			p.Hold(0.001)
		}
	})
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkScheduleDispatch(b *testing.B) {
	s := New()
	var count int
	var again func()
	again = func() {
		count++
		if count < b.N {
			s.Schedule(0.001, again)
		}
	}
	s.Schedule(0, again)
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

func TestSuspendTimeoutFires(t *testing.T) {
	s := New()
	var woke float64
	var timedOut bool
	s.Spawn("sleeper", func(p *Process) {
		timedOut = p.SuspendTimeout(3)
		woke = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !timedOut {
		t.Fatal("expected timeout")
	}
	if woke != 3 {
		t.Fatalf("woke at %v, want 3", woke)
	}
}

func TestSuspendTimeoutWokenEarly(t *testing.T) {
	s := New()
	var timedOut bool
	var woke float64
	var waiter *Process
	waiter = s.Spawn("waiter", func(p *Process) {
		timedOut = p.SuspendTimeout(100)
		woke = p.Now()
		// The stale timer at t=100 must not disturb a later suspend.
		p.Suspend()
	})
	s.Spawn("waker", func(p *Process) {
		p.Hold(2)
		p.Sim().Wake(waiter)
		p.Hold(200) // past the stale timer
		p.Sim().Wake(waiter)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if timedOut {
		t.Fatal("woken early but reported timeout")
	}
	if woke != 2 {
		t.Fatalf("woke at %v, want 2", woke)
	}
	if s.Now() != 202 {
		t.Fatalf("final time %v, want 202 (second wake)", s.Now())
	}
}

func TestSuspendTimeoutStaleTimerIgnored(t *testing.T) {
	// A process that times out and then suspends again must not be woken
	// by its own stale timer.
	s := New()
	var wakes []float64
	var target *Process
	target = s.Spawn("t", func(p *Process) {
		p.SuspendTimeout(1) // fires at t=1
		wakes = append(wakes, p.Now())
		p.SuspendTimeout(10) // fires at t=11, NOT disturbed by anything at t=1
		wakes = append(wakes, p.Now())
	})
	_ = target
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(wakes) != 2 || wakes[0] != 1 || wakes[1] != 11 {
		t.Fatalf("wakes = %v, want [1 11]", wakes)
	}
}
