package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/campaign"
)

// TestWithAPIKey: the key travels as a Bearer token on every request.
func TestWithAPIKey(t *testing.T) {
	var got atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get("Authorization"))
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	c, err := New(srv.URL, WithAPIKey("s3cret"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Live(context.Background()); err != nil {
		t.Fatal(err)
	}
	if h, _ := got.Load().(string); h != "Bearer s3cret" {
		t.Fatalf("Authorization header = %q", h)
	}
}

// TestAuthSentinels: 401/403 envelopes unwrap to the new sentinels and
// never retry (they are not transient).
func TestAuthSentinels(t *testing.T) {
	cases := []struct {
		status int
		code   string
		want   error
	}{
		{http.StatusUnauthorized, campaign.CodeUnauthorized, ErrUnauthorized},
		{http.StatusForbidden, campaign.CodeQuotaExceeded, ErrQuotaExceeded},
	}
	for _, tc := range cases {
		h := &flaky{failures: 99, status: tc.status, code: tc.code}
		srv := httptest.NewServer(h)
		c, err := New(srv.URL, WithOptions(Options{Retry: DefaultRetry}))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Live(context.Background()); !errors.Is(err, tc.want) {
			t.Errorf("status %d: err = %v, want %v", tc.status, err, tc.want)
		}
		if got := h.seen.Load(); got != 1 {
			t.Errorf("status %d: server saw %d requests, want 1 (no retry)", tc.status, got)
		}
		srv.Close()
	}
}

// TestRetryAfterHonored: a 429 is retried, the wait respects the
// server's Retry-After as a floor over the policy backoff, and the
// terminal error (when attempts run out) carries both the sentinel and
// the hint.
func TestRetryAfterHonored(t *testing.T) {
	var seen atomic.Int64
	var firstRetryAt atomic.Value
	start := time.Now()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if seen.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(campaign.ErrorEnvelope{
				Error: campaign.ErrorBody{Code: campaign.CodeRateLimited, Message: "slow down"},
			})
			return
		}
		firstRetryAt.Store(time.Since(start))
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	c, err := New(srv.URL, WithOptions(Options{
		// Policy backoff is a millisecond: any wait near a second proves
		// the header was the floor.
		Retry: RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Live(context.Background()); err != nil {
		t.Fatalf("Health across a 429: %v", err)
	}
	if seen.Load() != 2 {
		t.Fatalf("server saw %d requests, want 2", seen.Load())
	}
	if waited, _ := firstRetryAt.Load().(time.Duration); waited < 900*time.Millisecond {
		t.Fatalf("retry came after %v, want ≥ Retry-After (1s)", waited)
	}

	// Attempts exhausted: the error unwraps to ErrRateLimited and the
	// hint is visible through RetryAfterHint.
	always := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(campaign.ErrorEnvelope{
			Error: campaign.ErrorBody{Code: campaign.CodeRateLimited, Message: "still no"},
		})
	}))
	defer always.Close()
	c2, err := New(always.URL) // no retries: surface immediately
	if err != nil {
		t.Fatal(err)
	}
	err = c2.Live(context.Background())
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("err = %v, want ErrRateLimited", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.RetryAfter != 7*time.Second {
		t.Fatalf("RetryAfter = %v, want 7s", apiErr.RetryAfter)
	}
	if apiErr.RetryAfterHint() != 7*time.Second {
		t.Fatalf("RetryAfterHint() = %v, want 7s", apiErr.RetryAfterHint())
	}
}
