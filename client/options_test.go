package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/campaign"
)

// flaky is a handler that fails the first `failures` requests with the
// given status (wrapped in the service's error envelope) and then
// defers to next.
type flaky struct {
	failures int64
	status   int
	code     string
	seen     atomic.Int64
	next     http.Handler
}

func (f *flaky) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.seen.Add(1) <= f.failures {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(f.status)
		json.NewEncoder(w).Encode(campaign.ErrorEnvelope{
			Error: campaign.ErrorBody{Code: f.code, Message: "injected"},
		})
		return
	}
	f.next.ServeHTTP(w, r)
}

func ok(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
}

// TestRetryTransient5xx: a client with retries enabled absorbs
// transient 503s (queue_full maps there) and succeeds once the server
// recovers; the same failure sequence without retries surfaces the
// sentinel error.
func TestRetryTransient5xx(t *testing.T) {
	h := &flaky{failures: 2, status: http.StatusServiceUnavailable,
		code: campaign.CodeQueueFull, next: http.HandlerFunc(ok)}
	srv := httptest.NewServer(h)
	defer srv.Close()

	c, err := New(srv.URL, WithOptions(Options{
		Retry: RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, Jitter: 0.5},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Live(context.Background()); err != nil {
		t.Fatalf("Health with retries: %v", err)
	}
	if got := h.seen.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3", got)
	}

	h.seen.Store(0)
	plain, err := New(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Live(context.Background()); !errors.Is(err, campaign.ErrQueueFull) {
		t.Fatalf("Health without retries = %v, want ErrQueueFull", err)
	}
	if got := h.seen.Load(); got != 1 {
		t.Fatalf("retry-less client issued %d requests, want 1", got)
	}
}

// TestRetryConnectionRefused: retries span complete connection
// failures, not just error responses — the server only starts
// listening after the first attempt has already been refused.
func TestRetryConnectionRefused(t *testing.T) {
	srv := httptest.NewUnstartedServer(http.HandlerFunc(ok))
	addr := srv.Listener.Addr().String()
	go func() {
		time.Sleep(30 * time.Millisecond)
		srv.Start()
	}()
	defer srv.Close()

	// Close the listener's accept socket is not possible pre-start; the
	// unstarted server holds the port but refuses HTTP until Start. A
	// request before Start hangs in accept rather than being refused on
	// some platforms, so bound each attempt with a short timeout — the
	// timeout itself is a retryable transport failure.
	c, err := New("http://"+addr, WithOptions(Options{
		Timeout: 20 * time.Millisecond,
		Retry:   RetryPolicy{MaxAttempts: 10, BaseDelay: 10 * time.Millisecond, MaxDelay: 20 * time.Millisecond},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Live(context.Background()); err != nil {
		t.Fatalf("Health across server start: %v", err)
	}
}

// TestNoRetryOnClientError: 4xx responses are caller mistakes, not
// transient conditions; they must surface immediately.
func TestNoRetryOnClientError(t *testing.T) {
	h := &flaky{failures: 99, status: http.StatusNotFound, code: campaign.CodeNotFound}
	srv := httptest.NewServer(h)
	defer srv.Close()

	c, err := New(srv.URL, WithOptions(Options{Retry: DefaultRetry}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Job(context.Background(), "nope"); !errors.Is(err, campaign.ErrNotFound) {
		t.Fatalf("Job = %v, want ErrNotFound", err)
	}
	if got := h.seen.Load(); got != 1 {
		t.Fatalf("server saw %d requests for a 404, want 1", got)
	}
}

// TestRetryStopsOnCancel: a cancelled caller context ends the retry
// loop with the last real error instead of sleeping out the policy.
func TestRetryStopsOnCancel(t *testing.T) {
	h := &flaky{failures: 99, status: http.StatusInternalServerError, code: campaign.CodeInternal}
	srv := httptest.NewServer(h)
	defer srv.Close()

	c, err := New(srv.URL, WithOptions(Options{
		Retry: RetryPolicy{MaxAttempts: 1000, BaseDelay: 10 * time.Millisecond, MaxDelay: 10 * time.Millisecond},
	}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = c.Live(ctx)
	if err == nil {
		t.Fatal("Health succeeded against a permanently failing server")
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusInternalServerError {
		t.Fatalf("Health = %v, want the last HTTP 500", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("retry loop ran %v past cancellation", elapsed)
	}
}

// TestUnaryTimeoutSparesWait: Options.Timeout bounds unary calls but
// must not clamp the long-poll Wait, whose whole point is blocking for
// the duration of a campaign.
func TestUnaryTimeoutSparesWait(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/techniques", func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(150 * time.Millisecond)
		w.Write([]byte(`{"techniques":["STATIC"]}`))
	})
	mux.HandleFunc("/v1/jobs/slow", func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(150 * time.Millisecond)
		json.NewEncoder(w).Encode(campaign.Snapshot{ID: "slow", State: "done"})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	c, err := New(srv.URL, WithOptions(Options{Timeout: 40 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Techniques(context.Background()); err == nil {
		t.Fatal("Techniques beat a 40ms timeout against a 150ms handler")
	}
	snap, err := c.Wait(context.Background(), "slow")
	if err != nil {
		t.Fatalf("Wait hit the unary timeout: %v", err)
	}
	if snap.ID != "slow" {
		t.Fatalf("Wait snapshot = %+v", snap)
	}
}

// TestRetryPolicyDelay pins the backoff shape: exponential growth from
// BaseDelay, capped at MaxDelay, and jitter only ever shrinking the
// delay within its fraction.
func TestRetryPolicyDelay(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond}
	for retry, want := range []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond, 40 * time.Millisecond,
	} {
		if got := p.delay(retry); got != want {
			t.Errorf("delay(%d) = %v, want %v", retry, got, want)
		}
	}
	j := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond, Jitter: 0.5}
	for i := 0; i < 100; i++ {
		d := j.delay(1) // un-jittered: 20ms
		if d < 10*time.Millisecond || d > 20*time.Millisecond {
			t.Fatalf("jittered delay %v outside [10ms, 20ms]", d)
		}
	}
}

// TestMaxIdleConnsPerHost: the tuned transport is installed only when
// the caller has not supplied an http.Client of their own.
func TestMaxIdleConnsPerHost(t *testing.T) {
	c, err := New("http://localhost:1", WithOptions(Options{MaxIdleConnsPerHost: 64}))
	if err != nil {
		t.Fatal(err)
	}
	tr, okT := c.hc.Transport.(*http.Transport)
	if !okT || tr.MaxIdleConnsPerHost != 64 {
		t.Fatalf("transport not tuned: %#v", c.hc.Transport)
	}
	custom := &http.Client{}
	c2, err := New("http://localhost:1", WithHTTPClient(custom), WithOptions(Options{MaxIdleConnsPerHost: 64}))
	if err != nil {
		t.Fatal(err)
	}
	if c2.hc != custom {
		t.Fatal("WithHTTPClient was overridden by Options.MaxIdleConnsPerHost")
	}
}
