package client

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/campaign"
	"repro/internal/engine"
	"repro/internal/jobs"
	"repro/internal/service"
	"repro/internal/testutil"
)

// gate is a controllable backend so tests can hold jobs in the running
// state deterministically.
var gate = testutil.NewGateBackend("client-gate")

func init() { engine.Register(gate) }

// newService starts an in-process dlsimd equivalent and a client for it.
func newService(t *testing.T, cfg jobs.Config) (*Client, *jobs.Manager) {
	t.Helper()
	mgr := jobs.NewManager(cfg)
	srv := httptest.NewServer(service.New(mgr).Handler())
	t.Cleanup(func() {
		srv.Close()
		mgr.Close()
	})
	c, err := New(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	return c, mgr
}

func contractSpec(seed uint64, reps int) campaign.Spec {
	return campaign.Spec{
		Techniques:   []string{"FAC2", "GSS"},
		Ns:           []int64{256},
		Ps:           []int{4},
		Workload:     campaign.Workload{Kind: "exponential", P1: 1},
		H:            0.5,
		Replications: reps,
		Seed:         seed,
		SeedPolicy:   campaign.SeedFacade,
	}
}

// TestContractLocalRemoteEquivalence is the PR's acceptance test: the
// same campaign.Spec executed through the LocalRunner, through the
// remote client against an in-process dlsimd, and through the legacy
// facade yields bit-identical JSONL result streams and aggregates.
func TestContractLocalRemoteEquivalence(t *testing.T) {
	ctx := context.Background()
	remote, _ := newService(t, jobs.Config{})
	spec := contractSpec(911, 25)

	// Local: synchronous fast path plus the async stream.
	local := campaign.NewLocal(campaign.LocalConfig{})
	defer local.Close()
	localRes, err := campaign.Run(ctx, local, spec)
	if err != nil {
		t.Fatal(err)
	}
	job, err := local.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	var localJSONL bytes.Buffer
	if err := local.Stream(ctx, job.ID, campaign.NewJSONLSink(&localJSONL)); err != nil {
		t.Fatal(err)
	}

	// Remote: generic Runner path (submit → wait → stream → aggregate).
	remoteRes, err := campaign.Run(ctx, remote, spec)
	if err != nil {
		t.Fatal(err)
	}
	rjob, err := remote.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rjob.Hash != job.Hash {
		t.Fatalf("remote hash %s != local hash %s", rjob.Hash, job.Hash)
	}
	body, err := remote.Results(ctx, rjob.ID, "jsonl")
	if err != nil {
		t.Fatal(err)
	}
	remoteJSONL, err := io.ReadAll(body)
	body.Close()
	if err != nil {
		t.Fatal(err)
	}

	// Byte-identical raw streams, bit-identical aggregates.
	if !bytes.Equal(localJSONL.Bytes(), remoteJSONL) {
		t.Fatalf("JSONL streams differ:\nlocal:  %.200s\nremote: %.200s", localJSONL.Bytes(), remoteJSONL)
	}
	if len(localRes.Aggregates) != len(remoteRes.Aggregates) {
		t.Fatalf("aggregate counts differ: %d vs %d", len(localRes.Aggregates), len(remoteRes.Aggregates))
	}
	for i := range localRes.Aggregates {
		l, r := localRes.Aggregates[i], remoteRes.Aggregates[i]
		if l.Wasted != r.Wasted || l.Makespan != r.Makespan || l.Speedup != r.Speedup || l.MeanOps != r.MeanOps {
			t.Fatalf("aggregate %d differs:\nlocal:  %+v\nremote: %+v", i, l, r)
		}
	}
	if localRes.Overall != remoteRes.Overall {
		t.Fatalf("overall roll-up differs: %+v vs %+v", localRes.Overall, remoteRes.Overall)
	}

	// The legacy facade computes the same numbers: the spec above uses
	// the facade seed policy, so MeanWastedTime over the same options is
	// the first technique's aggregate, bit for bit.
	facade, err := repro.MeanWastedTime("FAC2", 256, 4, 25,
		repro.WithExponential(1), repro.WithOverhead(0.5), repro.WithSeed(911))
	if err != nil {
		t.Fatal(err)
	}
	if facade != localRes.Aggregates[0].Wasted.Mean {
		t.Fatalf("facade mean %v != runner mean %v", facade, localRes.Aggregates[0].Wasted.Mean)
	}
}

// TestContractStreamDecodesEvents checks the client's Stream against a
// CSV rendering: decoded events re-encoded client-side must match the
// server's own CSV byte for byte (the decode is lossless).
func TestContractStreamDecodesEvents(t *testing.T) {
	ctx := context.Background()
	remote, _ := newService(t, jobs.Config{})
	spec := contractSpec(77, 8)

	job, err := remote.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	var clientCSV bytes.Buffer
	if err := remote.Stream(ctx, job.ID, campaign.NewCSVSink(&clientCSV)); err != nil {
		t.Fatal(err)
	}
	body, err := remote.Results(ctx, job.ID, "csv")
	if err != nil {
		t.Fatal(err)
	}
	serverCSV, err := io.ReadAll(body)
	body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(clientCSV.Bytes(), serverCSV) {
		t.Fatalf("client-side CSV differs from server CSV:\nclient: %.200s\nserver: %.200s", clientCSV.Bytes(), serverCSV)
	}
}

// TestErrorEnvelopes exercises every /v1 failure path and asserts the
// structured envelope: HTTP status, stable code, and the mapping onto
// the campaign sentinel errors.
func TestErrorEnvelopes(t *testing.T) {
	ctx := context.Background()
	c, mgr := newService(t, jobs.Config{QueueDepth: 1, Concurrency: 1})

	assertAPIError := func(t *testing.T, err error, status int, code string) *APIError {
		t.Helper()
		var apiErr *APIError
		if !errors.As(err, &apiErr) {
			t.Fatalf("got %T (%v), want *APIError", err, err)
		}
		if apiErr.Status != status || apiErr.Code != code {
			t.Fatalf("got HTTP %d code %q (%s), want HTTP %d code %q",
				apiErr.Status, apiErr.Code, apiErr.Message, status, code)
		}
		return apiErr
	}

	t.Run("invalid spec", func(t *testing.T) {
		spec := contractSpec(1, 0) // replications must be positive
		_, err := c.Submit(ctx, spec)
		assertAPIError(t, err, http.StatusBadRequest, campaign.CodeInvalidSpec)
	})
	t.Run("duplicate technique", func(t *testing.T) {
		spec := contractSpec(1, 2)
		spec.Techniques = []string{"FAC2", "FAC2"}
		_, err := c.Submit(ctx, spec)
		apiErr := assertAPIError(t, err, http.StatusBadRequest, campaign.CodeInvalidSpec)
		if !strings.Contains(apiErr.Message, "duplicate technique") {
			t.Fatalf("message %q does not name the duplicate", apiErr.Message)
		}
	})
	t.Run("malformed body", func(t *testing.T) {
		resp, err := http.Post(c.base+"/v1/jobs", "application/json", strings.NewReader("{not json"))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(raw), campaign.CodeInvalidArgument) {
			t.Fatalf("malformed body = %d %s, want 400 %s", resp.StatusCode, raw, campaign.CodeInvalidArgument)
		}
	})
	t.Run("not found", func(t *testing.T) {
		_, err := c.Job(ctx, "j999")
		apiErr := assertAPIError(t, err, http.StatusNotFound, campaign.CodeNotFound)
		if !errors.Is(apiErr, campaign.ErrNotFound) {
			t.Fatal("not_found does not unwrap to campaign.ErrNotFound")
		}
		if err := c.Cancel(ctx, "j999"); !errors.Is(err, campaign.ErrNotFound) {
			t.Fatalf("cancel unknown = %v, want ErrNotFound", err)
		}
	})
	t.Run("bad list cursor", func(t *testing.T) {
		_, err := c.Jobs(ctx, ListOptions{After: "j999"})
		assertAPIError(t, err, http.StatusNotFound, campaign.CodeNotFound)
	})
	t.Run("bad limit", func(t *testing.T) {
		var out JobList
		err := c.getJSON(ctx, "/v1/jobs", map[string][]string{"limit": {"-3"}}, &out, true)
		assertAPIError(t, err, http.StatusBadRequest, campaign.CodeInvalidArgument)
	})

	// Lifecycle-dependent paths share one gated job.
	gate.Reset()
	defer gate.Release()
	gspec := contractSpec(5, 3)
	gspec.Backend = gate.Name()
	job, err := c.Submit(ctx, gspec)
	if err != nil {
		t.Fatal(err)
	}
	// The runner must pop the job off the queue (freeing its slot)
	// before the queue-capacity subtest below fills it again.
	for {
		snap, err := c.Job(ctx, job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if snap.State == campaign.StateRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}

	t.Run("results wait=0 before completion", func(t *testing.T) {
		resp, err := http.Get(c.base + "/v1/jobs/" + job.ID + "/results?wait=0")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusConflict || !strings.Contains(string(raw), campaign.CodeNotDone) {
			t.Fatalf("wait=0 = %d %s, want 409 %s", resp.StatusCode, raw, campaign.CodeNotDone)
		}
	})
	t.Run("bad wait parameter", func(t *testing.T) {
		var snap campaign.Snapshot
		err := c.getJSON(ctx, "/v1/jobs/"+job.ID, map[string][]string{"wait": {"maybe"}}, &snap, true)
		assertAPIError(t, err, http.StatusBadRequest, campaign.CodeInvalidArgument)
	})
	t.Run("unknown format", func(t *testing.T) {
		_, err := c.Results(ctx, job.ID, "xml")
		assertAPIError(t, err, http.StatusBadRequest, campaign.CodeInvalidArgument)
	})
	t.Run("queue full", func(t *testing.T) {
		// The gated job occupies the single runner; one more fills the
		// queue, the next must bounce.
		q1 := contractSpec(6, 3)
		q1.Backend = gate.Name()
		if _, err := c.Submit(ctx, q1); err != nil {
			t.Fatal(err)
		}
		q2 := contractSpec(7, 3)
		q2.Backend = gate.Name()
		_, err := c.Submit(ctx, q2)
		apiErr := assertAPIError(t, err, http.StatusServiceUnavailable, campaign.CodeQueueFull)
		if !errors.Is(apiErr, campaign.ErrQueueFull) {
			t.Fatal("queue_full does not unwrap to campaign.ErrQueueFull")
		}
	})
	t.Run("cancelled job results", func(t *testing.T) {
		if err := c.Cancel(ctx, job.ID); err != nil {
			t.Fatal(err)
		}
		if _, err := mgr.Wait(ctx, job.ID); err != nil {
			t.Fatal(err)
		}
		_, err := c.Results(ctx, job.ID, "")
		assertAPIError(t, err, http.StatusConflict, campaign.CodeJobCancelled)
		if _, err := campaign.Run(ctx, c, campaign.Spec{}); err == nil {
			t.Fatal("Run with empty spec succeeded")
		}
	})
}

// TestDiscoveryPaginationNegotiation covers the v1 discovery endpoints,
// job listing pagination, and Accept-header content negotiation.
func TestDiscoveryPaginationNegotiation(t *testing.T) {
	ctx := context.Background()
	c, _ := newService(t, jobs.Config{})

	desc, err := c.Describe(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if desc.Service != "dlsimd" || desc.APIVersion != campaign.APIVersion {
		t.Fatalf("describe = %+v", desc)
	}
	local, _ := campaign.NewLocal(campaign.LocalConfig{}).Describe(ctx)
	if strings.Join(desc.Techniques, ",") != strings.Join(local.Techniques, ",") ||
		strings.Join(desc.Backends, ",") != strings.Join(local.Backends, ",") ||
		strings.Join(desc.SeedPolicies, ",") != strings.Join(local.SeedPolicies, ",") {
		t.Fatalf("remote description %+v differs from local %+v", desc, local)
	}
	techs, err := c.Techniques(ctx)
	if err != nil {
		t.Fatal(err)
	}
	backends, err := c.Backends(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(techs) == 0 || len(backends) == 0 {
		t.Fatalf("empty discovery: %d techniques, %d backends", len(techs), len(backends))
	}
	if err := c.Live(ctx); err != nil {
		t.Fatal(err)
	}
	health, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !health.Ok || !health.Ready || health.Draining || health.Service != "dlsimd" {
		t.Fatalf("health = %+v, want ok+ready dlsimd", health)
	}

	// Five distinct jobs, paged two at a time in submission order.
	var ids []string
	for seed := uint64(100); seed < 105; seed++ {
		job, err := c.Submit(ctx, contractSpec(seed, 1))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID)
	}
	var got []string
	after := ""
	pages := 0
	for {
		page, err := c.Jobs(ctx, ListOptions{Limit: 2, After: after})
		if err != nil {
			t.Fatal(err)
		}
		pages++
		for _, s := range page.Jobs {
			got = append(got, s.ID)
		}
		if page.NextAfter == "" {
			break
		}
		after = page.NextAfter
	}
	if pages != 3 || strings.Join(got, ",") != strings.Join(ids, ",") {
		t.Fatalf("pagination walked %d pages, ids %v; want 3 pages of %v", pages, got, ids)
	}
	all, err := c.Jobs(ctx, ListOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Jobs) != 5 || all.NextAfter != "" {
		t.Fatalf("unpaged list = %d jobs, next %q", len(all.Jobs), all.NextAfter)
	}

	// Accept-header negotiation: no ?format, Accept: text/csv → CSV.
	if _, err := c.Wait(ctx, ids[0]); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+ids[0]+"/results", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/csv")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if ct := resp.Header.Get("Content-Type"); ct != "text/csv" || !strings.HasPrefix(string(raw), "point,technique,") {
		t.Fatalf("Accept: text/csv negotiated %q: %.60s", ct, raw)
	}
}
