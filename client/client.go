package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/campaign"
)

// Client speaks the dlsimd /v1 API. It is safe for concurrent use and
// implements campaign.Runner — the remote counterpart of
// campaign.LocalRunner.
type Client struct {
	base     string // normalized base URL, no trailing slash
	hc       *http.Client
	doer     Doer // transport seam; defaults to hc
	ua       string
	apiKey   string
	opts     Options
	customHC bool // WithHTTPClient was given; don't tune the transport
}

// Doer issues one HTTP request — the client's transport seam.
// *http.Client implements it; tests and the fault-injection harness
// (internal/chaos.Injector) substitute their own to exercise failure
// paths without sockets. The client's retry policy operates above the
// Doer: each retry is one more Do call.
type Doer interface {
	Do(*http.Request) (*http.Response, error)
}

var _ campaign.Runner = (*Client)(nil)

// Sentinel errors surfaced from the service's auth, rate-limit and
// quota middleware, re-exported from campaign so callers importing only
// this package can errors.Is against them.
var (
	// ErrUnauthorized reports a missing or invalid API key (HTTP 401).
	ErrUnauthorized = campaign.ErrUnauthorized
	// ErrRateLimited reports a request rejected by the per-tenant rate
	// limiter (HTTP 429). The retry policy backs off automatically,
	// honoring the server's Retry-After.
	ErrRateLimited = campaign.ErrRateLimited
	// ErrQuotaExceeded reports a submission rejected by the tenant's
	// queued-job quota (HTTP 403).
	ErrQuotaExceeded = campaign.ErrQuotaExceeded
)

// RetryPolicy configures transparent retries of transient failures.
// Every request the client issues is idempotent — GETs and DELETEs
// trivially, and Submit by construction: the service deduplicates
// submissions on the spec's canonical hash, so a retried POST lands on
// the same job. That is what makes blanket retry safe here.
type RetryPolicy struct {
	// MaxAttempts bounds the total tries per request, including the
	// first; 0 and 1 both mean no retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// subsequent retry. 0 means 50ms.
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff. 0 means 2s.
	MaxDelay time.Duration
	// Jitter is the fraction of each delay randomized away, in [0, 1]:
	// the actual sleep is uniform in [(1-Jitter)·d, d]. Jitter keeps a
	// fleet of coordinators from retrying in lockstep against a node
	// that just came back.
	Jitter float64
}

// DefaultRetry is a reasonable policy for coordinator-style callers:
// up to 4 attempts, 50ms base delay doubling to a 2s cap, half-jittered.
var DefaultRetry = RetryPolicy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second, Jitter: 0.5}

// Options bundles the client's reliability and connection tuning knobs.
// The zero value preserves the historical behaviour: no per-request
// timeout, no retries, default transport.
type Options struct {
	// Timeout bounds each unary request (Submit, Job, Jobs, Cancel,
	// Describe, Techniques, Backends, Health) from dial to fully read
	// body. It does NOT apply to Wait or to result streaming — those
	// legitimately block for as long as a campaign runs; bound them per
	// call through the context.
	Timeout time.Duration
	// Retry enables transparent retry of transient failures: transport
	// errors (connection refused, reset, per-request timeout) and any
	// 5xx response — which covers campaign.ErrQueueFull and
	// campaign.ErrClosed, both mapped to HTTP 503 by the service.
	// Non-5xx API errors (validation, not-found) never retry, and a
	// cancelled caller context stops retrying immediately.
	Retry RetryPolicy
	// MaxIdleConnsPerHost tunes keep-alive connection reuse against a
	// single node; useful when a coordinator multiplexes many in-flight
	// shards over one client. 0 keeps the transport default (2).
	// Ignored when WithHTTPClient supplies a custom client.
	MaxIdleConnsPerHost int
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient installs the http.Client used for every request (e.g.
// to add timeouts, TLS configuration or instrumentation). The default
// client has no timeout — Wait and Stream legitimately block for as
// long as a campaign runs; bound them per call through the context.
// Overrides Options.MaxIdleConnsPerHost.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc; c.customHC = true }
}

// WithDoer installs the transport used for every request, below the
// retry policy: fault injectors, instrumentation, or any wrapper around
// a real *http.Client. Takes precedence over WithHTTPClient for issuing
// requests.
func WithDoer(d Doer) Option {
	return func(c *Client) { c.doer = d }
}

// WithUserAgent sets the User-Agent header sent with every request.
func WithUserAgent(ua string) Option { return func(c *Client) { c.ua = ua } }

// WithAPIKey sends the key as "Authorization: Bearer <key>" on every
// request — the credential for services running with -auth.
func WithAPIKey(key string) Option { return func(c *Client) { c.apiKey = key } }

// WithOptions installs the client's timeout, retry and connection
// tuning knobs.
func WithOptions(o Options) Option { return func(c *Client) { c.opts = o } }

// New returns a client for the service at baseURL (e.g.
// "http://localhost:8080").
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: parse base URL: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("client: base URL %q must be http or https", baseURL)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("client: base URL %q has no host", baseURL)
	}
	c := &Client{
		base: strings.TrimRight(u.String(), "/"),
		hc:   &http.Client{},
		ua:   "repro-client/" + campaign.APIVersion,
	}
	for _, o := range opts {
		o(c)
	}
	if c.opts.MaxIdleConnsPerHost > 0 && !c.customHC {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = c.opts.MaxIdleConnsPerHost
		if tr.MaxIdleConns < c.opts.MaxIdleConnsPerHost {
			tr.MaxIdleConns = c.opts.MaxIdleConnsPerHost
		}
		c.hc = &http.Client{Transport: tr}
	}
	if c.doer == nil {
		c.doer = c.hc
	}
	return c, nil
}

// APIError is a non-2xx response decoded from the service's structured
// error envelope {"error": {"code", "message", "details"}}.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the stable machine-readable error code (campaign.Code*).
	Code string
	// Message is the human-readable description.
	Message string
	// Details carries code-specific context (offending parameter, job
	// state, ...).
	Details map[string]any
	// RetryAfter is the server's Retry-After hint (429 responses), zero
	// when absent. The client's own retry loop already honors it; it is
	// surfaced for callers orchestrating their own backoff.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: %s (%s, HTTP %d)", e.Message, e.Code, e.Status)
}

// RetryAfterHint returns the server-provided backoff, zero when none.
// It lets rate-limit-aware callers (campaign/distrib) discover the hint
// through errors.As without depending on this package's types.
func (e *APIError) RetryAfterHint() time.Duration { return e.RetryAfter }

// Unwrap maps stable error codes onto the campaign package's sentinel
// errors, so errors.Is(err, campaign.ErrQueueFull) and friends hold for
// remote failures exactly as for local ones.
func (e *APIError) Unwrap() error {
	switch e.Code {
	case campaign.CodeQueueFull:
		return campaign.ErrQueueFull
	case campaign.CodeNotFound:
		return campaign.ErrNotFound
	case campaign.CodeShuttingDown:
		return campaign.ErrClosed
	case campaign.CodeUnauthorized:
		return campaign.ErrUnauthorized
	case campaign.CodeRateLimited:
		return campaign.ErrRateLimited
	case campaign.CodeQuotaExceeded:
		return campaign.ErrQuotaExceeded
	}
	return nil
}

// do issues one request with the client's timeout and retry policy
// applied and, on a non-2xx status, drains the body into an *APIError.
// On success the response is returned with its body open; the caller
// owns closing it. unary marks bounded request/response calls: only
// those get Options.Timeout, and their bodies are buffered before
// return so a retried attempt can never interleave with a half-read
// predecessor. Long-lived calls (Wait, Results) pass unary=false —
// they still retry failures that occur before the response starts.
func (c *Client) do(ctx context.Context, method, path string, query url.Values, body []byte, accept string, unary bool) (*http.Response, error) {
	attempts := c.opts.Retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var last error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			d := c.opts.Retry.delay(a - 1)
			// A 429's Retry-After is a floor, not a suggestion: sleeping
			// less would burn the attempt against a bucket known to be
			// empty.
			var apiErr *APIError
			if errors.As(last, &apiErr) && apiErr.RetryAfter > d {
				d = apiErr.RetryAfter
			}
			if err := sleepCtx(ctx, d); err != nil {
				return nil, last
			}
		}
		resp, err := c.doOnce(ctx, method, path, query, body, accept, unary)
		if err == nil {
			return resp, nil
		}
		last = err
		if ctx.Err() != nil || !retryable(err) {
			break
		}
	}
	return nil, last
}

// retryable reports whether an attempt's failure is worth retrying:
// transport-level errors (connection refused, reset, attempt timeout),
// 5xx responses and 429 rate limiting (the bucket refills) are;
// well-formed non-5xx API errors are not.
func retryable(err error) bool {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.Status >= 500 || apiErr.Status == http.StatusTooManyRequests
	}
	return true
}

// delay returns the backoff before retry number `retry` (0-based),
// exponentially grown from BaseDelay, capped at MaxDelay, jittered.
func (p RetryPolicy) delay(retry int) time.Duration {
	base, cap := p.BaseDelay, p.MaxDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if cap <= 0 {
		cap = 2 * time.Second
	}
	d := base
	for i := 0; i < retry && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	if j := p.Jitter; j > 0 {
		if j > 1 {
			j = 1
		}
		d = time.Duration(float64(d) * (1 - j*rand.Float64()))
	}
	return d
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (c *Client) doOnce(ctx context.Context, method, path string, query url.Values, body []byte, accept string, unary bool) (*http.Response, error) {
	if unary && c.opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.opts.Timeout)
		defer cancel()
	}
	u := c.base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, rd)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	req.Header.Set("User-Agent", c.ua)
	if c.apiKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.apiKey)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := c.doer.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if unary && c.opts.Timeout > 0 {
			// The attempt's timeout context dies when doOnce returns, which
			// would abort a body still being read — so read it here, inside
			// the timeout, and hand back a drained replacement.
			raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			if err != nil {
				return nil, fmt.Errorf("client: %s %s: read response: %w", method, path, err)
			}
			resp.Body = io.NopCloser(bytes.NewReader(raw))
		}
		return resp, nil
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var envelope campaign.ErrorEnvelope
	apiErr := &APIError{Status: resp.StatusCode}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		apiErr.RetryAfter = time.Duration(secs) * time.Second
	}
	if err := json.Unmarshal(raw, &envelope); err == nil && envelope.Error.Code != "" {
		apiErr.Code = envelope.Error.Code
		apiErr.Message = envelope.Error.Message
		apiErr.Details = envelope.Error.Details
	} else {
		// Not our envelope (proxy error page, older server): keep the
		// raw body as the message under the generic code.
		apiErr.Code = campaign.CodeInternal
		apiErr.Message = strings.TrimSpace(string(raw))
		if apiErr.Message == "" {
			apiErr.Message = resp.Status
		}
	}
	return nil, apiErr
}

// getJSON issues a GET and decodes the JSON response into out. unary
// follows do's meaning: bounded calls get Options.Timeout, long polls
// (Wait) do not.
func (c *Client) getJSON(ctx context.Context, path string, query url.Values, out any, unary bool) error {
	resp, err := c.do(ctx, http.MethodGet, path, query, nil, "application/json", unary)
	if err != nil {
		return err
	}
	defer drainClose(resp.Body)
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode %s response: %w", path, err)
	}
	return nil
}

// Submit implements campaign.Runner: POST /v1/jobs.
func (c *Client) Submit(ctx context.Context, spec campaign.Spec) (campaign.Job, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return campaign.Job{}, fmt.Errorf("client: encode spec: %w", err)
	}
	resp, err := c.do(ctx, http.MethodPost, "/v1/jobs", nil, body, "application/json", true)
	if err != nil {
		return campaign.Job{}, err
	}
	defer drainClose(resp.Body)
	var sub struct {
		campaign.Snapshot
		Deduped bool `json:"deduped"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		return campaign.Job{}, fmt.Errorf("client: decode submit response: %w", err)
	}
	return campaign.Job{ID: sub.ID, Hash: sub.Hash, Deduped: sub.Deduped}, nil
}

// Job returns one job's current status: GET /v1/jobs/{id}.
func (c *Client) Job(ctx context.Context, id string) (campaign.Snapshot, error) {
	var snap campaign.Snapshot
	err := c.getJSON(ctx, "/v1/jobs/"+url.PathEscape(id), nil, &snap, true)
	return snap, err
}

// Wait implements campaign.Runner: GET /v1/jobs/{id}?wait=1, blocking
// server-side until the job is terminal or ctx is cancelled.
func (c *Client) Wait(ctx context.Context, id string) (campaign.Snapshot, error) {
	var snap campaign.Snapshot
	err := c.getJSON(ctx, "/v1/jobs/"+url.PathEscape(id), url.Values{"wait": {"1"}}, &snap, false)
	return snap, err
}

// ListOptions parameterize Jobs.
type ListOptions struct {
	// Limit bounds the page size; 0 returns everything.
	Limit int
	// After resumes listing after the job with this ID — the NextAfter
	// cursor of the previous page.
	After string
}

// JobList is one page of jobs. NextAfter, when non-empty, is the cursor
// of the following page.
type JobList struct {
	Jobs      []campaign.Snapshot `json:"jobs"`
	NextAfter string              `json:"next_after"`
}

// Jobs lists jobs in submission order: GET /v1/jobs?limit=&after=.
func (c *Client) Jobs(ctx context.Context, opts ListOptions) (JobList, error) {
	q := url.Values{}
	if opts.Limit > 0 {
		q.Set("limit", strconv.Itoa(opts.Limit))
	}
	if opts.After != "" {
		q.Set("after", opts.After)
	}
	var page JobList
	err := c.getJSON(ctx, "/v1/jobs", q, &page, true)
	return page, err
}

// Cancel implements campaign.Runner: DELETE /v1/jobs/{id}.
func (c *Client) Cancel(ctx context.Context, id string) error {
	resp, err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, nil, "application/json", true)
	if err != nil {
		return err
	}
	return drainClose(resp.Body)
}

// drainClose consumes the remainder of a response body before closing
// it, so the underlying keep-alive connection is reusable instead of
// being torn down.
func drainClose(body io.ReadCloser) error {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, 1<<20))
	return body.Close()
}

// Results opens the job's raw result stream: GET /v1/jobs/{id}/results.
// format is "jsonl" or "csv" ("" selects the server default, JSON
// Lines). The handler waits for the job to finish before streaming; the
// caller owns closing the reader, and cancelling ctx aborts the stream.
func (c *Client) Results(ctx context.Context, id, format string) (io.ReadCloser, error) {
	q := url.Values{}
	if format != "" {
		q.Set("format", format)
	}
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/results", q, nil, "", false)
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// Stream implements campaign.Runner: it waits for the job, then decodes
// the JSONL result stream back into events and delivers them to the
// sinks in the service's deterministic order. Floats survive the wire
// bit-exactly, so sink output (and aggregation) matches a local
// execution byte for byte. Every sink is closed exactly once.
//
// Stream verifies completeness: a server-side failure after the stream
// has started cannot change the HTTP status, it can only end the body
// early — so the received event count is checked against the job's
// total and a short stream is an error, never silent partial data.
func (c *Client) Stream(ctx context.Context, id string, sinks ...campaign.Sink) error {
	return campaign.CloseSinks(c.stream(ctx, id, sinks), sinks...)
}

func (c *Client) stream(ctx context.Context, id string, sinks []campaign.Sink) error {
	// Wait first: the snapshot pins how many events a complete stream
	// carries (and surfaces failed/cancelled states with the service's
	// typed error before any bytes flow).
	snap, err := c.Wait(ctx, id)
	if err != nil {
		return err
	}
	body, err := c.Results(ctx, id, "jsonl")
	if err != nil {
		return err
	}
	defer body.Close()
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	var events int64
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		ev, err := campaign.DecodeEvent(line)
		if err != nil {
			return err
		}
		events++
		for _, s := range sinks {
			if err := s.Consume(ctx, ev); err != nil {
				return fmt.Errorf("client: sink: %w", err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("client: read result stream: %w", err)
	}
	if events != snap.Total {
		return fmt.Errorf("client: job %s result stream truncated: got %d of %d events", id, events, snap.Total)
	}
	return nil
}

// Describe implements campaign.Runner: GET /v1.
func (c *Client) Describe(ctx context.Context) (campaign.Description, error) {
	var d campaign.Description
	err := c.getJSON(ctx, "/v1", nil, &d, true)
	return d, err
}

// Techniques lists the technique names the service accepts:
// GET /v1/techniques.
func (c *Client) Techniques(ctx context.Context) ([]string, error) {
	var out struct {
		Techniques []string `json:"techniques"`
	}
	err := c.getJSON(ctx, "/v1/techniques", nil, &out, true)
	return out.Techniques, err
}

// Backends lists the registered simulation backends: GET /v1/backends.
func (c *Client) Backends(ctx context.Context) ([]string, error) {
	var out struct {
		Backends []string `json:"backends"`
	}
	err := c.getJSON(ctx, "/v1/backends", nil, &out, true)
	return out.Backends, err
}

// Live checks the liveness probe: GET /healthz. It answers "is the
// process up" only — a draining node is still live. Goes through the
// client's normal timeout and retry policy.
func (c *Client) Live(ctx context.Context) error {
	resp, err := c.do(ctx, http.MethodGet, "/healthz", nil, nil, "application/json", true)
	if err != nil {
		return err
	}
	return drainClose(resp.Body)
}

// Health fetches the node's readiness document: GET /v1/health. A
// draining node answers HTTP 503 but still serves the document, so the
// call succeeds with Ready=false — the node is alive, just not a
// placement target. Any other failure (transport error, non-health
// response) is an error.
//
// Health probes are deliberately exempt from the retry policy: exactly
// one attempt per call, regardless of Options.Retry. Probes are cheap
// and frequent, and retrying them would mask exactly the consecutive-
// failure signal circuit breakers key on.
func (c *Client) Health(ctx context.Context) (campaign.Health, error) {
	resp, err := c.doOnce(ctx, http.MethodGet, "/v1/health", nil, nil, "application/json", true)
	if err != nil {
		// A draining node's 503 carries the health document in the error
		// body doOnce could not fit into the envelope; re-fetch semantics
		// are simpler: decode the raw message as a Health document.
		var apiErr *APIError
		if errors.As(err, &apiErr) && apiErr.Status == http.StatusServiceUnavailable {
			var h campaign.Health
			if jsonErr := json.Unmarshal([]byte(apiErr.Message), &h); jsonErr == nil && h.Ok {
				return h, nil
			}
		}
		return campaign.Health{}, err
	}
	defer drainClose(resp.Body)
	var h campaign.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return campaign.Health{}, fmt.Errorf("client: decode /v1/health response: %w", err)
	}
	return h, nil
}
