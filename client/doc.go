// Package client is the typed Go SDK for the dlsimd campaign service's
// /v1 HTTP API. A Client implements campaign.Runner, so code written
// against the Runner interface executes campaigns on a remote daemon
// exactly as it would in-process — same specs, same deterministic
// per-run event streams, bit-identical aggregates:
//
//	c, err := client.New("http://localhost:8080")
//	if err != nil { ... }
//	res, err := campaign.Run(ctx, c, spec) // identical to a LocalRunner run
//
// Beyond the Runner methods (Submit, Wait, Stream, Cancel, Describe),
// the client exposes the full v1 surface: job status and paginated
// listing (Job, Jobs), raw result streams in either encoding (Results),
// discovery (Techniques, Backends) and the liveness probe (Health).
//
// Failures carry the service's structured error envelope as an
// *APIError with the stable machine-readable code, and map onto the
// campaign package's sentinel errors (ErrQueueFull, ErrNotFound,
// ErrClosed) via errors.Is — so error handling is portable between the
// local and remote runners. API.md at the repository root documents
// every route, error code and pagination parameter.
package client
