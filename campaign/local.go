package campaign

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/engine"
	"repro/internal/jobs"
)

// LocalConfig parameterizes a LocalRunner. The zero value is usable:
// no persistent store, all CPU cores, default queue depth.
type LocalConfig struct {
	// Store holds completed campaign results content-addressed by spec
	// hash; repeated specs are then served with zero simulator runs.
	// Nil keeps synchronous Execute calls uncached and gives the
	// asynchronous job queue a fresh in-memory store.
	Store Store

	// Workers bounds concurrently executing runs per campaign; 0 selects
	// GOMAXPROCS. Results are identical for any worker count.
	Workers int

	// ChunkSize is the number of consecutive replications executed per
	// work item inside a campaign; 0 auto-sizes (see
	// engine.ExecConfig.ChunkSize). Like Workers it changes scheduling,
	// never results.
	ChunkSize int

	// QueueDepth bounds jobs waiting to run; submissions beyond it fail
	// with ErrQueueFull. 0 selects 64.
	QueueDepth int

	// Concurrency is the number of campaigns executing at once; 0
	// selects 1 (each campaign already fans out over Workers).
	Concurrency int
}

// LocalRunner executes campaigns in-process through the engine's worker
// pool, cache and context plumbing. It implements Runner (asynchronous
// submit/wait/stream/cancel over a bounded job queue with singleflight
// deduplication) and Executor (the synchronous fast path). The job
// queue's goroutines start lazily on first Submit, so purely synchronous
// users pay nothing for the asynchronous machinery.
//
// A LocalRunner is safe for concurrent use. Call Close when done to
// cancel in-flight jobs and reclaim the queue's goroutines; Close is
// irreversible (subsequent Submits fail with ErrClosed) but synchronous
// Execute calls keep working.
type LocalRunner struct {
	cfg LocalConfig

	mu     sync.Mutex
	mgr    *jobs.Manager
	closed bool
}

// NewLocal returns a LocalRunner with the given configuration.
func NewLocal(cfg LocalConfig) *LocalRunner { return &LocalRunner{cfg: cfg} }

var (
	_ Runner   = (*LocalRunner)(nil)
	_ Executor = (*LocalRunner)(nil)
)

// manager lazily starts the job queue.
func (r *LocalRunner) manager() (*jobs.Manager, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	if r.mgr == nil {
		r.mgr = jobs.NewManager(jobs.Config{
			Store:       r.cfg.Store,
			QueueDepth:  r.cfg.QueueDepth,
			Concurrency: r.cfg.Concurrency,
			Workers:     r.cfg.Workers,
			ChunkSize:   r.cfg.ChunkSize,
		})
	}
	return r.mgr, nil
}

// Execute implements Executor: the synchronous in-process path, calling
// straight into the engine with the runner's store and worker bound.
func (r *LocalRunner) Execute(ctx context.Context, spec Spec, opts ExecOptions) (*Result, error) {
	return spec.Execute(ctx, engine.ExecConfig{
		Workers:    r.cfg.Workers,
		ChunkSize:  r.cfg.ChunkSize,
		KeepPerRun: opts.KeepPerRun,
		Cache:      r.cfg.Store,
		Sinks:      opts.Sinks,
	})
}

// Submit implements Runner.
func (r *LocalRunner) Submit(ctx context.Context, spec Spec) (Job, error) {
	if err := ctx.Err(); err != nil {
		return Job{}, fmt.Errorf("campaign: submit: %w", err)
	}
	mgr, err := r.manager()
	if err != nil {
		return Job{}, err
	}
	j, deduped, err := mgr.Submit(spec)
	if err != nil {
		return Job{}, err
	}
	return Job{ID: j.ID(), Hash: j.Hash(), Deduped: deduped}, nil
}

// Wait implements Runner.
func (r *LocalRunner) Wait(ctx context.Context, id string) (Snapshot, error) {
	mgr, err := r.manager()
	if err != nil {
		return Snapshot{}, err
	}
	return mgr.Wait(ctx, id)
}

// Stream implements Runner: it waits for the job, then replays its
// deterministic event stream into the sinks (served from the result
// store — zero simulator runs). Every sink is closed exactly once.
func (r *LocalRunner) Stream(ctx context.Context, id string, sinks ...Sink) error {
	mgr, err := r.manager()
	if err != nil {
		return CloseSinks(err, sinks...)
	}
	snap, err := mgr.Wait(ctx, id)
	if err != nil {
		return CloseSinks(err, sinks...)
	}
	if snap.State != StateDone {
		return CloseSinks(fmt.Errorf("campaign: job %s is %s: %s", id, snap.State, snap.Error), sinks...)
	}
	// mgr.Results replays through the engine, which owns closing the
	// sinks on every path from here.
	return mgr.Results(ctx, id, sinks...)
}

// Cancel implements Runner.
func (r *LocalRunner) Cancel(_ context.Context, id string) error {
	mgr, err := r.manager()
	if err != nil {
		return err
	}
	return mgr.Cancel(id)
}

// Describe implements Runner. The description's Execution block
// reports this runner's effective configuration: the host CPU count,
// the worker pool Workers resolves to, and the chunk-size knob.
func (r *LocalRunner) Describe(context.Context) (Description, error) {
	d := LocalDescription()
	d.Execution = &Execution{
		CPUs:        runtime.NumCPU(),
		Workers:     effectiveWorkers(r.cfg.Workers),
		ChunkSize:   r.cfg.ChunkSize,
		Concurrency: effectiveConcurrency(r.cfg.Concurrency),
	}
	return d, nil
}

// effectiveWorkers resolves the Workers knob's zero default the same
// way the engine does (engine.ExecConfig.Workers).
func effectiveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// effectiveConcurrency resolves the Concurrency knob's zero default the
// same way the job manager does (jobs.Config.Concurrency).
func effectiveConcurrency(c int) int {
	if c <= 0 {
		return 1
	}
	return c
}

// Close shuts the runner down: submissions start failing with
// ErrClosed, queued and running jobs are cancelled, and the queue's
// goroutines are reclaimed. Safe to call more than once.
func (r *LocalRunner) Close() {
	r.mu.Lock()
	mgr := r.mgr
	r.closed = true
	r.mu.Unlock()
	if mgr != nil {
		mgr.Close()
	}
}
