package campaign

import (
	"errors"
	"io"

	"repro/internal/cache"
	"repro/internal/engine"
	"repro/internal/jobs"
	"repro/internal/sched"
	"repro/internal/workload"
)

// The campaign vocabulary is defined in the engine and promoted here by
// alias, so the public surface, the in-process execution layer and the
// dlsimd service all speak the very same types — a spec built against
// this package is byte-for-byte the document the /v1 API accepts.
type (
	// Spec is the declarative description of a whole campaign: the
	// (technique × n × p) grid, the workload, per-run parameters, the
	// replication count and the seed policy. See engine.CampaignSpec for
	// field semantics; Validate, Canonical, Hash, Points and
	// NewAggregator are available as methods.
	Spec = engine.CampaignSpec

	// Workload declares the per-task execution-time distribution.
	Workload = workload.Spec

	// Event is one completed run flowing through the results pipeline,
	// delivered to Sinks in deterministic (point, replication) order.
	Event = engine.Event

	// RunMetrics are the per-run scalars every campaign reports.
	RunMetrics = engine.RunMetrics

	// Sink consumes the ordered stream of run events.
	Sink = engine.Sink

	// MetricsPartial is one chunk's worth of per-run metrics plus its
	// pre-folded accumulators, delivered in deterministic chunk order on
	// the aggregate fast path.
	MetricsPartial = engine.MetricsPartial

	// PartialSink marks a Sink as chunk-granular: when every sink of a
	// campaign implements it, the pipeline skips per-run event delivery
	// and ships MetricsPartial batches instead — same values, same
	// order, far less per-run overhead. One plain Sink in the set
	// disables the bypass for the whole campaign.
	PartialSink = engine.PartialSink

	// Aggregate summarizes all replications of one campaign point.
	Aggregate = engine.Aggregate

	// Result holds one Aggregate per campaign point plus the overall
	// streaming roll-up.
	Result = engine.CampaignResult

	// Aggregator folds an event stream into a Result, bit-identically to
	// server-side aggregation. Obtain one from Spec.NewAggregator.
	Aggregator = engine.Aggregator

	// State is a job's lifecycle phase; Terminal reports whether it can
	// still change.
	State = jobs.State

	// Snapshot is a point-in-time copy of a job's externally visible
	// state — the JSON document the /v1 status endpoints serve.
	Snapshot = jobs.Snapshot

	// Store is the content-addressed result store consulted before
	// simulating and filled after; equal spec hashes imply bit-identical
	// results, so hits are served with zero simulator runs.
	Store = cache.Store
)

// Job lifecycle states.
const (
	StateQueued    = jobs.StateQueued
	StateRunning   = jobs.StateRunning
	StateDone      = jobs.StateDone
	StateFailed    = jobs.StateFailed
	StateCancelled = jobs.StateCancelled
)

// Seed policies: pure derivations from (Seed, point, replication) to
// each run's rand48 state. See the engine constants for the exact
// derivations.
const (
	SeedPerCell = engine.SeedPerCell // decorrelated per grid cell (default)
	SeedFlat    = engine.SeedFlat    // run r uses rng.RunSeed(Seed, r) everywhere
	SeedFacade  = engine.SeedFacade  // the facade's MeanWastedTime derivation
	SeedShared  = engine.SeedShared  // every run shares one state (Compare)
)

// Errors shared by all runners. The local runner returns them directly;
// the HTTP client maps the service's stable error codes back onto them,
// so errors.Is works identically against either implementation.
var (
	// ErrQueueFull rejects a submission when the runner's bounded queue
	// is at capacity — the backpressure signal.
	ErrQueueFull = jobs.ErrQueueFull
	// ErrNotFound reports an unknown job ID.
	ErrNotFound = jobs.ErrNotFound
	// ErrClosed rejects submissions after the runner has shut down.
	ErrClosed = jobs.ErrClosed
	// ErrQuotaExceeded rejects a submission when the caller's tenant is
	// at its per-tenant job quota. Distinct from ErrQueueFull: the queue
	// may have room, just not for this tenant.
	ErrQuotaExceeded = jobs.ErrQuotaExceeded
	// ErrUnauthorized reports a missing or invalid API key on a service
	// with authentication enabled. HTTP-only: the local runner has no
	// auth surface.
	ErrUnauthorized = errors.New("campaign: unauthorized")
	// ErrRateLimited reports a request rejected by the service's
	// per-tenant rate limiter. Retry after backing off; the HTTP client
	// honors the Retry-After header automatically.
	ErrRateLimited = errors.New("campaign: rate limited")
)

// APIVersion names the HTTP contract revision all of this package's
// wire types belong to.
const APIVersion = "v1"

// Stable error codes of the /v1 API's error envelope
// {"error": {"code", "message", "details"}}. Codes are part of the
// versioned contract: clients may switch on them, and they never change
// meaning within APIVersion.
const (
	CodeInvalidArgument = "invalid_argument" // malformed body, query or path parameter
	CodeInvalidSpec     = "invalid_spec"     // spec decoded but failed validation
	CodeNotFound        = "not_found"        // unknown job ID or pagination cursor
	CodeQueueFull       = "queue_full"       // submission queue at capacity (retry later)
	CodeShuttingDown    = "shutting_down"    // service is draining; no new work
	CodeNotDone         = "job_not_done"     // results requested with wait=0 before completion
	CodeJobFailed       = "job_failed"       // results of a failed job
	CodeJobCancelled    = "job_cancelled"    // results of a cancelled job
	CodeNotAcceptable   = "not_acceptable"   // Accept header refuses every encoding the route serves
	CodeInternal        = "internal"         // unexpected server-side failure
	CodeUnauthorized    = "unauthorized"     // missing or invalid API key (auth enabled)
	CodeRateLimited     = "rate_limited"     // per-tenant rate limit hit (honor Retry-After)
	CodeQuotaExceeded   = "quota_exceeded"   // per-tenant queued-job quota hit
)

// ErrorBody is the inner object of the /v1 error envelope — the one
// wire definition the service emits and the client SDK decodes.
type ErrorBody struct {
	Code    string         `json:"code"`
	Message string         `json:"message"`
	Details map[string]any `json:"details,omitempty"`
}

// ErrorEnvelope is the JSON document every non-2xx /v1 response
// carries: {"error": {"code", "message", "details"}}.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// ParseSpec decodes a JSON campaign spec, rejecting unknown fields, and
// validates it.
func ParseSpec(data []byte) (Spec, error) { return engine.ParseSpec(data) }

// DecodeEvent parses one line of a JSONL result stream back into an
// Event, bit-exactly (the stream encodes floats in shortest round-trip
// form). The reconstructed Spec carries the row's identifying
// coordinates only (Technique, N, P).
func DecodeEvent(line []byte) (Event, error) { return engine.DecodeJSONLEvent(line) }

// NewCSVSink returns a sink streaming one CSV row per run to w.
func NewCSVSink(w io.Writer) Sink { return engine.NewCSVSink(w) }

// NewJSONLSink returns a sink streaming one JSON object per run to w —
// the encoding DecodeEvent reverses.
func NewJSONLSink(w io.Writer) Sink { return engine.NewJSONLSink(w) }

// NewMemoryStore returns an in-process result store.
func NewMemoryStore() Store { return cache.NewMemory() }

// NewDiskStore returns an on-disk result store rooted at dir (created
// if needed), with atomic writes.
func NewDiskStore(dir string) (Store, error) { return cache.NewDisk(dir) }

// NewTieredStore layers stores fastest-first: reads fill faster layers
// from slower ones, writes go through to all.
func NewTieredStore(layers ...Store) Store { return cache.NewTiered(layers...) }

// Description reports an execution surface's capabilities — what the
// Describe method of every Runner returns and the GET /v1 discovery
// endpoint serves.
type Description struct {
	// Service identifies the implementation ("local", "dlsimd").
	Service string `json:"service"`
	// APIVersion is the contract revision ("v1").
	APIVersion string `json:"api_version"`
	// Techniques lists the DLS technique names accepted in Spec.Techniques.
	Techniques []string `json:"techniques"`
	// Backends lists the registered simulation backends.
	Backends []string `json:"backends"`
	// SeedPolicies lists the accepted Spec.SeedPolicy values.
	SeedPolicies []string `json:"seed_policies"`
	// Execution reports the surface's effective execution configuration
	// (CPU count, worker pool, chunk size). Informational only — it never
	// affects results — and omitted by surfaces that predate it.
	Execution *Execution `json:"execution,omitempty"`
}

// Execution describes how a surface schedules campaign runs onto
// hardware. Every field is scheduling-only: results are bit-identical
// for any combination of values.
type Execution struct {
	// CPUs is runtime.NumCPU() where campaigns execute.
	CPUs int `json:"cpus"`
	// Workers is the effective per-campaign worker-goroutine count.
	Workers int `json:"workers"`
	// ChunkSize is the configured replications-per-work-item; 0 means
	// auto-sized per campaign from the grid and the worker count.
	ChunkSize int `json:"chunk_size"`
	// Concurrency is the number of campaigns executing at once.
	Concurrency int `json:"concurrency"`
}

// LocalDescription describes the in-process execution surface: every
// registered technique, backend and seed policy of this build. The
// dlsimd service serves the same document (with its own Service name)
// from GET /v1.
func LocalDescription() Description {
	return Description{
		Service:      "local",
		APIVersion:   APIVersion,
		Techniques:   sched.Names(),
		Backends:     engine.Names(),
		SeedPolicies: []string{SeedPerCell, SeedFlat, SeedFacade, SeedShared},
	}
}
