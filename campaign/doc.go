// Package campaign is the public vocabulary of the simulator's
// execution layer: declarative campaign specifications, per-run event
// streaming, result aggregation, and the Runner interface that makes
// local and remote execution interchangeable.
//
// A campaign is the unit of every experiment in the reproduced paper: a
// (technique × n × p) grid of independent simulated loop executions,
// replicated many times (the paper uses 1000) under a deterministic
// seed policy. A Spec describes a campaign as plain data — it
// serializes to JSON, round-trips losslessly, and has a canonical hash
// under which results are content-addressed. Execution is
// bit-deterministic in the spec: two executions of the same spec, on
// any worker count, on any Runner, produce identical per-run metrics,
// identical result streams and identical aggregates.
//
// # Runners
//
// A Runner executes campaigns asynchronously: Submit enqueues a spec
// and returns a job handle, Wait blocks for the terminal state, Stream
// delivers the deterministic per-run Event sequence to Sinks, Cancel
// aborts, and Describe reports the runner's capabilities (techniques,
// backends, seed policies). Two implementations exist:
//
//   - LocalRunner (this package) executes in-process through the
//     engine's worker pool, content-addressed result store and
//     context-aware cancellation plumbing.
//   - client.Client (package repro/client) speaks the dlsimd daemon's
//     /v1 HTTP API, so the same campaign runs on a remote service.
//
// The Execute and Run helpers drive any Runner end-to-end and return
// aggregated results; because aggregation is a deterministic fold over
// the event stream (Aggregator), a remote execution aggregated
// client-side is bit-identical to a local one.
//
//	spec := campaign.Spec{
//	    Techniques:   []string{"FAC2", "GSS"},
//	    Ns:           []int64{8192},
//	    Ps:           []int{64},
//	    Workload:     campaign.Workload{Kind: "exponential", P1: 1},
//	    H:            0.5,
//	    Replications: 1000,
//	    Seed:         42,
//	}
//	r := campaign.NewLocal(campaign.LocalConfig{})
//	defer r.Close()
//	res, err := campaign.Run(ctx, r, spec)
//
// The root package repro remains the scalar convenience facade; it is a
// thin layer over a LocalRunner.
package campaign
