// Package campaign is the public vocabulary of the simulator's
// execution layer: declarative campaign specifications, per-run event
// streaming, result aggregation, and the Runner interface that makes
// local and remote execution interchangeable.
//
// A campaign is the unit of every experiment in the reproduced paper: a
// (technique × n × p) grid of independent simulated loop executions,
// replicated many times (the paper uses 1000) under a deterministic
// seed policy. A Spec describes a campaign as plain data — it
// serializes to JSON, round-trips losslessly, and has a canonical hash
// under which results are content-addressed. Execution is
// bit-deterministic in the spec: two executions of the same spec, on
// any worker count, on any Runner, produce identical per-run metrics,
// identical result streams and identical aggregates.
//
// # Runners
//
// A Runner executes campaigns asynchronously: Submit enqueues a spec
// and returns a job handle, Wait blocks for the terminal state, Stream
// delivers the deterministic per-run Event sequence to Sinks, Cancel
// aborts, and Describe reports the runner's capabilities (techniques,
// backends, seed policies). Two implementations exist:
//
//   - LocalRunner (this package) executes in-process through the
//     engine's worker pool, content-addressed result store and
//     context-aware cancellation plumbing.
//   - client.Client (package repro/client) speaks the dlsimd daemon's
//     /v1 HTTP API, so the same campaign runs on a remote service.
//   - distrib.Coordinator (package repro/campaign/distrib) shards one
//     campaign across a fleet of Runners — replication windows become
//     ordinary sub-specs via Spec.RepOffset — and merges the streams
//     bit-identically to a single-node run, retrying failed or
//     straggling shards on surviving nodes.
//
// The Execute and Run helpers drive any Runner end-to-end and return
// aggregated results; because aggregation is a deterministic fold over
// the event stream (Aggregator), a remote execution aggregated
// client-side is bit-identical to a local one.
//
// # Sinks and the aggregate fast path
//
// Sinks observe campaign output. A plain Sink receives one Event per
// run in deterministic (point, replication) order — what the CSV and
// JSONL exporters need. A PartialSink additionally accepts
// MetricsPartial batches: one call per replication chunk, carrying the
// chunk's per-run scalars and chunk-local Welford partials, merged in
// deterministic chunk order. When every sink attached to a campaign is
// a PartialSink, the engine skips per-run event construction entirely
// (the aggregate fast path); one plain Sink disables the bypass for
// the whole campaign. Either path yields bit-identical aggregates —
// the fast path is a throughput optimization, never a semantic choice.
// Aggregator implements PartialSink.
//
//	spec := campaign.Spec{
//	    Techniques:   []string{"FAC2", "GSS"},
//	    Ns:           []int64{8192},
//	    Ps:           []int{64},
//	    Workload:     campaign.Workload{Kind: "exponential", P1: 1},
//	    H:            0.5,
//	    Replications: 1000,
//	    Seed:         42,
//	}
//	r := campaign.NewLocal(campaign.LocalConfig{})
//	defer r.Close()
//	res, err := campaign.Run(ctx, r, spec)
//
// The root package repro remains the scalar convenience facade; it is a
// thin layer over a LocalRunner.
package campaign
