package campaign_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"repro/campaign"
	"repro/internal/engine"
	"repro/internal/testutil"
)

var gate = testutil.NewGateBackend("campaign-gate")

func init() { engine.Register(gate) }

func testSpec(seed uint64, reps int) campaign.Spec {
	return campaign.Spec{
		Techniques:   []string{"FAC2", "SS"},
		Ns:           []int64{128},
		Ps:           []int{2},
		Workload:     campaign.Workload{Kind: "exponential", P1: 1},
		H:            0.5,
		Replications: reps,
		Seed:         seed,
	}
}

// runnerOnly hides the LocalRunner's Executor fast path, forcing
// Execute through the generic submit/wait/stream path.
type runnerOnly struct{ campaign.Runner }

// TestExecuteFastAndGenericPathsAgree runs the same spec through the
// LocalRunner's synchronous fast path and through the generic
// Runner-interface path (submit → wait → stream → client-side
// aggregation) and requires bit-identical aggregates — the property
// that makes local and remote execution interchangeable.
func TestExecuteFastAndGenericPathsAgree(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	ctx := context.Background()
	local := campaign.NewLocal(campaign.LocalConfig{})
	defer local.Close()
	spec := testSpec(31, 10)

	fast, err := campaign.Run(ctx, local, spec)
	if err != nil {
		t.Fatal(err)
	}
	generic, err := campaign.Run(ctx, runnerOnly{local}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(fast.Aggregates) != len(generic.Aggregates) {
		t.Fatalf("aggregate counts differ: %d vs %d", len(fast.Aggregates), len(generic.Aggregates))
	}
	for i := range fast.Aggregates {
		f, g := fast.Aggregates[i], generic.Aggregates[i]
		if f.Wasted != g.Wasted || f.Makespan != g.Makespan || f.Speedup != g.Speedup || f.MeanOps != g.MeanOps {
			t.Fatalf("aggregate %d differs between fast and generic paths:\nfast:    %+v\ngeneric: %+v", i, f, g)
		}
	}
	if fast.Overall != generic.Overall {
		t.Fatalf("overall roll-up differs: %+v vs %+v", fast.Overall, generic.Overall)
	}
}

// TestLocalRunnerLifecycle drives the full Runner contract on the
// in-process implementation: submit, dedup, wait, stream, cancel,
// describe, close.
func TestLocalRunnerLifecycle(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	ctx := context.Background()
	r := campaign.NewLocal(campaign.LocalConfig{QueueDepth: 4})
	defer r.Close()

	spec := testSpec(7, 5)
	job, err := r.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if job.ID == "" || job.Hash == "" || job.Deduped {
		t.Fatalf("first submission = %+v", job)
	}
	snap, err := r.Wait(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != campaign.StateDone || snap.Completed != snap.Total {
		t.Fatalf("terminal snapshot = %+v", snap)
	}
	var buf bytes.Buffer
	if err := r.Stream(ctx, job.ID, campaign.NewJSONLSink(&buf)); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 2*5 {
		t.Fatalf("stream has %d lines, want %d", got, 2*5)
	}
	// Every line decodes back into an event.
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if _, err := campaign.DecodeEvent([]byte(line)); err != nil {
			t.Fatal(err)
		}
	}

	desc, err := r.Describe(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if desc.Service != "local" || desc.APIVersion != campaign.APIVersion ||
		len(desc.Techniques) == 0 || len(desc.Backends) == 0 || len(desc.SeedPolicies) != 4 {
		t.Fatalf("describe = %+v", desc)
	}

	// Cancel a gated job mid-flight; Stream must surface the terminal
	// state as an error and still close the sinks.
	gate.Reset()
	defer gate.Release()
	gspec := testSpec(8, 3)
	gspec.Backend = gate.Name()
	gjob, err := r.Submit(ctx, gspec)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Cancel(ctx, gjob.ID); err != nil {
		t.Fatal(err)
	}
	if snap, err := r.Wait(ctx, gjob.ID); err != nil || !snap.State.Terminal() {
		t.Fatalf("after cancel: snap %+v, err %v", snap, err)
	}
	if err := r.Stream(ctx, gjob.ID); err == nil {
		t.Fatal("streaming a cancelled job succeeded")
	}
	if err := r.Cancel(ctx, "no-such-job"); !errors.Is(err, campaign.ErrNotFound) {
		t.Fatalf("cancel unknown = %v, want ErrNotFound", err)
	}

	r.Close()
	if _, err := r.Submit(ctx, spec); !errors.Is(err, campaign.ErrClosed) {
		t.Fatalf("submit after close = %v, want ErrClosed", err)
	}
	// The synchronous path outlives Close by design.
	if _, err := campaign.Run(ctx, r, spec); err != nil {
		t.Fatalf("synchronous Execute after Close failed: %v", err)
	}
}

// TestDuplicateTechniqueRejected covers the spec-level validation: a
// duplicate technique would silently collapse into one map key
// downstream, so Validate must reject it loudly on every path.
func TestDuplicateTechniqueRejected(t *testing.T) {
	spec := testSpec(1, 2)
	spec.Techniques = []string{"FAC2", "SS", "FAC2"}
	err := spec.Validate()
	if err == nil || !strings.Contains(err.Error(), `duplicate technique "FAC2"`) {
		t.Fatalf("Validate = %v, want duplicate technique error", err)
	}
	local := campaign.NewLocal(campaign.LocalConfig{})
	defer local.Close()
	if _, err := campaign.Run(context.Background(), local, spec); err == nil ||
		!strings.Contains(err.Error(), "duplicate technique") {
		t.Fatalf("Run = %v, want duplicate technique error", err)
	}
}

// TestAggregatorRejectsTruncatedStream: the client-side fold must fail
// loudly when the stream ends early, never yield partial aggregates.
func TestAggregatorRejectsTruncatedStream(t *testing.T) {
	ctx := context.Background()
	spec := testSpec(3, 4)
	local := campaign.NewLocal(campaign.LocalConfig{})
	defer local.Close()

	var buf bytes.Buffer
	if _, err := campaign.Execute(ctx, local, spec, campaign.ExecOptions{
		Sinks: []campaign.Sink{campaign.NewJSONLSink(&buf)},
	}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	agg, err := spec.NewAggregator(false)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range lines[:len(lines)-1] { // drop the final event
		ev, err := campaign.DecodeEvent([]byte(line))
		if err != nil {
			t.Fatal(err)
		}
		if err := agg.Consume(ctx, ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := agg.Close(); err == nil || !strings.Contains(err.Error(), "replications") {
		t.Fatalf("Close on truncated stream = %v, want replication-count error", err)
	}
}
