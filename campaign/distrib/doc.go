// Package distrib shards one campaign across a fleet of runners and
// merges the results bit-identically to a single-node run.
//
// # Sharding model
//
// A campaign's runs form one global sequence: grid points in the
// spec's deterministic expansion order (n-major, then p, then
// technique), replications ascending within each point. The planner
// cuts that sequence into Options.Shards contiguous, near-equal
// segments and decomposes every segment into per-point pieces. Each
// piece becomes an ordinary CampaignSpec via Spec.SubSpec — a
// single-point spec whose RepOffset shifts seed derivation so its run
// r draws exactly the rand48 state the parent assigns to
// (point, repOff+r), under all four seed policies. A piece is
// therefore a first-class campaign: hashable, cacheable, executable by
// any node, with its sub-spec hash as content address.
//
// # Determinism
//
// The merge stage forwards piece streams in plan order, rewriting each
// row's shard-local coordinates back to the parent grid. Because every
// node computes bit-identical metrics for a given spec and the JSONL
// encoding round-trips floats exactly, the merged stream is
// byte-for-byte the stream a single node produces for the whole spec,
// for any shard count and any fleet — and the aggregates, folded by
// the same engine.Aggregator over the same stream, are bit-identical
// too.
//
// # Fault handling
//
// Each shard attempt is bounded by Options.ShardTimeout and retried up
// to Options.Attempts times with exponential backoff and optional
// jitter, rotating through the fleet, so shards stranded on a dead or
// straggling node are reassigned to survivors. A reassigned or
// re-submitted shard whose sub-spec results already sit in a store
// shared by the fleet (dlsimd -cache on a shared directory) replays
// from the cache with zero backend runs — shard-level idempotency via
// content addressing.
package distrib
