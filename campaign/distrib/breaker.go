// Per-node circuit breakers and the health-checked node pool. Both are
// scheduling-only machinery: they decide which node runs a shard and
// when, never what the shard computes — the bit-identical merge
// guarantee is structurally out of their reach.

package distrib

import (
	"context"
	"sync"
	"time"

	"repro/campaign"
)

// breakerState is a circuit breaker's position.
type breakerState int32

const (
	breakerClosed   breakerState = iota // normal: traffic flows
	breakerOpen                         // tripped: traffic blocked until cooldown
	breakerHalfOpen                     // cooling: exactly one probe attempt allowed
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is one node's circuit breaker: closed until `threshold`
// consecutive node-attributable failures, then open for `cooldown`,
// then half-open — a single probe attempt decides between closing
// (success) and re-opening (failure). Attempts that end without a
// verdict on node health (context cancellation, per-tenant rate
// limits, deterministic spec failures) release the probe slot without
// moving the state.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time      // injectable clock for tests
	onChange  func(to breakerState) // transition observer (metrics)

	mu       sync.Mutex
	state    breakerState
	fails    int
	openedAt time.Time
	probing  bool // half-open probe slot taken
}

func newBreaker(threshold int, cooldown time.Duration, onChange func(breakerState)) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now, onChange: onChange}
}

// allow reports whether an attempt may proceed. In half-open it also
// reserves the single probe slot: a caller that gets true and then
// abandons the attempt must call release (or settle via success /
// failure).
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.set(breakerHalfOpen)
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// success records a node-attributable success: the breaker closes and
// the failure streak resets.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.probing = false
	if b.state != breakerClosed {
		b.set(breakerClosed)
	}
}

// failure records a node-attributable failure. A half-open probe
// failure re-opens immediately; a closed breaker opens at threshold.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	b.probing = false
	if b.state == breakerHalfOpen || (b.state == breakerClosed && b.fails >= b.threshold) {
		b.set(breakerOpen)
		b.openedAt = b.now()
	}
}

// release abandons an allowed attempt without a health verdict,
// freeing the half-open probe slot so another attempt can try.
func (b *breaker) release() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
}

// current returns the state for reporting.
func (b *breaker) current() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// set transitions state under b.mu and notifies the observer.
func (b *breaker) set(to breakerState) {
	b.state = to
	if b.onChange != nil {
		b.onChange(to)
	}
}

// healthChecker is the optional probe surface of a node. client.Client
// implements it against GET /v1/health; in-process LocalRunners
// normally don't and are simply never probed.
type healthChecker interface {
	Health(ctx context.Context) (campaign.Health, error)
}

// nodeState is the pool's per-node view beyond the breaker: liveness
// and drain, maintained by the background prober (and defaulted to
// available when probing is off or the node has no health surface).
type nodeState struct {
	mu       sync.Mutex
	healthy  bool
	draining bool
	lastErr  string // most recent attempt or probe failure, for reports
}

func (n *nodeState) available() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.healthy && !n.draining
}

func (n *nodeState) note(err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if err != nil {
		n.lastErr = err.Error()
	}
}

// probeLoop polls every probeable node each HealthInterval. A
// successful probe refreshes liveness, mirrors the node's drain flag,
// and feeds the breaker a success (a node answering health checks is
// strong evidence it recovered); a failed probe marks the node down
// and counts as a breaker failure, so a dead node's breaker opens even
// with no shard traffic pointed at it.
func (c *Coordinator) probeLoop(ctx context.Context) {
	defer c.probeWG.Done()
	tick := time.NewTicker(c.opts.HealthInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		for ni, node := range c.nodes {
			hc, ok := node.(healthChecker)
			if !ok {
				continue
			}
			pctx, cancel := context.WithTimeout(ctx, c.opts.HealthInterval)
			h, err := hc.Health(pctx)
			cancel()
			st := c.states[ni]
			st.mu.Lock()
			if err != nil {
				st.healthy = false
				st.lastErr = "health probe: " + err.Error()
			} else {
				st.healthy = h.Ok
				st.draining = h.Draining || !h.Ready
			}
			st.mu.Unlock()
			if err != nil {
				c.mProbeFails.Inc()
				c.brs[ni].failure()
			} else if h.Ok {
				c.brs[ni].success()
			}
			if ctx.Err() != nil {
				return
			}
		}
	}
}

// pick scans the fleet from startNode for the first node that is
// available (healthy, not draining) and whose breaker admits traffic.
// A half-open breaker's probe slot is reserved by the pick; the caller
// settles it via the breaker verdict calls.
func (c *Coordinator) pick(startNode int) (int, bool) {
	n := len(c.nodes)
	for off := 0; off < n; off++ {
		ni := ((startNode+off)%n + n) % n
		if !c.states[ni].available() {
			continue
		}
		if c.brs[ni].allow() {
			return ni, true
		}
	}
	return 0, false
}
